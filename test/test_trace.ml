(* Unit tests for the trace ring buffer and the transition-coverage layer
   (lib/trace): bounded recording, wraparound order, disabled-path no-ops,
   arming save/restore, per-address filtering, rendering, and coverage
   accounting.  The last test is the acceptance criterion that tracing is
   observation-only: a traced perf run is cycle-for-cycle identical to an
   untraced one. *)

module Trace = Xguard_trace.Trace
module Coverage = Xguard_trace.Coverage
module Group = Xguard_stats.Counter.Group
module Config = Xguard_harness.Config
module Perf = Xguard_harness.Perf_runner
module W = Xguard_workload.Workload

let has_infix affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  n = 0 || go 0

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

let note_n tr i =
  Trace.with_armed tr (fun () ->
      Trace.note ~cycle:i ~controller:"t" ~text:(string_of_int i) ())

let test_ring_wraparound () =
  let tr = Trace.create ~capacity:4 () in
  for i = 1 to 10 do
    note_n tr i
  done;
  check_int "recorded counts every emission" 10 (Trace.recorded tr);
  check_int "length is bounded by capacity" 4 (Trace.length tr);
  let texts = List.map (fun (e : Trace.event) -> e.Trace.a) (Trace.to_list tr) in
  Alcotest.(check (list string)) "oldest-first, keeps the newest" [ "7"; "8"; "9"; "10" ] texts;
  Trace.clear tr;
  check_int "clear empties" 0 (Trace.length tr);
  check_int "clear resets recorded" 0 (Trace.recorded tr)

let test_ring_before_wrap () =
  let tr = Trace.create ~capacity:8 () in
  for i = 1 to 3 do
    note_n tr i
  done;
  check_int "partial fill length" 3 (Trace.length tr);
  let texts = List.map (fun (e : Trace.event) -> e.Trace.a) (Trace.to_list tr) in
  Alcotest.(check (list string)) "insertion order" [ "1"; "2"; "3" ] texts

let test_disabled_is_noop () =
  check_bool "nothing armed by default" false (Trace.on ());
  (* These must simply not record anywhere (and not raise). *)
  Trace.note ~cycle:1 ~controller:"x" ~text:"dropped" ();
  Trace.transition ~cycle:1 ~controller:"x" ~addr:0 ~state:"I" ~event:"Load" ();
  Trace.send ~cycle:1 ~net:"n" ~src:"a" ~dst:"b" ~addr:0 ~text:"m";
  let tr = Trace.create ~capacity:4 () in
  Trace.with_armed tr (fun () -> check_bool "armed inside" true (Trace.on ()));
  check_bool "disarmed after with_armed" false (Trace.on ());
  check_int "unarmed emissions went nowhere" 0 (Trace.recorded tr)

let test_with_armed_nesting_and_exceptions () =
  let outer = Trace.create () and inner = Trace.create () in
  Trace.with_armed outer (fun () ->
      Trace.note ~cycle:1 ~controller:"t" ~text:"o1" ();
      Trace.with_armed inner (fun () -> Trace.note ~cycle:2 ~controller:"t" ~text:"i1" ());
      Trace.note ~cycle:3 ~controller:"t" ~text:"o2" ());
  check_int "outer saw its two events" 2 (Trace.recorded outer);
  check_int "inner saw the nested event" 1 (Trace.recorded inner);
  (try
     Trace.with_armed inner (fun () -> failwith "boom")
   with Failure _ -> ());
  check_bool "exception path restores disarmed state" false (Trace.on ())

let test_events_for () =
  let tr = Trace.create () in
  Trace.with_armed tr (fun () ->
      Trace.transition ~cycle:1 ~controller:"c" ~addr:64 ~state:"I" ~event:"Load" ~next:"IS" ();
      Trace.transition ~cycle:2 ~controller:"c" ~addr:128 ~state:"I" ~event:"Store" ~next:"IM" ();
      Trace.note ~cycle:3 ~controller:"tester" ~text:"global note" ();
      Trace.stall ~cycle:4 ~controller:"c" ~addr:64 ~why:"retry");
  let for64 = Trace.events_for tr ~addr:64 in
  check_int "addr filter keeps its events plus global notes" 3 (List.length for64);
  check_bool "other addr excluded" true
    (List.for_all (fun (e : Trace.event) -> e.Trace.addr <> 128) for64)

let test_formatting () =
  let tr = Trace.create () in
  Trace.with_armed tr (fun () ->
      Trace.transition ~cycle:482 ~controller:"mesi.l1.0" ~addr:3 ~state:"I" ~event:"Load"
        ~next:"IS" ());
  (match Trace.to_list tr with
  | [ ev ] ->
      check_str "transition line" "@    482 mesi.l1.0        0x3   [I] Load -> [IS]"
        (Trace.format_event ev)
  | _ -> Alcotest.fail "expected exactly one event");
  let tr2 = Trace.create () in
  Trace.with_armed tr2 (fun () ->
      Trace.send ~cycle:7 ~net:"xg.link" ~src:"accel" ~dst:"xg" ~addr:64 ~text:"GetS 0x40";
      Trace.note ~cycle:9 ~controller:"tester" ~text:"hello" ());
  let dump = Trace.dump tr2 in
  check_bool "dump shows the send" true
    (has_infix "send accel -> xg: GetS 0x40" dump);
  check_bool "address-less events render '-'" true (has_infix " -  " dump);
  check_str "dump ~last:1 keeps only the newest" "@      9 tester           -     hello"
    (Trace.dump ~last:1 tr2)

let test_coverage_accounting () =
  let space =
    Coverage.space ~name:"demo" ~states:[ "I"; "S"; "M" ] ~events:[ "Load"; "Store" ]
      ~possible:(fun s e -> not (s = "M" && e = "Load"))
      ()
  in
  let g = Group.create "demo.coverage" in
  Group.incr g "I.Load";
  Group.incr g "I.Load";
  Group.incr g "S.Store";
  Group.incr g "M.Load";
  (* impossible pair that fired -> stray *)
  Group.incr g "Z.Load";
  (* unknown state -> stray *)
  let r = Coverage.analyze space [ g ] in
  check_int "possible pairs" 5 r.Coverage.total;
  check_int "covered pairs" 2 r.Coverage.covered;
  check_int "hit count summed" 2 (r.Coverage.count "I" "Load");
  check_int "unvisited pair counts zero" 0 (r.Coverage.count "M" "Store");
  check_int "uncovered listed" 3 (List.length r.Coverage.uncovered);
  check_int "strays flagged" 2 (List.length r.Coverage.stray);
  check_bool "fraction" true (abs_float (Coverage.fraction r -. 0.4) < 1e-9);
  (* Several groups (same controller kind across runs) sum. *)
  let g2 = Group.create "demo.coverage2" in
  Group.incr g2 "M.Store";
  let r2 = Coverage.analyze space [ g; g2 ] in
  check_int "cross-group sum covers more" 3 r2.Coverage.covered;
  let table = Coverage.to_string r2 in
  check_bool "matrix renders impossible cells" true (has_infix "." table);
  check_bool "summary line present" true (has_infix "3/5" table)

let test_tracing_does_not_change_results () =
  (* Acceptance criterion: with tracing armed the simulation is bit-identical.
     Same config + workload + seed, traced and untraced, must agree on cycle
     count and traffic exactly. *)
  let cfg = Config.make Config.Hammer (Config.Xg_one_level Config.Transactional) in
  let w = W.blocked ~tiles:2 () in
  let plain = Perf.run cfg w in
  let tr = Trace.create ~capacity:4096 () in
  let traced = Perf.run ~trace:tr cfg w in
  check_bool "the traced run actually recorded events" true (Trace.recorded tr > 0);
  check_int "cycles identical" plain.Perf.cycles traced.Perf.cycles;
  check_int "accesses identical" plain.Perf.accel_accesses traced.Perf.accel_accesses;
  check_int "host bytes identical" plain.Perf.host_bytes traced.Perf.host_bytes;
  check_int "link bytes identical" plain.Perf.link_bytes traced.Perf.link_bytes

let tests =
  [
    ( "trace",
      [
        Alcotest.test_case "ring wraparound" `Quick test_ring_wraparound;
        Alcotest.test_case "ring before wrap" `Quick test_ring_before_wrap;
        Alcotest.test_case "disabled tracing is a no-op" `Quick test_disabled_is_noop;
        Alcotest.test_case "with_armed nests and restores" `Quick
          test_with_armed_nesting_and_exceptions;
        Alcotest.test_case "per-address filtering" `Quick test_events_for;
        Alcotest.test_case "event formatting" `Quick test_formatting;
        Alcotest.test_case "coverage accounting" `Quick test_coverage_accounting;
        Alcotest.test_case "tracing leaves results bit-identical" `Quick
          test_tracing_does_not_change_results;
      ] );
  ]
