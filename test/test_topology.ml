(* Multi-accelerator topologies: the declarative config (parsing, validation,
   round-tripping), the N-guard system build over a sharded Hammer directory,
   cross-guard producer/consumer traffic, and campaign determinism for
   topology configs. *)

module Engine = Xguard_sim.Engine
module Rng = Xguard_sim.Rng
module Campaign = Xguard_harness.Campaign
module Config = Xguard_harness.Config
module System = Xguard_harness.System
module Topology = Xguard_harness.Topology
module Tester = Xguard_harness.Random_tester

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let is_infix ~affix s =
  let n = String.length affix and m = String.length s in
  let rec at i = i + n <= m && (String.sub s i n = affix || at (i + 1)) in
  n = 0 || at 0

let parse s =
  match Topology.of_string s with
  | Ok t -> t
  | Error e -> Alcotest.failf "%S did not parse: %s" s e

(* The N=3 mixed cached/uncached/two-level topology used across this file. *)
let mixed3 = "hammer:shards=2;gpu0=trans,cached;nic0=full,uncached,lat=12;dsp0=trans,2lvl,cores=2"

(* ---- parsing and validation ---- *)

let test_parse_defaults () =
  let t = parse "mesi;gpu=full" in
  check_int "one accelerator" 1 (List.length t.Topology.accels);
  check_bool "mesi host" true (t.Topology.host = Topology.Mesi);
  check_int "no sharding by default" 1 t.Topology.dir_shards;
  let a = List.hd t.Topology.accels in
  check_bool "full-state guard" true (a.Topology.variant = Topology.Full_state);
  check_bool "cached by default" true a.Topology.cached;
  check_bool "one-level by default" false a.Topology.two_level;
  check_int "default link latency" 8 a.Topology.link_latency;
  check_int "ordered link by default" 0 a.Topology.link_jitter;
  check_bool "no fault model by default" true (a.Topology.faults = None)

let test_parse_round_trip () =
  List.iter
    (fun s ->
      let t = parse s in
      let reparsed = parse (Topology.to_string t) in
      check_bool (Printf.sprintf "%S round-trips" s) true (t = reparsed))
    [
      "hammer;a=trans";
      mixed3;
      "mesi;gpu=full,2lvl,cores=4,lat=20;nic=trans,uncached,jitter=3";
      "hammer:shards=4;a=trans,drop=0.25,dup=0.1;b=full,fault=kill:3";
      "hammer;a=trans,fault=drop:2:Inv,fault=corrupt:5";
    ]

let test_validation_rejects () =
  List.iter
    (fun (s, needle) ->
      match Topology.of_string s with
      | Ok _ -> Alcotest.failf "%S was accepted" s
      | Error e ->
          check_bool
            (Printf.sprintf "%S rejected mentioning %S (got %S)" s needle e)
            true
            (is_infix ~affix:needle e))
    [
      ("", "empty topology");
      ("hammer", "no accelerators");
      ("hammer;a=trans;a=full", "duplicate");
      ("hammer:shards=0;a=trans", "out of range");
      ("hammer:shards=65;a=trans", "out of range");
      ("hammer:shards=two;a=trans", "bad shard count");
      ("gizmo;a=trans", "bad host segment");
      ("gizmo:shards=2;a=trans", "unknown host");
      ("hammer;a=uncached,2lvl", "2lvl requires a cached device");
      ("hammer;a=warp9", "unknown attribute");
      ("hammer;a=lat=0", "lat=0");
      ("hammer;a=2lvl,cores=9", "cores=9");
      ("hammer;=trans", "bad accelerator id");
      ("hammer;a=drop=1.5", "probabilities");
      ("hammer;a", "ID=ATTR");
    ]

let test_symmetric_and_name () =
  List.iter
    (fun n ->
      let t = Topology.symmetric ~shards:2 n in
      (match Topology.validate t with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "symmetric %d invalid: %s" n e);
      check_int (Printf.sprintf "symmetric %d size" n) n
        (List.length t.Topology.accels))
    [ 1; 2; 3; 4 ];
  check_string "name renders ids and shard count"
    "hammer:2/topo[gpu0,nic0,dsp0]"
    (Topology.name (parse mixed3));
  check_string "shard count of 1 is omitted" "mesi/topo[gpu]"
    (Topology.name (parse "mesi;gpu=full"))

let test_config_integration () =
  let cfg = Config.of_topology (parse mixed3) in
  check_bool "topology configs use XG" true (Config.uses_xg cfg);
  check_string "config name is the topology name" "hammer:2/topo[gpu0,nic0,dsp0]"
    (Config.name cfg);
  let sized = Config.stress_sized cfg in
  check_bool "stress sizing preserves the topology" true
    (sized.Config.topology = cfg.Config.topology)

(* ---- building and running N-guard systems ---- *)

let test_mixed3_build_and_stress () =
  let cfg = { (Config.of_topology (parse mixed3)) with Config.seed = 11 } in
  let sys = System.build cfg in
  check_int "three guards" 3 (Array.length sys.System.guards);
  check_string "guard order follows the spec list" "gpu0,nic0,dsp0"
    (String.concat ","
       (Array.to_list (Array.map (fun g -> g.System.g_id) sys.System.guards)));
  (* gpu0 and (single-buffer) nic0 expose one port each, dsp0 one per core. *)
  check_int "accel ports concatenate per guard" 4
    (Array.length sys.System.accel_ports);
  check_bool "per-guard perm tables: guard 0 aliases the system table" true
    (sys.System.guards.(0).System.g_perms == sys.System.perms);
  check_bool "per-guard perm tables: neighbors get their own" true
    (sys.System.guards.(1).System.g_perms != sys.System.perms);
  let labels = List.map fst (sys.System.stats_groups ()) in
  List.iter
    (fun l ->
      check_bool (Printf.sprintf "stats expose %s" l) true (List.mem l labels))
    [ "directory0"; "directory1"; "xg.gpu0"; "xg.nic0"; "xg.dsp0" ];
  let ports = Array.append sys.System.cpu_ports sys.System.accel_ports in
  let o =
    Tester.run ~engine:sys.System.engine ~rng:(Rng.create ~seed:42) ~ports
      ~addresses:(Array.init 6 Addr.block) ~ops_per_core:120 ()
  in
  check_bool "no deadlock" false o.Tester.deadlocked;
  check_int "no data errors" 0 o.Tester.data_errors;
  check_int "all ops complete" (120 * Array.length ports) o.Tester.ops_completed;
  Array.iteri
    (fun i n -> check_int (Printf.sprintf "port %d completes its quota" i) 120 n)
    o.Tester.ops_per_port

let test_producer_consumer_across_guards () =
  (* A producer behind one guard, a consumer behind another: every consumer
     load checks data that crossed two guard links and the host protocol. *)
  let cfg =
    { (Config.of_topology (parse "mesi;p=full,cached;c=trans,cached")) with Config.seed = 5 }
  in
  let sys = System.build cfg in
  let ports = Array.append sys.System.cpu_ports sys.System.accel_ports in
  let roles =
    Array.append
      (Array.make (Array.length sys.System.cpu_ports) Tester.Mixed)
      [| Tester.Producer; Tester.Consumer |]
  in
  let o =
    Tester.run ~engine:sys.System.engine ~rng:(Rng.create ~seed:17) ~ports ~roles
      ~addresses:(Array.init 4 Addr.block) ~ops_per_core:150 ()
  in
  check_bool "no deadlock" false o.Tester.deadlocked;
  check_int "consumer loads all check clean" 0 o.Tester.data_errors;
  check_int "all ops complete" (150 * Array.length ports) o.Tester.ops_completed

let test_topology_campaign_j_invariance () =
  (* The acceptance gate: a mixed N=3 topology campaign (stress + fuzz) is
     byte-identical for any worker count. *)
  let configs = [ Config.of_topology (parse mixed3) ] in
  let render w =
    Campaign.render
      (Campaign.run ~workers:w ~collect_coverage:true ~stress_ops:60
         ~fuzz_cpu_ops:60 ~base_seed:13 Campaign.Both ~configs ~seeds:2 ())
  in
  let r1 = render 1 in
  Alcotest.(check string) "-j 2 output equals -j 1" r1 (render 2);
  Alcotest.(check string) "-j 4 output equals -j 1" r1 (render 4)

let tests =
  [
    ( "topology",
      [
        Alcotest.test_case "parse defaults" `Quick test_parse_defaults;
        Alcotest.test_case "parse round-trip" `Quick test_parse_round_trip;
        Alcotest.test_case "validation rejects" `Quick test_validation_rejects;
        Alcotest.test_case "symmetric and name" `Quick test_symmetric_and_name;
        Alcotest.test_case "config integration" `Quick test_config_integration;
        Alcotest.test_case "N=3 mixed build and stress" `Quick
          test_mixed3_build_and_stress;
        Alcotest.test_case "producer/consumer across guards" `Quick
          test_producer_consumer_across_guards;
        Alcotest.test_case "topology campaign -j invariance" `Slow
          test_topology_campaign_j_invariance;
      ] );
  ]
