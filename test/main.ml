let () =
  Alcotest.run "xguard"
    (List.concat
       [
         Test_sim.tests;
         Test_stats.tests;
         Test_proto.tests;
         Test_network.tests;
         Test_accel_l1.tests;
         Test_hammer.tests;
         Test_mesi.tests;
         Test_xg_integration.tests;
         Test_safety.tests;
         Test_xg_units.tests;
         Test_workload.tests;
         Test_conformance.tests;
         Test_accel_l2.tests;
         Test_xg_core.tests;
         Test_trace.tests;
         Test_regression_seeds.tests;
         Test_coverage_floor.tests;
         Test_campaign.tests;
         Test_topology.tests;
         Test_faults.tests;
         Test_spans.tests;
         Test_check.tests;
         Test_pdes.tests;
       ])
