(* The sharded parallel simulator (Pdes): worker-team mechanics, eligibility
   gating, and the hard invariant — byte-identical results and observability
   artifacts (trace dumps, span timelines) for every worker count, on fixed
   and QCheck-random topologies. *)

module Engine = Xguard_sim.Engine
module Config = Xguard_harness.Config
module Topology = Xguard_harness.Topology
module System = Xguard_harness.System
module Pdes = Xguard_harness.Pdes
module Tester = Xguard_harness.Random_tester
module Perf = Xguard_harness.Perf_runner
module Team = Xguard_parallel.Team
module Trace = Xguard_trace.Trace
module Spans = Xguard_obs.Spans
module Perfetto = Xguard_obs.Perfetto
module W = Xguard_workload.Workload

(* ---- worker team ------------------------------------------------------- *)

let test_team_rounds () =
  Team.with_team ~workers:3 (fun team ->
      Alcotest.(check int) "size" 3 (Team.size team);
      let hits = Array.make 3 0 in
      Team.round team (fun slot -> hits.(slot) <- hits.(slot) + 1);
      Team.round team (fun slot -> hits.(slot) <- hits.(slot) + 1);
      Alcotest.(check (list int)) "every slot ran each round" [ 2; 2; 2 ]
        (Array.to_list hits))

let test_team_failure () =
  Team.with_team ~workers:2 (fun team ->
      (try
         Team.round team (fun slot -> if slot = 1 then failwith "boom");
         Alcotest.fail "worker exception not re-raised"
       with Failure m -> Alcotest.(check string) "worker exn" "boom" m);
      (* The team survives a failed round. *)
      let ran = Array.make 2 false in
      Team.round team (fun slot -> ran.(slot) <- true);
      Alcotest.(check bool) "usable after failure" true (ran.(0) && ran.(1)))

let test_team_sequential () =
  (* workers = 1 never spawns a domain; round is a plain call. *)
  Team.with_team ~workers:1 (fun team ->
      Alcotest.(check int) "clamped size" 1 (Team.size team);
      let r = ref 0 in
      Team.round team (fun slot -> r := slot + 41);
      Alcotest.(check int) "slot 0 on caller" 41 !r)

(* ---- eligibility ------------------------------------------------------- *)

let ok_or_msg = function Ok () -> None | Error e -> Some e

let test_check_config () =
  let xg = Config.make Config.Hammer (Config.Xg_one_level Config.Transactional) in
  Alcotest.(check (option string)) "plain guard config eligible" None
    (ok_or_msg (Pdes.check_config xg));
  let reject what cfg =
    match Pdes.check_config cfg with
    | Ok () -> Alcotest.fail (what ^ ": expected rejection")
    | Error _ -> ()
  in
  reject "guard-less" (Config.make Config.Hammer Config.Accel_side);
  reject "host-side" (Config.make Config.Mesi Config.Host_side);
  reject "link faults"
    { xg with Config.link_faults = Some Xguard_network.Network.Fault.zero };
  reject "recovery"
    { xg with Config.recovery = Some (Xguard_xg.Xg_core.make_recovery ()) };
  reject "rate limit" { xg with Config.rate_limit = Some (0.5, 4) };
  reject "unordered link" { xg with Config.link_ordered = false };
  let jittered =
    Topology.
      {
        host = Hammer;
        dir_shards = 1;
        accels = [ { (default_accel "a0") with link_jitter = 3 } ];
      }
  in
  reject "jittered topology link" (Config.of_topology jittered);
  (* Lookahead is the smallest guard-link latency. *)
  let topo =
    Topology.
      {
        host = Hammer;
        dir_shards = 2;
        accels =
          [
            { (default_accel "a0") with link_latency = 9 };
            { (default_accel "b0") with link_latency = 4 };
          ];
      }
  in
  Alcotest.(check int) "lookahead = min link latency" 4
    (Pdes.lookahead (Config.of_topology topo));
  Alcotest.(check int) "legacy lookahead = link_latency" xg.Config.link_latency
    (Pdes.lookahead xg)

(* ---- byte-identity ----------------------------------------------------- *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* One sharded stress run with every observability artifact captured: the
   merged outcome, OS violation count, the full trace dump and the Perfetto
   span timeline (ids and all). *)
let stress_artifacts ~workers ~seed ~ops cfg =
  let tr = Trace.create ~capacity:4096 () in
  let rc = Spans.create () in
  let sys, o =
    Trace.with_armed tr (fun () ->
        Spans.with_armed rc (fun () ->
            Pdes.run_stress ~workers ~seed ~ops_per_core:ops cfg))
  in
  let span_json =
    let path = Filename.temp_file "xguard_pdes" ".json" in
    Perfetto.write_file path [ ("stress", rc) ];
    let s = read_file path in
    Sys.remove path;
    s
  in
  (o, Xguard_xg.Os_model.error_count sys.System.os, Trace.dump tr, span_json)

let check_identical ~what cfg ~seed ~ops =
  let base = stress_artifacts ~workers:1 ~seed ~ops cfg in
  List.iter
    (fun workers ->
      let o1, v1, t1, s1 = base in
      let o2, v2, t2, s2 = stress_artifacts ~workers ~seed ~ops cfg in
      let tag fmt = Printf.sprintf "%s: %s (k=%d)" what fmt workers in
      Alcotest.(check bool) (tag "outcome") true (o1 = o2);
      Alcotest.(check int) (tag "violations") v1 v2;
      Alcotest.(check string) (tag "trace dump") t1 t2;
      Alcotest.(check string) (tag "span timeline") s1 s2)
    [ 2; 4 ]

let test_stress_identity_fixed () =
  let topo =
    Topology.
      {
        host = Hammer;
        dir_shards = 2;
        accels =
          [
            default_accel "a0";
            { (default_accel "b0") with variant = Full_state; link_latency = 5 };
          ];
      }
  in
  let cfg = Config.stress_sized (Config.of_topology topo) in
  check_identical ~what:"2-guard hammer" cfg ~seed:11 ~ops:60

let test_stress_identity_legacy () =
  (* The guard-less-topology path: a legacy single-guard organization. *)
  let cfg =
    Config.stress_sized
      (Config.make Config.Mesi (Config.Xg_two_level Config.Full_state))
  in
  check_identical ~what:"legacy mesi 2lvl" cfg ~seed:3 ~ops:50

let test_perf_identity () =
  let cfg = Config.make Config.Hammer (Config.Xg_one_level Config.Transactional) in
  let w = W.blocked ~tiles:4 () in
  let r1 = Perf.run ~sim_j:1 cfg w in
  let r2 = Perf.run ~sim_j:2 cfg w in
  let r4 = Perf.run ~sim_j:4 cfg w in
  Alcotest.(check bool) "perf result k=2 = k=1" true (r1 = r2);
  Alcotest.(check bool) "perf result k=4 = k=1" true (r1 = r4)

(* ---- QCheck: random small topologies x seeds --------------------------- *)

let gen_topology =
  QCheck.Gen.(
    let gen_spec i =
      let* variant = oneofl [ Topology.Transactional; Topology.Full_state ] in
      let* cached = frequency [ (3, return true); (1, return false) ] in
      let* two_level = if cached then bool else return false in
      let* cores = int_range 1 2 in
      let* lat = int_range 2 10 in
      return
        {
          (Topology.default_accel (Printf.sprintf "g%d" i)) with
          Topology.variant;
          cached;
          two_level;
          cores;
          link_latency = lat;
        }
    in
    let* host = oneofl [ Topology.Hammer; Topology.Mesi ] in
    let* shards = int_range 1 2 in
    let* n = int_range 1 3 in
    let* accels = flatten_l (List.init n gen_spec) in
    return Topology.{ host; dir_shards = shards; accels })

let arb_case =
  QCheck.make
    ~print:(fun (topo, seed) -> Printf.sprintf "%s seed=%d" (Topology.name topo) seed)
    QCheck.Gen.(pair gen_topology (int_range 1 1000))

let prop_identity =
  QCheck.Test.make ~name:"pdes byte-identity on random topologies" ~count:8
    arb_case (fun (topo, seed) ->
      let cfg = Config.stress_sized (Config.of_topology topo) in
      (match Topology.validate topo with
      | Ok _ -> ()
      | Error e -> QCheck.Test.fail_reportf "generated invalid topology: %s" e);
      let a1 = stress_artifacts ~workers:1 ~seed ~ops:30 cfg in
      let a2 = stress_artifacts ~workers:2 ~seed ~ops:30 cfg in
      let a4 = stress_artifacts ~workers:4 ~seed ~ops:30 cfg in
      a1 = a2 && a1 = a4)

let tests =
  [
    ( "pdes",
      [
        Alcotest.test_case "team runs every slot per round" `Quick test_team_rounds;
        Alcotest.test_case "team re-raises worker failure" `Quick test_team_failure;
        Alcotest.test_case "team workers=1 is inline" `Quick test_team_sequential;
        Alcotest.test_case "eligibility gate and lookahead" `Quick test_check_config;
        Alcotest.test_case "stress identity, 2-guard topology" `Quick
          test_stress_identity_fixed;
        Alcotest.test_case "stress identity, legacy organization" `Quick
          test_stress_identity_legacy;
        Alcotest.test_case "perf runner identity across sim-j" `Quick
          test_perf_identity;
        QCheck_alcotest.to_alcotest prop_identity;
      ] );
  ]
