(* Safety tests: the guarantee list of Figure 1 enforced scenario by scenario
   (F1), and fuzzing with a pathological accelerator (E2 / §4): never a crash,
   never a deadlock, CPU data always coherent. *)

module Engine = Xguard_sim.Engine
module Xg = Xguard_xg
module Config = Xguard_harness.Config
module Fault = Xguard_harness.Fault_scenarios
module Fuzz = Xguard_harness.Fuzz_tester

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let xg_configs = List.filter Config.uses_xg (Config.all_configurations ())

(* Which scenarios each XG mode is expected to *detect*.  Transactional mode
   cannot check stable-state consistency (G1a) or response-type consistency
   (G2a) — the paper's §2.3.2 relies on the host tolerating those instead. *)
let detectable cfg scenario =
  let full_state =
    match cfg.Config.org with
    | Config.Xg_one_level Config.Full_state | Config.Xg_two_level Config.Full_state -> true
    | _ -> false
  in
  match scenario with
  | Fault.Put_without_block | Fault.Wrong_response_type -> full_state
  | Fault.Read_no_access | Fault.Write_read_only | Fault.Double_get
  | Fault.Unsolicited_response | Fault.Silent_on_invalidate | Fault.Link_dead
  | Fault.Recovery_rejoin | Fault.Repeated_quarantine_permakill | Fault.Tarpit_budget ->
      true

let test_guarantees_per_config () =
  List.iter
    (fun cfg ->
      List.iter
        (fun scenario ->
          let outcome =
            try Fault.run cfg scenario
            with e ->
              Alcotest.failf "%s / %s raised %s" (Config.name cfg)
                (Fault.scenario_name scenario) (Printexc.to_string e)
          in
          let label = Config.name cfg ^ " / " ^ Fault.scenario_name scenario in
          check_bool (label ^ ": host stays live") true outcome.Fault.host_live;
          if detectable cfg scenario then
            check_bool (label ^ ": violation detected") true outcome.Fault.detected)
        Fault.all_scenarios)
    xg_configs

let test_wrong_response_corrected_full_state () =
  (* Full-State: the InvAck-from-owner is corrected to a zero writeback and
     reported (paper §2.2, Guarantee 2a example). *)
  List.iter
    (fun host ->
      let cfg = Config.make host (Config.Xg_one_level Config.Full_state) in
      let outcome = Fault.run cfg Fault.Wrong_response_type in
      check_bool "detected" true outcome.Fault.detected;
      check_bool "host live" true outcome.Fault.host_live)
    [ Config.Hammer; Config.Mesi ]

let test_timeout_answers_for_accel () =
  List.iter
    (fun cfg ->
      let outcome = Fault.run cfg Fault.Silent_on_invalidate in
      let label = Config.name cfg in
      check_bool (label ^ ": timeout detected") true outcome.Fault.detected;
      check_bool (label ^ ": host survived the silence") true outcome.Fault.host_live)
    xg_configs

let fuzz_one ?(pool = Fuzz.Shared_rw) cfg =
  let outcome = Fuzz.run cfg ~pool () in
  let label = Config.name cfg in
  (match outcome.Fuzz.crashed with
  | Some c -> Alcotest.failf "%s: fuzz crashed the host: %s" label c.Fuzz.exn_text
  | None -> ());
  check_bool (label ^ ": no deadlock under fuzzing") false outcome.Fuzz.deadlocked;
  check_int (label ^ ": all CPU ops complete") outcome.Fuzz.cpu_ops_expected
    outcome.Fuzz.cpu_ops_completed;
  (* Data on blocks the fuzzer cannot legitimately write must stay exact;
     on a shared writable pool the fuzzer owns blocks legally and garbage is
     expected (Guarantee 2 does not cover it). *)
  (match pool with
  | Fuzz.Disjoint | Fuzz.Shared_ro ->
      check_int (label ^ ": CPU data intact") 0 outcome.Fuzz.cpu_data_errors
  | Fuzz.Shared_rw -> ());
  check_bool (label ^ ": the chaos was real") true (outcome.Fuzz.chaos_messages > 1000);
  check_bool (label ^ ": violations were reported to the OS") true (outcome.Fuzz.violations > 0)

let test_fuzz_all_xg_configs () = List.iter fuzz_one xg_configs

let test_fuzz_disjoint_pool_data_intact () =
  List.iter (fuzz_one ~pool:Fuzz.Disjoint) xg_configs

let test_fuzz_read_only_pool_data_intact () =
  (* Guarantee 0b at work: a read-only accelerator cannot corrupt CPU data
     even while misbehaving on the very same blocks. *)
  List.iter (fuzz_one ~pool:Fuzz.Shared_ro) xg_configs

let test_fuzz_never_responding_accel () =
  (* The cruellest accelerator: absorbs every Invalidate silently. *)
  List.iter
    (fun host ->
      List.iter
        (fun variant ->
          let cfg = Config.make host (Config.Xg_one_level variant) in
          let cfg = { cfg with Config.xg_timeout = 500 } in
          let outcome = Fuzz.run cfg ~pool:Fuzz.Disjoint ~respond_probability:0.0 () in
          let label = Config.name cfg ^ " (mute)" in
          (match outcome.Fuzz.crashed with
          | Some c -> Alcotest.failf "%s crashed: %s" label c.Fuzz.exn_text
          | None -> ());
          check_bool (label ^ ": no deadlock") false outcome.Fuzz.deadlocked;
          check_bool (label ^ ": timeouts fired") true
            (List.mem_assoc Xg.Os_model.Response_timeout outcome.Fuzz.violations_by_kind
            || outcome.Fuzz.invalidations_ignored = 0))
        [ Config.Full_state; Config.Transactional ])
    [ Config.Hammer; Config.Mesi ]

let prop_fuzz_random_seeds =
  QCheck2.Test.make ~name:"fuzzing never crashes or deadlocks the host" ~count:10
    QCheck2.Gen.(pair (int_range 1 100_000) (int_range 0 7))
    (fun (seed, idx) ->
      let cfg = List.nth xg_configs idx in
      let cfg = { cfg with Config.seed } in
      let outcome = Fuzz.run cfg ~pool:Fuzz.Disjoint ~cpu_ops:150 () in
      outcome.Fuzz.crashed = None
      && (not outcome.Fuzz.deadlocked)
      && outcome.Fuzz.cpu_data_errors = 0)

let test_link_dead_quarantine () =
  (* The acceptance shape of the recovery layer: kill the wire mid-transaction
     in every XG config; the guard must escalate to quarantine and the host
     must stay fully live. *)
  List.iter
    (fun cfg ->
      let outcome = Fault.run cfg Fault.Link_dead in
      let label = Config.name cfg ^ " / link-dead" in
      check_bool (label ^ ": link faults reported") true outcome.Fault.detected;
      check_bool (label ^ ": accelerator quarantined") true outcome.Fault.quarantined;
      check_bool (label ^ ": OS model saw the quarantine report") true
        outcome.Fault.os_quarantined;
      check_bool (label ^ ": host stays live") true outcome.Fault.host_live;
      check_bool
        (label ^ ": link coverage present")
        true
        (List.exists (fun (n, _, _) -> n = "xg.link") outcome.Fault.coverage_sets))
    xg_configs

let test_topology_quarantine_isolation () =
  (* The multi-guard isolation claim (same measurement as experiment E9b): in
     an N=3 mixed cached/uncached topology, guard a0's device owns a block
     when its link goes dark; the guard escalates to quarantine, and the
     neighbors' stress throughput must stay within 5% of the run where a0 is
     healthy — a misbehaving accelerator cannot wedge or starve its
     neighbors. *)
  let iso = Xguard_harness.Experiments.measure_isolation ~ops:120 () in
  let module E = Xguard_harness.Experiments in
  check_bool "victim guard quarantined" true iso.E.iso_quarantined;
  check_bool "neither run deadlocks" false iso.E.iso_deadlocked;
  check_int "no data errors in either run" 0 iso.E.iso_data_errors;
  check_bool "neighbor devices make progress" true (iso.E.iso_neighbor_ops = 2 * 120);
  check_bool
    (Printf.sprintf "neighbor throughput within 5%% of baseline (slowdown %.3f)"
       iso.E.iso_slowdown)
    true (iso.E.iso_slowdown <= 1.05)

let recovery_configs =
  [
    Config.make Config.Hammer (Config.Xg_one_level Config.Full_state);
    Config.make Config.Mesi (Config.Xg_one_level Config.Transactional);
  ]

let test_recovery_rejoin () =
  (* The full lifecycle: dark wire → quarantine → link reset → probation →
     promotion.  The accelerator must transact again and the host must never
     have stalled. *)
  List.iter
    (fun cfg ->
      let o = Fault.run cfg Fault.Recovery_rejoin in
      let label = Config.name cfg ^ " / rejoin" in
      check_bool (label ^ ": link faults reported") true o.Fault.detected;
      check_bool (label ^ ": exactly one rejoin") true (o.Fault.rejoins = 1);
      check_bool (label ^ ": not permakilled") false o.Fault.permakilled;
      check_bool (label ^ ": accelerator transacts after rejoin") true
        o.Fault.accel_live_after;
      check_bool (label ^ ": host stays live") true o.Fault.host_live)
    recovery_configs

let test_repeated_quarantine_permakill () =
  List.iter
    (fun cfg ->
      let o = Fault.run cfg Fault.Repeated_quarantine_permakill in
      let label = Config.name cfg ^ " / permakill" in
      check_bool (label ^ ": permanently killed") true o.Fault.permakilled;
      check_bool (label ^ ": rejoined once before dying") true (o.Fault.rejoins = 1);
      check_bool (label ^ ": accelerator stays dead") false o.Fault.accel_live_after;
      check_bool (label ^ ": host stays live") true o.Fault.host_live)
    recovery_configs

let test_tarpit_budget_before_g2c () =
  (* A slow-but-honest accelerator: budgets must catch it strictly before the
     coarse G2c deadline ever fires. *)
  List.iter
    (fun cfg ->
      let o = Fault.run cfg Fault.Tarpit_budget in
      let label = Config.name cfg ^ " / tarpit" in
      check_bool (label ^ ": budget violation reported") true o.Fault.detected;
      check_bool (label ^ ": at least one budget trip") true (o.Fault.budget_trips > 0);
      check_int (label ^ ": no G2c timeout fired") 0 o.Fault.g2c_timeouts;
      check_bool (label ^ ": quarantined by the budget ladder") true o.Fault.quarantined;
      check_bool (label ^ ": host stays live") true o.Fault.host_live)
    recovery_configs

let test_os_policy_disable () =
  (* Disable-accelerator policy: after the first violation the guard drops
     accelerator requests but keeps the host alive. *)
  let cfg = Config.make Config.Hammer (Config.Xg_one_level Config.Full_state) in
  let cfg = { cfg with Config.os_policy = Xg.Os_model.Disable_accelerator } in
  let outcome = Fault.run cfg Fault.Put_without_block in
  check_bool "detected" true outcome.Fault.detected;
  check_bool "host live after disable" true outcome.Fault.host_live

let tests =
  [
    ( "safety.guarantees",
      [
        Alcotest.test_case "all guarantees, all XG configs" `Quick test_guarantees_per_config;
        Alcotest.test_case "G2a corrected (full-state)" `Quick
          test_wrong_response_corrected_full_state;
        Alcotest.test_case "G2c timeout recovery" `Quick test_timeout_answers_for_accel;
        Alcotest.test_case "link-dead quarantine" `Quick test_link_dead_quarantine;
        Alcotest.test_case "recovery: quarantine, reset, rejoin" `Quick test_recovery_rejoin;
        Alcotest.test_case "recovery: repeated quarantine permakills" `Quick
          test_repeated_quarantine_permakill;
        Alcotest.test_case "budgets: tarpit trips before G2c" `Quick
          test_tarpit_budget_before_g2c;
        Alcotest.test_case "disable-accelerator policy" `Quick test_os_policy_disable;
        Alcotest.test_case "topology quarantine isolation" `Slow
          test_topology_quarantine_isolation;
      ] );
    ( "safety.fuzz",
      [
        Alcotest.test_case "fuzz all 8 XG configs" `Quick test_fuzz_all_xg_configs;
        Alcotest.test_case "disjoint pool: data intact" `Quick
          test_fuzz_disjoint_pool_data_intact;
        Alcotest.test_case "read-only pool: data intact (G0b)" `Quick
          test_fuzz_read_only_pool_data_intact;
        Alcotest.test_case "mute accelerator" `Quick test_fuzz_never_responding_accel;
        QCheck_alcotest.to_alcotest prop_fuzz_random_seeds;
      ] );
  ]
