(* Tests for counters, histograms and result tables. *)

module Counter = Xguard_stats.Counter
module Histogram = Xguard_stats.Histogram
module Table = Xguard_stats.Table

let check_int = Alcotest.(check int)

let test_counter_basics () =
  let c = Counter.create "msgs" in
  check_int "starts at zero" 0 (Counter.get c);
  Counter.incr c;
  Counter.add c 5;
  check_int "incr + add" 6 (Counter.get c);
  Counter.reset c;
  check_int "reset" 0 (Counter.get c)

let test_group_find_or_create () =
  let g = Counter.Group.create "cache" in
  Counter.Group.incr g "hits";
  Counter.Group.incr g "hits";
  Counter.Group.add g "misses" 3;
  check_int "hits" 2 (Counter.Group.get g "hits");
  check_int "misses" 3 (Counter.Group.get g "misses");
  check_int "untouched counter reads zero" 0 (Counter.Group.get g "evictions");
  Alcotest.(check (list (pair string int)))
    "creation order" [ ("hits", 2); ("misses", 3) ]
    (Counter.Group.to_list g)

let test_group_reset_all () =
  let g = Counter.Group.create "g" in
  Counter.Group.add g "a" 10;
  Counter.Group.add g "b" 20;
  Counter.Group.reset_all g;
  check_int "a reset" 0 (Counter.Group.get g "a");
  check_int "b reset" 0 (Counter.Group.get g "b")

let test_histogram_exact_stats () =
  let h = Histogram.create "lat" in
  List.iter (Histogram.observe h) [ 3; 1; 4; 1; 5; 9; 2; 6 ];
  check_int "count" 8 (Histogram.count h);
  check_int "sum" 31 (Histogram.sum h);
  check_int "min" 1 (Histogram.min_value h);
  check_int "max" 9 (Histogram.max_value h);
  Alcotest.(check (float 0.001)) "mean" 3.875 (Histogram.mean h)

let test_histogram_percentile_monotone () =
  let h = Histogram.create "p" in
  for i = 0 to 1000 do
    Histogram.observe h i
  done;
  let p50 = Histogram.percentile h 0.5 in
  let p90 = Histogram.percentile h 0.9 in
  let p100 = Histogram.percentile h 1.0 in
  Alcotest.(check bool) "p50 <= p90" true (p50 <= p90);
  Alcotest.(check bool) "p90 <= p100" true (p90 <= p100);
  check_int "p100 is max" 1000 p100;
  (* Bucketed estimate: p50 of 0..1000 must land within its power-of-two
     bucket, i.e. in [500, 1023]. *)
  Alcotest.(check bool) "p50 upper bound is sane" true (p50 >= 500 && p50 <= 1023)

let test_histogram_empty_errors () =
  let h = Histogram.create "e" in
  Alcotest.(check bool) "count 0" true (Histogram.count h = 0);
  (try
     ignore (Histogram.min_value h);
     Alcotest.fail "expected failure"
   with Invalid_argument _ -> ());
  (try
     ignore (Histogram.percentile h 0.5);
     Alcotest.fail "expected failure"
   with Invalid_argument _ -> ())

let test_histogram_single_sample () =
  let h = Histogram.create "one" in
  Histogram.observe h 7;
  check_int "p0 is the sample" 7 (Histogram.percentile h 0.0);
  check_int "p50 is the sample" 7 (Histogram.percentile h 0.5);
  check_int "p100 is the sample" 7 (Histogram.percentile h 1.0);
  check_int "min" 7 (Histogram.min_value h);
  check_int "max" 7 (Histogram.max_value h);
  check_int "count" 1 (Histogram.count h)

let test_histogram_boundary_quantiles () =
  (* Two samples in bucket 0 ({0}) and two in bucket 1 ({1}): the quantile
     target lands exactly on the cumulative-count boundary between buckets. *)
  let h = Histogram.create "bq" in
  List.iter (Histogram.observe h) [ 0; 0; 1; 1 ];
  check_int "p50 hits the first bucket exactly" 0 (Histogram.percentile h 0.5);
  check_int "p75 crosses into the second" 1 (Histogram.percentile h 0.75);
  check_int "p100 is the max" 1 (Histogram.percentile h 1.0);
  (* Out-of-range quantiles clamp rather than raise. *)
  check_int "p<0 clamps to p0" 0 (Histogram.percentile h (-0.5));
  check_int "p>1 clamps to p100" 1 (Histogram.percentile h 1.5)

(* [quantile] is the non-raising sibling of [percentile] used by SLO
   evaluation: None on empty, clamping at the edges, and exact max at
   q = 1.0 (where [percentile] may only promise a bucket upper bound). *)
let test_histogram_quantile_edges () =
  let e = Histogram.create "qe" in
  Alcotest.(check (option int)) "empty q0.5" None (Histogram.quantile e 0.5);
  Alcotest.(check (option int)) "empty q1.0" None (Histogram.quantile e 1.0);
  let one = Histogram.create "q1" in
  Histogram.observe one 7;
  Alcotest.(check (option int)) "single q0.0" (Some 7) (Histogram.quantile one 0.0);
  Alcotest.(check (option int)) "single q0.5" (Some 7) (Histogram.quantile one 0.5);
  Alcotest.(check (option int)) "single q1.0" (Some 7) (Histogram.quantile one 1.0);
  (* Samples in different power-of-two buckets: q=1.0 must be the recorded
     maximum (300), not bucket 256..511's upper bound. *)
  let h = Histogram.create "qm" in
  List.iter (Histogram.observe h) [ 5; 300 ];
  Alcotest.(check (option int)) "q1.0 exact max" (Some 300) (Histogram.quantile h 1.0);
  Alcotest.(check (option int)) "q>1 clamps to max" (Some 300) (Histogram.quantile h 1.5);
  (match Histogram.quantile h 0.25 with
  | Some v -> Alcotest.(check bool) "q0.25 covers the low sample" true (v >= 5)
  | None -> Alcotest.fail "non-empty histogram returned None")

(* [of_dump] must rebuild from the (lo, count) bucket serialization so that
   the restored histogram is indistinguishable from the original — the
   property [xguard report] relies on when merging shard metric streams. *)
let test_histogram_of_dump_roundtrip () =
  let h = Histogram.create "d" in
  List.iter (Histogram.observe h) [ 0; 1; 3; 17; 300; 300 ];
  let dump = List.map (fun (lo, _, c) -> (lo, c)) (Histogram.buckets h) in
  let r =
    Histogram.of_dump ~name:"d" ~sum:(Histogram.sum h)
      ~min_v:(Histogram.min_value h) ~max_v:(Histogram.max_value h) dump
  in
  check_int "count restored" (Histogram.count h) (Histogram.count r);
  check_int "sum restored" (Histogram.sum h) (Histogram.sum r);
  check_int "min restored" (Histogram.min_value h) (Histogram.min_value r);
  check_int "max restored" (Histogram.max_value h) (Histogram.max_value r);
  Alcotest.(check bool) "buckets restored" true
    (Histogram.buckets h = Histogram.buckets r);
  Alcotest.(check (option int)) "q0.5 restored" (Histogram.quantile h 0.5)
    (Histogram.quantile r 0.5);
  Alcotest.(check (option int)) "q1.0 restored" (Histogram.quantile h 1.0)
    (Histogram.quantile r 1.0);
  (* Restored histograms merge like the originals. *)
  let g = Histogram.create "d" in
  List.iter (Histogram.observe g) [ 2; 90 ];
  let g' =
    Histogram.of_dump ~name:"d" ~sum:(Histogram.sum g)
      ~min_v:(Histogram.min_value g) ~max_v:(Histogram.max_value g)
      (List.map (fun (lo, _, c) -> (lo, c)) (Histogram.buckets g))
  in
  let m = Histogram.merge h g and m' = Histogram.merge r g' in
  Alcotest.(check bool) "restored merge matches" true
    ( Histogram.count m = Histogram.count m'
    && Histogram.sum m = Histogram.sum m'
    && Histogram.buckets m = Histogram.buckets m'
    && Histogram.quantile m 0.99 = Histogram.quantile m' 0.99 );
  (* A lower bound that is not 0 or a power of two is a corrupt stream. *)
  try
    ignore (Histogram.of_dump ~name:"bad" ~sum:3 ~min_v:3 ~max_v:3 [ (3, 1) ]);
    Alcotest.fail "expected Invalid_argument on non-canonical bucket lo"
  with Invalid_argument _ -> ()

let test_histogram_merge () =
  let a = Histogram.create "m" and b = Histogram.create "m" in
  List.iter (Histogram.observe a) [ 1; 2; 3 ];
  List.iter (Histogram.observe b) [ 10; 20 ];
  let m = Histogram.merge a b in
  check_int "count adds" 5 (Histogram.count m);
  check_int "sum adds" 36 (Histogram.sum m);
  check_int "min of mins" 1 (Histogram.min_value m);
  check_int "max of maxes" 20 (Histogram.max_value m);
  (* merge is pure: the inputs keep their own state *)
  check_int "a untouched" 3 (Histogram.count a);
  check_int "b untouched" 2 (Histogram.count b);
  (* the empty histogram is the identity on both sides *)
  let e = Histogram.create "m" in
  let ae = Histogram.merge a e and ea = Histogram.merge e a in
  check_int "a+empty count" 3 (Histogram.count ae);
  check_int "a+empty min" 1 (Histogram.min_value ae);
  check_int "a+empty max" 3 (Histogram.max_value ae);
  check_int "empty+a count" 3 (Histogram.count ea);
  check_int "empty+a sum" 6 (Histogram.sum ea);
  (* merging two empties stays empty (sentinels compose) *)
  let ee = Histogram.merge e (Histogram.create "m") in
  check_int "empty+empty count" 0 (Histogram.count ee);
  try
    ignore (Histogram.min_value ee);
    Alcotest.fail "expected empty merge to stay empty"
  with Invalid_argument _ -> ()

(* Sharding samples across N histograms and folding with [merge] must be
   observationally identical to observing them all into one histogram —
   the property the campaign relies on for byte-identical -j N reports. *)
let prop_histogram_shard_merge =
  QCheck2.Test.make ~name:"sharded histogram merge equals sequential accumulation"
    ~count:300
    QCheck2.Gen.(pair (int_range 1 5) (small_list small_nat))
    (fun (shards, samples) ->
      let seq = Histogram.create "h" in
      List.iter (Histogram.observe seq) samples;
      let parts = Array.init shards (fun _ -> Histogram.create "h") in
      List.iteri (fun i v -> Histogram.observe parts.(i mod shards) v) samples;
      (* Fold from an empty histogram so the sentinel min/max compose too. *)
      let merged = Array.fold_left Histogram.merge (Histogram.create "h") parts in
      let view h =
        ( Histogram.count h,
          Histogram.sum h,
          Histogram.buckets h,
          if Histogram.count h = 0 then None
          else
            Some
              ( Histogram.min_value h,
                Histogram.max_value h,
                Histogram.percentile h 0.5,
                Histogram.percentile h 0.95,
                Histogram.percentile h 0.99 ) )
      in
      view merged = view seq)

let test_histogram_buckets_cover_all () =
  let h = Histogram.create "b" in
  List.iter (Histogram.observe h) [ 0; 1; 2; 3; 100; 100_000 ];
  let total = List.fold_left (fun acc (_, _, c) -> acc + c) 0 (Histogram.buckets h) in
  check_int "bucket counts sum to n" 6 total

let test_table_rendering () =
  let t = Table.create ~title:"Demo" ~columns:[ "config"; "cycles"; "ratio" ] in
  Table.add_row t [ "baseline"; "1000"; Table.cell_ratio 1.0 ];
  Table.add_separator t;
  Table.add_row t [ "xg"; "1100"; Table.cell_ratio 1.1 ];
  let s = Table.to_string t in
  Alcotest.(check bool) "title present" true (String.length s > 0 && String.sub s 0 4 = "Demo");
  let contains needle hay =
    let n = String.length needle and h = String.length hay in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "row present" true (contains "baseline" s);
  Alcotest.(check bool) "ratio cell" true (contains "1.10x" s)

let test_table_arity_checked () =
  let t = Table.create ~title:"T" ~columns:[ "a"; "b" ] in
  try
    Table.add_row t [ "only-one" ];
    Alcotest.fail "expected arity failure"
  with Invalid_argument _ -> ()

let test_cells () =
  Alcotest.(check string) "pct" "3.1%" (Table.cell_pct 0.031);
  Alcotest.(check string) "float" "2.50" (Table.cell_float 2.5);
  Alcotest.(check string) "int" "42" (Table.cell_int 42)

(* The interned hot path (Group.intern/incr_id, Coverage.intern_matrix/hit)
   must be observationally indistinguishable from string-keyed Group.incr:
   same counters, same first-touch order, same analyze/merge output — even
   when the two paths are interleaved on the same group and counts are
   sharded across groups then merged. *)
let prop_interned_byte_identical =
  let module Group = Counter.Group in
  let module Coverage = Xguard_trace.Coverage in
  QCheck2.Test.make
    ~name:"interned counter ids are byte-identical to string keys" ~count:200
    QCheck2.Gen.(
      pair
        (pair (int_range 1 6) (int_range 1 6))
        (pair (int_range 1 4) (small_list (triple small_nat small_nat bool))))
    (fun ((n_states, n_events), (shards, visits)) ->
      let states = List.init n_states (Printf.sprintf "S%d") in
      let events = List.init n_events (Printf.sprintf "E%d") in
      let space = Coverage.space ~name:"prop" ~states ~events () in
      let st = Array.of_list states and ev = Array.of_list events in
      let ref_groups = Array.init shards (fun i -> Group.create (Printf.sprintf "g%d" i)) in
      let int_groups = Array.init shards (fun i -> Group.create (Printf.sprintf "g%d" i)) in
      let mats = Array.map (Coverage.intern_matrix space) int_groups in
      List.iteri
        (fun k (s, e, via_string) ->
          let s = s mod n_states and e = e mod n_events in
          let shard = k mod shards in
          Group.incr ref_groups.(shard) (st.(s) ^ "." ^ ev.(e));
          if via_string then Group.incr int_groups.(shard) (st.(s) ^ "." ^ ev.(e))
          else Coverage.hit mats.(shard) ~state:s ~event:e)
        visits;
      let same_dumps =
        Array.for_all2
          (fun a b -> Group.to_list a = Group.to_list b)
          ref_groups int_groups
      in
      let all_ref = Array.to_list ref_groups and all_int = Array.to_list int_groups in
      let same_analysis =
        Coverage.to_string (Coverage.analyze space all_ref)
        = Coverage.to_string (Coverage.analyze space all_int)
      in
      let merged =
        let per_shard = Array.map (fun g -> Coverage.analyze space [ g ]) int_groups in
        Array.fold_left Coverage.merge per_shard.(0)
          (Array.sub per_shard 1 (shards - 1))
      in
      let merge_matches =
        Coverage.to_string merged = Coverage.to_string (Coverage.analyze space all_int)
      in
      same_dumps && same_analysis && merge_matches)

let tests =
  [
    ( "stats",
      [
        Alcotest.test_case "counter basics" `Quick test_counter_basics;
        Alcotest.test_case "group find-or-create" `Quick test_group_find_or_create;
        Alcotest.test_case "group reset" `Quick test_group_reset_all;
        Alcotest.test_case "histogram exact stats" `Quick test_histogram_exact_stats;
        Alcotest.test_case "histogram percentiles" `Quick test_histogram_percentile_monotone;
        Alcotest.test_case "histogram empty errors" `Quick test_histogram_empty_errors;
        Alcotest.test_case "histogram single sample" `Quick test_histogram_single_sample;
        Alcotest.test_case "histogram boundary quantiles" `Quick
          test_histogram_boundary_quantiles;
        Alcotest.test_case "histogram quantile edges" `Quick
          test_histogram_quantile_edges;
        Alcotest.test_case "histogram of_dump roundtrip" `Quick
          test_histogram_of_dump_roundtrip;
        Alcotest.test_case "histogram merge" `Quick test_histogram_merge;
        Alcotest.test_case "histogram buckets" `Quick test_histogram_buckets_cover_all;
        Alcotest.test_case "table rendering" `Quick test_table_rendering;
        Alcotest.test_case "table arity" `Quick test_table_arity_checked;
        Alcotest.test_case "cell formatting" `Quick test_cells;
        QCheck_alcotest.to_alcotest prop_interned_byte_identical;
        QCheck_alcotest.to_alcotest prop_histogram_shard_merge;
      ] );
  ]
