(* Transition-coverage floors.

   Runs the random tester and the fuzzer across both hosts and both Crossing
   Guard modes, merges every controller's (state x event) coverage counters
   across all runs, and asserts a minimum covered fraction per controller
   kind.  On failure the uncovered transitions are printed, so a blind spot
   in the test suite is named, not just counted.

   The floors are deliberately below the fractions measured when the suite
   was written (see the margins in [floors]) so scheduling jitter cannot flip
   the test, while a protocol or harness change that stops exercising a whole
   family of transitions still fails loudly. *)

module Config = Xguard_harness.Config
module System = Xguard_harness.System
module Tester = Xguard_harness.Random_tester
module Fuzz = Xguard_harness.Fuzz_tester
module Fault = Xguard_harness.Fault_scenarios
module Coverage = Xguard_trace.Coverage
module Rng = Xguard_sim.Rng
module C = Xguard_check.Checker
module Group = Xguard_stats.Counter.Group

let stress_configs =
  [
    Config.make Config.Hammer (Config.Xg_one_level Config.Full_state);
    Config.make Config.Hammer (Config.Xg_one_level Config.Transactional);
    Config.make Config.Mesi (Config.Xg_one_level Config.Full_state);
    Config.make Config.Mesi (Config.Xg_one_level Config.Transactional);
    Config.make Config.Hammer (Config.Xg_two_level Config.Transactional);
    Config.make Config.Mesi (Config.Xg_two_level Config.Full_state);
  ]

let fuzz_configs =
  [
    Config.make Config.Hammer (Config.Xg_one_level Config.Full_state);
    Config.make Config.Hammer (Config.Xg_one_level Config.Transactional);
    Config.make Config.Mesi (Config.Xg_one_level Config.Full_state);
    Config.make Config.Mesi (Config.Xg_one_level Config.Transactional);
  ]

let collect_runs () =
  let runs = ref [] in
  List.iter
    (fun cfg ->
      List.iter
        (fun seed ->
          let cfg = Config.stress_sized { cfg with Config.seed = seed } in
          let sys = System.build cfg in
          let ports = Array.append sys.System.cpu_ports sys.System.accel_ports in
          ignore
            (Tester.run ~engine:sys.System.engine
               ~rng:(Rng.create ~seed:(seed * 7 + 1))
               ~ports ~addresses:(Array.init 6 Addr.block) ~ops_per_core:300 ());
          runs := sys.System.coverage_sets () :: !runs)
        [ 11; 23 ])
    stress_configs;
  List.iter
    (fun cfg ->
      let cfg = Config.stress_sized { cfg with Config.seed = 5 } in
      (* The three pools exercise different guard facets: Shared_rw the
         writable (T_RW / E / M) rows, Shared_ro the read-only (T_RO / S_RO)
         rows, Disjoint the no-access (T_NA) rows. *)
      List.iter
        (fun pool ->
          let o = Fuzz.run cfg ~pool ~cpu_ops:150 ~chaos_duration:20_000 () in
          runs := o.Fuzz.coverage_sets :: !runs)
        [ Fuzz.Shared_rw; Fuzz.Shared_ro; Fuzz.Disjoint ])
    fuzz_configs;
  (* Directed fault scenarios contribute too: they reach guard transitions
     random traffic cannot (forced timeouts, wrong-type corrections, and the
     quarantine rows behind a dead link). *)
  List.iter
    (fun cfg ->
      List.iter
        (fun scenario ->
          let o = Fault.run cfg scenario in
          runs := o.Fault.coverage_sets :: !runs)
        Fault.all_scenarios)
    fuzz_configs;
  (* The model checker's exhaustive tiny sweep contributes a deterministic
     coverage backbone: every pair below fires on EVERY run of this suite,
     with no scheduling jitter, which is what lets the floors sit closer to
     the measured fractions than the sampled runs alone would allow. *)
  List.iter
    (fun (name, plan) ->
      let jittered =
        String.length name >= 7
        && String.sub name (String.length name - 7) 7 = "+jitter"
      in
      if not jittered then begin
        let _, pairs = C.covered_pairs plan in
        let sys = System.build plan.C.config in
        let run =
          List.map
            (fun (space_name, space, _) ->
              let g = Group.create ("check." ^ space_name) in
              (match List.assoc_opt space_name pairs with
              | Some keys -> List.iter (fun k -> Group.incr g k) keys
              | None -> ());
              (space_name, space, [ g ]))
            (sys.System.coverage_sets ())
        in
        runs := run :: !runs
      end)
    (C.tiny_plans ());
  List.rev !runs

(* Merge the per-run (name, space, groups) sets: same space name -> one report
   over the concatenated counter groups. *)
let merged_reports runs =
  let names = ref [] in
  List.iter
    (fun run ->
      List.iter (fun (n, _, _) -> if not (List.mem n !names) then names := n :: !names) run)
    runs;
  List.rev_map
    (fun name ->
      let space =
        List.find_map
          (fun run -> List.find_map (fun (n, s, _) -> if n = name then Some s else None) run)
          runs
        |> Option.get
      in
      let groups =
        List.concat_map
          (fun run -> List.concat_map (fun (n, _, gs) -> if n = name then gs else []) run)
          runs
      in
      Coverage.analyze space groups)
    !names

let reports = lazy (merged_reports (collect_runs ()))

let find name =
  match
    List.find_opt (fun r -> r.Coverage.about.Coverage.name = name) (Lazy.force reports)
  with
  | Some r -> r
  | None -> Alcotest.failf "no coverage report named %S was collected" name

(* name -> minimum covered fraction of the registered possible pairs.
   Measured with the checker backbone merged in (PR 6): xg 0.791 (102/129),
   hammer.l1l2 0.803, mesi.l1 0.673, mesi.l2 1.00, accel.l1 0.913.

   Classification of the 27 uncovered xg pairs, from the checker's exhaustive
   reachable-set output (`xguard check --coverage` over the four tiny
   configurations): NONE of them is newly covered, and all 27 are provably
   unreachable under the tiny sweep — exhaustive enumeration visits every
   reachable state of those models and never fires them.  By family:
   - [I|S|T_RO|T_NA|S_RO|Q].Recall: a Recall needs the guard timeout
     (xg_timeout = 400) to expire inside an open transaction; every tiny
     interleaving drains in well under 100 cycles, so the timeout can never
     fire.  Reaching these needs the directed fault scenarios' forced
     timeouts (which cover T_RW/B_* Recall rows) or a stalled accelerator.
   - S_RO.*: the S_RO row is the full-state guard's read-only-shared
     tracking state; the tiny workloads and the random suite both run
     writable pages, and the Shared_ro fuzz pool drives the transactional
     (T_RO) rows instead.  Unreachable until a full-state read-only
     workload exists.
   - T_NA.{GetM,Put*,CleanWB,DirtyWB,InvAck}: a no-access page can only see
     these from a hostile accelerator; the Disjoint fuzz pool reaches the
     T_NA.GetS probe but randomly misses the rest of the row.
   - B_inv.Grant and Q.{Fwd_S,Grant,PutDone}: races between an
     in-flight grant and an invalidation/quarantine; need >1 outstanding
     accelerator transactions plus a fault, outside the tiny model
     (max_outstanding = 1) by construction.
   The checker's own 14 xg pairs are a strict subset of the randomly covered
   set — its value here is determinism (they can never flake), which is why
   the floors now sit ~0.04 under the measured fractions instead of ~0.10. *)
let floors =
  [
    ("xg", 0.75);
    ("hammer.l1l2", 0.76);
    ("mesi.l1", 0.62);
    ("mesi.l2", 0.95);
    ("accel.l1", 0.88);
  ]

let assert_floor (name, floor) =
  let r = find name in
  let frac = Coverage.fraction r in
  if frac < floor then
    Alcotest.failf "%s: coverage %.2f (%d/%d) below floor %.2f; uncovered transitions:\n%s" name
      frac r.Coverage.covered r.Coverage.total floor
      (Format.asprintf "%a" Coverage.pp_uncovered r)

let test_floors () = List.iter assert_floor floors

let test_no_strays () =
  (* A stray key is a transition the controller logged outside its registered
     vocabulary: either an "impossible" pair actually fired or the
     registration drifted from the code.  Both are bugs somewhere. *)
  List.iter
    (fun (name, _) ->
      let r = find name in
      match r.Coverage.stray with
      | [] -> ()
      | strays ->
          Alcotest.failf "%s: transitions outside the registered space: %s" name
            (String.concat ", " (List.map (fun (k, n) -> Printf.sprintf "%s (x%d)" k n) strays)))
    floors

let tests =
  [
    ( "coverage-floor",
      [
        Alcotest.test_case "per-controller transition floors" `Slow test_floors;
        Alcotest.test_case "no transitions outside registered spaces" `Slow test_no_strays;
      ] );
  ]
