(* Transition-coverage floors.

   Runs the random tester and the fuzzer across both hosts and both Crossing
   Guard modes, merges every controller's (state x event) coverage counters
   across all runs, and asserts a minimum covered fraction per controller
   kind.  On failure the uncovered transitions are printed, so a blind spot
   in the test suite is named, not just counted.

   The floors are deliberately below the fractions measured when the suite
   was written (see the margins in [floors]) so scheduling jitter cannot flip
   the test, while a protocol or harness change that stops exercising a whole
   family of transitions still fails loudly. *)

module Config = Xguard_harness.Config
module System = Xguard_harness.System
module Tester = Xguard_harness.Random_tester
module Fuzz = Xguard_harness.Fuzz_tester
module Fault = Xguard_harness.Fault_scenarios
module Coverage = Xguard_trace.Coverage
module Rng = Xguard_sim.Rng

let stress_configs =
  [
    Config.make Config.Hammer (Config.Xg_one_level Config.Full_state);
    Config.make Config.Hammer (Config.Xg_one_level Config.Transactional);
    Config.make Config.Mesi (Config.Xg_one_level Config.Full_state);
    Config.make Config.Mesi (Config.Xg_one_level Config.Transactional);
    Config.make Config.Hammer (Config.Xg_two_level Config.Transactional);
    Config.make Config.Mesi (Config.Xg_two_level Config.Full_state);
  ]

let fuzz_configs =
  [
    Config.make Config.Hammer (Config.Xg_one_level Config.Full_state);
    Config.make Config.Hammer (Config.Xg_one_level Config.Transactional);
    Config.make Config.Mesi (Config.Xg_one_level Config.Full_state);
    Config.make Config.Mesi (Config.Xg_one_level Config.Transactional);
  ]

let collect_runs () =
  let runs = ref [] in
  List.iter
    (fun cfg ->
      List.iter
        (fun seed ->
          let cfg = Config.stress_sized { cfg with Config.seed = seed } in
          let sys = System.build cfg in
          let ports = Array.append sys.System.cpu_ports sys.System.accel_ports in
          ignore
            (Tester.run ~engine:sys.System.engine
               ~rng:(Rng.create ~seed:(seed * 7 + 1))
               ~ports ~addresses:(Array.init 6 Addr.block) ~ops_per_core:300 ());
          runs := sys.System.coverage_sets () :: !runs)
        [ 11; 23 ])
    stress_configs;
  List.iter
    (fun cfg ->
      let cfg = Config.stress_sized { cfg with Config.seed = 5 } in
      (* The three pools exercise different guard facets: Shared_rw the
         writable (T_RW / E / M) rows, Shared_ro the read-only (T_RO / S_RO)
         rows, Disjoint the no-access (T_NA) rows. *)
      List.iter
        (fun pool ->
          let o = Fuzz.run cfg ~pool ~cpu_ops:150 ~chaos_duration:20_000 () in
          runs := o.Fuzz.coverage_sets :: !runs)
        [ Fuzz.Shared_rw; Fuzz.Shared_ro; Fuzz.Disjoint ])
    fuzz_configs;
  (* Directed fault scenarios contribute too: they reach guard transitions
     random traffic cannot (forced timeouts, wrong-type corrections, and the
     quarantine rows behind a dead link). *)
  List.iter
    (fun cfg ->
      List.iter
        (fun scenario ->
          let o = Fault.run cfg scenario in
          runs := o.Fault.coverage_sets :: !runs)
        Fault.all_scenarios)
    fuzz_configs;
  List.rev !runs

(* Merge the per-run (name, space, groups) sets: same space name -> one report
   over the concatenated counter groups. *)
let merged_reports runs =
  let names = ref [] in
  List.iter
    (fun run ->
      List.iter (fun (n, _, _) -> if not (List.mem n !names) then names := n :: !names) run)
    runs;
  List.rev_map
    (fun name ->
      let space =
        List.find_map
          (fun run -> List.find_map (fun (n, s, _) -> if n = name then Some s else None) run)
          runs
        |> Option.get
      in
      let groups =
        List.concat_map
          (fun run -> List.concat_map (fun (n, _, gs) -> if n = name then gs else []) run)
          runs
      in
      Coverage.analyze space groups)
    !names

let reports = lazy (merged_reports (collect_runs ()))

let find name =
  match
    List.find_opt (fun r -> r.Coverage.about.Coverage.name = name) (Lazy.force reports)
  with
  | Some r -> r
  | None -> Alcotest.failf "no coverage report named %S was collected" name

(* name -> minimum covered fraction of the registered possible pairs.
   Measured when written: xg 0.80, hammer.l1l2 0.77, mesi.l1 0.65,
   mesi.l2 1.00, accel.l1 0.91. *)
let floors =
  [
    ("xg", 0.70);
    ("hammer.l1l2", 0.70);
    ("mesi.l1", 0.55);
    ("mesi.l2", 0.90);
    ("accel.l1", 0.85);
  ]

let assert_floor (name, floor) =
  let r = find name in
  let frac = Coverage.fraction r in
  if frac < floor then
    Alcotest.failf "%s: coverage %.2f (%d/%d) below floor %.2f; uncovered transitions:\n%s" name
      frac r.Coverage.covered r.Coverage.total floor
      (Format.asprintf "%a" Coverage.pp_uncovered r)

let test_floors () = List.iter assert_floor floors

let test_no_strays () =
  (* A stray key is a transition the controller logged outside its registered
     vocabulary: either an "impossible" pair actually fired or the
     registration drifted from the code.  Both are bugs somewhere. *)
  List.iter
    (fun (name, _) ->
      let r = find name in
      match r.Coverage.stray with
      | [] -> ()
      | strays ->
          Alcotest.failf "%s: transitions outside the registered space: %s" name
            (String.concat ", " (List.map (fun (k, n) -> Printf.sprintf "%s (x%d)" k n) strays)))
    floors

let tests =
  [
    ( "coverage-floor",
      [
        Alcotest.test_case "per-controller transition floors" `Slow test_floors;
        Alcotest.test_case "no transitions outside registered spaces" `Slow test_no_strays;
      ] );
  ]
