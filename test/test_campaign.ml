(* The parallel campaign layer: pool determinism and crash isolation, the
   mergeable result types, and the headline invariant — campaign output is
   byte-identical for any worker count. *)

module Pool = Xguard_parallel.Pool
module Table = Xguard_stats.Table
module Group = Xguard_stats.Counter.Group
module Coverage = Xguard_trace.Coverage
module Campaign = Xguard_harness.Campaign
module Config = Xguard_harness.Config
module Tester = Xguard_harness.Random_tester
module Fuzz = Xguard_harness.Fuzz_tester

let config_named name =
  List.find (fun c -> Config.name c = name) (Config.all_configurations ())

(* ---- pool ---- *)

let test_pool_workers_agree () =
  let f i = (i * i) + 1 in
  let serial = Pool.map ~workers:1 ~jobs:40 f in
  let par = Pool.map ~workers:4 ~jobs:40 f in
  Alcotest.(check int) "job count" 40 (Array.length par);
  Array.iteri
    (fun i o ->
      match (o, serial.(i)) with
      | Pool.Done a, Pool.Done b -> Alcotest.(check int) "same result" b a
      | _ -> Alcotest.fail "job unexpectedly failed")
    par

let test_pool_crash_isolation () =
  let f i = if i = 3 then failwith "boom" else i in
  let r = Pool.map ~workers:4 ~jobs:8 f in
  Array.iteri
    (fun i o ->
      match o with
      | Pool.Failed msg ->
          Alcotest.(check int) "only job 3 fails" 3 i;
          Alcotest.(check bool)
            "failure carries the exception text" true
            (String.length msg > 0)
      | Pool.Done v -> Alcotest.(check int) "other jobs run" i v)
    r

let test_seed_derivation () =
  let a = Pool.Seed.derive_all ~base:42 ~count:10 in
  let b = Pool.Seed.derive_all ~base:42 ~count:10 in
  Alcotest.(check (array int)) "derivation is deterministic" a b;
  let prefix = Pool.Seed.derive_all ~base:42 ~count:5 in
  Alcotest.(check (array int))
    "shorter campaigns are prefixes of longer ones" prefix (Array.sub a 0 5);
  Array.iteri
    (fun j s ->
      Alcotest.(check int)
        "derive agrees with derive_all" s
        (Pool.Seed.derive ~base:42 ~job:j);
      Alcotest.(check bool) "seeds are non-negative" true (s >= 0))
    a;
  let other = Pool.Seed.derive_all ~base:43 ~count:10 in
  Alcotest.(check bool) "different base, different stream" true (a <> other)

(* ---- mergeable results ---- *)

let mk_table rows =
  let t = Table.create ~title:"T" ~columns:[ "a"; "b" ] in
  List.iter (Table.add_row t) rows;
  t

let test_table_merge () =
  let r1 = [ [ "1"; "x" ]; [ "2"; "y" ] ]
  and r2 = [ [ "3"; "z" ] ]
  and r3 = [ [ "4"; "w" ]; [ "5"; "v" ] ] in
  let t1 = mk_table r1 and t2 = mk_table r2 and t3 = mk_table r3 in
  let serial = mk_table (r1 @ r2 @ r3) in
  let left = Table.merge (Table.merge t1 t2) t3 in
  let right = Table.merge t1 (Table.merge t2 t3) in
  Alcotest.(check string)
    "merge agrees with serial accumulation" (Table.to_string serial)
    (Table.to_string left);
  Alcotest.(check string)
    "merge is associative" (Table.to_string left) (Table.to_string right);
  Alcotest.(check (list (list string)))
    "inputs are not mutated" r1 (Table.rows t1);
  match Table.merge t1 (Table.create ~title:"other" ~columns:[ "a"; "b" ]) with
  | _ -> Alcotest.fail "mismatched titles must be rejected"
  | exception Invalid_argument _ -> ()

let test_coverage_merge () =
  let space =
    Coverage.space ~name:"t" ~states:[ "A"; "B" ] ~events:[ "x"; "y" ] ()
  in
  let mk name cells =
    let g = Group.create name in
    List.iter (fun (k, n) -> Group.add g k n) cells;
    g
  in
  let g1 = mk "g1" [ ("A.x", 3); ("B.y", 1); ("Z.q", 2) ] in
  let g2 = mk "g2" [ ("A.x", 1); ("A.y", 4) ] in
  let g3 = mk "g3" [ ("B.y", 2); ("Z.q", 1) ] in
  let r1 = Coverage.analyze space [ g1 ]
  and r2 = Coverage.analyze space [ g2 ]
  and r3 = Coverage.analyze space [ g3 ] in
  let serial = Coverage.analyze space [ g1; g2; g3 ] in
  let left = Coverage.merge (Coverage.merge r1 r2) r3 in
  let right = Coverage.merge r1 (Coverage.merge r2 r3) in
  let check_same what (a : Coverage.report) (b : Coverage.report) =
    List.iter
      (fun s ->
        List.iter
          (fun e ->
            Alcotest.(check int)
              (Printf.sprintf "%s: count %s.%s" what s e)
              (b.Coverage.count s e) (a.Coverage.count s e))
          space.Coverage.events)
      space.Coverage.states;
    Alcotest.(check int) (what ^ ": covered") b.Coverage.covered a.Coverage.covered;
    Alcotest.(check (list (pair string string)))
      (what ^ ": uncovered") b.Coverage.uncovered a.Coverage.uncovered;
    Alcotest.(check (list (pair string int)))
      (what ^ ": stray") b.Coverage.stray a.Coverage.stray
  in
  check_same "merge vs serial" left serial;
  check_same "associativity" left right;
  Alcotest.(check string)
    "rendered tables agree"
    (Table.to_string (Coverage.to_table serial))
    (Table.to_string (Coverage.to_table left))

let test_tester_merge () =
  let o ops errs dead addr =
    {
      Tester.ops_completed = ops;
      data_errors = errs;
      deadlocked = dead;
      cycles = ops * 2;
      first_error_addr = addr;
      ops_per_port = [| ops / 2; ops - (ops / 2) |];
    }
  in
  let a = o 100 0 false None and b = o 50 2 true (Some 3) and c = o 7 1 false (Some 9) in
  let m = Tester.merge (Tester.merge a b) c in
  Alcotest.(check int) "ops add" 157 m.Tester.ops_completed;
  Alcotest.(check (array int))
    "per-port ops add element-wise" [| 78; 79 |] m.Tester.ops_per_port;
  Alcotest.(check int) "errors add" 3 m.Tester.data_errors;
  Alcotest.(check int) "cycles add" 314 m.Tester.cycles;
  Alcotest.(check bool) "deadlock ORs" true m.Tester.deadlocked;
  Alcotest.(check (option int))
    "leftmost first error wins" (Some 3) m.Tester.first_error_addr;
  let right = Tester.merge a (Tester.merge b c) in
  Alcotest.(check bool) "associative" true (m = right)

let test_fuzz_merge_agrees_with_sums () =
  let run seed =
    Fuzz.run
      { (config_named "hammer/xg-trans-1lvl") with Config.seed = seed }
      ~cpu_ops:30 ~chaos_duration:3_000 ()
  in
  let a = run 11 and b = run 12 in
  let m = Fuzz.merge a b in
  Alcotest.(check int)
    "chaos messages add"
    (a.Fuzz.chaos_messages + b.Fuzz.chaos_messages)
    m.Fuzz.chaos_messages;
  Alcotest.(check int)
    "cpu ops add"
    (a.Fuzz.cpu_ops_completed + b.Fuzz.cpu_ops_completed)
    m.Fuzz.cpu_ops_completed;
  Alcotest.(check int)
    "violations add" (a.Fuzz.violations + b.Fuzz.violations) m.Fuzz.violations;
  Alcotest.(check int)
    "by-kind counts add up to the total" m.Fuzz.violations
    (List.fold_left (fun n (_, c) -> n + c) 0 m.Fuzz.violations_by_kind);
  Alcotest.(check int) "left seed is the replay handle" a.Fuzz.seed m.Fuzz.seed

(* ---- regressions ---- *)

(* Campaign-surfaced put race: a core-initiated "unnecessary PutS" and the
   port's ownership relinquishment overlapping on one block used to overwrite
   each other's writeback record in Xg_port, losing the core's completion —
   the guard wedged in B_put and the run deadlocked.  Puts are now deferred
   behind each other like gets behind puts. *)
let test_put_race_deadlock_fixed () =
  let cfg =
    { (config_named "hammer/xg-trans-2lvl") with Config.seed = 3642808914686572125 }
  in
  let o = Fuzz.run cfg ~cpu_ops:300 () in
  Alcotest.(check bool) "no deadlock" false o.Fuzz.deadlocked;
  Alcotest.(check bool) "no crash" true (o.Fuzz.crashed = None);
  Alcotest.(check int)
    "every cpu op completes" o.Fuzz.cpu_ops_expected o.Fuzz.cpu_ops_completed

let test_campaign_stress_j_invariance () =
  let configs =
    List.filteri (fun i _ -> i < 3) (Config.all_configurations ())
  in
  let run w =
    Campaign.run ~workers:w ~stress_ops:60 ~base_seed:9 Campaign.Stress ~configs
      ~seeds:3 ()
  in
  let r1 = run 1 and r4 = run 4 in
  Alcotest.(check int)
    "job count" (Campaign.job_count Campaign.Stress ~configs ~seeds:3) r1.Campaign.jobs;
  Alcotest.(check string)
    "-j 4 output equals -j 1" (Campaign.render r1) (Campaign.render r4)

let test_campaign_both_j_invariance () =
  let configs = [ config_named "hammer/xg-trans-1lvl" ] in
  let render w =
    Campaign.render
      (Campaign.run ~workers:w ~collect_coverage:true ~stress_ops:60
         ~fuzz_cpu_ops:60 ~base_seed:7 Campaign.Both ~configs ~seeds:1 ())
  in
  let r1 = render 1 in
  Alcotest.(check string) "-j 2 output equals -j 1" r1 (render 2);
  Alcotest.(check string) "-j 4 output equals -j 1" r1 (render 4)

let tests =
  [
    ( "campaign",
      [
        Alcotest.test_case "pool: workers agree with serial" `Quick
          test_pool_workers_agree;
        Alcotest.test_case "pool: crash isolation" `Quick test_pool_crash_isolation;
        Alcotest.test_case "pool: seed derivation" `Quick test_seed_derivation;
        Alcotest.test_case "table merge" `Quick test_table_merge;
        Alcotest.test_case "coverage merge" `Quick test_coverage_merge;
        Alcotest.test_case "tester outcome merge" `Quick test_tester_merge;
        Alcotest.test_case "fuzz outcome merge" `Slow test_fuzz_merge_agrees_with_sums;
        Alcotest.test_case "put race deadlock fixed" `Slow
          test_put_race_deadlock_fixed;
        Alcotest.test_case "campaign stress -j invariance" `Slow
          test_campaign_stress_j_invariance;
        Alcotest.test_case "campaign both -j invariance" `Slow
          test_campaign_both_j_invariance;
      ] );
  ]
