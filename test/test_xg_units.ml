(* Unit tests for the Crossing Guard's building blocks: the permission table,
   the OS error model, the rate limiter, block-size translation and the
   guard's storage accounting. *)

module Engine = Xguard_sim.Engine
module Rng = Xguard_sim.Rng
module Xg = Xguard_xg

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ---- Perm_table ---- *)

let test_perm_defaults_and_pages () =
  let t = Xg.Perm_table.create () in
  check_bool "default RW" true (Xg.Perm_table.allows_write t (Addr.block 5));
  Xg.Perm_table.set_block t (Addr.block 5) Perm.Read_only;
  check_bool "RO read" true (Xg.Perm_table.allows_read t (Addr.block 5));
  check_bool "RO !write" false (Xg.Perm_table.allows_write t (Addr.block 5));
  (* The whole page is affected. *)
  check_bool "same page" false (Xg.Perm_table.allows_write t (Addr.block 6));
  check_bool "other page untouched" true (Xg.Perm_table.allows_write t (Addr.block 100))

let test_perm_restrictive_default () =
  let t = Xg.Perm_table.create ~default:Perm.No_access () in
  check_bool "no read by default" false (Xg.Perm_table.allows_read t (Addr.block 0));
  Xg.Perm_table.set_page t ~page:0 Perm.Read_write;
  check_bool "page opened" true (Xg.Perm_table.allows_write t (Addr.block 0))

(* ---- Os_model ---- *)

let test_os_logging_and_counts () =
  let os = Xg.Os_model.create () in
  Xg.Os_model.report os Xg.Os_model.Response_timeout (Addr.block 1);
  Xg.Os_model.report os Xg.Os_model.Response_timeout (Addr.block 2);
  Xg.Os_model.report os Xg.Os_model.Bad_request_stable (Addr.block 3);
  check_int "total" 3 (Xg.Os_model.error_count os);
  check_int "per kind" 2 (Xg.Os_model.count_of os Xg.Os_model.Response_timeout);
  check_int "log order" 1
    (match Xg.Os_model.log os with (_, a) :: _ -> Addr.to_int a | [] -> -1);
  check_bool "log-only never disables" false (Xg.Os_model.accel_disabled os)

let test_os_policies () =
  let os = Xg.Os_model.create ~policy:Xg.Os_model.Disable_accelerator () in
  check_bool "enabled before" false (Xg.Os_model.accel_disabled os);
  Xg.Os_model.report os Xg.Os_model.Perm_read_violation (Addr.block 0);
  check_bool "disabled after" true (Xg.Os_model.accel_disabled os);
  check_bool "not killed" false (Xg.Os_model.process_killed os);
  let os = Xg.Os_model.create ~policy:Xg.Os_model.Kill_process () in
  Xg.Os_model.report os Xg.Os_model.Perm_read_violation (Addr.block 0);
  check_bool "killed" true (Xg.Os_model.process_killed os)

(* ---- Rate_limiter ---- *)

let test_rate_limiter_burst_then_throttle () =
  let e = Engine.create () in
  let rl = Xg.Rate_limiter.create ~engine:e ~tokens_per_cycle:0.1 ~burst:3 () in
  let fired = ref [] in
  for i = 1 to 6 do
    Xg.Rate_limiter.admit rl (fun () -> fired := (i, Engine.now e) :: !fired)
  done;
  ignore (Engine.run e);
  let fired = List.rev !fired in
  check_int "all admitted eventually" 6 (List.length fired);
  Alcotest.(check (list int)) "FIFO order" [ 1; 2; 3; 4; 5; 6 ] (List.map fst fired);
  (* First three ride the burst at t=0; the rest wait ~10 cycles each. *)
  let times = List.map snd fired in
  check_bool "burst immediate" true (List.nth times 2 = 0);
  check_bool "throttled afterwards" true (List.nth times 3 >= 10);
  check_bool "spaced by the rate" true (List.nth times 5 >= List.nth times 4 + 9);
  check_int "delayed count" 3 (Xg.Rate_limiter.delayed rl)

let test_rate_limiter_refill () =
  let e = Engine.create () in
  let rl = Xg.Rate_limiter.create ~engine:e ~tokens_per_cycle:0.5 ~burst:2 () in
  let count = ref 0 in
  (* Drain the burst, then wait long enough to refill fully. *)
  Xg.Rate_limiter.admit rl (fun () -> incr count);
  Xg.Rate_limiter.admit rl (fun () -> incr count);
  Engine.schedule e ~delay:100 (fun () ->
      Xg.Rate_limiter.admit rl (fun () -> check_int "after refill: immediate" 100 (Engine.now e)));
  ignore (Engine.run e);
  check_int "burst ran" 2 !count

let test_rate_limiter_rejects_empty_bucket () =
  (* Zero (or negative) rate or burst can never yield a token; both must be
     rejected at creation instead of livelocking the drain loop. *)
  let e = Engine.create () in
  let expect_invalid label f =
    try
      ignore (f ());
      Alcotest.failf "%s: expected Invalid_argument" label
    with Invalid_argument _ -> ()
  in
  expect_invalid "zero rate" (fun () ->
      Xg.Rate_limiter.create ~engine:e ~tokens_per_cycle:0.0 ~burst:4 ());
  expect_invalid "negative rate" (fun () ->
      Xg.Rate_limiter.create ~engine:e ~tokens_per_cycle:(-1.0) ~burst:4 ());
  expect_invalid "zero burst" (fun () ->
      Xg.Rate_limiter.create ~engine:e ~tokens_per_cycle:0.5 ~burst:0 ());
  expect_invalid "negative burst" (fun () ->
      Xg.Rate_limiter.create ~engine:e ~tokens_per_cycle:0.5 ~burst:(-2) ())

let test_rate_limiter_window_boundary () =
  (* Drain the burst at t=0; with 0.25 tokens/cycle the next whole token
     exists exactly at t=4.  A request queued at t=3 must run at t=4, not
     t=3 (no early token) and not later (no lost fraction). *)
  let e = Engine.create () in
  let rl = Xg.Rate_limiter.create ~engine:e ~tokens_per_cycle:0.25 ~burst:2 () in
  Xg.Rate_limiter.admit rl (fun () -> ());
  Xg.Rate_limiter.admit rl (fun () -> ());
  let ran_at = ref (-1) in
  Engine.schedule e ~delay:3 (fun () ->
      Xg.Rate_limiter.admit rl (fun () -> ran_at := Engine.now e));
  ignore (Engine.run e);
  check_int "token lands exactly on the window boundary" 4 !ran_at

let test_rate_limiter_refill_never_overflows_burst () =
  (* After an arbitrarily long idle stretch the bucket holds exactly [burst]
     tokens — elapsed x rate must saturate, not accumulate credit. *)
  let e = Engine.create () in
  let rl = Xg.Rate_limiter.create ~engine:e ~tokens_per_cycle:0.5 ~burst:2 () in
  let times = ref [] in
  Engine.schedule e ~delay:1_000_000 (fun () ->
      for _ = 1 to 3 do
        Xg.Rate_limiter.admit rl (fun () -> times := Engine.now e :: !times)
      done);
  ignore (Engine.run e);
  match List.rev !times with
  | [ t1; t2; t3 ] ->
      check_int "first rides the bucket" 1_000_000 t1;
      check_int "second rides the bucket" 1_000_000 t2;
      check_bool "third waits for a fresh token" true (t3 >= 1_000_001)
  | l -> Alcotest.failf "expected 3 admissions, got %d" (List.length l)

(* ---- Xg_iface.Link reset (PR 8) ---- *)

let test_link_reset_rewinds_sequences () =
  (* Run framed traffic both ways, then reset: every channel's tx/rx sequence
     numbers rewind to zero and the retransmission window empties, so the
     post-reset exchange starts a fresh go-back-N conversation. *)
  let module Xg_iface = Xg.Xg_iface in
  let e = Engine.create () in
  let rng = Rng.create ~seed:7 in
  let link =
    Xg_iface.Link.create ~engine:e ~rng ~name:"l"
      ~ordering:(Xguard_network.Network.Ordered { latency = 2 })
      ()
  in
  Xg_iface.Link.enable_reliability link ~retry_timeout:16 ~max_retries:2 ();
  let registry = Node.Registry.create () in
  let a = Node.Registry.fresh registry "a" and b = Node.Registry.fresh registry "b" in
  let got = ref 0 in
  Xg_iface.Link.register link a (fun ~src:_ _ -> incr got);
  Xg_iface.Link.register link b (fun ~src:_ _ -> incr got);
  let msg = Xg_iface.To_xg_req { addr = Addr.block 1; req = Xg_iface.Get_s } in
  for _ = 1 to 5 do
    Xg_iface.Link.send link ~src:a ~dst:b ~size:(Xg_iface.msg_size msg) msg;
    Xg_iface.Link.send link ~src:b ~dst:a ~size:(Xg_iface.msg_size msg) msg
  done;
  ignore (Engine.run e);
  check_int "traffic delivered" 10 !got;
  let tx, rx, outstanding = Xg_iface.Link.channel_state link ~src:a ~dst:b in
  check_int "a->b advanced tx" 5 tx;
  check_int "a->b advanced rx" 5 rx;
  check_int "window drained by acks" 0 outstanding;
  (* Kill the wire with a frame stuck in the window, then reset.  (Running
     the engine here would never quiesce: nothing in this bare test kills a
     permanently dark link, so retransmission would retry forever.) *)
  Xg_iface.Link.cut_wire link;
  Xg_iface.Link.send link ~src:a ~dst:b ~size:(Xg_iface.msg_size msg) msg;
  let tx_stuck, _, stuck = Xg_iface.Link.channel_state link ~src:a ~dst:b in
  check_bool "frame stuck in the window" true (stuck >= 1);
  check_int "tx advanced past the stuck frame" 6 tx_stuck;
  let ready = ref false in
  Xg_iface.Link.reset link ~src:b ~dst:a ~timeout:16 ~attempts:3
    ~on_ready:(fun () -> ready := true)
    ~on_dead:(fun () -> Alcotest.fail "reset handshake must succeed on a spliced wire")
    ();
  ignore (Engine.run e);
  check_bool "handshake completed" true !ready;
  let tx, rx, outstanding = Xg_iface.Link.channel_state link ~src:a ~dst:b in
  check_int "tx rewound" 0 tx;
  check_int "rx rewound" 0 rx;
  check_int "window emptied" 0 outstanding;
  (* Fresh conversation works from sequence zero. *)
  let before = !got in
  Xg_iface.Link.send link ~src:a ~dst:b ~size:(Xg_iface.msg_size msg) msg;
  ignore (Engine.run e);
  check_int "post-reset delivery" (before + 1) !got

let test_link_reset_flush_handler_runs_once_per_generation () =
  (* Retransmitted Reset frames of one generation must flush exactly once;
     a second reset generation flushes again. *)
  let module Xg_iface = Xg.Xg_iface in
  let e = Engine.create () in
  let rng = Rng.create ~seed:11 in
  let link =
    Xg_iface.Link.create ~engine:e ~rng ~name:"l"
      ~ordering:(Xguard_network.Network.Ordered { latency = 2 })
      ()
  in
  Xg_iface.Link.enable_reliability link ~retry_timeout:8 ~max_retries:2 ();
  let registry = Node.Registry.create () in
  let a = Node.Registry.fresh registry "a" and b = Node.Registry.fresh registry "b" in
  Xg_iface.Link.register link a (fun ~src:_ _ -> ());
  Xg_iface.Link.register link b (fun ~src:_ _ -> ());
  (* Fault-script needles match against the tracer's rendering. *)
  Xg_iface.Link.set_tracer link (fun _ -> (-1, "payload"));
  let flushes = ref 0 in
  Xg_iface.Link.set_reset_handler link (fun () -> incr flushes);
  (* Drop the first Reset_ack so the initiator retries the same generation:
     the responder sees Reset #1 twice but must flush only once. *)
  (match Xguard_network.Network.Fault.script_of_string "drop:1:LinkResetAck" with
  | Ok s -> Xg_iface.Link.add_fault_script link s
  | Error e -> Alcotest.fail e);
  let ready = ref 0 in
  Xg_iface.Link.reset link ~src:b ~dst:a ~timeout:8 ~attempts:4
    ~on_ready:(fun () -> incr ready)
    ~on_dead:(fun () -> Alcotest.fail "handshake must survive one lost ack")
    ();
  ignore (Engine.run e);
  check_int "handshake completed once" 1 !ready;
  check_int "one flush for the retried generation" 1 !flushes;
  Xg_iface.Link.reset link ~src:b ~dst:a ~timeout:8 ~attempts:4
    ~on_ready:(fun () -> incr ready)
    ~on_dead:(fun () -> Alcotest.fail "second handshake must succeed")
    ();
  ignore (Engine.run e);
  check_int "second generation flushes again" 2 !flushes

(* ---- Block_merge ---- *)

let make_backing engine memory log =
  {
    Xg.Block_merge.get =
      (fun addr ~excl ~on_grant ->
        log := `Get (Addr.to_int addr, excl) :: !log;
        Engine.schedule engine ~delay:5 (fun () -> on_grant (Memory_model.read memory addr)));
    Xg.Block_merge.put =
      (fun addr data ->
        log := `Put (Addr.to_int addr) :: !log;
        Memory_model.write memory addr data);
  }

let test_block_merge_get_merges_components () =
  let e = Engine.create () in
  let memory = Memory_model.create () in
  let log = ref [] in
  let bm = Xg.Block_merge.create ~engine:e ~ratio:4 ~backing:(make_backing e memory log) () in
  let got = ref None in
  Xg.Block_merge.get bm ~line:3 ~excl:false ~on_grant:(fun g -> got := Some g);
  ignore (Engine.run e);
  (match !got with
  | Some (Xg.Block_merge.Merged_s parts) ->
      check_int "ratio parts" 4 (Array.length parts);
      Array.iteri
        (fun i d -> check_int "component data" (Data.initial (Addr.block (12 + i))) d)
        parts
  | _ -> Alcotest.fail "expected a shared merged grant");
  check_int "4 host gets" 4 (Xg.Block_merge.host_transactions bm);
  check_int "no open merges" 0 (Xg.Block_merge.open_merges bm)

let test_block_merge_put_splits () =
  let e = Engine.create () in
  let memory = Memory_model.create () in
  let log = ref [] in
  let bm = Xg.Block_merge.create ~engine:e ~ratio:2 ~backing:(make_backing e memory log) () in
  Xg.Block_merge.put bm ~line:5 [| Data.token 71; Data.token 72 |];
  check_int "component 0" 71 (Memory_model.read memory (Addr.block 10));
  check_int "component 1" 72 (Memory_model.read memory (Addr.block 11));
  (try
     Xg.Block_merge.put bm ~line:5 [| Data.token 1 |];
     Alcotest.fail "expected arity rejection"
   with Invalid_argument _ -> ())

let test_block_merge_line_mapping () =
  let e = Engine.create () in
  let memory = Memory_model.create () in
  let log = ref [] in
  let bm = Xg.Block_merge.create ~engine:e ~ratio:4 ~backing:(make_backing e memory log) () in
  check_int "block 0 -> line 0" 0 (Xg.Block_merge.line_of_host_block bm (Addr.block 0));
  check_int "block 7 -> line 1" 1 (Xg.Block_merge.line_of_host_block bm (Addr.block 7));
  try
    ignore (Xg.Block_merge.create ~engine:e ~ratio:3 ~backing:(make_backing e memory log) ());
    Alcotest.fail "expected power-of-two rejection"
  with Invalid_argument _ -> ()

let test_block_merge_exclusive_grant () =
  let e = Engine.create () in
  let memory = Memory_model.create () in
  let log = ref [] in
  let bm = Xg.Block_merge.create ~engine:e ~ratio:2 ~backing:(make_backing e memory log) () in
  let got = ref None in
  Xg.Block_merge.get bm ~line:0 ~excl:true ~on_grant:(fun g -> got := Some g);
  ignore (Engine.run e);
  match !got with
  | Some (Xg.Block_merge.Merged_e _) -> ()
  | _ -> Alcotest.fail "expected an exclusive merged grant"

(* ---- Xg_core storage accounting (E5 machinery) ---- *)

let test_storage_accounting_modes () =
  (* Full-state tracks every resident block; transactional only open
     transactions.  After quiescence, transactional storage returns to zero
     while full-state grows with residency. *)
  let module Config = Xguard_harness.Config in
  let module System = Xguard_harness.System in
  let measure variant =
    let cfg = Config.make Config.Hammer (Config.Xg_one_level variant) in
    let sys = System.build cfg in
    let core = Option.get sys.System.xg_core in
    let port = sys.System.accel_ports.(0) in
    for i = 0 to 19 do
      ignore (port.Access.issue (Access.load (Addr.block i)) ~on_done:(fun _ -> ()));
      ignore (Engine.run sys.System.engine)
    done;
    (Xg.Xg_core.tracked_blocks core, Xg.Xg_core.storage_bits core, Xg.Xg_core.peak_storage_bits core)
  in
  let full_tracked, full_bits, full_peak = measure Config.Full_state in
  let trans_tracked, trans_bits, trans_peak = measure Config.Transactional in
  check_int "full-state tracks residency" 20 full_tracked;
  check_int "transactional tracks nothing at rest" 0 trans_tracked;
  check_int "transactional quiescent storage is zero" 0 trans_bits;
  check_bool "full-state standing storage" true (full_bits >= 20 * 36);
  check_bool "transactional peak covers open txns only" true (trans_peak < full_peak)

let tests =
  [
    ( "xg.perm_table",
      [
        Alcotest.test_case "defaults + pages" `Quick test_perm_defaults_and_pages;
        Alcotest.test_case "restrictive default" `Quick test_perm_restrictive_default;
      ] );
    ( "xg.os_model",
      [
        Alcotest.test_case "logging + counts" `Quick test_os_logging_and_counts;
        Alcotest.test_case "policies" `Quick test_os_policies;
      ] );
    ( "xg.rate_limiter",
      [
        Alcotest.test_case "burst then throttle" `Quick test_rate_limiter_burst_then_throttle;
        Alcotest.test_case "refill" `Quick test_rate_limiter_refill;
        Alcotest.test_case "empty bucket rejected" `Quick test_rate_limiter_rejects_empty_bucket;
        Alcotest.test_case "window boundary" `Quick test_rate_limiter_window_boundary;
        Alcotest.test_case "refill saturates at burst" `Quick
          test_rate_limiter_refill_never_overflows_burst;
      ] );
    ( "xg.link_reset",
      [
        Alcotest.test_case "sequences rewind" `Quick test_link_reset_rewinds_sequences;
        Alcotest.test_case "one flush per generation" `Quick
          test_link_reset_flush_handler_runs_once_per_generation;
      ] );
    ( "xg.block_merge",
      [
        Alcotest.test_case "get merges" `Quick test_block_merge_get_merges_components;
        Alcotest.test_case "put splits" `Quick test_block_merge_put_splits;
        Alcotest.test_case "line mapping" `Quick test_block_merge_line_mapping;
        Alcotest.test_case "exclusive grant" `Quick test_block_merge_exclusive_grant;
      ] );
    ( "xg.storage",
      [ Alcotest.test_case "full-state vs transactional" `Quick test_storage_accounting_modes ]
    );
  ]
