(* Tests for the streaming-metrics layer (lib/obs): the JSON reader, SLO
   parsing/evaluation, watchdog rule latching, summary merge determinism and
   the [xguard report] stream round-trip. *)

module Json = Xguard_obs.Json
module Slo = Xguard_obs.Slo
module Watchdog = Xguard_obs.Watchdog
module Metrics = Xguard_obs.Metrics
module Spans = Xguard_obs.Spans
module Histogram = Xguard_stats.Histogram
module Counter = Xguard_stats.Counter

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* ---- JSON reader ---- *)

let test_json_roundtrip () =
  (* quote/of_string round-trip on escaping traps *)
  List.iter
    (fun s ->
      match Json.of_string (Json.quote s) with
      | Ok (Json.String s') -> check_string "string round-trip" s s'
      | Ok _ -> Alcotest.fail "quoted string parsed as non-string"
      | Error e -> Alcotest.failf "quote %S emitted invalid JSON: %s" s e)
    [ ""; "plain"; "q\"uote"; "back\\slash"; "nl\ntab\t"; "ctl\x01\x1f"; "mix\"\\\n" ];
  (* structured document with helpers *)
  match Json.of_string {_|{"a": 1, "b": [true, null, -2.5], "c": {"d": "x"}}|_} with
  | Error e -> Alcotest.failf "doc did not parse: %s" e
  | Ok doc ->
      check_int "int member" 1
        (Option.get (Option.bind (Json.member "a" doc) Json.to_int_opt));
      (match Json.member "b" doc with
      | Some (Json.List [ Json.Bool true; Json.Null; Json.Float f ]) ->
          Alcotest.(check (float 0.0001)) "float element" (-2.5) f
      | _ -> Alcotest.fail "list shape wrong");
      check_string "nested string" "x"
        (Option.get
           (Option.bind
              (Option.bind (Json.member "c" doc) (Json.member "d"))
              Json.to_string_opt))

let test_json_rejects_garbage () =
  List.iter
    (fun s ->
      match Json.of_string s with
      | Ok _ -> Alcotest.failf "expected parse error on %S" s
      | Error _ -> ())
    [ ""; "{"; "{\"a\":}"; "[1,]"; "{\"a\":1} trailing"; "\"unterminated"; "nul" ]

(* ---- SLO parsing and evaluation ---- *)

let test_slo_parse () =
  (match Slo.parse "xg.decide:p99<=40;seq.e2e:p95<=400;avail>=0.95" with
  | Error e -> Alcotest.failf "valid spec rejected: %s" e
  | Ok objs ->
      check_int "three objectives" 3 (List.length objs);
      Alcotest.(check (list string))
        "canonical rendering"
        [ "xg.decide:p99<=40"; "seq.e2e:p95<=400"; "avail>=0.95" ]
        (List.map Slo.objective_text objs));
  List.iter
    (fun bad ->
      match Slo.parse bad with
      | Ok _ -> Alcotest.failf "expected parse error on %S" bad
      | Error _ -> ())
    [ "bogus"; "xg.decide:p99<=abc"; "avail>=high" ]

let test_slo_evaluate () =
  let hist name samples =
    let h = Histogram.create name in
    List.iter (Histogram.observe h) samples;
    h
  in
  let span_cells = [ ("xg.decide", "GetS", hist "xg.decide" [ 10; 20; 100 ]) ] in
  let guard_hists =
    [
      (("xg.a0", "xg.e2e"), hist "xg.e2e" [ 900 ]);
      (("xg.nic0", "xg.e2e"), hist "xg.e2e" [ 30 ]);
    ]
  in
  let avail = [ ("xg.a0", 100, 1000); ("xg.nic0", 0, 1000) ] in
  let objs spec =
    match Slo.parse spec with Ok o -> o | Error e -> Alcotest.fail e
  in
  (* global span-segment objective: p99 of [10;20;100] exceeds 40 *)
  (match Slo.evaluate (objs "xg.decide:p99<=40") ~span_cells ~guard_hists:[] ~avail:[] with
  | [ v ] ->
      check_bool "latency objective fails" false v.Slo.v_pass;
      check_string "global scope" "global" v.Slo.v_scope;
      check_bool "has measured value" true (v.Slo.v_measured <> "-")
  | vs -> Alcotest.failf "expected one verdict, got %d" (List.length vs));
  (* generous bound passes *)
  (match Slo.evaluate (objs "xg.decide:p99<=100000") ~span_cells ~guard_hists:[] ~avail:[] with
  | [ v ] -> check_bool "generous bound passes" true v.Slo.v_pass
  | _ -> Alcotest.fail "expected one verdict");
  (* an objective with no samples anywhere passes vacuously *)
  (match Slo.evaluate (objs "host.fetch:p99<=5") ~span_cells ~guard_hists:[] ~avail:[] with
  | [ v ] ->
      check_bool "vacuous pass" true v.Slo.v_pass;
      check_string "no samples marker" "-" v.Slo.v_measured
  | _ -> Alcotest.fail "expected one verdict");
  (* per-guard metric: one verdict per guard, scoped to the guard label *)
  let pg = Slo.evaluate (objs "xg.e2e:p99<=100") ~span_cells:[] ~guard_hists ~avail:[] in
  check_int "one verdict per guard" 2 (List.length pg);
  List.iter
    (fun v ->
      match v.Slo.v_scope with
      | "xg.a0" -> check_bool "tarpit guard fails" false v.Slo.v_pass
      | "xg.nic0" -> check_bool "neighbor passes" true v.Slo.v_pass
      | s -> Alcotest.failf "unexpected scope %s" s)
    pg;
  check_bool "mixed verdicts fail overall" false (Slo.passed pg);
  (* availability: xg.a0 is 90% (< 95), xg.nic0 is 100% *)
  let av = Slo.evaluate (objs "avail>=0.95") ~span_cells:[] ~guard_hists:[] ~avail in
  check_int "availability judged per guard" 2 (List.length av);
  List.iter
    (fun v ->
      match v.Slo.v_scope with
      | "xg.a0" -> check_bool "90% fails 0.95" false v.Slo.v_pass
      | "xg.nic0" -> check_bool "100% passes" true v.Slo.v_pass
      | s -> Alcotest.failf "unexpected scope %s" s)
    av

(* ---- Watchdog ---- *)

let test_watchdog_parse () =
  (match Watchdog.parse "" with
  | Ok c -> check_bool "empty spec is default" true (c = Watchdog.default)
  | Error e -> Alcotest.fail e);
  (match Watchdog.parse "retry=8,stall=2,starve=3,ceil:xg.open_transactions=32" with
  | Ok c ->
      check_int "retry" 8 c.Watchdog.retry_burst;
      check_int "stall" 2 c.Watchdog.stall_ticks;
      check_int "starve" 3 c.Watchdog.starve_ticks;
      Alcotest.(check (list (pair string int)))
        "ceiling" [ ("xg.open_transactions", 32) ] c.Watchdog.ceilings
  | Error e -> Alcotest.fail e);
  List.iter
    (fun bad ->
      match Watchdog.parse bad with
      | Ok _ -> Alcotest.failf "expected parse error on %S" bad
      | Error _ -> ())
    [ "bogus"; "retry=x"; "frob=3" ]

let events_of = List.map (fun e -> (e.Watchdog.w_rule, e.Watchdog.w_event))

let test_watchdog_retry_storm_latches () =
  let w =
    Watchdog.create { Watchdog.default with retry_burst = 4 }
  in
  let tick ?(deltas = []) ?(gauges = []) now =
    events_of (Watchdog.observe w ~now ~deltas ~gauges)
  in
  Alcotest.(check (list (pair string string)))
    "burst trips" [ ("retry_storm", "Trip") ]
    (tick ~deltas:[ ("link.retransmit_frames", 5) ] 500);
  Alcotest.(check (list (pair string string)))
    "latched: continuing storm is silent" []
    (tick ~deltas:[ ("link.retransmit_frames", 9) ] 1000);
  Alcotest.(check (list (pair string string)))
    "quiet tick clears" [ ("retry_storm", "Clear") ]
    (tick ~deltas:[ ("seq.loads", 3) ] 1500);
  Alcotest.(check (list (pair string string)))
    "re-trips after clear" [ ("retry_storm", "Trip") ]
    (tick ~deltas:[ ("link.retransmit_frames", 4) ] 2000)

let test_watchdog_stall_and_ceiling () =
  let w =
    Watchdog.create
      { Watchdog.default with stall_ticks = 2; ceilings = [ ("q.depth", 10) ] }
  in
  let tick ?(deltas = []) ?(gauges = []) now =
    events_of (Watchdog.observe w ~now ~deltas ~gauges)
  in
  let open_g = ("xg.open_transactions", 2) in
  Alcotest.(check (list (pair string string)))
    "first stalled tick below threshold" []
    (tick ~gauges:[ open_g ] 500);
  Alcotest.(check (list (pair string string)))
    "second stalled tick trips" [ ("quiesce_stall", "Trip") ]
    (tick ~gauges:[ open_g ] 1000);
  Alcotest.(check (list (pair string string)))
    "progress clears the stall" [ ("quiesce_stall", "Clear") ]
    (tick ~deltas:[ ("seq.loads", 1) ] ~gauges:[ open_g ] 1500);
  (* gauge ceiling latches exactly once until it drops back under *)
  Alcotest.(check (list (pair string string)))
    "ceiling trips" [ ("gauge_ceiling", "Trip") ]
    (tick ~deltas:[ ("seq.loads", 1) ] ~gauges:[ ("q.depth", 12) ] 2000);
  Alcotest.(check (list (pair string string)))
    "still over: silent" []
    (tick ~deltas:[ ("seq.loads", 1) ] ~gauges:[ ("q.depth", 11) ] 2500);
  Alcotest.(check (list (pair string string)))
    "under again: clears" [ ("gauge_ceiling", "Clear") ]
    (tick ~deltas:[ ("seq.loads", 1) ] ~gauges:[ ("q.depth", 3) ] 3000)

(* ---- Summary merge determinism and the report round-trip ---- *)

(* One synthetic "job": an armed span+metrics recorder pair fed a counter
   group, a per-guard e2e crossing and an availability note, then sampled. *)
let run_job ~label ~guard ~lat =
  let sr = Spans.create () in
  let mr = Metrics.create () in
  Spans.with_armed sr (fun () ->
      Metrics.with_armed mr (fun () ->
          let g = Counter.Group.create "seq" in
          Metrics.add_group ~name:"seq" g;
          Counter.Group.add g "loads" 3;
          Metrics.e2e_open ~guard ~addr:64 ~now:10;
          Metrics.e2e_close ~guard ~addr:64 ~now:(10 + lat);
          Metrics.sample_now ~now:500;
          Metrics.note_avail ~guard ~down:25 ~now:1000));
  Metrics.summary ~label mr

let test_summary_merge () =
  let s0 = run_job ~label:"job0" ~guard:"xg.a0" ~lat:40 in
  let s1 = run_job ~label:"job1" ~guard:"xg.a0" ~lat:80 in
  let s2 = run_job ~label:"job2" ~guard:"xg.nic0" ~lat:7 in
  let module S = Metrics.Summary in
  check_bool "empty is empty" true (S.is_empty S.empty);
  check_bool "job summary is not" false (S.is_empty s0);
  (* identity *)
  let labels s = List.map (fun b -> b.S.b_label) (S.blocks s) in
  Alcotest.(check (list string)) "left identity" [ "job0" ] (labels (S.merge S.empty s0));
  Alcotest.(check (list string)) "right identity" [ "job0" ] (labels (S.merge s0 S.empty));
  (* blocks concatenate in merge (= job) order *)
  let m = S.merge (S.merge s0 s1) s2 in
  Alcotest.(check (list string)) "job order kept" [ "job0"; "job1"; "job2" ] (labels m);
  check_int "samples add" 3 (S.samples m);
  (* per-guard histograms merge-join: both xg.a0 jobs land in one histogram *)
  (match List.assoc_opt ("xg.a0", "xg.e2e") (S.hists m) with
  | Some h ->
      check_int "a0 samples merged" 2 (Histogram.count h);
      check_int "max is the slow job" 80 (Histogram.max_value h)
  | None -> Alcotest.fail "missing merged xg.a0 histogram");
  check_bool "nic0 kept separate" true
    (List.mem_assoc ("xg.nic0", "xg.e2e") (S.hists m));
  (* associativity, observed through the canonical JSONL emission *)
  let emit s =
    let file = Filename.temp_file "xguard_metrics" ".jsonl" in
    let oc = open_out file in
    Metrics.write_jsonl oc ~period:500 ~span_cells:[] ~verdicts:[] s;
    close_out oc;
    let ic = open_in_bin file in
    let text = really_input_string ic (in_channel_length ic) in
    close_in ic;
    Sys.remove file;
    text
  in
  check_string "merge associates"
    (emit (S.merge (S.merge s0 s1) s2))
    (emit (S.merge s0 (S.merge s1 s2)))

let test_report_stream_roundtrip () =
  let module S = Metrics.Summary in
  let module R = Metrics.Report in
  let s = S.merge (run_job ~label:"job0" ~guard:"xg.a0" ~lat:40)
            (run_job ~label:"job1" ~guard:"xg.a0" ~lat:80) in
  let verdicts =
    match Slo.parse "xg.e2e:p99<=64" with
    | Ok objs ->
        Slo.evaluate objs ~span_cells:[] ~guard_hists:(S.hists s) ~avail:(S.avails s)
    | Error e -> Alcotest.fail e
  in
  let file = Filename.temp_file "xguard_stream" ".jsonl" in
  let oc = open_out file in
  Metrics.write_jsonl oc ~period:500 ~span_cells:[] ~verdicts s;
  close_out oc;
  let ic = open_in file in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  close_in ic;
  Sys.remove file;
  let lines = List.rev !lines in
  check_bool "stream has a meta line" true (List.length lines > 1);
  (* every line is one valid JSON object *)
  List.iter
    (fun l ->
      match Json.of_string l with
      | Ok (Json.Obj _) -> ()
      | Ok _ -> Alcotest.failf "non-object line: %s" l
      | Error e -> Alcotest.failf "invalid JSONL line %S: %s" l e)
    lines;
  (* the report merger restores what the stream carried *)
  (match R.add_stream R.empty ~name:"shard0" lines with
  | Error e -> Alcotest.fail e
  | Ok rep -> (
      check_int "samples restored" (S.samples s) (R.samples rep);
      Alcotest.(check (list (pair string int)))
        "stream registered" [ ("shard0", S.samples s) ] (R.streams rep);
      (match List.assoc_opt ("xg.a0", "xg.e2e") (R.guard_hists rep) with
      | Some h ->
          check_int "histogram restored losslessly" 2 (Histogram.count h);
          check_int "max restored" 80 (Histogram.max_value h)
      | None -> Alcotest.fail "per-guard histogram lost in the stream");
      check_bool "embedded verdicts kept" true (R.verdicts rep <> []);
      (* adding a second shard accumulates *)
      match R.add_stream rep ~name:"shard1" lines with
      | Ok rep2 -> check_int "two shards add" (2 * S.samples s) (R.samples rep2)
      | Error e -> Alcotest.fail e));
  (* a corrupt stream is a parse error, not a crash *)
  match R.add_stream R.empty ~name:"bad" [ "{ not json" ] with
  | Ok _ -> Alcotest.fail "expected error on corrupt stream"
  | Error _ -> ()

let tests =
  [
    ( "metrics",
      [
        Alcotest.test_case "json round-trip" `Quick test_json_roundtrip;
        Alcotest.test_case "json rejects garbage" `Quick test_json_rejects_garbage;
        Alcotest.test_case "slo parse" `Quick test_slo_parse;
        Alcotest.test_case "slo evaluate" `Quick test_slo_evaluate;
        Alcotest.test_case "watchdog parse" `Quick test_watchdog_parse;
        Alcotest.test_case "watchdog retry storm latches" `Quick
          test_watchdog_retry_storm_latches;
        Alcotest.test_case "watchdog stall and ceiling" `Quick
          test_watchdog_stall_and_ceiling;
        Alcotest.test_case "summary merge" `Quick test_summary_merge;
        Alcotest.test_case "report stream round-trip" `Quick
          test_report_stream_roundtrip;
      ] );
  ]
