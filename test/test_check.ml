(* Model-checker suite (PR 6): the bounded explicit-state checker of
   lib/check must terminate on the tiny configurations with exactly the
   state/transition counts pinned in MODEL_BASELINE.json, catch a
   deliberately broken invariant with a replayable counterexample trail,
   enumerate without fingerprint-digest collisions, and produce a
   byte-identical summary for any worker count.  A second group unit-tests
   the snapshot-symmetry fixes the checker flushed out of mutable controller
   state (empty guard slots leaking from answered fast paths, parked-work
   tables surviving a drain). *)

module Config = Xguard_harness.Config
module System = Xguard_harness.System
module Engine = Xguard_sim.Engine
module C = Xguard_check.Checker
module Xg = Xguard_xg
module H = Xguard_host_hammer
module M = Xguard_host_mesi

let explore_counts name ~states ~transitions =
  let plan = List.assoc name (C.tiny_plans ()) in
  let r = C.explore plan in
  let s = r.C.summary and d = r.C.diagnostics in
  Alcotest.(check (list string)) (name ^ ": no violations") []
    (List.map (fun (v : C.violation) -> v.C.message) s.C.violations);
  Alcotest.(check bool) (name ^ ": not truncated") false
    (d.C.truncated_depth > 0 || d.C.truncated_states);
  Alcotest.(check int) (name ^ ": reachable states") states s.C.states;
  Alcotest.(check int) (name ^ ": transitions") transitions s.C.transitions

(* Counts double-pinned here and in MODEL_BASELINE.json: a drift that slips
   past tools/check_model.sh still fails the unit suite (and vice versa). *)
let test_hammer_full_counts () = explore_counts "hammer/full" ~states:83 ~transitions:160
let test_mesi_full_counts () = explore_counts "mesi/full" ~states:12 ~transitions:14
let test_hammer_trans_counts () = explore_counts "hammer/trans" ~states:25 ~transitions:30
let test_mesi_trans_counts () = explore_counts "mesi/trans" ~states:12 ~transitions:14

(* A test-only invariant hook that trips after a fixed number of evaluations:
   the checker must surface it as a violation whose trail, replayed through
   the trace-armed [C.replay], reproduces the same failure. *)
let mk_tripwire at =
  let seen = ref 0 in
  fun (_ : System.t) ->
    incr seen;
    if !seen > at then Some "tripwire: synthetic invariant failure" else None

let test_broken_invariant_replayable () =
  let plan = List.assoc "hammer/full" (C.tiny_plans ()) in
  let r = C.explore ~extra_invariant:(mk_tripwire 25) plan in
  match r.C.summary.C.violations with
  | [] -> Alcotest.fail "tripwire invariant not caught"
  | v :: _ -> (
      let outcome, events = C.replay ~extra_invariant:(mk_tripwire 25) plan v.C.trail in
      match outcome with
      | `Violation m ->
          Alcotest.(check string) "replay reproduces the violation"
            "tripwire: synthetic invariant failure" m;
          Alcotest.(check bool) "replay recorded trace forensics" true
            (List.length events > 0)
      | `Terminal -> Alcotest.fail "replayed trail drained without tripping"
      | `Incomplete -> Alcotest.fail "replayed trail did not reach the violation")

(* Digest-collision sanity: at every event boundary of every explored path,
   record digest -> full canonical fingerprint; two different fingerprints
   hashing to one digest would silently merge distinct states. *)
let test_no_digest_collisions () =
  let plan = List.assoc "hammer/full" (C.tiny_plans ()) in
  let seen : (string, string) Hashtbl.t = Hashtbl.create 4096 in
  let states = ref 0 in
  let watch (sys : System.t) =
    let buf = Buffer.create 512 in
    sys.System.check_fingerprint buf;
    let fp = Buffer.contents buf in
    let d = Digest.to_hex (Digest.string fp) in
    incr states;
    (match Hashtbl.find_opt seen d with
    | Some fp' when fp' <> fp ->
        Alcotest.failf "digest collision on %s:\n%s\nvs\n%s" d fp' fp
    | _ -> ());
    Hashtbl.replace seen d fp;
    None
  in
  let r = C.explore ~extra_invariant:watch plan in
  Alcotest.(check (list string)) "healthy model" []
    (List.map (fun (v : C.violation) -> v.C.message) r.C.summary.C.violations);
  Alcotest.(check bool) "watch hook ran" true (!states > 0)

(* Frontier sharding must be invisible in the canonical summary: for random
   tiny workloads and random worker counts, sequential and sharded
   exploration render byte-identical summaries (counts, sorted digests and
   violations; traversal-order diagnostics are excluded by design). *)
let gen_plan_and_workers =
  QCheck2.Gen.(
    let access =
      oneofl
        [ `Load 0; `Load 1; `Store (0, 7); `Store (1, 8); `Store (0, 9) ]
    in
    let ops_list = list_size (int_range 1 2) access in
    quad (oneofl [ Config.Hammer; Config.Mesi ]) ops_list ops_list (int_range 2 4))

let prop_sharded_byte_identical =
  QCheck2.Test.make ~name:"sharded exploration = sequential (byte-identical summary)"
    ~count:8 gen_plan_and_workers (fun (host, cpu_ops, accel_ops, workers) ->
      let to_access = function
        | `Load i -> Access.load (Addr.block i)
        | `Store (i, tok) -> Access.store (Addr.block i) (Data.token tok)
      in
      let plan =
        {
          (C.tiny_plan ~host ~variant:Config.Full_state ()) with
          C.ops =
            [
              (C.Cpu 0, List.map to_access cpu_ops);
              (C.Accel 0, List.map to_access accel_ops);
            ];
        }
      in
      let seq = C.explore plan in
      let shard = C.explore ~workers plan in
      C.summary_to_string seq.C.summary = C.summary_to_string shard.C.summary)

(* ---- snapshot-symmetry fixes (each with its own unit test) ----

   Drive a tiny system to drain with plain [Engine.run] and assert the
   mutable side tables the checker fingerprints are empty again.  Before the
   fixes each of these leaked residue that only a fingerprint comparison
   could see (an answered fast path kept its empty pending slot, parked
   work outlived its transaction). *)

let drain_tiny host =
  let cfg = C.tiny_config ~host ~variant:Config.Full_state () in
  let sys = System.build cfg in
  let remaining = ref 0 in
  let seqs =
    List.map
      (fun (agent, accesses) ->
        let port =
          match agent with
          | C.Cpu i -> sys.System.cpu_ports.(i)
          | C.Accel i -> sys.System.accel_ports.(i)
        in
        let seq =
          Sequencer.create ~engine:sys.System.engine
            ~name:("drain." ^ C.agent_label agent) ~port ~max_outstanding:1 ()
        in
        remaining := !remaining + List.length accesses;
        let rec issue = function
          | [] -> ()
          | a :: rest ->
              Sequencer.request seq a ~on_complete:(fun _ ~latency:_ ->
                  decr remaining;
                  issue rest)
        in
        issue accesses;
        seq)
      (C.tiny_ops ())
  in
  ignore (Engine.run sys.System.engine);
  Alcotest.(check int) "workload drained" 0 !remaining;
  (sys, seqs)

let test_sequencer_residue () =
  let _, seqs = drain_tiny Config.Hammer in
  List.iter
    (fun seq ->
      Alcotest.(check int)
        (Sequencer.name seq ^ ": ring buffer empty after drain")
        0 (Sequencer.check_residue seq))
    seqs

let test_guard_slots_pruned () =
  (* Covers the answered-fast-path prunes in Xg_core.host_request (untracked
     block, plain-sharer Fwd_s, trusted-copy reply): the guard must not keep
     the empty pending slot [slot] created on entry. *)
  let sys, _ = drain_tiny Config.Hammer in
  match sys.System.xg_core with
  | None -> Alcotest.fail "tiny config has no guard"
  | Some core ->
      Alcotest.(check int) "no guard pending slots after drain" 0
        (Xg.Xg_core.check_pending_slots core)

let test_directory_waiting_tables () =
  (* Two CPUs storing the same block force the directory to park the loser;
     after the drain the waiting tables must be empty again. *)
  let module Sys_h = Xguard_harness.Hammer_system in
  let sys = Sys_h.create ~num_cpus:2 () in
  Sys_h.finalize sys;
  let a0 = Addr.block 0 in
  let done_ = ref 0 in
  Array.iteri
    (fun i c ->
      let port = H.L1l2.cpu_port c in
      ignore
        (port.Access.issue
           (Access.store a0 (Data.token (i + 1)))
           ~on_done:(fun _ -> incr done_)))
    (Sys_h.cpus sys);
  ignore (Engine.run (Sys_h.engine sys));
  Alcotest.(check int) "both racing stores completed" 2 !done_;
  Alcotest.(check int) "directory waiting tables empty after drain" 0
    (H.Directory.check_waiting_tables (Sys_h.directory sys))

let test_mesi_l2_queue_tables () =
  (* Same race against the MESI L2's deferred-request queues. *)
  let module Sys_m = Xguard_harness.Mesi_system in
  let sys = Sys_m.create ~num_cpus:2 () in
  let a0 = Addr.block 0 in
  let done_ = ref 0 in
  Array.iteri
    (fun i c ->
      let port = M.L1.cpu_port c in
      ignore
        (port.Access.issue
           (Access.store a0 (Data.token (i + 1)))
           ~on_done:(fun _ -> incr done_)))
    (Sys_m.cpus sys);
  ignore (Engine.run (Sys_m.engine sys));
  Alcotest.(check int) "both racing stores completed" 2 !done_;
  Alcotest.(check int) "L2 queue tables empty after drain" 0
    (M.L2.check_queue_tables (Sys_m.l2 sys))

(* The drained tiny systems must also pass the full quiescent invariant —
   the aggregate the checker runs at every terminal. *)
let test_quiescent_after_drain () =
  List.iter
    (fun host ->
      let sys, _ = drain_tiny host in
      match sys.System.check_quiescent_invariant () with
      | None -> ()
      | Some msg -> Alcotest.failf "drain left residue: %s" msg)
    [ Config.Hammer; Config.Mesi ]

let tests =
  [
    ( "check",
      [
        Alcotest.test_case "hammer/full terminates at the pinned fixed point" `Quick
          test_hammer_full_counts;
        Alcotest.test_case "mesi/full terminates at the pinned fixed point" `Quick
          test_mesi_full_counts;
        Alcotest.test_case "hammer/trans terminates at the pinned fixed point" `Quick
          test_hammer_trans_counts;
        Alcotest.test_case "mesi/trans terminates at the pinned fixed point" `Quick
          test_mesi_trans_counts;
        Alcotest.test_case "broken invariant caught with a replayable trail" `Quick
          test_broken_invariant_replayable;
        Alcotest.test_case "no visited-set digest collisions" `Quick
          test_no_digest_collisions;
        QCheck_alcotest.to_alcotest prop_sharded_byte_identical;
      ] );
    ( "check-symmetry",
      [
        Alcotest.test_case "sequencer ring buffer empty after drain" `Quick
          test_sequencer_residue;
        Alcotest.test_case "guard fast-path slots pruned after drain" `Quick
          test_guard_slots_pruned;
        Alcotest.test_case "directory waiting tables empty after racing drain" `Quick
          test_directory_waiting_tables;
        Alcotest.test_case "mesi L2 queue tables empty after racing drain" `Quick
          test_mesi_l2_queue_tables;
        Alcotest.test_case "quiescent invariant clean after tiny drain" `Quick
          test_quiescent_after_drain;
      ] );
  ]
