(* Tests for the transaction span layer (lib/obs): recorder arming, the
   addr-keyed crossing lifecycle, summary merging, drop counting, the
   time-series sampler and the Perfetto exporter. *)

module Spans = Xguard_obs.Spans
module Perfetto = Xguard_obs.Perfetto
module Engine = Xguard_sim.Engine
module Table = Xguard_stats.Table
module Histogram = Xguard_stats.Histogram

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let contains needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

(* Hooks must be no-ops when unarmed — the spans-off byte-identity contract
   starts with "no recorder state is ever touched". *)
let test_unarmed_noops () =
  check_bool "off by default" false (Spans.on ());
  check_int "fresh_id is 0 unarmed" 0 (Spans.fresh_id ());
  Spans.record Spans.Link_req Spans.Get_s ~span:1 ~addr:0 ~ts:0 ~dur:5;
  Spans.xreq_open Spans.Get_s ~addr:0 ~now:0;
  Alcotest.(check (option (pair int reject))) "no crossing" None
    (Option.map (fun (i, _) -> (i, ())) (Spans.lookup ~addr:0))

let test_arming_restores () =
  let r = Spans.create () in
  check_bool "armed inside" true (Spans.with_armed r (fun () -> Spans.on ()));
  check_bool "restored outside" false (Spans.on ());
  (* nested arming restores the outer recorder, and exceptions restore too *)
  let r2 = Spans.create () in
  Spans.with_armed r (fun () ->
      let id0 = Spans.fresh_id () in
      (try Spans.with_armed r2 (fun () -> ignore (Spans.fresh_id ()); failwith "boom")
       with Failure _ -> ());
      check_int "outer recorder back after inner raise" (id0 + 1) (Spans.fresh_id ()))

(* Full GET crossing: open -> delivered -> decided -> resp sent -> resp
   delivered closes link.req, xg.decide and link.resp, then retires. *)
let test_get_crossing_lifecycle () =
  let r = Spans.create () in
  Spans.with_armed r (fun () ->
      Spans.xreq_open Spans.Get_s ~addr:64 ~now:100;
      check_bool "crossing open" true (Spans.lookup ~addr:64 <> None);
      Spans.xreq_delivered ~addr:64 ~now:108;
      Spans.xg_decided ~addr:64 ~now:120;
      Spans.resp_sent ~addr:64 ~now:150;
      Spans.resp_delivered ~addr:64 ~now:158;
      check_bool "retired" true (Spans.lookup ~addr:64 = None));
  let cells = Spans.Summary.cells (Spans.summary r) in
  let durs =
    List.map
      (fun (s, x, h) ->
        Printf.sprintf "%s/%s n=%d max=%d" s x (Histogram.count h) (Histogram.max_value h))
      cells
  in
  Alcotest.(check (list string))
    "three segments, right durations"
    [ "link.req/GetS n=1 max=8"; "xg.decide/GetS n=1 max=12"; "link.resp/GetS n=1 max=8" ]
    durs

(* Duplicate deliveries and replayed decisions must not double-count. *)
let test_defensive_against_dups () =
  let r = Spans.create () in
  Spans.with_armed r (fun () ->
      Spans.xreq_open Spans.Get_m ~addr:0 ~now:0;
      Spans.xreq_delivered ~addr:0 ~now:5;
      Spans.xreq_delivered ~addr:0 ~now:9;
      (* dup frame *)
      Spans.xg_decided ~addr:0 ~now:12;
      Spans.xg_decided ~addr:0 ~now:30;
      (* unknown address: ignored *)
      Spans.xreq_delivered ~addr:999 ~now:1);
  let counts =
    List.map (fun (s, _, h) -> (s, Histogram.count h)) (Spans.Summary.cells (Spans.summary r))
  in
  Alcotest.(check (list (pair string int)))
    "one sample per segment" [ ("link.req", 1); ("xg.decide", 1) ] counts

(* A writeback stays resolvable through lookup_put after the accel ack
   retired the request/response half — even when a follow-up GET has opened
   a new crossing on the same block. *)
let test_put_parks_until_settled () =
  let r = Spans.create () in
  Spans.with_armed r (fun () ->
      Spans.xreq_open Spans.Put_m ~addr:4 ~now:0;
      Spans.xreq_delivered ~addr:4 ~now:8;
      Spans.host_put_issued ~addr:4 ~now:9;
      Spans.xg_decided ~addr:4 ~now:10;
      Spans.resp_sent ~addr:4 ~now:10;
      Spans.resp_delivered ~addr:4 ~now:18;
      (* a new GET crossing opens on the same block before the put settles *)
      Spans.xreq_open Spans.Get_s ~addr:4 ~now:20;
      (match Spans.lookup_put ~addr:4 with
      | Some (_, txn) ->
          Alcotest.(check string) "parked put keeps its txn" "PutM" (Spans.txn_name txn)
      | None -> Alcotest.fail "put not resolvable after ack");
      (match Spans.lookup ~addr:4 with
      | Some (_, txn) ->
          Alcotest.(check string) "new crossing is the GET" "GetS" (Spans.txn_name txn)
      | None -> Alcotest.fail "follow-up GET evicted");
      Spans.put_settled ~addr:4 ~now:40;
      check_bool "put gone after settle" true (Spans.lookup_put ~addr:4 = None));
  check_int "no replacement counted" 0 (Spans.Summary.replaced (Spans.summary r))

let test_reopen_counts_replaced () =
  let r = Spans.create () in
  Spans.with_armed r (fun () ->
      Spans.xreq_open Spans.Get_s ~addr:8 ~now:0;
      Spans.xreq_open Spans.Get_s ~addr:8 ~now:50);
  check_int "stale crossing counted" 1 (Spans.Summary.replaced (Spans.summary r))

let test_timeline_drop_counting () =
  let r = Spans.create ~timeline:true ~timeline_cap:4 () in
  Spans.with_armed r (fun () ->
      for i = 1 to 6 do
        Spans.record Spans.Link_req Spans.Get_s ~span:i ~addr:i ~ts:i ~dur:1
      done);
  check_int "cap kept" 4 (Array.length (Spans.timeline_events r));
  check_int "overflow counted" 2 (Spans.timeline_dropped r);
  check_int "summary sees the drops" 2 (Spans.Summary.dropped (Spans.summary r));
  (* histograms keep accumulating past the timeline cap *)
  match Spans.Summary.cells (Spans.summary r) with
  | [ (_, _, h) ] -> check_int "all six samples in the histogram" 6 (Histogram.count h)
  | _ -> Alcotest.fail "expected one cell"

(* Merging per-shard summaries in any grouping must equal one accumulated
   summary — what makes campaign span tables byte-identical for any -j. *)
let test_summary_merge_matches_sequential () =
  let seq = Spans.create () in
  let shards = Array.init 3 (fun _ -> Spans.create ()) in
  let feed r k =
    Spans.with_armed r (fun () ->
        Spans.xreq_open Spans.Get_s ~addr:k ~now:0;
        Spans.xreq_delivered ~addr:k ~now:(k + 1);
        Spans.record Spans.Seq_e2e Spans.Load ~span:0 ~addr:k ~ts:0 ~dur:(10 * (k + 1)))
  in
  for k = 0 to 8 do
    feed seq k;
    feed shards.(k mod 3) k
  done;
  let merged =
    Array.fold_left
      (fun acc r -> Spans.Summary.merge acc (Spans.summary r))
      Spans.Summary.empty shards
  in
  let render s =
    match Spans.Summary.attribution_table s with
    | Some t -> Table.to_string t
    | None -> ""
  in
  Alcotest.(check string) "merged == sequential" (render (Spans.summary seq)) (render merged);
  (* associativity: ((s0+s1)+s2) == (s0+(s1+s2)) *)
  let s = Array.map Spans.summary shards in
  Alcotest.(check string) "associative"
    (render (Spans.Summary.merge (Spans.Summary.merge s.(0) s.(1)) s.(2)))
    (render (Spans.Summary.merge s.(0) (Spans.Summary.merge s.(1) s.(2))))

let test_sampler_series () =
  let engine = Engine.create () in
  let r = Spans.create () in
  Spans.with_armed r (fun () ->
      let v = ref 0 in
      Spans.add_gauge ~name:"g" (fun () -> !v);
      (* keep the engine busy well past three sampler periods *)
      for i = 1 to 40 do
        Engine.schedule engine ~delay:(i * 10) (fun () -> v := i)
      done;
      Spans.start_sampler ~engine ~period:100;
      ignore (Engine.run engine));
  let series = Spans.sample_series r in
  check_bool "sampled at least twice" true (List.length series >= 2);
  List.iter
    (fun (ts, vals) ->
      check_bool "tick on period boundary" true (ts mod 100 = 0);
      match vals with
      | [| ("g", v) |] -> check_bool "gauge value plausible" true (v >= 0 && v <= 40)
      | _ -> Alcotest.fail "expected one gauge")
    series;
  (* the sampler must not keep an idle engine alive: the run terminated. *)
  check_bool "engine drained" true (Engine.pending engine = 0)

let test_perfetto_export () =
  let r = Spans.create ~timeline:true () in
  Spans.with_armed r (fun () ->
      Spans.add_gauge ~name:"depth" (fun () -> 3);
      Spans.record Spans.Link_req Spans.Get_s ~span:1 ~addr:64 ~ts:10 ~dur:8;
      Spans.record Spans.Host_fetch Spans.Get_m ~span:2 ~addr:128 ~ts:20 ~dur:100);
  let file = Filename.temp_file "xguard_spans" ".json" in
  Perfetto.write_file file [ ("job0", r) ];
  let ic = open_in_bin file in
  let text = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove file;
  check_bool "traceEvents present" true (contains "\"traceEvents\"" text);
  check_bool "segment name present" true (contains "\"link.req\"" text);
  check_bool "txn category present" true (contains "\"GetM\"" text);
  check_bool "complete events" true (contains "\"ph\":\"X\"" text);
  check_bool "process metadata" true (contains "\"process_name\"" text);
  check_bool "job label present" true (contains "\"job0\"" text)

(* Hostile gauge names and job labels must still yield valid JSON — the
   exporter escapes every string it emits, and the round-trip through our own
   parser is the proof.  Table-driven over the classic escaping traps. *)
let test_perfetto_escaping () =
  let cases =
    [
      ("quote", "evil\"name");
      ("backslash", "back\\slash");
      ("both", "q\"b\\q\"");
      ("newline-tab", "line1\nline2\ttabbed");
      ("control", "nul\x01\x1f");
    ]
  in
  List.iter
    (fun (case, name) ->
      let r = Spans.create ~timeline:true () in
      Spans.with_armed r (fun () ->
          Spans.add_gauge ~name (fun () -> 1);
          Spans.sample_now ~now:100;
          Spans.record Spans.Link_req Spans.Get_s ~span:1 ~addr:0 ~ts:0 ~dur:4);
      let file = Filename.temp_file "xguard_escape" ".json" in
      Perfetto.write_file file [ (name, r) ];
      let ic = open_in_bin file in
      let text = really_input_string ic (in_channel_length ic) in
      close_in ic;
      Sys.remove file;
      match Xguard_obs.Json.of_string text with
      | Ok json ->
          (* the hostile name survives the round-trip somewhere in the doc *)
          let rec strings acc = function
            | Xguard_obs.Json.String s -> s :: acc
            | Xguard_obs.Json.List l -> List.fold_left strings acc l
            | Xguard_obs.Json.Obj kvs ->
                List.fold_left (fun a (k, v) -> strings (k :: a) v) acc kvs
            | _ -> acc
          in
          check_bool
            (case ^ ": name survives round-trip")
            true
            (List.exists (fun s -> contains name s) (strings [] json))
      | Error e -> Alcotest.failf "%s: exporter emitted invalid JSON: %s" case e)
    cases

let tests =
  [
    ( "spans",
      [
        Alcotest.test_case "unarmed hooks are no-ops" `Quick test_unarmed_noops;
        Alcotest.test_case "arming restores" `Quick test_arming_restores;
        Alcotest.test_case "GET crossing lifecycle" `Quick test_get_crossing_lifecycle;
        Alcotest.test_case "defensive against dups" `Quick test_defensive_against_dups;
        Alcotest.test_case "put parks until settled" `Quick test_put_parks_until_settled;
        Alcotest.test_case "reopen counts replaced" `Quick test_reopen_counts_replaced;
        Alcotest.test_case "timeline drop counting" `Quick test_timeline_drop_counting;
        Alcotest.test_case "summary merge" `Quick test_summary_merge_matches_sequential;
        Alcotest.test_case "sampler series" `Quick test_sampler_series;
        Alcotest.test_case "perfetto export" `Quick test_perfetto_export;
        Alcotest.test_case "perfetto string escaping" `Quick test_perfetto_escaping;
      ] );
  ]
