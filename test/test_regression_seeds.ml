(* Seeded regression suite: fixed seeds replayed through the random tester and
   the fuzzer on representative configurations.  Any failure is reproducible
   by construction — the assertion message carries the seed and the armed
   trace buffer's per-address event trail, which is exactly the forensics
   workflow ("--trace" on the CLI) exercised end to end. *)

module Config = Xguard_harness.Config
module System = Xguard_harness.System
module Tester = Xguard_harness.Random_tester
module Fuzz = Xguard_harness.Fuzz_tester
module Trace = Xguard_trace.Trace
module Rng = Xguard_sim.Rng
module Xg = Xguard_xg
module Network = Xguard_network.Network
module Fault = Network.Fault

let seeds = [ 1; 7; 1234 ]

let stress_configs =
  [
    Config.make Config.Hammer (Config.Xg_one_level Config.Full_state);
    Config.make Config.Hammer (Config.Xg_one_level Config.Transactional);
    Config.make Config.Mesi (Config.Xg_one_level Config.Full_state);
    Config.make Config.Mesi (Config.Xg_one_level Config.Transactional);
    Config.make Config.Hammer (Config.Xg_two_level Config.Transactional);
    Config.make Config.Mesi (Config.Xg_two_level Config.Full_state);
  ]

let fuzz_configs =
  [
    Config.make Config.Hammer (Config.Xg_one_level Config.Full_state);
    Config.make Config.Hammer (Config.Xg_one_level Config.Transactional);
    Config.make Config.Mesi (Config.Xg_one_level Config.Full_state);
    Config.make Config.Mesi (Config.Xg_one_level Config.Transactional);
  ]

let trail ?addr tr =
  let d = Trace.dump ?addr ~last:40 tr in
  if d = "" then "(no trace events)" else d

let stress_one cfg seed =
  let cfg = Config.stress_sized { cfg with Config.seed = seed } in
  let label = Config.name cfg in
  let sys = System.build cfg in
  let ports = Array.append sys.System.cpu_ports sys.System.accel_ports in
  let tr = Trace.create ~capacity:4096 () in
  let o =
    Trace.with_armed tr (fun () ->
        Tester.run ~engine:sys.System.engine
          ~rng:(Rng.create ~seed:(seed * 7 + 1))
          ~ports ~addresses:(Array.init 6 Addr.block) ~ops_per_core:300 ())
  in
  if o.Tester.deadlocked then
    Alcotest.failf "%s seed %d: deadlocked after %d ops; trail:\n%s" label seed
      o.Tester.ops_completed (trail tr);
  if o.Tester.data_errors > 0 then
    Alcotest.failf "%s seed %d: %d data errors (first at %s); trail:\n%s" label seed
      o.Tester.data_errors
      (match o.Tester.first_error_addr with
      | Some a -> Printf.sprintf "0x%x" a
      | None -> "?")
      (trail ?addr:o.Tester.first_error_addr tr);
  let viol = Xg.Os_model.error_count sys.System.os in
  if viol > 0 then
    Alcotest.failf "%s seed %d: %d guard violations from legitimate caches; trail:\n%s" label
      seed viol (trail tr)

let fuzz_one cfg seed =
  let cfg = Config.stress_sized { cfg with Config.seed = seed } in
  let label = Config.name cfg in
  let tr = Trace.create ~capacity:4096 () in
  let o =
    Fuzz.run cfg ~pool:Fuzz.Disjoint ~cpu_ops:150 ~chaos_duration:20_000 ~trace:tr ()
  in
  (match o.Fuzz.crashed with
  | Some c ->
      Alcotest.failf "%s seed %d: crashed: %s; trail:\n%s" label c.Fuzz.seed c.Fuzz.exn_text
        (String.concat "\n" (List.map Trace.format_event c.Fuzz.trace_tail))
  | None -> ());
  if o.Fuzz.deadlocked then
    Alcotest.failf "%s seed %d: deadlocked; trail:\n%s" label o.Fuzz.seed
      (String.concat "\n" (List.map Trace.format_event o.Fuzz.trace_tail));
  if o.Fuzz.cpu_data_errors > 0 then
    Alcotest.failf "%s seed %d: %d CPU data errors on a disjoint pool; trail:\n%s" label
      o.Fuzz.seed o.Fuzz.cpu_data_errors
      (String.concat "\n" (List.map Trace.format_event o.Fuzz.trace_tail))

let test_stress_seeds () =
  List.iter (fun cfg -> List.iter (stress_one cfg) seeds) stress_configs

let test_fuzz_seeds () =
  List.iter (fun cfg -> List.iter (fuzz_one cfg) seeds) fuzz_configs

(* ---- lossy-link regression seeds (PR 3) ----

   Pinned from a tools/fault_sweep.exe run over seeds 1..8: each seed/fault
   pair below demonstrably exercises one recovery path of the reliability
   layer while the run stays safe on a disjoint pool.  If a change stops the
   path from firing — or makes the faulty run unsafe — the assertion names
   the seed that replays it. *)

let lossy_base = Config.make Config.Hammer (Config.Xg_one_level Config.Transactional)

let lossy_cfg ~seed faults scripts =
  {
    (Config.stress_sized { lossy_base with Config.seed }) with
    Config.link_faults = Some faults;
    link_fault_scripts = scripts;
    link_retry_timeout = 16;
    link_max_retries = 2;
    quarantine_after = 2;
  }

let lossy_one ~label ~path cfg check_path =
  let o = Fuzz.run cfg ~pool:Fuzz.Disjoint ~cpu_ops:100 ~chaos_duration:15_000 () in
  (match o.Fuzz.crashed with
  | Some c -> Alcotest.failf "%s seed %d: crashed: %s" label o.Fuzz.seed c.Fuzz.exn_text
  | None -> ());
  if o.Fuzz.deadlocked then Alcotest.failf "%s seed %d: deadlocked" label o.Fuzz.seed;
  if o.Fuzz.cpu_data_errors > 0 then
    Alcotest.failf "%s seed %d: %d CPU data errors on a disjoint pool" label o.Fuzz.seed
      o.Fuzz.cpu_data_errors;
  if o.Fuzz.cpu_ops_completed <> o.Fuzz.cpu_ops_expected then
    Alcotest.failf "%s seed %d: only %d/%d CPU ops completed" label o.Fuzz.seed
      o.Fuzz.cpu_ops_completed o.Fuzz.cpu_ops_expected;
  if not (check_path o) then
    Alcotest.failf "%s seed %d: the %s path no longer fires" label o.Fuzz.seed path

let link_count o label = Option.value ~default:0 (List.assoc_opt label o.Fuzz.link_faults)

let test_lossy_retransmit_seed () =
  (* Sweep: seed=2 drop2% -> retx=2298, safe. *)
  lossy_one ~label:"drop 2%" ~path:"retransmission"
    (lossy_cfg ~seed:2 { Fault.zero with Fault.drop = 0.02 } [])
    (fun o -> link_count o "retransmit_frames" > 0 && not o.Fuzz.quarantined)

let test_lossy_dup_suppression_seed () =
  (* Sweep: seed=1 dup2% -> dups=338, safe. *)
  lossy_one ~label:"dup 2%" ~path:"duplicate-suppression"
    (lossy_cfg ~seed:1 { Fault.zero with Fault.duplicate = 0.02 } [])
    (fun o -> link_count o "dups_suppressed" > 0 && not o.Fuzz.quarantined)

let test_lossy_corruption_seed () =
  (* Sweep: seed=5 corrupt2% -> corrupt=134, safe. *)
  lossy_one ~label:"corrupt 2%" ~path:"corruption-detection"
    (lossy_cfg ~seed:5 { Fault.zero with Fault.corrupt = 0.02 } [])
    (fun o -> link_count o "corrupt_detected" > 0 && not o.Fuzz.quarantined)

let test_lossy_quarantine_seed () =
  (* Sweep: seed=3 kill@120 -> escal=2, quarantined, safe. *)
  lossy_one ~label:"kill@120" ~path:"quarantine"
    (lossy_cfg ~seed:3 Fault.zero
       [ { Fault.nth = 120; needle = None; kind = Fault.Kill } ])
    (fun o -> link_count o "faults_escalated" > 0 && o.Fuzz.quarantined)

(* ---- recovery regression seeds (PR 8) ----

   Pinned from the same tools/fault_sweep.exe run, recovery variants: the
   kill scripts cut the wire, the policy resets and re-admits, and the
   asserted path is the full quarantine -> reset -> probation -> rejoin
   lifecycle (or, with one life, the permanent kill). *)

let lossy_recovery ~permakill_after =
  Xg.Xg_core.make_recovery ~reset_delay:100 ~reset_timeout:32 ~reset_attempts:4
    ~probation_window:400 ~probation_rate:0.5 ~probation_burst:4
    ~probation_quarantine_after:2 ~permakill_after ()

let recovery_cfg ~seed ~permakill_after scripts =
  {
    (lossy_cfg ~seed Fault.zero scripts) with
    Config.recovery = Some (lossy_recovery ~permakill_after);
  }

let test_recovery_rejoin_seed () =
  (* Sweep: seed=2 kill@120+rec -> escal=2, rejoins=1, safe. *)
  lossy_one ~label:"kill@120+rec" ~path:"quarantine-and-rejoin"
    (recovery_cfg ~seed:2 ~permakill_after:4
       [ { Fault.nth = 120; needle = None; kind = Fault.Kill } ])
    (fun o -> o.Fuzz.rejoins = 1 && not o.Fuzz.permakilled)

let test_recovery_double_rejoin_seed () =
  (* Sweep: seed=4 kill-x2+rec -> escal=4, rejoins=2, safe: the second kill
     cuts the wire the first recovery spliced. *)
  lossy_one ~label:"kill-x2+rec" ~path:"repeated-rejoin"
    (recovery_cfg ~seed:4 ~permakill_after:4
       [
         { Fault.nth = 120; needle = None; kind = Fault.Kill };
         { Fault.nth = 600; needle = None; kind = Fault.Kill };
       ])
    (fun o -> o.Fuzz.rejoins = 2 && not o.Fuzz.permakilled)

let test_recovery_permakill_seed () =
  (* Sweep: seed=3 kill+1life -> quarantined, rejoins=0, permakill, safe. *)
  lossy_one ~label:"kill+1life" ~path:"permakill"
    (recovery_cfg ~seed:3 ~permakill_after:1
       [ { Fault.nth = 120; needle = None; kind = Fault.Kill } ])
    (fun o -> o.Fuzz.permakilled && o.Fuzz.rejoins = 0 && o.Fuzz.quarantined)

(* ---- model-checker regression seeds (PR 6) ----

   Trails surfaced by `xguard check` during checker development, pinned as
   replays: each previously tripped a (since-fixed) false positive in the
   invariant harness, so the checker itself is the regression subject —
   the replay must now drain to a clean terminal. *)

module Checker = Xguard_check.Checker

let replay_clean ~label plan trail =
  match Checker.replay plan trail with
  | `Terminal, _ -> ()
  | `Violation m, _ -> Alcotest.failf "%s: replay violates again: %s" label m
  | `Incomplete, _ -> Alcotest.failf "%s: replay no longer reaches a terminal" label

let test_check_relinquish_window_seed () =
  (* Provenance: hammer/full all-zeros schedule, no POR — flagged
     "data-value violated at block 1" while the coherent value rode the XG
     port's ownership-relinquishing writeback (§3.2.1 window; fixed by
     Xg_port.check_owner_puts pseudo-entries). *)
  let plan =
    { (List.assoc "hammer/full" (Checker.tiny_plans ())) with Checker.por = false }
  in
  replay_clean ~label:"hammer relinquish window" plan
    [ 0; 0; 0; 0; 0; 0; 0; 0; 0; 0; 0; 0; 0; 0; 0; 0; 0; 0; 0; 0 ]

let test_check_root_branch_seed () =
  (* Provenance: the same trail under POR — the root state is itself the
     first decision point (two same-cycle, same-address sequencer pumps),
     which once self-pruned and ended exploration at states=1. *)
  let plan = List.assoc "hammer/full" (Checker.tiny_plans ()) in
  replay_clean ~label:"hammer root decision point" plan
    [ 0; 0; 0; 0; 0; 0; 0; 0; 0; 0; 0; 0; 0; 0; 0; 0; 0 ]

let tests =
  [
    ( "regression-seeds",
      [
        Alcotest.test_case "random tester, fixed seeds, all XG organizations" `Quick
          test_stress_seeds;
        Alcotest.test_case "fuzzer, fixed seeds, one-level XG organizations" `Quick
          test_fuzz_seeds;
        Alcotest.test_case "lossy link: retransmission seed" `Quick
          test_lossy_retransmit_seed;
        Alcotest.test_case "lossy link: duplicate-suppression seed" `Quick
          test_lossy_dup_suppression_seed;
        Alcotest.test_case "lossy link: corruption-detection seed" `Quick
          test_lossy_corruption_seed;
        Alcotest.test_case "lossy link: quarantine seed" `Quick
          test_lossy_quarantine_seed;
        Alcotest.test_case "recovery: quarantine-and-rejoin seed" `Quick
          test_recovery_rejoin_seed;
        Alcotest.test_case "recovery: repeated-rejoin seed" `Quick
          test_recovery_double_rejoin_seed;
        Alcotest.test_case "recovery: permakill seed" `Quick
          test_recovery_permakill_seed;
        Alcotest.test_case "checker: ownership-relinquish window replays clean" `Quick
          test_check_relinquish_window_seed;
        Alcotest.test_case "checker: root-decision-point trail replays clean" `Quick
          test_check_root_branch_seed;
      ] );
  ]
