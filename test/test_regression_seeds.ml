(* Seeded regression suite: fixed seeds replayed through the random tester and
   the fuzzer on representative configurations.  Any failure is reproducible
   by construction — the assertion message carries the seed and the armed
   trace buffer's per-address event trail, which is exactly the forensics
   workflow ("--trace" on the CLI) exercised end to end. *)

module Config = Xguard_harness.Config
module System = Xguard_harness.System
module Tester = Xguard_harness.Random_tester
module Fuzz = Xguard_harness.Fuzz_tester
module Trace = Xguard_trace.Trace
module Rng = Xguard_sim.Rng
module Xg = Xguard_xg

let seeds = [ 1; 7; 1234 ]

let stress_configs =
  [
    Config.make Config.Hammer (Config.Xg_one_level Config.Full_state);
    Config.make Config.Hammer (Config.Xg_one_level Config.Transactional);
    Config.make Config.Mesi (Config.Xg_one_level Config.Full_state);
    Config.make Config.Mesi (Config.Xg_one_level Config.Transactional);
    Config.make Config.Hammer (Config.Xg_two_level Config.Transactional);
    Config.make Config.Mesi (Config.Xg_two_level Config.Full_state);
  ]

let fuzz_configs =
  [
    Config.make Config.Hammer (Config.Xg_one_level Config.Full_state);
    Config.make Config.Hammer (Config.Xg_one_level Config.Transactional);
    Config.make Config.Mesi (Config.Xg_one_level Config.Full_state);
    Config.make Config.Mesi (Config.Xg_one_level Config.Transactional);
  ]

let trail ?addr tr =
  let d = Trace.dump ?addr ~last:40 tr in
  if d = "" then "(no trace events)" else d

let stress_one cfg seed =
  let cfg = Config.stress_sized { cfg with Config.seed = seed } in
  let label = Config.name cfg in
  let sys = System.build cfg in
  let ports = Array.append sys.System.cpu_ports sys.System.accel_ports in
  let tr = Trace.create ~capacity:4096 () in
  let o =
    Trace.with_armed tr (fun () ->
        Tester.run ~engine:sys.System.engine
          ~rng:(Rng.create ~seed:(seed * 7 + 1))
          ~ports ~addresses:(Array.init 6 Addr.block) ~ops_per_core:300 ())
  in
  if o.Tester.deadlocked then
    Alcotest.failf "%s seed %d: deadlocked after %d ops; trail:\n%s" label seed
      o.Tester.ops_completed (trail tr);
  if o.Tester.data_errors > 0 then
    Alcotest.failf "%s seed %d: %d data errors (first at %s); trail:\n%s" label seed
      o.Tester.data_errors
      (match o.Tester.first_error_addr with
      | Some a -> Printf.sprintf "0x%x" a
      | None -> "?")
      (trail ?addr:o.Tester.first_error_addr tr);
  let viol = Xg.Os_model.error_count sys.System.os in
  if viol > 0 then
    Alcotest.failf "%s seed %d: %d guard violations from legitimate caches; trail:\n%s" label
      seed viol (trail tr)

let fuzz_one cfg seed =
  let cfg = Config.stress_sized { cfg with Config.seed = seed } in
  let label = Config.name cfg in
  let tr = Trace.create ~capacity:4096 () in
  let o =
    Fuzz.run cfg ~pool:Fuzz.Disjoint ~cpu_ops:150 ~chaos_duration:20_000 ~trace:tr ()
  in
  (match o.Fuzz.crashed with
  | Some c ->
      Alcotest.failf "%s seed %d: crashed: %s; trail:\n%s" label c.Fuzz.seed c.Fuzz.exn_text
        (String.concat "\n" (List.map Trace.format_event c.Fuzz.trace_tail))
  | None -> ());
  if o.Fuzz.deadlocked then
    Alcotest.failf "%s seed %d: deadlocked; trail:\n%s" label o.Fuzz.seed
      (String.concat "\n" (List.map Trace.format_event o.Fuzz.trace_tail));
  if o.Fuzz.cpu_data_errors > 0 then
    Alcotest.failf "%s seed %d: %d CPU data errors on a disjoint pool; trail:\n%s" label
      o.Fuzz.seed o.Fuzz.cpu_data_errors
      (String.concat "\n" (List.map Trace.format_event o.Fuzz.trace_tail))

let test_stress_seeds () =
  List.iter (fun cfg -> List.iter (stress_one cfg) seeds) stress_configs

let test_fuzz_seeds () =
  List.iter (fun cfg -> List.iter (fuzz_one cfg) seeds) fuzz_configs

let tests =
  [
    ( "regression-seeds",
      [
        Alcotest.test_case "random tester, fixed seeds, all XG organizations" `Quick
          test_stress_seeds;
        Alcotest.test_case "fuzzer, fixed seeds, one-level XG organizations" `Quick
          test_fuzz_seeds;
      ] );
  ]
