(* PR 3: lossy-link fault injection and the recovery layer.

   Three levels:
   - Network.Fault: the injector itself (probabilities, scripts, counting)
     against a plain integer network.
   - Xg_iface.Link: seq+checksum reliability — retransmission, duplicate
     suppression, corruption detection, escalation, kill.
   - System level: the byte-identity property (all probabilities 0.0 must
     reproduce the fault-free reports exactly, whether or not the reliability
     layer runs) and the drop=0.05 safety sweep of the acceptance criteria. *)

module Engine = Xguard_sim.Engine
module Rng = Xguard_sim.Rng
module Network = Xguard_network.Network
module Fault = Network.Fault
module Net = Network.Make (struct
  type t = int
end)

module Xg = Xguard_xg
module Link = Xg.Xg_iface.Link
module Config = Xguard_harness.Config
module System = Xguard_harness.System
module Tester = Xguard_harness.Random_tester
module Fuzz = Xguard_harness.Fuzz_tester
module Campaign = Xguard_harness.Campaign

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let two_nodes () =
  let reg = Node.Registry.create () in
  (Node.Registry.fresh reg "a", Node.Registry.fresh reg "b")

(* ---- Fault.script_of_string ---- *)

let test_script_parsing () =
  (match Fault.script_of_string "drop:3" with
  | Ok { Fault.nth = 3; needle = None; kind = Fault.Drop } -> ()
  | Ok s -> Alcotest.failf "drop:3 parsed as %s" (Fault.script_to_string s)
  | Error e -> Alcotest.failf "drop:3 rejected: %s" e);
  (match Fault.script_of_string "dup:1:DataM" with
  | Ok { Fault.nth = 1; needle = Some "DataM"; kind = Fault.Duplicate } -> ()
  | _ -> Alcotest.fail "dup:1:DataM");
  (match Fault.script_of_string "delay@9:2" with
  | Ok { Fault.nth = 2; needle = None; kind = Fault.Delay 9 } -> ()
  | _ -> Alcotest.fail "delay@9:2");
  (match Fault.script_of_string "kill:5" with
  | Ok { Fault.nth = 5; needle = None; kind = Fault.Kill } -> ()
  | _ -> Alcotest.fail "kill:5");
  (match Fault.script_of_string "corrupt:7:Put" with
  | Ok { Fault.nth = 7; needle = Some "Put"; kind = Fault.Corrupt } -> ()
  | _ -> Alcotest.fail "corrupt:7:Put");
  List.iter
    (fun bad ->
      match Fault.script_of_string bad with
      | Ok _ -> Alcotest.failf "%S should not parse" bad
      | Error _ -> ())
    [ ""; "drop"; "bogus:1"; "drop:zero"; "drop:0"; "delay@x:1" ]

let test_script_roundtrip () =
  List.iter
    (fun s ->
      match Fault.script_of_string s with
      | Ok sc -> check_string s s (Fault.script_to_string sc)
      | Error e -> Alcotest.failf "%S rejected: %s" s e)
    [ "drop:3"; "dup:1:DataM"; "corrupt:2"; "kill:9"; "delay@5:4:Get" ]

(* ---- probabilistic injection on a plain network ---- *)

let lossy_net ?(latency = 3) ~seed faults =
  let e = Engine.create () in
  let a, b = two_nodes () in
  let net =
    Net.create ~engine:e ~rng:(Rng.create ~seed) ~name:"lossy"
      ~ordering:(Network.Ordered { latency })
      ()
  in
  Net.set_faults net ~rng:(Rng.create ~seed:(seed + 1)) faults;
  (e, net, a, b)

let test_drop_all () =
  let e, net, a, b = lossy_net ~seed:3 { Fault.zero with Fault.drop = 1.0 } in
  let got = ref 0 in
  Net.register net b (fun ~src:_ _ -> incr got);
  for i = 1 to 10 do
    Net.send net ~src:a ~dst:b i
  done;
  ignore (Engine.run e);
  check_int "nothing delivered" 0 !got;
  check_int "drops counted" 10 (Net.fault_counts net).Fault.drops

let test_duplicate_all () =
  let e, net, a, b = lossy_net ~seed:4 { Fault.zero with Fault.duplicate = 1.0 } in
  let got = ref 0 in
  Net.register net b (fun ~src:_ _ -> incr got);
  for i = 1 to 10 do
    Net.send net ~src:a ~dst:b i
  done;
  ignore (Engine.run e);
  check_int "every message delivered twice" 20 !got;
  check_int "duplicates counted" 10 (Net.fault_counts net).Fault.duplicates

let test_corrupt_all () =
  let e, net, a, b = lossy_net ~seed:5 { Fault.zero with Fault.corrupt = 1.0 } in
  Net.set_corruptor net (fun x -> x + 1000);
  let got = ref [] in
  Net.register net b (fun ~src:_ m -> got := m :: !got);
  for i = 1 to 5 do
    Net.send net ~src:a ~dst:b i
  done;
  ignore (Engine.run e);
  Alcotest.(check (list int)) "all payloads mutated" [ 1005; 1004; 1003; 1002; 1001 ] !got;
  check_int "corruptions counted" 5 (Net.fault_counts net).Fault.corrupts

let test_corrupt_without_corruptor_drops () =
  (* A network with no corruptor cannot mutate its payload type; the injector
     degrades corruption to a (counted) loss rather than delivering intact. *)
  let e, net, a, b = lossy_net ~seed:6 { Fault.zero with Fault.corrupt = 1.0 } in
  let got = ref 0 in
  Net.register net b (fun ~src:_ _ -> incr got);
  Net.send net ~src:a ~dst:b 7;
  ignore (Engine.run e);
  check_int "not delivered" 0 !got

let test_script_targets_nth () =
  let e = Engine.create () in
  let a, b = two_nodes () in
  let net =
    Net.create ~engine:e ~rng:(Rng.create ~seed:1) ~name:"scripted"
      ~ordering:(Network.Ordered { latency = 2 })
      ()
  in
  (match Fault.script_of_string "drop:2" with
  | Ok sc -> Net.add_fault_script net sc
  | Error e -> Alcotest.fail e);
  let got = ref [] in
  Net.register net b (fun ~src:_ m -> got := m :: !got);
  for i = 1 to 5 do
    Net.send net ~src:a ~dst:b i
  done;
  ignore (Engine.run e);
  Alcotest.(check (list int)) "exactly the 2nd message lost" [ 1; 3; 4; 5 ] (List.rev !got)

let test_script_needle_needs_tracer () =
  (* Matching on trace text: without a tracer the needle can never match. *)
  let e = Engine.create () in
  let a, b = two_nodes () in
  let net =
    Net.create ~engine:e ~rng:(Rng.create ~seed:1) ~name:"needle"
      ~ordering:(Network.Ordered { latency = 1 })
      ()
  in
  Net.set_tracer net (fun m -> (m, if m mod 2 = 0 then "even" else "odd"));
  (match Fault.script_of_string "drop:1:even" with
  | Ok sc -> Net.add_fault_script net sc
  | Error e -> Alcotest.fail e);
  let got = ref [] in
  Net.register net b (fun ~src:_ m -> got := m :: !got);
  for i = 1 to 4 do
    Net.send net ~src:a ~dst:b i
  done;
  ignore (Engine.run e);
  Alcotest.(check (list int)) "first even message lost" [ 1; 3; 4 ] (List.rev !got)

let test_uninstalled_is_inert () =
  let e = Engine.create () in
  let a, b = two_nodes () in
  let net =
    Net.create ~engine:e ~rng:(Rng.create ~seed:1) ~name:"plain"
      ~ordering:(Network.Ordered { latency = 1 })
      ()
  in
  check_bool "no faults can fire" false (Net.faults_active net);
  let got = ref 0 in
  Net.register net b (fun ~src:_ _ -> incr got);
  for i = 1 to 50 do
    Net.send net ~src:a ~dst:b i
  done;
  ignore (Engine.run e);
  check_int "everything delivered" 50 !got

(* ---- the reliable link ---- *)

let reliable_link ?(retry_timeout = 8) ?(max_retries = 2) ~seed () =
  let e = Engine.create () in
  let reg = Node.Registry.create () in
  let xg = Node.Registry.fresh reg "xg" and accel = Node.Registry.fresh reg "accel" in
  let link =
    Link.create ~engine:e ~rng:(Rng.create ~seed) ~name:"link"
      ~ordering:(Network.Ordered { latency = 2 })
      ()
  in
  Link.enable_reliability link ~retry_timeout ~max_retries ();
  (e, link, xg, accel)

let a_msg i =
  Xg.Xg_iface.To_xg_req { addr = Addr.block i; req = Xg.Xg_iface.Get_s }

let test_link_retransmits_dropped_frame () =
  let e, link, xg, accel = reliable_link ~seed:11 () in
  let got = ref 0 in
  Link.register link accel (fun ~src:_ _ -> incr got);
  Link.register link xg (fun ~src:_ _ -> ());
  (match Fault.script_of_string "drop:1" with
  | Ok sc -> Link.add_fault_script link sc
  | Error err -> Alcotest.fail err);
  Link.send link ~src:xg ~dst:accel (a_msg 0);
  ignore (Engine.run e);
  check_int "delivered exactly once despite the drop" 1 !got;
  let stats = Xguard_stats.Counter.Group.to_list (Link.link_stats link) in
  check_bool "retransmission happened" true
    (List.assoc_opt "retransmit_frames" stats <> None)

let test_link_suppresses_duplicates () =
  let e, link, xg, accel = reliable_link ~seed:12 () in
  let got = ref 0 in
  Link.register link accel (fun ~src:_ _ -> incr got);
  Link.register link xg (fun ~src:_ _ -> ());
  (match Fault.script_of_string "dup:1" with
  | Ok sc -> Link.add_fault_script link sc
  | Error err -> Alcotest.fail err);
  Link.send link ~src:xg ~dst:accel (a_msg 1);
  ignore (Engine.run e);
  check_int "exactly-once delivery" 1 !got;
  let stats = Xguard_stats.Counter.Group.to_list (Link.link_stats link) in
  check_int "the copy was suppressed" 1
    (Option.value ~default:0 (List.assoc_opt "dups_suppressed" stats))

let test_link_detects_corruption () =
  let e, link, xg, accel = reliable_link ~seed:13 () in
  let got = ref [] in
  Link.register link accel (fun ~src:_ m -> got := m :: !got);
  Link.register link xg (fun ~src:_ _ -> ());
  (match Fault.script_of_string "corrupt:1" with
  | Ok sc -> Link.add_fault_script link sc
  | Error err -> Alcotest.fail err);
  let sent = a_msg 2 in
  Link.send link ~src:xg ~dst:accel sent;
  ignore (Engine.run e);
  (match !got with
  | [ m ] -> check_bool "checksum caught the mutation; intact copy delivered" true (m = sent)
  | ms -> Alcotest.failf "expected one delivery, got %d" (List.length ms));
  let stats = Xguard_stats.Counter.Group.to_list (Link.link_stats link) in
  check_int "corruption detected" 1
    (Option.value ~default:0 (List.assoc_opt "corrupt_detected" stats))

let test_link_escalates_then_recovers () =
  let e, link, xg, accel = reliable_link ~seed:14 ~retry_timeout:4 ~max_retries:1 () in
  let got = ref 0 and faults = ref 0 and recoveries = ref 0 in
  Link.register link accel (fun ~src:_ _ -> incr got);
  Link.register link xg (fun ~src:_ _ -> ());
  Link.set_fault_handler link
    ~on_fault:(fun () -> incr faults)
    ~on_recover:(fun () -> incr recoveries);
  (* Lose the frame three times, then let a retransmission through. *)
  List.iter
    (fun s ->
      match Fault.script_of_string s with
      | Ok sc -> Link.add_fault_script link sc
      | Error err -> Alcotest.fail err)
    [ "drop:1"; "drop:2"; "drop:3" ];
  Link.send link ~src:xg ~dst:accel (a_msg 3);
  ignore (Engine.run e);
  check_int "eventually delivered" 1 !got;
  check_bool "silent rounds escalated" true (!faults >= 1);
  check_bool "ack progress reported recovery" true (!recoveries >= 1)

let test_link_kill_drains () =
  let e, link, xg, accel = reliable_link ~seed:15 () in
  Link.register link accel (fun ~src:_ _ -> ());
  Link.register link xg (fun ~src:_ _ -> ());
  Link.send link ~src:xg ~dst:accel (a_msg 4);
  Link.kill link;
  Link.kill link (* idempotent *);
  Link.send link ~src:xg ~dst:accel (a_msg 5);
  check_bool "killed" true (Link.killed link);
  (* A killed link must not keep the engine alive with retransmission
     watchdogs — the drain property quarantine relies on. *)
  (match Engine.run e with
  | Engine.Drained | Engine.Stopped -> ()
  | _ -> Alcotest.fail "killed link kept scheduling events");
  let stats = Xguard_stats.Counter.Group.to_list (Link.link_stats link) in
  check_bool "dead-link sends counted" true
    (Option.value ~default:0 (List.assoc_opt "sends_on_dead_link" stats) >= 1)

(* ---- byte-identity: probabilities 0.0 reproduce the fault-free reports ---- *)

let reliable_zero cfg = { cfg with Config.link_faults = Some Fault.zero }

let stress_fingerprint cfg =
  let cfg = Config.stress_sized cfg in
  let sys = System.build cfg in
  let ports = Array.append sys.System.cpu_ports sys.System.accel_ports in
  let o =
    Tester.run ~engine:sys.System.engine
      ~rng:(Rng.create ~seed:(cfg.Config.seed * 7 + 1))
      ~ports ~addresses:(Array.init 6 Addr.block) ~ops_per_core:150 ()
  in
  ( o.Tester.ops_completed,
    o.Tester.data_errors,
    o.Tester.deadlocked,
    Xg.Os_model.error_count sys.System.os,
    Engine.now sys.System.engine,
    sys.System.link_stats () )

let fuzz_fingerprint cfg =
  let o = Fuzz.run (Config.stress_sized cfg) ~cpu_ops:100 ~chaos_duration:15_000 () in
  ( o.Fuzz.chaos_messages,
    o.Fuzz.invalidations_ignored,
    o.Fuzz.cpu_ops_completed,
    o.Fuzz.cpu_data_errors,
    o.Fuzz.violations,
    o.Fuzz.violations_by_kind,
    o.Fuzz.deadlocked,
    o.Fuzz.link_faults,
    o.Fuzz.quarantined )

let identity_configs =
  [
    Config.make Config.Hammer (Config.Xg_one_level Config.Transactional);
    Config.make Config.Mesi (Config.Xg_one_level Config.Full_state);
    Config.make Config.Hammer (Config.Xg_two_level Config.Full_state);
  ]

let test_zero_faults_identical_stress_and_fuzz () =
  List.iter
    (fun cfg ->
      let label = Config.name cfg in
      let plain_s = stress_fingerprint cfg in
      let zero_s = stress_fingerprint (reliable_zero cfg) in
      check_bool (label ^ ": stress identical under Fault.zero") true (plain_s = zero_s);
      let _, _, _, _, _, link = zero_s in
      check_bool (label ^ ": no link stats leak into fault-free reports") true (link = []);
      let plain_f = fuzz_fingerprint cfg in
      let zero_f = fuzz_fingerprint (reliable_zero cfg) in
      check_bool (label ^ ": fuzz identical under Fault.zero") true (plain_f = zero_f))
    identity_configs

let test_zero_faults_identical_campaign_render () =
  (* The strongest form of the property: the fully rendered campaign report —
     tables, coverage, summary line — is byte-for-byte the fault-free one. *)
  let configs = [ List.nth identity_configs 0; List.nth identity_configs 1 ] in
  let render configs =
    Campaign.render
      (Campaign.run ~collect_coverage:true ~stress_ops:120 ~fuzz_cpu_ops:80
         Campaign.Both ~configs ~seeds:2 ())
  in
  check_string "campaign render byte-identical"
    (render configs)
    (render (List.map reliable_zero configs))

let prop_zero_faults_identical_fuzz =
  QCheck2.Test.make ~name:"fault probabilities 0.0 never change a fuzz outcome" ~count:8
    QCheck2.Gen.(pair (int_range 1 50_000) (int_range 0 2))
    (fun (seed, idx) ->
      let cfg = { (List.nth identity_configs idx) with Config.seed } in
      fuzz_fingerprint cfg = fuzz_fingerprint (reliable_zero cfg))

(* ---- acceptance: drop=0.05 over every configuration stays safe ---- *)

let test_drop5_campaign_all_configs_safe () =
  let faults = { Fault.zero with Fault.drop = 0.05 } in
  let configs =
    List.map
      (fun cfg -> { cfg with Config.link_faults = Some faults })
      (Config.all_configurations ())
  in
  let result =
    Campaign.run ~stress_ops:150 ~fuzz_cpu_ops:80 Campaign.Both ~configs ~seeds:2 ()
  in
  check_int "no crashed jobs" 0 result.Campaign.crashes;
  check_bool "zero safety violations / deadlocks at drop=0.05" true
    (Campaign.passed result)

let test_quarantine_under_fuzz_kill_script () =
  (* End to end through the fuzz harness: cut the wire at the Nth message and
     the guard must quarantine while the CPUs finish everything. *)
  List.iter
    (fun cfg ->
      let kill =
        match Fault.script_of_string "kill:120" with
        | Ok sc -> sc
        | Error e -> Alcotest.fail e
      in
      let cfg =
        {
          (Config.stress_sized cfg) with
          Config.link_faults = Some Fault.zero;
          link_fault_scripts = [ kill ];
          link_retry_timeout = 16;
          link_max_retries = 2;
          quarantine_after = 2;
        }
      in
      let label = Config.name cfg in
      let o = Fuzz.run cfg ~pool:Fuzz.Disjoint ~cpu_ops:100 ~chaos_duration:15_000 () in
      check_bool (label ^ ": no crash") true (o.Fuzz.crashed = None);
      check_bool (label ^ ": no deadlock") false o.Fuzz.deadlocked;
      check_int (label ^ ": all CPU ops completed") o.Fuzz.cpu_ops_expected
        o.Fuzz.cpu_ops_completed;
      check_int (label ^ ": CPU data intact") 0 o.Fuzz.cpu_data_errors;
      check_bool (label ^ ": quarantined") true o.Fuzz.quarantined)
    identity_configs

let tests =
  [
    ( "faults.network",
      [
        Alcotest.test_case "script parsing" `Quick test_script_parsing;
        Alcotest.test_case "script round-trip" `Quick test_script_roundtrip;
        Alcotest.test_case "drop probability 1.0" `Quick test_drop_all;
        Alcotest.test_case "duplicate probability 1.0" `Quick test_duplicate_all;
        Alcotest.test_case "corrupt probability 1.0" `Quick test_corrupt_all;
        Alcotest.test_case "corrupt without corruptor drops" `Quick
          test_corrupt_without_corruptor_drops;
        Alcotest.test_case "script hits exactly the Nth message" `Quick
          test_script_targets_nth;
        Alcotest.test_case "needle scripts match trace text" `Quick
          test_script_needle_needs_tracer;
        Alcotest.test_case "uninstalled model is inert" `Quick test_uninstalled_is_inert;
      ] );
    ( "faults.link",
      [
        Alcotest.test_case "dropped frame is retransmitted" `Quick
          test_link_retransmits_dropped_frame;
        Alcotest.test_case "duplicate frames suppressed" `Quick
          test_link_suppresses_duplicates;
        Alcotest.test_case "corruption detected and repaired" `Quick
          test_link_detects_corruption;
        Alcotest.test_case "escalation and recovery callbacks" `Quick
          test_link_escalates_then_recovers;
        Alcotest.test_case "kill drains the engine" `Quick test_link_kill_drains;
      ] );
    ( "faults.identity",
      [
        Alcotest.test_case "zero faults: stress+fuzz fingerprints identical" `Quick
          test_zero_faults_identical_stress_and_fuzz;
        Alcotest.test_case "zero faults: campaign render byte-identical" `Quick
          test_zero_faults_identical_campaign_render;
        QCheck_alcotest.to_alcotest prop_zero_faults_identical_fuzz;
      ] );
    ( "faults.recovery",
      [
        Alcotest.test_case "drop=0.05 campaign, all 12 configs, safe" `Slow
          test_drop5_campaign_all_configs_safe;
        Alcotest.test_case "kill script quarantines under fuzz" `Quick
          test_quarantine_under_fuzz_kill_script;
      ] );
  ]
