(* Benchmark harness: regenerates every table and figure of the reproduction
   (see DESIGN.md's experiment index and EXPERIMENTS.md for paper-vs-measured)
   plus a Bechamel micro-benchmark suite over the simulation machinery.

   Usage:
     bench/main.exe                 run every experiment (full size)
     bench/main.exe --quick         run every experiment (reduced size)
     bench/main.exe --trace ...     arm the event ring buffer; if an
                                    experiment crashes, dump the trail
                                    (requires -j 1)
     bench/main.exe -j 4            run experiments on 4 domains
     bench/main.exe --spans         arm the transaction span layer; each
                                    experiment's report (and --json) gains a
                                    latency-attribution table
     bench/main.exe --json OUT      also write tables + wall times as JSON
                                    (the BENCH_*.json trajectory files)
     bench/main.exe e3 e4           run selected experiments
     bench/main.exe micro           run the Bechamel micro-suite
*)

module Experiments = Xguard_harness.Experiments
module Engine = Xguard_sim.Engine
module Rng = Xguard_sim.Rng
module Config = Xguard_harness.Config
module System = Xguard_harness.System
module Tester = Xguard_harness.Random_tester
module Pool = Xguard_parallel.Pool
module Table = Xguard_stats.Table
module Spans = Xguard_obs.Spans

let print_report (r : Experiments.report) =
  Printf.printf "==============================================================\n";
  Printf.printf "%s\n" r.Experiments.title;
  Printf.printf "==============================================================\n";
  List.iter
    (fun t -> Printf.printf "%s\n" (Xguard_stats.Table.to_string t))
    r.Experiments.tables

(* ---- Bechamel micro-benchmarks: one per experiment family, so a
   regression in any table's machinery is visible as a throughput change. ---- *)

let bench_engine_events =
  (* T1/E1 family substrate: raw event throughput. *)
  Bechamel.Test.make ~name:"sim_kernel.events"
    (Bechamel.Staged.stage (fun () ->
         let e = Engine.create () in
         for i = 0 to 999 do
           Engine.schedule e ~delay:(i mod 7) ignore
         done;
         ignore (Engine.run e)))

let bench_network_messages =
  let module Net = Xguard_network.Network.Make (struct
    type t = int
  end) in
  Bechamel.Test.make ~name:"network.messages"
    (Bechamel.Staged.stage (fun () ->
         let e = Engine.create () in
         let rng = Rng.create ~seed:1 in
         let reg = Node.Registry.create () in
         let a = Node.Registry.fresh reg "a" and b = Node.Registry.fresh reg "b" in
         let net =
           Net.create ~engine:e ~rng ~name:"bench"
             ~ordering:(Xguard_network.Network.Ordered { latency = 3 })
             ()
         in
         Net.register net b (fun ~src:_ _ -> ());
         Net.register net a (fun ~src:_ _ -> ());
         for i = 0 to 499 do
           Net.send net ~src:a ~dst:b i
         done;
         ignore (Engine.run e)))

let bench_xg_transactions =
  (* E2/F1 family: end-to-end guard transactions (accel L1 + XG + Hammer). *)
  Bechamel.Test.make ~name:"xg.transactions"
    (Bechamel.Staged.stage (fun () ->
         let cfg = Config.make Config.Hammer (Config.Xg_one_level Config.Transactional) in
         let sys = System.build cfg in
         let port = sys.System.accel_ports.(0) in
         for i = 0 to 63 do
           ignore (port.Access.issue (Access.load (Addr.block i)) ~on_done:(fun _ -> ()))
         done;
         ignore (Engine.run sys.System.engine)))

let bench_xg_transactions_reliable =
  (* PR 3 overhead check: the same transaction batch with the link's
     seq+checksum reliability layer on and fault injection off.  Compare
     against xg.transactions for the pure framing/ack cost. *)
  Bechamel.Test.make ~name:"xg.transactions_reliable"
    (Bechamel.Staged.stage (fun () ->
         let cfg = Config.make Config.Hammer (Config.Xg_one_level Config.Transactional) in
         let cfg =
           { cfg with Config.link_faults = Some Xguard_network.Network.Fault.zero }
         in
         let sys = System.build cfg in
         let port = sys.System.accel_ports.(0) in
         for i = 0 to 63 do
           ignore (port.Access.issue (Access.load (Addr.block i)) ~on_done:(fun _ -> ()))
         done;
         ignore (Engine.run sys.System.engine)))

let bench_stress_iteration =
  (* E1 family: one small random-tester iteration. *)
  Bechamel.Test.make ~name:"stress.iteration"
    (Bechamel.Staged.stage (fun () ->
         let cfg =
           Config.stress_sized (Config.make Config.Mesi (Config.Xg_one_level Config.Full_state))
         in
         let sys = System.build cfg in
         let ports = Array.append sys.System.cpu_ports sys.System.accel_ports in
         ignore
           (Tester.run ~engine:sys.System.engine ~rng:(Rng.create ~seed:3) ~ports
              ~addresses:(Array.init 6 Addr.block) ~ops_per_core:50 ())))

let bench_perf_family =
  (* E3/E4/A2 family: one short workload run. *)
  Bechamel.Test.make ~name:"perf.workload_run"
    (Bechamel.Staged.stage (fun () ->
         ignore
           (Xguard_harness.Perf_runner.run
              (Config.make Config.Hammer Config.Accel_side)
              (Xguard_workload.Workload.blocked ~tiles:4 ()))))

(* ---- PDES topology-scaling micros (ISSUE 9): the sharded simulator on the
   workload it targets — an N-guard topology stress run, N = 1/2/4.  The
   simulation is a pure function of (config, seed), so [sim_j] only moves
   wall time; events per iteration is a constant we count once and fold into
   the JSON as events_per_s. ---- *)

module Pdes = Xguard_harness.Pdes

let pdes_topology n =
  let spec =
    Printf.sprintf "hammer:shards=%d;%s" n
      (String.concat ";"
         (List.init n (fun i -> Printf.sprintf "g%d=trans,cached" i)))
  in
  match Xguard_harness.Topology.of_string spec with
  | Ok t -> t
  | Error e -> failwith ("pdes bench topology: " ^ e)

let pdes_config n = Config.stress_sized (Config.of_topology (pdes_topology n))
let pdes_stress_shards = [ 1; 2; 4 ]
let pdes_name n = Printf.sprintf "pdes.stress_shards%d" n

let pdes_run ~sim_j n =
  Pdes.run_stress ~workers:sim_j ~seed:7 ~ops_per_core:120 (pdes_config n)

let bench_pdes ~sim_j n =
  Bechamel.Test.make ~name:(pdes_name n)
    (Bechamel.Staged.stage (fun () -> ignore (pdes_run ~sim_j n)))

(* Events one iteration fires, summed over the domain engines (the
   coordinator's thread-local counter misses worker-domain events). *)
let pdes_events_per_run ~sim_j =
  List.map
    (fun n ->
      let sys, _ = pdes_run ~sim_j n in
      let events =
        Array.fold_left
          (fun acc e -> acc + Engine.events_fired e)
          0 sys.System.shard_engines
      in
      (pdes_name n, events))
    pdes_stress_shards

(* Returns [(name, ns_per_run option)] so the JSON emitter can record the
   micro trajectory alongside the experiment tables. *)
let run_micro ~sim_j () =
  let open Bechamel in
  let benchmarks =
    [
      bench_engine_events;
      bench_network_messages;
      bench_xg_transactions;
      bench_xg_transactions_reliable;
      bench_stress_iteration;
      bench_perf_family;
    ]
    @ List.map (bench_pdes ~sim_j) pdes_stress_shards
  in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.8) ~kde:(Some 100) () in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  List.concat_map
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let results =
        Analyze.all (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| "run" |])
          Toolkit.Instance.monotonic_clock results
      in
      Hashtbl.fold
        (fun name result acc ->
          let est =
            match Bechamel.Analyze.OLS.estimates result with
            | Some [ est ] -> Some est
            | _ -> None
          in
          (match est with
          | Some e -> Printf.printf "%-28s %12.1f ns/run\n%!" name e
          | None -> Printf.printf "%-28s (no estimate)\n%!" name);
          (name, est) :: acc)
        results [])
    benchmarks

(* With --trace, run [f] with an armed ring buffer and dump its tail if the
   experiment machinery raises — the forensics path of lib/trace. *)
let with_tracing ~traced f =
  if not traced then f ()
  else begin
    let module Trace = Xguard_trace.Trace in
    let tr = Trace.create ~capacity:8192 () in
    try Trace.with_armed tr f
    with e ->
      let tail = Trace.dump ~last:60 tr in
      if tail <> "" then Printf.eprintf "-- event trail (last 60 events) --\n%s\n" tail;
      raise e
  end

(* ---- hand-rolled JSON (the container carries no yojson) ---- *)

let add_json_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let add_json_list buf add items =
  Buffer.add_char buf '[';
  List.iteri
    (fun i x ->
      if i > 0 then Buffer.add_char buf ',';
      add buf x)
    items;
  Buffer.add_char buf ']'

let add_json_table buf t =
  Buffer.add_string buf "{\"title\":";
  add_json_string buf (Table.title t);
  Buffer.add_string buf ",\"columns\":";
  add_json_list buf add_json_string (Table.columns t);
  Buffer.add_string buf ",\"rows\":";
  add_json_list buf (fun buf row -> add_json_list buf add_json_string row) (Table.rows t);
  Buffer.add_char buf '}'

(* One trajectory file per run: experiment tables (deterministic) plus wall
   times and events/sec throughput (not).  Perf regressions show up as drift
   in [wall_s]/[events_per_s] across the committed BENCH_*.json sequence and
   trip tools/check_bench.sh; result regressions as diffs in [tables]. *)
let emit_json ~path ~quick ~experiments ~micro ~pdes_events =
  let buf = Buffer.create 65536 in
  Buffer.add_string buf "{\"schema\":\"xguard-bench-v1\"";
  Printf.bprintf buf ",\"quick\":%b" quick;
  (match experiments with
  | [] -> ()
  | _ ->
      Buffer.add_string buf ",\"experiments\":";
      add_json_list buf
        (fun buf (r, wall_s, events) ->
          Buffer.add_string buf "{\"id\":";
          add_json_string buf r.Experiments.id;
          Buffer.add_string buf ",\"title\":";
          add_json_string buf r.Experiments.title;
          Printf.bprintf buf ",\"wall_s\":%.3f" wall_s;
          Printf.bprintf buf ",\"events\":%d" events;
          if wall_s > 0. then
            Printf.bprintf buf ",\"events_per_s\":%.0f" (float_of_int events /. wall_s);
          Buffer.add_string buf ",\"tables\":";
          add_json_list buf add_json_table r.Experiments.tables;
          Buffer.add_char buf '}')
        experiments);
  (match micro with
  | [] -> ()
  | _ ->
      Buffer.add_string buf ",\"micro\":";
      add_json_list buf
        (fun buf (name, est) ->
          Buffer.add_string buf "{\"name\":";
          add_json_string buf name;
          (match est with
          | Some ns ->
              Printf.bprintf buf ",\"ns_per_run\":%.1f" ns;
              if ns > 0. then Printf.bprintf buf ",\"ops_per_s\":%.1f" (1e9 /. ns)
          | None -> ());
          (* PDES micros additionally report simulated-event throughput: the
             per-iteration event count is deterministic, so events_per_s is
             the trajectory number the sharded-engine work is judged on. *)
          (match List.assoc_opt name pdes_events with
          | Some ev ->
              Printf.bprintf buf ",\"events_per_run\":%d" ev;
              (match est with
              | Some ns when ns > 0. ->
                  Printf.bprintf buf ",\"events_per_s\":%.0f"
                    (float_of_int ev *. 1e9 /. ns)
              | _ -> ())
          | None -> ());
          Buffer.add_char buf '}')
        micro);
  Buffer.add_string buf "}\n";
  let oc = open_out path in
  Buffer.output_buffer oc buf;
  close_out oc;
  Printf.printf "wrote %s\n" path

let usage () =
  Printf.eprintf
    "usage: bench/main.exe [--quick] [--trace] [--spans] [-j N] [--sim-j N] \
     [--json OUT] [EXPERIMENT...|micro]\n";
  exit 2

let () =
  let jobs = ref 1 in
  (* Worker count for the pdes.* micros (intra-run sharding; the simulated
     results are identical for any value, only wall time moves). *)
  let sim_j = ref (min 4 (Pool.default_workers ())) in
  let json = ref None in
  let quick = ref false in
  let traced = ref false in
  let spans = ref false in
  let selected = ref [] in
  let rec parse = function
    | [] -> ()
    | "--quick" :: tl -> quick := true; parse tl
    | "--trace" :: tl -> traced := true; parse tl
    | "--spans" :: tl -> spans := true; parse tl
    | ("-j" | "--jobs") :: n :: tl -> (
        match int_of_string_opt n with
        | Some v when v >= 1 -> jobs := v; parse tl
        | _ -> Printf.eprintf "-j expects a positive integer, got %S\n" n; exit 2)
    | "--sim-j" :: n :: tl -> (
        match int_of_string_opt n with
        | Some v when v >= 1 -> sim_j := v; parse tl
        | _ -> Printf.eprintf "--sim-j expects a positive integer, got %S\n" n; exit 2)
    | "--json" :: path :: tl -> json := Some path; parse tl
    | [ ("-j" | "--jobs" | "--json" | "--sim-j") ] -> usage ()
    | a :: _ when String.length a > 0 && a.[0] = '-' ->
        Printf.eprintf "unknown option %S\n" a;
        usage ()
    | a :: tl -> selected := !selected @ [ a ]; parse tl
  in
  parse (List.tl (Array.to_list Sys.argv));
  let quick = !quick and traced = !traced and jobs = !jobs and spans = !spans in
  let sim_j = !sim_j in
  if traced && jobs > 1 then begin
    (* The trace ring's arming state is process-global — see Trace. *)
    Printf.eprintf "--trace requires -j 1\n";
    exit 2
  end;
  (* "micro" may stand alone or ride along with experiment ids (e.g.
     `bench e1 micro --json ...`); a BENCH_*.json baseline generated with
     `bench --quick micro --json OUT` then carries both the experiment wall
     times and the micro (incl. pdes events_per_s) trajectory. *)
  let want_micro = List.mem "micro" !selected in
  let exp_ids = List.filter (fun id -> id <> "micro") !selected in
  match (want_micro, exp_ids) with
  | true, [] ->
      let micro = run_micro ~sim_j () in
      let pdes_events = pdes_events_per_run ~sim_j in
      Option.iter
        (fun path -> emit_json ~path ~quick ~experiments:[] ~micro ~pdes_events)
        !json
  | want_micro, ids ->
      let ids = if ids = [] then Experiments.ids else ids in
      let runs =
        Array.of_list
          (List.map
             (fun id ->
               match Experiments.by_id id with
               | Some f -> (id, f)
               | None ->
                   Printf.eprintf "unknown experiment %S; known: %s, micro\n" id
                     (String.concat ", " Experiments.ids);
                   exit 1)
             ids)
      in
      (* Experiments are independent simulations; fan them out over domains.
         Results are printed in selection order afterwards, so output is
         byte-identical for any -j (wall times in --json excepted). *)
      let results =
        Pool.map ~workers:jobs ~jobs:(Array.length runs) (fun i ->
            let _, f = runs.(i) in
            let rec_ = if spans then Some (Spans.create ()) else None in
            let armed g = match rec_ with None -> g () | Some rc -> Spans.with_armed rc g in
            let ev0 = Engine.events_fired_here () in
            let t0 = Unix.gettimeofday () in
            let r = with_tracing ~traced (fun () -> armed (fun () -> f ~quick ())) in
            let wall = Unix.gettimeofday () -. t0 in
            (* With --spans, the attribution table rides along in the report
               so it reaches both stdout and the --json trajectory file. *)
            let r =
              match rec_ with
              | None -> r
              | Some rc -> (
                  match
                    Spans.Summary.attribution_table
                      ~title:
                        (Printf.sprintf "Latency attribution (cycles): %s" r.Experiments.id)
                      (Spans.summary rc)
                  with
                  | Some t -> { r with Experiments.tables = r.Experiments.tables @ [ t ] }
                  | None -> r)
            in
            (r, wall, Engine.events_fired_here () - ev0))
      in
      let ok = ref [] in
      let failed = ref false in
      Array.iteri
        (fun i outcome ->
          match outcome with
          | Pool.Done ((r, _, _) as run) ->
              print_report r;
              ok := run :: !ok
          | Pool.Failed msg ->
              failed := true;
              Printf.eprintf "experiment %s FAILED: %s\n" (fst runs.(i)) msg)
        results;
      let micro = if want_micro then run_micro ~sim_j () else [] in
      let pdes_events = if want_micro then pdes_events_per_run ~sim_j else [] in
      Option.iter
        (fun path ->
          emit_json ~path ~quick ~experiments:(List.rev !ok) ~micro ~pdes_events)
        !json;
      if ids = Experiments.ids && (not want_micro) && !json = None then
        Printf.printf "\n(micro-benchmarks: run with `micro`)\n";
      if !failed then exit 1
