(* Benchmark harness: regenerates every table and figure of the reproduction
   (see DESIGN.md's experiment index and EXPERIMENTS.md for paper-vs-measured)
   plus a Bechamel micro-benchmark suite over the simulation machinery.

   Usage:
     bench/main.exe                 run every experiment (full size)
     bench/main.exe --quick         run every experiment (reduced size)
     bench/main.exe --trace ...     arm the event ring buffer; if an
                                    experiment crashes, dump the trail
     bench/main.exe e3 e4           run selected experiments
     bench/main.exe micro           run the Bechamel micro-suite
*)

module Experiments = Xguard_harness.Experiments
module Engine = Xguard_sim.Engine
module Rng = Xguard_sim.Rng
module Config = Xguard_harness.Config
module System = Xguard_harness.System
module Tester = Xguard_harness.Random_tester

let print_report (r : Experiments.report) =
  Printf.printf "==============================================================\n";
  Printf.printf "%s\n" r.Experiments.title;
  Printf.printf "==============================================================\n";
  List.iter
    (fun t -> Printf.printf "%s\n" (Xguard_stats.Table.to_string t))
    r.Experiments.tables

(* ---- Bechamel micro-benchmarks: one per experiment family, so a
   regression in any table's machinery is visible as a throughput change. ---- *)

let bench_engine_events =
  (* T1/E1 family substrate: raw event throughput. *)
  Bechamel.Test.make ~name:"sim_kernel.events"
    (Bechamel.Staged.stage (fun () ->
         let e = Engine.create () in
         for i = 0 to 999 do
           Engine.schedule e ~delay:(i mod 7) ignore
         done;
         ignore (Engine.run e)))

let bench_network_messages =
  let module Net = Xguard_network.Network.Make (struct
    type t = int
  end) in
  Bechamel.Test.make ~name:"network.messages"
    (Bechamel.Staged.stage (fun () ->
         let e = Engine.create () in
         let rng = Rng.create ~seed:1 in
         let reg = Node.Registry.create () in
         let a = Node.Registry.fresh reg "a" and b = Node.Registry.fresh reg "b" in
         let net =
           Net.create ~engine:e ~rng ~name:"bench"
             ~ordering:(Xguard_network.Network.Ordered { latency = 3 })
             ()
         in
         Net.register net b (fun ~src:_ _ -> ());
         Net.register net a (fun ~src:_ _ -> ());
         for i = 0 to 499 do
           Net.send net ~src:a ~dst:b i
         done;
         ignore (Engine.run e)))

let bench_xg_transactions =
  (* E2/F1 family: end-to-end guard transactions (accel L1 + XG + Hammer). *)
  Bechamel.Test.make ~name:"xg.transactions"
    (Bechamel.Staged.stage (fun () ->
         let cfg = Config.make Config.Hammer (Config.Xg_one_level Config.Transactional) in
         let sys = System.build cfg in
         let port = sys.System.accel_ports.(0) in
         for i = 0 to 63 do
           ignore (port.Access.issue (Access.load (Addr.block i)) ~on_done:(fun _ -> ()))
         done;
         ignore (Engine.run sys.System.engine)))

let bench_stress_iteration =
  (* E1 family: one small random-tester iteration. *)
  Bechamel.Test.make ~name:"stress.iteration"
    (Bechamel.Staged.stage (fun () ->
         let cfg =
           Config.stress_sized (Config.make Config.Mesi (Config.Xg_one_level Config.Full_state))
         in
         let sys = System.build cfg in
         let ports = Array.append sys.System.cpu_ports sys.System.accel_ports in
         ignore
           (Tester.run ~engine:sys.System.engine ~rng:(Rng.create ~seed:3) ~ports
              ~addresses:(Array.init 6 Addr.block) ~ops_per_core:50 ())))

let bench_perf_family =
  (* E3/E4/A2 family: one short workload run. *)
  Bechamel.Test.make ~name:"perf.workload_run"
    (Bechamel.Staged.stage (fun () ->
         ignore
           (Xguard_harness.Perf_runner.run
              (Config.make Config.Hammer Config.Accel_side)
              (Xguard_workload.Workload.blocked ~tiles:4 ()))))

let run_micro () =
  let open Bechamel in
  let benchmarks =
    [
      bench_engine_events;
      bench_network_messages;
      bench_xg_transactions;
      bench_stress_iteration;
      bench_perf_family;
    ]
  in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.8) ~kde:(Some 100) () in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let results =
        Analyze.all (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| "run" |])
          Toolkit.Instance.monotonic_clock results
      in
      Hashtbl.iter
        (fun name result ->
          match Bechamel.Analyze.OLS.estimates result with
          | Some [ est ] -> Printf.printf "%-28s %12.1f ns/run\n%!" name est
          | _ -> Printf.printf "%-28s (no estimate)\n%!" name)
        results)
    benchmarks

(* With --trace, run [f] with an armed ring buffer and dump its tail if the
   experiment machinery raises — the forensics path of lib/trace. *)
let with_tracing ~traced f =
  if not traced then f ()
  else begin
    let module Trace = Xguard_trace.Trace in
    let tr = Trace.create ~capacity:8192 () in
    try Trace.with_armed tr f
    with e ->
      let tail = Trace.dump ~last:60 tr in
      if tail <> "" then Printf.eprintf "-- event trail (last 60 events) --\n%s\n" tail;
      raise e
  end

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let quick = List.mem "--quick" args in
  let traced = List.mem "--trace" args in
  let args = List.filter (fun a -> a <> "--quick" && a <> "--trace") args in
  match args with
  | [] ->
      with_tracing ~traced (fun () -> List.iter print_report (Experiments.all ~quick ()));
      Printf.printf "\n(micro-benchmarks: run with `micro`)\n"
  | [ "micro" ] -> run_micro ()
  | ids ->
      List.iter
        (fun id ->
          match Experiments.by_id id with
          | Some f -> with_tracing ~traced (fun () -> print_report (f ~quick ()))
          | None ->
              Printf.eprintf "unknown experiment %S; known: %s, micro\n" id
                (String.concat ", " Experiments.ids);
              exit 1)
        ids
