(* Command-line driver for the Crossing Guard reproduction.

   Subcommands:
     run      — run a workload on one configuration and print its statistics
     stress   — random coherence stress test (paper §4.1)
     fuzz     — bombard the guard with a pathological accelerator (paper §4)
     report   — regenerate a reproduced table/figure (same as bench/main.exe)
     list     — enumerate configurations, workloads and experiments
*)

open Cmdliner

module Config = Xguard_harness.Config
module System = Xguard_harness.System
module Tester = Xguard_harness.Random_tester
module Fuzz = Xguard_harness.Fuzz_tester
module Perf = Xguard_harness.Perf_runner
module Experiments = Xguard_harness.Experiments
module W = Xguard_workload.Workload
module Rng = Xguard_sim.Rng
module Xg = Xguard_xg

let find_config name =
  List.find_opt (fun c -> Config.name c = name) (Config.all_configurations ())

let config_names = List.map Config.name (Config.all_configurations ())

let find_workload name = List.find_opt (fun w -> w.W.name = name) (W.all ())

let config_arg =
  let doc =
    "System configuration, one of: " ^ String.concat ", " config_names ^ "."
  in
  Arg.(value & opt string "hammer/xg-trans-1lvl" & info [ "c"; "config" ] ~docv:"CONFIG" ~doc)

let seed_arg =
  Arg.(value & opt int 42 & info [ "s"; "seed" ] ~docv:"SEED" ~doc:"Random seed.")

let with_config name seed f =
  match find_config name with
  | None ->
      Printf.eprintf "unknown configuration %S\nknown: %s\n" name
        (String.concat ", " config_names);
      exit 1
  | Some cfg -> f { cfg with Config.seed }

(* ---- run ---- *)

let run_cmd =
  let workload_arg =
    let doc = "Workload: streaming, blocked, graph, write-coalesce, producer-consumer." in
    Arg.(value & opt string "blocked" & info [ "w"; "workload" ] ~docv:"WORKLOAD" ~doc)
  in
  let action config workload seed =
    with_config config seed (fun cfg ->
        match find_workload workload with
        | None ->
            Printf.eprintf "unknown workload %S\n" workload;
            exit 1
        | Some w ->
            let r = Perf.run cfg w in
            Printf.printf "configuration      %s\n" r.Perf.config_name;
            Printf.printf "workload           %s (%s)\n" w.W.name w.W.description;
            Printf.printf "cycles             %d\n" r.Perf.cycles;
            Printf.printf "accel accesses     %d\n" r.Perf.accel_accesses;
            Printf.printf "mean latency       %.1f cycles\n" r.Perf.mean_accel_latency;
            Printf.printf "p99 latency        %d cycles\n" r.Perf.p99_accel_latency;
            Printf.printf "host bytes         %d\n" r.Perf.host_bytes;
            Printf.printf "link bytes         %d\n" r.Perf.link_bytes;
            Printf.printf "guard violations   %d\n" r.Perf.violations)
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run a workload on one configuration")
    Term.(const action $ config_arg $ workload_arg $ seed_arg)

(* ---- stress ---- *)

let stress_cmd =
  let ops_arg =
    Arg.(value & opt int 500 & info [ "ops" ] ~docv:"N" ~doc:"Operations per core.")
  in
  let seeds_arg =
    Arg.(value & opt int 5 & info [ "seeds" ] ~docv:"N" ~doc:"Number of seeds to sweep.")
  in
  let action config seed ops seeds =
    with_config config seed (fun base ->
        let failures = ref 0 in
        for s = seed to seed + seeds - 1 do
          let cfg = Config.stress_sized { base with Config.seed = s } in
          let sys = System.build cfg in
          let ports = Array.append sys.System.cpu_ports sys.System.accel_ports in
          let o =
            Tester.run ~engine:sys.System.engine ~rng:(Rng.create ~seed:(s * 7 + 1)) ~ports
              ~addresses:(Array.init 6 Addr.block) ~ops_per_core:ops ()
          in
          let viol = Xg.Os_model.error_count sys.System.os in
          let bad = o.Tester.data_errors > 0 || o.Tester.deadlocked || viol > 0 in
          if bad then incr failures;
          Printf.printf "seed %-6d ops=%-6d data_errors=%-3d deadlock=%-5b violations=%-3d %s\n"
            s o.Tester.ops_completed o.Tester.data_errors o.Tester.deadlocked viol
            (if bad then "FAIL" else "ok")
        done;
        Printf.printf "%s\n" (if !failures = 0 then "PASS" else "FAIL");
        if !failures > 0 then exit 1)
  in
  Cmd.v
    (Cmd.info "stress" ~doc:"Random coherence stress test (paper section 4.1)")
    Term.(const action $ config_arg $ seed_arg $ ops_arg $ seeds_arg)

(* ---- fuzz ---- *)

let fuzz_cmd =
  let mute_arg =
    Arg.(value & flag & info [ "mute" ] ~doc:"The accelerator never answers invalidations.")
  in
  let action config seed mute =
    with_config config seed (fun cfg ->
        if not (Config.uses_xg cfg) then begin
          Printf.eprintf "fuzzing needs a Crossing Guard configuration\n";
          exit 1
        end;
        let o =
          if mute then Fuzz.run cfg ~respond_probability:0.0 ~requests_only:true ()
          else Fuzz.run cfg ()
        in
        Printf.printf "chaos messages     %d\n" o.Fuzz.chaos_messages;
        Printf.printf "cpu ops            %d/%d\n" o.Fuzz.cpu_ops_completed o.Fuzz.cpu_ops_expected;
        Printf.printf "crashed            %s\n"
          (match o.Fuzz.crashed with Some e -> e | None -> "no");
        Printf.printf "deadlocked         %b\n" o.Fuzz.deadlocked;
        Printf.printf "violations         %d\n" o.Fuzz.violations;
        List.iter
          (fun (k, n) -> Printf.printf "  %-36s %d\n" (Xg.Os_model.error_kind_to_string k) n)
          o.Fuzz.violations_by_kind;
        if o.Fuzz.crashed <> None || o.Fuzz.deadlocked then exit 1)
  in
  Cmd.v
    (Cmd.info "fuzz" ~doc:"Bombard the guard with a pathological accelerator")
    Term.(const action $ config_arg $ seed_arg $ mute_arg)

(* ---- report ---- *)

let report_cmd =
  let id_arg =
    Arg.(value & pos 0 string "all" & info [] ~docv:"EXPERIMENT"
           ~doc:"Experiment id (t1 f1 f2 e1-e8 a1 a2) or 'all'.")
  in
  let quick_arg = Arg.(value & flag & info [ "quick" ] ~doc:"Reduced-size run.") in
  let action id quick =
    let print (r : Experiments.report) =
      Printf.printf "== %s ==\n" r.Experiments.title;
      List.iter (fun t -> print_string (Xguard_stats.Table.to_string t); print_newline ())
        r.Experiments.tables
    in
    if id = "all" then List.iter print (Experiments.all ~quick ())
    else
      match Experiments.by_id id with
      | Some f -> print (f ~quick ())
      | None ->
          Printf.eprintf "unknown experiment %S; known: %s\n" id
            (String.concat ", " Experiments.ids);
          exit 1
  in
  Cmd.v
    (Cmd.info "report" ~doc:"Regenerate a reproduced table or figure")
    Term.(const action $ id_arg $ quick_arg)

(* ---- list ---- *)

let list_cmd =
  let action () =
    Printf.printf "configurations:\n";
    List.iter (fun n -> Printf.printf "  %s\n" n) config_names;
    Printf.printf "workloads:\n";
    List.iter (fun w -> Printf.printf "  %-18s %s\n" w.W.name w.W.description) (W.all ());
    Printf.printf "experiments:\n  %s\n" (String.concat " " Experiments.ids)
  in
  Cmd.v (Cmd.info "list" ~doc:"List configurations, workloads and experiments")
    Term.(const action $ const ())

let () =
  let doc = "Crossing Guard: mediating host-accelerator coherence interactions (reproduction)" in
  let info = Cmd.info "xguard" ~version:"1.0.0" ~doc in
  exit (Cmd.eval (Cmd.group info [ run_cmd; stress_cmd; fuzz_cmd; report_cmd; list_cmd ]))
