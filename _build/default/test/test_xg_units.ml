(* Unit tests for the Crossing Guard's building blocks: the permission table,
   the OS error model, the rate limiter, block-size translation and the
   guard's storage accounting. *)

module Engine = Xguard_sim.Engine
module Rng = Xguard_sim.Rng
module Xg = Xguard_xg

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ---- Perm_table ---- *)

let test_perm_defaults_and_pages () =
  let t = Xg.Perm_table.create () in
  check_bool "default RW" true (Xg.Perm_table.allows_write t (Addr.block 5));
  Xg.Perm_table.set_block t (Addr.block 5) Perm.Read_only;
  check_bool "RO read" true (Xg.Perm_table.allows_read t (Addr.block 5));
  check_bool "RO !write" false (Xg.Perm_table.allows_write t (Addr.block 5));
  (* The whole page is affected. *)
  check_bool "same page" false (Xg.Perm_table.allows_write t (Addr.block 6));
  check_bool "other page untouched" true (Xg.Perm_table.allows_write t (Addr.block 100))

let test_perm_restrictive_default () =
  let t = Xg.Perm_table.create ~default:Perm.No_access () in
  check_bool "no read by default" false (Xg.Perm_table.allows_read t (Addr.block 0));
  Xg.Perm_table.set_page t ~page:0 Perm.Read_write;
  check_bool "page opened" true (Xg.Perm_table.allows_write t (Addr.block 0))

(* ---- Os_model ---- *)

let test_os_logging_and_counts () =
  let os = Xg.Os_model.create () in
  Xg.Os_model.report os Xg.Os_model.Response_timeout (Addr.block 1);
  Xg.Os_model.report os Xg.Os_model.Response_timeout (Addr.block 2);
  Xg.Os_model.report os Xg.Os_model.Bad_request_stable (Addr.block 3);
  check_int "total" 3 (Xg.Os_model.error_count os);
  check_int "per kind" 2 (Xg.Os_model.count_of os Xg.Os_model.Response_timeout);
  check_int "log order" 1
    (match Xg.Os_model.log os with (_, a) :: _ -> Addr.to_int a | [] -> -1);
  check_bool "log-only never disables" false (Xg.Os_model.accel_disabled os)

let test_os_policies () =
  let os = Xg.Os_model.create ~policy:Xg.Os_model.Disable_accelerator () in
  check_bool "enabled before" false (Xg.Os_model.accel_disabled os);
  Xg.Os_model.report os Xg.Os_model.Perm_read_violation (Addr.block 0);
  check_bool "disabled after" true (Xg.Os_model.accel_disabled os);
  check_bool "not killed" false (Xg.Os_model.process_killed os);
  let os = Xg.Os_model.create ~policy:Xg.Os_model.Kill_process () in
  Xg.Os_model.report os Xg.Os_model.Perm_read_violation (Addr.block 0);
  check_bool "killed" true (Xg.Os_model.process_killed os)

(* ---- Rate_limiter ---- *)

let test_rate_limiter_burst_then_throttle () =
  let e = Engine.create () in
  let rl = Xg.Rate_limiter.create ~engine:e ~tokens_per_cycle:0.1 ~burst:3 () in
  let fired = ref [] in
  for i = 1 to 6 do
    Xg.Rate_limiter.admit rl (fun () -> fired := (i, Engine.now e) :: !fired)
  done;
  ignore (Engine.run e);
  let fired = List.rev !fired in
  check_int "all admitted eventually" 6 (List.length fired);
  Alcotest.(check (list int)) "FIFO order" [ 1; 2; 3; 4; 5; 6 ] (List.map fst fired);
  (* First three ride the burst at t=0; the rest wait ~10 cycles each. *)
  let times = List.map snd fired in
  check_bool "burst immediate" true (List.nth times 2 = 0);
  check_bool "throttled afterwards" true (List.nth times 3 >= 10);
  check_bool "spaced by the rate" true (List.nth times 5 >= List.nth times 4 + 9);
  check_int "delayed count" 3 (Xg.Rate_limiter.delayed rl)

let test_rate_limiter_refill () =
  let e = Engine.create () in
  let rl = Xg.Rate_limiter.create ~engine:e ~tokens_per_cycle:0.5 ~burst:2 () in
  let count = ref 0 in
  (* Drain the burst, then wait long enough to refill fully. *)
  Xg.Rate_limiter.admit rl (fun () -> incr count);
  Xg.Rate_limiter.admit rl (fun () -> incr count);
  Engine.schedule e ~delay:100 (fun () ->
      Xg.Rate_limiter.admit rl (fun () -> check_int "after refill: immediate" 100 (Engine.now e)));
  ignore (Engine.run e);
  check_int "burst ran" 2 !count

(* ---- Block_merge ---- *)

let make_backing engine memory log =
  {
    Xg.Block_merge.get =
      (fun addr ~excl ~on_grant ->
        log := `Get (Addr.to_int addr, excl) :: !log;
        Engine.schedule engine ~delay:5 (fun () -> on_grant (Memory_model.read memory addr)));
    Xg.Block_merge.put =
      (fun addr data ->
        log := `Put (Addr.to_int addr) :: !log;
        Memory_model.write memory addr data);
  }

let test_block_merge_get_merges_components () =
  let e = Engine.create () in
  let memory = Memory_model.create () in
  let log = ref [] in
  let bm = Xg.Block_merge.create ~engine:e ~ratio:4 ~backing:(make_backing e memory log) () in
  let got = ref None in
  Xg.Block_merge.get bm ~line:3 ~excl:false ~on_grant:(fun g -> got := Some g);
  ignore (Engine.run e);
  (match !got with
  | Some (Xg.Block_merge.Merged_s parts) ->
      check_int "ratio parts" 4 (Array.length parts);
      Array.iteri
        (fun i d -> check_int "component data" (Data.initial (Addr.block (12 + i))) d)
        parts
  | _ -> Alcotest.fail "expected a shared merged grant");
  check_int "4 host gets" 4 (Xg.Block_merge.host_transactions bm);
  check_int "no open merges" 0 (Xg.Block_merge.open_merges bm)

let test_block_merge_put_splits () =
  let e = Engine.create () in
  let memory = Memory_model.create () in
  let log = ref [] in
  let bm = Xg.Block_merge.create ~engine:e ~ratio:2 ~backing:(make_backing e memory log) () in
  Xg.Block_merge.put bm ~line:5 [| Data.token 71; Data.token 72 |];
  check_int "component 0" 71 (Memory_model.read memory (Addr.block 10));
  check_int "component 1" 72 (Memory_model.read memory (Addr.block 11));
  (try
     Xg.Block_merge.put bm ~line:5 [| Data.token 1 |];
     Alcotest.fail "expected arity rejection"
   with Invalid_argument _ -> ())

let test_block_merge_line_mapping () =
  let e = Engine.create () in
  let memory = Memory_model.create () in
  let log = ref [] in
  let bm = Xg.Block_merge.create ~engine:e ~ratio:4 ~backing:(make_backing e memory log) () in
  check_int "block 0 -> line 0" 0 (Xg.Block_merge.line_of_host_block bm (Addr.block 0));
  check_int "block 7 -> line 1" 1 (Xg.Block_merge.line_of_host_block bm (Addr.block 7));
  try
    ignore (Xg.Block_merge.create ~engine:e ~ratio:3 ~backing:(make_backing e memory log) ());
    Alcotest.fail "expected power-of-two rejection"
  with Invalid_argument _ -> ()

let test_block_merge_exclusive_grant () =
  let e = Engine.create () in
  let memory = Memory_model.create () in
  let log = ref [] in
  let bm = Xg.Block_merge.create ~engine:e ~ratio:2 ~backing:(make_backing e memory log) () in
  let got = ref None in
  Xg.Block_merge.get bm ~line:0 ~excl:true ~on_grant:(fun g -> got := Some g);
  ignore (Engine.run e);
  match !got with
  | Some (Xg.Block_merge.Merged_e _) -> ()
  | _ -> Alcotest.fail "expected an exclusive merged grant"

(* ---- Xg_core storage accounting (E5 machinery) ---- *)

let test_storage_accounting_modes () =
  (* Full-state tracks every resident block; transactional only open
     transactions.  After quiescence, transactional storage returns to zero
     while full-state grows with residency. *)
  let module Config = Xguard_harness.Config in
  let module System = Xguard_harness.System in
  let measure variant =
    let cfg = Config.make Config.Hammer (Config.Xg_one_level variant) in
    let sys = System.build cfg in
    let core = Option.get sys.System.xg_core in
    let port = sys.System.accel_ports.(0) in
    for i = 0 to 19 do
      ignore (port.Access.issue (Access.load (Addr.block i)) ~on_done:(fun _ -> ()));
      ignore (Engine.run sys.System.engine)
    done;
    (Xg.Xg_core.tracked_blocks core, Xg.Xg_core.storage_bits core, Xg.Xg_core.peak_storage_bits core)
  in
  let full_tracked, full_bits, full_peak = measure Config.Full_state in
  let trans_tracked, trans_bits, trans_peak = measure Config.Transactional in
  check_int "full-state tracks residency" 20 full_tracked;
  check_int "transactional tracks nothing at rest" 0 trans_tracked;
  check_int "transactional quiescent storage is zero" 0 trans_bits;
  check_bool "full-state standing storage" true (full_bits >= 20 * 36);
  check_bool "transactional peak covers open txns only" true (trans_peak < full_peak)

let tests =
  [
    ( "xg.perm_table",
      [
        Alcotest.test_case "defaults + pages" `Quick test_perm_defaults_and_pages;
        Alcotest.test_case "restrictive default" `Quick test_perm_restrictive_default;
      ] );
    ( "xg.os_model",
      [
        Alcotest.test_case "logging + counts" `Quick test_os_logging_and_counts;
        Alcotest.test_case "policies" `Quick test_os_policies;
      ] );
    ( "xg.rate_limiter",
      [
        Alcotest.test_case "burst then throttle" `Quick test_rate_limiter_burst_then_throttle;
        Alcotest.test_case "refill" `Quick test_rate_limiter_refill;
      ] );
    ( "xg.block_merge",
      [
        Alcotest.test_case "get merges" `Quick test_block_merge_get_merges_components;
        Alcotest.test_case "put splits" `Quick test_block_merge_put_splits;
        Alcotest.test_case "line mapping" `Quick test_block_merge_line_mapping;
        Alcotest.test_case "exclusive grant" `Quick test_block_merge_exclusive_grant;
      ] );
    ( "xg.storage",
      [ Alcotest.test_case "full-state vs transactional" `Quick test_storage_accounting_modes ]
    );
  ]
