(* Unit tests for the shared accelerator L2 (two-level hierarchy, Figure 2d):
   interface composability, internal transfers, inclusivity, and the internal
   Put/Invalidate race, all against Toy_home as the trusted home side. *)

module Engine = Xguard_sim.Engine
module Rng = Xguard_sim.Rng
module Xg_iface = Xguard_xg.Xg_iface
module Toy_home = Xguard_xg.Toy_home
module L1 = Xguard_accel.L1_simple
module L2 = Xguard_accel.L2_shared
module Lower_port = Xguard_accel.Lower_port

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

type system = {
  engine : Engine.t;
  l1s : L1.t array;
  l2 : L2.t;
  home : Toy_home.t;
  memory : Memory_model.t;
  external_link : Xg_iface.Link.t;
}

let make ?(cores = 2) ?(l2_sets = 4) ?(l2_ways = 2) ?(l1_sets = 1) ?(l1_ways = 2) () =
  let engine = Engine.create () in
  let rng = Rng.create ~seed:5 in
  let reg = Node.Registry.create () in
  let external_link =
    Xg_iface.Link.create ~engine ~rng:(Rng.split rng) ~name:"ext"
      ~ordering:(Xguard_network.Network.Ordered { latency = 4 }) ()
  in
  let internal =
    Xg_iface.Link.create ~engine ~rng:(Rng.split rng) ~name:"int"
      ~ordering:(Xguard_network.Network.Ordered { latency = 2 }) ()
  in
  let l2_node = Node.Registry.fresh reg "l2" in
  let l2_ext = Node.Registry.fresh reg "l2_ext" in
  let home_node = Node.Registry.fresh reg "home" in
  let lower = Lower_port.on_link external_link ~self:l2_ext ~peer:home_node in
  let l2 =
    L2.create ~engine ~name:"accel.l2" ~internal ~node:l2_node ~lower ~sets:l2_sets
      ~ways:l2_ways ()
  in
  Xg_iface.Link.register external_link l2_ext (fun ~src:_ msg -> L2.deliver_from_below l2 msg);
  let memory = Memory_model.create () in
  let home =
    Toy_home.create ~engine ~link:external_link ~self:home_node ~accel:l2_ext ~memory
      ~grant_style:Toy_home.Exclusive_when_clean ()
  in
  let l1s =
    Array.init cores (fun i ->
        let node = Node.Registry.fresh reg (Printf.sprintf "l1_%d" i) in
        let lower = Lower_port.on_link internal ~self:node ~peer:l2_node in
        let l1 =
          L1.create ~engine ~name:(Printf.sprintf "l1_%d" i) ~flavor:L1.Mesi ~sets:l1_sets
            ~ways:l1_ways ~lower ()
        in
        Xg_iface.Link.register internal node (fun ~src:_ msg -> L1.deliver l1 msg);
        l1)
  in
  { engine; l1s; l2; home; memory; external_link }

let run sys = ignore (Engine.run sys.engine)

let do_op sys core access =
  let got = ref None in
  let port = L1.cpu_port sys.l1s.(core) in
  let rec attempt tries =
    if tries > 200 then Alcotest.fail "access never accepted";
    if not (port.Access.issue access ~on_done:(fun v -> got := Some v)) then begin
      run sys;
      attempt (tries + 1)
    end
  in
  attempt 0;
  run sys;
  Option.get !got

let a0 = Addr.block 0

let test_exclusive_passthrough () =
  let sys = make () in
  ignore (do_op sys 0 (Access.load a0));
  (* Home granted E; the L2 passes the full privilege to the sole L1. *)
  check_bool "L2 holds E" true (L2.probe sys.l2 a0 = `E);
  check_bool "L1 holds E" true (L1.probe sys.l1s.(0) a0 = `E);
  check_bool "upward owner" true (L2.upward_holders sys.l2 a0 = `Owner)

let test_internal_transfer_no_host_traffic () =
  let sys = make () in
  ignore (do_op sys 0 (Access.store a0 (Data.token 42)));
  let before = Xg_iface.Link.messages_sent sys.external_link in
  check_int "second core reads through the L2" 42 (do_op sys 1 (Access.load a0));
  check_int "no external traffic for the transfer" before
    (Xg_iface.Link.messages_sent sys.external_link);
  check_bool "now shared upward" true (L2.upward_holders sys.l2 a0 = `Sharers 1);
  check_int "transfer counted" 1
    (Xguard_stats.Counter.Group.get (L2.stats sys.l2) "internal_transfer")

let test_internal_upgrade_invalidates_sibling () =
  let sys = make () in
  ignore (do_op sys 0 (Access.store a0 (Data.token 1)));
  ignore (do_op sys 1 (Access.load a0));
  (* Core 1 upgrades: core 0's copy must be invalidated internally. *)
  ignore (do_op sys 1 (Access.store a0 (Data.token 2)));
  check_bool "sibling invalidated" true (L1.probe sys.l1s.(0) a0 = `I);
  check_int "new value visible to sibling" 2 (do_op sys 0 (Access.load a0))

let test_home_recall_gathers_owner_data () =
  let sys = make () in
  ignore (do_op sys 0 (Access.store a0 (Data.token 77)));
  (* The dirty data lives in the L1; a home recall must pull it through the
     L2 (inclusive gather) and write it back. *)
  let done_ = ref false in
  Toy_home.recall sys.home a0 ~on_done:(fun () -> done_ := true);
  run sys;
  check_bool "recall completed" true !done_;
  check_int "owner's dirty data reached memory" 77 (Memory_model.read sys.memory a0);
  check_bool "whole hierarchy invalid" true
    (L2.probe sys.l2 a0 = `I && L1.probe sys.l1s.(0) a0 = `I)

let test_l2_eviction_recalls_l1s () =
  (* L2 with a single set of 2 ways: a third block forces an L2 eviction,
     which must gather the L1 copies first (inclusivity). *)
  let sys = make ~l2_sets:1 ~l2_ways:2 ~l1_sets:4 ~l1_ways:4 () in
  ignore (do_op sys 0 (Access.store (Addr.block 0) (Data.token 10)));
  ignore (do_op sys 0 (Access.store (Addr.block 1) (Data.token 11)));
  ignore (do_op sys 0 (Access.load (Addr.block 2)));
  run sys;
  (* One of the first two blocks was evicted through the home. *)
  let evicted_0 = L2.probe sys.l2 (Addr.block 0) = `I in
  let evicted_1 = L2.probe sys.l2 (Addr.block 1) = `I in
  check_bool "one victim evicted" true (evicted_0 || evicted_1);
  let victim = if evicted_0 then Addr.block 0 else Addr.block 1 in
  check_bool "L1 copy gathered (inclusive)" true (L1.probe sys.l1s.(0) victim = `I);
  check_int "victim's dirty data written home" (10 + Addr.to_int victim)
    (Memory_model.read sys.memory victim)

let test_sharers_gathered_on_eviction () =
  let sys = make ~l2_sets:1 ~l2_ways:2 ~l1_sets:4 ~l1_ways:4 () in
  ignore (do_op sys 0 (Access.load (Addr.block 0)));
  ignore (do_op sys 1 (Access.load (Addr.block 0)));
  ignore (do_op sys 0 (Access.load (Addr.block 1)));
  (* Force eviction of block 0 (LRU), which both L1s share. *)
  ignore (do_op sys 0 (Access.load (Addr.block 2)));
  run sys;
  check_bool "both sharers invalidated" true
    (L1.probe sys.l1s.(0) (Addr.block 0) = `I && L1.probe sys.l1s.(1) (Addr.block 0) = `I)

let test_put_inv_race_internal () =
  (* An L1 evicts (PutM) exactly while the L2 is gathering that block: the
     L2 must absorb the racing writeback's data. *)
  let sys = make ~l1_sets:1 ~l1_ways:1 () in
  ignore (do_op sys 0 (Access.store a0 (Data.token 5)));
  (* Trigger the L1 eviction (a conflicting access rejects while the PutM
     flies) and immediately have the home recall the block. *)
  let port = L1.cpu_port sys.l1s.(0) in
  check_bool "rejected while evicting" false
    (port.Access.issue (Access.load (Addr.block 1)) ~on_done:(fun _ -> ()));
  let done_ = ref false in
  Toy_home.recall sys.home a0 ~on_done:(fun () -> done_ := true);
  run sys;
  check_bool "recall completed" true !done_;
  check_int "racing writeback's data survived" 5 (Memory_model.read sys.memory a0)

let test_random_multicore_coherence () =
  (* Per-location sequential consistency across 4 cores through the
     hierarchy, checked like the main random tester. *)
  let sys = make ~cores:4 ~l2_sets:2 ~l2_ways:2 () in
  let rng = Rng.create ~seed:21 in
  let committed = Hashtbl.create 8 in
  let pending : (Addr.t, Data.t) Hashtbl.t = Hashtbl.create 8 in
  let history : (Addr.t, Data.t list) Hashtbl.t = Hashtbl.create 8 in
  let errors = ref 0 in
  let seqs =
    Array.map
      (fun l1 ->
        Sequencer.create ~engine:sys.engine ~name:(L1.name l1) ~port:(L1.cpu_port l1)
          ~max_outstanding:2 ())
      sys.l1s
  in
  let addresses = Array.init 5 Addr.block in
  let token = ref 50_000 in
  for _ = 1 to 600 do
    let core = Rng.int rng 4 in
    let addr = Rng.pick rng addresses in
    Engine.schedule sys.engine ~delay:(Rng.int rng 10) (fun () ->
        if (not (Hashtbl.mem pending addr)) && Rng.bool rng then begin
          incr token;
          let v = Data.token !token in
          Hashtbl.replace pending addr v;
          Sequencer.request seqs.(core) (Access.store addr v) ~on_complete:(fun _ ~latency:_ ->
              Hashtbl.remove pending addr;
              Hashtbl.replace committed addr v;
              let h = try Hashtbl.find history addr with Not_found -> [] in
              Hashtbl.replace history addr (v :: h))
        end
        else begin
          let visible_at_issue =
            (try Hashtbl.find history addr with Not_found -> [])
            |> fun h -> List.length h
          in
          Sequencer.request seqs.(core) (Access.load addr) ~on_complete:(fun v ~latency:_ ->
              let h = try Hashtbl.find history addr with Not_found -> [] in
              let new_commits = List.length h - visible_at_issue in
              let acceptable =
                (match Hashtbl.find_opt pending addr with
                | Some p -> Data.equal v p
                | None -> false)
                || List.exists (Data.equal v) (List.filteri (fun i _ -> i <= new_commits) h)
                || (h = [] && Data.equal v (Data.initial addr))
                || (List.length h = visible_at_issue && new_commits = 0 && h <> []
                   && Data.equal v (List.hd h))
              in
              if not acceptable then incr errors)
        end)
  done;
  run sys;
  check_int "no stale reads through the hierarchy" 0 !errors

let tests =
  [
    ( "accel.l2",
      [
        Alcotest.test_case "exclusive passthrough" `Quick test_exclusive_passthrough;
        Alcotest.test_case "internal transfer, no host traffic" `Quick
          test_internal_transfer_no_host_traffic;
        Alcotest.test_case "internal upgrade invalidates sibling" `Quick
          test_internal_upgrade_invalidates_sibling;
        Alcotest.test_case "home recall gathers owner" `Quick test_home_recall_gathers_owner_data;
        Alcotest.test_case "L2 eviction recalls L1s" `Quick test_l2_eviction_recalls_l1s;
        Alcotest.test_case "sharers gathered on eviction" `Quick
          test_sharers_gathered_on_eviction;
        Alcotest.test_case "internal Put/Inv race" `Quick test_put_inv_race_internal;
        Alcotest.test_case "random multicore coherence" `Quick test_random_multicore_coherence;
      ] );
  ]
