(* Conformance and coverage tests in the style of the paper's section 4.1:
   "we counted the state/event pairs that the random tester visited at each
   cache controller and compared it with the number that we believe are
   possible".  The accelerator L1's possible pairs are exactly the published
   Table 1, so its coverage can be checked against the specification. *)

module Engine = Xguard_sim.Engine
module Rng = Xguard_sim.Rng
module Group = Xguard_stats.Counter.Group
module Config = Xguard_harness.Config
module System = Xguard_harness.System
module Tester = Xguard_harness.Random_tester
module L1 = Xguard_accel.L1_simple

let check_bool = Alcotest.(check bool)

(* Coverage keys used by the implementation for each Table 1 entry. *)
let coverage_key state event =
  let s = L1.Spec.state_to_string state in
  let e =
    match event with
    | L1.Spec.Load -> "Load"
    | L1.Spec.Store -> "Store"
    | L1.Spec.Replacement -> "Replacement"
    | L1.Spec.Invalidate -> "Invalidate"
    | L1.Spec.Data_m_arrival -> "DataM"
    | L1.Spec.Data_e_arrival -> "DataE"
    | L1.Spec.Data_s_arrival -> "DataS"
    | L1.Spec.Wb_ack_arrival -> "WbAck"
  in
  s ^ "." ^ e

let possible_keys () =
  List.concat_map
    (fun s ->
      List.filter_map
        (fun e ->
          match L1.Spec.mesi s e with
          | L1.Spec.Impossible -> None
          | L1.Spec.Entry _ -> Some (coverage_key s e))
        L1.Spec.all_events)
    L1.Spec.all_states

(* Run the stress tester over several seeds and merge accel-L1 coverage. *)
let merged_coverage cfg ~seeds ~ops =
  let seen = Hashtbl.create 64 in
  List.iter
    (fun seed ->
      let cfg = Config.stress_sized { cfg with Config.seed } in
      let sys = System.build cfg in
      let ports = Array.append sys.System.cpu_ports sys.System.accel_ports in
      let o =
        Tester.run ~engine:sys.System.engine
          ~rng:(Rng.create ~seed:(seed * 7 + 1))
          ~ports
          ~addresses:(Array.init 6 Addr.block)
          ~ops_per_core:ops ()
      in
      Alcotest.(check int) "stress clean" 0 o.Tester.data_errors;
      Array.iter
        (fun l1 ->
          List.iter
            (fun (key, n) -> if n > 0 then Hashtbl.replace seen key ())
            (Group.to_list (L1.coverage l1)))
        sys.System.accel_l1s)
    seeds;
  seen

let test_accel_l1_coverage_vs_table1 () =
  (* Every transition the tester visits must be a possible Table 1 entry, and
     the sweep must reach nearly all of them. *)
  let cfg = Config.make Config.Hammer (Config.Xg_one_level Config.Transactional) in
  let seen = merged_coverage cfg ~seeds:[ 1; 2; 3; 4; 5; 6 ] ~ops:500 in
  let possible = possible_keys () in
  Hashtbl.iter
    (fun key () ->
      check_bool
        (Printf.sprintf "visited transition %s appears in Table 1" key)
        true (List.mem key possible))
    seen;
  let visited = List.filter (Hashtbl.mem seen) possible in
  let missing = List.filter (fun k -> not (Hashtbl.mem seen k)) possible in
  (* The paper inspected never-visited transitions manually; here the random
     tester must cover at least 19 of the 23 possible entries, and the
     load-bearing ones unconditionally. *)
  check_bool
    (Printf.sprintf "coverage %d/%d (missing: %s)" (List.length visited)
       (List.length possible) (String.concat ", " missing))
    true
    (List.length visited >= 19);
  List.iter
    (fun key -> check_bool (key ^ " covered") true (Hashtbl.mem seen key))
    [
      "M.Invalidate";
      "S.Invalidate";
      "B.Invalidate";
      "M.Replacement";
      "S.Store";
      "B.DataM";
      "B.DataS";
      "B.WbAck";
    ]

let test_host_controllers_exercised () =
  (* Both host protocols' controllers see a broad set of events under
     stress; exact possible-counts are protocol internals, so require a
     floor rather than equality (the paper also accepted <100% after manual
     inspection). *)
  List.iter
    (fun (host, floor) ->
      let cfg = Config.make host (Config.Xg_one_level Config.Full_state) in
      let keys = Hashtbl.create 64 in
      List.iter
        (fun seed ->
          let cfg = Config.stress_sized { cfg with Config.seed } in
          let sys = System.build cfg in
          let ports = Array.append sys.System.cpu_ports sys.System.accel_ports in
          ignore
            (Tester.run ~engine:sys.System.engine
               ~rng:(Rng.create ~seed:(seed * 3 + 2))
               ~ports
               ~addresses:(Array.init 6 Addr.block)
               ~ops_per_core:400 ());
          List.iter
            (fun (_, g) ->
              List.iter (fun (k, n) -> if n > 0 then Hashtbl.replace keys k ()) (Group.to_list g))
            (sys.System.coverage_groups ()))
        [ 1; 2; 3 ];
      check_bool
        (Printf.sprintf "%s: %d distinct controller transitions" (Config.host_label host)
           (Hashtbl.length keys))
        true
        (Hashtbl.length keys >= floor))
    [ (Config.Hammer, 35); (Config.Mesi, 35) ]

(* The experiment harness itself must produce well-formed reports. *)
let test_experiment_reports_build () =
  let module E = Xguard_harness.Experiments in
  List.iter
    (fun id ->
      match E.by_id id with
      | Some f ->
          let r = f ~quick:true () in
          check_bool (id ^ " has tables") true (List.length r.E.tables > 0);
          List.iter
            (fun t -> check_bool (id ^ " renders") true (String.length (Xguard_stats.Table.to_string t) > 0))
            r.E.tables
      | None -> Alcotest.failf "experiment %s missing" id)
    [ "t1"; "e8" ]

let tests =
  [
    ( "conformance",
      [
        Alcotest.test_case "accel L1 coverage vs Table 1" `Quick
          test_accel_l1_coverage_vs_table1;
        Alcotest.test_case "host controllers exercised" `Quick test_host_controllers_exercised;
        Alcotest.test_case "experiment reports build" `Quick test_experiment_reports_build;
      ] );
  ]
