(* Tests for the interconnect: delivery, ordering disciplines, accounting. *)

module Engine = Xguard_sim.Engine
module Rng = Xguard_sim.Rng
module Net = Xguard_network.Network.Make (struct
  type t = int
end)

let check_int = Alcotest.(check int)

let two_nodes () =
  let reg = Node.Registry.create () in
  (Node.Registry.fresh reg "a", Node.Registry.fresh reg "b")

let test_basic_delivery () =
  let e = Engine.create () in
  let rng = Rng.create ~seed:1 in
  let a, b = two_nodes () in
  let net = Net.create ~engine:e ~rng ~name:"n" ~ordering:(Xguard_network.Network.Ordered { latency = 7 }) () in
  let got = ref [] in
  Net.register net b (fun ~src m -> got := (Node.name src, m, Engine.now e) :: !got);
  Net.register net a (fun ~src:_ _ -> ());
  Net.send net ~src:a ~dst:b 42;
  ignore (Engine.run e);
  (match !got with
  | [ (srcname, 42, at) ] ->
      Alcotest.(check string) "src" "a" srcname;
      check_int "latency respected" 7 at
  | _ -> Alcotest.fail "expected one delivery")

let test_ordered_fifo_per_pair () =
  let e = Engine.create () in
  let rng = Rng.create ~seed:1 in
  let a, b = two_nodes () in
  let net = Net.create ~engine:e ~rng ~name:"n" ~ordering:(Xguard_network.Network.Ordered { latency = 3 }) () in
  let got = ref [] in
  Net.register net b (fun ~src:_ m -> got := m :: !got);
  for i = 1 to 100 do
    (* Stagger sends over time; FIFO must still hold. *)
    Engine.schedule e ~delay:i (fun () -> Net.send net ~src:a ~dst:b i)
  done;
  ignore (Engine.run e);
  Alcotest.(check (list int)) "FIFO order" (List.init 100 (fun i -> i + 1)) (List.rev !got)

let test_unordered_delivers_everything () =
  let e = Engine.create () in
  let rng = Rng.create ~seed:5 in
  let a, b = two_nodes () in
  let net =
    Net.create ~engine:e ~rng ~name:"n"
      ~ordering:(Xguard_network.Network.Unordered { min_latency = 1; max_latency = 50 })
      ()
  in
  let got = ref [] in
  Net.register net b (fun ~src:_ m -> got := m :: !got);
  for i = 1 to 200 do
    Net.send net ~src:a ~dst:b i
  done;
  ignore (Engine.run e);
  check_int "all delivered" 200 (List.length !got);
  let sorted = List.sort compare !got in
  Alcotest.(check (list int)) "no loss, no dup" (List.init 200 (fun i -> i + 1)) sorted;
  (* With a wide latency range, reordering must actually happen. *)
  Alcotest.(check bool) "reordering observed" true (List.rev !got <> sorted)

let test_unregistered_destination_rejected () =
  let e = Engine.create () in
  let rng = Rng.create ~seed:1 in
  let a, b = two_nodes () in
  let net = Net.create ~engine:e ~rng ~name:"n" ~ordering:(Xguard_network.Network.Ordered { latency = 1 }) () in
  Net.register net a (fun ~src:_ _ -> ());
  try
    Net.send net ~src:a ~dst:b 1;
    Alcotest.fail "expected rejection"
  with Invalid_argument _ -> ()

let test_double_registration_rejected () =
  let e = Engine.create () in
  let rng = Rng.create ~seed:1 in
  let a, _ = two_nodes () in
  let net = Net.create ~engine:e ~rng ~name:"n" ~ordering:(Xguard_network.Network.Ordered { latency = 1 }) () in
  Net.register net a (fun ~src:_ _ -> ());
  try
    Net.register net a (fun ~src:_ _ -> ());
    Alcotest.fail "expected rejection"
  with Invalid_argument _ -> ()

let test_bandwidth_accounting () =
  let e = Engine.create () in
  let rng = Rng.create ~seed:1 in
  let a, b = two_nodes () in
  let net = Net.create ~engine:e ~rng ~name:"n" ~ordering:(Xguard_network.Network.Ordered { latency = 1 }) () in
  Net.register net a (fun ~src:_ _ -> ());
  Net.register net b (fun ~src:_ _ -> ());
  Net.send net ~src:a ~dst:b ~size:72 1;
  Net.send net ~src:a ~dst:b 2;
  (* default control size 8 *)
  Net.send net ~src:b ~dst:a ~size:72 3;
  ignore (Engine.run e);
  check_int "messages" 3 (Net.messages_sent net);
  check_int "bytes" 152 (Net.bytes_sent net);
  check_int "bytes from a" 80 (Net.bytes_from net a);
  check_int "bytes from b" 72 (Net.bytes_from net b)

let test_monitor_sees_all () =
  let e = Engine.create () in
  let rng = Rng.create ~seed:1 in
  let a, b = two_nodes () in
  let net = Net.create ~engine:e ~rng ~name:"n" ~ordering:(Xguard_network.Network.Ordered { latency = 1 }) () in
  Net.register net b (fun ~src:_ _ -> ());
  let seen = ref 0 in
  Net.set_monitor net (fun ~src:_ ~dst:_ _ -> incr seen);
  for _ = 1 to 9 do
    Net.send net ~src:a ~dst:b 0
  done;
  ignore (Engine.run e);
  check_int "monitored" 9 !seen

(* Property: ordered networks never reorder, for random send schedules. *)
let prop_ordered_never_reorders =
  QCheck2.Test.make ~name:"ordered link is FIFO under random schedules" ~count:50
    QCheck2.Gen.(pair (int_range 0 1000) (list_size (int_range 1 60) (int_range 0 30)))
    (fun (seed, delays) ->
      let e = Engine.create () in
      let rng = Rng.create ~seed in
      let a, b = two_nodes () in
      let net =
        Net.create ~engine:e ~rng ~name:"n" ~ordering:(Xguard_network.Network.Ordered { latency = 4 }) ()
      in
      let got = ref [] in
      Net.register net b (fun ~src:_ m -> got := m :: !got);
      List.iteri
        (fun i d -> Engine.schedule e ~delay:d (fun () -> Net.send net ~src:a ~dst:b i))
        delays;
      ignore (Engine.run e);
      (* Messages sent at the same cycle keep their scheduling order; across
         cycles, arrival order must respect send order per (src,dst).  We only
         assert the global property: the arrival sequence restricted to
         same-send-time groups is sorted by send order when send times are
         distinct.  Simplest sound check: sends that happen earlier in
         simulation time arrive no later than later sends. *)
      let arrival = Array.make (List.length delays) 0 in
      List.iteri (fun pos m -> arrival.(m) <- pos) (List.rev !got);
      let sends = Array.of_list delays in
      let ok = ref true in
      Array.iteri
        (fun i di ->
          Array.iteri
            (fun j dj -> if di < dj && arrival.(i) > arrival.(j) then ok := false)
            sends)
        sends;
      !ok)

let tests =
  [
    ( "network",
      [
        Alcotest.test_case "basic delivery" `Quick test_basic_delivery;
        Alcotest.test_case "ordered FIFO" `Quick test_ordered_fifo_per_pair;
        Alcotest.test_case "unordered delivers all" `Quick test_unordered_delivers_everything;
        Alcotest.test_case "unregistered dst" `Quick test_unregistered_destination_rejected;
        Alcotest.test_case "double registration" `Quick test_double_registration_rejected;
        Alcotest.test_case "bandwidth accounting" `Quick test_bandwidth_accounting;
        Alcotest.test_case "monitor" `Quick test_monitor_sees_all;
        QCheck_alcotest.to_alcotest prop_ordered_never_reorders;
      ] );
  ]
