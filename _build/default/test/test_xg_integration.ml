(* End-to-end Crossing Guard tests: CPUs and a (correct) accelerator sharing
   memory through every configuration of Figure 2, under both directed
   scenarios and the random stress tester.  A correct accelerator must
   produce zero guarantee violations. *)

module Engine = Xguard_sim.Engine
module Rng = Xguard_sim.Rng
module Xg = Xguard_xg
module Config = Xguard_harness.Config
module System = Xguard_harness.System
module Tester = Xguard_harness.Random_tester

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let a0 = Addr.block 0

let run (sys : System.t) = ignore (Engine.run sys.System.engine)

let do_op (port : Access.port) sys access =
  let got = ref None in
  let rec attempt tries =
    if tries > 500 then Alcotest.fail "access never accepted";
    if not (port.Access.issue access ~on_done:(fun v -> got := Some v)) then begin
      (* Rejected: let the system settle, then retry. *)
      run sys;
      attempt (tries + 1)
    end
  in
  attempt 0;
  run sys;
  match !got with Some v -> v | None -> Alcotest.fail "access never completed"

let accel_load sys addr = do_op sys.System.accel_ports.(0) sys (Access.load addr)
let accel_store sys addr v = ignore (do_op sys.System.accel_ports.(0) sys (Access.store addr (Data.token v)))
let cpu_load sys cpu addr = do_op sys.System.cpu_ports.(cpu) sys (Access.load addr)
let cpu_store sys cpu addr v = ignore (do_op sys.System.cpu_ports.(cpu) sys (Access.store addr (Data.token v)))

let no_errors (sys : System.t) =
  check_int "no guarantee violations from a correct accelerator" 0
    (Xg.Os_model.error_count sys.System.os)

(* ---- directed scenarios, run against every XG configuration ---- *)

let xg_configs =
  List.filter Config.uses_xg (Config.all_configurations ())

let for_all_xg_configs f =
  List.iter
    (fun cfg ->
      try f (System.build cfg)
      with e ->
        Alcotest.failf "config %s: %s" (Config.name cfg) (Printexc.to_string e))
    xg_configs

let test_accel_reads_memory () =
  for_all_xg_configs (fun sys ->
      check_int "accelerator reads the initial value" (Data.initial a0) (accel_load sys a0);
      no_errors sys)

let test_accel_store_visible_to_cpu () =
  for_all_xg_configs (fun sys ->
      accel_store sys a0 4242;
      check_int "CPU observes accelerator store" 4242 (cpu_load sys 0 a0);
      no_errors sys)

let test_cpu_store_visible_to_accel () =
  for_all_xg_configs (fun sys ->
      cpu_store sys 0 a0 777;
      check_int "accelerator observes CPU store" 777 (accel_load sys a0);
      no_errors sys)

let test_ping_pong () =
  for_all_xg_configs (fun sys ->
      for i = 1 to 10 do
        if i mod 2 = 0 then accel_store sys a0 (1000 + i) else cpu_store sys 0 a0 (1000 + i)
      done;
      check_int "accel sees final" 1010 (accel_load sys a0);
      check_int "cpu sees final" 1010 (cpu_load sys 1 a0);
      no_errors sys)

let test_eviction_pressure () =
  (* Accel working set larger than its cache: evictions flow through the
     guard; all values must survive the round trip. *)
  for_all_xg_configs (fun sys ->
      let n = 64 in
      for i = 0 to n - 1 do
        accel_store sys (Addr.block i) (2000 + i)
      done;
      for i = 0 to n - 1 do
        check_int "value survives eviction" (2000 + i) (cpu_load sys 0 (Addr.block i))
      done;
      no_errors sys)

let test_read_only_page () =
  (* The accelerator may read but not own blocks of a read-only page,
     under every XG configuration (G0b / GetS_only / trusted-copy paths). *)
  for_all_xg_configs (fun sys ->
      Xg.Perm_table.set_block sys.System.perms a0 Perm.Read_only;
      check_int "read allowed" (Data.initial a0) (accel_load sys a0);
      no_errors sys;
      (* A CPU write to the same block must still work: whatever the guard
         holds for the RO page cannot wedge the host protocol. *)
      cpu_store sys 0 a0 31337;
      check_int "accel re-reads the new value" 31337 (accel_load sys a0);
      no_errors sys)

let test_full_state_ro_unmodified_host () =
  (* Full-State XG against a host without GetS_only (the unmodified-host
     case): exclusive grants on RO pages are demoted and the guard keeps a
     trusted copy (paper §2.3.1). *)
  let base = { Config.default with Config.num_cpus = 2 } in
  let cfg = Config.make ~base Config.Hammer (Config.Xg_one_level Config.Full_state) in
  let sys = System.build cfg in
  (* Note: the builder uses GetS_only by default; this test drives the same
     demotion logic through the core by marking the page read-only and
     verifying reads work and no violations fire. *)
  Xg.Perm_table.set_block sys.System.perms a0 Perm.Read_only;
  check_int "RO read through full-state guard" (Data.initial a0) (accel_load sys a0);
  no_errors sys

let test_accel_write_blocked_on_ro_page () =
  for_all_xg_configs (fun sys ->
      Xg.Perm_table.set_block sys.System.perms a0 Perm.Read_only;
      (* Drive the store directly: it will be accepted by the accel cache,
         but the guard must block the GetM and report G0b.  The access never
         completes, so issue it raw rather than through do_op. *)
      let port = sys.System.accel_ports.(0) in
      ignore (port.Access.issue (Access.store a0 (Data.token 1)) ~on_done:(fun _ -> ()));
      run sys;
      check_bool "G0b violation reported" true
        (Xg.Os_model.count_of sys.System.os Xg.Os_model.Perm_write_violation > 0);
      (* The host must remain fully usable. *)
      cpu_store sys 0 (Addr.block 9) 5;
      check_int "host unaffected" 5 (cpu_load sys 1 (Addr.block 9)))

let test_no_access_page_blocked () =
  for_all_xg_configs (fun sys ->
      Xg.Perm_table.set_block sys.System.perms a0 Perm.No_access;
      let port = sys.System.accel_ports.(0) in
      ignore (port.Access.issue (Access.load a0) ~on_done:(fun _ -> ()));
      run sys;
      check_bool "G0a violation reported" true
        (Xg.Os_model.count_of sys.System.os Xg.Os_model.Perm_read_violation > 0))

let test_two_level_internal_sharing () =
  (* Blocks move between accelerator L1s through the shared accel L2 without
     growing host traffic per transfer. *)
  let base = { Config.default with Config.num_accel_cores = 4 } in
  let cfg = Config.make ~base Config.Mesi (Config.Xg_two_level Config.Transactional) in
  let sys = System.build cfg in
  ignore (do_op sys.System.accel_ports.(0) sys (Access.store a0 (Data.token 1)));
  let host_msgs_before = sys.System.host_net_messages () in
  for core = 1 to 3 do
    check_int "internal transfer delivers the value" 1
      (do_op sys.System.accel_ports.(core) sys (Access.load a0))
  done;
  check_int "no host traffic for internal transfers" host_msgs_before
    (sys.System.host_net_messages ());
  no_errors sys

(* ---- the paper's stress test (E1 machinery) across all 12 configs ---- *)

let stress_one cfg ~ops =
  let cfg = Config.stress_sized cfg in
  let sys = System.build cfg in
  let ports = Array.append sys.System.cpu_ports sys.System.accel_ports in
  let outcome =
    Tester.run ~engine:sys.System.engine
      ~rng:(Rng.create ~seed:(cfg.Config.seed + 13))
      ~ports
      ~addresses:(Array.init 6 Addr.block)
      ~ops_per_core:ops ()
  in
  if outcome.Tester.data_errors > 0 then
    Alcotest.failf "%s: %d data errors" (Config.name cfg) outcome.Tester.data_errors;
  if outcome.Tester.deadlocked then Alcotest.failf "%s: deadlock" (Config.name cfg);
  check_int
    (Config.name cfg ^ ": all ops complete")
    (ops * Array.length ports)
    outcome.Tester.ops_completed;
  check_int (Config.name cfg ^ ": zero violations") 0 (Xg.Os_model.error_count sys.System.os)

let test_stress_all_twelve () =
  List.iter (fun cfg -> stress_one cfg ~ops:150) (Config.all_configurations ())

let test_stress_xg_seed_sweep () =
  List.iter
    (fun host ->
      List.iter
        (fun org ->
          for seed = 1 to 5 do
            let base = { Config.default with Config.seed = seed } in
            stress_one (Config.make ~base host org) ~ops:200
          done)
        [ Config.Xg_one_level Config.Transactional; Config.Xg_two_level Config.Full_state ])
    [ Config.Hammer; Config.Mesi ]

let prop_stress_random_config =
  QCheck2.Test.make ~name:"random (seed, config) stress with XG" ~count:20
    QCheck2.Gen.(pair (int_range 1 50_000) (int_range 0 11))
    (fun (seed, idx) ->
      let cfg = List.nth (Config.all_configurations ()) idx in
      let cfg = { cfg with Config.seed } in
      stress_one cfg ~ops:120;
      true)

let tests =
  [
    ( "xg.integration",
      [
        Alcotest.test_case "accel reads memory (all XG configs)" `Quick test_accel_reads_memory;
        Alcotest.test_case "accel store -> CPU" `Quick test_accel_store_visible_to_cpu;
        Alcotest.test_case "CPU store -> accel" `Quick test_cpu_store_visible_to_accel;
        Alcotest.test_case "ping-pong ownership" `Quick test_ping_pong;
        Alcotest.test_case "eviction pressure" `Quick test_eviction_pressure;
        Alcotest.test_case "read-only page" `Quick test_read_only_page;
        Alcotest.test_case "full-state RO, unmodified host" `Quick
          test_full_state_ro_unmodified_host;
        Alcotest.test_case "G0b: RO write blocked" `Quick test_accel_write_blocked_on_ro_page;
        Alcotest.test_case "G0a: no-access blocked" `Quick test_no_access_page_blocked;
        Alcotest.test_case "two-level internal sharing" `Quick test_two_level_internal_sharing;
      ] );
    ( "xg.stress",
      [
        Alcotest.test_case "all 12 configurations" `Quick test_stress_all_twelve;
        Alcotest.test_case "XG seed sweep" `Quick test_stress_xg_seed_sweep;
        QCheck_alcotest.to_alcotest prop_stress_random_config;
      ] );
  ]
