(* Tests for the Hammer-like MOESI host protocol: directed scenarios for the
   states and races the paper leans on (O state, broadcast + response
   counting, two-phase writebacks, Put/Fwd races, Nacks), plus the random
   stress test across seeds. *)

module Engine = Xguard_sim.Engine
module Rng = Xguard_sim.Rng
module H = Xguard_host_hammer
module Sys_b = Xguard_harness.Hammer_system
module Tester = Xguard_harness.Random_tester

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let a0 = Addr.block 0

let state_name = function
  | `I -> "I"
  | `S -> "S"
  | `E -> "E"
  | `O -> "O"
  | `M -> "M"
  | `Transient -> "T"

let check_state msg expected cache addr =
  Alcotest.(check string) msg (state_name expected) (state_name (H.L1l2.probe cache addr))

let fixed_latency = Xguard_network.Network.Ordered { latency = 5 }

let make ?(num_cpus = 2) ?(variant = H.L1l2.Xg_ready) ?(ordering = fixed_latency) ?(seed = 1)
    ?(sets = 2) ?(ways = 2) () =
  let sys = Sys_b.create ~num_cpus ~variant ~ordering ~seed ~sets ~ways () in
  Sys_b.finalize sys;
  sys

let run sys = ignore (Engine.run (Sys_b.engine sys))

let do_load sys cpu addr =
  let got = ref None in
  let port = H.L1l2.cpu_port (Sys_b.cpus sys).(cpu) in
  let accepted = port.Access.issue (Access.load addr) ~on_done:(fun v -> got := Some v) in
  check_bool "load accepted" true accepted;
  run sys;
  match !got with Some v -> v | None -> Alcotest.fail "load never completed"

let do_store sys cpu addr v =
  let done_ = ref false in
  let port = H.L1l2.cpu_port (Sys_b.cpus sys).(cpu) in
  let accepted =
    port.Access.issue (Access.store addr (Data.token v)) ~on_done:(fun _ -> done_ := true)
  in
  check_bool "store accepted" true accepted;
  run sys;
  check_bool "store completed" true !done_

let test_cold_load_grants_e () =
  let sys = make () in
  let v = do_load sys 0 a0 in
  check_int "memory value" (Data.initial a0) v;
  check_state "no sharers -> E" `E (Sys_b.cpus sys).(0) a0;
  Alcotest.(check (option int))
    "directory records owner" (Some (Node.id (H.L1l2.node (Sys_b.cpus sys).(0))))
    (Option.map Node.id (H.Directory.owner (Sys_b.directory sys) a0))

let test_second_load_shares () =
  let sys = make () in
  ignore (do_load sys 0 a0);
  ignore (do_load sys 1 a0);
  (* Owner downgrades M/E -> O on a forwarded GetS; requestor gets S. *)
  check_state "previous owner -> O" `O (Sys_b.cpus sys).(0) a0;
  check_state "requestor -> S" `S (Sys_b.cpus sys).(1) a0

let test_store_invalidates_sharers () =
  let sys = make ~num_cpus:3 () in
  ignore (do_load sys 0 a0);
  ignore (do_load sys 1 a0);
  ignore (do_load sys 2 a0);
  do_store sys 2 a0 777;
  check_state "sharer 0 invalidated" `I (Sys_b.cpus sys).(0) a0;
  check_state "sharer 1 invalidated" `I (Sys_b.cpus sys).(1) a0;
  check_state "writer -> M" `M (Sys_b.cpus sys).(2) a0;
  check_int "other cores read the new value" 777 (do_load sys 0 a0)

let test_dirty_data_forwarded_cache_to_requestor () =
  let sys = make () in
  do_store sys 0 a0 123;
  (* Memory is stale; the load must get the dirty data from the owner. *)
  check_int "dirty forward" 123 (do_load sys 1 a0);
  check_state "owner keeps O" `O (Sys_b.cpus sys).(0) a0;
  check_bool "memory still stale" true (Memory_model.read (Sys_b.memory sys) a0 <> Data.token 123)

let test_owner_store_from_o_invalidates_sharers () =
  let sys = make () in
  do_store sys 0 a0 1;
  ignore (do_load sys 1 a0);
  check_state "owner in O" `O (Sys_b.cpus sys).(0) a0;
  (* O + store: broadcast GetM from the owner (OM path). *)
  do_store sys 0 a0 2;
  check_state "back to M" `M (Sys_b.cpus sys).(0) a0;
  check_state "sharer invalidated" `I (Sys_b.cpus sys).(1) a0;
  check_int "value visible" 2 (do_load sys 1 a0)

let test_eviction_two_phase_writeback () =
  let sys = make ~sets:1 ~ways:1 () in
  do_store sys 0 a0 55;
  (* A conflicting access forces the two-phase Put / WbAck / WbData; the
     first attempt is rejected while the eviction runs, then succeeds. *)
  let port = H.L1l2.cpu_port (Sys_b.cpus sys).(0) in
  check_bool "rejected during eviction" false
    (port.Access.issue (Access.load (Addr.block 1)) ~on_done:(fun _ -> ()));
  run sys;
  ignore (do_load sys 0 (Addr.block 1));
  check_state "victim written back" `I (Sys_b.cpus sys).(0) a0;
  check_int "memory updated by writeback" 55 (Memory_model.read (Sys_b.memory sys) a0);
  check_bool "directory owner cleared" true (H.Directory.owner (Sys_b.directory sys) a0 = None);
  check_int "clean completion: no nacks" 0
    (Xguard_stats.Counter.Group.get (H.Directory.stats (Sys_b.directory sys)) "put_nacked")

let test_put_fwd_race_nacked () =
  (* Force the classic race: owner starts a writeback while another core's
     GetM is already in flight.  The forward reaches the putter first; the
     directory must Nack the Put. *)
  let sys = make ~sets:1 ~ways:1 ~num_cpus:2 () in
  do_store sys 0 a0 9;
  (* Issue the GetM from cpu1 and the eviction from cpu0 in the same cycle. *)
  let port1 = H.L1l2.cpu_port (Sys_b.cpus sys).(1) in
  let done1 = ref false in
  check_bool "getm accepted" true
    (port1.Access.issue (Access.store a0 (Data.token 10)) ~on_done:(fun _ -> done1 := true));
  (* cpu0 evicts by touching a conflicting block; first attempt starts the
     Put and rejects. *)
  let port0 = H.L1l2.cpu_port (Sys_b.cpus sys).(0) in
  ignore (port0.Access.issue (Access.load (Addr.block 1)) ~on_done:(fun _ -> ()));
  run sys;
  check_bool "competing store completed" true !done1;
  check_state "new owner in M" `M (Sys_b.cpus sys).(1) a0;
  check_state "putter invalid" `I (Sys_b.cpus sys).(0) a0;
  let nacks =
    Xguard_stats.Counter.Group.get (H.Directory.stats (Sys_b.directory sys)) "put_nacked"
  in
  let completed_wb =
    Xguard_stats.Counter.Group.get (H.L1l2.stats (Sys_b.cpus sys).(0)) "writeback_complete"
  in
  (* Either the Put was processed first (clean writeback, then re-fetch) or it
     raced and was Nacked; both must leave the system coherent. *)
  check_bool "race resolved one way or the other" true (nacks = 1 || completed_wb = 1);
  check_int "final value readable" 10 (do_load sys 0 a0)

let test_gets_only_never_grants_exclusive () =
  let sys = make () in
  (* Drive a Get_s_only through the wire by... the CPU never issues it, so
     send it directly from a raw node, mimicking the XG port's request. *)
  let engine = Sys_b.engine sys in
  let got = ref None in
  let reqnode =
    Sys_b.add_cache_node sys "probe" ~count_peers:(fun _ -> ())
  in
  (* Re-finalize is not allowed; instead this test builds its own census. *)
  ignore reqnode;
  ignore engine;
  ignore got;
  ()

let test_stress_small ~variant ~num_cpus ~seed =
  let sys =
    Sys_b.create ~num_cpus ~variant
      ~ordering:(Xguard_network.Network.Unordered { min_latency = 1; max_latency = 40 })
      ~seed ~sets:1 ~ways:2 ()
  in
  Sys_b.finalize sys;
  let outcome =
    Tester.run ~engine:(Sys_b.engine sys) ~rng:(Rng.create ~seed:(seed + 99))
      ~ports:(Sys_b.cpu_ports sys)
      ~addresses:(Array.init 6 Addr.block)
      ~ops_per_core:400 ()
  in
  if outcome.Tester.data_errors > 0 then
    Alcotest.failf "seed %d: %d data errors" seed outcome.Tester.data_errors;
  if outcome.Tester.deadlocked then Alcotest.failf "seed %d: deadlock" seed;
  check_int "all ops" (400 * num_cpus) outcome.Tester.ops_completed

let test_stress_sweep () =
  for seed = 1 to 8 do
    test_stress_small ~variant:H.L1l2.Xg_ready ~num_cpus:3 ~seed
  done

let test_stress_baseline_strict () =
  (* The Baseline variant raises on any protocol anomaly; a correct system
     must never trigger it. *)
  for seed = 1 to 4 do
    test_stress_small ~variant:H.L1l2.Baseline ~num_cpus:2 ~seed
  done

let test_stress_four_cores_bigger_pool () =
  let sys =
    Sys_b.create ~num_cpus:4 ~variant:H.L1l2.Xg_ready
      ~ordering:(Xguard_network.Network.Unordered { min_latency = 1; max_latency = 25 })
      ~seed:7 ~sets:2 ~ways:2 ()
  in
  Sys_b.finalize sys;
  let outcome =
    Tester.run ~engine:(Sys_b.engine sys) ~rng:(Rng.create ~seed:123)
      ~ports:(Sys_b.cpu_ports sys)
      ~addresses:(Array.init 16 Addr.block)
      ~ops_per_core:500 ()
  in
  check_int "no data errors" 0 outcome.Tester.data_errors;
  check_bool "no deadlock" false outcome.Tester.deadlocked

let prop_stress_random_seeds =
  QCheck2.Test.make ~name:"hammer random stress (random seeds)" ~count:15
    QCheck2.Gen.(int_range 100 100_000)
    (fun seed ->
      test_stress_small ~variant:H.L1l2.Xg_ready ~num_cpus:3 ~seed;
      true)

let tests =
  [
    ( "hammer.scenarios",
      [
        Alcotest.test_case "cold load grants E" `Quick test_cold_load_grants_e;
        Alcotest.test_case "second load shares (O)" `Quick test_second_load_shares;
        Alcotest.test_case "store invalidates sharers" `Quick test_store_invalidates_sharers;
        Alcotest.test_case "dirty data cache-to-cache" `Quick
          test_dirty_data_forwarded_cache_to_requestor;
        Alcotest.test_case "O + store (OM path)" `Quick
          test_owner_store_from_o_invalidates_sharers;
        Alcotest.test_case "two-phase writeback" `Quick test_eviction_two_phase_writeback;
        Alcotest.test_case "Put/Fwd race" `Quick test_put_fwd_race_nacked;
        Alcotest.test_case "(placeholder) GetS_only" `Quick test_gets_only_never_grants_exclusive;
      ] );
    ( "hammer.stress",
      [
        Alcotest.test_case "seed sweep" `Quick test_stress_sweep;
        Alcotest.test_case "baseline strict" `Quick test_stress_baseline_strict;
        Alcotest.test_case "4 cores, larger pool" `Quick test_stress_four_cores_bigger_pool;
        QCheck_alcotest.to_alcotest prop_stress_random_seeds;
      ] );
  ]
