(* Directed unit tests for the Crossing Guard engine itself, driven over a
   scripted link with a fake host port — no host protocol underneath, so each
   guarantee path and mode difference is observable in isolation. *)

module Engine = Xguard_sim.Engine
module Rng = Xguard_sim.Rng
module Group = Xguard_stats.Counter.Group
module Xg = Xguard_xg
module Xg_iface = Xguard_xg.Xg_iface
module Core = Xguard_xg.Xg_core

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

type host_op =
  | H_get of Addr.t * [ `S | `S_only | `M ]
  | H_put of Addr.t * [ `S | `E of Data.t | `M of Data.t ]

type rig = {
  engine : Engine.t;
  core : Core.t;
  os : Xg.Os_model.t;
  perms : Xg.Perm_table.t;
  host_ops : host_op list ref;  (* newest first *)
  to_accel : Xg_iface.msg list ref;  (* newest first *)
  send : Xg_iface.msg -> unit;  (* as the accelerator *)
}

let make ?(mode = Core.Full_state) ?(timeout = 200) ?(puts_needed = false)
    ?(has_get_s_only = true) () =
  let engine = Engine.create () in
  let rng = Rng.create ~seed:1 in
  let reg = Node.Registry.create () in
  let xg_node = Node.Registry.fresh reg "xg" in
  let accel_node = Node.Registry.fresh reg "accel" in
  let link =
    Xg_iface.Link.create ~engine ~rng ~name:"l"
      ~ordering:(Xguard_network.Network.Ordered { latency = 1 })
      ()
  in
  let host_ops = ref [] in
  let host =
    {
      Core.get = (fun addr kind -> host_ops := H_get (addr, kind) :: !host_ops);
      Core.put = (fun addr kind -> host_ops := H_put (addr, kind) :: !host_ops);
      Core.puts_needed;
      Core.has_get_s_only;
    }
  in
  let perms = Xg.Perm_table.create () in
  let os = Xg.Os_model.create () in
  let core =
    Core.create ~engine ~name:"core" ~mode ~link ~self:xg_node ~accel:accel_node ~host ~perms
      ~os ~timeout ~processing_latency:1 ()
  in
  let to_accel = ref [] in
  Xg_iface.Link.register link accel_node (fun ~src:_ msg -> to_accel := msg :: !to_accel);
  let send msg =
    Xg_iface.Link.send link ~src:accel_node ~dst:xg_node ~size:(Xg_iface.msg_size msg) msg
  in
  { engine; core; os; perms; host_ops; to_accel; send }

let run r = ignore (Engine.run r.engine)

(* Advance a bounded number of cycles — used when a test must interleave a
   scripted response before the guard's G2c timeout would fire. *)
let step r n = ignore (Engine.run ~until:(Engine.now r.engine + n) r.engine)

let a = Addr.block 3

let get r req = r.send (Xg_iface.To_xg_req { addr = a; req })
let respond r resp = r.send (Xg_iface.To_xg_resp { addr = a; resp })

let last_host r = match !(r.host_ops) with op :: _ -> Some op | [] -> None

let last_grant r =
  List.find_map
    (function Xg_iface.To_accel_resp { resp; _ } -> Some resp | _ -> None)
    !(r.to_accel)

(* --- request translation and state tracking --- *)

let test_get_s_forwarded_and_tracked () =
  let r = make () in
  get r Xg_iface.Get_s;
  run r;
  check_bool "host saw GetS" true (last_host r = Some (H_get (a, `S)));
  Core.granted r.core a (`E (Data.token 5));
  run r;
  check_bool "DataE delivered" true (last_grant r = Some (Xg_iface.Data_e (Data.token 5)));
  check_bool "tracked E" true (Core.accel_state r.core a = `E);
  check_int "no violations" 0 (Xg.Os_model.error_count r.os)

let test_ro_page_uses_get_s_only () =
  let r = make () in
  Xg.Perm_table.set_block r.perms a Perm.Read_only;
  get r Xg_iface.Get_s;
  run r;
  check_bool "host saw the non-upgradable read" true (last_host r = Some (H_get (a, `S_only)))

let test_ro_demotion_without_get_s_only () =
  (* Unmodified host (§2.3.1): an exclusive grant on a read-only page is
     demoted to DataS and the guard keeps the trusted copy. *)
  let r = make ~has_get_s_only:false () in
  Xg.Perm_table.set_block r.perms a Perm.Read_only;
  get r Xg_iface.Get_s;
  run r;
  check_bool "plain GetS used" true (last_host r = Some (H_get (a, `S)));
  Core.granted r.core a (`E (Data.token 9));
  run r;
  check_bool "demoted to DataS" true (last_grant r = Some (Xg_iface.Data_s (Data.token 9)));
  check_bool "accel tracked as S" true (Core.accel_state r.core a = `S);
  (* A later host read is served from the guard's own copy, no round-trip. *)
  let got = ref None in
  Core.host_request r.core a ~need:Core.Fwd_s ~reply:(fun x -> got := Some x);
  run r;
  check_bool "served from trusted copy" true (!got = Some (Core.Reply_clean (Data.token 9)))

let test_put_acked_immediately_then_settled () =
  let r = make ~puts_needed:true () in
  get r Xg_iface.Get_m;
  run r;
  Core.granted r.core a (`M (Data.token 1));
  run r;
  get r (Xg_iface.Put_m (Data.token 2));
  run r;
  check_bool "accel acked before host settles" true (last_grant r = Some Xg_iface.Wb_ack);
  check_bool "host saw PutM" true (last_host r = Some (H_put (a, `M (Data.token 2))));
  check_bool "track cleared" true (Core.accel_state r.core a = `I);
  Core.put_complete r.core a;
  check_int "clean run" 0 (Xg.Os_model.error_count r.os)

let test_put_s_suppression_register () =
  let r0 = make ~puts_needed:false () in
  (* Reach S: grant S on a GetS. *)
  get r0 Xg_iface.Get_s;
  run r0;
  Core.granted r0.core a (`S (Data.token 1));
  run r0;
  let before = List.length !(r0.host_ops) in
  get r0 Xg_iface.Put_s;
  run r0;
  (* Register off (default): the unnecessary PutS is still sent to the host. *)
  check_int "unnecessary PutS forwarded" (before + 1) (List.length !(r0.host_ops))

let test_get_stalls_behind_put () =
  let r = make ~puts_needed:true () in
  get r Xg_iface.Get_m;
  run r;
  Core.granted r.core a (`M (Data.token 1));
  run r;
  get r (Xg_iface.Put_m (Data.token 2));
  run r;
  let ops_before = List.length !(r.host_ops) in
  get r Xg_iface.Get_s;
  run r;
  check_int "get held until the writeback settles" ops_before (List.length !(r.host_ops));
  Core.put_complete r.core a;
  run r;
  check_bool "then forwarded" true (last_host r = Some (H_get (a, `S)));
  check_int "no false violations" 0 (Xg.Os_model.error_count r.os)

(* --- host-initiated requests --- *)

let owner_setup ?mode () =
  let r = make ?mode () in
  get r Xg_iface.Get_m;
  run r;
  Core.granted r.core a (`M (Data.token 7));
  run r;
  r

let test_owner_invalidation_roundtrip () =
  let r = owner_setup () in
  let got = ref None in
  Core.host_request r.core a ~need:Core.Fwd_m ~reply:(fun x -> got := Some x);
  step r 10;
  check_bool "Invalidate sent to accel" true
    (List.exists
       (function Xg_iface.To_accel_req _ -> true | _ -> false)
       !(r.to_accel));
  respond r (Xg_iface.Dirty_wb (Data.token 8));
  run r;
  check_bool "dirty data forwarded" true (!got = Some (Core.Reply_dirty (Data.token 8)));
  check_bool "track cleared" true (Core.accel_state r.core a = `I)

let test_fast_path_for_untracked_block () =
  let r = make () in
  let got = ref None in
  Core.host_request r.core a ~need:Core.Fwd_m ~reply:(fun x -> got := Some x);
  check_bool "answered immediately, no accel traffic" true
    (!got = Some (Core.Reply_ack { shared = false }) && !(r.to_accel) = [])

let test_shared_fast_path_on_read_forward () =
  let r = make () in
  get r Xg_iface.Get_s;
  run r;
  Core.granted r.core a (`S (Data.token 3));
  run r;
  let got = ref None in
  Core.host_request r.core a ~need:Core.Fwd_s ~reply:(fun x -> got := Some x);
  check_bool "S + FwdS answered locally, accel keeps its copy" true
    (!got = Some (Core.Reply_ack { shared = true }));
  check_bool "still tracked S" true (Core.accel_state r.core a = `S)

let test_g2a_correction_invack_from_owner () =
  let r = owner_setup () in
  let got = ref None in
  Core.host_request r.core a ~need:Core.Fwd_m ~reply:(fun x -> got := Some x);
  step r 10;
  respond r Xg_iface.Inv_ack;
  run r;
  check_bool "corrected to a zeroed dirty writeback" true
    (!got = Some (Core.Reply_dirty Data.zero));
  check_int "G2a reported" 1 (Xg.Os_model.count_of r.os Xg.Os_model.Bad_response_type)

let test_g2c_timeout_then_late_response_absorbed () =
  let r = owner_setup () in
  let got = ref None in
  Core.host_request r.core a ~need:Core.Fwd_m ~reply:(fun x -> got := Some x);
  (* Never respond; the timeout answers for the accelerator. *)
  run r;
  check_bool "timeout answered with zero block" true (!got = Some (Core.Reply_dirty Data.zero));
  check_int "G2c reported" 1 (Xg.Os_model.count_of r.os Xg.Os_model.Response_timeout);
  (* A very late response must be swallowed, not treated as unsolicited. *)
  respond r (Xg_iface.Dirty_wb (Data.token 9));
  run r;
  check_int "late response absorbed silently" 0
    (Xg.Os_model.count_of r.os Xg.Os_model.Unsolicited_response)

let test_put_invalidate_race_uses_put_data () =
  let r = owner_setup () in
  let got = ref None in
  Core.host_request r.core a ~need:Core.Fwd_m ~reply:(fun x -> got := Some x);
  (* The Put crosses the Invalidate; then the Table-1 InvAck follows. *)
  get r (Xg_iface.Put_m (Data.token 99));
  respond r Xg_iface.Inv_ack;
  run r;
  check_bool "host got the writeback's data" true (!got = Some (Core.Reply_dirty (Data.token 99)));
  check_bool "accel got its WbAck" true (last_grant r = Some Xg_iface.Wb_ack);
  check_int "a clean race, not a violation" 0 (Xg.Os_model.error_count r.os);
  check_int "race counted" 1 (Group.get (Core.stats r.core) "put_invalidate_race")

(* --- transactional mode differences --- *)

let test_transactional_no_access_filtering () =
  let r = make ~mode:Core.Transactional () in
  Xg.Perm_table.set_block r.perms a Perm.No_access;
  let got = ref None in
  Core.host_request r.core a ~need:Core.Fwd_m ~reply:(fun x -> got := Some x);
  check_bool "answered locally (side-channel filter)" true
    (!got = Some (Core.Reply_ack { shared = false }) && !(r.to_accel) = []);
  check_int "filter counted" 1 (Group.get (Core.stats r.core) "side_channel_filtered")

let test_transactional_forwards_bad_put () =
  (* G1a is not checkable without stable state: the bogus Put reaches the
     host, which must tolerate it (the paper's §2.3.2 contract). *)
  let r = make ~mode:Core.Transactional ~puts_needed:true () in
  get r (Xg_iface.Put_m (Data.token 1));
  run r;
  check_bool "forwarded" true (last_host r = Some (H_put (a, `M (Data.token 1))));
  check_int "no detection either" 0 (Xg.Os_model.error_count r.os)

let test_full_state_blocks_bad_put () =
  let r = make () in
  get r (Xg_iface.Put_m (Data.token 1));
  run r;
  check_bool "not forwarded" true (last_host r = None);
  check_int "G1a reported" 1 (Xg.Os_model.count_of r.os Xg.Os_model.Bad_request_stable)

let test_g1b_double_get_blocked_in_both_modes () =
  List.iter
    (fun mode ->
      let r = make ~mode () in
      get r Xg_iface.Get_s;
      get r Xg_iface.Get_s;
      run r;
      check_int "exactly one forwarded" 1 (List.length !(r.host_ops));
      check_int "G1b reported" 1 (Xg.Os_model.count_of r.os Xg.Os_model.Request_while_pending))
    [ Core.Full_state; Core.Transactional ]

let test_disabled_accelerator_dropped () =
  let r = make () in
  Xg.Os_model.report r.os Xg.Os_model.Perm_read_violation a;
  (* Log_only policy never disables; build a disabling OS instead. *)
  check_bool "log-only stays enabled" false (Xg.Os_model.accel_disabled r.os);
  let r2 = make () in
  get r2 Xg_iface.Get_s;
  run r2;
  check_int "normal request forwarded" 1 (List.length !(r2.host_ops))

let tests =
  [
    ( "xg.core",
      [
        Alcotest.test_case "GetS forwarded + tracked" `Quick test_get_s_forwarded_and_tracked;
        Alcotest.test_case "RO page uses GetS_only" `Quick test_ro_page_uses_get_s_only;
        Alcotest.test_case "RO demotion (unmodified host)" `Quick
          test_ro_demotion_without_get_s_only;
        Alcotest.test_case "Put acked early, settled later" `Quick
          test_put_acked_immediately_then_settled;
        Alcotest.test_case "unnecessary PutS forwarded" `Quick test_put_s_suppression_register;
        Alcotest.test_case "Get stalls behind Put" `Quick test_get_stalls_behind_put;
        Alcotest.test_case "owner invalidation round-trip" `Quick
          test_owner_invalidation_roundtrip;
        Alcotest.test_case "fast path: untracked" `Quick test_fast_path_for_untracked_block;
        Alcotest.test_case "fast path: shared read" `Quick test_shared_fast_path_on_read_forward;
        Alcotest.test_case "G2a correction" `Quick test_g2a_correction_invack_from_owner;
        Alcotest.test_case "G2c timeout + absorb" `Quick
          test_g2c_timeout_then_late_response_absorbed;
        Alcotest.test_case "Put/Invalidate race" `Quick test_put_invalidate_race_uses_put_data;
        Alcotest.test_case "transactional side-channel filter" `Quick
          test_transactional_no_access_filtering;
        Alcotest.test_case "transactional tolerates bad Put" `Quick
          test_transactional_forwards_bad_put;
        Alcotest.test_case "full-state blocks bad Put" `Quick test_full_state_blocks_bad_put;
        Alcotest.test_case "G1b in both modes" `Quick test_g1b_double_get_blocked_in_both_modes;
        Alcotest.test_case "OS policy plumbing" `Quick test_disabled_accelerator_dropped;
      ] );
  ]
