(* Tests for the simulation kernel: event ordering, run bounds, RNG. *)

module Engine = Xguard_sim.Engine
module Rng = Xguard_sim.Rng

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_fifo_same_cycle () =
  let e = Engine.create () in
  let log = ref [] in
  Engine.schedule e ~delay:5 (fun () -> log := 1 :: !log);
  Engine.schedule e ~delay:5 (fun () -> log := 2 :: !log);
  Engine.schedule e ~delay:5 (fun () -> log := 3 :: !log);
  (match Engine.run e with Engine.Drained -> () | _ -> Alcotest.fail "expected drain");
  Alcotest.(check (list int)) "FIFO within a cycle" [ 1; 2; 3 ] (List.rev !log)

let test_time_ordering () =
  let e = Engine.create () in
  let log = ref [] in
  Engine.schedule e ~delay:10 (fun () -> log := (10, Engine.now e) :: !log);
  Engine.schedule e ~delay:1 (fun () -> log := (1, Engine.now e) :: !log);
  Engine.schedule e ~delay:7 (fun () -> log := (7, Engine.now e) :: !log);
  ignore (Engine.run e);
  let order = List.rev_map fst !log in
  Alcotest.(check (list int)) "time order" [ 1; 7; 10 ] order;
  check_int "final time" 10 (Engine.now e)

let test_nested_scheduling () =
  let e = Engine.create () in
  let hits = ref 0 in
  let rec chain n = if n > 0 then Engine.schedule e ~delay:2 (fun () -> incr hits; chain (n - 1))
  in
  chain 100;
  ignore (Engine.run e);
  check_int "all chained events fired" 100 !hits;
  check_int "time advanced by 2 per link" 200 (Engine.now e)

let test_zero_delay_fires_after_queued () =
  let e = Engine.create () in
  let log = ref [] in
  Engine.schedule e ~delay:0 (fun () ->
      log := "first" :: !log;
      Engine.schedule e ~delay:0 (fun () -> log := "nested" :: !log));
  Engine.schedule e ~delay:0 (fun () -> log := "second" :: !log);
  ignore (Engine.run e);
  Alcotest.(check (list string)) "zero-delay ordering" [ "first"; "second"; "nested" ]
    (List.rev !log)

let test_until_bound () =
  let e = Engine.create () in
  let fired = ref [] in
  List.iter (fun d -> Engine.schedule e ~delay:d (fun () -> fired := d :: !fired)) [ 1; 5; 9 ];
  (match Engine.run ~until:5 e with
  | Engine.Hit_time_limit -> ()
  | _ -> Alcotest.fail "expected time limit");
  Alcotest.(check (list int)) "events up to the bound" [ 1; 5 ] (List.rev !fired);
  check_int "clock advanced to bound" 5 (Engine.now e);
  ignore (Engine.run e);
  Alcotest.(check (list int)) "resume finishes the rest" [ 1; 5; 9 ] (List.rev !fired)

let test_max_events () =
  let e = Engine.create () in
  let n = ref 0 in
  for _ = 1 to 10 do
    Engine.schedule e ~delay:1 (fun () -> incr n)
  done;
  (match Engine.run ~max_events:4 e with
  | Engine.Hit_event_limit -> ()
  | _ -> Alcotest.fail "expected event limit");
  check_int "exactly four fired" 4 !n;
  check_int "pending updated" 6 (Engine.pending e)

let test_stop () =
  let e = Engine.create () in
  let n = ref 0 in
  for _ = 1 to 10 do
    Engine.schedule e ~delay:1 (fun () ->
        incr n;
        if !n = 3 then Engine.stop e)
  done;
  (match Engine.run e with Engine.Stopped -> () | _ -> Alcotest.fail "expected stop");
  check_int "stopped after three" 3 !n

let test_past_scheduling_rejected () =
  let e = Engine.create () in
  Engine.schedule e ~delay:10 (fun () ->
      Alcotest.check_raises "past time" (Invalid_argument
        "Engine.schedule_at: time 3 is in the past (now=10)")
        (fun () -> Engine.schedule_at e 3 ignore));
  ignore (Engine.run e)

let test_every () =
  let e = Engine.create () in
  let ticks = ref [] in
  Engine.every e ~period:10 ~phase:5 (fun () ->
      ticks := Engine.now e :: !ticks;
      List.length !ticks < 4);
  ignore (Engine.run e);
  Alcotest.(check (list int)) "periodic ticks" [ 5; 15; 25; 35 ] (List.rev !ticks)

let test_rng_determinism () =
  let a = Rng.create ~seed:42 and b = Rng.create ~seed:42 in
  for _ = 1 to 100 do
    check_int "same stream" (Rng.int a 1000) (Rng.int b 1000)
  done;
  let c = Rng.create ~seed:43 in
  let differs = ref false in
  for _ = 1 to 20 do
    if Rng.int a 1000 <> Rng.int c 1000 then differs := true
  done;
  check_bool "different seeds diverge" true !differs

let test_rng_bounds () =
  let r = Rng.create ~seed:7 in
  for _ = 1 to 10_000 do
    let v = Rng.int r 17 in
    check_bool "in [0,17)" true (v >= 0 && v < 17);
    let w = Rng.int_in r ~lo:5 ~hi:9 in
    check_bool "in [5,9]" true (w >= 5 && w <= 9)
  done;
  (* Every value in a small range should eventually appear. *)
  let seen = Array.make 5 false in
  for _ = 1 to 1000 do
    seen.(Rng.int r 5) <- true
  done;
  Array.iteri (fun i s -> check_bool (Printf.sprintf "value %d seen" i) true s) seen

let test_rng_split_independent () =
  let parent = Rng.create ~seed:1 in
  let child = Rng.split parent in
  let xs = List.init 50 (fun _ -> Rng.int parent 1_000_000) in
  let ys = List.init 50 (fun _ -> Rng.int child 1_000_000) in
  check_bool "split streams differ" true (xs <> ys)

let test_rng_shuffle_is_permutation () =
  let r = Rng.create ~seed:3 in
  let arr = Array.init 20 Fun.id in
  Rng.shuffle r arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 20 Fun.id) sorted

let test_rng_chance_extremes () =
  let r = Rng.create ~seed:11 in
  check_bool "p=0 never" false (Rng.chance r 0.0);
  check_bool "p=1 always" true (Rng.chance r 1.0)

let tests =
  [
    ( "sim.engine",
      [
        Alcotest.test_case "same-cycle FIFO" `Quick test_fifo_same_cycle;
        Alcotest.test_case "time ordering" `Quick test_time_ordering;
        Alcotest.test_case "nested scheduling" `Quick test_nested_scheduling;
        Alcotest.test_case "zero-delay ordering" `Quick test_zero_delay_fires_after_queued;
        Alcotest.test_case "until bound + resume" `Quick test_until_bound;
        Alcotest.test_case "max_events bound" `Quick test_max_events;
        Alcotest.test_case "stop" `Quick test_stop;
        Alcotest.test_case "past scheduling rejected" `Quick test_past_scheduling_rejected;
        Alcotest.test_case "every" `Quick test_every;
      ] );
    ( "sim.rng",
      [
        Alcotest.test_case "determinism" `Quick test_rng_determinism;
        Alcotest.test_case "bounds" `Quick test_rng_bounds;
        Alcotest.test_case "split independence" `Quick test_rng_split_independent;
        Alcotest.test_case "shuffle permutation" `Quick test_rng_shuffle_is_permutation;
        Alcotest.test_case "chance extremes" `Quick test_rng_chance_extremes;
      ] );
  ]
