(* Tests for the protocol substrate: addresses, cache arrays, TBEs, memory,
   the sequencer. *)

module Engine = Xguard_sim.Engine

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_addr_pages () =
  let a = Addr.block 0 and b = Addr.block 63 and c = Addr.block 64 in
  check_int "page 0" 0 (Addr.page_of a);
  check_int "last block of page 0" 0 (Addr.page_of b);
  check_int "first block of page 1" 1 (Addr.page_of c);
  check_int "round trip" 128 (Addr.first_block_of_page 2)

let test_data_initial_distinct_from_zero () =
  let distinct = ref 0 in
  for a = 0 to 999 do
    if not (Data.equal (Data.initial (Addr.block a)) Data.zero) then incr distinct
  done;
  check_int "initial values are nonzero" 1000 !distinct

let test_perm_lattice () =
  check_bool "None !read" false (Perm.allows_read Perm.No_access);
  check_bool "RO read" true (Perm.allows_read Perm.Read_only);
  check_bool "RO !write" false (Perm.allows_write Perm.Read_only);
  check_bool "RW write" true (Perm.allows_write Perm.Read_write)

let test_cache_insert_find () =
  let c = Cache_array.create ~sets:4 ~ways:2 () in
  Cache_array.insert c (Addr.block 0) "a";
  Cache_array.insert c (Addr.block 4) "b";
  (* same set as 0 *)
  Alcotest.(check (option string)) "find a" (Some "a") (Cache_array.find c (Addr.block 0));
  Alcotest.(check (option string)) "find b" (Some "b") (Cache_array.find c (Addr.block 4));
  check_int "count" 2 (Cache_array.count c);
  check_bool "set 0 now full" false (Cache_array.has_room c (Addr.block 8))

let test_cache_lru_victim () =
  let c = Cache_array.create ~sets:1 ~ways:3 () in
  Cache_array.insert c (Addr.block 1) ();
  Cache_array.insert c (Addr.block 2) ();
  Cache_array.insert c (Addr.block 3) ();
  (* LRU is 1; touching it should make 2 the victim. *)
  (match Cache_array.victim c (Addr.block 9) with
  | Some (a, ()) -> check_int "victim is LRU" 1 (Addr.to_int a)
  | None -> Alcotest.fail "expected a victim");
  Cache_array.touch c (Addr.block 1);
  (match Cache_array.victim c (Addr.block 9) with
  | Some (a, ()) -> check_int "victim after touch" 2 (Addr.to_int a)
  | None -> Alcotest.fail "expected a victim");
  (* A resident address needs no victim. *)
  Alcotest.(check bool) "resident: no victim" true (Cache_array.victim c (Addr.block 2) = None)

let test_cache_full_set_rejects_insert () =
  let c = Cache_array.create ~sets:1 ~ways:1 () in
  Cache_array.insert c (Addr.block 1) ();
  (try
     Cache_array.insert c (Addr.block 2) ();
     Alcotest.fail "expected rejection"
   with Invalid_argument _ -> ());
  (try
     Cache_array.insert c (Addr.block 1) ();
     Alcotest.fail "expected duplicate rejection"
   with Invalid_argument _ -> ());
  Cache_array.remove c (Addr.block 1);
  Cache_array.insert c (Addr.block 2) ();
  check_int "insert after eviction" 1 (Cache_array.count c)

let test_cache_set_updates_payload () =
  let c = Cache_array.create ~sets:2 ~ways:2 () in
  Cache_array.insert c (Addr.block 3) 10;
  Cache_array.set c (Addr.block 3) 20;
  Alcotest.(check (option int)) "updated" (Some 20) (Cache_array.find c (Addr.block 3));
  try
    Cache_array.set c (Addr.block 5) 1;
    Alcotest.fail "expected Not_found"
  with Not_found -> ()

let test_cache_non_power_of_two_sets () =
  try
    ignore (Cache_array.create ~sets:3 ~ways:1 ());
    Alcotest.fail "expected rejection"
  with Invalid_argument _ -> ()

let test_tbe_lifecycle () =
  let t = Tbe_table.create ~capacity:2 () in
  Alcotest.(check bool) "alloc ok" true (Tbe_table.alloc t (Addr.block 1) "x" = `Ok);
  Alcotest.(check bool) "busy" true (Tbe_table.alloc t (Addr.block 1) "y" = `Busy);
  Alcotest.(check bool) "alloc 2" true (Tbe_table.alloc t (Addr.block 2) "z" = `Ok);
  Alcotest.(check bool) "full" true (Tbe_table.alloc t (Addr.block 3) "w" = `Full);
  Tbe_table.update t (Addr.block 1) "x2";
  Alcotest.(check (option string)) "updated" (Some "x2") (Tbe_table.find t (Addr.block 1));
  Tbe_table.dealloc t (Addr.block 1);
  check_int "count after dealloc" 1 (Tbe_table.count t);
  try
    Tbe_table.dealloc t (Addr.block 1);
    Alcotest.fail "expected Not_found"
  with Not_found -> ()

let test_memory_defaults_and_writes () =
  let m = Memory_model.create () in
  let a = Addr.block 17 in
  Alcotest.(check bool) "initial value" true (Data.equal (Memory_model.read m a) (Data.initial a));
  Memory_model.write m a (Data.token 99);
  check_int "written value" 99 (Memory_model.read m a);
  check_int "touched" 1 (List.length (Memory_model.touched m))

(* A fake cache port: rejects the first [reject] attempts per access, then
   completes after [latency] cycles with a canned value. *)
let fake_port engine ~reject ~latency =
  let attempts = Hashtbl.create 8 in
  {
    Access.issue =
      (fun access ~on_done ->
        let addr = access.Access.addr in
        let n = match Hashtbl.find_opt attempts addr with Some n -> n | None -> 0 in
        Hashtbl.replace attempts addr (n + 1);
        if n < reject then false
        else begin
          Engine.schedule engine ~delay:latency (fun () -> on_done (Data.token 7));
          true
        end);
  }

let test_sequencer_completes_and_measures () =
  let e = Engine.create () in
  let seq =
    Sequencer.create ~engine:e ~name:"seq" ~port:(fake_port e ~reject:0 ~latency:5) ()
  in
  let got = ref None in
  Sequencer.request seq (Access.load (Addr.block 1)) ~on_complete:(fun v ~latency ->
      got := Some (v, latency));
  ignore (Engine.run e);
  (match !got with
  | Some (v, lat) ->
      check_int "value" 7 v;
      check_int "latency" 5 lat
  | None -> Alcotest.fail "did not complete");
  check_int "completed count" 1 (Sequencer.completed seq)

let test_sequencer_retries_on_reject () =
  let e = Engine.create () in
  let seq =
    Sequencer.create ~engine:e ~name:"seq" ~port:(fake_port e ~reject:3 ~latency:1)
      ~retry_delay:2 ()
  in
  let done_ = ref false in
  Sequencer.request seq (Access.load (Addr.block 1)) ~on_complete:(fun _ ~latency:_ ->
      done_ := true);
  ignore (Engine.run e);
  check_bool "completed despite rejections" true !done_;
  check_int "counted retries" 3 (Sequencer.retries seq)

let test_sequencer_serializes_same_address () =
  let e = Engine.create () in
  (* A port that records how many accesses are in flight at once. *)
  let in_flight = ref 0 and max_in_flight = ref 0 in
  let port =
    {
      Access.issue =
        (fun _access ~on_done ->
          incr in_flight;
          if !in_flight > !max_in_flight then max_in_flight := !in_flight;
          Engine.schedule e ~delay:10 (fun () ->
              decr in_flight;
              on_done Data.zero);
          true);
    }
  in
  let seq = Sequencer.create ~engine:e ~name:"seq" ~port () in
  for _ = 1 to 5 do
    Sequencer.request seq (Access.store (Addr.block 9) (Data.token 1))
      ~on_complete:(fun _ ~latency:_ -> ())
  done;
  ignore (Engine.run e);
  check_int "same-address accesses serialized" 1 !max_in_flight;
  check_int "all completed" 5 (Sequencer.completed seq)

let test_sequencer_parallel_distinct_addresses () =
  let e = Engine.create () in
  let in_flight = ref 0 and max_in_flight = ref 0 in
  let port =
    {
      Access.issue =
        (fun _access ~on_done ->
          incr in_flight;
          if !in_flight > !max_in_flight then max_in_flight := !in_flight;
          Engine.schedule e ~delay:10 (fun () ->
              decr in_flight;
              on_done Data.zero);
          true);
    }
  in
  let seq = Sequencer.create ~engine:e ~name:"seq" ~port ~max_outstanding:4 () in
  for i = 1 to 4 do
    Sequencer.request seq (Access.load (Addr.block i)) ~on_complete:(fun _ ~latency:_ -> ())
  done;
  ignore (Engine.run e);
  check_int "distinct addresses overlap" 4 !max_in_flight

let tests =
  [
    ( "proto.basics",
      [
        Alcotest.test_case "addr pages" `Quick test_addr_pages;
        Alcotest.test_case "data initial" `Quick test_data_initial_distinct_from_zero;
        Alcotest.test_case "perm lattice" `Quick test_perm_lattice;
        Alcotest.test_case "memory defaults" `Quick test_memory_defaults_and_writes;
      ] );
    ( "proto.cache_array",
      [
        Alcotest.test_case "insert/find" `Quick test_cache_insert_find;
        Alcotest.test_case "LRU victim" `Quick test_cache_lru_victim;
        Alcotest.test_case "full set rejects" `Quick test_cache_full_set_rejects_insert;
        Alcotest.test_case "set payload" `Quick test_cache_set_updates_payload;
        Alcotest.test_case "power-of-two sets" `Quick test_cache_non_power_of_two_sets;
      ] );
    ("proto.tbe", [ Alcotest.test_case "lifecycle" `Quick test_tbe_lifecycle ]);
    ( "proto.sequencer",
      [
        Alcotest.test_case "completes + latency" `Quick test_sequencer_completes_and_measures;
        Alcotest.test_case "retries" `Quick test_sequencer_retries_on_reject;
        Alcotest.test_case "same-address serialization" `Quick
          test_sequencer_serializes_same_address;
        Alcotest.test_case "parallel distinct addresses" `Quick
          test_sequencer_parallel_distinct_addresses;
      ] );
  ]
