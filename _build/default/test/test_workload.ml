(* Tests for the workload generators and the performance runner. *)

module Rng = Xguard_sim.Rng
module W = Xguard_workload.Workload
module Config = Xguard_harness.Config
module Perf = Xguard_harness.Perf_runner

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let total_accesses streams =
  Array.fold_left (fun acc s -> acc + Array.length s.W.accesses) 0 streams

let test_partitioning_preserves_work () =
  let rng = Rng.create ~seed:1 in
  List.iter
    (fun w ->
      let one = total_accesses (w.W.make_streams ~cores:1 ~rng:(Rng.split rng)) in
      let four = total_accesses (w.W.make_streams ~cores:4 ~rng:(Rng.split rng)) in
      check_bool
        (w.W.name ^ ": partitioning keeps total work within rounding")
        true
        (abs (one - four) <= 4))
    (W.all ())

let test_footprints_honest () =
  let rng = Rng.create ~seed:2 in
  List.iter
    (fun w ->
      let streams = w.W.make_streams ~cores:2 ~rng:(Rng.split rng) in
      Array.iter
        (fun s ->
          Array.iter
            (fun a ->
              check_bool
                (w.W.name ^ ": access within declared footprint")
                true
                (Addr.to_int a.Access.addr < w.W.footprint_blocks))
            s.W.accesses)
        streams)
    (W.all ())

let test_graph_is_serial () =
  let rng = Rng.create ~seed:3 in
  let streams = (W.graph ()).W.make_streams ~cores:2 ~rng in
  Array.iter (fun s -> check_int "one access in flight" 1 s.W.max_outstanding) streams

let test_producer_consumer_has_cpu_side () =
  let rng = Rng.create ~seed:4 in
  let w = W.producer_consumer () in
  let cpu = w.W.cpu_streams ~cpus:2 ~rng in
  check_int "two cpu streams" 2 (Array.length cpu);
  check_bool "cpu streams nonempty" true (total_accesses cpu > 0);
  List.iter
    (fun other ->
      check_int (other.W.name ^ ": no cpu side") 0
        (Array.length (other.W.cpu_streams ~cpus:2 ~rng)))
    [ W.streaming (); W.blocked (); W.graph (); W.write_coalesce () ]

let test_perf_runner_completes_and_orders () =
  (* The headline shape on a latency-sensitive workload: the host-side cache
     must be slower than both the accelerator-side cache and the guard. *)
  let w = W.graph ~nodes:64 ~steps:400 () in
  let run org = (Perf.run (Config.make Config.Hammer org) w).Perf.cycles in
  let accel_side = run Config.Accel_side in
  let host_side = run Config.Host_side in
  let xg = run (Config.Xg_one_level Config.Transactional) in
  check_bool "host-side slower than accel-side" true (host_side > accel_side);
  check_bool "host-side slower than XG" true (host_side > xg);
  (* "Performance comparable to using the host protocol": within 2x. *)
  let ratio = float_of_int xg /. float_of_int accel_side in
  check_bool "XG within 2x of the unsafe accel-side cache" true (ratio < 2.0 && ratio > 0.5)

let test_perf_runner_no_violations_with_correct_accel () =
  List.iter
    (fun cfg ->
      let r = Perf.run cfg (W.blocked ~tiles:8 ()) in
      check_int (r.Perf.config_name ^ ": no violations") 0 r.Perf.violations)
    (List.filter Config.uses_xg (Config.all_configurations ()))

let test_put_s_suppression_register () =
  (* E4 machinery: with the register set, unnecessary PutS messages stop
     crossing to the Hammer host. *)
  let w = W.shared_sweep ~length:256 () in
  let base = Config.make Config.Hammer (Config.Xg_one_level Config.Transactional) in
  let off = Perf.run { base with Config.suppress_put_s = false } w in
  let on = Perf.run { base with Config.suppress_put_s = true } w in
  check_bool "without the register, unnecessary PutS reach the host" true
    (off.Perf.put_s_messages > 0);
  check_int "with the register, none cross" 0 on.Perf.put_s_messages;
  check_bool "suppressed count recorded" true (on.Perf.put_s_suppressed > 0);
  check_bool "register reduces XG-to-host traffic" true
    (on.Perf.xg_to_host_bytes < off.Perf.xg_to_host_bytes)

let test_mesi_uses_put_s () =
  (* The MESI host tracks sharers exactly, so PutS is forwarded, never
     "unnecessary". *)
  let w = W.shared_sweep ~length:256 () in
  let r = Perf.run (Config.make Config.Mesi (Config.Xg_one_level Config.Transactional)) w in
  check_int "nothing suppressed" 0 r.Perf.put_s_suppressed

let tests =
  [
    ( "workload.generators",
      [
        Alcotest.test_case "partitioning preserves work" `Quick test_partitioning_preserves_work;
        Alcotest.test_case "footprints honest" `Quick test_footprints_honest;
        Alcotest.test_case "graph is serial" `Quick test_graph_is_serial;
        Alcotest.test_case "producer-consumer cpu side" `Quick
          test_producer_consumer_has_cpu_side;
      ] );
    ( "workload.perf",
      [
        Alcotest.test_case "ordering: host-side slowest" `Quick
          test_perf_runner_completes_and_orders;
        Alcotest.test_case "correct accel: zero violations" `Quick
          test_perf_runner_no_violations_with_correct_accel;
        Alcotest.test_case "PutS suppression register" `Quick test_put_s_suppression_register;
        Alcotest.test_case "MESI forwards PutS" `Quick test_mesi_uses_put_s;
      ] );
  ]
