test/test_proto.ml: Access Addr Alcotest Cache_array Data Hashtbl List Memory_model Perm Sequencer Tbe_table Xguard_sim
