test/test_workload.ml: Access Addr Alcotest Array List Xguard_harness Xguard_sim Xguard_workload
