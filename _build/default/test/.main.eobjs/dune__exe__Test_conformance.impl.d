test/test_conformance.ml: Addr Alcotest Array Hashtbl List Printf String Xguard_accel Xguard_harness Xguard_sim Xguard_stats
