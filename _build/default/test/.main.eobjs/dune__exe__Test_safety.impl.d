test/test_safety.ml: Alcotest List Printexc QCheck2 QCheck_alcotest Xguard_harness Xguard_sim Xguard_xg
