test/test_accel_l2.ml: Access Addr Alcotest Array Data Hashtbl List Memory_model Node Option Printf Sequencer Xguard_accel Xguard_network Xguard_sim Xguard_stats Xguard_xg
