test/test_mesi.ml: Access Addr Alcotest Array Data Memory_model Node QCheck2 QCheck_alcotest Xguard_harness Xguard_host_mesi Xguard_network Xguard_sim Xguard_stats
