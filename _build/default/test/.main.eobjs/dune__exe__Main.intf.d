test/main.mli:
