test/test_hammer.ml: Access Addr Alcotest Array Data Memory_model Node Option QCheck2 QCheck_alcotest Xguard_harness Xguard_host_hammer Xguard_network Xguard_sim Xguard_stats
