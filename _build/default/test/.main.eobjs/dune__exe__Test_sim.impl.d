test/test_sim.ml: Alcotest Array Fun List Printf Xguard_sim
