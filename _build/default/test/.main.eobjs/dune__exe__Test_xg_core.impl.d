test/test_xg_core.ml: Addr Alcotest Data List Node Perm Xguard_network Xguard_sim Xguard_stats Xguard_xg
