test/test_network.ml: Alcotest Array List Node QCheck2 QCheck_alcotest Xguard_network Xguard_sim
