test/test_accel_l1.ml: Access Addr Alcotest Array Data Hashtbl List Memory_model Node QCheck2 QCheck_alcotest Sequencer Xguard_accel Xguard_network Xguard_sim Xguard_stats Xguard_xg
