test/test_xg_units.ml: Access Addr Alcotest Array Data List Memory_model Option Perm Xguard_harness Xguard_sim Xguard_xg
