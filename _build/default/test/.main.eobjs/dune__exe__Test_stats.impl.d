test/test_stats.ml: Alcotest List String Xguard_stats
