test/test_xg_integration.ml: Access Addr Alcotest Array Data List Perm Printexc QCheck2 QCheck_alcotest Xguard_harness Xguard_sim Xguard_xg
