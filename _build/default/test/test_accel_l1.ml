(* Tests for the single-level accelerator cache: conformance to the paper's
   Table 1, integration with Toy_home over an ordered link, and flavor
   behaviour (MESI / MSI / VI). *)

module Engine = Xguard_sim.Engine
module Rng = Xguard_sim.Rng
module Xg_iface = Xguard_xg.Xg_iface
module Toy_home = Xguard_xg.Toy_home
module L1 = Xguard_accel.L1_simple
module Lower_port = Xguard_accel.Lower_port

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

type sent = Req of Addr.t * Xg_iface.accel_request | Resp of Addr.t * Xg_iface.accel_response

let state_pp = function `I -> "I" | `S -> "S" | `E -> "E" | `M -> "M" | `B -> "B"
let check_state msg expected actual = Alcotest.(check string) msg (state_pp expected) (state_pp actual)

(* A bare L1 whose lower port records messages, so tests control event order
   exactly (no network, no home). *)
let bare_l1 ?(flavor = L1.Mesi) ?(sets = 1) ?(ways = 4) () =
  let engine = Engine.create () in
  let sent = ref [] in
  let lower =
    {
      Lower_port.send_req = (fun a r -> sent := Req (a, r) :: !sent);
      Lower_port.send_resp = (fun a r -> sent := Resp (a, r) :: !sent);
    }
  in
  let l1 = L1.create ~engine ~name:"l1" ~flavor ~sets ~ways ~lower () in
  (engine, l1, sent)

let pop_sent sent =
  match !sent with
  | [] -> Alcotest.fail "expected an outgoing message"
  | m :: rest ->
      sent := rest;
      m

let expect_no_sent sent = check_int "no outgoing message" 0 (List.length !sent)

let issue_ok l1 access =
  let port = L1.cpu_port l1 in
  check_bool "access accepted" true (port.Access.issue access ~on_done:(fun _ -> ()))

let issue_stalled l1 access =
  let port = L1.cpu_port l1 in
  check_bool "access stalled" false (port.Access.issue access ~on_done:(fun _ -> ()))

let grant l1 addr resp = L1.deliver l1 (Xg_iface.To_accel_resp { addr; resp })
let invalidate l1 addr = L1.deliver l1 (Xg_iface.To_accel_req { addr; req = Xg_iface.Invalidate })

let a0 = Addr.block 0
let a1 = Addr.block 1

(* --- Table 1 conformance, row by row --- *)

let test_i_load_issues_gets () =
  let _, l1, sent = bare_l1 () in
  issue_ok l1 (Access.load a0);
  (match pop_sent sent with
  | Req (a, Xg_iface.Get_s) -> check_int "addr" 0 (Addr.to_int a)
  | _ -> Alcotest.fail "expected GetS");
  check_state "I + Load -> B" `B (L1.probe l1 a0)

let test_i_store_issues_getm () =
  let _, l1, sent = bare_l1 () in
  issue_ok l1 (Access.store a0 (Data.token 5));
  (match pop_sent sent with
  | Req (_, Xg_iface.Get_m) -> ()
  | _ -> Alcotest.fail "expected GetM");
  check_state "I + Store -> B" `B (L1.probe l1 a0)

let test_i_invalidate_acks () =
  let _, l1, sent = bare_l1 () in
  invalidate l1 a0;
  (match pop_sent sent with
  | Resp (_, Xg_iface.Inv_ack) -> ()
  | _ -> Alcotest.fail "expected InvAck");
  check_state "stays I" `I (L1.probe l1 a0)

let test_b_grants () =
  (* B + DataS/E/M -> S/E/M, pending load completes with granted data. *)
  let cases =
    [
      (Xg_iface.Data_s (Data.token 11), `S, 11);
      (Xg_iface.Data_e (Data.token 12), `E, 12);
      (Xg_iface.Data_m (Data.token 13), `M, 13);
    ]
  in
  List.iter
    (fun (resp, expected_state, expected_value) ->
      let engine, l1, _sent = bare_l1 () in
      let got = ref None in
      let port = L1.cpu_port l1 in
      check_bool "accepted" true
        (port.Access.issue (Access.load a0) ~on_done:(fun v -> got := Some v));
      grant l1 a0 resp;
      ignore (Engine.run engine);
      check_state "granted state" expected_state (L1.probe l1 a0);
      Alcotest.(check (option int)) "granted value" (Some expected_value) !got)
    cases

let test_b_stalls_accesses () =
  let _, l1, _sent = bare_l1 () in
  issue_ok l1 (Access.load a0);
  issue_stalled l1 (Access.load a0);
  issue_stalled l1 (Access.store a0 (Data.token 1))

let test_b_invalidate_acks_and_stays () =
  let _, l1, sent = bare_l1 () in
  issue_ok l1 (Access.load a0);
  ignore (pop_sent sent);
  invalidate l1 a0;
  (match pop_sent sent with
  | Resp (_, Xg_iface.Inv_ack) -> ()
  | _ -> Alcotest.fail "expected InvAck");
  check_state "stays B" `B (L1.probe l1 a0)

let to_state l1 engine sent addr target =
  (* Drive the bare cache into a stable state. *)
  let port = L1.cpu_port l1 in
  (match target with
  | `S ->
      ignore (port.Access.issue (Access.load addr) ~on_done:(fun _ -> ()));
      ignore (pop_sent sent);
      grant l1 addr (Xg_iface.Data_s (Data.token 100))
  | `E ->
      ignore (port.Access.issue (Access.load addr) ~on_done:(fun _ -> ()));
      ignore (pop_sent sent);
      grant l1 addr (Xg_iface.Data_e (Data.token 100))
  | `M ->
      ignore (port.Access.issue (Access.store addr (Data.token 100)) ~on_done:(fun _ -> ()));
      ignore (pop_sent sent);
      grant l1 addr (Xg_iface.Data_m (Data.token 100)));
  ignore (Engine.run engine);
  check_state "setup state" target (L1.probe l1 addr)

let test_hits () =
  (* M/E/S + Load hit; M + Store hit; E + Store hit -> M. *)
  let engine, l1, sent = bare_l1 () in
  to_state l1 engine sent a0 `M;
  issue_ok l1 (Access.load a0);
  issue_ok l1 (Access.store a0 (Data.token 7));
  ignore (Engine.run engine);
  expect_no_sent sent;
  check_state "M stays M" `M (L1.probe l1 a0);

  let engine, l1, sent = bare_l1 () in
  to_state l1 engine sent a0 `E;
  issue_ok l1 (Access.load a0);
  ignore (Engine.run engine);
  check_state "E + Load stays E" `E (L1.probe l1 a0);
  issue_ok l1 (Access.store a0 (Data.token 7));
  ignore (Engine.run engine);
  expect_no_sent sent;
  check_state "E + Store -> M silently" `M (L1.probe l1 a0);

  let engine, l1, sent = bare_l1 () in
  to_state l1 engine sent a0 `S;
  issue_ok l1 (Access.load a0);
  ignore (Engine.run engine);
  expect_no_sent sent;
  check_state "S + Load stays S" `S (L1.probe l1 a0)

let test_s_store_upgrades () =
  let engine, l1, sent = bare_l1 () in
  to_state l1 engine sent a0 `S;
  let got = ref None in
  let port = L1.cpu_port l1 in
  check_bool "accepted" true
    (port.Access.issue (Access.store a0 (Data.token 42)) ~on_done:(fun v -> got := Some v));
  (match pop_sent sent with
  | Req (_, Xg_iface.Get_m) -> ()
  | _ -> Alcotest.fail "expected GetM upgrade");
  check_state "S + Store -> B" `B (L1.probe l1 a0);
  grant l1 a0 (Xg_iface.Data_m (Data.token 0));
  ignore (Engine.run engine);
  check_state "upgrade lands in M" `M (L1.probe l1 a0);
  Alcotest.(check (option int)) "store value applied" (Some 42) !got

let test_replacements () =
  (* One-way cache: a second address forces the eviction path per state. *)
  let expect_put target = function
    | Req (_, Xg_iface.Put_m _) -> check_bool "PutM for M" true (target = `M)
    | Req (_, Xg_iface.Put_e _) -> check_bool "PutE for E" true (target = `E)
    | Req (_, Xg_iface.Put_s) -> check_bool "PutS for S" true (target = `S)
    | _ -> Alcotest.fail "expected a Put"
  in
  List.iter
    (fun target ->
      let engine, l1, sent = bare_l1 ~ways:1 () in
      to_state l1 engine sent a0 target;
      (* Miss on a1 cannot allocate: the victim a0 starts its eviction and the
         access is rejected for retry. *)
      issue_stalled l1 (Access.load a1);
      expect_put target (pop_sent sent);
      check_state "victim in B" `B (L1.probe l1 a0);
      (* A retried access still stalls until the WbAck frees the way. *)
      issue_stalled l1 (Access.load a1);
      check_int "eviction pending" 1 (L1.pending_evictions l1);
      grant l1 a0 Xg_iface.Wb_ack;
      check_state "WbAck -> I" `I (L1.probe l1 a0);
      check_int "no pending eviction" 0 (L1.pending_evictions l1);
      issue_ok l1 (Access.load a1);
      ignore (Engine.run engine))
    [ `M; `E; `S ]

let test_invalidations_by_state () =
  let engine, l1, sent = bare_l1 () in
  to_state l1 engine sent a0 `M;
  invalidate l1 a0;
  (match pop_sent sent with
  | Resp (_, Xg_iface.Dirty_wb d) -> check_int "dirty data carried" 100 d
  | _ -> Alcotest.fail "M + Invalidate must send Dirty WB");
  check_state "-> I" `I (L1.probe l1 a0);

  let engine, l1, sent = bare_l1 () in
  to_state l1 engine sent a0 `E;
  invalidate l1 a0;
  (match pop_sent sent with
  | Resp (_, Xg_iface.Clean_wb _) -> ()
  | _ -> Alcotest.fail "E + Invalidate must send Clean WB");
  check_state "-> I" `I (L1.probe l1 a0);

  let engine, l1, sent = bare_l1 () in
  to_state l1 engine sent a0 `S;
  invalidate l1 a0;
  (match pop_sent sent with
  | Resp (_, Xg_iface.Inv_ack) -> ()
  | _ -> Alcotest.fail "S + Invalidate must send InvAck");
  check_state "-> I" `I (L1.probe l1 a0)

let test_spec_table_shape () =
  (* The published table: 24 possible transitions, 5 impossible ones. *)
  let possible = ref 0 and impossible = ref 0 in
  List.iter
    (fun s ->
      List.iter
        (fun e ->
          match L1.Spec.mesi s e with
          | L1.Spec.Impossible -> incr impossible
          | L1.Spec.Entry _ -> incr possible)
        L1.Spec.all_events)
    L1.Spec.all_states;
  check_int "states x events" 40 (!possible + !impossible);
  check_int "possible transitions" 23 !possible;
  (* I+Replacement and stable-state data arrivals are impossible. *)
  check_bool "I+Replacement impossible" true
    (L1.Spec.mesi L1.Spec.I L1.Spec.Replacement = L1.Spec.Impossible)

(* --- Flavors --- *)

let test_msi_treats_data_e_as_data_m () =
  let engine, l1, sent = bare_l1 ~flavor:L1.Msi () in
  issue_ok l1 (Access.load a0);
  ignore (pop_sent sent);
  grant l1 a0 (Xg_iface.Data_e (Data.token 9));
  ignore (Engine.run engine);
  check_state "DataE lands in M under MSI" `M (L1.probe l1 a0);
  invalidate l1 a0;
  match pop_sent sent with
  | Resp (_, Xg_iface.Dirty_wb _) -> ()
  | _ -> Alcotest.fail "MSI sends only dirty writebacks"

let test_vi_sends_only_getm () =
  let engine, l1, sent = bare_l1 ~flavor:L1.Vi ~ways:1 () in
  issue_ok l1 (Access.load a0);
  (match pop_sent sent with
  | Req (_, Xg_iface.Get_m) -> ()
  | _ -> Alcotest.fail "VI loads must issue GetM");
  grant l1 a0 (Xg_iface.Data_e (Data.token 3));
  ignore (Engine.run engine);
  check_state "V is M" `M (L1.probe l1 a0);
  issue_stalled l1 (Access.load a1);
  match pop_sent sent with
  | Req (_, Xg_iface.Put_m _) -> ()
  | _ -> Alcotest.fail "VI evictions are PutM"

(* --- Integration with Toy_home over an ordered link --- *)

type system = {
  engine : Engine.t;
  l1 : L1.t;
  home : Toy_home.t;
  seq : Sequencer.t;
  memory : Memory_model.t;
}

let make_system ?(flavor = L1.Mesi) ?(grant_style = Toy_home.Exclusive_when_clean) ?(sets = 2)
    ?(ways = 2) ?(seed = 1) () =
  let engine = Engine.create () in
  let rng = Rng.create ~seed in
  let reg = Node.Registry.create () in
  let accel_node = Node.Registry.fresh reg "accel" in
  let home_node = Node.Registry.fresh reg "home" in
  let link =
    Xg_iface.Link.create ~engine ~rng ~name:"link"
      ~ordering:(Xguard_network.Network.Ordered { latency = 4 })
      ()
  in
  let lower = Lower_port.on_link link ~self:accel_node ~peer:home_node in
  let l1 = L1.create ~engine ~name:"accel.l1" ~flavor ~sets ~ways ~lower () in
  Xg_iface.Link.register link accel_node (fun ~src:_ msg -> L1.deliver l1 msg);
  let memory = Memory_model.create () in
  let home =
    Toy_home.create ~engine ~link ~self:home_node ~accel:accel_node ~memory ~grant_style ()
  in
  let seq = Sequencer.create ~engine ~name:"accel.seq" ~port:(L1.cpu_port l1) () in
  { engine; l1; home; seq; memory }

let test_end_to_end_load_store () =
  let sys = make_system () in
  let loaded = ref None in
  Sequencer.request sys.seq (Access.load a0) ~on_complete:(fun v ~latency:_ ->
      loaded := Some v);
  ignore (Engine.run sys.engine);
  Alcotest.(check (option int)) "load returns memory value" (Some (Data.initial a0)) !loaded;
  check_state "exclusive grant" `E (L1.probe sys.l1 a0);
  Sequencer.request sys.seq (Access.store a0 (Data.token 77)) ~on_complete:(fun _ ~latency:_ -> ());
  ignore (Engine.run sys.engine);
  check_state "silent upgrade" `M (L1.probe sys.l1 a0);
  (* The dirty value reaches memory on a recall. *)
  let recalled = ref false in
  Toy_home.recall sys.home a0 ~on_done:(fun () -> recalled := true);
  ignore (Engine.run sys.engine);
  check_bool "recall completed" true !recalled;
  check_int "memory updated" 77 (Memory_model.read sys.memory a0);
  check_state "invalidated" `I (L1.probe sys.l1 a0)

let test_eviction_writes_back_through_home () =
  let sys = make_system ~sets:1 ~ways:1 ~grant_style:Toy_home.Conservative () in
  Sequencer.request sys.seq (Access.store a0 (Data.token 5)) ~on_complete:(fun _ ~latency:_ -> ());
  ignore (Engine.run sys.engine);
  check_state "M after store" `M (L1.probe sys.l1 a0);
  (* Touch a conflicting address: a0 must be written back, then a1 granted. *)
  Sequencer.request sys.seq (Access.load a1) ~on_complete:(fun _ ~latency:_ -> ());
  ignore (Engine.run sys.engine);
  check_state "victim gone" `I (L1.probe sys.l1 a0);
  check_int "writeback reached memory" 5 (Memory_model.read sys.memory a0);
  check_bool "new block resident" true (L1.probe sys.l1 a1 <> `I)

let test_put_invalidate_race () =
  (* Start an eviction, then recall the same block while the Put is on the
     wire.  The home must absorb the Put, the L1 must InvAck from B, and both
     sides must settle with the block invalid and memory holding the data. *)
  let sys = make_system ~sets:1 ~ways:1 ~grant_style:Toy_home.Conservative () in
  Sequencer.request sys.seq (Access.store a0 (Data.token 123)) ~on_complete:(fun _ ~latency:_ -> ());
  ignore (Engine.run sys.engine);
  (* Kick off the eviction (rejected access starts it). *)
  let port = L1.cpu_port sys.l1 in
  check_bool "stalled while evicting" false
    (port.Access.issue (Access.load a1) ~on_done:(fun _ -> ()));
  check_state "PutM in flight" `B (L1.probe sys.l1 a0);
  let recalled = ref false in
  Toy_home.recall sys.home a0 ~on_done:(fun () -> recalled := true);
  ignore (Engine.run sys.engine);
  check_bool "recall completed despite race" true !recalled;
  check_int "racing Put data used" 123 (Memory_model.read sys.memory a0);
  check_state "line freed" `I (L1.probe sys.l1 a0);
  check_int "race was observed by home" 1
    (Xguard_stats.Counter.Group.get (Toy_home.stats sys.home) "put_inv_race")

(* Randomized single-core coherence check: every load observes the last
   committed store to its address; the final recall audit matches memory. *)
let run_random_workload ~flavor ~grant_style ~seed ~ops =
  let sys = make_system ~flavor ~grant_style ~sets:2 ~ways:2 ~seed () in
  let rng = Rng.create ~seed:(seed * 7 + 1) in
  let addresses = Array.init 12 Addr.block in
  let expected = Hashtbl.create 16 in
  let errors = ref 0 in
  let next_token = ref 1000 in
  for _ = 1 to ops do
    let addr = Rng.pick rng addresses in
    if Rng.bool rng then begin
      incr next_token;
      let v = Data.token !next_token in
      Sequencer.request sys.seq (Access.store addr v) ~on_complete:(fun _ ~latency:_ ->
          Hashtbl.replace expected addr v)
    end
    else
      Sequencer.request sys.seq (Access.load addr) ~on_complete:(fun v ~latency:_ ->
          let want =
            match Hashtbl.find_opt expected addr with
            | Some w -> w
            | None -> Data.initial addr
          in
          if not (Data.equal v want) then incr errors)
  done;
  ignore (Engine.run sys.engine);
  check_int "all ops completed" ops (Sequencer.completed sys.seq);
  check_int "no stale loads" 0 !errors;
  (* Audit: recall everything and compare memory against expectations. *)
  Array.iter
    (fun addr ->
      if L1.probe sys.l1 addr <> `I then Toy_home.recall sys.home addr ~on_done:(fun () -> ()))
    addresses;
  ignore (Engine.run sys.engine);
  Hashtbl.iter
    (fun addr want ->
      if not (Data.equal (Memory_model.read sys.memory addr) want) then
        Alcotest.failf "memory audit mismatch at %d" (Addr.to_int addr))
    expected

let test_random_workload_all_flavors () =
  List.iter
    (fun flavor ->
      List.iter
        (fun style -> run_random_workload ~flavor ~grant_style:style ~seed:3 ~ops:300)
        [ Toy_home.Exclusive_when_clean; Toy_home.Conservative ])
    [ L1.Mesi; L1.Msi; L1.Vi ]

let prop_random_workloads =
  QCheck2.Test.make ~name:"accel L1 coherent under random workloads" ~count:25
    QCheck2.Gen.(int_range 1 10_000)
    (fun seed ->
      run_random_workload ~flavor:L1.Mesi ~grant_style:Toy_home.Exclusive_when_clean ~seed
        ~ops:200;
      true)

let tests =
  [
    ( "accel.l1.table1",
      [
        Alcotest.test_case "I+Load issues GetS" `Quick test_i_load_issues_gets;
        Alcotest.test_case "I+Store issues GetM" `Quick test_i_store_issues_getm;
        Alcotest.test_case "I+Invalidate acks" `Quick test_i_invalidate_acks;
        Alcotest.test_case "B grants land in S/E/M" `Quick test_b_grants;
        Alcotest.test_case "B stalls accesses" `Quick test_b_stalls_accesses;
        Alcotest.test_case "B+Invalidate acks, stays B" `Quick test_b_invalidate_acks_and_stays;
        Alcotest.test_case "hits" `Quick test_hits;
        Alcotest.test_case "S+Store upgrade" `Quick test_s_store_upgrades;
        Alcotest.test_case "replacements per state" `Quick test_replacements;
        Alcotest.test_case "invalidations per state" `Quick test_invalidations_by_state;
        Alcotest.test_case "spec table shape" `Quick test_spec_table_shape;
      ] );
    ( "accel.l1.flavors",
      [
        Alcotest.test_case "MSI: DataE as DataM" `Quick test_msi_treats_data_e_as_data_m;
        Alcotest.test_case "VI: GetM only" `Quick test_vi_sends_only_getm;
      ] );
    ( "accel.l1.integration",
      [
        Alcotest.test_case "end-to-end load/store/recall" `Quick test_end_to_end_load_store;
        Alcotest.test_case "eviction writeback" `Quick test_eviction_writes_back_through_home;
        Alcotest.test_case "Put/Invalidate race" `Quick test_put_invalidate_race;
        Alcotest.test_case "random workload, all flavors" `Quick test_random_workload_all_flavors;
        QCheck_alcotest.to_alcotest prop_random_workloads;
      ] );
  ]
