(* Tests for the inclusive MESI two-level host protocol: directed scenarios
   for the states and races the paper counts (six L1 transients, ack counting
   told by the L2, cache-to-cache forwards, back-invalidation), plus random
   stress across seeds. *)

module Engine = Xguard_sim.Engine
module Rng = Xguard_sim.Rng
module M = Xguard_host_mesi
module Sys_b = Xguard_harness.Mesi_system
module Tester = Xguard_harness.Random_tester

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let a0 = Addr.block 0

let state_name = function `I -> "I" | `S -> "S" | `E -> "E" | `M -> "M" | `Transient -> "T"

let check_state msg expected cache addr =
  Alcotest.(check string) msg (state_name expected) (state_name (M.L1.probe cache addr))

let fixed = Xguard_network.Network.Ordered { latency = 5 }

let make ?(num_cpus = 2) ?(variant = M.L2.Xg_ready) ?(ordering = fixed) ?(seed = 1)
    ?(l1_sets = 2) ?(l1_ways = 2) ?(l2_sets = 4) ?(l2_ways = 4) () =
  Sys_b.create ~num_cpus ~variant ~ordering ~seed ~l1_sets ~l1_ways ~l2_sets ~l2_ways ()

let run sys = ignore (Engine.run (Sys_b.engine sys))

let do_load sys cpu addr =
  let got = ref None in
  let port = M.L1.cpu_port (Sys_b.cpus sys).(cpu) in
  let accepted = port.Access.issue (Access.load addr) ~on_done:(fun v -> got := Some v) in
  check_bool "load accepted" true accepted;
  run sys;
  match !got with Some v -> v | None -> Alcotest.fail "load never completed"

let do_store sys cpu addr v =
  let done_ = ref false in
  let port = M.L1.cpu_port (Sys_b.cpus sys).(cpu) in
  check_bool "store accepted" true
    (port.Access.issue (Access.store addr (Data.token v)) ~on_done:(fun _ -> done_ := true));
  run sys;
  check_bool "store completed" true !done_

let test_cold_load_grants_e () =
  let sys = make () in
  check_int "memory value" (Data.initial a0) (do_load sys 0 a0);
  check_state "exclusive grant on cold read" `E (Sys_b.cpus sys).(0) a0;
  match M.L2.probe (Sys_b.l2 sys) a0 with
  | `Owned n -> Alcotest.(check string) "L2 records owner" "cpu0" (Node.name n)
  | _ -> Alcotest.fail "L2 should record an owner"

let test_read_sharing_via_owner_forward () =
  let sys = make () in
  do_store sys 0 a0 42;
  check_state "writer in M" `M (Sys_b.cpus sys).(0) a0;
  (* Second reader: L2 forwards to the owner, who sends data directly and
     copies back; both end shared. *)
  check_int "dirty data forwarded L1-to-L1" 42 (do_load sys 1 a0);
  check_state "old owner demoted to S" `S (Sys_b.cpus sys).(0) a0;
  check_state "reader in S" `S (Sys_b.cpus sys).(1) a0;
  (match M.L2.probe (Sys_b.l2 sys) a0 with
  | `Sharers 2 -> ()
  | _ -> Alcotest.fail "L2 should record two sharers");
  check_bool "copyback made L2 dirty, memory stale" true
    (Memory_model.read (Sys_b.memory sys) a0 <> Data.token 42)

let test_store_counts_sharer_acks () =
  let sys = make ~num_cpus:3 () in
  ignore (do_load sys 0 a0);
  ignore (do_load sys 1 a0);
  ignore (do_load sys 2 a0);
  (* Upgrade from S: the L2 tells cpu2 to expect 2 acks, sharers ack the
     requestor directly. *)
  do_store sys 2 a0 7;
  check_state "sharer 0 invalidated" `I (Sys_b.cpus sys).(0) a0;
  check_state "sharer 1 invalidated" `I (Sys_b.cpus sys).(1) a0;
  check_state "upgrader in M" `M (Sys_b.cpus sys).(2) a0;
  check_int "new value visible everywhere" 7 (do_load sys 0 a0)

let test_getm_forwarded_to_owner () =
  let sys = make () in
  do_store sys 0 a0 1;
  do_store sys 1 a0 2;
  check_state "previous owner invalid" `I (Sys_b.cpus sys).(0) a0;
  check_state "new owner in M" `M (Sys_b.cpus sys).(1) a0;
  check_int "chained ownership readable" 2 (do_load sys 0 a0)

let test_l1_eviction_putm () =
  let sys = make ~l1_sets:1 ~l1_ways:1 () in
  do_store sys 0 a0 9;
  let port = M.L1.cpu_port (Sys_b.cpus sys).(0) in
  check_bool "rejected during eviction" false
    (port.Access.issue (Access.load (Addr.block 1)) ~on_done:(fun _ -> ()));
  run sys;
  check_state "victim gone" `I (Sys_b.cpus sys).(0) a0;
  ignore (do_load sys 0 (Addr.block 1));
  (* The dirty data now lives at the L2 (inclusive), not yet in memory. *)
  (match M.L2.probe (Sys_b.l2 sys) a0 with
  | `No_l1 -> ()
  | _ -> Alcotest.fail "L2 should hold the block with no L1 copies");
  check_int "read back through L2" 9 (do_load sys 1 a0)

let test_l1_puts_tracked () =
  let sys = make ~l1_sets:1 ~l1_ways:1 () in
  ignore (do_load sys 0 a0);
  ignore (do_load sys 1 a0);
  (* cpu0 evicts its S copy: explicit PutS, exact sharer tracking shrinks. *)
  let port = M.L1.cpu_port (Sys_b.cpus sys).(0) in
  ignore (port.Access.issue (Access.load (Addr.block 1)) ~on_done:(fun _ -> ()));
  run sys;
  (match M.L2.probe (Sys_b.l2 sys) a0 with
  | `Sharers 1 -> ()
  | `Owned _ | `Sharers _ | `No_l1 | `Absent -> Alcotest.fail "expected exactly one sharer")

let test_l2_replacement_back_invalidates () =
  (* A tiny L2 forces replacement of a line whose owner is an L1: the L2 must
     recall it (inclusivity) and write dirty data to memory. *)
  let sys = make ~l2_sets:1 ~l2_ways:2 ~l1_sets:4 ~l1_ways:4 () in
  do_store sys 0 a0 11;
  ignore (do_load sys 0 (Addr.block 1));
  (* Third distinct block: L2 set overflows, recalling one of the first two. *)
  ignore (do_load sys 1 (Addr.block 2));
  run sys;
  check_int "recalled dirty data reached memory" 11 (Memory_model.read (Sys_b.memory sys) a0);
  check_state "owner back-invalidated" `I (Sys_b.cpus sys).(0) a0

let test_stress_small ~variant ~num_cpus ~seed =
  let sys =
    Sys_b.create ~num_cpus ~variant
      ~ordering:(Xguard_network.Network.Unordered { min_latency = 1; max_latency = 40 })
      ~seed ~l1_sets:1 ~l1_ways:2 ~l2_sets:2 ~l2_ways:2 ()
  in
  let outcome =
    Tester.run ~engine:(Sys_b.engine sys) ~rng:(Rng.create ~seed:(seed + 77))
      ~ports:(Sys_b.cpu_ports sys)
      ~addresses:(Array.init 6 Addr.block)
      ~ops_per_core:400 ()
  in
  if outcome.Tester.data_errors > 0 then
    Alcotest.failf "seed %d: %d data errors" seed outcome.Tester.data_errors;
  if outcome.Tester.deadlocked then Alcotest.failf "seed %d: deadlock" seed;
  check_int "all ops" (400 * num_cpus) outcome.Tester.ops_completed

let test_stress_sweep () =
  for seed = 1 to 8 do
    test_stress_small ~variant:M.L2.Xg_ready ~num_cpus:3 ~seed
  done

let test_stress_baseline_strict () =
  for seed = 1 to 4 do
    test_stress_small ~variant:M.L2.Baseline ~num_cpus:2 ~seed
  done

let test_stress_tiny_l2_heavy_recall () =
  (* L2 smaller than the L1 working set: constant back-invalidation. *)
  let sys =
    Sys_b.create ~num_cpus:3 ~variant:M.L2.Xg_ready
      ~ordering:(Xguard_network.Network.Unordered { min_latency = 1; max_latency = 30 })
      ~seed:5 ~l1_sets:2 ~l1_ways:2 ~l2_sets:1 ~l2_ways:2 ()
  in
  let outcome =
    Tester.run ~engine:(Sys_b.engine sys) ~rng:(Rng.create ~seed:55)
      ~ports:(Sys_b.cpu_ports sys)
      ~addresses:(Array.init 8 Addr.block)
      ~ops_per_core:300 ()
  in
  check_int "no data errors" 0 outcome.Tester.data_errors;
  check_bool "no deadlock" false outcome.Tester.deadlocked;
  check_bool "recalls actually happened" true
    (Xguard_stats.Counter.Group.get (M.L2.stats (Sys_b.l2 sys)) "l2_eviction" > 0)

let prop_stress_random_seeds =
  QCheck2.Test.make ~name:"mesi random stress (random seeds)" ~count:15
    QCheck2.Gen.(int_range 100 100_000)
    (fun seed ->
      test_stress_small ~variant:M.L2.Xg_ready ~num_cpus:3 ~seed;
      true)

let tests =
  [
    ( "mesi.scenarios",
      [
        Alcotest.test_case "cold load grants E" `Quick test_cold_load_grants_e;
        Alcotest.test_case "read sharing via owner fwd" `Quick
          test_read_sharing_via_owner_forward;
        Alcotest.test_case "store counts sharer acks" `Quick test_store_counts_sharer_acks;
        Alcotest.test_case "GetM forwarded to owner" `Quick test_getm_forwarded_to_owner;
        Alcotest.test_case "L1 eviction (PutM)" `Quick test_l1_eviction_putm;
        Alcotest.test_case "PutS shrinks sharers" `Quick test_l1_puts_tracked;
        Alcotest.test_case "L2 replacement back-invalidates" `Quick
          test_l2_replacement_back_invalidates;
      ] );
    ( "mesi.stress",
      [
        Alcotest.test_case "seed sweep" `Quick test_stress_sweep;
        Alcotest.test_case "baseline strict" `Quick test_stress_baseline_strict;
        Alcotest.test_case "tiny L2, heavy recall" `Quick test_stress_tiny_l2_heavy_recall;
        QCheck_alcotest.to_alcotest prop_stress_random_seeds;
      ] );
  ]
