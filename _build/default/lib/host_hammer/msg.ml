type get_kind = Get_s | Get_s_only | Get_m

type body =
  | Get of { kind : get_kind }
  | Put
  | Wb_data of { data : Data.t; dirty : bool }
  | Unblock of { exclusive : bool }
  | Fwd of { kind : get_kind; requestor : Node.t }
  | Wb_ack
  | Wb_nack
  | Mem_data of { data : Data.t }
  | Peer_ack of { shared : bool }
  | Peer_data of { data : Data.t; dirty : bool }

type t = { addr : Addr.t; body : body }

let size t =
  match t.body with
  | Wb_data _ | Mem_data _ | Peer_data _ -> Xguard_network.Network.data_size
  | Get _ | Put | Unblock _ | Fwd _ | Wb_ack | Wb_nack | Peer_ack _ ->
      Xguard_network.Network.control_size

let get_kind_to_string = function
  | Get_s -> "GetS"
  | Get_s_only -> "GetS_only"
  | Get_m -> "GetM"

let pp fmt t =
  let body_str =
    match t.body with
    | Get { kind } -> get_kind_to_string kind
    | Put -> "Put"
    | Wb_data { dirty; _ } -> if dirty then "WbData(dirty)" else "WbData(clean)"
    | Unblock { exclusive } -> if exclusive then "Unblock(excl)" else "Unblock"
    | Fwd { kind; requestor } ->
        Printf.sprintf "Fwd_%s(for %s)" (get_kind_to_string kind) (Node.name requestor)
    | Wb_ack -> "WbAck"
    | Wb_nack -> "WbNack"
    | Mem_data _ -> "MemData"
    | Peer_ack { shared } -> if shared then "PeerAck(shared)" else "PeerAck"
    | Peer_data { dirty; _ } -> if dirty then "PeerData(dirty)" else "PeerData(clean)"
  in
  Format.fprintf fmt "%s %a" body_str Addr.pp t.addr
