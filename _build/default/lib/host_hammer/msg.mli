(** Messages of the Hammer-like exclusive MOESI host protocol (paper §3.2.1).

    The protocol is broadcast-based, modelled on gem5's MOESI_hammer: requests
    go to the directory, which forwards them to every other cache; every cache
    responds to every forwarded request (data if owner, ack otherwise), and the
    requestor counts responses.  Writebacks are two-phase (Put announcement,
    WbAck, then WbData), and a Put that races with an ownership transfer is
    answered with a WbNack.

    [Get_s_only] is the first of the paper's three host modifications for
    Transactional Crossing Guard: a non-upgradable read request whose grant is
    never exclusive, used by XG for blocks the accelerator may only read. *)

type get_kind = Get_s | Get_s_only | Get_m

type body =
  (* cache -> directory *)
  | Get of { kind : get_kind }
  | Put  (** first phase of an owner writeback (M/O/E) *)
  | Wb_data of { data : Data.t; dirty : bool }  (** second phase, after WbAck *)
  | Unblock of { exclusive : bool }
      (** requestor ends the transaction; [exclusive] reports whether it now
          owns the block, so the directory can update its owner record *)
  (* directory -> caches *)
  | Fwd of { kind : get_kind; requestor : Node.t }
  | Wb_ack
  | Wb_nack
  | Mem_data of { data : Data.t }  (** speculative memory response *)
  (* cache -> requestor cache *)
  | Peer_ack of { shared : bool }
      (** [shared] true when the responder keeps a shared copy *)
  | Peer_data of { data : Data.t; dirty : bool }

type t = { addr : Addr.t; body : body }

val size : t -> int
val get_kind_to_string : get_kind -> string
val pp : Format.formatter -> t -> unit

