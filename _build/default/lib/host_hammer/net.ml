(** The Hammer host network: one unordered interconnect carrying {!Msg.t}
    between the caches, the directory and the Crossing Guard port. *)

include Xguard_network.Network.Make (Msg)
