lib/host_hammer/l1l2.ml: Access Cache_array Data Msg Net Node Tbe_table Xguard_sim Xguard_stats
