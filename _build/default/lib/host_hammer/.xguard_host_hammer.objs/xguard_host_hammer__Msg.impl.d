lib/host_hammer/msg.ml: Addr Data Format Node Printf Xguard_network
