lib/host_hammer/directory.ml: Addr Hashtbl List Memory_model Msg Net Node Queue Xguard_sim Xguard_stats
