lib/host_hammer/l1l2.mli: Access Addr Net Node Xguard_sim Xguard_stats
