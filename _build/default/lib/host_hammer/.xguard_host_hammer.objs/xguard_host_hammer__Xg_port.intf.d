lib/host_hammer/xg_port.mli: Net Node Xguard_sim Xguard_stats Xguard_xg
