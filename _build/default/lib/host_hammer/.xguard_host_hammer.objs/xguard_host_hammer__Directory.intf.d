lib/host_hammer/directory.mli: Addr Memory_model Net Node Xguard_sim Xguard_stats
