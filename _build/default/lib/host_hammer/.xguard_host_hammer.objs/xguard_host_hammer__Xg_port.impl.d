lib/host_hammer/xg_port.ml: Addr Data Hashtbl Msg Net Node Tbe_table Xguard_sim Xguard_stats Xguard_xg
