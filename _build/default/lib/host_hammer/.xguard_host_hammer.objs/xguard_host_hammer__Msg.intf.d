lib/host_hammer/msg.mli: Addr Data Format Node
