lib/host_hammer/net.ml: Msg Xguard_network
