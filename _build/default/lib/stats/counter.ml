type t = { name : string; mutable value : int }

let create name = { name; value = 0 }
let name t = t.name
let incr t = t.value <- t.value + 1
let add t n = t.value <- t.value + n
let get t = t.value
let reset t = t.value <- 0

let make_counter = create
let incr_counter = incr
let add_counter = add

module Group = struct
  type counter = t

  type t = {
    group_name : string;
    table : (string, counter) Hashtbl.t;
    mutable order : counter list; (* reversed creation order *)
  }

  let create group_name = { group_name; table = Hashtbl.create 16; order = [] }
  let name g = g.group_name

  let counter g counter_name =
    match Hashtbl.find_opt g.table counter_name with
    | Some c -> c
    | None ->
        let c = make_counter counter_name in
        Hashtbl.add g.table counter_name c;
        g.order <- c :: g.order;
        c

  let incr g counter_name = incr_counter (counter g counter_name)
  let add g counter_name n = add_counter (counter g counter_name) n

  let get g counter_name =
    match Hashtbl.find_opt g.table counter_name with
    | Some c -> c.value
    | None -> 0

  let to_list g = List.rev_map (fun c -> (c.name, c.value)) g.order
  let reset_all g = List.iter reset g.order

  let pp fmt g =
    Format.fprintf fmt "@[<v2>%s:" g.group_name;
    List.iter (fun (n, v) -> Format.fprintf fmt "@,%-40s %10d" n v) (to_list g);
    Format.fprintf fmt "@]"
end
