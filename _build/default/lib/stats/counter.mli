(** Named monotonic counters.

    Counters are the unit of bookkeeping for every simulated component: message
    counts, bytes moved, protocol events, guarantee violations.  They live in a
    {!Group} so a component can dump all of its statistics by name at the end
    of a run. *)

type t

val create : string -> t
(** A free-standing counter (not attached to any group). *)

val name : t -> string
val incr : t -> unit
val add : t -> int -> unit
val get : t -> int
val reset : t -> unit

(** An ordered collection of counters, keyed by name.  Asking for the same name
    twice returns the same counter, so call sites can be written without
    plumbing counter handles around. *)
module Group : sig
  type counter = t
  type t

  val create : string -> t
  val name : t -> string

  val counter : t -> string -> counter
  (** [counter g name] finds or creates the counter [name] in [g]. *)

  val incr : t -> string -> unit
  val add : t -> string -> int -> unit
  val get : t -> string -> int
  (** [get g name] is 0 when the counter was never touched. *)

  val to_list : t -> (string * int) list
  (** Counters in creation order. *)

  val reset_all : t -> unit
  val pp : Format.formatter -> t -> unit
end
