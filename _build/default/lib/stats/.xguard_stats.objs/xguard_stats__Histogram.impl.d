lib/stats/histogram.ml: Array Format Printf
