lib/workload/workload.ml: Access Addr Array Data List Xguard_sim
