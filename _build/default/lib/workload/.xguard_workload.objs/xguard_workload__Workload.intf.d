lib/workload/workload.mli: Access Xguard_sim
