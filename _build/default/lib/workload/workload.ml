module Rng = Xguard_sim.Rng

type stream = { accesses : Access.t array; max_outstanding : int }

type t = {
  name : string;
  description : string;
  make_streams : cores:int -> rng:Rng.t -> stream array;
  cpu_streams : cpus:int -> rng:Rng.t -> stream array;
  footprint_blocks : int;
}

let no_cpu ~cpus:_ ~rng:_ = [||]

(* Split [accesses] round-robin by contiguous chunks across [cores]. *)
let partition accesses cores ~max_outstanding =
  let n = Array.length accesses in
  Array.init cores (fun c ->
      let lo = c * n / cores and hi = (c + 1) * n / cores in
      { accesses = Array.sub accesses lo (hi - lo); max_outstanding })

let fresh_token =
  let counter = ref 10_000_000 in
  fun () ->
    incr counter;
    Data.token !counter

let streaming ?(length = 2048) ?(write_fraction = 0.25) () =
  let make_streams ~cores ~rng =
    let accesses =
      Array.init length (fun i ->
          let addr = Addr.block i in
          if Rng.chance rng write_fraction then Access.store addr (fresh_token ())
          else Access.load addr)
    in
    partition accesses cores ~max_outstanding:8
  in
  {
    name = "streaming";
    description = "sequential sweep, read-mostly, deep MLP";
    make_streams;
    cpu_streams = no_cpu;
    footprint_blocks = length;
  }

let blocked ?(tiles = 48) ?(tile_blocks = 16) ?(reuse = 3) () =
  let make_streams ~cores ~rng =
    ignore rng;
    let ops = ref [] in
    for tile = 0 to tiles - 1 do
      let base = tile * tile_blocks in
      (* Load the tile [reuse] times (block-based computation)... *)
      for _ = 1 to reuse do
        for b = 0 to tile_blocks - 1 do
          ops := Access.load (Addr.block (base + b)) :: !ops
        done
      done;
      (* ...then write the output half. *)
      for b = 0 to (tile_blocks / 2) - 1 do
        ops := Access.store (Addr.block (base + b)) (fresh_token ()) :: !ops
      done
    done;
    partition (Array.of_list (List.rev !ops)) cores ~max_outstanding:4
  in
  {
    name = "blocked";
    description = "video-decoder-like tile processing";
    make_streams;
    cpu_streams = no_cpu;
    footprint_blocks = tiles * tile_blocks;
  }

let graph ?(nodes = 256) ?(steps = 1500) () =
  let make_streams ~cores ~rng =
    Array.init cores (fun _ ->
        let accesses =
          Array.init (steps / cores) (fun _ ->
              (* Pointer chase: the next node is "read from" the current one;
                 the simulator models the dependence with a single
                 outstanding access. *)
              let node = Rng.int rng nodes in
              if Rng.chance rng 0.1 then Access.store (Addr.block node) (fresh_token ())
              else Access.load (Addr.block node))
        in
        { accesses; max_outstanding = 1 })
  in
  {
    name = "graph";
    description = "data-dependent traversal, one access in flight";
    make_streams;
    cpu_streams = no_cpu;
    footprint_blocks = nodes;
  }

let write_coalesce ?(regions = 64) ?(region_blocks = 16) () =
  let make_streams ~cores ~rng =
    ignore rng;
    let ops = ref [] in
    for r = 0 to regions - 1 do
      for b = 0 to region_blocks - 1 do
        ops := Access.store (Addr.block ((r * region_blocks) + b)) (fresh_token ()) :: !ops
      done
    done;
    partition (Array.of_list (List.rev !ops)) cores ~max_outstanding:16
  in
  {
    name = "write-coalesce";
    description = "GPGPU-style bursts of contiguous stores";
    make_streams;
    cpu_streams = no_cpu;
    footprint_blocks = regions * region_blocks;
  }

let producer_consumer ?(buffer_blocks = 32) ?(rounds = 24) () =
  (* Input buffer at [0, buffer), output buffer at [buffer, 2*buffer).
     Each round the accelerator reads every input and writes every output
     while the CPUs refresh inputs and poll outputs: fine-grained,
     data-dependent sharing where the particular blocks are not known a
     priori — the motivating case for coherent accelerators. *)
  let make_streams ~cores ~rng =
    ignore rng;
    let ops = ref [] in
    for _ = 1 to rounds do
      for b = 0 to buffer_blocks - 1 do
        ops := Access.load (Addr.block b) :: !ops
      done;
      for b = 0 to buffer_blocks - 1 do
        ops := Access.store (Addr.block (buffer_blocks + b)) (fresh_token ()) :: !ops
      done
    done;
    partition (Array.of_list (List.rev !ops)) cores ~max_outstanding:4
  in
  let cpu_streams ~cpus ~rng =
    ignore rng;
    Array.init cpus (fun c ->
        let ops = ref [] in
        for _ = 1 to rounds do
          for b = 0 to buffer_blocks - 1 do
            if b mod cpus = c then ops := Access.store (Addr.block b) (fresh_token ()) :: !ops
          done;
          for b = 0 to buffer_blocks - 1 do
            if b mod cpus = c then ops := Access.load (Addr.block (buffer_blocks + b)) :: !ops
          done
        done;
        { accesses = Array.of_list (List.rev !ops); max_outstanding = 4 })
  in
  {
    name = "producer-consumer";
    description = "CPU writes inputs / reads outputs around the accelerator";
    make_streams;
    cpu_streams;
    footprint_blocks = 2 * buffer_blocks;
  }

(* Accelerator and CPUs sweep the same read-only region concurrently: the
   accelerator's grants are shared, so its evictions are PutS — the traffic
   experiment E4 measures (and A2's sharing fast paths). *)
let shared_sweep ?(length = 512) ?(passes = 2) () =
  let sweep () =
    let ops = ref [] in
    for _ = 1 to passes do
      for i = 0 to length - 1 do
        ops := Access.load (Addr.block i) :: !ops
      done
    done;
    Array.of_list (List.rev !ops)
  in
  {
    name = "shared-sweep";
    description = "CPUs and accelerator read the same region";
    make_streams = (fun ~cores ~rng -> ignore rng; partition (sweep ()) cores ~max_outstanding:8);
    cpu_streams =
      (fun ~cpus ~rng ->
        ignore rng;
        Array.init cpus (fun _ -> { accesses = sweep (); max_outstanding = 8 }));
    footprint_blocks = length;
  }

let all () =
  [ streaming (); blocked (); graph (); write_coalesce (); producer_consumer () ]
