(** Synthetic accelerator workloads.

    The paper evaluates with gem5-gpu running GPGPU kernels as "a proxy for a
    general high-performing accelerator"; without that testbed we generate
    the access patterns its introduction motivates: streaming, block-based
    (video decoder), data-dependent (graph processing), write-coalescing
    (GPGPU) and fine-grained CPU-accelerator sharing.  What matters for the
    reproduced results is locality, read/write mix and memory-level
    parallelism, which these parameterized generators control.

    A workload is, per accelerator core, a finite stream of accesses plus the
    number the core keeps in flight ([max_outstanding] = 1 models
    data-dependent chains). *)

type stream = {
  accesses : Access.t array;
  max_outstanding : int;
}

type t = {
  name : string;
  description : string;
  make_streams : cores:int -> rng:Xguard_sim.Rng.t -> stream array;
      (** the work, partitioned across [cores] accelerator cores *)
  cpu_streams : cpus:int -> rng:Xguard_sim.Rng.t -> stream array;
      (** concurrent CPU-side activity ([||] for accelerator-only kernels) *)
  footprint_blocks : int;  (** highest block address touched, for sizing *)
}

val streaming : ?length:int -> ?write_fraction:float -> unit -> t
(** Sequential sweep with a read-mostly mix and deep MLP. *)

val blocked : ?tiles:int -> ?tile_blocks:int -> ?reuse:int -> unit -> t
(** Video-decoder-like: load a tile, reuse it, write results, move on. *)

val graph : ?nodes:int -> ?steps:int -> unit -> t
(** Data-dependent pointer chasing over a node pool; one access in flight. *)

val write_coalesce : ?regions:int -> ?region_blocks:int -> unit -> t
(** GPGPU-style bursts of stores to contiguous regions. *)

val producer_consumer : ?buffer_blocks:int -> ?rounds:int -> unit -> t
(** Fine-grained sharing: CPUs write inputs and read results while the
    accelerator reads inputs and writes results in the same rounds. *)

val shared_sweep : ?length:int -> ?passes:int -> unit -> t
(** CPUs and the accelerator read the same region concurrently, so the
    accelerator holds shared copies and evicts with PutS — the workload for
    the PutS-overhead experiment (E4). *)

val all : unit -> t list
(** The five evaluation workloads with default parameters. *)
