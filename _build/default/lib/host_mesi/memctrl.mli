(** Memory controller behind the MESI L2: serves fetches and accepts
    writebacks.  The single L2 serializes per-block traffic, so the controller
    is a latency model plus the backing {!Memory_model}. *)

type t

val create :
  engine:Xguard_sim.Engine.t ->
  net:Net.t ->
  name:string ->
  node:Node.t ->
  memory:Memory_model.t ->
  ?latency:int ->
  unit ->
  t

val node : t -> Node.t
val stats : t -> Xguard_stats.Counter.Group.t
