lib/host_mesi/xg_port.mli: Net Node Xguard_sim Xguard_stats Xguard_xg
