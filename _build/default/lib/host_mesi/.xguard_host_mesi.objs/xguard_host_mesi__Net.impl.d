lib/host_mesi/net.ml: Msg Xguard_network
