lib/host_mesi/memctrl.mli: Memory_model Net Node Xguard_sim Xguard_stats
