lib/host_mesi/l1.mli: Access Addr Net Node Xguard_sim Xguard_stats
