lib/host_mesi/msg.ml: Addr Data Format Node Printf Xguard_network
