lib/host_mesi/memctrl.ml: Memory_model Msg Net Node Xguard_sim Xguard_stats
