lib/host_mesi/l2.mli: Addr Net Node Xguard_sim Xguard_stats
