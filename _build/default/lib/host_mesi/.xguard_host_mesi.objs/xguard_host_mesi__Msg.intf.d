lib/host_mesi/msg.mli: Addr Data Format Node
