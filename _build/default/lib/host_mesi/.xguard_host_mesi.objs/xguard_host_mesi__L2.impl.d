lib/host_mesi/l2.ml: Addr Cache_array Data Hashtbl List Msg Net Node Queue Xguard_sim Xguard_stats
