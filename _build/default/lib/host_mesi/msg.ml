type get_kind = Get_s | Get_s_only | Get_m

type grant = Grant_s | Grant_e | Grant_m

type body =
  | Get of { kind : get_kind }
  | Put_s
  | Put_m of { data : Data.t; dirty : bool }
  | Unblock
  | L2_data of { data : Data.t; grant : grant; acks : int }
  | Wb_ack
  | Inv of { reply_to : Node.t }
  | Recall
  | Fwd of { kind : get_kind; requestor : Node.t }
  | Inv_ack
  | Owner_data of { data : Data.t; dirty : bool; grant : grant }
  | Recall_data of { data : Data.t; dirty : bool }
  | Recall_ack
  | Copyback of { data : Data.t; dirty : bool }
  | Fetch
  | Mem_data of { data : Data.t }
  | Mem_wb of { data : Data.t }
  | Mem_wb_ack

type t = { addr : Addr.t; body : body }

let size t =
  match t.body with
  | Put_m _ | L2_data _ | Owner_data _ | Recall_data _ | Copyback _ | Mem_data _ | Mem_wb _
    ->
      Xguard_network.Network.data_size
  | Get _ | Put_s | Unblock | Wb_ack | Inv _ | Recall | Fwd _ | Inv_ack | Recall_ack | Fetch
  | Mem_wb_ack ->
      Xguard_network.Network.control_size

let get_kind_to_string = function
  | Get_s -> "GetS"
  | Get_s_only -> "GetS_only"
  | Get_m -> "GetM"

let grant_to_string = function Grant_s -> "S" | Grant_e -> "E" | Grant_m -> "M"

let pp fmt t =
  let body_str =
    match t.body with
    | Get { kind } -> get_kind_to_string kind
    | Put_s -> "PutS"
    | Put_m { dirty; _ } -> if dirty then "PutM(dirty)" else "PutM(clean)"
    | Unblock -> "Unblock"
    | L2_data { grant; acks; _ } -> Printf.sprintf "L2Data(%s,acks=%d)" (grant_to_string grant) acks
    | Wb_ack -> "WbAck"
    | Inv { reply_to } -> Printf.sprintf "Inv(->%s)" (Node.name reply_to)
    | Recall -> "Recall"
    | Fwd { kind; requestor } ->
        Printf.sprintf "Fwd_%s(for %s)" (get_kind_to_string kind) (Node.name requestor)
    | Inv_ack -> "InvAck"
    | Owner_data { grant; _ } -> Printf.sprintf "OwnerData(%s)" (grant_to_string grant)
    | Recall_data _ -> "RecallData"
    | Recall_ack -> "RecallAck"
    | Copyback _ -> "Copyback"
    | Fetch -> "Fetch"
    | Mem_data _ -> "MemData"
    | Mem_wb _ -> "MemWb"
    | Mem_wb_ack -> "MemWbAck"
  in
  Format.fprintf fmt "%s %a" body_str Addr.pp t.addr
