(** Messages of the inclusive MESI two-level host protocol (paper §3.2.2).

    Modelled on gem5's MESI_Two_Level: private L1s above a shared, inclusive
    L2 that tracks exact sharers and owners.  The L2 is the ordering point.
    Cache-to-cache transfers happen on the L2's orders: the requestor is told
    how many invalidation acks to expect ([L2_data.acks]); sharers send their
    acks directly to the requestor; an exclusive owner forwards data directly
    to the requestor (and a copyback to the L2 on a read).

    [Get_s_only] is the non-upgradable read (gem5's GET_INSTR): its grant is
    never exclusive, which Crossing Guard needs for read-only pages. *)

type get_kind = Get_s | Get_s_only | Get_m

type grant = Grant_s | Grant_e | Grant_m

type body =
  (* L1 -> L2 *)
  | Get of { kind : get_kind }
  | Put_s  (** evict a shared copy; exact sharer tracking wants to know *)
  | Put_m of { data : Data.t; dirty : bool }  (** evict an exclusive copy *)
  | Unblock  (** requestor ends the transaction at the L2 *)
  (* L2 -> requestor L1 *)
  | L2_data of { data : Data.t; grant : grant; acks : int }
      (** grant plus the number of sharer InvAcks to collect *)
  | Wb_ack
  (* L2 -> holder L1s *)
  | Inv of { reply_to : Node.t }  (** drop the S copy, InvAck to [reply_to] *)
  | Recall  (** L2 replacement: owner must return the block to the L2 *)
  | Fwd of { kind : get_kind; requestor : Node.t }
      (** owner forwards the block directly to [requestor] *)
  (* L1 -> L1 *)
  | Inv_ack
  | Owner_data of { data : Data.t; dirty : bool; grant : grant }
  (* L1 -> L2 *)
  | Recall_data of { data : Data.t; dirty : bool }
  | Recall_ack  (** only from a confused holder; the modified L2 tolerates it *)
  | Copyback of { data : Data.t; dirty : bool }
      (** owner's copy back to the L2 on a forwarded read *)
  (* L2 <-> memory controller *)
  | Fetch
  | Mem_data of { data : Data.t }
  | Mem_wb of { data : Data.t }
  | Mem_wb_ack

type t = { addr : Addr.t; body : body }

val size : t -> int
val get_kind_to_string : get_kind -> string
val grant_to_string : grant -> string
val pp : Format.formatter -> t -> unit
