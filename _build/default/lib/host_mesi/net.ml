(** The MESI host network: one unordered interconnect carrying {!Msg.t}
    between L1s, the shared L2, the memory controller and the Crossing Guard
    port. *)

include Xguard_network.Network.Make (Msg)
