lib/network/network.ml: Hashtbl Printf Xguard_proto Xguard_sim
