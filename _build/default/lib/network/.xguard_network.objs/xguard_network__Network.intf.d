lib/network/network.mli: Xguard_proto Xguard_sim
