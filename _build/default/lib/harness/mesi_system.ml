module Engine = Xguard_sim.Engine
module Rng = Xguard_sim.Rng
module M = Xguard_host_mesi

type t = {
  engine : Engine.t;
  rng : Rng.t;
  registry : Node.Registry.t;
  net : M.Net.t;
  memory : Memory_model.t;
  l2 : M.L2.t;
  cpus : M.L1.t array;
}

let engine t = t.engine
let rng t = t.rng
let registry t = t.registry
let net t = t.net
let memory t = t.memory
let l2 t = t.l2
let cpus t = t.cpus

let create ?(num_cpus = 2) ?(variant = M.L2.Xg_ready) ?(l1_sets = 2) ?(l1_ways = 2)
    ?(l2_sets = 4) ?(l2_ways = 4)
    ?(ordering = Xguard_network.Network.Unordered { min_latency = 2; max_latency = 30 })
    ?(seed = 1) ?(mem_latency = 60) () =
  let engine = Engine.create () in
  let rng = Rng.create ~seed in
  let registry = Node.Registry.create () in
  let net = M.Net.create ~engine ~rng:(Rng.split rng) ~name:"mesi.net" ~ordering () in
  let memory = Memory_model.create () in
  let mem_node = Node.Registry.fresh registry "memctrl" in
  let _memctrl =
    M.Memctrl.create ~engine ~net ~name:"memctrl" ~node:mem_node ~memory ~latency:mem_latency
      ()
  in
  let l2_node = Node.Registry.fresh registry "l2" in
  let l2 =
    M.L2.create ~engine ~net ~name:"l2" ~node:l2_node ~memctrl:mem_node ~variant ~sets:l2_sets
      ~ways:l2_ways ()
  in
  let cpus =
    Array.init num_cpus (fun i ->
        let name = Printf.sprintf "cpu%d" i in
        let node = Node.Registry.fresh registry name in
        M.L1.create ~engine ~net ~name ~node ~l2:l2_node ~sets:l1_sets ~ways:l1_ways ())
  in
  { engine; rng; registry; net; memory; l2; cpus }

let add_l1_node t name = Node.Registry.fresh t.registry name

let cpu_ports t = Array.map M.L1.cpu_port t.cpus
