(** Builder for a Hammer-host system: CPUs + directory + memory on one
    unordered network, with room to attach a Crossing Guard port or an
    accelerator-side cache as an extra peer.

    Construction is two-phase because the broadcast protocol needs the final
    cache census: create the system, attach any extra cache nodes, then
    {!finalize} to distribute peer counts and the directory's forward list. *)

type t

val create :
  ?num_cpus:int ->
  ?variant:Xguard_host_hammer.L1l2.variant ->
  ?sets:int ->
  ?ways:int ->
  ?ordering:Xguard_network.Network.ordering ->
  ?seed:int ->
  ?dir_latency:int ->
  ?mem_latency:int ->
  ?dir_occupancy:int ->
  unit ->
  t

val engine : t -> Xguard_sim.Engine.t
val rng : t -> Xguard_sim.Rng.t
val registry : t -> Node.Registry.t
val net : t -> Xguard_host_hammer.Net.t
val memory : t -> Memory_model.t
val directory : t -> Xguard_host_hammer.Directory.t
val cpus : t -> Xguard_host_hammer.L1l2.t array

val add_cache_node : t -> string -> count_peers:(int -> unit) -> Node.t
(** Reserve a network node for an additional cache-like peer (the XG port, or
    an unsafe accelerator-side cache).  [count_peers] is called by
    {!finalize} with the number of *other* caches. *)

val finalize : t -> unit
(** Set every cache's peer count and the directory's forward list.  Must be
    called exactly once, after all caches exist. *)

val cpu_ports : t -> Access.port array
val total_caches : t -> int
