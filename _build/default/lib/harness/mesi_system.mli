(** Builder for a MESI-host system: private L1s over a shared inclusive L2 and
    a memory controller, on one unordered network.  Extra L1-position peers
    (the XG port, or an unsafe accelerator-side cache) can be attached before
    use; unlike the Hammer broadcast protocol no census finalization is
    needed, because only the L2 addresses its peers. *)

type t

val create :
  ?num_cpus:int ->
  ?variant:Xguard_host_mesi.L2.variant ->
  ?l1_sets:int ->
  ?l1_ways:int ->
  ?l2_sets:int ->
  ?l2_ways:int ->
  ?ordering:Xguard_network.Network.ordering ->
  ?seed:int ->
  ?mem_latency:int ->
  unit ->
  t

val engine : t -> Xguard_sim.Engine.t
val rng : t -> Xguard_sim.Rng.t
val registry : t -> Node.Registry.t
val net : t -> Xguard_host_mesi.Net.t
val memory : t -> Memory_model.t
val l2 : t -> Xguard_host_mesi.L2.t
val cpus : t -> Xguard_host_mesi.L1.t array
val add_l1_node : t -> string -> Node.t
(** Reserve a network node in L1 position (for the XG port or an
    accelerator-side cache). *)

val cpu_ports : t -> Access.port array
