(** The reproduced tables and figures (see DESIGN.md's experiment index).

    Each experiment builds its systems, runs them and renders one or more
    plain-text tables in the layout of the paper's artifact.  The [quick]
    flag trades iteration count for speed (used by `dune runtest`-adjacent
    smoke runs); default parameters match EXPERIMENTS.md. *)

type report = { id : string; title : string; tables : Xguard_stats.Table.t list }

val t1_transition_table : unit -> report
(** Table 1: the accelerator L1 transition matrix, printed from the
    implementation's own specification. *)

val f1_guarantees : unit -> report
(** Figure 1: one directed violation per sub-guarantee, per host protocol and
    guard mode; detection and host liveness. *)

val f2_organizations : ?quick:bool -> unit -> report
(** Figure 2: all four accelerator organizations run the same kernel. *)

val e1_stress : ?quick:bool -> unit -> report
(** §4.1: random coherence stress across all 12 configurations, with
    transition-coverage counts. *)

val e2_fuzz : ?quick:bool -> unit -> report
(** §4 fuzz: random message bombardment of every XG configuration. *)

val e3_performance : ?quick:bool -> unit -> report
(** Workload runtimes for all 12 configurations, normalized per host to the
    unsafe accelerator-side cache. *)

val e4_puts_overhead : ?quick:bool -> unit -> report
(** §2.1: unnecessary PutS traffic as a fraction of XG-to-host bandwidth,
    and the suppression register. *)

val e5_storage : ?quick:bool -> unit -> report
(** §2.3: Full-State vs Transactional guard storage, measured and analytic. *)

val e6_timeout : ?quick:bool -> unit -> report
(** §2.2 G2c: host-request latency against a mute accelerator, swept over the
    guard's timeout. *)

val e7_rate_limit : ?quick:bool -> unit -> report
(** §2.5: protecting host processes from a request-flooding accelerator. *)

val e8_block_merge : unit -> report
(** §2.5: block-size translation correctness and traffic amplification. *)

val a1_link_ordering : ?quick:bool -> unit -> report
(** Ablation: the ordered-link requirement is load-bearing. *)

val a2_snoop_filtering : ?quick:bool -> unit -> report
(** Ablation: guard-answered snoops (fast path) per mode, and side-channel
    filtering of no-permission blocks. *)

val all : ?quick:bool -> unit -> report list
val by_id : string -> (?quick:bool -> unit -> report) option
val ids : string list
