lib/harness/fuzz_tester.mli: Config Xguard_xg
