lib/harness/fault_scenarios.ml: Access Addr Array Config Data List Option Perm System Xguard_sim Xguard_xg
