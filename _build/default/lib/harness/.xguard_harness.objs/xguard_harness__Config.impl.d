lib/harness/config.ml: List Xguard_xg
