lib/harness/perf_runner.mli: Config Xguard_workload
