lib/harness/hammer_system.mli: Access Memory_model Node Xguard_host_hammer Xguard_network Xguard_sim
