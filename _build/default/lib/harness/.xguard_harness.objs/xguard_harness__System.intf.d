lib/harness/system.mli: Access Config Memory_model Node Xguard_accel Xguard_sim Xguard_stats Xguard_xg
