lib/harness/fuzz_tester.ml: Addr Array Config List Option Perm Printexc Random_tester System Xguard_accel Xguard_sim Xguard_xg
