lib/harness/experiments.mli: Xguard_stats
