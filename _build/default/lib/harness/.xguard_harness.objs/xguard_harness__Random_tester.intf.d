lib/harness/random_tester.mli: Access Addr Xguard_sim
