lib/harness/random_tester.ml: Access Addr Array Data Hashtbl Printf Sequencer Sys Xguard_sim
