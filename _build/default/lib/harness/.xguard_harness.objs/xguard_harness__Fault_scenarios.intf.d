lib/harness/fault_scenarios.mli: Config Xguard_xg
