lib/harness/mesi_system.mli: Access Memory_model Node Xguard_host_mesi Xguard_network Xguard_sim
