lib/harness/perf_runner.ml: Array Config List Printf Sequencer System Xguard_sim Xguard_stats Xguard_workload Xguard_xg
