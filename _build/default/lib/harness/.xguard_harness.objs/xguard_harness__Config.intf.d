lib/harness/config.mli: Xguard_xg
