lib/harness/mesi_system.ml: Array Memory_model Node Printf Xguard_host_mesi Xguard_network Xguard_sim
