lib/harness/hammer_system.ml: Array List Memory_model Node Printf Xguard_host_hammer Xguard_network Xguard_sim
