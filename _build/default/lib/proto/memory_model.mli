(** Backing memory.

    Holds the committed value of every block, lazily initialised to
    {!Data.initial}.  Directories read and write it; it is also the oracle the
    random tester compares against when it audits final state. *)

type t

val create : unit -> t
val read : t -> Addr.t -> Data.t
val write : t -> Addr.t -> Data.t -> unit
val touched : t -> (Addr.t * Data.t) list
(** Blocks that have been written at least once, ascending by address. *)
