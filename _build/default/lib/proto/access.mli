(** Processor-side memory operations: the contract between a core model (CPU
    sequencer or accelerator core) and the private cache that serves it. *)

type op = Load | Store of Data.t

type t = { op : op; addr : Addr.t }

val load : Addr.t -> t
val store : Addr.t -> Data.t -> t
val is_store : t -> bool
val pp : Format.formatter -> t -> unit

(** What a private cache exposes upward.  [issue] returns [false] when the
    cache cannot accept the access now (MSHR full, or a transaction for the
    same block is already open) and the caller must retry later.  When accepted,
    [on_done] fires exactly once with the value read (loads) or written
    (stores), at the cycle the access commits. *)
type port = { issue : t -> on_done:(Data.t -> unit) -> bool }
