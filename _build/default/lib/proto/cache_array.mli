(** Set-associative cache storage with LRU replacement.

    Stores one polymorphic line payload per resident block: the protocol state,
    data token and whatever per-line metadata a controller keeps.  The array
    enforces capacity: before inserting into a full set the controller must ask
    for a {!victim} and evict it through its own protocol actions (writeback,
    invalidation), exactly as a hardware controller would. *)

type 'line t

val create : sets:int -> ways:int -> unit -> 'line t
(** [sets] must be a power of two so the index is a bit-slice of the address. *)

val sets : _ t -> int
val ways : _ t -> int
val count : _ t -> int
(** Resident lines. *)

val find : 'line t -> Addr.t -> 'line option
(** Does not update LRU order; use {!touch} on an access. *)

val mem : _ t -> Addr.t -> bool

val touch : 'line t -> Addr.t -> unit
(** Mark most-recently used.  No-op if absent. *)

val set : 'line t -> Addr.t -> 'line -> unit
(** Update the payload of a resident line.  Raises [Not_found] if absent. *)

val insert : 'line t -> Addr.t -> 'line -> unit
(** Add a line, marking it most-recently used.
    @raise Invalid_argument if the address is already resident or its set is
    full (the controller must evict first). *)

val has_room : _ t -> Addr.t -> bool
(** True if the address is resident or its set has a free way. *)

val victim : 'line t -> Addr.t -> (Addr.t * 'line) option
(** Least-recently-used line of the address's set, if the set is full and the
    address is not already resident; [None] when no eviction is needed. *)

val remove : 'line t -> Addr.t -> unit
(** No-op if absent. *)

val iter : (Addr.t -> 'line -> unit) -> 'line t -> unit
val to_list : 'line t -> (Addr.t * 'line) list
