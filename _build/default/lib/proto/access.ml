type op = Load | Store of Data.t

type t = { op : op; addr : Addr.t }

let load addr = { op = Load; addr }
let store addr data = { op = Store data; addr }
let is_store t = match t.op with Store _ -> true | Load -> false

let pp fmt t =
  match t.op with
  | Load -> Format.fprintf fmt "LD %a" Addr.pp t.addr
  | Store d -> Format.fprintf fmt "ST %a=%a" Addr.pp t.addr Data.pp d

type port = { issue : t -> on_done:(Data.t -> unit) -> bool }
