type t = int

let zero = 0
let token v = v
let initial addr = 1 + ((addr * 0x9E3779B1) land 0xFFFF)
let equal = Int.equal
let pp fmt d = Format.fprintf fmt "#%d" d
