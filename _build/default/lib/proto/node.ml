type t = { id : int; name : string }

let id t = t.id
let name t = t.name
let equal a b = a.id = b.id
let compare a b = Int.compare a.id b.id
let pp fmt t = Format.fprintf fmt "%s" t.name

module Registry = struct
  type node = t
  type t = { mutable next : int; mutable nodes : node list }

  let create () = { next = 0; nodes = [] }

  let fresh t name =
    let node = { id = t.next; name } in
    t.next <- t.next + 1;
    t.nodes <- node :: t.nodes;
    node

  let count t = t.next
  let all t = List.rev t.nodes
end
