(** Page access permissions, as used by Border-Control-style checks
    (paper, Guarantee 0). *)

type t = No_access | Read_only | Read_write

val allows_read : t -> bool
val allows_write : t -> bool
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
