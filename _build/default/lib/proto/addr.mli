(** Block addresses.

    The coherence unit everywhere in the system is one cache block.  An
    [Addr.t] is a block index (a byte address divided by the host block size);
    byte offsets never matter to coherence, so they are not modelled.  Pages
    group blocks for permission checks. *)

type t = int

val block : int -> t
(** Identity; documents intent at call sites that construct addresses. *)

val to_int : t -> int

val blocks_per_page : int
(** 64: a 4 KiB page of 64 B blocks. *)

val page_of : t -> int
(** Page index containing this block. *)

val first_block_of_page : int -> t
val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit
