type t = No_access | Read_only | Read_write

let allows_read = function No_access -> false | Read_only | Read_write -> true
let allows_write = function No_access | Read_only -> false | Read_write -> true
let equal a b = a = b

let to_string = function
  | No_access -> "None"
  | Read_only -> "Read"
  | Read_write -> "Read-Write"

let pp fmt t = Format.pp_print_string fmt (to_string t)
