(** Core-side request sequencer.

    Sits between a core model and its private cache: queues accesses, retries
    when the cache rejects them, tracks per-access latency and completion
    counts.  One sequencer per core.  The sequencer issues at most
    [max_outstanding] accesses concurrently and never issues two concurrent
    accesses to the same block (hardware cores merge those in the LSQ). *)

type t

val create :
  engine:Xguard_sim.Engine.t ->
  name:string ->
  port:Access.port ->
  ?max_outstanding:int ->
  ?retry_delay:int ->
  unit ->
  t

val name : t -> string

val request : t -> Access.t -> on_complete:(Data.t -> latency:int -> unit) -> unit
(** Enqueue an access.  [on_complete] fires when the access commits, with the
    observed value and the issue-to-commit latency in cycles. *)

val outstanding : t -> int
(** Accesses issued or queued but not yet complete. *)

val completed : t -> int
val latency : t -> Xguard_stats.Histogram.t
val retries : t -> int
