type t = int

let block a =
  if a < 0 then invalid_arg "Addr.block: negative address";
  a

let to_int a = a
let blocks_per_page = 64
let page_of a = a / blocks_per_page
let first_block_of_page p = p * blocks_per_page
let equal = Int.equal
let compare = Int.compare
let hash a = a * 0x9E3779B1
let pp fmt a = Format.fprintf fmt "0x%x" a
