type t = { table : (Addr.t, Data.t) Hashtbl.t }

let create () = { table = Hashtbl.create 1024 }

let read t addr =
  match Hashtbl.find_opt t.table addr with
  | Some d -> d
  | None -> Data.initial addr

let write t addr data = Hashtbl.replace t.table addr data

let touched t =
  Hashtbl.fold (fun a d acc -> (a, d) :: acc) t.table []
  |> List.sort (fun (a, _) (b, _) -> Addr.compare a b)
