type 'a t = { capacity : int; table : (Addr.t, 'a) Hashtbl.t }

let create ~capacity () =
  if capacity <= 0 then invalid_arg "Tbe_table.create: capacity must be positive";
  { capacity; table = Hashtbl.create capacity }

let capacity t = t.capacity
let count t = Hashtbl.length t.table
let is_full t = count t >= t.capacity

let alloc t addr entry =
  if Hashtbl.mem t.table addr then `Busy
  else if is_full t then `Full
  else begin
    Hashtbl.add t.table addr entry;
    `Ok
  end

let find t addr = Hashtbl.find_opt t.table addr
let mem t addr = Hashtbl.mem t.table addr

let update t addr entry =
  if not (Hashtbl.mem t.table addr) then raise Not_found;
  Hashtbl.replace t.table addr entry

let dealloc t addr =
  if not (Hashtbl.mem t.table addr) then raise Not_found;
  Hashtbl.remove t.table addr

let iter f t = Hashtbl.iter f t.table

let to_list t =
  Hashtbl.fold (fun a e acc -> (a, e) :: acc) t.table []
  |> List.sort (fun (a, _) (b, _) -> Addr.compare a b)
