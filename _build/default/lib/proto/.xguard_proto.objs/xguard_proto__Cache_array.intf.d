lib/proto/cache_array.mli: Addr
