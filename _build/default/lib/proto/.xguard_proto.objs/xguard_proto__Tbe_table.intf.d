lib/proto/tbe_table.mli: Addr
