lib/proto/node.ml: Format Int List
