lib/proto/access.mli: Addr Data Format
