lib/proto/sequencer.mli: Access Data Xguard_sim Xguard_stats
