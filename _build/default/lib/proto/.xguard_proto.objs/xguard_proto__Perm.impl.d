lib/proto/perm.ml: Format
