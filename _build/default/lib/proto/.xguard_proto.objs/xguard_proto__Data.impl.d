lib/proto/data.ml: Format Int
