lib/proto/addr.ml: Format Int
