lib/proto/node.mli: Format
