lib/proto/access.ml: Addr Data Format
