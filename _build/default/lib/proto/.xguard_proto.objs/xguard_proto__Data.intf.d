lib/proto/data.mli: Addr Format
