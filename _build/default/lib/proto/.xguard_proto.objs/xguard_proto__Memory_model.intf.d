lib/proto/memory_model.mli: Addr Data
