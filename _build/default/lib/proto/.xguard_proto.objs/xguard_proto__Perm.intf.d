lib/proto/perm.mli: Format
