lib/proto/sequencer.ml: Access Addr Data List Queue Xguard_sim Xguard_stats
