lib/proto/memory_model.ml: Addr Data Hashtbl List
