lib/proto/tbe_table.ml: Addr Hashtbl List
