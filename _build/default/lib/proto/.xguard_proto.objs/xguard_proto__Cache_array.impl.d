lib/proto/cache_array.ml: Addr Array List Option
