(** Block data, modelled as an integer token.

    Coherence correctness is about *which* value a read observes, not about the
    bytes themselves, so a block's contents are a single token.  Stores write
    fresh tokens; the random tester checks that loads observe the latest
    committed token.  [zero] is the zeroed block Crossing Guard substitutes when
    a misbehaving accelerator's data cannot be trusted (paper, Guarantee 2). *)

type t = int

val zero : t
val token : int -> t
val initial : Addr.t -> t
(** Deterministic pre-image of memory, distinct from [zero] for most
    addresses so stale-data bugs are observable. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
