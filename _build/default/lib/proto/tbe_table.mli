(** Transaction buffer entries (MSHRs).

    One entry per in-flight transaction, keyed by block address.  Capacity is
    enforced: a full table makes the controller reject or stall new requests,
    which is how back-pressure propagates to the sequencer. *)

type 'a t

val create : capacity:int -> unit -> 'a t
val capacity : _ t -> int
val count : _ t -> int
val is_full : _ t -> bool

val alloc : 'a t -> Addr.t -> 'a -> [ `Ok | `Full | `Busy ]
(** [`Busy] when a transaction for this address is already open — the caller
    decides whether that is a stall or a protocol error. *)

val find : 'a t -> Addr.t -> 'a option
val mem : _ t -> Addr.t -> bool

val update : 'a t -> Addr.t -> 'a -> unit
(** Raises [Not_found] if no entry is open for the address. *)

val dealloc : 'a t -> Addr.t -> unit
(** Raises [Not_found] if no entry is open for the address. *)

val iter : (Addr.t -> 'a -> unit) -> 'a t -> unit
val to_list : 'a t -> (Addr.t * 'a) list
