(** Endpoint identities on a network.

    A node is any controller that can send or receive messages: a CPU cache, a
    directory, the Crossing Guard, an accelerator cache.  Ids are unique per
    {!Registry}; names are for traces and error reports. *)

type t = private { id : int; name : string }

val id : t -> int
val name : t -> string
val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit

(** Allocates node ids.  Each simulated system owns one registry so that node
    ids are dense and deterministic. *)
module Registry : sig
  type node = t
  type t

  val create : unit -> t
  val fresh : t -> string -> node
  val count : t -> int
  val all : t -> node list
end
