type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create ~seed = { state = Int64.of_int seed }

(* SplitMix64 output function (Steele, Lea, Flood 2014). *)
let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let bits64 = next_int64

let split t = { state = next_int64 t }

(* OCaml ints are 63-bit; keep the draw within [0, 2^62). *)
let nonneg t = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2)

let int t n =
  assert (n > 0);
  nonneg t mod n

let int_in t ~lo ~hi =
  assert (hi >= lo);
  lo + int t (hi - lo + 1)

let bool t = Int64.logand (next_int64 t) 1L = 1L

let float t x =
  let mantissa = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  x *. (mantissa /. 9007199254740992.0 (* 2^53 *))

let chance t p = if p <= 0.0 then false else if p >= 1.0 then true else float t 1.0 < p

let pick t arr =
  assert (Array.length arr > 0);
  arr.(int t (Array.length arr))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
