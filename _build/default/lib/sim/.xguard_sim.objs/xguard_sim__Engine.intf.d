lib/sim/engine.mli:
