lib/sim/rng.mli:
