(** Deterministic, splittable pseudo-random number generator.

    Every source of randomness in the simulator draws from an [Rng.t] so that a
    run is fully determined by its seed.  The generator is a SplitMix64
    implementation: cheap, statistically adequate for workload generation and
    stress testing, and easy to split into independent streams (one per
    controller or tester core) without sharing mutable state. *)

type t

val create : seed:int -> t
(** [create ~seed] makes a fresh generator. Equal seeds give equal streams. *)

val split : t -> t
(** [split t] derives an independent generator and advances [t]. Used to give
    each simulated component its own stream so that adding a component does not
    perturb the draws seen by the others. *)

val int : t -> int -> int
(** [int t n] draws uniformly from [0, n).  Requires [n > 0]. *)

val int_in : t -> lo:int -> hi:int -> int
(** [int_in t ~lo ~hi] draws uniformly from the inclusive range [lo, hi]. *)

val bool : t -> bool

val chance : t -> float -> bool
(** [chance t p] is true with probability [p] (clamped to [0,1]). *)

val float : t -> float -> float
(** [float t x] draws uniformly from [0, x). *)

val pick : t -> 'a array -> 'a
(** [pick t arr] draws a uniformly random element.  Requires [arr] nonempty. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val bits64 : t -> int64
(** Raw 64-bit draw, exposed for tests of the generator itself. *)
