type time = int

type event = { at : time; seq : int; thunk : unit -> unit }

(* Binary min-heap on (at, seq).  A resizable array keeps scheduling O(log n)
   with no allocation churn beyond the event records themselves. *)
type t = {
  mutable heap : event array;
  mutable size : int;
  mutable now : time;
  mutable next_seq : int;
  mutable fired : int;
  mutable stop_requested : bool;
}

let dummy = { at = 0; seq = 0; thunk = ignore }

let create () =
  {
    heap = Array.make 64 dummy;
    size = 0;
    now = 0;
    next_seq = 0;
    fired = 0;
    stop_requested = false;
  }

let now t = t.now
let pending t = t.size
let events_fired t = t.fired
let stop t = t.stop_requested <- true

let earlier a b = a.at < b.at || (a.at = b.at && a.seq < b.seq)

let grow t =
  let bigger = Array.make (2 * Array.length t.heap) dummy in
  Array.blit t.heap 0 bigger 0 t.size;
  t.heap <- bigger

let push t ev =
  if t.size = Array.length t.heap then grow t;
  let i = ref t.size in
  t.size <- t.size + 1;
  t.heap.(!i) <- ev;
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    if earlier t.heap.(!i) t.heap.(parent) then begin
      let tmp = t.heap.(parent) in
      t.heap.(parent) <- t.heap.(!i);
      t.heap.(!i) <- tmp;
      i := parent
    end
    else continue := false
  done

let pop t =
  assert (t.size > 0);
  let top = t.heap.(0) in
  t.size <- t.size - 1;
  t.heap.(0) <- t.heap.(t.size);
  t.heap.(t.size) <- dummy;
  let i = ref 0 in
  let continue = ref true in
  while !continue do
    let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
    let smallest = ref !i in
    if l < t.size && earlier t.heap.(l) t.heap.(!smallest) then smallest := l;
    if r < t.size && earlier t.heap.(r) t.heap.(!smallest) then smallest := r;
    if !smallest <> !i then begin
      let tmp = t.heap.(!smallest) in
      t.heap.(!smallest) <- t.heap.(!i);
      t.heap.(!i) <- tmp;
      i := !smallest
    end
    else continue := false
  done;
  top

let schedule_at t at thunk =
  if at < t.now then
    invalid_arg
      (Printf.sprintf "Engine.schedule_at: time %d is in the past (now=%d)" at t.now);
  let ev = { at; seq = t.next_seq; thunk } in
  t.next_seq <- t.next_seq + 1;
  push t ev

let schedule t ~delay thunk =
  if delay < 0 then invalid_arg "Engine.schedule: negative delay";
  schedule_at t (t.now + delay) thunk

type run_result = Drained | Hit_time_limit | Hit_event_limit | Stopped

let run ?until ?max_events t =
  t.stop_requested <- false;
  let fired_at_start = t.fired in
  let result = ref Drained in
  let continue = ref true in
  while !continue do
    if t.size = 0 then begin
      result := Drained;
      continue := false
    end
    else if t.stop_requested then begin
      result := Stopped;
      continue := false
    end
    else begin
      let over_time =
        match until with Some u -> t.heap.(0).at > u | None -> false
      in
      let over_events =
        match max_events with
        | Some m -> t.fired - fired_at_start >= m
        | None -> false
      in
      if over_time then begin
        (match until with Some u -> t.now <- max t.now u | None -> ());
        result := Hit_time_limit;
        continue := false
      end
      else if over_events then begin
        result := Hit_event_limit;
        continue := false
      end
      else begin
        let ev = pop t in
        t.now <- ev.at;
        t.fired <- t.fired + 1;
        ev.thunk ()
      end
    end
  done;
  !result

let every t ~period ?(phase = 0) f =
  if period <= 0 then invalid_arg "Engine.every: period must be positive";
  let rec tick () = if f () then schedule t ~delay:period tick in
  schedule t ~delay:phase tick
