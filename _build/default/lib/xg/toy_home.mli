(** A minimal home agent for one accelerator, speaking the Crossing Guard
    interface.

    [Toy_home] is not part of the paper's system; it is this repository's
    teaching and testing substrate.  It plays the host side of the XG link
    perfectly — granting requests from a backing memory, acknowledging
    writebacks, and issuing host-initiated invalidations on demand — so that
    accelerator caches can be unit-tested and demonstrated without standing up
    a full host protocol.  It enforces the interface contract with assertions:
    a misbehaving cache fails fast here, whereas the real Crossing Guard
    ({!Xg_core}) tolerates and reports.

    Transactions are serialized per block.  The accelerator-Put versus
    host-Invalidate race (the one race the ordered link permits) is handled
    the way Crossing Guard does: the Put is acknowledged and its data used,
    and the recall completes when the InvAck arrives. *)

type grant_style =
  | Exclusive_when_clean  (** GetS is answered DataE; GetM answered DataE (clean) *)
  | Conservative  (** GetS answered DataS; GetM answered DataM *)

type t

val create :
  engine:Xguard_sim.Engine.t ->
  link:Xg_iface.Link.t ->
  self:Node.t ->
  accel:Node.t ->
  memory:Memory_model.t ->
  ?grant_style:grant_style ->
  ?latency:int ->
  unit ->
  t
(** Registers [self] on [link].  [latency] is the service time between
    receiving a request and sending its response. *)

val recall : t -> Addr.t -> on_done:(unit -> unit) -> unit
(** Issue a host-initiated Invalidate for the block and run [on_done] when the
    accelerator's response (and any racing writeback) has been absorbed. *)

val accel_state : t -> Addr.t -> [ `I | `S | `E | `M ]
(** The home's view of the block's state at the accelerator. *)

val stats : t -> Xguard_stats.Counter.Group.t
