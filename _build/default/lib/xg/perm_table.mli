(** Page permission table (Border-Control-style, paper §3.1 / Guarantee 0).

    Crossing Guard consults this trusted, host-side table on every new
    transaction and stores the permission with the transaction state.  Pages
    default to [Read_write] so tests and examples opt in to restrictions. *)

type t

val create : ?default:Perm.t -> unit -> t
val set_page : t -> page:int -> Perm.t -> unit
val set_block : t -> Addr.t -> Perm.t -> unit
(** Sets the whole page containing the block. *)

val perm : t -> Addr.t -> Perm.t
val allows_read : t -> Addr.t -> bool
val allows_write : t -> Addr.t -> bool
