lib/xg/xg_iface.mli: Addr Data Format Xguard_network
