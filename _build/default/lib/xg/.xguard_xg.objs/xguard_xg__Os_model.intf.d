lib/xg/os_model.mli: Addr
