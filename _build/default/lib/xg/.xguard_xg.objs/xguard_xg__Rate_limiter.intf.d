lib/xg/rate_limiter.mli: Xguard_sim
