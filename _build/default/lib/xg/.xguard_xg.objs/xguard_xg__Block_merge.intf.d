lib/xg/block_merge.mli: Addr Data Xguard_sim
