lib/xg/perm_table.ml: Addr Hashtbl Perm
