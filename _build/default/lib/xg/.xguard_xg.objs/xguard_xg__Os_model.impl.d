lib/xg/os_model.ml: Addr Hashtbl List
