lib/xg/perm_table.mli: Addr Perm
