lib/xg/xg_core.ml: Addr Data Hashtbl Node Option Os_model Perm Perm_table Queue Rate_limiter Xg_iface Xguard_sim Xguard_stats
