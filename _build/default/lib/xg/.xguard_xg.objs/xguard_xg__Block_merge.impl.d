lib/xg/block_merge.ml: Addr Array Data Xguard_sim
