lib/xg/toy_home.mli: Addr Memory_model Node Xg_iface Xguard_sim Xguard_stats
