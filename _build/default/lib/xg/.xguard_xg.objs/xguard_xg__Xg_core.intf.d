lib/xg/xg_core.mli: Addr Data Node Os_model Perm_table Rate_limiter Xg_iface Xguard_sim Xguard_stats
