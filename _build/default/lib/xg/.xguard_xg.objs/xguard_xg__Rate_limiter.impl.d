lib/xg/rate_limiter.ml: Float Queue Xguard_sim
