lib/xg/toy_home.ml: Addr Format Hashtbl Memory_model Node Queue Xg_iface Xguard_sim Xguard_stats
