lib/xg/xg_iface.ml: Addr Data Format Xguard_network
