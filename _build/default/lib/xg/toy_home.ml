module Engine = Xguard_sim.Engine
module Group = Xguard_stats.Counter.Group

type grant_style = Exclusive_when_clean | Conservative

type accel_state = I | S | E | M

type txn =
  | Serving of Xg_iface.accel_request
  | Recalling of { on_done : unit -> unit; mutable racing_put : bool }

type t = {
  engine : Engine.t;
  link : Xg_iface.Link.t;
  self : Node.t;
  accel : Node.t;
  memory : Memory_model.t;
  grant_style : grant_style;
  latency : int;
  states : (Addr.t, accel_state) Hashtbl.t;
  open_txns : (Addr.t, txn) Hashtbl.t;
  waiting : (Addr.t, Xg_iface.accel_request Queue.t) Hashtbl.t;
  stats : Group.t;
}

let state t addr = match Hashtbl.find_opt t.states addr with Some s -> s | None -> I

let set_state t addr s =
  if s = I then Hashtbl.remove t.states addr else Hashtbl.replace t.states addr s

let accel_state t addr =
  match state t addr with I -> `I | S -> `S | E -> `E | M -> `M

let stats t = t.stats

let send_to_accel t msg =
  Xg_iface.Link.send t.link ~src:t.self ~dst:t.accel ~size:(Xg_iface.msg_size msg) msg

let respond t addr resp =
  send_to_accel t (Xg_iface.To_accel_resp { addr; resp })

(* Serve a request now that the block has no open transaction. *)
let rec serve t addr (req : Xg_iface.accel_request) =
  Hashtbl.replace t.open_txns addr (Serving req);
  Engine.schedule t.engine ~delay:t.latency (fun () -> finish t addr req)

and finish t addr (req : Xg_iface.accel_request) =
  (match req with
  | Xg_iface.Get_s ->
      assert (state t addr = I);
      Group.incr t.stats "get_s";
      let data = Memory_model.read t.memory addr in
      let resp, next =
        match t.grant_style with
        | Exclusive_when_clean -> (Xg_iface.Data_e data, E)
        | Conservative -> (Xg_iface.Data_s data, S)
      in
      set_state t addr next;
      respond t addr resp
  | Xg_iface.Get_m ->
      assert (state t addr = I || state t addr = S);
      Group.incr t.stats "get_m";
      let data = Memory_model.read t.memory addr in
      let resp, next =
        match t.grant_style with
        | Exclusive_when_clean -> (Xg_iface.Data_e data, E)
        | Conservative -> (Xg_iface.Data_m data, M)
      in
      set_state t addr next;
      respond t addr resp
  | Xg_iface.Put_s ->
      assert (state t addr = S);
      Group.incr t.stats "put_s";
      set_state t addr I;
      respond t addr Xg_iface.Wb_ack
  | Xg_iface.Put_e data ->
      assert (state t addr = E);
      Group.incr t.stats "put_e";
      ignore data;
      set_state t addr I;
      respond t addr Xg_iface.Wb_ack
  | Xg_iface.Put_m data ->
      (* E allows a silent upgrade, so a PutM from E is legal. *)
      assert (state t addr = M || state t addr = E);
      Group.incr t.stats "put_m";
      Memory_model.write t.memory addr data;
      set_state t addr I;
      respond t addr Xg_iface.Wb_ack);
  Hashtbl.remove t.open_txns addr;
  pump t addr

and pump t addr =
  if not (Hashtbl.mem t.open_txns addr) then
    match Hashtbl.find_opt t.waiting addr with
    | Some q when not (Queue.is_empty q) -> serve t addr (Queue.pop q)
    | _ -> ()

let enqueue t addr req =
  let q =
    match Hashtbl.find_opt t.waiting addr with
    | Some q -> q
    | None ->
        let q = Queue.create () in
        Hashtbl.add t.waiting addr q;
        q
  in
  Queue.push req q

let on_request t addr (req : Xg_iface.accel_request) =
  match Hashtbl.find_opt t.open_txns addr with
  | None -> serve t addr req
  | Some (Serving _) -> enqueue t addr req
  | Some (Recalling r) -> (
      (* The Put / Invalidate race: absorb the writeback, ack it, and let the
         recall complete on the InvAck. *)
      match req with
      | Xg_iface.Put_m data | Xg_iface.Put_e data ->
          Group.incr t.stats "put_inv_race";
          Memory_model.write t.memory addr data;
          set_state t addr I;
          r.racing_put <- true;
          respond t addr Xg_iface.Wb_ack
      | Xg_iface.Put_s ->
          Group.incr t.stats "put_inv_race";
          set_state t addr I;
          r.racing_put <- true;
          respond t addr Xg_iface.Wb_ack
      | Xg_iface.Get_s | Xg_iface.Get_m -> enqueue t addr req)

let on_response t addr (resp : Xg_iface.accel_response) =
  match Hashtbl.find_opt t.open_txns addr with
  | Some (Recalling r) ->
      (match resp with
      | Xg_iface.Dirty_wb data ->
          assert (state t addr = M || state t addr = E);
          Memory_model.write t.memory addr data
      | Xg_iface.Clean_wb data ->
          assert (state t addr = E);
          Memory_model.write t.memory addr data
      | Xg_iface.Inv_ack ->
          (* Legal when the block was S or I, or when a Put raced the recall. *)
          assert (r.racing_put || state t addr = S || state t addr = I));
      set_state t addr I;
      Hashtbl.remove t.open_txns addr;
      r.on_done ();
      pump t addr
  | Some (Serving _) | None ->
      failwith
        (Format.asprintf "Toy_home: unsolicited accelerator response %a for %a"
           Xg_iface.pp_accel_response resp Addr.pp addr)

let recall t addr ~on_done =
  match Hashtbl.find_opt t.open_txns addr with
  | Some _ -> invalid_arg "Toy_home.recall: transaction already open for this block"
  | None ->
      Group.incr t.stats "recall";
      Hashtbl.replace t.open_txns addr (Recalling { on_done; racing_put = false });
      send_to_accel t (Xg_iface.To_accel_req { addr; req = Xg_iface.Invalidate })

let create ~engine ~link ~self ~accel ~memory ?(grant_style = Exclusive_when_clean)
    ?(latency = 10) () =
  let t =
    {
      engine;
      link;
      self;
      accel;
      memory;
      grant_style;
      latency;
      states = Hashtbl.create 64;
      open_txns = Hashtbl.create 16;
      waiting = Hashtbl.create 16;
      stats = Group.create "toy_home";
    }
  in
  Xg_iface.Link.register link self (fun ~src:_ msg ->
      match msg with
      | Xg_iface.To_xg_req { addr; req } -> on_request t addr req
      | Xg_iface.To_xg_resp { addr; resp } -> on_response t addr resp
      | Xg_iface.To_accel_resp _ | Xg_iface.To_accel_req _ ->
          invalid_arg "Toy_home: received a home-to-accelerator message");
  t
