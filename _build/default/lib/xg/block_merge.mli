(** Coherence block-size translation (paper §2.5).

    "Crossing Guard, along with translating between coherence protocols, may
    also translate between coherence block sizes.  If the accelerator uses a
    larger block size than the host, Crossing Guard can merge requests and
    responses."

    This adapter sits between an accelerator that addresses large lines
    ([ratio] host blocks per accelerator line) and a host-granularity backing
    interface shaped like the XG interface's essentials:

    - on an accelerator Get, it requests every component host block and
      forwards the merged line once all have arrived;
    - on an accelerator writeback, it splits the line back into component
      blocks;
    - on a host-side invalidation of any component block, it invalidates the
      whole accelerator line and splits the returned data.

    Data for an accelerator line is a [Data.t array] of the component host
    blocks.  The traffic amplification this trades for (every accelerator
    miss costs [ratio] host transactions) is measured by experiment E8. *)

type grant = Merged_s of Data.t array | Merged_e of Data.t array | Merged_m of Data.t array

(** Host-granularity backing store operations the adapter needs. *)
type backing = {
  get : Addr.t -> excl:bool -> on_grant:(Data.t -> unit) -> unit;
  put : Addr.t -> Data.t -> unit;
}

type t

val create : engine:Xguard_sim.Engine.t -> ratio:int -> backing:backing -> unit -> t
(** [ratio] host blocks per accelerator line; must be a power of two >= 1. *)

val line_of_host_block : t -> Addr.t -> int
(** The accelerator line index covering a host block. *)

val get : t -> line:int -> excl:bool -> on_grant:(grant -> unit) -> unit
(** Fetch all component blocks and deliver the merged grant: [Merged_e] for
    an exclusive fetch (clean until the accelerator writes), [Merged_s]
    otherwise.  [Merged_m] is reserved for backings that report dirtiness. *)

val put : t -> line:int -> Data.t array -> unit
(** Split a written-back accelerator line into component host writebacks.
    @raise Invalid_argument if the array length is not [ratio]. *)

val invalidate_line : t -> line:int -> Data.t array option -> unit
(** Host-side recall of a line: component blocks of the returned dirty data
    (if any) are written back individually. *)

val host_transactions : t -> int
(** Host-granularity operations issued so far — the amplification metric. *)

val open_merges : t -> int
