module Engine = Xguard_sim.Engine

type grant = Merged_s of Data.t array | Merged_e of Data.t array | Merged_m of Data.t array

type backing = {
  get : Addr.t -> excl:bool -> on_grant:(Data.t -> unit) -> unit;
  put : Addr.t -> Data.t -> unit;
}

type t = {
  engine : Engine.t;
  ratio : int;
  backing : backing;
  mutable host_transactions : int;
  mutable open_merges : int;
}

let is_power_of_two n = n > 0 && n land (n - 1) = 0

let create ~engine ~ratio ~backing () =
  if not (is_power_of_two ratio) then invalid_arg "Block_merge.create: ratio not a power of two";
  { engine; ratio; backing; host_transactions = 0; open_merges = 0 }

let line_of_host_block t addr = Addr.to_int addr / t.ratio

let component t ~line i = Addr.block ((line * t.ratio) + i)

let host_transactions t = t.host_transactions
let open_merges t = t.open_merges

let get t ~line ~excl ~on_grant =
  let parts = Array.make t.ratio Data.zero in
  let remaining = ref t.ratio in
  t.open_merges <- t.open_merges + 1;
  for i = 0 to t.ratio - 1 do
    t.host_transactions <- t.host_transactions + 1;
    t.backing.get (component t ~line i) ~excl ~on_grant:(fun data ->
        parts.(i) <- data;
        decr remaining;
        if !remaining = 0 then begin
          t.open_merges <- t.open_merges - 1;
          on_grant (if excl then Merged_e parts else Merged_s parts)
        end)
  done

let put t ~line parts =
  if Array.length parts <> t.ratio then
    invalid_arg "Block_merge.put: line data must have exactly [ratio] components";
  Array.iteri
    (fun i data ->
      t.host_transactions <- t.host_transactions + 1;
      t.backing.put (component t ~line i) data)
    parts

let invalidate_line t ~line = function
  | None -> ()
  | Some parts -> put t ~line parts
