module Xg_iface = Xguard_xg.Xg_iface

type t = {
  send_req : Addr.t -> Xg_iface.accel_request -> unit;
  send_resp : Addr.t -> Xg_iface.accel_response -> unit;
}

let on_link link ~self ~peer =
  let send msg =
    Xg_iface.Link.send link ~src:self ~dst:peer ~size:(Xg_iface.msg_size msg) msg
  in
  {
    send_req = (fun addr req -> send (Xg_iface.To_xg_req { addr; req }));
    send_resp = (fun addr resp -> send (Xg_iface.To_xg_resp { addr; resp }));
  }
