(** Downward-facing port of an accelerator cache.

    An accelerator cache speaks the Crossing Guard interface below it.  The
    same cache module is reused in two places by binding this port differently:
    directly on the XG link (single-level hierarchy, paper Figure 2c) or on the
    accelerator-internal network toward the shared accelerator L2 (Figure 2d,
    where the L2 exports the same interface shape upward). *)

type t = {
  send_req : Addr.t -> Xguard_xg.Xg_iface.accel_request -> unit;
  send_resp : Addr.t -> Xguard_xg.Xg_iface.accel_response -> unit;
}

val on_link :
  Xguard_xg.Xg_iface.Link.t -> self:Node.t -> peer:Node.t -> t
(** A port that sends over an XG link instance to [peer]. *)
