lib/accel/chaos_accel.mli: Addr Node Xguard_sim Xguard_xg
