lib/accel/l2_shared.mli: Addr Lower_port Node Xguard_sim Xguard_stats Xguard_xg
