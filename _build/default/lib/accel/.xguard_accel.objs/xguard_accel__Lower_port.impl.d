lib/accel/lower_port.ml: Addr Xguard_xg
