lib/accel/l1_simple.mli: Access Addr Lower_port Xguard_sim Xguard_stats Xguard_xg
