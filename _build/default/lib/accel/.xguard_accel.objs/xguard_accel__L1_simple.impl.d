lib/accel/l1_simple.ml: Access Addr Cache_array Data Format Lower_port Xguard_sim Xguard_stats Xguard_xg
