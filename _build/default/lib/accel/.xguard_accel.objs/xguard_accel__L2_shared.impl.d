lib/accel/l2_shared.ml: Addr Cache_array Data Format Hashtbl List Lower_port Node Queue Xguard_sim Xguard_stats Xguard_xg
