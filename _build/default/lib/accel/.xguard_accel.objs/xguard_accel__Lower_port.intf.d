lib/accel/lower_port.mli: Addr Node Xguard_xg
