lib/accel/chaos_accel.ml: Addr Data Node Xguard_sim Xguard_xg
