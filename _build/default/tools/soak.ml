(* Long-running randomized soak over every configuration: the scaled-down
   equivalent of the paper's 22 compute-years of random testing.
   Usage: dune exec tools/soak.exe [seeds] [ops_per_core] *)
(* Wide random soak: many seeds x all 12 configs. *)
module Rng = Xguard_sim.Rng
module Config = Xguard_harness.Config
module System = Xguard_harness.System
module Tester = Xguard_harness.Random_tester
module Xg = Xguard_xg
open Xguard_proto

let () =
  let seeds = try int_of_string Sys.argv.(1) with _ -> 50 in
  let ops = try int_of_string Sys.argv.(2) with _ -> 150 in
  let failures = ref 0 and runs = ref 0 in
  for seed = 1 to seeds do
    List.iter
      (fun cfg ->
        let cfg = Config.stress_sized { cfg with Config.seed } in
        incr runs;
        try
          let sys = System.build cfg in
          let ports = Array.append sys.System.cpu_ports sys.System.accel_ports in
          let o =
            Tester.run ~engine:sys.System.engine ~rng:(Rng.create ~seed:(seed * 7 + 1)) ~ports
              ~addresses:(Array.init 6 Addr.block) ~ops_per_core:ops ()
          in
          let viol = Xg.Os_model.error_count sys.System.os in
          if o.Tester.data_errors > 0 || o.Tester.deadlocked || viol > 0 then begin
            incr failures;
            Printf.printf "FAIL %s seed=%d errors=%d deadlock=%b viol=%d\n%!" (Config.name cfg)
              seed o.Tester.data_errors o.Tester.deadlocked viol
          end
        with e ->
          incr failures;
          Printf.printf "CRASH %s seed=%d: %s\n%!" (Config.name cfg) seed (Printexc.to_string e))
      (Config.all_configurations ())
  done;
  Printf.printf "soak: %d runs, %d failures\n" !runs !failures
