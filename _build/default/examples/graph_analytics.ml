(* Graph analytics: a data-dependent accelerator (the paper's second
   motivating access pattern) doing breadth-first relaxation over an edge
   list that the CPU occasionally mutates mid-run.

   "Future accelerators may wish to share data with the host at a fine
   granularity, where the particular data to be accessed is not known a
   priori" — exactly this kernel: every accelerator access depends on the
   value just loaded, so nothing can be prefetched or batch-copied, and CPU
   updates must become visible through coherence alone.

   Compares the one-level and two-level accelerator hierarchies on the same
   host, showing the shared accelerator L2 absorbing the reuse.

   Run with:  dune exec examples/graph_analytics.exe *)

module Config = Xguard_harness.Config
module System = Xguard_harness.System
module Engine = Xguard_sim.Engine
module Rng = Xguard_sim.Rng
module Xg = Xguard_xg

let nodes = 200
let walk_steps = 1200

let run_walk org =
  let base = { Config.default with Config.num_accel_cores = 4 } in
  let cfg = Config.make ~base Config.Hammer org in
  let sys = System.build cfg in
  let engine = sys.System.engine in
  let rng = Rng.create ~seed:11 in
  (* The CPU seeds every node with an "edge": node i points at some j. *)
  let cpu =
    Sequencer.create ~engine ~name:"cpu" ~port:sys.System.cpu_ports.(0) ~max_outstanding:8 ()
  in
  let edges = Array.init nodes (fun _ -> Rng.int rng nodes) in
  Array.iteri
    (fun i succ ->
      Sequencer.request cpu
        (Access.store (Addr.block i) (Data.token succ))
        ~on_complete:(fun _ ~latency:_ -> ()))
    edges;
  ignore (Engine.run engine);

  (* Each accelerator core chases pointers: load node, follow the stored
     successor.  The address of the next access IS the data of the last. *)
  let visited = ref 0 in
  let per_core = walk_steps / Array.length sys.System.accel_ports in
  Array.iteri
    (fun core port ->
      let seq =
        Sequencer.create ~engine ~name:(Printf.sprintf "walker%d" core) ~port
          ~max_outstanding:1 ()
      in
      let rec step current remaining =
        if remaining > 0 then
          Sequencer.request seq (Access.load (Addr.block current))
            ~on_complete:(fun v ~latency:_ ->
              incr visited;
              (* Salt the successor with the step counter so the walk keeps
                 exploring instead of falling into the functional graph's
                 short cycle. *)
              let next = (v + remaining) mod nodes in
              step (if next >= 0 then next else 0) (remaining - 1))
      in
      step core per_core)
    sys.System.accel_ports;
  (* Meanwhile the CPU rewires a few edges mid-walk; the walkers must observe
     the updates coherently (values stay within the node range). *)
  Engine.schedule engine ~delay:2000 (fun () ->
      for i = 0 to 15 do
        Sequencer.request cpu
          (Access.store (Addr.block (i * 7 mod nodes)) (Data.token (Rng.int rng nodes)))
          ~on_complete:(fun _ ~latency:_ -> ())
      done);
  ignore (Engine.run engine);
  let cycles = Engine.now engine in
  assert (Xg.Os_model.error_count sys.System.os = 0);
  (Config.name cfg, cycles, !visited, sys.System.host_net_messages ())

let () =
  let results =
    List.map run_walk
      [ Config.Xg_one_level Config.Transactional; Config.Xg_two_level Config.Transactional ]
  in
  List.iter
    (fun (name, cycles, visited, host_msgs) ->
      Printf.printf "%-24s %6d cycles for %d pointer-chases (%d host messages)\n" name cycles
        visited host_msgs)
    results;
  (match results with
  | [ (_, one_level, _, _); (_, two_level, _, _) ] ->
      Printf.printf "shared accelerator L2 speedup on reuse: %.2fx\n"
        (float_of_int one_level /. float_of_int two_level)
  | _ -> ());
  print_endline "graph analytics OK"
