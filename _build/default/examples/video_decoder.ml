(* Video decoder: a block-based accelerator (paper section 1's motivating
   example) decoding "frames" tile by tile while a CPU consumes the output.

   The accelerator is the two-level hierarchy of Figure 2d — four decoder
   cores with private L1s over a shared accelerator L2 — behind a Full-State
   Crossing Guard on an inclusive-MESI host.  Each frame:

     1. the CPU writes the compressed input tiles,
     2. the decoder cores read input and write output tiles (their tile
        reuse hits in the accelerator hierarchy, not the host),
     3. the CPU reads the decoded output and checks it.

   Run with:  dune exec examples/video_decoder.exe *)

module Config = Xguard_harness.Config
module System = Xguard_harness.System
module Engine = Xguard_sim.Engine
module Xg = Xguard_xg

let tile_blocks = 16
let tiles_per_frame = 8
let frames = 4
let input_base = 0
let output_base = 1024

let () =
  let base = { Config.default with Config.num_accel_cores = 4 } in
  let cfg = Config.make ~base Config.Mesi (Config.Xg_two_level Config.Full_state) in
  let sys = System.build cfg in
  Printf.printf "decoder: %d cores behind %s\n" (Array.length sys.System.accel_ports)
    (Config.name cfg);

  let engine = sys.System.engine in
  let cpu =
    Sequencer.create ~engine ~name:"cpu" ~port:sys.System.cpu_ports.(0) ~max_outstanding:8 ()
  in
  let cores =
    Array.mapi
      (fun i port ->
        Sequencer.create ~engine ~name:(Printf.sprintf "decoder%d" i) ~port
          ~max_outstanding:4 ())
      sys.System.accel_ports
  in

  (* One synchronous phase: run the engine until the queued work drains. *)
  let finish_phase () = ignore (Engine.run engine) in

  let host_traffic_for_decode = ref 0 in
  for frame = 0 to frames - 1 do
    (* 1. CPU produces the compressed input: one token per input block. *)
    for tile = 0 to tiles_per_frame - 1 do
      for b = 0 to tile_blocks - 1 do
        let addr = Addr.block (input_base + (tile * tile_blocks) + b) in
        let v = Data.token ((frame * 100_000) + (tile * 100) + b) in
        Sequencer.request cpu (Access.store addr v) ~on_complete:(fun _ ~latency:_ -> ())
      done
    done;
    finish_phase ();

    (* 2. Decoder cores: each takes a stripe of tiles, reads the input twice
       (motion compensation reads neighbours too) and writes the output. *)
    let before = sys.System.host_net_messages () in
    Array.iteri
      (fun core seq ->
        for tile = 0 to tiles_per_frame - 1 do
          if tile mod Array.length cores = core then begin
            for pass = 1 to 2 do
              ignore pass;
              for b = 0 to tile_blocks - 1 do
                let addr = Addr.block (input_base + (tile * tile_blocks) + b) in
                Sequencer.request seq (Access.load addr) ~on_complete:(fun _ ~latency:_ -> ())
              done
            done;
            for b = 0 to tile_blocks - 1 do
              let addr = Addr.block (output_base + (tile * tile_blocks) + b) in
              (* "Decode" = input token + 1. *)
              let v = Data.token ((frame * 100_000) + (tile * 100) + b + 1) in
              Sequencer.request seq (Access.store addr v) ~on_complete:(fun _ ~latency:_ -> ())
            done
          end
        done)
      cores;
    finish_phase ();
    host_traffic_for_decode := !host_traffic_for_decode + sys.System.host_net_messages () - before;

    (* 3. CPU consumes and checks the decoded frame. *)
    let errors = ref 0 in
    for tile = 0 to tiles_per_frame - 1 do
      for b = 0 to tile_blocks - 1 do
        let addr = Addr.block (output_base + (tile * tile_blocks) + b) in
        let expect = Data.token ((frame * 100_000) + (tile * 100) + b + 1) in
        Sequencer.request cpu (Access.load addr) ~on_complete:(fun v ~latency:_ ->
            if not (Data.equal v expect) then incr errors)
      done
    done;
    finish_phase ();
    Printf.printf "frame %d: decoded %d tiles, %d output errors\n" frame tiles_per_frame !errors;
    assert (!errors = 0)
  done;

  Printf.printf "total: %d cycles, %d host messages during decode phases, %d violations\n"
    (Engine.now engine) !host_traffic_for_decode
    (Xg.Os_model.error_count sys.System.os);
  assert (Xg.Os_model.error_count sys.System.os = 0);
  print_endline "video decoder OK"
