examples/video_decoder.ml: Access Addr Array Data Printf Sequencer Xguard_harness Xguard_sim Xguard_xg
