examples/quickstart.mli:
