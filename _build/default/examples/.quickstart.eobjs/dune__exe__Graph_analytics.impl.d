examples/graph_analytics.ml: Access Addr Array Data List Printf Sequencer Xguard_harness Xguard_sim Xguard_xg
