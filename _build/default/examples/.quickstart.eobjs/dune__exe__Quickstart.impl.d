examples/quickstart.ml: Access Addr Array Data Option Printf Xguard_harness Xguard_sim Xguard_xg
