examples/byo_cache.mli:
