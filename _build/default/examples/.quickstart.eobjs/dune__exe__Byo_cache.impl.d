examples/byo_cache.ml: Addr Data Fun Hashtbl List Memory_model Node Printf Xguard_network Xguard_sim Xguard_xg
