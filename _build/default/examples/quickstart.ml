(* Quickstart: a CPU and an accelerator sharing memory through Crossing Guard.

   Builds the default configuration — an AMD-Hammer-like host with two CPUs,
   and a MESI accelerator L1 behind a Transactional Crossing Guard — then
   moves a value back and forth between the accelerator and a CPU with full
   hardware coherence and no explicit flushes.

   Run with:  dune exec examples/quickstart.exe *)

module Config = Xguard_harness.Config
module System = Xguard_harness.System
module Engine = Xguard_sim.Engine
module Xg = Xguard_xg

(* A tiny blocking helper: issue one access and run the simulator until it
   completes.  Real clients use Sequencer for pipelining; see the other
   examples. *)
let do_access (sys : System.t) port access =
  let result = ref None in
  let rec attempt () =
    if not (port.Access.issue access ~on_done:(fun v -> result := Some v)) then begin
      (* The cache is busy (e.g. evicting); let the system settle and retry. *)
      ignore (Engine.run sys.System.engine);
      attempt ()
    end
  in
  attempt ();
  ignore (Engine.run sys.System.engine);
  Option.get !result

let () =
  (* 1. Pick a configuration.  `Config.all_configurations ()` lists the
     twelve the paper evaluates; here: Hammer host + one-level accel cache
     behind a Transactional guard. *)
  let cfg = Config.make Config.Hammer (Config.Xg_one_level Config.Transactional) in
  let sys = System.build cfg in
  Printf.printf "built %s\n" (Config.name cfg);

  let accel = sys.System.accel_ports.(0) in
  let cpu0 = sys.System.cpu_ports.(0) in
  let x = Addr.block 7 in

  (* 2. The accelerator writes; its cache takes the block in M through the
     guard (GetM -> DataM). *)
  ignore (do_access sys accel (Access.store x (Data.token 1234)));
  Printf.printf "accelerator stored 1234 at block 7\n";

  (* 3. A CPU reads the same block.  The host protocol forwards the request
     to the guard, the guard invalidates the accelerator's copy and supplies
     the dirty data — no flush, no copy, just coherence. *)
  let seen = do_access sys cpu0 (Access.load x) in
  Printf.printf "cpu0 loaded %d (expected 1234)\n" seen;
  assert (Data.equal seen (Data.token 1234));

  (* 4. And back: the CPU updates, the accelerator observes. *)
  ignore (do_access sys cpu0 (Access.store x (Data.token 5678)));
  let seen = do_access sys accel (Access.load x) in
  Printf.printf "accelerator loaded %d (expected 5678)\n" seen;
  assert (Data.equal seen (Data.token 5678));

  (* 5. A correct accelerator never trips the guard. *)
  Printf.printf "guarantee violations reported to the OS: %d\n"
    (Xg.Os_model.error_count sys.System.os);
  assert (Xg.Os_model.error_count sys.System.os = 0);
  Printf.printf "quickstart OK (%d simulated cycles)\n" (Engine.now sys.System.engine)
