(* Build-your-own accelerator cache.

   The point of the Crossing Guard interface (paper section 2.1) is that an
   accelerator designer can implement a correct coherent cache from scratch
   against five requests, four responses, one host request and three host
   responses — without knowing anything about the host protocol.

   This example does exactly that: a from-scratch, fully-associative,
   write-through VI cache in ~70 lines, speaking the interface directly over
   the ordered link to a Toy_home (the repository's minimal trusted home
   agent).  The same module would run unmodified behind the real Crossing
   Guard on either host protocol, because the interface is the contract.

   Run with:  dune exec examples/byo_cache.exe *)

module Engine = Xguard_sim.Engine
module Rng = Xguard_sim.Rng
module Xg_iface = Xguard_xg.Xg_iface
module Toy_home = Xguard_xg.Toy_home

(* ---- the custom cache: fully associative, VI, write-through ---- *)

module Tiny_vi_cache = struct
  type line = { mutable data : Data.t; mutable busy : bool }

  type t = {
    lines : (Addr.t, line) Hashtbl.t;
    capacity : int;
    send_req : Addr.t -> Xg_iface.accel_request -> unit;
    send_resp : Addr.t -> Xg_iface.accel_response -> unit;
    mutable pending : (Addr.t * (Data.t -> unit)) list;
  }

  let create ~capacity ~send_req ~send_resp =
    { lines = Hashtbl.create 16; capacity; send_req; send_resp; pending = [] }

  (* Loads: V -> hit; I -> GetM (a VI cache only ever asks for M). *)
  let load t addr k =
    match Hashtbl.find_opt t.lines addr with
    | Some line when not line.busy -> k line.data
    | Some _ -> failwith "tiny cache: one access at a time per block, please"
    | None ->
        (* Make room first: evict any idle victim with PutM (write-through
           style: we always own our lines dirty). *)
        if Hashtbl.length t.lines >= t.capacity then begin
          let victim =
            Hashtbl.fold
              (fun a l acc -> if l.busy then acc else Some (a, l))
              t.lines None
          in
          match victim with
          | Some (va, vl) ->
              Hashtbl.remove t.lines va;
              (* The WbAck will arrive later; nothing waits on it. *)
              t.send_req va (Xg_iface.Put_m vl.data)
          | None -> failwith "tiny cache: everything busy"
        end;
        Hashtbl.replace t.lines addr { data = Data.zero; busy = true };
        t.pending <- (addr, k) :: t.pending;
        t.send_req addr Xg_iface.Get_m

  let store t addr v k =
    load t addr (fun _ ->
        let line = Hashtbl.find t.lines addr in
        line.data <- v;
        k v)

  (* The entire downward protocol: three response kinds and one request. *)
  let deliver t = function
    | Xg_iface.To_accel_resp { addr; resp = Xg_iface.Data_m d }
    | Xg_iface.To_accel_resp { addr; resp = Xg_iface.Data_e d } -> (
        match Hashtbl.find_opt t.lines addr with
        | Some line ->
            line.data <- d;
            line.busy <- false;
            let ready, rest = List.partition (fun (a, _) -> Addr.equal a addr) t.pending in
            t.pending <- rest;
            List.iter (fun (_, k) -> k line.data) ready
        | None -> failwith "grant for a block we never asked for")
    | Xg_iface.To_accel_resp { resp = Xg_iface.Data_s _; _ } ->
        failwith "a VI cache never issues GetS, so DataS cannot arrive"
    | Xg_iface.To_accel_resp { resp = Xg_iface.Wb_ack; _ } -> ()
    | Xg_iface.To_accel_req { addr; req = Xg_iface.Invalidate } -> (
        (* Table 1's Invalidate column, VI edition: V -> DirtyWB, else InvAck. *)
        match Hashtbl.find_opt t.lines addr with
        | Some line when not line.busy ->
            Hashtbl.remove t.lines addr;
            t.send_resp addr (Xg_iface.Dirty_wb line.data)
        | Some _ | None -> t.send_resp addr Xg_iface.Inv_ack)
    | Xg_iface.To_xg_req _ | Xg_iface.To_xg_resp _ -> failwith "wrong direction"
end

(* ---- wire it to a home agent over the ordered link and exercise it ---- *)

let () =
  let engine = Engine.create () in
  let rng = Rng.create ~seed:7 in
  let registry = Node.Registry.create () in
  let accel_node = Node.Registry.fresh registry "byo-cache" in
  let home_node = Node.Registry.fresh registry "home" in
  let link =
    Xg_iface.Link.create ~engine ~rng ~name:"link"
      ~ordering:(Xguard_network.Network.Ordered { latency = 4 })
      ()
  in
  let send msg = Xg_iface.Link.send link ~src:accel_node ~dst:home_node msg in
  let cache =
    Tiny_vi_cache.create ~capacity:4
      ~send_req:(fun addr req -> send (Xg_iface.To_xg_req { addr; req }))
      ~send_resp:(fun addr resp -> send (Xg_iface.To_xg_resp { addr; resp }))
  in
  Xg_iface.Link.register link accel_node (fun ~src:_ msg -> Tiny_vi_cache.deliver cache msg);
  let memory = Memory_model.create () in
  let home =
    Toy_home.create ~engine ~link ~self:home_node ~accel:accel_node ~memory
      ~grant_style:Toy_home.Conservative ()
  in

  (* Write 12 blocks through a 4-line cache (forcing evictions), then read
     them back.  The tiny cache handles one miss at a time, so chain the
     accesses. *)
  let rec write_all i k =
    if i > 11 then k ()
    else
      Tiny_vi_cache.store cache (Addr.block i) (Data.token (1000 + i)) (fun _ ->
          write_all (i + 1) k)
  in
  let errors = ref 0 in
  let rec read_all i k =
    if i > 11 then k ()
    else
      Tiny_vi_cache.load cache (Addr.block i) (fun v ->
          if not (Data.equal v (Data.token (1000 + i))) then incr errors;
          read_all (i + 1) k)
  in
  write_all 0 (fun () -> read_all 0 (fun () -> ()));
  ignore (Engine.run engine);
  Printf.printf "wrote and read back 12 blocks through a 4-line VI cache: %d errors\n" !errors;
  assert (!errors = 0);

  (* The home recalls a block; the cache's Invalidate handler returns the
     dirty data, exactly per Table 1. *)
  let resident =
    match
      List.find_opt
        (fun i -> Toy_home.accel_state home (Addr.block i) <> `I)
        (List.init 12 Fun.id)
    with
    | Some i -> Addr.block i
    | None -> failwith "nothing resident?"
  in
  Toy_home.recall home resident ~on_done:(fun () ->
      Printf.printf "recall of block %d: memory now holds %d\n" (Addr.to_int resident)
        (Memory_model.read memory resident));
  ignore (Engine.run engine);
  assert (Data.equal (Memory_model.read memory resident) (Data.token (1000 + Addr.to_int resident)));
  print_endline "byo_cache OK — a from-scratch cache, coherent through the interface alone"
