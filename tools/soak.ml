(* Long-running randomized soak over every configuration: the scaled-down
   equivalent of the paper's 22 compute-years of random testing.

   Two phases:
   - random:   many seeds x all 12 configs under the checked random tester;
   - recovery: fuzz runs whose fault scripts cut the XG wire in periodic
     bursts under a recovery policy — every run must stay safe (no crash, no
     wedge, all CPU ops complete) and the sweep as a whole must produce
     rejoins (the link actually cycled through quarantine -> reset ->
     probation -> promotion, it did not just stay dead).

   Usage: dune exec tools/soak.exe [seeds] [ops_per_core] [random|recovery|all] *)

module Rng = Xguard_sim.Rng
module Config = Xguard_harness.Config
module System = Xguard_harness.System
module Tester = Xguard_harness.Random_tester
module Fuzz = Xguard_harness.Fuzz_tester
module Network = Xguard_network.Network
module Fault = Network.Fault
module Xg = Xguard_xg
open Xguard_proto

let random_soak ~seeds ~ops ~failures ~runs =
  for seed = 1 to seeds do
    List.iter
      (fun cfg ->
        let cfg = Config.stress_sized { cfg with Config.seed } in
        incr runs;
        try
          let sys = System.build cfg in
          let ports = Array.append sys.System.cpu_ports sys.System.accel_ports in
          let o =
            Tester.run ~engine:sys.System.engine ~rng:(Rng.create ~seed:(seed * 7 + 1)) ~ports
              ~addresses:(Array.init 6 Addr.block) ~ops_per_core:ops ()
          in
          let viol = Xg.Os_model.error_count sys.System.os in
          if o.Tester.data_errors > 0 || o.Tester.deadlocked || viol > 0 then begin
            incr failures;
            Printf.printf "FAIL %s seed=%d errors=%d deadlock=%b viol=%d\n%!" (Config.name cfg)
              seed o.Tester.data_errors o.Tester.deadlocked viol
          end
        with e ->
          incr failures;
          Printf.printf "CRASH %s seed=%d: %s\n%!" (Config.name cfg) seed (Printexc.to_string e))
      (Config.all_configurations ())
  done

(* Kill the wire every ~500 link messages: each burst must escalate to a
   quarantine, each quarantine must reset and rejoin, and the host must never
   wedge while the link cycles. *)
let recovery_soak ~seeds ~failures ~runs ~rejoins =
  let bursts = [ 120; 600; 1100; 1600 ] in
  let recovery =
    Xg.Xg_core.make_recovery ~reset_delay:100 ~reset_timeout:32 ~reset_attempts:4
      ~probation_window:400 ~probation_rate:0.5 ~probation_burst:4
      ~probation_quarantine_after:2 ~permakill_after:16 ()
  in
  let configs =
    [
      Config.make Config.Hammer (Config.Xg_one_level Config.Transactional);
      Config.make Config.Mesi (Config.Xg_one_level Config.Full_state);
    ]
  in
  for seed = 1 to seeds do
    List.iter
      (fun base ->
        let cfg =
          {
            (Config.stress_sized { base with Config.seed }) with
            Config.link_faults = Some Fault.zero;
            link_fault_scripts =
              List.map (fun nth -> { Fault.nth; needle = None; kind = Fault.Kill }) bursts;
            link_retry_timeout = 16;
            link_max_retries = 2;
            quarantine_after = 2;
            recovery = Some recovery;
          }
        in
        incr runs;
        try
          let o = Fuzz.run cfg ~pool:Fuzz.Disjoint ~cpu_ops:100 ~chaos_duration:15_000 () in
          rejoins := !rejoins + o.Fuzz.rejoins;
          let wedged =
            o.Fuzz.deadlocked || o.Fuzz.cpu_ops_completed <> o.Fuzz.cpu_ops_expected
          in
          if o.Fuzz.crashed <> None || wedged || o.Fuzz.cpu_data_errors > 0 then begin
            incr failures;
            Printf.printf "FAIL recovery %s seed=%d crashed=%b wedged=%b errors=%d\n%!"
              (Config.name cfg) seed
              (o.Fuzz.crashed <> None)
              wedged o.Fuzz.cpu_data_errors
          end
        with e ->
          incr failures;
          Printf.printf "CRASH recovery %s seed=%d: %s\n%!" (Config.name cfg) seed
            (Printexc.to_string e))
      configs
  done

let () =
  let seeds = try int_of_string Sys.argv.(1) with _ -> 50 in
  let ops = try int_of_string Sys.argv.(2) with _ -> 150 in
  let mode = try Sys.argv.(3) with _ -> "all" in
  let failures = ref 0 and runs = ref 0 and rejoins = ref 0 in
  if mode = "all" || mode = "random" then random_soak ~seeds ~ops ~failures ~runs;
  if mode = "all" || mode = "recovery" then begin
    recovery_soak ~seeds ~failures ~runs ~rejoins;
    Printf.printf "recovery soak: %d rejoins\n%!" !rejoins;
    if !rejoins = 0 then begin
      incr failures;
      Printf.printf "FAIL recovery soak: fault bursts never produced a rejoin\n%!"
    end
  end;
  Printf.printf "soak: %d runs, %d failures\n" !runs !failures;
  if !failures > 0 then exit 1
