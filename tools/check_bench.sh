#!/bin/sh
# Bench-regression gate: run `bench --quick --json` and compare per-experiment
# wall times against the committed BENCH_*.json baseline.
#
# The tolerance is deliberately loose — wall clock on shared CI runners is
# noisy — but tight enough that a real slowdown trips it: with TOL=2.5 a 5x
# slowdown (the injected-regression drill in docs/WORKFLOW.md) fails loudly
# while ordinary scheduling jitter passes.  Experiments whose baseline wall
# time is under MIN_WALL seconds are pure noise at --quick size and are
# reported but not gated.
#
# Usage: tools/check_bench.sh [BASELINE.json]
#   BASELINE.json   defaults to the lexicographically latest BENCH_*.json
# Environment:
#   TOL=2.5         fail when current wall_s > TOL * baseline wall_s
#   MIN_WALL=0.05   gate only experiments with baseline wall_s >= MIN_WALL
#   CURRENT_JSON=   test seam: compare this file instead of running bench
set -eu
cd "$(dirname "$0")/.."

TOL=${TOL:-2.5}
MIN_WALL=${MIN_WALL:-0.05}
baseline=${1:-$(ls BENCH_*.json | sort | tail -n 1)}
[ -f "$baseline" ] || { echo "check_bench: no baseline $baseline" >&2; exit 1; }

out=$(mktemp -d)
trap 'rm -rf "$out"' EXIT

if [ -n "${CURRENT_JSON:-}" ]; then
  current=$CURRENT_JSON
  [ -f "$current" ] || { echo "check_bench: no such file $current" >&2; exit 1; }
else
  dune build bench/main.exe
  current=$out/current.json
  echo "== bench --quick --json (all experiments) =="
  dune exec bench/main.exe -- --quick --json "$current" > /dev/null
fi

# Quick and full-size wall times are not comparable; refuse mixed modes.
base_quick=$(grep -o '"quick":[a-z]*' "$baseline" | head -n 1)
cur_quick=$(grep -o '"quick":[a-z]*' "$current" | head -n 1)
if [ "$base_quick" != "$cur_quick" ]; then
  echo "check_bench: FAIL: baseline is $base_quick but current run is $cur_quick" >&2
  exit 1
fi

# The JSON is hand-rolled and single-line (bench/main.ml emit_json); experiment
# objects carry "id" then "wall_s", and no table content contains an "id" key,
# so splitting on commas and pairing the two fields is exact.
walls() {
  awk 'BEGIN { RS = "," }
       /"id":"/   { sub(/.*"id":"/, ""); sub(/".*/, ""); id = $0 }
       /"wall_s":/ { sub(/.*"wall_s":/, ""); print id, $0 }' "$1"
}
walls "$baseline" > "$out/base.txt"
walls "$current" > "$out/cur.txt"

echo "== wall-time gate: baseline $baseline, tolerance ${TOL}x =="
awk -v tol="$TOL" -v min="$MIN_WALL" '
  NR == FNR { base[$1] = $2; next }
  {
    if (!($1 in base)) next
    b = base[$1] + 0; c = $2 + 0
    if (b < min) { printf "  %-4s baseline %7.3fs below %.2fs noise floor, not gated\n", $1, b, min; next }
    checked++
    fail = (c > tol * b)
    printf "  %-4s baseline %7.3fs current %7.3fs ratio %5.2fx %s\n", \
           $1, b, c, c / b, (fail ? "FAIL" : "ok")
    if (fail) bad++
  }
  END {
    if (checked == 0) { print "check_bench: FAIL: no experiments gated"; exit 1 }
    if (bad > 0) { printf "check_bench: FAIL: %d experiment(s) regressed beyond %.1fx\n", bad, tol; exit 1 }
    printf "check_bench: OK (%d experiments gated, tolerance %.1fx)\n", checked, tol
  }
' "$out/base.txt" "$out/cur.txt"
