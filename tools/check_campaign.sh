#!/bin/sh
# Campaign determinism sweep + documentation build smoke test.
#
# The campaign layer's headline invariant is that -j only changes wall-clock
# time, never output: jobs are enumerated in a fixed order, seeds are derived
# per job position, and merging happens in job order (lib/harness/campaign.ml).
# This script asserts byte-equality of a small campaign across worker counts,
# checks the campaign passes at all, and — when odoc is installed — builds the
# API docs so doc-comment rot fails fast.
#
# Usage: tools/check_campaign.sh
set -eu
cd "$(dirname "$0")/.."

dune build

out=$(mktemp -d)
trap 'rm -rf "$out"' EXIT

echo "== campaign determinism: -c all --seeds 2 under -j 1/2/4 =="
for j in 1 2 4; do
  dune exec bin/xguard_cli.exe -- campaign -c all --seeds 2 -j "$j" \
    > "$out/campaign_j$j.txt"
done
for j in 2 4; do
  if ! diff -u "$out/campaign_j1.txt" "$out/campaign_j$j.txt"; then
    echo "FAIL: campaign output differs between -j 1 and -j $j" >&2
    exit 1
  fi
done
echo "byte-identical across -j 1/2/4"
tail -n 2 "$out/campaign_j1.txt"
if ! grep -q '^PASS$' "$out/campaign_j1.txt"; then
  echo "FAIL: campaign reported failures" >&2
  exit 1
fi

echo "== topology campaign determinism: N=3 mixed topology under -j 1/2/4 =="
topo='hammer:shards=2;gpu0=trans,cached;nic0=full,uncached,lat=12;dsp0=trans,2lvl,cores=2'
for j in 1 2 4; do
  dune exec bin/xguard_cli.exe -- campaign --topology "$topo" --seeds 4 -j "$j" \
    > "$out/topo_j$j.txt"
done
for j in 2 4; do
  if ! diff -u "$out/topo_j1.txt" "$out/topo_j$j.txt"; then
    echo "FAIL: topology campaign output differs between -j 1 and -j $j" >&2
    exit 1
  fi
done
echo "byte-identical across -j 1/2/4"
if ! grep -q '^PASS$' "$out/topo_j1.txt"; then
  echo "FAIL: topology campaign reported failures" >&2
  exit 1
fi

echo "== stress CLI determinism: --seeds 4 under -j 1/3 =="
dune exec bin/xguard_cli.exe -- stress -c mesi/xg-full-1lvl --seeds 4 -j 1 \
  > "$out/stress_j1.txt"
dune exec bin/xguard_cli.exe -- stress -c mesi/xg-full-1lvl --seeds 4 -j 3 \
  > "$out/stress_j3.txt"
diff -u "$out/stress_j1.txt" "$out/stress_j3.txt" || {
  echo "FAIL: stress output differs between -j 1 and -j 3" >&2
  exit 1
}
echo "byte-identical across -j 1/3"

# The container may not carry odoc; the doc build is a smoke test, not a gate,
# when the tool is absent.
echo "== dune build @doc =="
if dune build @doc 2>/dev/null; then
  echo "docs built"
else
  if command -v odoc >/dev/null 2>&1; then
    echo "FAIL: odoc is installed but dune build @doc failed" >&2
    dune build @doc
    exit 1
  fi
  echo "odoc not installed; skipping doc build"
fi

echo "check_campaign: OK"
