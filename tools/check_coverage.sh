#!/bin/sh
# Build the project and run the transition-coverage floor suite.
#
# The suite drives the random tester and the fuzzer over both hosts and both
# Crossing Guard modes, merges every controller's (state x event) coverage
# counters, and fails if any controller drops below its registered floor
# (test/test_coverage_floor.ml), printing the uncovered transitions.
#
# Usage: tools/check_coverage.sh
set -eu
cd "$(dirname "$0")/.."
dune build
exec dune exec test/main.exe -- test coverage-floor -v
