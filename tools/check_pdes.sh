#!/bin/sh
# Sharded-simulator gate (ISSUE 9): the hard invariant is that --sim-j N
# produces byte-identical stdout and span artifacts for every N, on every
# gated config.  That part always runs.  The speedup smoke needs real
# parallelism, so it only runs when the machine has >= 2 CPUs (a 1-CPU box
# timeshares the worker domains and can only measure overhead) — it is
# SKIPped, loudly, otherwise.
#
# Usage: tools/check_pdes.sh
# Environment:
#   SPEEDUP_MIN=1.2   minimum wall-clock ratio (sim-j 1 / sim-j 4) to pass
#                     the smoke on a multi-core machine (the 1.5x target is
#                     measured by the committed bench baseline, not here)
#   STRESS_OPS=1500   per-core ops for the speedup measurement run
set -eu
cd "$(dirname "$0")/.."

SPEEDUP_MIN=${SPEEDUP_MIN:-1.2}
STRESS_OPS=${STRESS_OPS:-1500}

dune build bin/xguard_cli.exe
CLI=_build/default/bin/xguard_cli.exe
TOPO4='hammer:shards=2;a0=trans,cached;b0=full,uncached,lat=12;c0=trans,2lvl,cores=2,lat=6;d0=full,cached'

out=$(mktemp -d)
trap 'rm -rf "$out"' EXIT
fail=0
skipped=0

# run_case NAME -- CLI ARGS... : run with --sim-j 1/2/4 (+ a span timeline)
# and require stdout and the span JSON to be byte-identical across the three.
# The one legitimate difference is the artifact path we choose per run, so
# the "span timeline written to" line is stripped before comparing.
run_case() {
  name=$1; shift
  for j in 1 2 4; do
    if ! "$CLI" "$@" --sim-j "$j" --spans --spans-out "$out/$name.spans.$j.json" \
        > "$out/$name.stdout.$j" 2>&1; then
      echo "check_pdes: FAIL: $name --sim-j $j exited nonzero" >&2
      sed 's/^/    /' "$out/$name.stdout.$j" >&2
      fail=1
      return
    fi
    grep -v '^span timeline written to ' "$out/$name.stdout.$j" \
      > "$out/$name.clean.$j"
  done
  for j in 2 4; do
    if ! cmp -s "$out/$name.clean.1" "$out/$name.clean.$j"; then
      echo "check_pdes: FAIL: $name stdout differs between --sim-j 1 and --sim-j $j" >&2
      diff "$out/$name.clean.1" "$out/$name.clean.$j" | head -20 >&2 || true
      fail=1
    fi
    if ! cmp -s "$out/$name.spans.1.json" "$out/$name.spans.$j.json"; then
      echo "check_pdes: FAIL: $name span timeline differs between --sim-j 1 and --sim-j $j" >&2
      fail=1
    fi
  done
  echo "  $name: --sim-j 1/2/4 byte-identical"
}

echo "== byte-identity: stdout + span timelines across --sim-j 1/2/4 =="
run_case run_hammer_1lvl run -c hammer/xg-trans-1lvl
run_case run_mesi_2lvl run -c mesi/xg-full-2lvl -w streaming
run_case stress_legacy stress -c mesi/xg-trans-1lvl --seeds 3 --ops 200
run_case stress_topo4 stress --topology "$TOPO4" --seeds 2 --ops 200
run_case stress_topo4_jobs stress --topology "$TOPO4" --seeds 4 --ops 100 -j 2

echo "== eligibility: ineligible configs must be refused cleanly =="
if "$CLI" stress -c hammer/accel-side --sim-j 2 --seeds 1 > "$out/inelig" 2>&1; then
  echo "check_pdes: FAIL: guard-less config accepted --sim-j" >&2
  fail=1
elif ! grep -q 'sim-j' "$out/inelig"; then
  echo "check_pdes: FAIL: rejection message does not mention --sim-j" >&2
  fail=1
else
  echo "  guard-less config refused with a reason"
fi
if "$CLI" stress -c hammer/xg-trans-1lvl --drop 0.01 --sim-j 2 --seeds 1 \
    > "$out/inelig2" 2>&1; then
  echo "check_pdes: FAIL: faulty-link config accepted --sim-j" >&2
  fail=1
else
  echo "  faulty-link config refused with a reason"
fi

ncpu=$( (nproc || getconf _NPROCESSORS_ONLN || echo 1) 2>/dev/null | head -n 1)
echo "== speedup smoke (machine has $ncpu CPUs) =="
if [ "$ncpu" -lt 2 ]; then
  skipped=1
  echo "  SKIP: speedup is unobservable on a single-CPU machine; the"
  echo "  byte-identity gate above still ran.  Run this script on >= 2 CPUs"
  echo "  (or compare pdes.* rows across BENCH_*.json) for the wall-clock check."
  # GitHub Actions surfaces this as a step annotation; harmless elsewhere.
  echo "::warning::check_pdes speedup smoke SKIPPED ($ncpu CPU); byte-identity still checked"
else
  wall() {
    start=$(date +%s%N)
    "$CLI" stress --topology "$TOPO4" --seeds 1 --ops "$STRESS_OPS" --sim-j "$1" \
      > /dev/null 2>&1
    end=$(date +%s%N)
    echo $(( (end - start) / 1000000 ))
  }
  # Warm up (page cache, first-run effects), then measure.
  wall 1 > /dev/null
  t1=$(wall 1)
  t4=$(wall 4)
  ratio=$(awk -v a="$t1" -v b="$t4" 'BEGIN { printf "%.2f", a / b }')
  echo "  4-guard stress: --sim-j 1 ${t1}ms, --sim-j 4 ${t4}ms (${ratio}x)"
  if awk -v r="$ratio" -v m="$SPEEDUP_MIN" 'BEGIN { exit !(r < m) }'; then
    echo "check_pdes: FAIL: speedup ${ratio}x below ${SPEEDUP_MIN}x" >&2
    fail=1
  fi
fi

if [ "$fail" -ne 0 ]; then
  echo "check_pdes: FAIL" >&2
  exit 1
fi
if [ "$skipped" -ne 0 ]; then
  echo "check_pdes: PASS (WARNING: speedup smoke SKIPPED on a $ncpu-CPU machine)"
else
  echo "check_pdes: PASS"
fi
