#!/bin/sh
# Metrics-layer gate (ISSUE 10), four halves:
#
#   (a) metrics-off byte-identity — telemetry must be invisible when not
#       requested.  Two plain runs of the same seed must be byte-identical,
#       and a metrics-on run must differ ONLY by the delimited
#       "== metrics ==" .. "== end metrics ==" stdout block; stripping it
#       recovers the plain run byte-for-byte.
#
#   (b) stream determinism — the xguard-metrics-v1 JSONL stream must be
#       byte-identical for any campaign -j and any --sim-j, and two
#       identical --slo runs must print byte-identical verdicts.
#
#   (c) JSONL schema — every line parses as one JSON object, the stream
#       opens with a schema/meta line, and the line kinds stay within the
#       documented set (python3 when available, grep probes otherwise).
#
#   (d) report merge — `xguard report --metrics A --metrics B` must merge
#       two shard streams into one health report with per-guard SLO rows.
#
# Usage: tools/check_metrics.sh
# Environment:
#   SEEDS=2 OPS=400   stress run size (big enough for several sampler ticks)
set -eu
cd "$(dirname "$0")/.."

SEEDS=${SEEDS:-2}
OPS=${OPS:-400}
SLO='xg.decide:p99<=100000;seq.e2e:p99<=1000000;avail>=0.5'

out=$(mktemp -d)
trap 'rm -rf "$out"' EXIT

dune build bin/xguard_cli.exe
CLI=_build/default/bin/xguard_cli.exe
TOPO2='hammer:shards=2;a0=trans,cached;b0=full,uncached,lat=12'

stress() { "$CLI" stress -c mesi/xg-trans-1lvl --seeds "$SEEDS" --ops "$OPS" "$@"; }

# The metrics block is one contiguous, delimited stdout insertion.
strip_metrics_block() {
  sed '/^== metrics ==$/,/^== end metrics ==$/d' "$1"
}

echo "== (a) metrics-off byte-identity =="
stress > "$out/off1.txt"
stress > "$out/off2.txt"
if ! cmp -s "$out/off1.txt" "$out/off2.txt"; then
  echo "check_metrics: FAIL: two metrics-off runs differ" >&2
  exit 1
fi
stress --metrics-out "$out/on.jsonl" --watchdog --slo "$SLO" > "$out/on.txt"
strip_metrics_block "$out/on.txt" > "$out/on-stripped.txt"
if ! cmp -s "$out/off1.txt" "$out/on-stripped.txt"; then
  echo "check_metrics: FAIL: metrics perturbed the run beyond its block:" >&2
  diff "$out/off1.txt" "$out/on-stripped.txt" | head -20 >&2
  exit 1
fi
echo "  mesi/xg-trans-1lvl ok (metrics block is the only stdout delta)"

echo "== (b) stream determinism =="
# campaign -j: the JSONL stream must not depend on the worker count.
for j in 1 2; do
  "$CLI" campaign -c hammer/xg-trans-1lvl --seeds 2 -j "$j" \
    --metrics-out "$out/campaign.$j.jsonl" --watchdog --slo "$SLO" \
    > "$out/campaign.$j.txt"
done
if ! cmp -s "$out/campaign.1.jsonl" "$out/campaign.2.jsonl"; then
  echo "check_metrics: FAIL: campaign stream differs between -j 1 and -j 2" >&2
  diff "$out/campaign.1.jsonl" "$out/campaign.2.jsonl" | head -10 >&2 || true
  exit 1
fi
echo "  campaign stream byte-identical across -j 1/2"

# --sim-j: the stream must not depend on the engine shard count either.
# The artifact path is the one legitimate stdout difference, so the echoed
# "written to" line is dropped before comparing stdout.
for j in 1 2; do
  "$CLI" stress --topology "$TOPO2" --seeds 1 --ops "$OPS" --sim-j "$j" \
    --metrics-out "$out/topo.$j.jsonl" --watchdog --slo "$SLO" \
    > "$out/topo.$j.txt"
  grep -v '^metrics stream written to ' "$out/topo.$j.txt" > "$out/topo.clean.$j"
done
if ! cmp -s "$out/topo.1.jsonl" "$out/topo.2.jsonl"; then
  echo "check_metrics: FAIL: stream differs between --sim-j 1 and --sim-j 2" >&2
  diff "$out/topo.1.jsonl" "$out/topo.2.jsonl" | head -10 >&2 || true
  exit 1
fi
if ! cmp -s "$out/topo.clean.1" "$out/topo.clean.2"; then
  echo "check_metrics: FAIL: stdout differs between --sim-j 1 and --sim-j 2" >&2
  diff "$out/topo.clean.1" "$out/topo.clean.2" | head -10 >&2 || true
  exit 1
fi
echo "  topology stream + verdicts byte-identical across --sim-j 1/2"

# SLO verdict determinism: same run twice, same verdict table, same stream.
stress --metrics-out "$out/slo2.jsonl" --watchdog --slo "$SLO" > "$out/slo2.txt"
sed "s|$out/on.jsonl|STREAM|" "$out/on.txt" > "$out/slo.a"
sed "s|$out/slo2.jsonl|STREAM|" "$out/slo2.txt" > "$out/slo.b"
if ! cmp -s "$out/slo.a" "$out/slo.b" || ! cmp -s "$out/on.jsonl" "$out/slo2.jsonl"; then
  echo "check_metrics: FAIL: identical --slo runs produced different verdicts" >&2
  exit 1
fi
echo "  SLO verdicts deterministic across identical runs"

echo "== (c) JSONL schema =="
check_stream() {
  file=$1
  if command -v python3 > /dev/null 2>&1; then
    python3 - "$file" << 'EOF'
import json, sys

kinds = {"job", "sample", "watchdog", "avail", "hist", "shist", "slo"}
seen = set()
with open(sys.argv[1]) as f:
    lines = [l for l in f.read().splitlines() if l]
assert lines, "empty stream"
meta = json.loads(lines[0])
assert meta.get("schema") == "xguard-metrics-v1", f"bad schema line: {meta}"
assert isinstance(meta.get("period"), int) and meta["period"] > 0
assert isinstance(meta.get("jobs"), int) and meta["jobs"] > 0
for l in lines[1:]:
    obj = json.loads(l)
    kind = obj.get("t")
    assert kind in kinds, f"unknown line type {kind!r}: {l[:80]}"
    seen.add(kind)
    if kind == "hist":
        assert {"guard", "metric", "count", "sum", "min", "max", "buckets"} <= set(obj)
    if kind == "sample":
        assert isinstance(obj.get("ts"), int) and obj["ts"] >= 0
        assert isinstance(obj.get("counters"), dict)
        assert isinstance(obj.get("gauges"), dict)
assert "sample" in seen, "no sample lines"
assert "slo" in seen, "no embedded SLO verdicts"
print(f"  {sys.argv[1]}: {len(lines)} lines, kinds: {sorted(seen)}")
EOF
  else
    echo "  warning: python3 not found; grep probes only" >&2
    grep -q '"schema":"xguard-metrics-v1"' "$file"
    grep -q '"type":"sample"' "$file"
    grep -q '"type":"slo"' "$file"
    echo "  $file: grep probes ok (schema not fully validated)"
  fi
}
check_stream "$out/on.jsonl"
check_stream "$out/campaign.1.jsonl"
check_stream "$out/topo.1.jsonl"

echo "== (d) report merges shard streams =="
"$CLI" report --metrics "$out/campaign.1.jsonl" --metrics "$out/topo.1.jsonl" \
  --slo "$SLO" --html "$out/health.html" > "$out/report.txt"
grep -q 'xguard health report' "$out/report.txt" || {
  echo "check_metrics: FAIL: report did not render a health report" >&2
  exit 1
}
grep -q 'Merged metric streams' "$out/report.txt" || {
  echo "check_metrics: FAIL: report did not list the merged streams" >&2
  exit 1
}
grep -q 'avail>=' "$out/report.txt" || {
  echo "check_metrics: FAIL: report has no SLO verdict rows" >&2
  exit 1
}
[ -s "$out/health.html" ] || {
  echo "check_metrics: FAIL: --html wrote nothing" >&2
  exit 1
}
echo "  two shard streams merged; HTML dashboard written"

echo "check_metrics: OK"
