#!/bin/sh
# Span-layer gate, two halves:
#
#   (a) spans-off byte-identity — the span layer must be invisible when not
#       armed.  Two spans-off runs of the same seed must be byte-identical,
#       and a spans-on run of that seed must differ from the spans-off run
#       ONLY by the inserted span block (attribution table + bookkeeping +
#       "span timeline written" lines).  Stripping that block and comparing
#       proves arming the recorder did not perturb the simulation.
#
#   (b) Perfetto schema — `stress --spans --spans-out` on one Hammer and one
#       MESI config must emit trace-event JSON that parses, contains complete
#       ("X") events with ts/dur/pid/tid/cat fields, counter ("C") series from
#       the time-series sampler, and >= MIN_SEGS distinct segment names
#       (the ISSUE 5 acceptance floor is 6).
#
# Validation uses python3's stdlib json when available, else jq, else falls
# back to grep probes with a warning.  No dependencies are installed.
#
# Usage: tools/check_spans.sh
# Environment:
#   SEEDS=1 OPS=4000   stress run size (big enough that every gated segment
#                      and all five guard txn types appear)
#   MIN_SEGS=6         distinct-segment floor for the Perfetto traces
set -eu
cd "$(dirname "$0")/.."

SEEDS=${SEEDS:-1}
OPS=${OPS:-4000}
MIN_SEGS=${MIN_SEGS:-6}

out=$(mktemp -d)
trap 'rm -rf "$out"' EXIT

dune build bin/xguard_cli.exe
cli=_build/default/bin/xguard_cli.exe

stress() { cfg=$1; shift; "$cli" stress --config "$cfg" --seeds "$SEEDS" --ops "$OPS" "$@"; }

# The span block is one contiguous insertion: the attribution table, the
# replaced/dropped bookkeeping line, and the --spans-out confirmation.
strip_span_block() {
  sed '/^Latency attribution (cycles)$/,/^span timeline written to /d' "$1"
}

echo "== (a) spans-off byte-identity =="
for cfg in hammer/xg-trans-1lvl mesi/xg-trans-1lvl; do
  tag=$(echo "$cfg" | tr / _)
  stress "$cfg" > "$out/$tag.off1.txt"
  stress "$cfg" > "$out/$tag.off2.txt"
  if ! cmp -s "$out/$tag.off1.txt" "$out/$tag.off2.txt"; then
    echo "check_spans: FAIL: two spans-off runs of $cfg differ" >&2
    exit 1
  fi
  stress "$cfg" --spans --spans-out="$out/$tag.json" > "$out/$tag.on.txt"
  strip_span_block "$out/$tag.on.txt" > "$out/$tag.on-stripped.txt"
  if ! cmp -s "$out/$tag.off1.txt" "$out/$tag.on-stripped.txt"; then
    echo "check_spans: FAIL: --spans perturbed the $cfg run beyond the span block:" >&2
    diff "$out/$tag.off1.txt" "$out/$tag.on-stripped.txt" | head -20 >&2
    exit 1
  fi
  echo "  $cfg ok (deterministic; span block is the only delta)"
done

echo "== (b) Perfetto trace schema =="
check_json() {
  file=$1
  if command -v python3 > /dev/null 2>&1; then
    MIN_SEGS="$MIN_SEGS" python3 - "$file" << 'EOF'
import json, os, sys

with open(sys.argv[1]) as f:
    doc = json.load(f)
events = doc["traceEvents"]
assert isinstance(events, list) and events, "traceEvents empty"
xs = [e for e in events if e.get("ph") == "X"]
assert xs, "no complete (X) events"
for e in xs:
    missing = {"name", "cat", "ts", "dur", "pid", "tid"} - set(e)
    assert not missing, f"X event missing {missing}: {e}"
segs = {e["name"] for e in xs}
floor = int(os.environ["MIN_SEGS"])
assert len(segs) >= floor, f"only {len(segs)} segments ({sorted(segs)}), need {floor}"
counters = {e["name"] for e in events if e.get("ph") == "C"}
assert counters, "no counter (C) series from the sampler"
assert any(e.get("ph") == "M" for e in events), "no metadata events"
print(f"  {sys.argv[1]}: {len(xs)} X events, {len(segs)} segments, "
      f"{len(counters)} counter series")
EOF
  elif command -v jq > /dev/null 2>&1; then
    segs=$(jq -r '[.traceEvents[] | select(.ph == "X") | .name] | unique | length' "$file")
    counters=$(jq -r '[.traceEvents[] | select(.ph == "C")] | length' "$file")
    [ "$segs" -ge "$MIN_SEGS" ] || { echo "check_spans: FAIL: $segs segments < $MIN_SEGS" >&2; exit 1; }
    [ "$counters" -gt 0 ] || { echo "check_spans: FAIL: no counter events" >&2; exit 1; }
    echo "  $file: $segs segments, $counters counter events (jq)"
  else
    echo "  warning: neither python3 nor jq found; grep probes only" >&2
    grep -q '"traceEvents"' "$file"
    grep -q '"ph":"X"' "$file"
    grep -q '"ph":"C"' "$file"
    echo "  $file: grep probes ok (schema not fully validated)"
  fi
}
check_json "$out/hammer_xg-trans-1lvl.json"
check_json "$out/mesi_xg-trans-1lvl.json"

echo "check_spans: OK"
