#!/bin/sh
# Lossy-link fault matrix (PR 3) + recovery lifecycle suite (PR 8).
#
# Sweeps the fault-injection campaign over drop probabilities x both hosts
# and asserts the recovery layer holds the line:
#   - drop=0    with --reliable-link must be byte-identical to the plain run
#     (the seq+checksum layer and its reporting are invisible at fault rate 0);
#   - drop>0    campaigns must still PASS (zero data errors, deadlocks or
#     guard violations — every lost frame recovered by retransmission);
#   - a directed kill script must quarantine the accelerator while the fuzz
#     run completes safely;
#   - a hang budget that never trips, and a recovery policy that never
#     engages, must be pure observers: the faulted run's output is
#     byte-identical apart from their own gated report lines;
#   - under a recovery policy a kill script's quarantine must reset, rejoin
#     and keep the host live, and the recovery soak's periodic fault bursts
#     must produce rejoins without ever wedging.
#
# Usage: tools/check_faults.sh [drop probabilities...]   (default: 0 0.01 0.05)
set -eu
cd "$(dirname "$0")/.."

drops=${*:-"0 0.01 0.05"}
jobs=2

dune build

out=$(mktemp -d)
trap 'rm -rf "$out"' EXIT

echo "== fault-rate 0 byte-identity (hammer + mesi, one config each) =="
for c in hammer/xg-trans-1lvl mesi/xg-full-1lvl; do
  tag=$(echo "$c" | tr '/' '_')
  dune exec bin/xguard_cli.exe -- campaign -c "$c" --seeds 2 -j $jobs \
    > "$out/plain_$tag.txt"
  dune exec bin/xguard_cli.exe -- campaign -c "$c" --seeds 2 -j $jobs --reliable-link \
    > "$out/reliable_$tag.txt"
  if ! diff -u "$out/plain_$tag.txt" "$out/reliable_$tag.txt"; then
    echo "FAIL: --reliable-link at fault rate 0 changed the $c report" >&2
    exit 1
  fi
  echo "$c: byte-identical with the reliability layer on"
done

echo "== fault matrix: drop in {$drops} x both hosts, -j $jobs =="
for drop in $drops; do
  for host in hammer mesi; do
    for mode in xg-trans-1lvl xg-full-1lvl; do
      c="$host/$mode"
      tag=$(echo "${c}_drop${drop}" | tr '/.' '__')
      if ! dune exec bin/xguard_cli.exe -- campaign -c "$c" --seeds 2 -j $jobs \
          --fault-drop "$drop" > "$out/m_$tag.txt"; then
        echo "FAIL: campaign $c --fault-drop $drop" >&2
        cat "$out/m_$tag.txt" >&2
        exit 1
      fi
      if ! grep -q '^PASS$' "$out/m_$tag.txt"; then
        echo "FAIL: campaign $c --fault-drop $drop did not report PASS" >&2
        cat "$out/m_$tag.txt" >&2
        exit 1
      fi
      echo "$c drop=$drop: PASS"
    done
  done
done

echo "== directed kill script: quarantine fires, host completes =="
dune exec bin/xguard_cli.exe -- fuzz -c hammer/xg-trans-1lvl --fault-script kill:200 \
  > "$out/kill.txt"
if ! grep -q '^link quarantined   true$' "$out/kill.txt"; then
  echo "FAIL: kill script did not quarantine the accelerator" >&2
  cat "$out/kill.txt" >&2
  exit 1
fi
if ! grep -q '^deadlocked         false$' "$out/kill.txt"; then
  echo "FAIL: kill-the-link run deadlocked" >&2
  cat "$out/kill.txt" >&2
  exit 1
fi
echo "quarantine fired; host stayed live"

echo "== disabled budget / idle recovery are pure observers =="
dune exec bin/xguard_cli.exe -- fuzz -c hammer/xg-trans-1lvl --seed 5 --fault-drop 0.02 \
  > "$out/obs_plain.txt"
dune exec bin/xguard_cli.exe -- fuzz -c hammer/xg-trans-1lvl --seed 5 --fault-drop 0.02 \
  --budget-inv 1000000 > "$out/obs_budget.txt"
grep -v '^budget trips' "$out/obs_budget.txt" > "$out/obs_budget_stripped.txt"
if ! diff -u "$out/obs_plain.txt" "$out/obs_budget_stripped.txt"; then
  echo "FAIL: a never-tripping --budget-inv perturbed the faulted run" >&2
  exit 1
fi
dune exec bin/xguard_cli.exe -- fuzz -c hammer/xg-trans-1lvl --seed 5 --fault-drop 0.02 \
  --recover > "$out/obs_recover.txt"
grep -v '^link rejoins\|^permakilled' "$out/obs_recover.txt" > "$out/obs_recover_stripped.txt"
if ! diff -u "$out/obs_plain.txt" "$out/obs_recover_stripped.txt"; then
  echo "FAIL: an idle --recover policy perturbed the faulted run" >&2
  exit 1
fi
echo "budget-disabled and recovery-idle runs byte-identical apart from gated lines"

echo "== recovery suite: kill script under a recovery policy rejoins =="
dune exec bin/xguard_cli.exe -- fuzz -c hammer/xg-trans-1lvl --seed 2 \
  --fault-script kill:200 --recover > "$out/recover.txt"
if ! grep -q '^link rejoins       [1-9]' "$out/recover.txt"; then
  echo "FAIL: recovery policy did not rejoin after the kill script" >&2
  cat "$out/recover.txt" >&2
  exit 1
fi
if ! grep -q '^permakilled        false$' "$out/recover.txt"; then
  echo "FAIL: recovery run ended permakilled" >&2
  cat "$out/recover.txt" >&2
  exit 1
fi
if ! grep -q '^deadlocked         false$' "$out/recover.txt"; then
  echo "FAIL: recovery run deadlocked" >&2
  cat "$out/recover.txt" >&2
  exit 1
fi
echo "kill script quarantined, link reset and rejoined; host stayed live"

echo "== recovery soak: periodic fault bursts, rejoins > 0, no wedge =="
if ! dune exec tools/soak.exe 2 100 recovery > "$out/soak.txt" 2>&1; then
  echo "FAIL: recovery soak" >&2
  cat "$out/soak.txt" >&2
  exit 1
fi
cat "$out/soak.txt"

echo "check_faults: OK"
