(* Lossy-link fuzz sweep: run the fuzzer over a seed range with a fault model
   installed and print, per seed, which recovery paths fired (retransmission,
   duplicate suppression, corruption detection, escalation, quarantine — and,
   for the recovery variants, link reset/rejoin and permanent kill) and
   whether the run stayed safe.  Used to pick the pinned seeds of
   test/test_regression_seeds.ml.

   Usage: dune exec tools/fault_sweep.exe [first_seed] [last_seed] *)

module Config = Xguard_harness.Config
module Fuzz = Xguard_harness.Fuzz_tester
module Network = Xguard_network.Network
module Fault = Network.Fault
module Xg = Xguard_xg

let count stats label = Option.value ~default:0 (List.assoc_opt label stats)

let sweep_cfg base faults scripts =
  {
    (Config.stress_sized base) with
    Config.link_faults = Some faults;
    link_fault_scripts = scripts;
    link_retry_timeout = 16;
    link_max_retries = 2;
    quarantine_after = 2;
  }

(* Fast-cycling recovery policy, sized so quarantine -> reset -> probation ->
   promotion completes well inside one fuzz run. *)
let sweep_recovery ~permakill_after =
  Xg.Xg_core.make_recovery ~reset_delay:100 ~reset_timeout:32 ~reset_attempts:4
    ~probation_window:400 ~probation_rate:0.5 ~probation_burst:4
    ~probation_quarantine_after:2 ~permakill_after ()

let with_recovery ~permakill_after cfg =
  { cfg with Config.recovery = Some (sweep_recovery ~permakill_after) }

let () =
  let first = try int_of_string Sys.argv.(1) with _ -> 1 in
  let last = try int_of_string Sys.argv.(2) with _ -> 20 in
  let base = Config.make Config.Hammer (Config.Xg_one_level Config.Transactional) in
  let variants =
    [
      ("drop2%", sweep_cfg base { Fault.zero with Fault.drop = 0.02 } []);
      ("dup2%", sweep_cfg base { Fault.zero with Fault.duplicate = 0.02 } []);
      ("corrupt2%", sweep_cfg base { Fault.zero with Fault.corrupt = 0.02 } []);
      ( "kill@120",
        sweep_cfg base Fault.zero
          [ { Fault.nth = 120; needle = None; kind = Fault.Kill } ] );
      (* PR 8 recovery variants: the same faults under a recovery policy.
         kill@120+rec must rejoin (the reset splices the cut wire); the
         double-kill variant cuts the spliced wire again and must rejoin
         twice; the 1-life variant must turn the first quarantine into a
         permanent kill. *)
      ( "kill@120+rec",
        with_recovery ~permakill_after:4
          (sweep_cfg base Fault.zero
             [ { Fault.nth = 120; needle = None; kind = Fault.Kill } ]) );
      ( "kill-x2+rec",
        with_recovery ~permakill_after:4
          (sweep_cfg base Fault.zero
             [
               { Fault.nth = 120; needle = None; kind = Fault.Kill };
               { Fault.nth = 600; needle = None; kind = Fault.Kill };
             ]) );
      ( "kill+1life",
        with_recovery ~permakill_after:1
          (sweep_cfg base Fault.zero
             [ { Fault.nth = 120; needle = None; kind = Fault.Kill } ]) );
    ]
  in
  for seed = first to last do
    List.iter
      (fun (label, cfg) ->
        let cfg = { cfg with Config.seed } in
        let o = Fuzz.run cfg ~pool:Fuzz.Disjoint ~cpu_ops:100 ~chaos_duration:15_000 () in
        let s = o.Fuzz.link_faults in
        let safe =
          o.Fuzz.crashed = None && (not o.Fuzz.deadlocked) && o.Fuzz.cpu_data_errors = 0
          && o.Fuzz.cpu_ops_completed = o.Fuzz.cpu_ops_expected
        in
        Printf.printf
          "seed=%-4d %-12s safe=%-5b retx=%-5d dups=%-4d corrupt=%-3d escal=%-3d q=%-5b \
           rejoins=%-2d permakill=%b\n\
           %!"
          seed label safe
          (count s "retransmit_frames")
          (count s "dups_suppressed")
          (count s "corrupt_detected")
          (count s "faults_escalated")
          o.Fuzz.quarantined o.Fuzz.rejoins o.Fuzz.permakilled)
      variants
  done
