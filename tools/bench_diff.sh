#!/bin/sh
# Compare two xguard-bench-v1 baselines (BENCH_*.json): a per-experiment
# events/s delta table and a per-micro ops/s delta table, so a perf PR can
# show its before/after without spelunking the raw JSON.
#
# Usage: tools/bench_diff.sh OLD.json NEW.json
#
# Ratios are NEW/OLD: > 1.00x is faster, < 1.00x is slower.  Rows present in
# only one file are listed with "-" on the missing side.  Requires python3
# (stdlib only); SKIPs gracefully without it — same policy as check_bench.sh.
set -eu

if [ $# -ne 2 ]; then
  echo "usage: tools/bench_diff.sh OLD.json NEW.json" >&2
  exit 2
fi
old=$1
new=$2
[ -f "$old" ] || { echo "bench_diff: no such file: $old" >&2; exit 2; }
[ -f "$new" ] || { echo "bench_diff: no such file: $new" >&2; exit 2; }

if ! command -v python3 > /dev/null 2>&1; then
  echo "bench_diff: SKIP: python3 not available (stdlib json is the only parser we ship)"
  exit 0
fi

python3 - "$old" "$new" << 'EOF'
import json, sys

def load(path):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema") != "xguard-bench-v1":
        sys.exit(f"bench_diff: {path} is not an xguard-bench-v1 baseline")
    exps = {e["id"]: e for e in doc.get("experiments", [])}
    micros = {m["name"]: m for m in doc.get("micro", [])}
    return doc, exps, micros

old_path, new_path = sys.argv[1], sys.argv[2]
old_doc, old_exps, old_micros = load(old_path)
new_doc, new_exps, new_micros = load(new_path)

print(f"bench_diff: {old_path} -> {new_path}")
for name, doc in (("old", old_doc), ("new", new_doc)):
    if doc.get("quick"):
        print(f"  note: {name} baseline was recorded with --quick")

def fmt(v):
    return f"{v:,.0f}" if v is not None else "-"

def ratio(o, n):
    if o and n:
        r = n / o
        mark = "" if 0.8 <= r <= 1.25 else "  <<" if r < 0.8 else "  >>"
        return f"{r:.2f}x{mark}", r
    return "-", None

def table(title, keys, get_old, get_new, unit):
    rows = []
    for k in keys:
        o, n = get_old(k), get_new(k)
        r_text, _ = ratio(o, n)
        rows.append((k, fmt(o), fmt(n), r_text))
    if not rows:
        return
    w0 = max(len(title), max(len(r[0]) for r in rows))
    w1 = max(len(f"old {unit}"), max(len(r[1]) for r in rows))
    w2 = max(len(f"new {unit}"), max(len(r[2]) for r in rows))
    print()
    print(f"{title:<{w0}}  {'old ' + unit:>{w1}}  {'new ' + unit:>{w2}}  ratio")
    print("-" * (w0 + w1 + w2 + 11))
    for k, o, n, r in rows:
        print(f"{k:<{w0}}  {o:>{w1}}  {n:>{w2}}  {r}")

exp_keys = [k for k in old_exps if k in new_exps]
exp_keys += [k for k in old_exps if k not in new_exps]
exp_keys += [k for k in new_exps if k not in old_exps]
table(
    "experiment", exp_keys,
    lambda k: old_exps.get(k, {}).get("events_per_s") or None,
    lambda k: new_exps.get(k, {}).get("events_per_s") or None,
    "events/s")

micro_keys = [k for k in old_micros if k in new_micros]
micro_keys += [k for k in old_micros if k not in new_micros]
micro_keys += [k for k in new_micros if k not in old_micros]
table(
    "micro", micro_keys,
    lambda k: old_micros.get(k, {}).get("ops_per_s") or None,
    lambda k: new_micros.get(k, {}).get("ops_per_s") or None,
    "ops/s")

print()
print("bench_diff: ratios are new/old; << marks a >20% slowdown, >> a >25% speedup")
EOF
