#!/bin/sh
# Exhaustive model-check gate.
#
# Runs `xguard check` over the tiny-configuration sweep (both hosts, both
# guard modes, plus the jittered trees as the wall-time budget allows) and
# compares every summary against the committed MODEL_BASELINE.json: the gate
# fails on any invariant violation, any truncated exploration, and any drift
# in reachable-state/transition counts or visited-set digests.
#
# Regenerate the baseline after an intentional protocol change with
#   dune exec bin/xguard_cli.exe -- check --write-baseline MODEL_BASELINE.json
# and say why in the commit message.
#
# Usage: tools/check_model.sh [BUDGET_SECONDS]   (default 240)
set -eu
cd "$(dirname "$0")/.."
BUDGET="${1:-240}"
dune build bin/xguard_cli.exe
exec dune exec bin/xguard_cli.exe -- check --budget "$BUDGET" --baseline MODEL_BASELINE.json
