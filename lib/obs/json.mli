(** Minimal stdlib-only JSON reader.

    Used by the [xguard report] health-dashboard merger to parse metrics
    JSONL streams back in, and by the test suite to validate the Perfetto and
    metrics emitters' output (notably string escaping).  Accepts standard
    JSON; integers without a fractional part parse as [Int]. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val of_string : string -> (t, string) result
(** Parse one complete JSON value; trailing non-whitespace is an error. *)

val quote : string -> string
(** Emission-side escaping: [s] rendered as a quoted JSON string literal. *)

val member : string -> t -> t option
(** Field lookup on an [Obj]; [None] otherwise. *)

val to_string_opt : t -> string option
val to_int_opt : t -> int option
val to_float_opt : t -> float option
val to_bool_opt : t -> bool option

val to_list : t -> t list
(** The elements of a [List]; [[]] for any other node. *)

val fields : t -> (string * t) list
(** The fields of an [Obj]; [[]] for any other node. *)
