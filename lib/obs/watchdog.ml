module Coverage = Xguard_trace.Coverage

(* Pure-observer anomaly detector.  It sees exactly what a metrics sample
   sees — counter deltas and gauge values at each sampler tick — and judges
   them against four rules.  It never touches simulation state: trips are
   reported through a callback (System wires it to [Os_model.anomaly] and an
   [obs.watchdog] coverage matrix) and recorded in the metrics stream.

   The default thresholds are sized so every rule fires strictly before the
   coarse G2c transaction timeout (4000 cycles at the default sampler period
   of 500 cycles): a stalled or starved tenant is flagged while the guard can
   still act on it, in the spirit of PR 8's per-phase hang budgets. *)

type config = {
  retry_burst : int;  (** link retransmit frames per tick that count as a storm *)
  stall_ticks : int;  (** consecutive zero-progress ticks with open transactions *)
  starve_ticks : int;  (** consecutive ticks a port waits while others progress *)
  ceilings : (string * int) list;  (** gauge name -> inclusive trip level *)
}

let default =
  { retry_burst = 64; stall_ticks = 4; starve_ticks = 8; ceilings = [] }

let rules = [| "retry_storm"; "quiesce_stall"; "port_starved"; "gauge_ceiling" |]
let events = [| "Trip"; "Clear" |]

let coverage_space =
  Coverage.space ~name:"obs.watchdog" ~states:(Array.to_list rules)
    ~events:(Array.to_list events) ()

let parse spec =
  let cfg = ref default in
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let parts =
    String.split_on_char ',' spec |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  let rec go = function
    | [] -> Ok !cfg
    | part :: rest -> (
        match String.index_opt part '=' with
        | None -> err "watchdog: expected key=value in %S" part
        | Some i -> (
            let k = String.sub part 0 i in
            let v = String.sub part (i + 1) (String.length part - i - 1) in
            match (k, int_of_string_opt v) with
            | _, None -> err "watchdog: %S is not an integer in %S" v part
            | "retry", Some n ->
                cfg := { !cfg with retry_burst = n };
                go rest
            | "stall", Some n ->
                cfg := { !cfg with stall_ticks = n };
                go rest
            | "starve", Some n ->
                cfg := { !cfg with starve_ticks = n };
                go rest
            | k, Some n when String.length k > 5 && String.sub k 0 5 = "ceil:" ->
                let gauge = String.sub k 5 (String.length k - 5) in
                cfg := { !cfg with ceilings = !cfg.ceilings @ [ (gauge, n) ] };
                go rest
            | k, Some _ -> err "watchdog: unknown rule key %S" k))
  in
  go parts

type event = { w_ts : int; w_rule : string; w_event : string; w_detail : string }

type t = {
  cfg : config;
  mutable reporter : (rule:int -> event:int -> detail:string -> unit) option;
  (* per-rule latch state *)
  mutable storm_on : bool;
  mutable stall_streak : int;
  mutable stall_on : bool;
  starve_streak : (string, int) Hashtbl.t;
  starve_on : (string, unit) Hashtbl.t;
  ceiling_on : (string, unit) Hashtbl.t;
  prev_gauges : (string, int) Hashtbl.t;
}

let create cfg =
  {
    cfg;
    reporter = None;
    storm_on = false;
    stall_streak = 0;
    stall_on = false;
    starve_streak = Hashtbl.create 16;
    starve_on = Hashtbl.create 16;
    ceiling_on = Hashtbl.create 8;
    prev_gauges = Hashtbl.create 32;
  }

let set_reporter t f = t.reporter <- Some f

let suffix_sum ~suffix kvs =
  List.fold_left
    (fun acc (name, v) ->
      if String.length name >= String.length suffix
         && String.sub name
              (String.length name - String.length suffix)
              (String.length suffix)
            = suffix
      then acc + v
      else acc)
    0 kvs

let emit t acc ~now ~rule ~event:ev ~detail =
  (match t.reporter with
  | Some f -> f ~rule ~event:ev ~detail
  | None -> ());
  acc :=
    { w_ts = now; w_rule = rules.(rule); w_event = events.(ev); w_detail = detail }
    :: !acc

(* One sampler tick: [deltas] are the nonzero counter increments since the
   previous tick, [gauges] the instantaneous gauge values, both in the
   sampler's deterministic source order. *)
let observe t ~now ~deltas ~gauges =
  let acc = ref [] in
  let progress = List.fold_left (fun a (_, d) -> a + abs d) 0 deltas in
  (* retry_storm: a burst of link-level retransmissions in a single tick. *)
  let retx = suffix_sum ~suffix:".retransmit_frames" deltas in
  if retx >= t.cfg.retry_burst && not t.storm_on then begin
    t.storm_on <- true;
    emit t acc ~now ~rule:0 ~event:0
      ~detail:(Printf.sprintf "%d retransmit frames in one tick (burst >= %d)" retx t.cfg.retry_burst)
  end
  else if retx = 0 && t.storm_on then begin
    t.storm_on <- false;
    emit t acc ~now ~rule:0 ~event:1 ~detail:"retransmissions subsided"
  end;
  (* quiesce_stall: transactions stay open while nothing in the system moves. *)
  let open_txns = suffix_sum ~suffix:".open_transactions" gauges in
  if open_txns > 0 && progress = 0 then begin
    t.stall_streak <- t.stall_streak + 1;
    if t.stall_streak >= t.cfg.stall_ticks && not t.stall_on then begin
      t.stall_on <- true;
      emit t acc ~now ~rule:1 ~event:0
        ~detail:
          (Printf.sprintf "%d open transaction(s), no counter progress for %d tick(s)"
             open_txns t.stall_streak)
    end
  end
  else begin
    if t.stall_on then begin
      t.stall_on <- false;
      emit t acc ~now ~rule:1 ~event:1 ~detail:"progress resumed"
    end;
    t.stall_streak <- 0
  end;
  (* port_starved: a sequencer holds work but completes nothing while the
     rest of the system is visibly making progress. *)
  List.iter
    (fun (name, v) ->
      match Filename.check_suffix name ".outstanding" with
      | false -> ()
      | true -> (
          let base = Filename.chop_suffix name ".outstanding" in
          let ckey = base ^ ".completed" in
          match List.assoc_opt ckey gauges with
          | None -> ()
          | Some completed ->
              let prev =
                match Hashtbl.find_opt t.prev_gauges ckey with Some p -> p | None -> completed
              in
              Hashtbl.replace t.prev_gauges ckey completed;
              if v > 0 && completed = prev && progress > 0 then begin
                let streak =
                  (match Hashtbl.find_opt t.starve_streak base with Some s -> s | None -> 0) + 1
                in
                Hashtbl.replace t.starve_streak base streak;
                if streak >= t.cfg.starve_ticks && not (Hashtbl.mem t.starve_on base)
                then begin
                  Hashtbl.replace t.starve_on base ();
                  emit t acc ~now ~rule:2 ~event:0
                    ~detail:
                      (Printf.sprintf "%s: %d op(s) outstanding, none completed for %d tick(s)"
                         base v streak)
                end
              end
              else begin
                if Hashtbl.mem t.starve_on base then begin
                  Hashtbl.remove t.starve_on base;
                  emit t acc ~now ~rule:2 ~event:1
                    ~detail:(Printf.sprintf "%s: completing again" base)
                end;
                Hashtbl.remove t.starve_streak base
              end))
    gauges;
  (* gauge_ceiling: a named gauge reached an operator-declared level. *)
  List.iter
    (fun (gauge, limit) ->
      match List.assoc_opt gauge gauges with
      | None -> ()
      | Some v ->
          if v >= limit && not (Hashtbl.mem t.ceiling_on gauge) then begin
            Hashtbl.replace t.ceiling_on gauge ();
            emit t acc ~now ~rule:3 ~event:0
              ~detail:(Printf.sprintf "%s = %d (ceiling %d)" gauge v limit)
          end
          else if v < limit && Hashtbl.mem t.ceiling_on gauge then begin
            Hashtbl.remove t.ceiling_on gauge;
            emit t acc ~now ~rule:3 ~event:1
              ~detail:(Printf.sprintf "%s back under %d" gauge limit)
          end)
    t.cfg.ceilings;
  List.rev !acc
