(** Pure-observer anomaly watchdog.

    Evaluated once per metrics sampler tick against exactly the data the tick
    snapshots — counter deltas and gauge values — so it is deterministic,
    replayable at PDES barriers, and invisible to the simulation.  Four
    rules:

    - [retry_storm]: total [*.retransmit_frames] delta in one tick reaches
      [retry_burst].
    - [quiesce_stall]: some [*.open_transactions] gauge is positive while no
      counter anywhere moved, for [stall_ticks] consecutive ticks.
    - [port_starved]: a sequencer's [*.outstanding] gauge is positive and its
      [*.completed] gauge is frozen for [starve_ticks] ticks while the rest
      of the system makes progress.
    - [gauge_ceiling]: a named gauge reaches an operator-declared level.

    Each rule latches: one [Trip] when it first fires, one [Clear] when the
    condition subsides.  Defaults escalate strictly before the G2c timeout
    (e.g. [stall_ticks] x sampler period = 2000 cycles < 4000). *)

type config = {
  retry_burst : int;
  stall_ticks : int;
  starve_ticks : int;
  ceilings : (string * int) list;
}

val default : config

val parse : string -> (config, string) result
(** Comma-separated overrides over {!default}:
    ["retry=64,stall=4,starve=8,ceil:xg.open_transactions=32"].  The empty
    string is {!default}. *)

val rules : string array
(** Rule names, index order = reporter [rule] argument. *)

val events : string array
(** [[|"Trip"; "Clear"|]], index order = reporter [event] argument. *)

val coverage_space : Xguard_trace.Coverage.space
(** The [obs.watchdog] (rule x Trip/Clear) coverage space. *)

type event = {
  w_ts : int;
  w_rule : string;
  w_event : string;  (** ["Trip"] or ["Clear"] *)
  w_detail : string;
}

type t

val create : config -> t

val set_reporter : t -> (rule:int -> event:int -> detail:string -> unit) -> unit
(** Called synchronously for every Trip/Clear; System bridges this to
    [Os_model.anomaly] and the coverage matrix. *)

val observe :
  t -> now:int -> deltas:(string * int) list -> gauges:(string * int) list -> event list
(** Judge one sampler tick; returns the Trip/Clear events it produced (also
    delivered to the reporter), oldest first. *)
