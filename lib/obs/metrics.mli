(** Streaming run telemetry: periodic counter-delta / gauge / span-quantile
    samples, per-guard latency histograms, availability notes, and the
    {!Watchdog}'s anomaly verdicts — one recorder per job, merged with the
    same pure, job-ordered discipline as {!Spans} so campaign shards and the
    sharded (PDES) engine produce byte-identical streams for any [-j] /
    [--sim-j].

    Invisible unless armed: every hook below no-ops when no recorder is armed
    on the domain (and no shard context forwards to an armed coordinator), so
    metrics-off runs are byte-identical to builds without this module.

    Arming metrics requires the span layer to be armed too (the CLI enforces
    it): per-tick quantiles read the armed span recorder and per-guard
    latency hooks defer through the shard span context at PDES barriers. *)

type sample = {
  m_ts : int;
  m_counters : (string * int) array;  (** nonzero deltas since previous tick *)
  m_gauges : (string * int) array;
  m_quants : (string * string * int * int * int * int) array;
      (** (segment, txn, n, p50, p95, p99) from the armed span recorder *)
}

type recorder

val create : ?watchdog:Watchdog.config -> ?sample_cap:int -> unit -> recorder

(** {2 Arming} *)

val on : unit -> bool
(** Whether metrics are armed on this domain — directly, or via a sharded
    window whose coordinator armed a metrics recorder. *)

val armed : unit -> recorder option
val with_armed : recorder -> (unit -> 'a) -> 'a

(** {2 Sources} — registered by [System.build] and the drivers; all no-ops
    when unarmed. *)

val reset_sources : unit -> unit
val add_group : name:string -> Xguard_stats.Counter.Group.t -> unit
(** Register a stats group; its counters stream as ["name.counter"]. *)

val add_gauge : name:string -> (unit -> int) -> unit
(** Metrics-only gauge (e.g. a sequencer's completion count); the span
    layer's gauge registry is snapshotted automatically. *)

val watchdog_armed : unit -> bool
val set_watchdog_reporter : (rule:int -> event:int -> detail:string -> unit) -> unit

(** {2 Per-guard latency hooks} — fired by the guard link, deferred through
    the shard context inside PDES windows. *)

val e2e_open : guard:string -> addr:int -> now:int -> unit
val e2e_close : guard:string -> addr:int -> now:int -> unit
val inv_open : guard:string -> addr:int -> now:int -> unit
val inv_close : guard:string -> addr:int -> now:int -> unit

val note_avail : guard:string -> down:int -> now:int -> unit
(** Record a guard's downtime for availability SLOs; called once post-run. *)

(** {2 Sampling} *)

val sample_now : now:int -> unit
(** One sampler tick on the armed recorder (PDES barrier path). *)

val start_sampler : engine:Xguard_sim.Engine.t -> period:int -> unit
(** Free-running sampler for sequential builds, phase-aligned to [period]. *)

(** {2 Summaries} *)

module Summary : sig
  type block = {
    b_label : string;
    b_samples : sample list;
    b_events : Watchdog.event list;
    b_avails : (string * int * int) list;
  }

  type t

  val empty : t
  val is_empty : t -> bool

  val merge : t -> t -> t
  (** Pure and associative: blocks concatenate in job order, per-guard
      histograms merge-join on sorted (guard, metric) keys. *)

  val blocks : t -> block list
  val hists : t -> ((string * string) * Xguard_stats.Histogram.t) list
  val avails : t -> (string * int * int) list
  val events : t -> (string * Watchdog.event) list
  val trip_counts : t -> (string * int) list
  val samples : t -> int
  val replaced : t -> int
  val dropped : t -> int
end

val summary : label:string -> recorder -> Summary.t

(** {2 Emission} *)

val write_jsonl :
  out_channel ->
  period:int ->
  span_cells:(string * string * Xguard_stats.Histogram.t) list ->
  verdicts:Slo.verdict list ->
  Summary.t ->
  unit
(** The canonical [xguard-metrics-v1] JSONL stream: meta line, then per-job
    sample / watchdog / avail lines in job order, then merged per-guard and
    per-(segment, txn) histogram dumps, then SLO verdicts.  Deterministic for
    any [-j] / [--sim-j]. *)

val write_verdict : out_channel -> Slo.verdict -> unit

val write_prom :
  out_channel ->
  span_cells:(string * string * Xguard_stats.Histogram.t) list ->
  Summary.t ->
  unit
(** Prometheus-style text dump (counter totals, latency summaries,
    availability gauges). *)

(** {2 Stream merging} — the [xguard report] health dashboard. *)

module Report : sig
  type t

  val empty : t

  val add_stream : t -> name:string -> string list -> (t, string) result
  (** Parse one JSONL stream (its lines) and fold it in.  Histogram dumps
      merge exactly (bucket restoration is lossless), availability and
      watchdog trips accumulate, embedded SLO verdicts are kept per stream.
      Errors on unparsable JSON or a missing schema line. *)

  val streams : t -> (string * int) list
  (** (name, samples) per added stream, in add order. *)

  val samples : t -> int
  val guard_hists : t -> ((string * string) * Xguard_stats.Histogram.t) list
  val span_cells : t -> (string * string * Xguard_stats.Histogram.t) list
  val avails : t -> (string * int * int) list
  val trips : t -> (string * int * string * string) list
  (** (rule, ts, stream, detail) in stream order. *)

  val verdicts : t -> (string * Slo.verdict) list
  (** Embedded per-stream verdicts, for reports without [--slo]. *)

  val counters : t -> (string * int) list
  (** Counter totals summed across all streams, first-seen order. *)
end
