module Histogram = Xguard_stats.Histogram
module Table = Xguard_stats.Table
module Engine = Xguard_sim.Engine

type txn = Get_s | Get_m | Put_s | Put_e | Put_m | Inv | Load | Store

let txn_index = function
  | Get_s -> 0
  | Get_m -> 1
  | Put_s -> 2
  | Put_e -> 3
  | Put_m -> 4
  | Inv -> 5
  | Load -> 6
  | Store -> 7

let txn_names = [| "GetS"; "GetM"; "PutS"; "PutE"; "PutM"; "Inv"; "Load"; "Store" |]
let txn_count = Array.length txn_names
let txn_name t = txn_names.(txn_index t)
let txn_name_of_index i = txn_names.(i)

type seg =
  | Seq_queue
  | Seq_retry
  | Seq_e2e
  | Link_req
  | Xg_decide
  | Host_fetch
  | Host_writeback
  | Host_defer
  | Host_relinquish
  | Link_resp
  | Inv_roundtrip
  | Inv_race
  | Inv_timeout
  | Xg_stall
  | Link_retry

let seg_index = function
  | Seq_queue -> 0
  | Seq_retry -> 1
  | Seq_e2e -> 2
  | Link_req -> 3
  | Xg_decide -> 4
  | Host_fetch -> 5
  | Host_writeback -> 6
  | Host_defer -> 7
  | Host_relinquish -> 8
  | Link_resp -> 9
  | Inv_roundtrip -> 10
  | Inv_race -> 11
  | Inv_timeout -> 12
  | Xg_stall -> 13
  | Link_retry -> 14

let seg_names =
  [|
    "seq.queue";
    "seq.retry";
    "seq.e2e";
    "link.req";
    "xg.decide";
    "host.fetch";
    "host.writeback";
    "host.defer";
    "host.relinquish";
    "link.resp";
    "inv.roundtrip";
    "inv.race";
    "inv.timeout";
    "xg.stall";
    "link.retry";
  |]

let seg_count = Array.length seg_names
let seg_name s = seg_names.(seg_index s)
let seg_name_of_index i = seg_names.(i)

(* One open accelerator crossing, keyed by block address.  [m_*] are the
   send/delivery timestamps the link hooks fill in; [-1] means "not yet".
   The entry retires when the accel response has been delivered and (for
   host-forwarded writebacks) the host side has settled. *)
type entry = {
  id : int;
  e_txn : txn;
  mutable resp_open : bool;
  mutable host_open : bool;
  mutable decided : bool;
  mutable m_req : int;
  mutable m_xg : int;
  mutable m_resp : int;
}

type inv_entry = { inv_id : int; inv_sent : int }

type recorder = {
  mutable next_id : int;
  hists : Histogram.t array array; (* seg x txn *)
  crossings : (int, entry) Hashtbl.t;
  (* Writebacks whose accel ack was delivered but whose host-side settle is
     still pending.  Kept apart from [crossings] because the accelerator may
     legitimately re-request the same block (a GET stalled behind the put)
     before the host settles, and that new crossing must not evict the
     put's attribution state. *)
  host_puts : (int, entry) Hashtbl.t;
  invs : (int, inv_entry) Hashtbl.t;
  mutable replaced : int;
  (* timeline (Perfetto) buffer: parallel growable arrays *)
  timeline : bool;
  timeline_cap : int;
  mutable tl_len : int;
  mutable tl_dropped : int;
  mutable tl_seg : int array;
  mutable tl_txn : int array;
  mutable tl_span : int array;
  mutable tl_addr : int array;
  mutable tl_ts : int array;
  mutable tl_dur : int array;
  (* time-series sampler *)
  sample_cap : int;
  mutable gauges : (string * (unit -> int)) list; (* registration order *)
  mutable samples : (int * (string * int) array) list; (* newest first *)
  mutable sample_count : int;
  mutable sample_dropped : int;
}

let create ?(timeline = false) ?(timeline_cap = 1_000_000) ?(sample_cap = 100_000) () =
  {
    next_id = 0;
    hists =
      Array.init seg_count (fun s ->
          Array.init txn_count (fun x ->
              Histogram.create (seg_names.(s) ^ "/" ^ txn_names.(x))));
    crossings = Hashtbl.create 64;
    host_puts = Hashtbl.create 16;
    invs = Hashtbl.create 16;
    replaced = 0;
    timeline;
    timeline_cap;
    tl_len = 0;
    tl_dropped = 0;
    tl_seg = [||];
    tl_txn = [||];
    tl_span = [||];
    tl_addr = [||];
    tl_ts = [||];
    tl_dur = [||];
    sample_cap;
    gauges = [];
    samples = [];
    sample_count = 0;
    sample_dropped = 0;
  }

(* Arming is per-domain so each parallel-pool worker records into its own
   recorder.  NB: [on] must pattern-match, not compare — a polymorphic
   [<> None] would walk the recorder (closures inside would raise). *)
let key : recorder option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let get () = Domain.DLS.get key

(* Under the sharded (PDES) engine, span work performed inside a domain
   window is deferred through the {!Xguard_sim.Shard} context and replayed
   by the coordinator (where the recorder is armed) at the barrier, in
   canonical (timestamp, domain, sequence) order.  [on] therefore answers
   true on a worker whose coordinator has spans armed, and every mutator
   below checks the context {e first} — even a coordinator that runs all
   domains itself (one worker) must defer, or its replay order would differ
   from the multi-worker one.  Replay happens with no context installed, so
   the deferred closures fall through to the armed recorder. *)
module Shard = Xguard_sim.Shard

let on () =
  match Domain.DLS.get key with
  | Some _ -> true
  | None -> Shard.spans_on ()

let armed () = get ()

let ctx_defer ~ts run =
  match Shard.spans_ctx () with
  | Some c -> Shard.defer c ~ts run
  | None -> run ()

let deferred ~now f = ctx_defer ~ts:now f

let with_armed r f =
  let prev = Domain.DLS.get key in
  Domain.DLS.set key (Some r);
  Fun.protect ~finally:(fun () -> Domain.DLS.set key prev) f

let fresh_id_r r =
  r.next_id <- r.next_id + 1;
  r.next_id

(* Inside a domain window ids come from the context (salted per domain, so
   ids never collide across domains and never depend on replay order);
   otherwise from the armed recorder as always. *)
let fresh_id () =
  match Shard.spans_ctx () with
  | Some c -> Shard.fresh_span_id c
  | None -> ( match get () with None -> 0 | Some r -> fresh_id_r r)

let grow a len =
  let cap = Array.length a in
  if len < cap then a
  else begin
    let a' = Array.make (max 1024 (cap * 2)) 0 in
    Array.blit a 0 a' 0 cap;
    a'
  end

let tl_push r ~seg ~txn ~span ~addr ~ts ~dur =
  if r.tl_len >= r.timeline_cap then r.tl_dropped <- r.tl_dropped + 1
  else begin
    let n = r.tl_len in
    r.tl_seg <- grow r.tl_seg n;
    r.tl_txn <- grow r.tl_txn n;
    r.tl_span <- grow r.tl_span n;
    r.tl_addr <- grow r.tl_addr n;
    r.tl_ts <- grow r.tl_ts n;
    r.tl_dur <- grow r.tl_dur n;
    r.tl_seg.(n) <- seg;
    r.tl_txn.(n) <- txn;
    r.tl_span.(n) <- span;
    r.tl_addr.(n) <- addr;
    r.tl_ts.(n) <- ts;
    r.tl_dur.(n) <- dur;
    r.tl_len <- n + 1
  end

let record_r r seg txn ~span ~addr ~ts ~dur =
  let s = seg_index seg and x = txn_index txn in
  Histogram.observe r.hists.(s).(x) dur;
  if r.timeline then tl_push r ~seg:s ~txn:x ~span ~addr ~ts ~dur

let record_direct seg txn ~span ~addr ~ts ~dur =
  match get () with None -> () | Some r -> record_r r seg txn ~span ~addr ~ts ~dur

let record seg txn ~span ~addr ~ts ~dur =
  ctx_defer ~ts (fun () -> record_direct seg txn ~span ~addr ~ts ~dur)

(* -- crossing lifecycle ---------------------------------------------------- *)

(* Once the accel-side response has landed, a still-settling writeback moves
   to [host_puts]; anything else simply retires. *)
let retire_or_park r addr e =
  Hashtbl.remove r.crossings addr;
  if e.host_open then begin
    if Hashtbl.mem r.host_puts addr then begin
      Hashtbl.remove r.host_puts addr;
      r.replaced <- r.replaced + 1
    end;
    Hashtbl.replace r.host_puts addr e
  end

let xreq_open_direct txn ~addr ~now =
  match get () with
  | None -> ()
  | Some r ->
      if Hashtbl.mem r.crossings addr then begin
        (* Stale entry: the previous crossing on this block never retired
           (possible under faults / chaos accel).  Replace, and count it. *)
        Hashtbl.remove r.crossings addr;
        r.replaced <- r.replaced + 1
      end;
      Hashtbl.replace r.crossings addr
        {
          id = fresh_id_r r;
          e_txn = txn;
          resp_open = true;
          host_open = false;
          decided = false;
          m_req = now;
          m_xg = -1;
          m_resp = -1;
        }

let xreq_open txn ~addr ~now = ctx_defer ~ts:now (fun () -> xreq_open_direct txn ~addr ~now)

let xreq_delivered_direct ~addr ~now =
  match get () with
  | None -> ()
  | Some r -> (
      match Hashtbl.find_opt r.crossings addr with
      | Some e when e.m_xg < 0 ->
          e.m_xg <- now;
          record_r r Link_req e.e_txn ~span:e.id ~addr ~ts:e.m_req ~dur:(now - e.m_req)
      | _ -> ())

let xreq_delivered ~addr ~now = ctx_defer ~ts:now (fun () -> xreq_delivered_direct ~addr ~now)

let xg_decided_direct ~addr ~now =
  match get () with
  | None -> ()
  | Some r -> (
      match Hashtbl.find_opt r.crossings addr with
      | Some e when e.m_xg >= 0 && not e.decided ->
          e.decided <- true;
          record_r r Xg_decide e.e_txn ~span:e.id ~addr ~ts:e.m_xg ~dur:(now - e.m_xg)
      | _ -> ())

let xg_decided ~addr ~now = ctx_defer ~ts:now (fun () -> xg_decided_direct ~addr ~now)

let resp_sent_direct ~addr ~now =
  match get () with
  | None -> ()
  | Some r -> (
      match Hashtbl.find_opt r.crossings addr with
      | Some e when e.m_resp < 0 -> e.m_resp <- now
      | _ -> ())

let resp_sent ~addr ~now = ctx_defer ~ts:now (fun () -> resp_sent_direct ~addr ~now)

let resp_delivered_direct ~addr ~now =
  match get () with
  | None -> ()
  | Some r -> (
      match Hashtbl.find_opt r.crossings addr with
      | Some e when e.resp_open ->
          if e.m_resp >= 0 then
            record_r r Link_resp e.e_txn ~span:e.id ~addr ~ts:e.m_resp ~dur:(now - e.m_resp);
          e.resp_open <- false;
          retire_or_park r addr e
      | _ -> ())

let resp_delivered ~addr ~now = ctx_defer ~ts:now (fun () -> resp_delivered_direct ~addr ~now)

let host_put_issued_direct ~addr =
  match get () with
  | None -> ()
  | Some r -> (
      match Hashtbl.find_opt r.crossings addr with
      | Some e -> e.host_open <- true
      | None -> ())

(* [now] orders the deferred op among same-window span work; the direct body
   never needed it. *)
let host_put_issued ~addr ~now = ctx_defer ~ts:now (fun () -> host_put_issued_direct ~addr)

let put_settled_direct ~addr =
  match get () with
  | None -> ()
  | Some r -> (
      if Hashtbl.mem r.host_puts addr then Hashtbl.remove r.host_puts addr
      else
        match Hashtbl.find_opt r.crossings addr with
        | Some e ->
            e.host_open <- false (* settle beat the accel ack; retire there *)
        | None -> ())

let put_settled ~addr ~now = ctx_defer ~ts:now (fun () -> put_settled_direct ~addr)

let lookup ~addr =
  match get () with
  | None -> None
  | Some r -> (
      match Hashtbl.find_opt r.crossings addr with
      | Some e -> Some (e.id, e.e_txn)
      | None -> None)

let lookup_put ~addr =
  match get () with
  | None -> None
  | Some r -> (
      match Hashtbl.find_opt r.host_puts addr with
      | Some e -> Some (e.id, e.e_txn)
      | None -> (
          (* Not yet parked: the settle is racing the accel ack. *)
          match Hashtbl.find_opt r.crossings addr with
          | Some e when e.host_open -> Some (e.id, e.e_txn)
          | _ -> None))

(* -- invalidate lifecycle -------------------------------------------------- *)

let inv_open_direct ~addr ~now =
  match get () with
  | None -> ()
  | Some r ->
      if Hashtbl.mem r.invs addr then begin
        Hashtbl.remove r.invs addr;
        r.replaced <- r.replaced + 1
      end;
      Hashtbl.replace r.invs addr { inv_id = fresh_id_r r; inv_sent = now }

let inv_open ~addr ~now = ctx_defer ~ts:now (fun () -> inv_open_direct ~addr ~now)

let inv_closed_direct ~addr ~now =
  match get () with
  | None -> ()
  | Some r -> (
      match Hashtbl.find_opt r.invs addr with
      | Some e ->
          Hashtbl.remove r.invs addr;
          record_r r Inv_roundtrip Inv ~span:e.inv_id ~addr ~ts:e.inv_sent ~dur:(now - e.inv_sent)
      | None -> ())

let inv_closed ~addr ~now = ctx_defer ~ts:now (fun () -> inv_closed_direct ~addr ~now)

let inv_instant_direct seg ~addr ~now =
  match get () with
  | None -> ()
  | Some r ->
      let span = match Hashtbl.find_opt r.invs addr with Some e -> e.inv_id | None -> 0 in
      record_r r seg Inv ~span ~addr ~ts:now ~dur:0

let inv_instant seg ~addr ~now = ctx_defer ~ts:now (fun () -> inv_instant_direct seg ~addr ~now)
let inv_race ~addr ~now = inv_instant Inv_race ~addr ~now
let inv_timeout ~addr ~now = inv_instant Inv_timeout ~addr ~now

(* -- time-series sampler --------------------------------------------------- *)

let add_gauge ~name f =
  match get () with None -> () | Some r -> r.gauges <- r.gauges @ [ (name, f) ]

let reset_gauges () =
  match get () with None -> () | Some r -> r.gauges <- []

(* The metrics layer snapshots the same gauge registry instead of forcing
   every registration site to register twice. *)
let gauges () = match get () with None -> [] | Some r -> r.gauges

(* Gauges are re-read from the registration list at every tick: drivers keep
   registering (sequencers are created after [System.build] starts the
   sampler), and late registrations must appear in subsequent snapshots. *)
let take_sample r ~now =
  match r.gauges with
  | [] -> ()
  | gauges ->
      if r.sample_count >= r.sample_cap then r.sample_dropped <- r.sample_dropped + 1
      else begin
        r.samples <- (now, Array.of_list (List.map (fun (n, f) -> (n, f ())) gauges)) :: r.samples;
        r.sample_count <- r.sample_count + 1
      end

(* Coordinator-driven sampling for the sharded engine: the per-engine
   [start_sampler] tick cannot run inside domain windows, so the PDES
   coordinator snapshots gauges at window barriers instead (workers parked,
   cross-domain reads safe). *)
let sample_now ~now = match get () with None -> () | Some r -> take_sample r ~now

let start_sampler ~engine ~period =
  match get () with
  | None -> ()
  | Some r ->
      Engine.every engine ~period ~phase:period (fun () ->
          take_sample r ~now:(Engine.now engine);
          (* The tick was already popped, so [pending] counts only other
             work: returning [false] on an idle engine lets it drain. *)
          Engine.pending engine > 0)

(* -- summaries ------------------------------------------------------------- *)

module Summary = struct
  type t = {
    cells : (int * int * Histogram.t) list; (* (seg_idx, txn_idx, hist), canonical order *)
    s_replaced : int;
    s_dropped : int;
  }

  let empty = { cells = []; s_replaced = 0; s_dropped = 0 }
  let is_empty t =
    (match t.cells with [] -> true | _ -> false) && t.s_replaced = 0 && t.s_dropped = 0
  let replaced t = t.s_replaced
  let dropped t = t.s_dropped

  let cells t =
    List.map (fun (s, x, h) -> (seg_names.(s), txn_names.(x), h)) t.cells

  (* Both inputs hold cells in ascending (seg, txn) order; a merge-join keeps
     the output canonical, making the fold associative and order-stable. *)
  let merge a b =
    let key (s, x, _) = (s * txn_count) + x in
    let rec go xs ys =
      match (xs, ys) with
      | [], r | r, [] -> r
      | ((sa, xa, ha) as ca) :: xs', ((_, _, hb) as cb) :: ys' ->
          if key ca = key cb then (sa, xa, Histogram.merge ha hb) :: go xs' ys'
          else if key ca < key cb then ca :: go xs' ys
          else cb :: go xs ys'
    in
    {
      cells = go a.cells b.cells;
      s_replaced = a.s_replaced + b.s_replaced;
      s_dropped = a.s_dropped + b.s_dropped;
    }

  let attribution_table ?(title = "Latency attribution (cycles)") t =
    match t.cells with
    | [] -> None
    | cells ->
        let tbl =
          Table.create ~title
            ~columns:[ "segment"; "txn"; "n"; "p50"; "p95"; "p99"; "max" ]
        in
        let last_seg = ref (-1) in
        List.iter
          (fun (s, x, h) ->
            if !last_seg >= 0 && s <> !last_seg then Table.add_separator tbl;
            last_seg := s;
            Table.add_row tbl
              [
                seg_names.(s);
                txn_names.(x);
                Table.cell_int (Histogram.count h);
                Table.cell_int (Histogram.percentile h 0.5);
                Table.cell_int (Histogram.percentile h 0.95);
                Table.cell_int (Histogram.percentile h 0.99);
                Table.cell_int (Histogram.max_value h);
              ])
          cells;
        Some tbl
end

let summary r =
  let cells = ref [] in
  for s = seg_count - 1 downto 0 do
    for x = txn_count - 1 downto 0 do
      if Histogram.count r.hists.(s).(x) > 0 then cells := (s, x, r.hists.(s).(x)) :: !cells
    done
  done;
  {
    Summary.cells = !cells;
    s_replaced = r.replaced;
    s_dropped = r.tl_dropped + r.sample_dropped;
  }

(* -- timeline access ------------------------------------------------------- *)

let timeline_events r =
  Array.init r.tl_len (fun i ->
      (r.tl_seg.(i), r.tl_txn.(i), r.tl_span.(i), r.tl_addr.(i), r.tl_ts.(i), r.tl_dur.(i)))

let timeline_dropped r = r.tl_dropped

let sample_series r = List.rev r.samples
