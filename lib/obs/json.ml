(* Minimal recursive-descent JSON reader for the observability tooling: the
   [xguard report] merger parses metrics JSONL streams back in, and the test
   suite validates Perfetto / metrics emitters against it.  Stdlib-only on
   purpose — the repo carries no JSON dependency. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

type state = { src : string; mutable pos : int }

let fail st msg =
  raise (Parse_error (Printf.sprintf "%s at offset %d" msg st.pos))

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let skip_ws st =
  while
    st.pos < String.length st.src
    && (match st.src.[st.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
  do
    st.pos <- st.pos + 1
  done

let expect st c =
  match peek st with
  | Some x when x = c -> st.pos <- st.pos + 1
  | _ -> fail st (Printf.sprintf "expected '%c'" c)

let literal st word v =
  let n = String.length word in
  if st.pos + n <= String.length st.src && String.sub st.src st.pos n = word then begin
    st.pos <- st.pos + n;
    v
  end
  else fail st (Printf.sprintf "expected '%s'" word)

let hex_digit st c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | _ -> fail st "bad \\u escape"

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec go () =
    if st.pos >= String.length st.src then fail st "unterminated string";
    let c = st.src.[st.pos] in
    st.pos <- st.pos + 1;
    match c with
    | '"' -> Buffer.contents buf
    | '\\' -> (
        if st.pos >= String.length st.src then fail st "unterminated escape";
        let e = st.src.[st.pos] in
        st.pos <- st.pos + 1;
        match e with
        | '"' -> Buffer.add_char buf '"'; go ()
        | '\\' -> Buffer.add_char buf '\\'; go ()
        | '/' -> Buffer.add_char buf '/'; go ()
        | 'b' -> Buffer.add_char buf '\b'; go ()
        | 'f' -> Buffer.add_char buf '\012'; go ()
        | 'n' -> Buffer.add_char buf '\n'; go ()
        | 'r' -> Buffer.add_char buf '\r'; go ()
        | 't' -> Buffer.add_char buf '\t'; go ()
        | 'u' ->
            if st.pos + 4 > String.length st.src then fail st "truncated \\u escape";
            let v = ref 0 in
            for i = 0 to 3 do
              v := (!v lsl 4) lor hex_digit st st.src.[st.pos + i]
            done;
            st.pos <- st.pos + 4;
            (* UTF-8 encode the code point; surrogate pairs are passed through
               as two encoded surrogates (the emitters never produce them). *)
            let cp = !v in
            if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
            else if cp < 0x800 then begin
              Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
              Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
            end
            else begin
              Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
              Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
              Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
            end;
            go ()
        | _ -> fail st "bad escape")
    | c -> Buffer.add_char buf c; go ()
  in
  go ()

let parse_number st =
  let start = st.pos in
  let is_float = ref false in
  let continue = ref true in
  while !continue do
    match peek st with
    | Some ('0' .. '9' | '-' | '+') -> st.pos <- st.pos + 1
    | Some ('.' | 'e' | 'E') ->
        is_float := true;
        st.pos <- st.pos + 1
    | _ -> continue := false
  done;
  let text = String.sub st.src start (st.pos - start) in
  if !is_float then
    match float_of_string_opt text with
    | Some f -> Float f
    | None -> fail st "bad number"
  else
    match int_of_string_opt text with
    | Some i -> Int i
    | None -> (
        match float_of_string_opt text with
        | Some f -> Float f
        | None -> fail st "bad number")

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail st "unexpected end of input"
  | Some '"' -> String (parse_string st)
  | Some '{' ->
      expect st '{';
      skip_ws st;
      if peek st = Some '}' then begin
        expect st '}';
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws st;
          let k = parse_string st in
          skip_ws st;
          expect st ':';
          let v = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' ->
              expect st ',';
              members ((k, v) :: acc)
          | Some '}' ->
              expect st '}';
              List.rev ((k, v) :: acc)
          | _ -> fail st "expected ',' or '}'"
        in
        Obj (members [])
      end
  | Some '[' ->
      expect st '[';
      skip_ws st;
      if peek st = Some ']' then begin
        expect st ']';
        List []
      end
      else begin
        let rec elems acc =
          let v = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' ->
              expect st ',';
              elems (v :: acc)
          | Some ']' ->
              expect st ']';
              List.rev (v :: acc)
          | _ -> fail st "expected ',' or ']'"
        in
        List (elems [])
      end
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some 'n' -> literal st "null" Null
  | Some ('-' | '0' .. '9') -> parse_number st
  | Some c -> fail st (Printf.sprintf "unexpected '%c'" c)

let of_string s =
  let st = { src = s; pos = 0 } in
  match parse_value st with
  | v ->
      skip_ws st;
      if st.pos <> String.length s then Error "trailing garbage after JSON value"
      else Ok v
  | exception Parse_error msg -> Error msg

(* Emission-side escaping (the inverse of [parse_string]), shared by the
   metrics emitters; Perfetto keeps its own historical copy. *)
let quote s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let member k = function
  | Obj fields -> List.assoc_opt k fields
  | _ -> None

let to_string_opt = function String s -> Some s | _ -> None
let to_int_opt = function Int i -> Some i | Float f -> Some (int_of_float f) | _ -> None

let to_float_opt = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let to_bool_opt = function Bool b -> Some b | _ -> None
let to_list = function List l -> l | _ -> []
let fields = function Obj f -> f | _ -> []
