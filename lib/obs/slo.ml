module Histogram = Xguard_stats.Histogram
module Table = Xguard_stats.Table

(* Declarative service-level objectives, judged after a run against the same
   histograms the span/metrics layers already record.  Purely a consumer:
   parsing and evaluation never touch simulation state, so verdicts are
   deterministic for deterministic runs. *)

type objective =
  | Quantile of { metric : string; q : float; qname : string; bound : int }
  | Avail of { bound : float }

let objective_text = function
  | Quantile { metric; qname; bound; _ } ->
      Printf.sprintf "%s:%s<=%d" metric qname bound
  | Avail { bound } -> Printf.sprintf "avail>=%g" bound

let parse_quantile_name q =
  (* "p50" / "p95" / "p99" / "p999" / "p100" / "max" *)
  if q = "max" || q = "p100" then Some (1.0, q)
  else if String.length q >= 2 && q.[0] = 'p' then
    let digits = String.sub q 1 (String.length q - 1) in
    match int_of_string_opt digits with
    | Some n when n >= 0 && n <= 100 && String.length digits <= 2 ->
        Some (float_of_int n /. 100.0, q)
    | Some n when String.length digits = 3 && n <= 1000 ->
        Some (float_of_int n /. 1000.0, q)
    | _ -> None
  else None

let parse spec =
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let parts =
    String.split_on_char ';' spec |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  if parts = [] then err "slo: empty objective list"
  else
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | part :: rest -> (
          (* availability form: avail>=0.95 *)
          let avail_prefix = "avail>=" in
          if String.length part > String.length avail_prefix
             && String.sub part 0 (String.length avail_prefix) = avail_prefix
          then
            let v =
              String.sub part (String.length avail_prefix)
                (String.length part - String.length avail_prefix)
            in
            match float_of_string_opt v with
            | Some bound when bound >= 0.0 && bound <= 1.0 ->
                go (Avail { bound } :: acc) rest
            | _ -> err "slo: bad availability bound in %S" part
          else
            (* quantile form: metric:p99<=40 *)
            match String.index_opt part ':' with
            | None -> err "slo: expected 'metric:pNN<=bound' or 'avail>=frac' in %S" part
            | Some i -> (
                let metric = String.sub part 0 i in
                let tail = String.sub part (i + 1) (String.length part - i - 1) in
                match
                  (* split at "<=" *)
                  let rec find j =
                    if j + 1 >= String.length tail then None
                    else if tail.[j] = '<' && tail.[j + 1] = '=' then Some j
                    else find (j + 1)
                  in
                  find 0
                with
                | None -> err "slo: expected '<=' in %S" part
                | Some j -> (
                    let qname = String.sub tail 0 j in
                    let bound_s =
                      String.sub tail (j + 2) (String.length tail - j - 2)
                    in
                    match (parse_quantile_name qname, int_of_string_opt bound_s) with
                    | None, _ -> err "slo: unknown quantile %S in %S" qname part
                    | _, None -> err "slo: bad bound %S in %S" bound_s part
                    | Some (q, qname), Some bound when metric <> "" ->
                        go (Quantile { metric; q; qname; bound } :: acc) rest
                    | _ -> err "slo: empty metric in %S" part)))
    in
    go [] parts

type verdict = {
  v_objective : string;
  v_scope : string;  (** ["global"] or a guard label like ["xg.a0"] *)
  v_measured : string;
  v_pass : bool;
  v_detail : string;  (** worst-offender attribution *)
}

let passed = List.for_all (fun v -> v.v_pass)

(* Evaluate objectives against:
   - [span_cells]: the merged per-(segment, txn) span histograms
     ([Spans.Summary.cells]), judged globally with worst-txn attribution;
   - [guard_hists]: per-guard latency histograms keyed [(guard, metric)]
     (the metrics layer's ["xg.e2e"] / ["inv.roundtrip"] series), judged per
     guard so one tarpit tenant fails alone;
   - [avail]: per-guard [(guard, down_cycles, now)] availability inputs,
     summed per guard before judging (so campaign shards aggregate). *)
let evaluate objectives ~span_cells ~guard_hists ~avail =
  let quantile_verdicts metric q qname bound =
    let text = objective_text (Quantile { metric; q; qname; bound }) in
    let seg_cells =
      List.filter (fun (seg, _, _) -> seg = metric) span_cells
    in
    let global =
      match seg_cells with
      | [] -> []
      | cells ->
          let merged =
            List.fold_left
              (fun acc (_, _, h) ->
                match acc with None -> Some h | Some a -> Some (Histogram.merge a h))
              None cells
          in
          let h = Option.get merged in
          let measured = Option.get (Histogram.quantile h q) in
          let worst =
            List.fold_left
              (fun (wt, wv) (_, txn, h) ->
                match Histogram.quantile h q with
                | Some v when v > wv -> (txn, v)
                | _ -> (wt, wv))
              ("", min_int) cells
          in
          [
            {
              v_objective = text;
              v_scope = "global";
              v_measured = string_of_int measured;
              v_pass = measured <= bound;
              v_detail =
                Printf.sprintf "worst txn %s (%s=%d)" (fst worst) qname (snd worst);
            };
          ]
    in
    let per_guard =
      List.filter_map
        (fun ((guard, m), h) ->
          if m <> metric then None
          else
            match Histogram.quantile h q with
            | None -> None
            | Some measured ->
                Some
                  {
                    v_objective = text;
                    v_scope = guard;
                    v_measured = string_of_int measured;
                    v_pass = measured <= bound;
                    v_detail =
                      Printf.sprintf "n=%d max=%d" (Histogram.count h)
                        (Histogram.max_value h);
                  })
        guard_hists
    in
    match global @ per_guard with
    | [] ->
        [
          {
            v_objective = text;
            v_scope = "global";
            v_measured = "-";
            v_pass = true;
            v_detail = "no samples";
          };
        ]
    | vs -> vs
  in
  let avail_verdicts bound =
    let text = objective_text (Avail { bound }) in
    (* sum per guard, first-seen order *)
    let order = ref [] in
    let tbl = Hashtbl.create 8 in
    List.iter
      (fun (guard, down, now) ->
        match Hashtbl.find_opt tbl guard with
        | None ->
            order := guard :: !order;
            Hashtbl.add tbl guard (down, now)
        | Some (d, n) -> Hashtbl.replace tbl guard (d + down, n + now))
      avail;
    match List.rev !order with
    | [] ->
        [
          {
            v_objective = text;
            v_scope = "global";
            v_measured = "-";
            v_pass = true;
            v_detail = "no samples";
          };
        ]
    | guards ->
        List.map
          (fun guard ->
            let down, now = Hashtbl.find tbl guard in
            let measured = 1.0 -. (float_of_int down /. float_of_int (max 1 now)) in
            {
              v_objective = text;
              v_scope = guard;
              v_measured = Printf.sprintf "%.4f" measured;
              v_pass = measured >= bound;
              v_detail = Printf.sprintf "down %d of %d cycles" down now;
            })
          guards
  in
  List.concat_map
    (function
      | Quantile { metric; q; qname; bound } -> quantile_verdicts metric q qname bound
      | Avail { bound } -> avail_verdicts bound)
    objectives

let to_table ?(title = "SLO verdicts") verdicts =
  let table =
    Table.create ~title
      ~columns:[ "objective"; "scope"; "measured"; "verdict"; "worst offender" ]
  in
  List.iter
    (fun v ->
      Table.add_row table
        [
          v.v_objective;
          v.v_scope;
          v.v_measured;
          (if v.v_pass then "PASS" else "FAIL");
          v.v_detail;
        ])
    verdicts;
  table
