(** Declarative service-level objectives over span and metrics histograms.

    Objectives come in from the CLI as
    ["xg.decide:p99<=40;seq.e2e:p99<=400;avail>=0.95"] and are judged after a
    run (or after merging campaign shards) against the already-recorded
    histograms and availability stats — evaluation is a pure consumer and
    deterministic for deterministic runs. *)

type objective =
  | Quantile of { metric : string; q : float; qname : string; bound : int }
      (** latency objective: the [qname] (p50/p95/p99/p999/p100/max) of
          [metric]'s histogram must be [<= bound] cycles *)
  | Avail of { bound : float }
      (** per-guard availability [1 - down_cycles/now] must be [>= bound] *)

val parse : string -> (objective list, string) result
(** Parse a [;]-separated objective list. *)

val objective_text : objective -> string
(** Canonical rendering, e.g. ["xg.decide:p99<=40"]. *)

type verdict = {
  v_objective : string;
  v_scope : string;  (** ["global"] or a guard label like ["xg.a0"] *)
  v_measured : string;  (** measured value, or ["-"] when no samples *)
  v_pass : bool;
  v_detail : string;  (** worst-offender attribution *)
}

val evaluate :
  objective list ->
  span_cells:(string * string * Xguard_stats.Histogram.t) list ->
  guard_hists:((string * string) * Xguard_stats.Histogram.t) list ->
  avail:(string * int * int) list ->
  verdict list
(** Judge every objective.  Latency objectives produce a global verdict with
    worst-txn attribution when the metric names a span segment, plus one
    verdict per guard when it names a per-guard metrics histogram
    (["xg.e2e"], ["inv.roundtrip"]); an objective with no samples anywhere
    passes vacuously with measured ["-"].  [avail] triples are [(guard,
    down_cycles, observed_cycles)] and sum per guard before judging. *)

val passed : verdict list -> bool

val to_table : ?title:string -> verdict list -> Xguard_stats.Table.t
