(** Transaction spans: latency attribution for coherence crossings.

    Every accelerator-originated transaction (GetS/GetM/PutS/PutE/PutM) gets a
    span id when it enters the guard link, and every sequencer access gets one
    when it is enqueued.  As the transaction moves — sequencer queue, link
    transit, XG decision, host protocol, response transit — instrumentation
    hooks close one {e segment} after another, each feeding a per-(segment,
    transaction-type) latency histogram and, optionally, a timeline buffer
    that {!Perfetto} turns into a Chrome trace.

    {2 Arming}

    Recording is off by default and gated behind {!on}, a single
    domain-local read, so spans-off runs execute the exact seed
    instruction stream (byte-identical output; see tools/check_spans.sh).
    A {!recorder} is armed per domain with {!with_armed}, which makes the
    span layer safe under the parallel pool: each campaign worker arms its
    own recorder and the summaries merge purely in job order.

    {2 Span id threading}

    Link frames are not widened to carry ids.  Instead the recorder keys
    open crossings by block address, exploiting the guard invariant that at
    most one accelerator transaction per block is in flight at a time (the
    XG stalls or NACKs the rest).  Hooks are defensive — unknown or
    replayed addresses are ignored, and a re-opened address replaces the
    stale entry (counted in {!Summary}) — so fault injection and the chaos
    accelerator cannot wedge the recorder.  DESIGN.md §9 has the full
    lifecycle. *)

(** Transaction type attached to each sample.  The five guard message kinds,
    [Inv] for host-initiated invalidate round trips, and [Load]/[Store] for
    sequencer-level segments (the sequencer sees memory accesses, not yet
    coherence messages). *)
type txn = Get_s | Get_m | Put_s | Put_e | Put_m | Inv | Load | Store

(** Segment taxonomy — one per attributable phase of a crossing.  See
    DESIGN.md §9 for where each begins and ends. *)
type seg =
  | Seq_queue  (** sequencer enqueue -> cache accepted the access *)
  | Seq_retry  (** one cache-busy reject -> re-issue (per retry) *)
  | Seq_e2e  (** sequencer enqueue -> completion (matches seq latency hist) *)
  | Link_req  (** guard-bound request: link send -> delivered at XG *)
  | Xg_decide  (** XG delivery -> host issue or direct ack *)
  | Host_fetch  (** host port GET issue -> data granted *)
  | Host_writeback  (** host port PUT issue -> writeback settled *)
  | Host_defer  (** host port held the request behind a same-block put *)
  | Host_relinquish  (** host-prompted writeback (no core notify) *)
  | Link_resp  (** accel-bound response: link send -> delivered *)
  | Inv_roundtrip  (** XG invalidate send -> accel ack delivered back *)
  | Inv_race  (** a put crossed an in-flight invalidate (instant) *)
  | Inv_timeout  (** invalidate watchdog fired (instant) *)
  | Xg_stall  (** GET parked behind an in-flight put at the XG *)
  | Link_retry  (** one frame retransmission on the guard link *)

val txn_name : txn -> string
val seg_name : seg -> string

val txn_count : int
val seg_count : int

val txn_name_of_index : int -> string
val seg_name_of_index : int -> string

(** {2 Recorder lifecycle} *)

type recorder

val create : ?timeline:bool -> ?timeline_cap:int -> ?sample_cap:int -> unit -> recorder
(** [timeline] (default [false]) additionally buffers every segment sample as
    a timeline event for Perfetto export, up to [timeline_cap] events
    (default 1_000_000); past the cap events are counted as dropped, and the
    histograms keep accumulating.  [sample_cap] bounds the time-series
    sampler the same way. *)

val on : unit -> bool
(** True when the calling domain has an armed recorder, or is executing a
    sharded-engine window whose coordinator has spans armed (see
    {!Xguard_sim.Shard}).  The one check every hook performs first. *)

val with_armed : recorder -> (unit -> 'a) -> 'a
(** Run a thunk with [recorder] armed on this domain, restoring the previous
    arming state afterwards (exceptions included). *)

val armed : unit -> recorder option

(** {2 Recording}

    Every function below is a no-op when the domain is unarmed. *)

val fresh_id : unit -> int
(** Next span id from the armed recorder; [0] when unarmed. *)

val record : seg -> txn -> span:int -> addr:int -> ts:int -> dur:int -> unit
(** Close one segment: observe [dur] in the (seg, txn) histogram and append a
    timeline event when the recorder buffers timelines. *)

val deferred : now:int -> (unit -> unit) -> unit
(** Run a read-then-record block (e.g. {!lookup} followed by {!record}) at
    simulated time [now].  Inside a sharded-engine domain window the whole
    block is deferred and replayed at the barrier — its recorder reads then
    see barrier-ordered state; otherwise it runs immediately.  Callers keep
    their [if on () then ...] gate so spans-off runs allocate nothing. *)

(** {3 Crossing lifecycle (guard link + XG + host ports)} *)

val xreq_open : txn -> addr:int -> now:int -> unit
(** An accelerator request entered the guard link ([To_xg_req] send). *)

val xreq_delivered : addr:int -> now:int -> unit
(** That request arrived at the XG: closes [Link_req]. *)

val xg_decided : addr:int -> now:int -> unit
(** The XG resolved the request (host issue or direct ack): closes
    [Xg_decide]. *)

val resp_sent : addr:int -> now:int -> unit
(** The XG sent the accel-bound response ([To_accel_resp]). *)

val resp_delivered : addr:int -> now:int -> unit
(** The response arrived at the accelerator: closes [Link_resp] and, for
    GETs, retires the crossing. *)

val host_put_issued : addr:int -> now:int -> unit
(** The XG forwarded this writeback to a host port; the crossing then stays
    open until {!put_settled}, even after the accel ack is delivered.  [now]
    only orders the op under the sharded engine. *)

val put_settled : addr:int -> now:int -> unit
(** A host-forwarded writeback finished on the host side; retires the
    crossing once the accel response has also been delivered. *)

val lookup : addr:int -> (int * txn) option
(** Span id and transaction type of the open crossing on [addr], for
    host-side hooks that attribute their own segments ([Host_fetch],
    [Host_defer]). *)

val lookup_put : addr:int -> (int * txn) option
(** Like {!lookup}, but resolves the still-settling writeback on [addr] even
    after the accel ack retired the request/response half of the crossing —
    and even if a follow-up GET has already opened a new crossing on the
    same block.  Host ports use this to attribute [Host_writeback]. *)

(** {3 Invalidate lifecycle} *)

val inv_open : addr:int -> now:int -> unit
(** The XG sent an [Invalidate] to the accelerator. *)

val inv_closed : addr:int -> now:int -> unit
(** The accelerator's ack came back to the XG: closes [Inv_roundtrip]. *)

val inv_race : addr:int -> now:int -> unit
(** A put crossed the in-flight invalidate (instant event). *)

val inv_timeout : addr:int -> now:int -> unit
(** The invalidate watchdog escalated (instant event). *)

(** {2 Time-series sampler} *)

val add_gauge : name:string -> (unit -> int) -> unit
(** Register a gauge with the armed recorder.  Gauges are read together at
    each sampler tick; registration order fixes the series order. *)

val reset_gauges : unit -> unit
(** Drop all registered gauges (armed recorder only).  Called at the top of
    [System.build] so rebuilt systems never sample stale closures. *)

val gauges : unit -> (string * (unit -> int)) list
(** The armed recorder's gauge registry (registration order); [[]] when
    unarmed.  The metrics layer snapshots this at its own ticks instead of
    duplicating every registration site. *)

val sample_now : now:int -> unit
(** Snapshot every registered gauge once, timestamped [now], on the armed
    recorder.  The sharded-engine coordinator calls this at window barriers
    in place of {!start_sampler} (whose tick would have to run inside a
    domain window). *)

val start_sampler : engine:Xguard_sim.Engine.t -> period:int -> unit
(** Snapshot every registered gauge every [period] cycles (first sample at
    [period]) for as long as the engine has other work pending.  The tick
    re-arms only while other events exist, so the engine still drains. *)

(** {2 Summaries} *)

module Summary : sig
  type t
  (** Immutable per-(segment, txn) histogram set in canonical (segment, txn)
      index order, plus bookkeeping counters.  Safe to send across domains
      and merge in job order. *)

  val empty : t
  val is_empty : t -> bool

  val merge : t -> t -> t
  (** Pure; associative; canonical cell order, so sharded campaign merges
      are byte-identical to a serial run. *)

  val cells : t -> (string * string * Xguard_stats.Histogram.t) list
  (** [(segment, txn, histogram)] in canonical order. *)

  val replaced : t -> int
  (** Crossings whose address was re-opened before they retired (stale entry
      replaced — expected under faults/chaos, rare otherwise). *)

  val dropped : t -> int
  (** Timeline + sampler entries discarded at the caps. *)

  val attribution_table : ?title:string -> t -> Xguard_stats.Table.t option
  (** The latency-attribution table (segment / txn / count / p50 / p95 /
      p99 / max), or [None] when no samples were recorded.  [title] defaults
      to ["Latency attribution (cycles)"]. *)
end

val summary : recorder -> Summary.t

(** {2 Timeline access (Perfetto exporter)} *)

val timeline_events : recorder -> (int * int * int * int * int * int) array
(** [(seg_index, txn_index, span, addr, ts, dur)] in record order. *)

val timeline_dropped : recorder -> int

val sample_series : recorder -> (int * (string * int) array) list
(** [(ts, [(gauge, value); ...])] snapshots in time order.  Each snapshot
    carries its own name/value pairs because gauges may be registered while
    the sampler is already running (drivers create sequencers after
    [System.build]). *)
