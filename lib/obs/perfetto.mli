(** Chrome / Perfetto trace-event JSON export.

    Serialises the timeline buffers of one or more {!Spans.recorder}s into
    the trace-event format (JSON object form, [{"traceEvents": [...]}])
    that [ui.perfetto.dev] and [chrome://tracing] load directly:

    - every closed segment becomes a complete ("X") event: [name] is the
      segment, [cat] the transaction type, [ts]/[dur] are in simulated
      cycles (rendered as microseconds by the viewer), [args] carry the
      span id and block address;
    - each recorder becomes one process ([pid] = its list index, labelled
      with a process_name metadata event) and each segment one named
      thread track within it, so multi-config runs stay side by side;
    - time-series sampler snapshots become counter ("C") events, one
      series per gauge.

    JSON is written with the stdlib only — no external dependencies. *)

val write_channel : out_channel -> (string * Spans.recorder) list -> unit
(** [write_channel oc jobs] writes one trace for all [(label, recorder)]
    pairs.  Output ends with a newline; the channel is not closed. *)

val write_file : string -> (string * Spans.recorder) list -> unit
(** {!write_channel} to a fresh file (truncating). *)
