(* Chrome trace-event JSON, hand-rolled on Buffer/Printf: the repo bakes in
   no JSON library, and the event shapes here are flat enough that string
   assembly is clearer than a combinator layer would be. *)

let json_string s =
  let b = Buffer.create (String.length s + 2) in
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"';
  Buffer.contents b

let write_channel oc jobs =
  output_string oc "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  let first = ref true in
  let emit s =
    if !first then first := false else output_char oc ',';
    output_char oc '\n';
    output_string oc s
  in
  List.iteri
    (fun pid (label, r) ->
      emit
        (Printf.sprintf "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":0,\"args\":{\"name\":%s}}"
           pid (json_string label));
      let events = Spans.timeline_events r in
      (* Name only the segment tracks that actually carry events. *)
      let used = Array.make Spans.seg_count false in
      Array.iter (fun (seg, _, _, _, _, _) -> used.(seg) <- true) events;
      Array.iteri
        (fun seg u ->
          if u then
            emit
              (Printf.sprintf
                 "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\"args\":{\"name\":%s}}"
                 pid seg
                 (json_string (Spans.seg_name_of_index seg))))
        used;
      Array.iter
        (fun (seg, txn, span, addr, ts, dur) ->
          emit
            (Printf.sprintf
               "{\"name\":%s,\"cat\":%s,\"ph\":\"X\",\"ts\":%d,\"dur\":%d,\"pid\":%d,\"tid\":%d,\"args\":{\"span\":%d,\"addr\":%d}}"
               (json_string (Spans.seg_name_of_index seg))
               (json_string (Spans.txn_name_of_index txn))
               ts dur pid seg span addr))
        events;
      List.iter
        (fun (ts, values) ->
          Array.iter
            (fun (name, v) ->
              emit
                (Printf.sprintf
                   "{\"name\":%s,\"ph\":\"C\",\"ts\":%d,\"pid\":%d,\"args\":{\"value\":%d}}"
                   (json_string name) ts pid v))
            values)
        (Spans.sample_series r))
    jobs;
  output_string oc "\n]}\n"

let write_file path jobs =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> write_channel oc jobs)
