module Histogram = Xguard_stats.Histogram
module Group = Xguard_stats.Counter.Group
module Engine = Xguard_sim.Engine
module Shard = Xguard_sim.Shard

(* Streaming run telemetry, built on the same bones as {!Spans}: a
   per-domain armed recorder, deferred-effect replay at PDES barriers, and a
   pure associative summary merge so campaign shards fold byte-identically in
   job order.

   Each sampler tick snapshots three things into one sample: the nonzero
   counter deltas since the previous tick (every registered stats group,
   flattened under its label), the instantaneous gauge values (the span
   layer's gauge registry plus metrics-only extras such as per-port
   completion counts), and the cumulative per-(segment x txn) span histogram
   quantiles.  The watchdog judges exactly that snapshot, so anomaly verdicts
   are as deterministic as the stream itself.

   Arming metrics always arms the span layer too (the CLI enforces it): the
   per-tick quantiles read the armed span recorder, and the sharded engine's
   span context provides deferral for the per-guard latency hooks below. *)

type sample = {
  m_ts : int;
  m_counters : (string * int) array;  (** nonzero deltas, source order *)
  m_gauges : (string * int) array;  (** instantaneous values, registration order *)
  m_quants : (string * string * int * int * int * int) array;
      (** (segment, txn, n, p50, p95, p99), canonical cell order *)
}

type recorder = {
  mutable groups : (string * Group.t) list;  (** registration order *)
  mutable extra_gauges : (string * (unit -> int)) list;
  prev : (string, int) Hashtbl.t;  (** previous-tick counter values *)
  hists : (string * string, Histogram.t) Hashtbl.t;  (** (guard, metric) *)
  open_e2e : (string * int, int) Hashtbl.t;  (** (guard, addr) -> send ts *)
  open_inv : (string * int, int) Hashtbl.t;
  mutable replaced : int;
  watchdog : Watchdog.t option;
  mutable wd_events : Watchdog.event list;  (** newest first *)
  mutable avails : (string * int * int) list;  (** newest first *)
  sample_cap : int;
  mutable samples : sample list;  (** newest first *)
  mutable sample_count : int;
  mutable dropped : int;
}

let create ?watchdog ?(sample_cap = 100_000) () =
  {
    groups = [];
    extra_gauges = [];
    prev = Hashtbl.create 64;
    hists = Hashtbl.create 16;
    open_e2e = Hashtbl.create 64;
    open_inv = Hashtbl.create 16;
    replaced = 0;
    watchdog = Option.map Watchdog.create watchdog;
    wd_events = [];
    avails = [];
    sample_cap;
    samples = [];
    sample_count = 0;
    dropped = 0;
  }

(* -- arming (same discipline as Spans) ------------------------------------- *)

let key : recorder option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)
let get () = Domain.DLS.get key
let armed = get

(* PDES worker domains have no DLS recorder; they must still defer the
   per-guard latency hooks through the shard context when the coordinator has
   metrics armed.  The shard context only knows "spans are armed" (metrics
   implies spans), so a process-wide hint distinguishes a metrics run from a
   spans-only one and keeps the latter free of no-op deferrals. *)
let hint = Atomic.make false

let on () =
  match Domain.DLS.get key with
  | Some _ -> true
  | None -> Atomic.get hint && Shard.spans_on ()

let with_armed r f =
  Atomic.set hint true;
  let prev = Domain.DLS.get key in
  Domain.DLS.set key (Some r);
  Fun.protect ~finally:(fun () -> Domain.DLS.set key prev) f

let ctx_defer ~ts run =
  match Shard.spans_ctx () with
  | Some c -> Shard.defer c ~ts run
  | None -> run ()

(* -- sources ---------------------------------------------------------------- *)

let reset_sources () =
  match get () with
  | None -> ()
  | Some r ->
      r.groups <- [];
      r.extra_gauges <- []

let add_group ~name g =
  match get () with None -> () | Some r -> r.groups <- r.groups @ [ (name, g) ]

let add_gauge ~name f =
  match get () with
  | None -> ()
  | Some r -> r.extra_gauges <- r.extra_gauges @ [ (name, f) ]

let watchdog_armed () =
  match get () with
  | None -> false
  | Some r -> ( match r.watchdog with Some _ -> true | None -> false)

let set_watchdog_reporter f =
  match get () with
  | None -> ()
  | Some r -> (
      match r.watchdog with Some w -> Watchdog.set_reporter w f | None -> ())

(* -- per-guard latency hooks ------------------------------------------------ *)

let hist_for r ~guard ~metric =
  let k = (guard, metric) in
  match Hashtbl.find_opt r.hists k with
  | Some h -> h
  | None ->
      let h = Histogram.create (guard ^ "." ^ metric) in
      Hashtbl.add r.hists k h;
      h

let open_in tbl r ~guard ~addr ~now =
  let k = (guard, addr) in
  if Hashtbl.mem tbl k then begin
    Hashtbl.remove tbl k;
    r.replaced <- r.replaced + 1
  end;
  Hashtbl.replace tbl k now

let close_in tbl r ~metric ~guard ~addr ~now =
  let k = (guard, addr) in
  match Hashtbl.find_opt tbl k with
  | None -> ()
  | Some t0 ->
      Hashtbl.remove tbl k;
      Histogram.observe (hist_for r ~guard ~metric) (now - t0)

let e2e_open ~guard ~addr ~now =
  ctx_defer ~ts:now (fun () ->
      match get () with None -> () | Some r -> open_in r.open_e2e r ~guard ~addr ~now)

let e2e_close ~guard ~addr ~now =
  ctx_defer ~ts:now (fun () ->
      match get () with
      | None -> ()
      | Some r -> close_in r.open_e2e r ~metric:"xg.e2e" ~guard ~addr ~now)

let inv_open ~guard ~addr ~now =
  ctx_defer ~ts:now (fun () ->
      match get () with None -> () | Some r -> open_in r.open_inv r ~guard ~addr ~now)

let inv_close ~guard ~addr ~now =
  ctx_defer ~ts:now (fun () ->
      match get () with
      | None -> ()
      | Some r -> close_in r.open_inv r ~metric:"inv.roundtrip" ~guard ~addr ~now)

(* -- availability (recorded once post-run, outside any shard window) -------- *)

let note_avail ~guard ~down ~now =
  match get () with
  | None -> ()
  | Some r -> r.avails <- (guard, down, now) :: r.avails

(* -- sampler ----------------------------------------------------------------- *)

let counter_values r =
  List.concat_map
    (fun (label, g) -> List.map (fun (n, v) -> (label ^ "." ^ n, v)) (Group.to_list g))
    r.groups

let take_sample r ~now =
  let vals = counter_values r in
  let gauges =
    List.map (fun (n, f) -> (n, f ())) (Spans.gauges () @ r.extra_gauges)
  in
  match (vals, gauges) with
  | [], [] -> ()
  | _ ->
      let deltas =
        List.filter_map
          (fun (n, v) ->
            let p = match Hashtbl.find_opt r.prev n with Some p -> p | None -> 0 in
            Hashtbl.replace r.prev n v;
            if v <> p then Some (n, v - p) else None)
          vals
      in
      let quants =
        match Spans.armed () with
        | None -> [||]
        | Some sr ->
            Spans.summary sr |> Spans.Summary.cells
            |> List.map (fun (seg, txn, h) ->
                   ( seg,
                     txn,
                     Histogram.count h,
                     Histogram.percentile h 0.5,
                     Histogram.percentile h 0.95,
                     Histogram.percentile h 0.99 ))
            |> Array.of_list
      in
      if r.sample_count >= r.sample_cap then r.dropped <- r.dropped + 1
      else begin
        r.samples <-
          {
            m_ts = now;
            m_counters = Array.of_list deltas;
            m_gauges = Array.of_list gauges;
            m_quants = quants;
          }
          :: r.samples;
        r.sample_count <- r.sample_count + 1
      end;
      (match r.watchdog with
      | None -> ()
      | Some w ->
          let evs = Watchdog.observe w ~now ~deltas ~gauges in
          r.wd_events <- List.rev_append evs r.wd_events)

let sample_now ~now = match get () with None -> () | Some r -> take_sample r ~now

let start_sampler ~engine ~period =
  match get () with
  | None -> ()
  | Some r ->
      Engine.every engine ~period ~phase:period (fun () ->
          take_sample r ~now:(Engine.now engine);
          Engine.pending engine > 0)

(* -- summaries ---------------------------------------------------------------- *)

module Summary = struct
  type block = {
    b_label : string;
    b_samples : sample list;  (** oldest first *)
    b_events : Watchdog.event list;  (** oldest first *)
    b_avails : (string * int * int) list;  (** noting order *)
  }

  type t = {
    blocks : block list;  (** job order *)
    hists : ((string * string) * Histogram.t) list;  (** sorted by key *)
    s_replaced : int;
    s_dropped : int;
  }

  let empty = { blocks = []; hists = []; s_replaced = 0; s_dropped = 0 }

  let is_empty t =
    (match (t.blocks, t.hists) with [], [] -> true | _ -> false)
    && t.s_replaced = 0 && t.s_dropped = 0

  let blocks t = t.blocks
  let hists t = t.hists
  let replaced t = t.s_replaced
  let dropped t = t.s_dropped
  let samples t = List.fold_left (fun a b -> a + List.length b.b_samples) 0 t.blocks
  let avails t = List.concat_map (fun b -> b.b_avails) t.blocks

  let events t =
    List.concat_map (fun b -> List.map (fun e -> (b.b_label, e)) b.b_events) t.blocks

  (* Trip totals per rule, rule-table order, zero rules omitted. *)
  let trip_counts t =
    let counts = Array.make (Array.length Watchdog.rules) 0 in
    List.iter
      (fun b ->
        List.iter
          (fun (e : Watchdog.event) ->
            if e.w_event = "Trip" then
              Array.iteri
                (fun i r -> if r = e.w_rule then counts.(i) <- counts.(i) + 1)
                Watchdog.rules)
          b.b_events)
      t.blocks;
    List.filteri (fun i _ -> counts.(i) > 0)
      (Array.to_list (Array.mapi (fun i r -> (r, counts.(i))) Watchdog.rules))

  (* Sorted-assoc merge-join on (guard, metric): associative and
     order-canonical, like the span summary merge. *)
  let merge_hists a b =
    let rec go xs ys =
      match (xs, ys) with
      | [], r | r, [] -> r
      | ((ka, ha) as ca) :: xs', ((kb, hb) as cb) :: ys' ->
          if ka = kb then (ka, Histogram.merge ha hb) :: go xs' ys'
          else if ka < kb then ca :: go xs' ys
          else cb :: go xs ys'
    in
    go a b

  let merge a b =
    {
      blocks = a.blocks @ b.blocks;
      hists = merge_hists a.hists b.hists;
      s_replaced = a.s_replaced + b.s_replaced;
      s_dropped = a.s_dropped + b.s_dropped;
    }
end

let summary ~label r =
  let hists =
    Hashtbl.fold (fun k h acc -> (k, h) :: acc) r.hists []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  {
    Summary.blocks =
      [
        {
          Summary.b_label = label;
          b_samples = List.rev r.samples;
          b_events = List.rev r.wd_events;
          b_avails = List.rev r.avails;
        };
      ];
    hists;
    s_replaced = r.replaced;
    s_dropped = r.dropped;
  }

(* -- JSONL stream ------------------------------------------------------------- *)

let dump_fields h =
  let pairs =
    Histogram.buckets h
    |> List.map (fun (lo, _, c) -> Printf.sprintf "[%d,%d]" lo c)
  in
  Printf.sprintf "\"count\":%d,\"sum\":%d,\"min\":%d,\"max\":%d,\"buckets\":[%s]"
    (Histogram.count h) (Histogram.sum h)
    (Histogram.min_value h) (Histogram.max_value h)
    (String.concat "," pairs)

let kv_obj pairs =
  "{"
  ^ String.concat ","
      (List.map (fun (n, v) -> Printf.sprintf "%s:%d" (Json.quote n) v) pairs)
  ^ "}"

let write_verdict oc (v : Slo.verdict) =
  Printf.fprintf oc
    "{\"t\":\"slo\",\"objective\":%s,\"scope\":%s,\"measured\":%s,\"pass\":%b,\"detail\":%s}\n"
    (Json.quote v.Slo.v_objective) (Json.quote v.Slo.v_scope)
    (Json.quote v.Slo.v_measured) v.Slo.v_pass (Json.quote v.Slo.v_detail)

let write_jsonl oc ~period ~span_cells ~verdicts (t : Summary.t) =
  Printf.fprintf oc
    "{\"schema\":\"xguard-metrics-v1\",\"period\":%d,\"jobs\":%d,\"replaced\":%d,\"dropped\":%d}\n"
    period
    (List.length t.Summary.blocks)
    (Summary.replaced t) (Summary.dropped t);
  List.iter
    (fun (b : Summary.block) ->
      let job = Json.quote b.Summary.b_label in
      Printf.fprintf oc "{\"t\":\"job\",\"job\":%s,\"samples\":%d}\n" job
        (List.length b.Summary.b_samples);
      List.iter
        (fun s ->
          let quants =
            Array.to_list s.m_quants
            |> List.map (fun (seg, txn, n, p50, p95, p99) ->
                   Printf.sprintf "%s:[%d,%d,%d,%d]"
                     (Json.quote (seg ^ "/" ^ txn))
                     n p50 p95 p99)
          in
          Printf.fprintf oc
            "{\"t\":\"sample\",\"job\":%s,\"ts\":%d,\"counters\":%s,\"gauges\":%s,\"quantiles\":{%s}}\n"
            job s.m_ts
            (kv_obj (Array.to_list s.m_counters))
            (kv_obj (Array.to_list s.m_gauges))
            (String.concat "," quants))
        b.Summary.b_samples;
      List.iter
        (fun (e : Watchdog.event) ->
          Printf.fprintf oc
            "{\"t\":\"watchdog\",\"job\":%s,\"ts\":%d,\"rule\":%s,\"event\":%s,\"detail\":%s}\n"
            job e.Watchdog.w_ts (Json.quote e.Watchdog.w_rule)
            (Json.quote e.Watchdog.w_event)
            (Json.quote e.Watchdog.w_detail))
        b.Summary.b_events;
      List.iter
        (fun (guard, down, now) ->
          Printf.fprintf oc
            "{\"t\":\"avail\",\"job\":%s,\"guard\":%s,\"down\":%d,\"now\":%d}\n" job
            (Json.quote guard) down now)
        b.Summary.b_avails)
    t.Summary.blocks;
  List.iter
    (fun ((guard, metric), h) ->
      Printf.fprintf oc "{\"t\":\"hist\",\"guard\":%s,\"metric\":%s,%s}\n"
        (Json.quote guard) (Json.quote metric) (dump_fields h))
    t.Summary.hists;
  List.iter
    (fun (seg, txn, h) ->
      Printf.fprintf oc "{\"t\":\"shist\",\"seg\":%s,\"txn\":%s,%s}\n" (Json.quote seg)
        (Json.quote txn) (dump_fields h))
    span_cells;
  List.iter (write_verdict oc) verdicts

(* -- Prometheus-style text dump ----------------------------------------------- *)

let prom_name s =
  String.map (fun c ->
      match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c | _ -> '_') s

let write_prom oc ~span_cells (t : Summary.t) =
  (* Counter totals: the sum of a counter's deltas across every sample is its
     final value per job; summing across jobs gives the aggregate. *)
  let totals = Hashtbl.create 64 in
  let order = ref [] in
  List.iter
    (fun (b : Summary.block) ->
      List.iter
        (fun s ->
          Array.iter
            (fun (n, d) ->
              match Hashtbl.find_opt totals n with
              | None ->
                  order := n :: !order;
                  Hashtbl.add totals n d
              | Some v -> Hashtbl.replace totals n (v + d))
            s.m_counters)
        b.Summary.b_samples)
    t.Summary.blocks;
  output_string oc "# TYPE xguard_counter_total counter\n";
  List.iter
    (fun n ->
      Printf.fprintf oc "xguard_counter_total{name=%s} %d\n" (Json.quote n)
        (Hashtbl.find totals n))
    (List.rev !order);
  output_string oc "# TYPE xguard_latency_cycles summary\n";
  List.iter
    (fun ((guard, metric), h) ->
      let base =
        Printf.sprintf "guard=%s,metric=%s" (Json.quote guard) (Json.quote metric)
      in
      List.iter
        (fun (q, v) ->
          Printf.fprintf oc "xguard_latency_cycles{%s,quantile=\"%s\"} %d\n" base q v)
        [
          ("0.5", Histogram.percentile h 0.5);
          ("0.95", Histogram.percentile h 0.95);
          ("0.99", Histogram.percentile h 0.99);
        ];
      Printf.fprintf oc "xguard_latency_cycles_count{%s} %d\n" base (Histogram.count h);
      Printf.fprintf oc "xguard_latency_cycles_sum{%s} %d\n" base (Histogram.sum h))
    t.Summary.hists;
  output_string oc "# TYPE xguard_segment_cycles summary\n";
  List.iter
    (fun (seg, txn, h) ->
      let base =
        Printf.sprintf "segment=%s,txn=%s" (Json.quote (prom_name seg)) (Json.quote txn)
      in
      List.iter
        (fun (q, v) ->
          Printf.fprintf oc "xguard_segment_cycles{%s,quantile=\"%s\"} %d\n" base q v)
        [
          ("0.5", Histogram.percentile h 0.5);
          ("0.99", Histogram.percentile h 0.99);
        ];
      Printf.fprintf oc "xguard_segment_cycles_count{%s} %d\n" base (Histogram.count h))
    span_cells;
  let avails = Summary.avails t in
  if avails <> [] then begin
    output_string oc "# TYPE xguard_availability gauge\n";
    (* summed per guard, first-seen order *)
    let seen = Hashtbl.create 8 in
    let guards = ref [] in
    List.iter
      (fun (g, d, n) ->
        match Hashtbl.find_opt seen g with
        | None ->
            guards := g :: !guards;
            Hashtbl.add seen g (d, n)
        | Some (d0, n0) -> Hashtbl.replace seen g (d0 + d, n0 + n))
      avails;
    List.iter
      (fun g ->
        let d, n = Hashtbl.find seen g in
        Printf.fprintf oc "xguard_availability{guard=%s} %.4f\n" (Json.quote g)
          (1.0 -. (float_of_int d /. float_of_int (max 1 n))))
      (List.rev !guards)
  end

(* -- stream merging for [xguard report] ----------------------------------------- *)

module Report = struct
  type t = {
    r_streams : (string * int) list;  (** (name, sample lines), add order *)
    r_hists : ((string * string) * Histogram.t) list;  (** sorted *)
    r_cells : ((string * string) * Histogram.t) list;  (** (seg, txn), sorted *)
    r_avails : (string * int * int) list;
    r_trips : (string * int * string * string) list;  (** (rule, ts, stream, detail) *)
    r_verdicts : (string * Slo.verdict) list;  (** (stream, verdict) *)
    r_counters : (string * int) list;  (** summed deltas, first-seen order *)
    r_samples : int;
  }

  let empty =
    {
      r_streams = [];
      r_hists = [];
      r_cells = [];
      r_avails = [];
      r_trips = [];
      r_verdicts = [];
      r_counters = [];
      r_samples = 0;
    }

  let streams t = List.rev t.r_streams
  let samples t = t.r_samples
  let guard_hists t = t.r_hists
  let span_cells t = List.map (fun ((seg, txn), h) -> (seg, txn, h)) t.r_cells
  let avails t = List.rev t.r_avails
  let trips t = List.rev t.r_trips
  let verdicts t = List.rev t.r_verdicts
  let counters t = List.rev t.r_counters

  let hist_of_json name j =
    let int_field k =
      match Option.bind (Json.member k j) Json.to_int_opt with
      | Some v -> Some v
      | None -> None
    in
    match (int_field "sum", int_field "min", int_field "max", Json.member "buckets" j) with
    | Some sum, Some min_v, Some max_v, Some bs ->
        let pairs =
          List.filter_map
            (fun b ->
              match Json.to_list b with
              | [ lo; c ] -> (
                  match (Json.to_int_opt lo, Json.to_int_opt c) with
                  | Some lo, Some c -> Some (lo, c)
                  | _ -> None)
              | _ -> None)
            (Json.to_list bs)
        in
        (try Some (Histogram.of_dump ~name ~sum ~min_v ~max_v pairs)
         with Invalid_argument _ -> None)
    | _ -> None

  let add_hist assoc key h =
    let rec go = function
      | [] -> [ (key, h) ]
      | (k, h0) :: rest ->
          if k = key then (k, Histogram.merge h0 h) :: rest
          else if key < k then (key, h) :: (k, h0) :: rest
          else (k, h0) :: go rest
    in
    go assoc

  let str k j = Option.bind (Json.member k j) Json.to_string_opt
  let int k j = Option.bind (Json.member k j) Json.to_int_opt

  let add_line t ~stream j =
    match str "t" j with
    | Some "sample" ->
        let counters =
          match Json.member "counters" j with Some c -> Json.fields c | None -> []
        in
        let r_counters =
          List.fold_left
            (fun acc (n, v) ->
              match Json.to_int_opt v with
              | None -> acc
              | Some d ->
                  let rec bump = function
                    | [] -> [ (n, d) ]
                    | (n0, v0) :: rest ->
                        if n0 = n then (n0, v0 + d) :: rest else (n0, v0) :: bump rest
                  in
                  bump acc)
            t.r_counters counters
        in
        { t with r_samples = t.r_samples + 1; r_counters }
    | Some "hist" -> (
        match (str "guard" j, str "metric" j) with
        | Some guard, Some metric -> (
            match hist_of_json (guard ^ "." ^ metric) j with
            | Some h -> { t with r_hists = add_hist t.r_hists (guard, metric) h }
            | None -> t)
        | _ -> t)
    | Some "shist" -> (
        match (str "seg" j, str "txn" j) with
        | Some seg, Some txn -> (
            match hist_of_json (seg ^ "/" ^ txn) j with
            | Some h -> { t with r_cells = add_hist t.r_cells (seg, txn) h }
            | None -> t)
        | _ -> t)
    | Some "avail" -> (
        match (str "guard" j, int "down" j, int "now" j) with
        | Some g, Some d, Some n -> { t with r_avails = (g, d, n) :: t.r_avails }
        | _ -> t)
    | Some "watchdog" -> (
        match (str "rule" j, str "event" j, int "ts" j, str "detail" j) with
        | Some rule, Some "Trip", Some ts, Some detail ->
            { t with r_trips = (rule, ts, stream, detail) :: t.r_trips }
        | _ -> t)
    | Some "slo" -> (
        match (str "objective" j, str "scope" j, str "measured" j, str "detail" j) with
        | Some o, Some sc, Some m, Some d ->
            let pass =
              match Option.bind (Json.member "pass" j) Json.to_bool_opt with
              | Some b -> b
              | None -> false
            in
            {
              t with
              r_verdicts =
                ( stream,
                  {
                    Slo.v_objective = o;
                    v_scope = sc;
                    v_measured = m;
                    v_pass = pass;
                    v_detail = d;
                  } )
                :: t.r_verdicts;
            }
        | _ -> t)
    | _ -> t

  let add_stream t ~name lines =
    let start = t.r_samples in
    let schema_ok = ref false in
    let result =
      List.fold_left
        (fun acc line ->
          match acc with
          | Error _ -> acc
          | Ok t -> (
              let line = String.trim line in
              if line = "" then Ok t
              else
                match Json.of_string line with
                | Error e -> Error (Printf.sprintf "%s: %s" name e)
                | Ok j ->
                    (match str "schema" j with
                    | Some "xguard-metrics-v1" -> schema_ok := true
                    | _ -> ());
                    Ok (add_line t ~stream:name j)))
        (Ok t) lines
    in
    match result with
    | Error _ as e -> e
    | Ok t ->
        if not !schema_ok then
          Error (Printf.sprintf "%s: missing xguard-metrics-v1 schema line" name)
        else Ok { t with r_streams = (name, t.r_samples - start) :: t.r_streams }
end
