(** Persistent worker domains with a barrier-round protocol.

    The sharded simulator ({!Xguard_harness.Pdes}) runs tens of thousands of
    short window rounds per run; spawning a domain per round (as {!Pool.map}
    does per job) would cost more than the simulated work.  A team spawns its
    domains once; each {!round} publishes one job, runs it on every slot
    concurrently (the calling thread is slot 0) and returns when all slots
    finish.

    Determinism note: a team never influences {e what} work runs — the
    coordinator partitions work by slot number before the round — so results
    cannot depend on scheduling.  With [workers = 1] no domain is spawned and
    {!round} is a plain call. *)

type t

val create : workers:int -> t
(** Spawn [workers - 1] helper domains ([workers] is clamped to >= 1).
    Slot 0 belongs to the caller of {!round}. *)

val size : t -> int

val round : t -> (int -> unit) -> unit
(** [round t f] runs [f slot] for every [slot] in [0 .. size - 1], slot 0 on
    the calling thread, and returns when all have finished.  If any slot
    raises, the first exception (slot 0's preferred) is re-raised here after
    the barrier — the team itself stays usable. *)

val stop : t -> unit
(** Terminate and join the helper domains.  Idempotent. *)

val with_team : workers:int -> (t -> 'a) -> 'a
(** [create], run, then {!stop} (exceptions included). *)
