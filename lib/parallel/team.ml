(* A persistent worker team for the sharded simulator's window rounds.

   [Pool.map] spawns a domain per job batch, which is fine for campaign-sized
   work (whole stress seeds) but far too heavy for PDES windows — a run
   executes tens of thousands of rounds, and a spawn per round would dwarf
   the simulated work.  A team spawns its domains once and drives them with a
   mutex/condition barrier: the coordinator publishes a job, every worker
   (the coordinator itself is slot 0) runs its slot, and [round] returns when
   all slots finished.

   With [workers = 1] no domain is ever spawned and [round] degenerates to a
   plain call — the sequential fast path has no synchronization at all. *)

type t = {
  workers : int;
  mutex : Mutex.t;
  start : Condition.t;
  finished : Condition.t;
  mutable job : int -> unit;
  mutable round_no : int;  (** bumped per round; workers wait for a change *)
  mutable done_count : int;
  mutable stopping : bool;
  mutable failure : exn option;  (** first worker exception, re-raised at the barrier *)
  mutable domains : unit Domain.t list;
}

let worker_loop t slot =
  let my_round = ref 0 in
  let continue = ref true in
  while !continue do
    Mutex.lock t.mutex;
    while t.round_no = !my_round && not t.stopping do
      Condition.wait t.start t.mutex
    done;
    if t.stopping then begin
      Mutex.unlock t.mutex;
      continue := false
    end
    else begin
      my_round := t.round_no;
      let job = t.job in
      Mutex.unlock t.mutex;
      let failure = try job slot; None with e -> Some e in
      Mutex.lock t.mutex;
      (match failure with
      | Some e when t.failure = None -> t.failure <- Some e
      | _ -> ());
      t.done_count <- t.done_count + 1;
      Condition.signal t.finished;
      Mutex.unlock t.mutex
    end
  done

let create ~workers =
  let workers = max 1 workers in
  let t =
    {
      workers;
      mutex = Mutex.create ();
      start = Condition.create ();
      finished = Condition.create ();
      job = ignore;
      round_no = 0;
      done_count = 0;
      stopping = false;
      failure = None;
      domains = [];
    }
  in
  t.domains <-
    List.init (workers - 1) (fun i -> Domain.spawn (fun () -> worker_loop t (i + 1)));
  t

let size t = t.workers

let round t f =
  if t.workers = 1 then f 0
  else begin
    Mutex.lock t.mutex;
    t.job <- f;
    t.round_no <- t.round_no + 1;
    t.done_count <- 0;
    Condition.broadcast t.start;
    Mutex.unlock t.mutex;
    (* The coordinator is worker 0 — it contributes a slot instead of idling. *)
    let own_failure = try f 0; None with e -> Some e in
    Mutex.lock t.mutex;
    while t.done_count < t.workers - 1 do
      Condition.wait t.finished t.mutex
    done;
    let worker_failure = t.failure in
    t.failure <- None;
    Mutex.unlock t.mutex;
    match (own_failure, worker_failure) with
    | Some e, _ -> raise e
    | None, Some e -> raise e
    | None, None -> ()
  end

let stop t =
  if t.workers > 1 then begin
    Mutex.lock t.mutex;
    t.stopping <- true;
    Condition.broadcast t.start;
    Mutex.unlock t.mutex;
    List.iter Domain.join t.domains;
    t.domains <- []
  end

let with_team ~workers f =
  let t = create ~workers in
  Fun.protect ~finally:(fun () -> stop t) (fun () -> f t)
