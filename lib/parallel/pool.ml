type 'a outcome = Done of 'a | Failed of string

let run_job f i = try Done (f i) with e -> Failed (Printexc.to_string e)

let map ~workers ~jobs f =
  if jobs < 0 then invalid_arg "Pool.map: negative job count";
  if workers <= 1 || jobs <= 1 then Array.init jobs (run_job f)
  else begin
    let results = Array.make jobs (Failed "never ran") in
    (* Work queue: a fetch-and-add cursor over the job indices.  Each slot of
       [results] is written by exactly one worker; Domain.join publishes the
       writes to the calling domain. *)
    let next = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < jobs then begin
          results.(i) <- run_job f i;
          loop ()
        end
      in
      loop ()
    in
    let domains =
      Array.init (min workers jobs - 1) (fun _ -> Domain.spawn worker)
    in
    worker ();
    Array.iter Domain.join domains;
    results
  end

let default_workers () = Domain.recommended_domain_count ()

module Seed = struct
  module Rng = Xguard_sim.Rng

  (* Keep derived seeds positive and outside the small-integer range users
     type by hand, so a campaign seed never collides with a manual
     [--seed 42] replay unless explicitly derived. *)
  let of_bits b = Int64.to_int (Int64.shift_right_logical b 2)

  let derive_all ~base ~count =
    let rng = Rng.create ~seed:base in
    Array.init count (fun _ -> of_bits (Rng.bits64 rng))

  let derive ~base ~job =
    let rng = Rng.create ~seed:base in
    let s = ref 0 in
    for _ = 0 to job do
      s := of_bits (Rng.bits64 rng)
    done;
    !s
end
