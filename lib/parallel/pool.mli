(** Fixed-size domain pool for embarrassingly parallel sweeps.

    The evaluation of the paper is a matrix — configurations × seeds — of
    mutually independent simulator runs.  [map] fans an indexed job list out
    over a fixed number of OCaml 5 domains pulling from a shared work queue,
    with two properties the campaign layer builds on:

    - {b Determinism}: the result array is indexed by job number, so the
      caller sees results in job order no matter which worker ran which job
      or in what order they finished.  Merging results in job order therefore
      yields output that is byte-identical for any worker count, provided
      each job is itself deterministic (every simulator run is: it depends
      only on its seed).
    - {b Crash isolation}: an exception escaping one job is caught on the
      worker, recorded as [Failed] for that job only, and the sweep
      continues.  One wedged or crashing run reports as a failure instead of
      killing the other N-1.

    Jobs must not share mutable state.  In this codebase each job builds its
    own {!Xguard_sim.Engine.t}-rooted system, so the only process-global
    state is the trace-arming flag of {!Xguard_trace.Trace} — which is why
    the CLI restricts [--trace] to [-j 1]. *)

type 'a outcome =
  | Done of 'a
  | Failed of string
      (** [Printexc.to_string] of the exception that escaped the job *)

val map : workers:int -> jobs:int -> (int -> 'a) -> 'a outcome array
(** [map ~workers ~jobs f] evaluates [f i] for every [0 <= i < jobs] and
    returns the outcomes indexed by [i].  At most [workers] domains run
    concurrently (clamped to [jobs]; [workers <= 1] runs everything on the
    calling domain, bypassing domain spawn entirely).  Raises [Invalid_argument]
    if [jobs < 0]. *)

val default_workers : unit -> int
(** [Domain.recommended_domain_count ()], the [-j] default. *)

(** Deterministic job → seed derivation.

    A campaign must give every job an independent, reproducible seed that
    does not collide with the consecutive-integer seeds users pass by hand.
    Seeds are drawn from the repository's splittable SplitMix64 stream
    ({!Xguard_sim.Rng}): the [job]th seed is the [job]th draw from a
    generator rooted at [base].  The mapping is pure — the same [(base, job)]
    pair always yields the same seed, independent of worker count or of how
    many other jobs exist. *)
module Seed : sig
  val derive : base:int -> job:int -> int
  (** The [job]th seed of the stream rooted at [base].  O(job); prefer
      {!derive_all} when enumerating a whole campaign. *)

  val derive_all : base:int -> count:int -> int array
  (** The first [count] seeds of the stream rooted at [base], in one pass.
      [derive_all ~base ~count].(j) = [derive ~base ~job:j]. *)
end
