module Engine = Xguard_sim.Engine
module Rng = Xguard_sim.Rng
module Trace = Xguard_trace.Trace

type ordering =
  | Ordered of { latency : int }
  | Unordered of { min_latency : int; max_latency : int }

let control_size = 8
let data_size = 72

module Make (Msg : sig
  type t
end) =
struct
  type handler = src:Xguard_proto.Node.t -> Msg.t -> unit

  type t = {
    engine : Engine.t;
    rng : Rng.t;
    name : string;
    ordering : ordering;
    handlers : (int, handler) Hashtbl.t;
    (* For ordered delivery: earliest time the next message on a (src,dst)
       pair may be delivered, so FIFO order survives same-cycle scheduling. *)
    last_delivery : (int * int, Engine.time) Hashtbl.t;
    mutable messages : int;
    mutable bytes : int;
    bytes_by_src : (int, int) Hashtbl.t;
    mutable monitor : (src:Xguard_proto.Node.t -> dst:Xguard_proto.Node.t -> Msg.t -> unit) option;
    (* How to describe a message to the tracer: block address plus text.
       Consulted only when a trace buffer is armed. *)
    mutable tracer : (Msg.t -> int * string) option;
  }

  let create ~engine ~rng ~name ~ordering () =
    {
      engine;
      rng;
      name;
      ordering;
      handlers = Hashtbl.create 16;
      last_delivery = Hashtbl.create 64;
      messages = 0;
      bytes = 0;
      bytes_by_src = Hashtbl.create 16;
      monitor = None;
      tracer = None;
    }

  let name t = t.name

  let register t node handler =
    if Hashtbl.mem t.handlers (Xguard_proto.Node.id node) then
      invalid_arg
        (Printf.sprintf "Network.register(%s): node %s already registered" t.name
           (Xguard_proto.Node.name node));
    Hashtbl.add t.handlers (Xguard_proto.Node.id node) handler

  let delivery_time t ~src ~dst =
    let now = Engine.now t.engine in
    match t.ordering with
    | Ordered { latency } ->
        let key = (Xguard_proto.Node.id src, Xguard_proto.Node.id dst) in
        let earliest =
          match Hashtbl.find_opt t.last_delivery key with Some e -> e | None -> 0
        in
        let at = max (now + latency) earliest in
        Hashtbl.replace t.last_delivery key at;
        at
    | Unordered { min_latency; max_latency } ->
        now + Rng.int_in t.rng ~lo:min_latency ~hi:max_latency

  let send t ~src ~dst ?(size = control_size) msg =
    let handler =
      match Hashtbl.find_opt t.handlers (Xguard_proto.Node.id dst) with
      | Some h -> h
      | None ->
          invalid_arg
            (Printf.sprintf "Network.send(%s): no handler registered for %s" t.name
               (Xguard_proto.Node.name dst))
    in
    (match t.monitor with Some f -> f ~src ~dst msg | None -> ());
    (if Trace.on () then
       match t.tracer with
       | Some describe ->
           let addr, text = describe msg in
           Trace.send ~cycle:(Engine.now t.engine) ~net:t.name
             ~src:(Xguard_proto.Node.name src) ~dst:(Xguard_proto.Node.name dst) ~addr ~text
       | None -> ());
    t.messages <- t.messages + 1;
    t.bytes <- t.bytes + size;
    let prev =
      match Hashtbl.find_opt t.bytes_by_src (Xguard_proto.Node.id src) with Some b -> b | None -> 0
    in
    Hashtbl.replace t.bytes_by_src (Xguard_proto.Node.id src) (prev + size);
    let at = delivery_time t ~src ~dst in
    Engine.schedule_at t.engine at (fun () ->
        (if Trace.on () then
           match t.tracer with
           | Some describe ->
               let addr, text = describe msg in
               Trace.recv ~cycle:(Engine.now t.engine) ~net:t.name
                 ~src:(Xguard_proto.Node.name src) ~dst:(Xguard_proto.Node.name dst) ~addr
                 ~text
           | None -> ());
        handler ~src msg)

  let messages_sent t = t.messages
  let bytes_sent t = t.bytes

  let bytes_from t node =
    match Hashtbl.find_opt t.bytes_by_src (Xguard_proto.Node.id node) with Some b -> b | None -> 0

  let set_monitor t f = t.monitor <- Some f
  let set_tracer t f = t.tracer <- Some f
end
