module Engine = Xguard_sim.Engine
module Rng = Xguard_sim.Rng
module Trace = Xguard_trace.Trace

type ordering =
  | Ordered of { latency : int }
  | Unordered of { min_latency : int; max_latency : int }

let control_size = 8
let data_size = 72

module Fault = struct
  type kind = Drop | Duplicate | Corrupt | Delay of int | Kill

  type config = {
    drop : float;
    duplicate : float;
    corrupt : float;
    delay : float;
    max_delay : int;
  }

  let zero = { drop = 0.0; duplicate = 0.0; corrupt = 0.0; delay = 0.0; max_delay = 0 }

  let active c =
    c.drop > 0.0 || c.duplicate > 0.0 || c.corrupt > 0.0
    || (c.delay > 0.0 && c.max_delay > 0)

  type script = { nth : int; needle : string option; kind : kind }

  let kind_to_string = function
    | Drop -> "drop"
    | Duplicate -> "dup"
    | Corrupt -> "corrupt"
    | Delay d -> Printf.sprintf "delay@%d" d
    | Kill -> "kill"

  let script_to_string s =
    kind_to_string s.kind ^ ":" ^ string_of_int s.nth
    ^ match s.needle with None -> "" | Some n -> ":" ^ n

  let kind_of_string s =
    match String.index_opt s '@' with
    | Some i when String.sub s 0 i = "delay" -> (
        match int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1)) with
        | Some d when d > 0 -> Ok (Delay d)
        | _ -> Error (Printf.sprintf "bad delay cycles in %S" s))
    | _ -> (
        match s with
        | "drop" -> Ok Drop
        | "dup" | "duplicate" -> Ok Duplicate
        | "corrupt" -> Ok Corrupt
        | "kill" -> Ok Kill
        | _ -> Error (Printf.sprintf "unknown fault kind %S" s))

  let script_of_string spec =
    match String.split_on_char ':' spec with
    | kind_s :: nth_s :: rest -> (
        match kind_of_string kind_s with
        | Error _ as e -> e
        | Ok kind -> (
            match int_of_string_opt nth_s with
            | Some nth when nth >= 1 ->
                let needle =
                  match rest with [] -> None | parts -> Some (String.concat ":" parts)
                in
                Ok { nth; needle; kind }
            | _ -> Error (Printf.sprintf "bad message index in %S (expected >= 1)" spec)))
    | _ ->
        Error
          (Printf.sprintf
             "bad fault script %S (expected KIND:N[:NEEDLE], kind one of \
              drop|dup|corrupt|kill|delay@CYCLES)"
             spec)

  type counts = {
    mutable drops : int;
    mutable duplicates : int;
    mutable corrupts : int;
    mutable delays : int;
  }

  let fresh_counts () = { drops = 0; duplicates = 0; corrupts = 0; delays = 0 }

  let counts_to_list c =
    [
      ("injected.drop", c.drops);
      ("injected.dup", c.duplicates);
      ("injected.corrupt", c.corrupts);
      ("injected.delay", c.delays);
    ]
end

(* Naive substring search; needles are short CLI-supplied fragments. *)
let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  if nl = 0 then true
  else begin
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  end

module Make (Msg : sig
  type t
end) =
struct
  type handler = src:Xguard_proto.Node.t -> Msg.t -> unit

  (* Sharded-engine partition (see lib/harness/pdes.ml).  Every mutable cell
     the partitioned send path touches is either indexed by the sender's node
     or domain (each node lives in exactly one domain, and sends from it only
     happen on that domain's engine) or deferred through the domain context —
     no Hashtbl or shared counter is mutated concurrently. *)
  type partition = {
    dom_of : int array;  (** node id -> domain index *)
    engines : Engine.t array;  (** domain index -> its engine *)
    p_stride : int;  (** max node id + 1, for the flat FIFO map *)
    p_fifo : int array;
        (** (src * stride + dst) -> earliest next delivery; written only by
            the sender's domain, replacing [last_delivery] which would race *)
    p_messages : int array;  (** per-domain offered-message counters *)
    p_bytes : int array;
    p_latency : int;  (** the Ordered latency, cached *)
  }

  type t = {
    engine : Engine.t;
    rng : Rng.t;
    name : string;
    ordering : ordering;
    handlers : (int, handler) Hashtbl.t;
    (* For ordered delivery: earliest time the next message on a (src,dst)
       pair may be delivered, so FIFO order survives same-cycle scheduling.
       Keyed by the packed int [src_id * fifo_stride + dst_id] so the per-send
       bookkeeping allocates no tuple (PR 4). *)
    last_delivery : (int, Engine.time) Hashtbl.t;
    mutable messages : int;
    mutable bytes : int;
    (* Per-source byte counters, indexed by node id; grown on demand.  A flat
       array instead of a Hashtbl: two fewer probes per message (PR 4). *)
    mutable bytes_by_src : int array;
    mutable monitor : (src:Xguard_proto.Node.t -> dst:Xguard_proto.Node.t -> Msg.t -> unit) option;
    (* How to describe a message to the tracer: block address plus text.
       Consulted only when a trace buffer is armed. *)
    mutable tracer : (Msg.t -> int * string) option;
    (* Fault injection.  [faults]/[fault_rng] drive the probabilistic model;
       [scripts] fire deterministically on the Nth message whose tracer text
       contains the needle.  All are [None]/empty by default, in which case
       [send] takes exactly the historical path (no extra draws, no extra
       allocation), preserving byte-identical runs. *)
    mutable faults : Fault.config option;
    mutable fault_rng : Rng.t option;
    scripts : (Fault.script * int ref) Queue.t;
    mutable wire_cut : bool;
    mutable corruptor : (Msg.t -> Msg.t) option;
    fault_counts : Fault.counts;
    (* Cached [faults_active]: true iff any injector, script or wire cut is
       installed.  When false, [send] takes an allocation-free fast path that
       never consults the fault machinery (PR 4). *)
    mutable fault_path : bool;
    (* Model-checker support (lib/check); all [None] outside check mode, in
       which case the send path computes no tags and tracks nothing. *)
    mutable check_addr : (Msg.t -> int) option;
    mutable check_ctrl : int -> int;
    mutable inflight : (int, int * int * int * string) Hashtbl.t option;
    mutable inflight_next : int;
    mutable delay_chooser : (lo:int -> hi:int -> int) option;
    mutable part : partition option;
  }

  let create ~engine ~rng ~name ~ordering () =
    {
      engine;
      rng;
      name;
      ordering;
      handlers = Hashtbl.create 16;
      last_delivery = Hashtbl.create 64;
      messages = 0;
      bytes = 0;
      bytes_by_src = [||];
      monitor = None;
      tracer = None;
      faults = None;
      fault_rng = None;
      scripts = Queue.create ();
      wire_cut = false;
      corruptor = None;
      fault_counts = Fault.fresh_counts ();
      fault_path = false;
      check_addr = None;
      check_ctrl = (fun id -> id);
      inflight = None;
      inflight_next = 0;
      delay_chooser = None;
      part = None;
    }

  let name t = t.name

  let register t node handler =
    if Hashtbl.mem t.handlers (Xguard_proto.Node.id node) then
      invalid_arg
        (Printf.sprintf "Network.register(%s): node %s already registered" t.name
           (Xguard_proto.Node.name node));
    Hashtbl.add t.handlers (Xguard_proto.Node.id node) handler

  (* Node-id packing for the FIFO map; ids are small dense ints. *)
  let fifo_stride = 1 lsl 16

  let delivery_time t ~src ~dst =
    let now = Engine.now t.engine in
    match t.ordering with
    | Ordered { latency } ->
        let key = (Xguard_proto.Node.id src * fifo_stride) + Xguard_proto.Node.id dst in
        let earliest =
          match Hashtbl.find_opt t.last_delivery key with Some e -> e | None -> 0
        in
        let at = max (now + latency) earliest in
        Hashtbl.replace t.last_delivery key at;
        at
    | Unordered { min_latency; max_latency } -> (
        match t.delay_chooser with
        | Some choose -> now + choose ~lo:min_latency ~hi:max_latency
        | None -> now + Rng.int_in t.rng ~lo:min_latency ~hi:max_latency)

  (* ---- fault injection ---- *)

  let refresh_fault_path t =
    t.fault_path <-
      (t.wire_cut
      || (not (Queue.is_empty t.scripts))
      || match t.faults with Some c -> Fault.active c | None -> false)

  let set_faults t ~rng config =
    t.faults <- Some config;
    t.fault_rng <- Some rng;
    refresh_fault_path t

  let add_fault_script t script =
    (* O(1): scripts live in a queue, iterated in registration order. *)
    Queue.add (script, ref 0) t.scripts;
    refresh_fault_path t

  let set_corruptor t f = t.corruptor <- Some f

  let cut_wire t =
    t.wire_cut <- true;
    refresh_fault_path t

  let splice_wire t =
    t.wire_cut <- false;
    refresh_fault_path t

  let wire_cut t = t.wire_cut
  let fault_counts t = t.fault_counts
  let faults_active t = t.fault_path

  let fault_note t text =
    if Trace.on () then
      Trace.note ~cycle:(Engine.now t.engine) ~controller:t.name ~text ()

  (* The Nth-matching-message scripts.  Every script's match counter advances
     on a matching message; the first script whose counter reaches its index
     supplies the fault kind.  Matching consults the tracer's text rendering
     (no tracer: only needle-less scripts can match). *)
  let script_kind t msg =
    if Queue.is_empty t.scripts then None
    else begin
      let text =
        lazy (match t.tracer with Some describe -> snd (describe msg) | None -> "")
      in
      Queue.fold
        (fun acc (s, seen) ->
          let matches =
            match s.Fault.needle with
            | None -> true
            | Some needle -> contains ~needle (Lazy.force text)
          in
          if matches then begin
            incr seen;
            match acc with
            | Some _ -> acc
            | None -> if !seen = s.Fault.nth then Some s.Fault.kind else None
          end
          else acc)
        None t.scripts
    end

  (* What to do with one message: lose it, or deliver [copies] of [payload],
     the second copy one cycle behind, everything [extra] cycles late. *)
  type plan = Lose | Deliver of { payload : Msg.t; copies : int; extra : int }

  let corrupted t msg =
    t.fault_counts.Fault.corrupts <- t.fault_counts.Fault.corrupts + 1;
    match t.corruptor with
    | Some f -> Some (f msg)
    | None ->
        (* No payload mutator registered: model the corruption as a loss (the
           message is damaged beyond parsing). *)
        None

  let plan_of_kind t msg = function
    | Fault.Kill ->
        t.wire_cut <- true;
        t.fault_path <- true;
        t.fault_counts.Fault.drops <- t.fault_counts.Fault.drops + 1;
        fault_note t "fault: wire cut";
        Lose
    | Fault.Drop ->
        t.fault_counts.Fault.drops <- t.fault_counts.Fault.drops + 1;
        fault_note t "fault: drop";
        Lose
    | Fault.Duplicate ->
        t.fault_counts.Fault.duplicates <- t.fault_counts.Fault.duplicates + 1;
        fault_note t "fault: duplicate";
        Deliver { payload = msg; copies = 2; extra = 0 }
    | Fault.Corrupt -> (
        fault_note t "fault: corrupt";
        match corrupted t msg with
        | Some payload -> Deliver { payload; copies = 1; extra = 0 }
        | None -> Lose)
    | Fault.Delay d ->
        t.fault_counts.Fault.delays <- t.fault_counts.Fault.delays + 1;
        fault_note t "fault: delay";
        Deliver { payload = msg; copies = 1; extra = d }

  let fault_plan t msg =
    if t.wire_cut then begin
      t.fault_counts.Fault.drops <- t.fault_counts.Fault.drops + 1;
      Lose
    end
    else
      match script_kind t msg with
      | Some kind -> plan_of_kind t msg kind
      | None -> (
          match (t.faults, t.fault_rng) with
          | Some cfg, Some rng when Fault.active cfg ->
              if cfg.Fault.drop > 0.0 && Rng.chance rng cfg.Fault.drop then begin
                t.fault_counts.Fault.drops <- t.fault_counts.Fault.drops + 1;
                fault_note t "fault: drop";
                Lose
              end
              else begin
                let corrupt =
                  cfg.Fault.corrupt > 0.0 && Rng.chance rng cfg.Fault.corrupt
                in
                let dup =
                  cfg.Fault.duplicate > 0.0 && Rng.chance rng cfg.Fault.duplicate
                in
                let extra =
                  if
                    cfg.Fault.delay > 0.0 && cfg.Fault.max_delay > 0
                    && Rng.chance rng cfg.Fault.delay
                  then begin
                    t.fault_counts.Fault.delays <- t.fault_counts.Fault.delays + 1;
                    fault_note t "fault: delay";
                    1 + Rng.int rng cfg.Fault.max_delay
                  end
                  else 0
                in
                let payload =
                  if corrupt then begin
                    fault_note t "fault: corrupt";
                    corrupted t msg
                  end
                  else Some msg
                in
                match payload with
                | None -> Lose
                | Some payload ->
                    if dup then begin
                      t.fault_counts.Fault.duplicates <-
                        t.fault_counts.Fault.duplicates + 1;
                      fault_note t "fault: duplicate"
                    end;
                    Deliver { payload; copies = (if dup then 2 else 1); extra }
              end
          | _ -> Deliver { payload = msg; copies = 1; extra = 0 })

  (* One in-flight delivery.  In check mode the message is recorded in the
     in-flight table until its delivery thunk runs (the table feeds the
     checker's state fingerprint) and the event carries a (dst, addr) choice
     tag; otherwise this is exactly the historical schedule. *)
  let schedule_delivery t ~src ~dst ~at msg handler =
    let deliver () =
      (if Trace.on () then
         match t.tracer with
         | Some describe ->
             let addr, text = describe msg in
             Trace.recv ~cycle:(Engine.now t.engine) ~net:t.name
               ~src:(Xguard_proto.Node.name src) ~dst:(Xguard_proto.Node.name dst) ~addr
               ~text
         | None -> ());
      handler ~src msg
    in
    let tag =
      match t.check_addr with
      | Some addr_of ->
          Engine.pack_tag
            ~ctrl:(t.check_ctrl (Xguard_proto.Node.id dst))
            ~addr:(addr_of msg)
      | None -> Engine.no_tag
    in
    match t.inflight with
    | None -> Engine.schedule_at t.engine at ~tag deliver
    | Some table ->
        let token = t.inflight_next in
        t.inflight_next <- token + 1;
        let text =
          match t.tracer with Some describe -> snd (describe msg) | None -> ""
        in
        Hashtbl.replace table token
          (at, Xguard_proto.Node.id src, Xguard_proto.Node.id dst, text);
        Engine.schedule_at t.engine at ~tag (fun () ->
            Hashtbl.remove table token;
            deliver ())

  (* ---- sharded-engine partition ---- *)

  let set_partition t ~dom_of ~engines =
    (match t.ordering with
    | Ordered _ -> ()
    | Unordered _ ->
        invalid_arg
          (Printf.sprintf
             "Network.set_partition(%s): only Ordered networks may span domains"
             t.name));
    if t.fault_path then
      invalid_arg
        (Printf.sprintf "Network.set_partition(%s): fault injection installed" t.name);
    if t.inflight <> None then
      invalid_arg
        (Printf.sprintf "Network.set_partition(%s): check mode armed" t.name);
    let stride = Array.length dom_of in
    let latency = match t.ordering with Ordered { latency } -> latency | _ -> 0 in
    (* Pre-size the per-source byte counters so the partitioned path never
       grows the array (a growth would race between domains). *)
    (if stride > Array.length t.bytes_by_src then begin
       let grown = Array.make stride 0 in
       Array.blit t.bytes_by_src 0 grown 0 (Array.length t.bytes_by_src);
       t.bytes_by_src <- grown
     end);
    t.part <-
      Some
        {
          dom_of;
          engines;
          p_stride = stride;
          p_fifo = Array.make (stride * stride) 0;
          p_messages = Array.make (Array.length engines) 0;
          p_bytes = Array.make (Array.length engines) 0;
          p_latency = latency;
        }

  let partitioned t = t.part <> None

  (* The partitioned analogue of the [send] fast path.  Timestamps come from
     the sender's engine; the delivery closure reads the destination engine's
     clock (it runs inside that domain's window).  Cross-domain deliveries go
     through the domain context's post queue and are scheduled on the
     destination engine at the barrier — the conservative window bound
     guarantees [at] is still in that engine's future. *)
  let send_partitioned t p ~src ~dst ~size msg handler =
    let src_id = Xguard_proto.Node.id src and dst_id = Xguard_proto.Node.id dst in
    let sdom = p.dom_of.(src_id) and ddom = p.dom_of.(dst_id) in
    let src_engine = p.engines.(sdom) in
    let now = Engine.now src_engine in
    (match t.monitor with Some f -> f ~src ~dst msg | None -> ());
    (if Trace.on () then
       match t.tracer with
       | Some describe ->
           let addr, text = describe msg in
           Trace.send ~cycle:now ~net:t.name ~src:(Xguard_proto.Node.name src)
             ~dst:(Xguard_proto.Node.name dst) ~addr ~text
       | None -> ());
    p.p_messages.(sdom) <- p.p_messages.(sdom) + 1;
    p.p_bytes.(sdom) <- p.p_bytes.(sdom) + size;
    t.bytes_by_src.(src_id) <- t.bytes_by_src.(src_id) + size;
    let key = (src_id * p.p_stride) + dst_id in
    let at = max (now + p.p_latency) p.p_fifo.(key) in
    p.p_fifo.(key) <- at;
    let dst_engine = p.engines.(ddom) in
    let deliver () =
      (if Trace.on () then
         match t.tracer with
         | Some describe ->
             let addr, text = describe msg in
             Trace.recv ~cycle:(Engine.now dst_engine) ~net:t.name
               ~src:(Xguard_proto.Node.name src) ~dst:(Xguard_proto.Node.name dst)
               ~addr ~text
         | None -> ());
      handler ~src msg
    in
    if sdom = ddom then Engine.schedule_at src_engine at deliver
    else
      match Xguard_sim.Shard.current () with
      | Some ctx ->
          Xguard_sim.Shard.post ctx ~at (fun () ->
              Engine.schedule_at dst_engine at deliver)
      | None ->
          (* Coordinator code outside any window (setup at time 0). *)
          Engine.schedule_at dst_engine at deliver

  let send t ~src ~dst ?(size = control_size) msg =
    let handler =
      match Hashtbl.find_opt t.handlers (Xguard_proto.Node.id dst) with
      | Some h -> h
      | None ->
          invalid_arg
            (Printf.sprintf "Network.send(%s): no handler registered for %s" t.name
               (Xguard_proto.Node.name dst))
    in
    match t.part with
    | Some p -> send_partitioned t p ~src ~dst ~size msg handler
    | None ->
    (match t.monitor with Some f -> f ~src ~dst msg | None -> ());
    (if Trace.on () then
       match t.tracer with
       | Some describe ->
           let addr, text = describe msg in
           Trace.send ~cycle:(Engine.now t.engine) ~net:t.name
             ~src:(Xguard_proto.Node.name src) ~dst:(Xguard_proto.Node.name dst) ~addr ~text
       | None -> ());
    (* Offered traffic is counted at send time, injected faults or not. *)
    t.messages <- t.messages + 1;
    t.bytes <- t.bytes + size;
    let src_id = Xguard_proto.Node.id src in
    (if src_id >= Array.length t.bytes_by_src then begin
       let grown = Array.make (max 16 (2 * (src_id + 1))) 0 in
       Array.blit t.bytes_by_src 0 grown 0 (Array.length t.bytes_by_src);
       t.bytes_by_src <- grown
     end);
    t.bytes_by_src.(src_id) <- t.bytes_by_src.(src_id) + size;
    if not t.fault_path then
      (* Fast path: no injector, script or wire cut installed — skip the
         fault plan entirely; one schedule, no [plan] allocation (PR 4). *)
      schedule_delivery t ~src ~dst ~at:(delivery_time t ~src ~dst) msg handler
    else
      match fault_plan t msg with
      | Lose -> ()
      | Deliver { payload; copies; extra } ->
          (* [delivery_time] keeps its FIFO bookkeeping on the base time; an
             injected extra delay is applied to the schedule only, so a jittered
             message can be overtaken — that is the modelled misbehaviour. *)
          let at = delivery_time t ~src ~dst + extra in
          for copy = 0 to copies - 1 do
            schedule_delivery t ~src ~dst ~at:(at + copy) payload handler
          done

  let messages_sent t =
    match t.part with
    | None -> t.messages
    | Some p -> Array.fold_left ( + ) t.messages p.p_messages

  let bytes_sent t =
    match t.part with
    | None -> t.bytes
    | Some p -> Array.fold_left ( + ) t.bytes p.p_bytes

  let bytes_from t node =
    let id = Xguard_proto.Node.id node in
    if id < Array.length t.bytes_by_src then t.bytes_by_src.(id) else 0

  let set_monitor t f = t.monitor <- Some f
  let set_tracer t f = t.tracer <- Some f

  (* ---- model-checker support ---- *)

  let enable_check_mode t ?ctrl_of ~addr_of () =
    t.check_addr <- Some addr_of;
    (match ctrl_of with Some f -> t.check_ctrl <- f | None -> ());
    if t.inflight = None then t.inflight <- Some (Hashtbl.create 32)

  let set_delay_chooser t f = t.delay_chooser <- Some f

  let check_fingerprint t buf =
    let now = Engine.now t.engine in
    (match t.inflight with
    | None -> ()
    | Some table ->
        let entries =
          Hashtbl.fold
            (fun _ (at, src, dst, text) acc -> (at - now, src, dst, text) :: acc)
            table []
        in
        List.iter
          (fun (dt, src, dst, text) ->
            Buffer.add_string buf (Printf.sprintf "m%d:%d>%d:%s;" dt src dst text))
          (List.sort compare entries));
    (* FIFO release times still in the future gate the delivery time of the
       next send on that (src,dst) pair, so they are architecturally visible;
       past entries are inert and must not distinguish states. *)
    let gates =
      Hashtbl.fold
        (fun key at acc -> if at > now then (key, at - now) :: acc else acc)
        t.last_delivery []
    in
    List.iter
      (fun (key, dt) -> Buffer.add_string buf (Printf.sprintf "f%d:%d;" key dt))
      (List.sort compare gates)
end
