(** Message-passing interconnect.

    Each coherence domain instantiates {!Make} with its own message type:
    the host protocol network, the Crossing-Guard-to-accelerator link and the
    accelerator-internal network are separate instances with separate ordering
    disciplines.  Buffering is unbounded (protocol deadlock, not network
    deadlock, is the subject of study — as in the paper's gem5 setup, where
    virtual networks prevent buffer deadlock).

    Ordering disciplines:
    - [Ordered]: per (source, destination) FIFO with a fixed latency.  Required
      for the XG-accelerator link (paper section 2.1).
    - [Unordered]: per-message latency drawn uniformly from a range, so
      messages race and overtake — the paper's stress-test methodology
      ("message latencies are chosen randomly"). *)

type ordering =
  | Ordered of { latency : int }
  | Unordered of { min_latency : int; max_latency : int }

module Make (Msg : sig
  type t
end) : sig
  type t

  val create :
    engine:Xguard_sim.Engine.t ->
    rng:Xguard_sim.Rng.t ->
    name:string ->
    ordering:ordering ->
    unit ->
    t

  val name : t -> string

  val register : t -> Xguard_proto.Node.t -> (src:Xguard_proto.Node.t -> Msg.t -> unit) -> unit
  (** Attach a handler for messages addressed to this node.
      @raise Invalid_argument on double registration. *)

  val send : t -> src:Xguard_proto.Node.t -> dst:Xguard_proto.Node.t -> ?size:int -> Msg.t -> unit
  (** Deliver [msg] to [dst]'s handler after the network latency.  [size] in
      bytes feeds the bandwidth counters (default 8, a control message;
      data-carrying messages should pass 72 = 64 B block + header).
      @raise Invalid_argument if [dst] was never registered. *)

  val messages_sent : t -> int
  val bytes_sent : t -> int

  val bytes_from : t -> Xguard_proto.Node.t -> int
  (** Bytes sent with this node as source — per-link bandwidth accounting,
      e.g. the paper's "Crossing-Guard-to-host bandwidth". *)

  val set_monitor : t -> (src:Xguard_proto.Node.t -> dst:Xguard_proto.Node.t -> Msg.t -> unit) -> unit
  (** Observe every message at send time (fuzz auditing, invariant checks). *)

  val set_tracer : t -> (Msg.t -> int * string) -> unit
  (** Teach the network how to describe a message to the armed
      {!Xguard_trace.Trace} buffer: the block address it concerns (or
      {!Xguard_trace.Trace.no_addr}) and a short rendering.  Consulted only
      while a trace buffer is armed; send and delivery of every message then
      produce [Msg_send]/[Msg_recv] events. *)
end

(** Message sizes used throughout: a bare control message and one carrying a
    64-byte data block. *)
val control_size : int

val data_size : int
