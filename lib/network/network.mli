(** Message-passing interconnect.

    Each coherence domain instantiates {!Make} with its own message type:
    the host protocol network, the Crossing-Guard-to-accelerator link and the
    accelerator-internal network are separate instances with separate ordering
    disciplines.  Buffering is unbounded (protocol deadlock, not network
    deadlock, is the subject of study — as in the paper's gem5 setup, where
    virtual networks prevent buffer deadlock).

    Ordering disciplines:
    - [Ordered]: per (source, destination) FIFO with a fixed latency.  Required
      for the XG-accelerator link (paper section 2.1).
    - [Unordered]: per-message latency drawn uniformly from a range, so
      messages race and overtake — the paper's stress-test methodology
      ("message latencies are chosen randomly").

    A network can additionally run a lossy-link fault model (see {!Fault}):
    seeded probabilistic drop/duplicate/corrupt/delay injection plus
    deterministic scripts that target the Nth message matching a predicate.
    With no fault model installed, the send path is byte-for-byte the
    historical one (no extra RNG draws), so fault-free runs stay reproducible
    against pre-fault builds. *)

type ordering =
  | Ordered of { latency : int }
  | Unordered of { min_latency : int; max_latency : int }

(** Lossy-link fault model: what can happen to a message in flight. *)
module Fault : sig
  type kind =
    | Drop  (** message lost *)
    | Duplicate  (** delivered twice, second copy one cycle behind *)
    | Corrupt  (** payload mutated via the network's corruptor *)
    | Delay of int  (** delivered late by the given number of cycles *)
    | Kill  (** cuts the wire: this and every later message is lost *)

  (** Per-message probabilities for the seeded model.  [drop] is drawn first
      and excludes the others; [corrupt], [duplicate] and [delay] draws are
      independent.  A delayed message is late by 1..[max_delay] cycles. *)
  type config = {
    drop : float;
    duplicate : float;
    corrupt : float;
    delay : float;
    max_delay : int;
  }

  val zero : config
  (** All probabilities 0.0 — a fault model that never fires.  Installing it
      still leaves the send path untouched (no draws are made). *)

  val active : config -> bool
  (** Whether any probability can ever fire. *)

  (** A deterministic fault: hit the [nth] (1-based) message whose trace text
      contains [needle] ([None] matches every message) with [kind].  Scripts
      make "lose exactly the first DataM" experiments reproducible without
      probability sweeps. *)
  type script = { nth : int; needle : string option; kind : kind }

  val script_of_string : string -> (script, string) result
  (** Parses ["KIND:N[:NEEDLE]"] where KIND is
      [drop|dup|corrupt|kill|delay@CYCLES] — the CLI [--fault-script]
      syntax. *)

  val script_to_string : script -> string

  (** Injection tally, by kind. *)
  type counts = {
    mutable drops : int;
    mutable duplicates : int;
    mutable corrupts : int;
    mutable delays : int;
  }

  val counts_to_list : counts -> (string * int) list
  (** Stable [(label, count)] rendering for reports. *)
end

module Make (Msg : sig
  type t
end) : sig
  type t

  val create :
    engine:Xguard_sim.Engine.t ->
    rng:Xguard_sim.Rng.t ->
    name:string ->
    ordering:ordering ->
    unit ->
    t

  val name : t -> string

  val register : t -> Xguard_proto.Node.t -> (src:Xguard_proto.Node.t -> Msg.t -> unit) -> unit
  (** Attach a handler for messages addressed to this node.
      @raise Invalid_argument on double registration. *)

  val send : t -> src:Xguard_proto.Node.t -> dst:Xguard_proto.Node.t -> ?size:int -> Msg.t -> unit
  (** Deliver [msg] to [dst]'s handler after the network latency.  [size] in
      bytes feeds the bandwidth counters (default 8, a control message;
      data-carrying messages should pass 72 = 64 B block + header).
      @raise Invalid_argument if [dst] was never registered. *)

  val messages_sent : t -> int
  val bytes_sent : t -> int

  val bytes_from : t -> Xguard_proto.Node.t -> int
  (** Bytes sent with this node as source — per-link bandwidth accounting,
      e.g. the paper's "Crossing-Guard-to-host bandwidth". *)

  val set_monitor : t -> (src:Xguard_proto.Node.t -> dst:Xguard_proto.Node.t -> Msg.t -> unit) -> unit
  (** Observe every message at send time (fuzz auditing, invariant checks). *)

  val set_tracer : t -> (Msg.t -> int * string) -> unit
  (** Teach the network how to describe a message to the armed
      {!Xguard_trace.Trace} buffer: the block address it concerns (or
      {!Xguard_trace.Trace.no_addr}) and a short rendering.  Consulted only
      while a trace buffer is armed; send and delivery of every message then
      produce [Msg_send]/[Msg_recv] events.  Also consulted by fault scripts
      to match needles (regardless of trace arming). *)

  (* ---- sharded-engine partition (lib/harness/pdes.ml) ---- *)

  val set_partition :
    t -> dom_of:int array -> engines:Xguard_sim.Engine.t array -> unit
  (** Split this network across domain engines for the parallel simulator:
      [dom_of.(node id)] names the domain a node lives in and [engines.(d)]
      that domain's engine.  Sends then timestamp from the {e sender's}
      engine, keep FIFO order in a flat per-(src,dst) array (written only by
      the sender's domain), and count traffic in per-domain arrays; deliveries
      to another domain go through the current {!Xguard_sim.Shard} context's
      post queue and are scheduled on the destination engine at the window
      barrier.  [dom_of] must cover every node id that will ever send or
      receive here.
      @raise Invalid_argument on an [Unordered] network, with fault injection
      installed, or in check mode — the parallel simulator refuses those
      configurations up front. *)

  val partitioned : t -> bool

  (* ---- fault injection ---- *)

  val set_faults : t -> rng:Xguard_sim.Rng.t -> Fault.config -> unit
  (** Installs the probabilistic fault model.  [rng] must be a standalone
      stream (not split from a component stream) so enabling faults does not
      perturb the rest of the simulation. *)

  val add_fault_script : t -> Fault.script -> unit
  (** Adds a deterministic script; scripts are checked before the
      probabilistic model, in the order added. *)

  val set_corruptor : t -> (Msg.t -> Msg.t) -> unit
  (** How [Corrupt] mutates a payload.  Without a corruptor, a corrupted
      message is modelled as lost (damaged beyond parsing). *)

  val cut_wire : t -> unit
  (** Silently discards this and every subsequent message — the directed
      kill-the-link fault. *)

  val wire_cut : t -> bool

  val splice_wire : t -> unit
  (** Reverses {!cut_wire}: messages flow again (the recovery handshake's
      physical re-connect).  Probabilistic faults and pending scripts, if any,
      stay installed. *)

  val faults_active : t -> bool
  (** Whether any injection can occur (wire cut, scripts pending, or an
      installed model with a nonzero probability). *)

  val fault_counts : t -> Fault.counts
  (** Injection tally; all zeros when no fault ever fired. *)

  (* ---- model-checker support (lib/check) ---- *)

  val enable_check_mode : t -> ?ctrl_of:(int -> int) -> addr_of:(Msg.t -> int) -> unit -> unit
  (** Arm the network for explicit-state checking: every delivery event is
      scheduled with an {!Xguard_sim.Engine.pack_tag} choice tag built from
      the destination node and [addr_of msg] (return [-1] for messages that
      concern no block), and in-flight messages are tracked for
      {!check_fingerprint}.  [ctrl_of] (default identity) maps a destination
      node id to the controller id used in the tag — the harness aliases the
      guard's link endpoint to its host-side port so events that synchronously
      mutate the same state share one conflict cluster.  Tracking costs one
      hash-table insert/remove per message; networks never armed are
      byte-identical to historical ones. *)

  val set_delay_chooser : t -> (lo:int -> hi:int -> int) -> unit
  (** Replace the RNG draw of [Unordered] latency with a callback — the
      checker's hook for treating link delay as an enumerated choice.  No
      effect on [Ordered] networks. *)

  val check_fingerprint : t -> Buffer.t -> unit
  (** Append this network's architecturally-visible state to a canonical
      fingerprint: the in-flight message multiset (relative delivery time,
      endpoints, payload rendering — requires {!enable_check_mode} and a
      tracer) and any FIFO-ordering release times still in the future. *)
end

(** Message sizes used throughout: a bare control message and one carrying a
    64-byte data block. *)
val control_size : int

val data_size : int
