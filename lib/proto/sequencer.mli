(** Core-side request sequencer.

    Sits between a core model and its private cache: queues accesses, retries
    when the cache rejects them, tracks per-access latency and completion
    counts.  One sequencer per core.  The sequencer issues at most
    [max_outstanding] accesses concurrently and never issues two concurrent
    accesses to the same block (hardware cores merge those in the LSQ). *)

type t

val create :
  engine:Xguard_sim.Engine.t ->
  name:string ->
  port:Access.port ->
  ?max_outstanding:int ->
  ?retry_delay:int ->
  unit ->
  t

val name : t -> string

val request : t -> Access.t -> on_complete:(Data.t -> latency:int -> unit) -> unit
(** Enqueue an access.  [on_complete] fires when the access commits, with the
    observed value and the issue-to-commit latency in cycles. *)

val outstanding : t -> int
(** Accesses issued or queued but not yet complete. *)

val completed : t -> int
val latency : t -> Xguard_stats.Histogram.t
val retries : t -> int

(* ---- model-checker support (lib/check) ---- *)

val set_check_ctrl : t -> int -> unit
(** Tag this sequencer's pump/retry events with the served cache's controller
    id (the node the sequencer feeds), so the model checker treats them as
    conflicting with that cache's message deliveries.  Untagged sequencers
    conservatively conflict with everything. *)

val check_residue : t -> int
(** Count of stale entries lingering past the live region of the internal
    ring buffer and flight table — must be [0] for snapshot/fingerprint
    symmetry.  Exposed for the regression test of the tail-slot clear in
    [remove_flight]. *)

val check_fingerprint : t -> Buffer.t -> unit
(** Append the architecturally-visible sequencer state (queued accesses in
    order, sorted in-flight block set, pump-scheduled flag) to a canonical
    state fingerprint; stats and span bookkeeping are excluded. *)
