(* Each set is a list of (addr, line) ordered most-recently-used first.
   Associativities are small (<= 16 ways), so list operations are cheap. *)

type 'line t = {
  sets : int;
  ways : int;
  index_mask : int;
  table : (Addr.t * 'line) list array;
  mutable resident : int;
}

let is_power_of_two n = n > 0 && n land (n - 1) = 0

let create ~sets ~ways () =
  if not (is_power_of_two sets) then invalid_arg "Cache_array.create: sets not a power of two";
  if ways <= 0 then invalid_arg "Cache_array.create: ways must be positive";
  { sets; ways; index_mask = sets - 1; table = Array.make sets []; resident = 0 }

let sets t = t.sets
let ways t = t.ways
let count t = t.resident
let index t addr = addr land t.index_mask

let find t addr =
  let rec scan = function
    | [] -> None
    | (a, line) :: rest -> if Addr.equal a addr then Some line else scan rest
  in
  scan t.table.(index t addr)

let mem t addr = Option.is_some (find t addr)

let split_out addr entries =
  let rec loop acc = function
    | [] -> None
    | ((a, _) as entry) :: rest ->
        if Addr.equal a addr then Some (entry, List.rev_append acc rest)
        else loop (entry :: acc) rest
  in
  loop [] entries

let touch t addr =
  let i = index t addr in
  match split_out addr t.table.(i) with
  | None -> ()
  | Some (entry, rest) -> t.table.(i) <- entry :: rest

let set t addr line =
  let i = index t addr in
  match split_out addr t.table.(i) with
  | None -> raise Not_found
  | Some (_, rest) -> t.table.(i) <- (addr, line) :: rest

(* The three set-occupancy queries below walk the set exactly once
   (resident? + length + LRU entry in one pass) instead of chaining
   [List.exists] + [List.length] + a last-element walk (PR 4). *)

let insert t addr line =
  let i = index t addr in
  let entries = t.table.(i) in
  let rec check n = function
    | [] ->
        if n >= t.ways then
          invalid_arg "Cache_array.insert: set is full (evict a victim first)"
    | (a, _) :: rest ->
        if Addr.equal a addr then
          invalid_arg "Cache_array.insert: address already resident"
        else check (n + 1) rest
  in
  check 0 entries;
  t.table.(i) <- (addr, line) :: entries;
  t.resident <- t.resident + 1

let has_room t addr =
  let rec scan n = function
    | [] -> n < t.ways
    | (a, _) :: rest -> Addr.equal a addr || scan (n + 1) rest
  in
  scan 0 t.table.(index t addr)

let victim t addr =
  (* LRU = last element of the MRU-first list; no victim when the block is
     already resident or the set still has room. *)
  let rec scan n lru = function
    | [] -> if n >= t.ways then lru else None
    | ((a, _) as entry) :: rest ->
        if Addr.equal a addr then None else scan (n + 1) (Some entry) rest
  in
  scan 0 None t.table.(index t addr)

let remove t addr =
  let i = index t addr in
  match split_out addr t.table.(i) with
  | None -> ()
  | Some (_, rest) ->
      t.table.(i) <- rest;
      t.resident <- t.resident - 1

let iter f t = Array.iter (fun entries -> List.iter (fun (a, line) -> f a line) entries) t.table

let to_list t =
  let acc = ref [] in
  iter (fun a line -> acc := (a, line) :: !acc) t;
  !acc
