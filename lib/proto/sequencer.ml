module Engine = Xguard_sim.Engine
module Histogram = Xguard_stats.Histogram
module Trace = Xguard_trace.Trace
module Spans = Xguard_obs.Spans
module Metrics = Xguard_obs.Metrics

let access_text access =
  Format.asprintf "%a" Access.pp access

let span_txn access = if Access.is_store access then Spans.Store else Spans.Load

type pending = {
  access : Access.t;
  issued_at : Engine.time;
  span : int; (* span id when recording, 0 otherwise *)
  on_complete : Data.t -> latency:int -> unit;
}

let dummy_pending =
  {
    access = Access.load (Addr.block 0);
    issued_at = 0;
    span = 0;
    on_complete = (fun _ ~latency:_ -> ());
  }

type t = {
  engine : Engine.t;
  name : string;
  port : Access.port;
  max_outstanding : int;
  retry_delay : int;
  (* Waiting to issue: a growable ring buffer.  The retry path requeues at the
     head, so both ends push in O(1) with no per-element allocation. *)
  mutable pend : pending array;
  mutable head : int;
  mutable queued : int;
  mutable in_flight : int; (* accepted by the cache, not yet done *)
  flight_addrs : Addr.t array; (* first [in_flight] entries are live *)
  mutable completed : int;
  mutable retries : int;
  latency : Histogram.t;
  mutable pump_scheduled : bool;
  (* Choice tag for pump/retry events (model checker); [Engine.no_tag] outside
     check mode.  Set to the served cache's controller id so reorderings
     against that cache's deliveries are never pruned. *)
  mutable check_tag : int;
}

let create ~engine ~name ~port ?(max_outstanding = 16) ?(retry_delay = 3) () =
  {
    engine;
    name;
    port;
    max_outstanding;
    retry_delay;
    pend = Array.make 16 dummy_pending;
    head = 0;
    queued = 0;
    in_flight = 0;
    flight_addrs = Array.make (max max_outstanding 1) (Addr.block 0);
    completed = 0;
    retries = 0;
    latency = Histogram.create (name ^ ".latency");
    pump_scheduled = false;
    check_tag = Engine.no_tag;
  }

let create ~engine ~name ~port ?max_outstanding ?retry_delay () =
  let t = create ~engine ~name ~port ?max_outstanding ?retry_delay () in
  if Spans.on () then Spans.add_gauge ~name:(name ^ ".outstanding") (fun () -> t.in_flight + t.queued);
  (* The watchdog's starvation rule pairs each port's [.outstanding] gauge
     (shared with the span layer above) with a progress signal: a port that
     holds work while [.completed] freezes — and the rest of the system
     moves — is starving. *)
  if Metrics.on () then
    Metrics.add_gauge ~name:(name ^ ".completed") (fun () -> t.completed);
  t

let name t = t.name
let outstanding t = t.in_flight + t.queued
let completed t = t.completed
let latency t = t.latency
let retries t = t.retries

let grow_pend t =
  let cap = Array.length t.pend in
  let bigger = Array.make (2 * cap) dummy_pending in
  for k = 0 to t.queued - 1 do
    bigger.(k) <- t.pend.((t.head + k) mod cap)
  done;
  t.pend <- bigger;
  t.head <- 0

let push_back t p =
  if t.queued = Array.length t.pend then grow_pend t;
  t.pend.((t.head + t.queued) mod Array.length t.pend) <- p;
  t.queued <- t.queued + 1

let push_front t p =
  if t.queued = Array.length t.pend then grow_pend t;
  let cap = Array.length t.pend in
  t.head <- (t.head + cap - 1) mod cap;
  t.pend.(t.head) <- p;
  t.queued <- t.queued + 1

let pop_front t =
  let p = t.pend.(t.head) in
  t.pend.(t.head) <- dummy_pending;
  t.head <- (t.head + 1) mod Array.length t.pend;
  t.queued <- t.queued - 1;
  p

let addr_in_flight t addr =
  let rec go i =
    i < t.in_flight && (Addr.equal t.flight_addrs.(i) addr || go (i + 1))
  in
  go 0

(* Remove one occurrence by swapping the last live entry into its slot; the
   caller decrements [in_flight] afterwards.  No-op when absent. *)
let remove_flight t addr =
  let n = t.in_flight in
  let rec go i =
    if i < n then
      if Addr.equal t.flight_addrs.(i) addr then begin
        t.flight_addrs.(i) <- t.flight_addrs.(n - 1);
        (* Clear the vacated tail slot: stale addresses past [in_flight] are
           behaviorally inert but would leak into state fingerprints. *)
        t.flight_addrs.(n - 1) <- Addr.block 0
      end
      else go (i + 1)
  in
  go 0

let rec pump t =
  if
    t.queued > 0
    && t.in_flight < t.max_outstanding
    && not (addr_in_flight t t.pend.(t.head).access.Access.addr)
  then begin
    let p = pop_front t in
    let addr = p.access.Access.addr in
    let accepted =
      t.port.Access.issue p.access ~on_done:(fun value ->
          remove_flight t addr;
          t.in_flight <- t.in_flight - 1;
          t.completed <- t.completed + 1;
          let lat = Engine.now t.engine - p.issued_at in
          Histogram.observe t.latency lat;
          if Spans.on () then
            Spans.record Spans.Seq_e2e (span_txn p.access) ~span:p.span
              ~addr:(Addr.to_int addr) ~ts:p.issued_at ~dur:lat;
          if Trace.on () then
            Trace.note ~cycle:(Engine.now t.engine) ~controller:t.name
              ~addr:(Addr.to_int addr)
              ~text:(Printf.sprintf "done %s (latency %d)" (access_text p.access) lat)
              ();
          p.on_complete value ~latency:lat;
          schedule_pump t)
    in
    if accepted then begin
      t.flight_addrs.(t.in_flight) <- addr;
      t.in_flight <- t.in_flight + 1;
      if Spans.on () then
        Spans.record Spans.Seq_queue (span_txn p.access) ~span:p.span
          ~addr:(Addr.to_int addr) ~ts:p.issued_at
          ~dur:(Engine.now t.engine - p.issued_at);
      if Trace.on () then
        Trace.note ~cycle:(Engine.now t.engine) ~controller:t.name
          ~addr:(Addr.to_int addr)
          ~text:(Printf.sprintf "issue %s" (access_text p.access))
          ();
      pump t
    end
    else begin
      (* Cache rejected: requeue at the head and retry after a delay. *)
      t.retries <- t.retries + 1;
      if Spans.on () then
        Spans.record Spans.Seq_retry (span_txn p.access) ~span:p.span
          ~addr:(Addr.to_int addr) ~ts:(Engine.now t.engine) ~dur:t.retry_delay;
      if Trace.on () then
        Trace.stall ~cycle:(Engine.now t.engine) ~controller:t.name
          ~addr:(Addr.to_int addr)
          ~why:(Printf.sprintf "cache rejected %s; retry in %d" (access_text p.access)
                  t.retry_delay);
      push_front t p;
      Engine.schedule t.engine ~delay:t.retry_delay ~tag:t.check_tag (fun () -> pump t)
    end
  end

and schedule_pump t =
  if not t.pump_scheduled then begin
    t.pump_scheduled <- true;
    Engine.schedule t.engine ~delay:0 ~tag:t.check_tag (fun () ->
        t.pump_scheduled <- false;
        pump t)
  end

let request t access ~on_complete =
  let span = if Spans.on () then Spans.fresh_id () else 0 in
  push_back t { access; issued_at = Engine.now t.engine; span; on_complete };
  schedule_pump t

(* ---- model-checker support ---- *)

let set_check_ctrl t ctrl =
  t.check_tag <- Engine.pack_tag ~ctrl ~addr:(-1)

let check_residue t =
  let n = ref 0 in
  for i = t.in_flight to Array.length t.flight_addrs - 1 do
    if not (Addr.equal t.flight_addrs.(i) (Addr.block 0)) then incr n
  done;
  let cap = Array.length t.pend in
  for k = t.queued to cap - 1 do
    if t.pend.((t.head + k) mod cap) != dummy_pending then incr n
  done;
  !n

let check_fingerprint t buf =
  Buffer.add_string buf "seq[";
  Buffer.add_string buf t.name;
  Buffer.add_char buf ']';
  for k = 0 to t.queued - 1 do
    let p = t.pend.((t.head + k) mod Array.length t.pend) in
    Buffer.add_char buf 'q';
    Buffer.add_string buf (access_text p.access)
  done;
  let live = Array.sub t.flight_addrs 0 t.in_flight in
  Array.sort Addr.compare live;
  Array.iter
    (fun a -> Buffer.add_string buf (Printf.sprintf "f%d" (Addr.to_int a)))
    live;
  if t.pump_scheduled then Buffer.add_char buf 'P';
  Buffer.add_char buf ';'
