module Engine = Xguard_sim.Engine
module Histogram = Xguard_stats.Histogram
module Trace = Xguard_trace.Trace

let access_text access =
  Format.asprintf "%a" Access.pp access

type pending = {
  access : Access.t;
  issued_at : Engine.time;
  on_complete : Data.t -> latency:int -> unit;
}

type t = {
  engine : Engine.t;
  name : string;
  port : Access.port;
  max_outstanding : int;
  retry_delay : int;
  queue : pending Queue.t; (* waiting to issue *)
  mutable in_flight : int; (* accepted by the cache, not yet done *)
  mutable in_flight_addrs : Addr.t list;
  mutable completed : int;
  mutable retries : int;
  latency : Histogram.t;
  mutable pump_scheduled : bool;
}

let create ~engine ~name ~port ?(max_outstanding = 16) ?(retry_delay = 3) () =
  {
    engine;
    name;
    port;
    max_outstanding;
    retry_delay;
    queue = Queue.create ();
    in_flight = 0;
    in_flight_addrs = [];
    completed = 0;
    retries = 0;
    latency = Histogram.create (name ^ ".latency");
    pump_scheduled = false;
  }

let name t = t.name
let outstanding t = t.in_flight + Queue.length t.queue
let completed t = t.completed
let latency t = t.latency
let retries t = t.retries

let addr_in_flight t addr = List.exists (Addr.equal addr) t.in_flight_addrs

let rec pump t =
  if
    (not (Queue.is_empty t.queue))
    && t.in_flight < t.max_outstanding
    && not (addr_in_flight t (Queue.peek t.queue).access.Access.addr)
  then begin
    let p = Queue.pop t.queue in
    let addr = p.access.Access.addr in
    let accepted =
      t.port.Access.issue p.access ~on_done:(fun value ->
          t.in_flight <- t.in_flight - 1;
          t.in_flight_addrs <- List.filter (fun a -> not (Addr.equal a addr)) t.in_flight_addrs;
          t.completed <- t.completed + 1;
          let lat = Engine.now t.engine - p.issued_at in
          Histogram.observe t.latency lat;
          if Trace.on () then
            Trace.note ~cycle:(Engine.now t.engine) ~controller:t.name
              ~addr:(Addr.to_int addr)
              ~text:(Printf.sprintf "done %s (latency %d)" (access_text p.access) lat)
              ();
          p.on_complete value ~latency:lat;
          schedule_pump t)
    in
    if accepted then begin
      t.in_flight <- t.in_flight + 1;
      t.in_flight_addrs <- addr :: t.in_flight_addrs;
      if Trace.on () then
        Trace.note ~cycle:(Engine.now t.engine) ~controller:t.name
          ~addr:(Addr.to_int addr)
          ~text:(Printf.sprintf "issue %s" (access_text p.access))
          ();
      pump t
    end
    else begin
      (* Cache rejected: requeue at the head and retry after a delay. *)
      t.retries <- t.retries + 1;
      if Trace.on () then
        Trace.stall ~cycle:(Engine.now t.engine) ~controller:t.name
          ~addr:(Addr.to_int addr)
          ~why:(Printf.sprintf "cache rejected %s; retry in %d" (access_text p.access)
                  t.retry_delay);
      let rest = Queue.create () in
      Queue.transfer t.queue rest;
      Queue.push p t.queue;
      Queue.transfer rest t.queue;
      Engine.schedule t.engine ~delay:t.retry_delay (fun () -> pump t)
    end
  end

and schedule_pump t =
  if not t.pump_scheduled then begin
    t.pump_scheduled <- true;
    Engine.schedule t.engine ~delay:0 (fun () ->
        t.pump_scheduled <- false;
        pump t)
  end

let request t access ~on_complete =
  Queue.push { access; issued_at = Engine.now t.engine; on_complete } t.queue;
  schedule_pump t
