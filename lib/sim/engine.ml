type time = int

(* Binary min-heap on (at, seq), kept as three parallel arrays: timestamps and
   sequence numbers live in unboxed int arrays — comparisons and sift moves
   touch no pointers — and only the thunk column pays the GC write barrier.
   Sifting moves a hole instead of swapping, so each level costs one store per
   column rather than two.  No per-event record is allocated. *)
type t = {
  mutable at_h : int array;
  mutable seq_h : int array;
  mutable thunk_h : (unit -> unit) array;
  mutable size : int;
  mutable now : time;
  mutable next_seq : int;
  mutable fired : int;
  mutable stop_requested : bool;
}

let create () =
  {
    at_h = Array.make 64 0;
    seq_h = Array.make 64 0;
    thunk_h = Array.make 64 ignore;
    size = 0;
    now = 0;
    next_seq = 0;
    fired = 0;
    stop_requested = false;
  }

let now t = t.now
let pending t = t.size
let events_fired t = t.fired
let stop t = t.stop_requested <- true

let grow t =
  let cap = 2 * Array.length t.at_h in
  let at = Array.make cap 0 and seq = Array.make cap 0 in
  let thunk = Array.make cap ignore in
  Array.blit t.at_h 0 at 0 t.size;
  Array.blit t.seq_h 0 seq 0 t.size;
  Array.blit t.thunk_h 0 thunk 0 t.size;
  t.at_h <- at;
  t.seq_h <- seq;
  t.thunk_h <- thunk

let push t at seq thunk =
  if t.size = Array.length t.at_h then grow t;
  let i = ref t.size in
  t.size <- t.size + 1;
  let continue = ref true in
  while !continue && !i > 0 do
    let p = (!i - 1) / 2 in
    let pat = t.at_h.(p) in
    if at < pat || (at = pat && seq < t.seq_h.(p)) then begin
      t.at_h.(!i) <- pat;
      t.seq_h.(!i) <- t.seq_h.(p);
      t.thunk_h.(!i) <- t.thunk_h.(p);
      i := p
    end
    else continue := false
  done;
  t.at_h.(!i) <- at;
  t.seq_h.(!i) <- seq;
  t.thunk_h.(!i) <- thunk

(* Caller reads the root's fields before calling; this just deletes it. *)
let remove_root t =
  t.size <- t.size - 1;
  let n = t.size in
  let at = t.at_h.(n) and seq = t.seq_h.(n) and thunk = t.thunk_h.(n) in
  t.thunk_h.(n) <- ignore;
  if n > 0 then begin
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 in
      let r = l + 1 in
      let s = ref !i and sat = ref at and sseq = ref seq in
      if l < n && (t.at_h.(l) < !sat || (t.at_h.(l) = !sat && t.seq_h.(l) < !sseq))
      then begin
        s := l;
        sat := t.at_h.(l);
        sseq := t.seq_h.(l)
      end;
      if r < n && (t.at_h.(r) < !sat || (t.at_h.(r) = !sat && t.seq_h.(r) < !sseq))
      then s := r;
      if !s <> !i then begin
        t.at_h.(!i) <- t.at_h.(!s);
        t.seq_h.(!i) <- t.seq_h.(!s);
        t.thunk_h.(!i) <- t.thunk_h.(!s);
        i := !s
      end
      else continue := false
    done;
    t.at_h.(!i) <- at;
    t.seq_h.(!i) <- seq;
    t.thunk_h.(!i) <- thunk
  end

let schedule_at t at thunk =
  if at < t.now then
    invalid_arg
      (Printf.sprintf "Engine.schedule_at: time %d is in the past (now=%d)" at t.now);
  push t at t.next_seq thunk;
  t.next_seq <- t.next_seq + 1

let schedule t ~delay thunk =
  if delay < 0 then invalid_arg "Engine.schedule: negative delay";
  schedule_at t (t.now + delay) thunk

type run_result = Drained | Hit_time_limit | Hit_event_limit | Stopped

(* Per-domain total across all engines, bumped once per [run] call (not per
   event), so the bench harness can attribute events/sec to a code region
   without racing between worker domains. *)
let domain_fired : int ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref 0)

let events_fired_here () = !(Domain.DLS.get domain_fired)

let run ?until ?max_events t =
  t.stop_requested <- false;
  let fired_at_start = t.fired in
  let result = ref Drained in
  let continue = ref true in
  while !continue do
    if t.size = 0 then begin
      result := Drained;
      continue := false
    end
    else if t.stop_requested then begin
      result := Stopped;
      continue := false
    end
    else begin
      let over_time =
        match until with Some u -> t.at_h.(0) > u | None -> false
      in
      let over_events =
        match max_events with
        | Some m -> t.fired - fired_at_start >= m
        | None -> false
      in
      if over_time then begin
        (match until with Some u -> t.now <- max t.now u | None -> ());
        result := Hit_time_limit;
        continue := false
      end
      else if over_events then begin
        result := Hit_event_limit;
        continue := false
      end
      else begin
        let at = t.at_h.(0) and thunk = t.thunk_h.(0) in
        remove_root t;
        t.now <- at;
        t.fired <- t.fired + 1;
        thunk ()
      end
    end
  done;
  let c = Domain.DLS.get domain_fired in
  c := !c + (t.fired - fired_at_start);
  !result

let every t ~period ?(phase = 0) f =
  if period <= 0 then invalid_arg "Engine.every: period must be positive";
  let rec tick () = if f () then schedule t ~delay:period tick in
  schedule t ~delay:phase tick
