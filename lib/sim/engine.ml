type time = int

(* Binary min-heap on (at, seq), kept as four parallel arrays: timestamps,
   sequence numbers and choice tags live in unboxed int arrays — comparisons
   and sift moves touch no pointers — and only the thunk column pays the GC
   write barrier.  Sifting moves a hole instead of swapping, so each level
   costs one store per column rather than two.  No per-event record is
   allocated. *)
type t = {
  mutable at_h : int array;
  mutable seq_h : int array;
  mutable tag_h : int array;
  mutable thunk_h : (unit -> unit) array;
  mutable size : int;
  mutable now : time;
  mutable next_seq : int;
  mutable fired : int;
  mutable stop_requested : bool;
}

let create () =
  {
    at_h = Array.make 64 0;
    seq_h = Array.make 64 0;
    tag_h = Array.make 64 0;
    thunk_h = Array.make 64 ignore;
    size = 0;
    now = 0;
    next_seq = 0;
    fired = 0;
    stop_requested = false;
  }

let now t = t.now
let pending t = t.size
let next_at t = if t.size = 0 then None else Some t.at_h.(0)
let events_fired t = t.fired
let stop t = t.stop_requested <- true

let grow t =
  let cap = 2 * Array.length t.at_h in
  let at = Array.make cap 0 and seq = Array.make cap 0 and tag = Array.make cap 0 in
  let thunk = Array.make cap ignore in
  Array.blit t.at_h 0 at 0 t.size;
  Array.blit t.seq_h 0 seq 0 t.size;
  Array.blit t.tag_h 0 tag 0 t.size;
  Array.blit t.thunk_h 0 thunk 0 t.size;
  t.at_h <- at;
  t.seq_h <- seq;
  t.tag_h <- tag;
  t.thunk_h <- thunk

let push t at seq tag thunk =
  if t.size = Array.length t.at_h then grow t;
  let i = ref t.size in
  t.size <- t.size + 1;
  let continue = ref true in
  while !continue && !i > 0 do
    let p = (!i - 1) / 2 in
    let pat = t.at_h.(p) in
    if at < pat || (at = pat && seq < t.seq_h.(p)) then begin
      t.at_h.(!i) <- pat;
      t.seq_h.(!i) <- t.seq_h.(p);
      t.tag_h.(!i) <- t.tag_h.(p);
      t.thunk_h.(!i) <- t.thunk_h.(p);
      i := p
    end
    else continue := false
  done;
  t.at_h.(!i) <- at;
  t.seq_h.(!i) <- seq;
  t.tag_h.(!i) <- tag;
  t.thunk_h.(!i) <- thunk

(* Caller reads the root's fields before calling; this just deletes it. *)
let remove_root t =
  t.size <- t.size - 1;
  let n = t.size in
  let at = t.at_h.(n) and seq = t.seq_h.(n) and tag = t.tag_h.(n) in
  let thunk = t.thunk_h.(n) in
  t.thunk_h.(n) <- ignore;
  if n > 0 then begin
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 in
      let r = l + 1 in
      let s = ref !i and sat = ref at and sseq = ref seq in
      if l < n && (t.at_h.(l) < !sat || (t.at_h.(l) = !sat && t.seq_h.(l) < !sseq))
      then begin
        s := l;
        sat := t.at_h.(l);
        sseq := t.seq_h.(l)
      end;
      if r < n && (t.at_h.(r) < !sat || (t.at_h.(r) = !sat && t.seq_h.(r) < !sseq))
      then s := r;
      if !s <> !i then begin
        t.at_h.(!i) <- t.at_h.(!s);
        t.seq_h.(!i) <- t.seq_h.(!s);
        t.tag_h.(!i) <- t.tag_h.(!s);
        t.thunk_h.(!i) <- t.thunk_h.(!s);
        i := !s
      end
      else continue := false
    done;
    t.at_h.(!i) <- at;
    t.seq_h.(!i) <- seq;
    t.tag_h.(!i) <- tag;
    t.thunk_h.(!i) <- thunk
  end

let schedule_at t at ?(tag = 0) thunk =
  if at < t.now then
    invalid_arg
      (Printf.sprintf "Engine.schedule_at: time %d is in the past (now=%d)" at t.now);
  push t at t.next_seq tag thunk;
  t.next_seq <- t.next_seq + 1

let schedule t ~delay ?(tag = 0) thunk =
  if delay < 0 then invalid_arg "Engine.schedule: negative delay";
  schedule_at t (t.now + delay) ~tag thunk

type run_result = Drained | Hit_time_limit | Hit_event_limit | Stopped

(* Per-domain total across all engines, bumped once per [run] call (not per
   event), so the bench harness can attribute events/sec to a code region
   without racing between worker domains. *)
let domain_fired : int ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref 0)

let events_fired_here () = !(Domain.DLS.get domain_fired)

let run ?until ?max_events t =
  t.stop_requested <- false;
  let fired_at_start = t.fired in
  let result = ref Drained in
  let continue = ref true in
  while !continue do
    if t.size = 0 then begin
      result := Drained;
      continue := false
    end
    else if t.stop_requested then begin
      result := Stopped;
      continue := false
    end
    else begin
      let over_time =
        match until with Some u -> t.at_h.(0) > u | None -> false
      in
      let over_events =
        match max_events with
        | Some m -> t.fired - fired_at_start >= m
        | None -> false
      in
      if over_time then begin
        (match until with Some u -> t.now <- max t.now u | None -> ());
        result := Hit_time_limit;
        continue := false
      end
      else if over_events then begin
        result := Hit_event_limit;
        continue := false
      end
      else begin
        let at = t.at_h.(0) and thunk = t.thunk_h.(0) in
        remove_root t;
        t.now <- at;
        t.fired <- t.fired + 1;
        thunk ()
      end
    end
  done;
  let c = Domain.DLS.get domain_fired in
  c := !c + (t.fired - fired_at_start);
  !result

let every t ~period ?(phase = 0) f =
  if period <= 0 then invalid_arg "Engine.every: period must be positive";
  let rec tick () = if f () then schedule t ~delay:period tick in
  schedule t ~delay:phase tick

(* ---- scheduler-choice layer (lib/check) ---- *)

let no_tag = 0
let tag_addr_bits = 24
let tag_addr_mask = (1 lsl tag_addr_bits) - 1

let pack_tag ~ctrl ~addr =
  ((ctrl + 1) lsl tag_addr_bits) lor ((addr + 1) land tag_addr_mask)

let tag_ctrl tag = tag lsr tag_addr_bits
let tag_addr tag = tag land tag_addr_mask

let tags_conflict a b =
  a = no_tag || b = no_tag || tag_ctrl a = tag_ctrl b || tag_addr a = tag_addr b

let choices t =
  if t.size = 0 then [||]
  else begin
    let min_at = t.at_h.(0) in
    let acc = ref [] in
    for i = t.size - 1 downto 0 do
      if t.at_h.(i) = min_at then acc := (t.seq_h.(i), t.tag_h.(i), i) :: !acc
    done;
    let arr = Array.of_list !acc in
    Array.sort (fun (s1, _, _) (s2, _, _) -> compare (s1 : int) s2) arr;
    Array.map (fun (_, tag, key) -> (tag, key)) arr
  end

(* Generalized heap deletion, for firing a non-root candidate.  Swap-based
   sifts (rather than the hole-based ones above): this is a checker-only path
   where clarity beats the last store. *)
let heap_less t i j =
  t.at_h.(i) < t.at_h.(j) || (t.at_h.(i) = t.at_h.(j) && t.seq_h.(i) < t.seq_h.(j))

let heap_swap t i j =
  let at = t.at_h.(i) and seq = t.seq_h.(i) and tag = t.tag_h.(i) in
  let thunk = t.thunk_h.(i) in
  t.at_h.(i) <- t.at_h.(j);
  t.seq_h.(i) <- t.seq_h.(j);
  t.tag_h.(i) <- t.tag_h.(j);
  t.thunk_h.(i) <- t.thunk_h.(j);
  t.at_h.(j) <- at;
  t.seq_h.(j) <- seq;
  t.tag_h.(j) <- tag;
  t.thunk_h.(j) <- thunk

let sift_up t k =
  let i = ref k in
  while !i > 0 && heap_less t !i ((!i - 1) / 2) do
    let p = (!i - 1) / 2 in
    heap_swap t !i p;
    i := p
  done

let sift_down t k =
  let i = ref k and continue = ref true in
  while !continue do
    let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
    let s = ref !i in
    if l < t.size && heap_less t l !s then s := l;
    if r < t.size && heap_less t r !s then s := r;
    if !s <> !i then begin
      heap_swap t !i !s;
      i := !s
    end
    else continue := false
  done

let fire_choice t ~key =
  if key < 0 || key >= t.size then invalid_arg "Engine.fire_choice: stale key";
  if t.at_h.(key) <> t.at_h.(0) then
    invalid_arg "Engine.fire_choice: key is not a minimal-time event";
  let at = t.at_h.(key) and thunk = t.thunk_h.(key) in
  let n = t.size - 1 in
  if key <> n then heap_swap t key n;
  t.size <- n;
  t.thunk_h.(n) <- ignore;
  if key < n then begin
    sift_up t key;
    sift_down t key
  end;
  t.now <- at;
  t.fired <- t.fired + 1;
  thunk ()

let pending_summary t =
  let acc = ref [] in
  for i = t.size - 1 downto 0 do
    acc := (t.at_h.(i), t.seq_h.(i), t.tag_h.(i)) :: !acc
  done;
  let arr = Array.of_list !acc in
  Array.sort compare arr;
  Array.map (fun (at, _, tag) -> (at - t.now, tag)) arr
