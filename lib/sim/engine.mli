(** Discrete-event simulation kernel.

    The engine owns virtual time (an integer cycle count) and a priority queue
    of events.  Events scheduled for the same cycle fire in FIFO order of
    scheduling, which makes runs deterministic.  Controllers never busy-wait:
    all activity is message deliveries and timer callbacks scheduled here. *)

type time = int

type t

val create : unit -> t

val now : t -> time
(** Current virtual time.  [0] before any event has fired. *)

val schedule : t -> delay:int -> (unit -> unit) -> unit
(** [schedule t ~delay f] runs [f] at [now t + delay].  [delay] must be [>= 0];
    a zero delay fires later in the current cycle, after already-queued
    same-cycle events. *)

val schedule_at : t -> time -> (unit -> unit) -> unit
(** Absolute-time variant of {!schedule}.  The time must not be in the past. *)

val pending : t -> int
(** Number of events not yet fired. *)

val events_fired : t -> int
(** Total events executed since [create]. *)

val events_fired_here : unit -> int
(** Total events executed by {!run} on the calling domain, summed across all
    engines.  Monotonic; subtract two readings to attribute an event count to
    a code region.  Per-domain (not global), so parallel harness workers each
    see only their own engines — the bench harness derives events/sec from
    this around each experiment. *)

type run_result =
  | Drained  (** the event queue emptied *)
  | Hit_time_limit  (** [until] was reached with events still pending *)
  | Hit_event_limit  (** [max_events] fired with events still pending *)
  | Stopped  (** {!stop} was called from inside an event *)

val run : ?until:time -> ?max_events:int -> t -> run_result
(** Execute events in order until one of the stop conditions holds.  [until] is
    an inclusive bound on event timestamps.  Can be called repeatedly; each call
    resumes where the previous one stopped. *)

val stop : t -> unit
(** Request that {!run} return [Stopped] after the current event completes. *)

val every : t -> period:int -> ?phase:int -> (unit -> bool) -> unit
(** [every t ~period f] calls [f] at [now + phase], then every [period] cycles
    for as long as [f] returns [true].  Used for pollers and watchdogs. *)
