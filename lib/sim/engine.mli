(** Discrete-event simulation kernel.

    The engine owns virtual time (an integer cycle count) and a priority queue
    of events.  Events scheduled for the same cycle fire in FIFO order of
    scheduling, which makes runs deterministic.  Controllers never busy-wait:
    all activity is message deliveries and timer callbacks scheduled here. *)

type time = int

type t

val create : unit -> t

val now : t -> time
(** Current virtual time.  [0] before any event has fired. *)

val schedule : t -> delay:int -> ?tag:int -> (unit -> unit) -> unit
(** [schedule t ~delay f] runs [f] at [now t + delay].  [delay] must be [>= 0];
    a zero delay fires later in the current cycle, after already-queued
    same-cycle events.  [tag] (default {!no_tag}) is a choice tag for the
    model checker — see {!pack_tag}; it never affects normal execution. *)

val schedule_at : t -> time -> ?tag:int -> (unit -> unit) -> unit
(** Absolute-time variant of {!schedule}.  The time must not be in the past. *)

val pending : t -> int
(** Number of events not yet fired. *)

val next_at : t -> time option
(** Timestamp of the earliest pending event, or [None] on an empty queue.
    The sharded-engine coordinator computes conservative window bounds from
    the minimum of this across all domain engines. *)

val events_fired : t -> int
(** Total events executed since [create]. *)

val events_fired_here : unit -> int
(** Total events executed by {!run} on the calling domain, summed across all
    engines.  Monotonic; subtract two readings to attribute an event count to
    a code region.  Per-domain (not global), so parallel harness workers each
    see only their own engines — the bench harness derives events/sec from
    this around each experiment. *)

type run_result =
  | Drained  (** the event queue emptied *)
  | Hit_time_limit  (** [until] was reached with events still pending *)
  | Hit_event_limit  (** [max_events] fired with events still pending *)
  | Stopped  (** {!stop} was called from inside an event *)

val run : ?until:time -> ?max_events:int -> t -> run_result
(** Execute events in order until one of the stop conditions holds.  [until] is
    an inclusive bound on event timestamps.  Can be called repeatedly; each call
    resumes where the previous one stopped. *)

val stop : t -> unit
(** Request that {!run} return [Stopped] after the current event completes. *)

val every : t -> period:int -> ?phase:int -> (unit -> bool) -> unit
(** [every t ~period f] calls [f] at [now + phase], then every [period] cycles
    for as long as [f] returns [true].  Used for pollers and watchdogs. *)

(** {2 Scheduler-choice layer}

    Support for the explicit-state model checker ([lib/check]).  Events
    scheduled for the same cycle are the simulator's only source of
    nondeterminism once link delays are fixed; the checker enumerates them
    with {!choices} and fires a chosen one with {!fire_choice} instead of
    letting {!run} pick the FIFO head.  None of this is consulted by {!run},
    so normal executions are byte-identical to pre-checker builds. *)

val no_tag : int
(** The tag of events scheduled without one; conflicts with everything. *)

val pack_tag : ctrl:int -> addr:int -> int
(** Pack a (controller id, block address) pair into a choice tag.  Two tagged
    events commute unless they share a controller or an address
    ({!tags_conflict}); the checker's partial-order reduction only branches on
    conflicting candidate sets.  [addr = -1] means "no specific block" and
    behaves as a per-controller channel (conflicts with other no-block events
    of the same controller).  Addresses are truncated to 24 bits — callers
    must keep block addresses below [2^24 - 1] in check configurations. *)

val tag_ctrl : int -> int
val tag_addr : int -> int

val tags_conflict : int -> int -> bool
(** Whether two events may fail to commute: either is {!no_tag}, or same
    controller, or same address. *)

val choices : t -> (int * int) array
(** [(tag, key)] of every event sharing the minimal pending timestamp, in
    scheduling (FIFO) order; [[||]] when the queue is empty.  Element [0] is
    the event {!run} would fire next.  Keys index the internal heap and are
    invalidated by any schedule or fire — re-enumerate before each
    {!fire_choice}. *)

val fire_choice : t -> key:int -> unit
(** Fire the single event identified by [key] (from the current {!choices}):
    remove it from the queue, advance [now] to its timestamp and run its
    thunk.  @raise Invalid_argument on a stale or non-minimal key. *)

val pending_summary : t -> (int * int) array
(** [(at - now, tag)] of every pending event, sorted by (time, scheduling
    order) — the event queue's contribution to a canonical state
    fingerprint. *)
