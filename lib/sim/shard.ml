(* Per-logical-domain execution context for the sharded (PDES) engine.

   A parallel run partitions the system into logical domains (0 = host, one
   per guard's accelerator stack), each with its own {!Engine}.  While a
   domain's engine executes a conservative time window, the worker installs
   that domain's [ctx] here (domain-local storage), and two kinds of effects
   are captured instead of performed:

   - {b deferred observability ops} ([defer]): trace ring writes and span
     recorder mutations, stamped with the simulated timestamp.  The
     coordinator replays them at the window barrier in canonical
     (timestamp, domain, sequence) order against the single armed
     recorder/ring, so the artifacts are byte-identical no matter how many
     OS workers executed the windows.
   - {b cross-domain messages} ([post]): a closure that schedules the
     delivery on the destination domain's engine.  The coordinator runs
     these at the barrier in canonical (delivery-time, domain, sequence)
     order, so heap insertion order — and hence same-cycle tie-breaking on
     the destination engine — is identical for any worker count.

   Determinism argument: the logical decomposition and the window schedule
   depend only on (config, seed); the worker count only maps logical domains
   onto OS threads.  Within a window each engine runs single-threaded and
   touches only domain-local state, and everything that escapes a domain
   goes through the two canonically-ordered drains above. *)

type ctx = {
  dom : int;
  spans_on : bool;
  span_salt : int;
  mutable next_span : int;
  (* Deferred ops and cross-domain posts, newest first; [seq]s are
     per-context and monotonically increasing across windows, so a sort by
     (ts, dom, seq) reconstructs per-domain program order globally. *)
  mutable ops : (int * int * (unit -> unit)) list; (* ts, seq, run *)
  mutable op_seq : int;
  mutable posts : (int * int * (unit -> unit)) list; (* at, seq, schedule *)
  mutable post_seq : int;
}

(* Span ids drawn inside a domain are salted so they never collide across
   domains; 2^30 ids per domain is far beyond any run's span count. *)
let salt_stride = 1 lsl 30

let make ~dom ~spans_on =
  {
    dom;
    spans_on;
    span_salt = dom * salt_stride;
    next_span = 0;
    ops = [];
    op_seq = 0;
    posts = [];
    post_seq = 0;
  }

let dom c = c.dom

let key : ctx option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let current () = Domain.DLS.get key

let spans_ctx () =
  match Domain.DLS.get key with
  | Some c when c.spans_on -> Some c
  | _ -> None

let spans_on () =
  match Domain.DLS.get key with Some c -> c.spans_on | None -> false

let with_ctx c f =
  let prev = Domain.DLS.get key in
  Domain.DLS.set key (Some c);
  Fun.protect ~finally:(fun () -> Domain.DLS.set key prev) f

let defer c ~ts run =
  c.ops <- (ts, c.op_seq, run) :: c.ops;
  c.op_seq <- c.op_seq + 1

let post c ~at sched =
  c.posts <- (at, c.post_seq, sched) :: c.posts;
  c.post_seq <- c.post_seq + 1

let fresh_span_id c =
  c.next_span <- c.next_span + 1;
  c.span_salt + c.next_span

(* ---- coordinator-side drains ---- *)

type op = { op_ts : int; op_dom : int; op_seq : int; op_run : unit -> unit }

let drain field clear ctxs =
  let acc = ref [] in
  Array.iter
    (fun c ->
      List.iter
        (fun (ts, seq, run) ->
          acc := { op_ts = ts; op_dom = c.dom; op_seq = seq; op_run = run } :: !acc)
        (field c);
      clear c)
    ctxs;
  let arr = Array.of_list !acc in
  Array.sort
    (fun a b ->
      let c = compare a.op_ts b.op_ts in
      if c <> 0 then c
      else
        let c = compare a.op_dom b.op_dom in
        if c <> 0 then c else compare a.op_seq b.op_seq)
    arr;
  arr

let drain_ops ctxs = drain (fun c -> c.ops) (fun c -> c.ops <- []) ctxs
let drain_posts ctxs = drain (fun c -> c.posts) (fun c -> c.posts <- []) ctxs

let run_all arr = Array.iter (fun o -> o.op_run ()) arr
