(** Per-logical-domain execution context for the sharded (PDES) engine.

    A parallel simulation run partitions the system into logical domains,
    each executing its own {!Engine} over conservative time windows.  While
    a window runs, the executing worker installs the domain's [ctx] in
    domain-local storage; observability effects (trace/span mutations) and
    cross-domain message deliveries are captured here instead of performed,
    and the coordinator replays them at the window barrier in canonical
    (timestamp, domain, sequence) order.  That replay order depends only on
    simulated time and the fixed domain decomposition — never on the worker
    count — which is what makes [--sim-j k] output byte-identical for any
    [k]. *)

type ctx

val make : dom:int -> spans_on:bool -> ctx
(** A context for logical domain [dom].  [spans_on] records whether a span
    recorder is armed on the coordinator, so domain code knows to defer span
    work rather than drop it. *)

val dom : ctx -> int

val current : unit -> ctx option
(** The context installed on the calling OS thread, if any. *)

val spans_ctx : unit -> ctx option
(** [current ()] when it exists {e and} has [spans_on]; the single check
    span entry points use to decide between deferring and recording. *)

val spans_on : unit -> bool

val with_ctx : ctx -> (unit -> 'a) -> 'a
(** Run [f] with [ctx] installed; restores the previous context after.  The
    coordinator replays drained ops with {e no} context installed, so the
    deferred closures reach the real recorder on re-entry. *)

val defer : ctx -> ts:int -> (unit -> unit) -> unit
(** Capture an observability op performed at simulated time [ts]. *)

val post : ctx -> at:int -> (unit -> unit) -> unit
(** Capture a cross-domain delivery: [sched] schedules the delivery (at
    simulated time [at]) on the destination engine when the coordinator runs
    it at the barrier. *)

val fresh_span_id : ctx -> int
(** Deterministic domain-salted span ids (no two domains collide). *)

(** {2 Coordinator-side drains} *)

type op = { op_ts : int; op_dom : int; op_seq : int; op_run : unit -> unit }

val drain_ops : ctx array -> op array
(** All deferred ops across contexts, sorted by (ts, dom, seq); clears the
    per-context logs. *)

val drain_posts : ctx array -> op array
(** All cross-domain posts, sorted by (delivery time, dom, seq); clears. *)

val run_all : op array -> unit
