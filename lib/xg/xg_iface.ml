type accel_request = Get_s | Get_m | Put_s | Put_e of Data.t | Put_m of Data.t

type xg_response = Data_s of Data.t | Data_e of Data.t | Data_m of Data.t | Wb_ack

type xg_request = Invalidate

type accel_response = Clean_wb of Data.t | Dirty_wb of Data.t | Inv_ack

type msg =
  | To_xg_req of { addr : Addr.t; req : accel_request }
  | To_xg_resp of { addr : Addr.t; resp : accel_response }
  | To_accel_resp of { addr : Addr.t; resp : xg_response }
  | To_accel_req of { addr : Addr.t; req : xg_request }

let request_carries_data = function
  | Put_e _ | Put_m _ -> true
  | Get_s | Get_m | Put_s -> false

let response_carries_data = function
  | Clean_wb _ | Dirty_wb _ -> true
  | Inv_ack -> false

let is_put = function Put_s | Put_e _ | Put_m _ -> true | Get_s | Get_m -> false

let exclusive_grant = function
  | Data_e _ | Data_m _ -> true
  | Data_s _ | Wb_ack -> false

let msg_size = function
  | To_xg_req { req; _ } ->
      if request_carries_data req then Xguard_network.Network.data_size
      else Xguard_network.Network.control_size
  | To_xg_resp { resp; _ } ->
      if response_carries_data resp then Xguard_network.Network.data_size
      else Xguard_network.Network.control_size
  | To_accel_resp { resp; _ } -> (
      match resp with
      | Data_s _ | Data_e _ | Data_m _ -> Xguard_network.Network.data_size
      | Wb_ack -> Xguard_network.Network.control_size)
  | To_accel_req { req = Invalidate; _ } -> Xguard_network.Network.control_size

let pp_accel_request fmt = function
  | Get_s -> Format.pp_print_string fmt "GetS"
  | Get_m -> Format.pp_print_string fmt "GetM"
  | Put_s -> Format.pp_print_string fmt "PutS"
  | Put_e d -> Format.fprintf fmt "PutE(%a)" Data.pp d
  | Put_m d -> Format.fprintf fmt "PutM(%a)" Data.pp d

let pp_xg_response fmt = function
  | Data_s d -> Format.fprintf fmt "DataS(%a)" Data.pp d
  | Data_e d -> Format.fprintf fmt "DataE(%a)" Data.pp d
  | Data_m d -> Format.fprintf fmt "DataM(%a)" Data.pp d
  | Wb_ack -> Format.pp_print_string fmt "WbAck"

let pp_accel_response fmt = function
  | Clean_wb d -> Format.fprintf fmt "CleanWB(%a)" Data.pp d
  | Dirty_wb d -> Format.fprintf fmt "DirtyWB(%a)" Data.pp d
  | Inv_ack -> Format.pp_print_string fmt "InvAck"

let msg_addr = function
  | To_xg_req { addr; _ }
  | To_xg_resp { addr; _ }
  | To_accel_resp { addr; _ }
  | To_accel_req { addr; _ } ->
      addr

let pp_msg fmt = function
  | To_xg_req { addr; req } -> Format.fprintf fmt "%a %a" pp_accel_request req Addr.pp addr
  | To_xg_resp { addr; resp } ->
      Format.fprintf fmt "%a %a" pp_accel_response resp Addr.pp addr
  | To_accel_resp { addr; resp } ->
      Format.fprintf fmt "%a %a" pp_xg_response resp Addr.pp addr
  | To_accel_req { addr; req = Invalidate } -> Format.fprintf fmt "Invalidate %a" Addr.pp addr

module Link = Xguard_network.Network.Make (struct
  type t = msg
end)
