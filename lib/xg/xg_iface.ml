type accel_request = Get_s | Get_m | Put_s | Put_e of Data.t | Put_m of Data.t

type xg_response = Data_s of Data.t | Data_e of Data.t | Data_m of Data.t | Wb_ack

type xg_request = Invalidate

type accel_response = Clean_wb of Data.t | Dirty_wb of Data.t | Inv_ack

type msg =
  | To_xg_req of { addr : Addr.t; req : accel_request }
  | To_xg_resp of { addr : Addr.t; resp : accel_response }
  | To_accel_resp of { addr : Addr.t; resp : xg_response }
  | To_accel_req of { addr : Addr.t; req : xg_request }

let request_carries_data = function
  | Put_e _ | Put_m _ -> true
  | Get_s | Get_m | Put_s -> false

let response_carries_data = function
  | Clean_wb _ | Dirty_wb _ -> true
  | Inv_ack -> false

let is_put = function Put_s | Put_e _ | Put_m _ -> true | Get_s | Get_m -> false

let exclusive_grant = function
  | Data_e _ | Data_m _ -> true
  | Data_s _ | Wb_ack -> false

let msg_size = function
  | To_xg_req { req; _ } ->
      if request_carries_data req then Xguard_network.Network.data_size
      else Xguard_network.Network.control_size
  | To_xg_resp { resp; _ } ->
      if response_carries_data resp then Xguard_network.Network.data_size
      else Xguard_network.Network.control_size
  | To_accel_resp { resp; _ } -> (
      match resp with
      | Data_s _ | Data_e _ | Data_m _ -> Xguard_network.Network.data_size
      | Wb_ack -> Xguard_network.Network.control_size)
  | To_accel_req { req = Invalidate; _ } -> Xguard_network.Network.control_size

let pp_accel_request fmt = function
  | Get_s -> Format.pp_print_string fmt "GetS"
  | Get_m -> Format.pp_print_string fmt "GetM"
  | Put_s -> Format.pp_print_string fmt "PutS"
  | Put_e d -> Format.fprintf fmt "PutE(%a)" Data.pp d
  | Put_m d -> Format.fprintf fmt "PutM(%a)" Data.pp d

let pp_xg_response fmt = function
  | Data_s d -> Format.fprintf fmt "DataS(%a)" Data.pp d
  | Data_e d -> Format.fprintf fmt "DataE(%a)" Data.pp d
  | Data_m d -> Format.fprintf fmt "DataM(%a)" Data.pp d
  | Wb_ack -> Format.pp_print_string fmt "WbAck"

let pp_accel_response fmt = function
  | Clean_wb d -> Format.fprintf fmt "CleanWB(%a)" Data.pp d
  | Dirty_wb d -> Format.fprintf fmt "DirtyWB(%a)" Data.pp d
  | Inv_ack -> Format.pp_print_string fmt "InvAck"

let msg_addr = function
  | To_xg_req { addr; _ }
  | To_xg_resp { addr; _ }
  | To_accel_resp { addr; _ }
  | To_accel_req { addr; _ } ->
      addr

let pp_msg fmt = function
  | To_xg_req { addr; req } -> Format.fprintf fmt "%a %a" pp_accel_request req Addr.pp addr
  | To_xg_resp { addr; resp } ->
      Format.fprintf fmt "%a %a" pp_accel_response resp Addr.pp addr
  | To_accel_resp { addr; resp } ->
      Format.fprintf fmt "%a %a" pp_xg_response resp Addr.pp addr
  | To_accel_req { addr; req = Invalidate } -> Format.fprintf fmt "Invalidate %a" Addr.pp addr

(* A plausible single-event corruption of a link message: flip the message
   into a near-miss of itself (wrong request/response flavor, damaged data
   token).  Installed as the network's corruptor so injected [Corrupt] faults
   produce messages the guard must actually mis-handle — unless the
   reliability layer's checksum catches them first. *)
let corrupt_data d = Data.token (1000 + (Hashtbl.hash d mod 997))

let corrupt_msg = function
  | To_xg_req { addr; req } ->
      let req =
        match req with
        | Get_s -> Get_m
        | Get_m -> Get_s
        | Put_s -> Put_e Data.zero
        | Put_e d -> Put_m (corrupt_data d)
        | Put_m d -> Put_e (corrupt_data d)
      in
      To_xg_req { addr; req }
  | To_xg_resp { addr; resp } ->
      let resp =
        match resp with
        | Clean_wb d -> Dirty_wb (corrupt_data d)
        | Dirty_wb d -> Clean_wb (corrupt_data d)
        | Inv_ack -> Clean_wb Data.zero
      in
      To_xg_resp { addr; resp }
  | To_accel_resp { addr; resp } ->
      let resp =
        match resp with
        | Data_s d -> Data_m (corrupt_data d)
        | Data_e d -> Data_s (corrupt_data d)
        | Data_m d -> Data_e (corrupt_data d)
        | Wb_ack -> Data_s Data.zero
      in
      To_accel_resp { addr; resp }
  | To_accel_req { addr; req = Invalidate } ->
      (* An invalidation damaged into an unsolicited grant-looking response. *)
      To_accel_resp { addr; resp = Wb_ack }

(* Span-layer transaction type of an accelerator request. *)
let span_txn_of_request : accel_request -> Xguard_obs.Spans.txn = function
  | Get_s -> Xguard_obs.Spans.Get_s
  | Get_m -> Xguard_obs.Spans.Get_m
  | Put_s -> Xguard_obs.Spans.Put_s
  | Put_e _ -> Xguard_obs.Spans.Put_e
  | Put_m _ -> Xguard_obs.Spans.Put_m

module Link = struct
  module Engine = Xguard_sim.Engine
  module Trace = Xguard_trace.Trace
  module Counter = Xguard_stats.Counter
  module Coverage = Xguard_trace.Coverage
  module Network = Xguard_network.Network
  module Spans = Xguard_obs.Spans
  module Metrics = Xguard_obs.Metrics

  (* What actually travels on the wire.  Without reliability every payload is
     [Plain] — byte-for-byte the historical link.  With reliability payloads
     ride in [Frame]s carrying a per-directed-channel sequence number and a
     payload checksum; [Ack]/[Nack] are the receiver's cumulative
     acknowledgement and go-back-N retransmission request. *)
  type wire =
    | Plain of msg
    | Frame of { seq : int; check : int; payload : msg }
    | Ack of { next : int }
    | Nack of { expect : int }
    | Reset of { gen : int }
    | Reset_ack of { gen : int }

  module Raw = Network.Make (struct
    type t = wire
  end)

  let frame_header = 8
  let checksum (m : msg) = Hashtbl.hash m

  (* Per-directed-(src,dst) reliability state.  The tx fields belong to the
     channel's source, the rx fields to its destination; both live in one
     record because the link object sees both ends. *)
  type channel = {
    c_src : Node.t;
    c_dst : Node.t;
    (* tx *)
    mutable next_seq : int;
    outstanding : (int * msg * int) Queue.t;  (** (seq, payload, size) unacked *)
    mutable retries : int;  (** consecutive watchdog retransmission rounds *)
    mutable backoff : int;  (** current retransmission timeout *)
    mutable last_attempt : Engine.time;
    mutable last_retx : Engine.time;
    mutable reported : bool;  (** a fault round was escalated and not yet recovered *)
    mutable watchdog_on : bool;
    mutable dead : bool;
    (* rx *)
    mutable rx_next : int;  (** next sequence number expected *)
  }

  type t = {
    raw : Raw.t;
    engine : Engine.t;
    lname : string;
    mutable reliable : bool;
    mutable retry_timeout : int;
    mutable max_retries : int;
    channels : (int * int, channel) Hashtbl.t;
    mutable killed : bool;
    (* True only for the guard link (accel <-> XG); the span layer attributes
       link transit segments on crossing links alone, so purely accel-internal
       links never touch the recorder. *)
    mutable crossing : bool;
    (* Per-guard series label for the metrics layer ("xg" legacy, "xg.a0" in
       a topology).  Empty (the default) keeps the metrics hooks silent, so
       only guard links that [System.build] labels under an armed metrics
       recorder ever pay for them. *)
    mutable mlabel : string;
    mutable monitor : (src:Node.t -> dst:Node.t -> msg -> unit) option;
    mutable ptracer : (msg -> int * string) option;
    mutable on_fault : unit -> unit;
    mutable on_recover : unit -> unit;
    (* Reset handshake (recovery lifecycle).  [reset_gen] numbers handshakes
       on the initiator side; [reset_seen] is the highest generation the
       responder has processed (so duplicated/retransmitted Resets re-ack
       without re-flushing); [pending_reset] holds the completion callback
       until the matching Reset_ack arrives. *)
    mutable reset_gen : int;
    mutable reset_seen : int;
    mutable pending_reset : (int * (unit -> unit)) option;
    mutable on_reset : unit -> unit;
    (* Sharded-engine partition: per-node clock for the span hooks, installed
       by {!set_partition}.  [t.engine] stays the host-side clock. *)
    mutable part_now : Node.t -> Engine.time;
    stats : Counter.Group.t;
    cov : Counter.Group.t;
    covm : Coverage.matrix;
    (* interned hot stat counters (PR 4) *)
    s_frames_sent : Counter.Group.id;
    s_delivered : Counter.Group.id;
    s_acks_absorbed : Counter.Group.id;
    s_dups_suppressed : Counter.Group.id;
  }

  let coverage_space =
    Coverage.space ~name:"xg.link"
      ~states:[ "Idle"; "Await"; "Retry"; "Failing"; "Dead" ]
      ~events:
        [
          "Send"; "SendDead"; "Deliver"; "Dup"; "Gap"; "Corrupt"; "Ack"; "AckStale";
          "Nack"; "Retry"; "Fault"; "Recover"; "Kill";
        ]
      ()

  (* Event indices into [coverage_space]'s events list. *)
  let lv_send = 0
  let lv_send_dead = 1
  let lv_deliver = 2
  let lv_dup = 3
  let lv_gap = 4
  let lv_corrupt = 5
  let lv_ack = 6
  let lv_ack_stale = 7
  let lv_nack = 8
  let lv_retry = 9
  let lv_fault = 10
  let lv_recover = 11

  let create ~engine ~rng ~name ~ordering () =
    let stats = Counter.Group.create (name ^ ".link") in
    let cov = Counter.Group.create (name ^ ".link.cov") in
    let t =
      {
        raw = Raw.create ~engine ~rng ~name ~ordering ();
        engine;
        lname = name;
        reliable = false;
        retry_timeout = 32;
        max_retries = 6;
        channels = Hashtbl.create 8;
        killed = false;
        crossing = false;
        mlabel = "";
        monitor = None;
        ptracer = None;
        on_fault = (fun () -> ());
        on_recover = (fun () -> ());
        reset_gen = 0;
        reset_seen = 0;
        pending_reset = None;
        on_reset = (fun () -> ());
        part_now = (fun _ -> Engine.now engine);
        stats;
        cov;
        covm = Coverage.intern_matrix coverage_space cov;
        s_frames_sent = Counter.Group.intern stats "frames_sent";
        s_delivered = Counter.Group.intern stats "delivered";
        s_acks_absorbed = Counter.Group.intern stats "acks_absorbed";
        s_dups_suppressed = Counter.Group.intern stats "dups_suppressed";
      }
    in
    Raw.set_corruptor t.raw (function
      | Plain m -> Plain (corrupt_msg m)
      (* The checksum is computed before corruption and kept, which is the
         point: the damaged payload no longer matches it. *)
      | Frame { seq; check; payload } -> Frame { seq; check; payload = corrupt_msg payload }
      | (Ack _ | Nack _ | Reset _ | Reset_ack _) as w -> w);
    t

  let name t = t.lname
  let mark_crossing t = t.crossing <- true
  let set_metrics_label t label = t.mlabel <- label

  (* Span hooks.  Fired once per logical payload: [span_send] from {!send}
     (retransmits re-enter via [send_frame] only) and [span_deliver] from the
     wrapped {!register} handler (which the reliability layer invokes only on
     the first in-order delivery, so duplicates never double-close). *)
  let span_send msg ~now =
    match msg with
    | To_xg_req { addr; req } ->
        Spans.xreq_open (span_txn_of_request req) ~addr:(Addr.to_int addr) ~now
    | To_accel_resp { addr; _ } -> Spans.resp_sent ~addr:(Addr.to_int addr) ~now
    | To_accel_req { addr; req = Invalidate } -> Spans.inv_open ~addr:(Addr.to_int addr) ~now
    | To_xg_resp _ -> ()

  let span_deliver msg ~now =
    match msg with
    | To_xg_req { addr; _ } -> Spans.xreq_delivered ~addr:(Addr.to_int addr) ~now
    | To_xg_resp { addr; _ } -> Spans.inv_closed ~addr:(Addr.to_int addr) ~now
    | To_accel_resp { addr; _ } -> Spans.resp_delivered ~addr:(Addr.to_int addr) ~now
    | To_accel_req _ -> ()

  (* Metrics hooks, parallel to the span hooks: per-guard end-to-end request
     latency (accel request sent -> guard response delivered) and invalidate
     roundtrips, attributed to [t.mlabel] so every tenant in a topology gets
     its own SLO-judgeable series. *)
  let metrics_send t msg ~now =
    match msg with
    | To_xg_req { addr; _ } ->
        Metrics.e2e_open ~guard:t.mlabel ~addr:(Addr.to_int addr) ~now
    | To_accel_req { addr; req = Invalidate } ->
        Metrics.inv_open ~guard:t.mlabel ~addr:(Addr.to_int addr) ~now
    | To_accel_resp _ | To_xg_resp _ -> ()

  let metrics_deliver t msg ~now =
    match msg with
    | To_accel_resp { addr; _ } ->
        Metrics.e2e_close ~guard:t.mlabel ~addr:(Addr.to_int addr) ~now
    | To_xg_resp { addr; _ } ->
        Metrics.inv_close ~guard:t.mlabel ~addr:(Addr.to_int addr) ~now
    | To_xg_req _ | To_accel_req _ -> ()

  let span_retry payload ~now =
    match payload with
    | To_xg_req { addr; _ } | To_accel_resp { addr; _ } -> (
        let addr = Addr.to_int addr in
        match Spans.lookup ~addr with
        | Some (span, txn) -> Spans.record Spans.Link_retry txn ~span ~addr ~ts:now ~dur:0
        | None -> ())
    | To_accel_req { addr; _ } | To_xg_resp { addr; _ } ->
        Spans.record Spans.Link_retry Spans.Inv ~span:0 ~addr:(Addr.to_int addr) ~ts:now
          ~dur:0

  let channel t ~src ~dst =
    let key = (Node.id src, Node.id dst) in
    match Hashtbl.find_opt t.channels key with
    | Some ch -> ch
    | None ->
        let ch =
          {
            c_src = src;
            c_dst = dst;
            next_seq = 0;
            outstanding = Queue.create ();
            retries = 0;
            backoff = t.retry_timeout;
            last_attempt = 0;
            last_retx = -1;
            reported = false;
            watchdog_on = false;
            dead = false;
            rx_next = 0;
          }
        in
        Hashtbl.add t.channels key ch;
        ch

  (* tx-side condition of a directed channel, indexing [coverage_space]'s
     states list, for dense-id coverage keys (PR 4). *)
  let ch_state_idx t ch =
    if t.killed || ch.dead then 4 (* Dead *)
    else if ch.reported then 3 (* Failing *)
    else if ch.retries > 0 then 2 (* Retry *)
    else if not (Queue.is_empty ch.outstanding) then 1 (* Await *)
    else 0 (* Idle *)

  let visit t ch event = Coverage.hit t.covm ~state:(ch_state_idx t ch) ~event

  let note t text =
    if Trace.on () then
      Trace.note ~cycle:(Engine.now t.engine) ~controller:(t.lname ^ ".link") ~text ()


  (* ---- tx ---- *)

  let send_frame t ch (seq, payload, size) =
    Raw.send t.raw ~src:ch.c_src ~dst:ch.c_dst ~size:(size + frame_header)
      (Frame { seq; check = checksum payload; payload })

  let retransmit t ch ~why =
    if not (Queue.is_empty ch.outstanding) then begin
      let now = Engine.now t.engine in
      if now > ch.last_retx then begin
        ch.last_retx <- now;
        ch.last_attempt <- now;
        visit t ch lv_retry;
        Counter.Group.incr t.stats "retransmit_rounds";
        Counter.Group.add t.stats "retransmit_frames" (Queue.length ch.outstanding);
        note t
          (Printf.sprintf "retransmit (%s) %d frame(s) from #%d" why
             (Queue.length ch.outstanding)
             (match Queue.peek_opt ch.outstanding with Some (s, _, _) -> s | None -> 0));
        if t.crossing && Spans.on () then
          Queue.iter (fun (_, payload, _) -> span_retry payload ~now) ch.outstanding;
        Queue.iter (fun f -> send_frame t ch f) ch.outstanding
      end
    end

  let watchdog_tick t ch () =
    if t.killed || ch.dead || Queue.is_empty ch.outstanding then begin
      ch.watchdog_on <- false;
      false
    end
    else begin
      let now = Engine.now t.engine in
      if now - ch.last_attempt >= ch.backoff then begin
        ch.retries <- ch.retries + 1;
        if ch.retries > t.max_retries then begin
          (* A full backoff ladder burned with no acknowledgement progress:
             escalate.  Every further silent round escalates again, so the
             guard can count consecutive unrecoverable faults. *)
          visit t ch lv_fault;
          Counter.Group.incr t.stats "faults_escalated";
          ch.reported <- true;
          note t (Printf.sprintf "link fault: %d silent rounds" ch.retries);
          t.on_fault ()
        end;
        if not (t.killed || ch.dead) then begin
          retransmit t ch ~why:"timeout";
          ch.backoff <- min (ch.backoff * 2) (t.retry_timeout * 16)
        end
      end;
      if t.killed || ch.dead || Queue.is_empty ch.outstanding then begin
        ch.watchdog_on <- false;
        false
      end
      else true
    end

  let arm_watchdog t ch =
    if not ch.watchdog_on then begin
      ch.watchdog_on <- true;
      Engine.every t.engine ~period:t.retry_timeout (watchdog_tick t ch)
    end

  (* Pop outstanding frames the receiver has cumulatively acknowledged below
     [next]; returns how many were retired. *)
  let absorb_ack t ch ~next =
    let retired = ref 0 in
    let continue = ref true in
    while !continue do
      match Queue.peek_opt ch.outstanding with
      | Some (seq, _, _) when seq < next ->
          ignore (Queue.pop ch.outstanding);
          incr retired
      | _ -> continue := false
    done;
    if !retired > 0 then begin
      ch.retries <- 0;
      ch.backoff <- t.retry_timeout;
      ch.last_attempt <- Engine.now t.engine;
      if ch.reported then begin
        ch.reported <- false;
        visit t ch lv_recover;
        Counter.Group.incr t.stats "recoveries";
        note t "link recovered";
        t.on_recover ()
      end
    end;
    !retired

  (* ---- rx ---- *)

  let handle_frame t ~self ~src handler ~seq ~check ~payload =
    let ch = channel t ~src ~dst:self in
    if t.killed || ch.dead then ()
    else if check <> checksum payload then begin
      visit t ch lv_corrupt;
      Counter.Group.incr t.stats "corrupt_detected";
      note t (Printf.sprintf "checksum mismatch on #%d" seq);
      Raw.send t.raw ~src:self ~dst:src (Nack { expect = ch.rx_next })
    end
    else if seq = ch.rx_next then begin
      ch.rx_next <- ch.rx_next + 1;
      visit t ch lv_deliver;
      Counter.Group.incr_id t.stats t.s_delivered;
      Raw.send t.raw ~src:self ~dst:src (Ack { next = ch.rx_next });
      handler ~src payload
    end
    else if seq < ch.rx_next then begin
      (* Already delivered once: suppress, but re-ack so a lost Ack does not
         leave the sender retransmitting forever. *)
      visit t ch lv_dup;
      Counter.Group.incr_id t.stats t.s_dups_suppressed;
      note t (Printf.sprintf "duplicate #%d suppressed (expect #%d)" seq ch.rx_next);
      Raw.send t.raw ~src:self ~dst:src (Ack { next = ch.rx_next })
    end
    else begin
      (* Gap: go-back-N keeps no out-of-order buffer; ask for a resend. *)
      visit t ch lv_gap;
      Counter.Group.incr t.stats "gaps_detected";
      note t (Printf.sprintf "gap: got #%d, expected #%d" seq ch.rx_next);
      Raw.send t.raw ~src:self ~dst:src (Nack { expect = ch.rx_next })
    end

  let handle_control t ~self ~src wire =
    (* Acks and Nacks received at [self] concern the channel self->src. *)
    let ch = channel t ~src:self ~dst:src in
    if t.killed || ch.dead then ()
    else
      match wire with
      | Ack { next } ->
          if absorb_ack t ch ~next > 0 then begin
            visit t ch lv_ack;
            Counter.Group.incr_id t.stats t.s_acks_absorbed
          end
          else visit t ch lv_ack_stale
      | Nack { expect } ->
          ignore (absorb_ack t ch ~next:expect);
          visit t ch lv_nack;
          Counter.Group.incr t.stats "nacks_received";
          retransmit t ch ~why:"nack"
      | Plain _ | Frame _ | Reset _ | Reset_ack _ -> assert false

  (* ---- reset handshake ---- *)

  (* Responder side.  The first Reset of a generation flushes the
     accelerator-side model (the [on_reset] hook) and acks; retransmitted or
     duplicated Resets only re-ack, so a lost Reset_ack cannot flush twice. *)
  let handle_reset t ~self ~src ~gen =
    if not t.killed then begin
      if gen > t.reset_seen then begin
        t.reset_seen <- gen;
        Counter.Group.incr t.stats "resets_received";
        note t (Printf.sprintf "reset #%d received: flushing accelerator state" gen);
        t.on_reset ()
      end;
      Raw.send t.raw ~src:self ~dst:src (Reset_ack { gen })
    end

  (* Initiator side: only the generation we are currently waiting on
     completes the handshake; stale acks (an earlier handshake's stragglers)
     are dropped. *)
  let handle_reset_ack t ~gen =
    match t.pending_reset with
    | Some (g, ready) when g = gen ->
        t.pending_reset <- None;
        Counter.Group.incr t.stats "resets_completed";
        note t (Printf.sprintf "reset #%d complete" gen);
        ready ()
    | _ -> ()

  let rewind_channels t =
    let now = Engine.now t.engine in
    Hashtbl.iter
      (fun _ ch ->
        ch.next_seq <- 0;
        Queue.clear ch.outstanding;
        ch.retries <- 0;
        ch.backoff <- t.retry_timeout;
        ch.last_attempt <- now;
        ch.last_retx <- -1;
        ch.reported <- false;
        ch.dead <- false;
        ch.rx_next <- 0)
      t.channels

  let reset t ~src ~dst ?(timeout = 64) ?(attempts = 4) ~on_ready ~on_dead () =
    (* Splice the physical wire (reverses a kill / scripted cut), revive the
       channels and rewind every sequence number on both sides — the link
       object is shared by both endpoints, so one rewind covers tx and rx
       state.  Probabilistic fault injectors stay installed: the handshake
       itself rides the lossy wire, hence the retry ladder. *)
    Raw.splice_wire t.raw;
    t.killed <- false;
    rewind_channels t;
    let gen = t.reset_gen + 1 in
    t.reset_gen <- gen;
    t.pending_reset <- Some (gen, on_ready);
    Counter.Group.incr t.stats "resets_initiated";
    note t (Printf.sprintf "reset #%d initiated" gen);
    let timeout = max 1 timeout and attempts = max 1 attempts in
    let tries = ref 1 in
    Raw.send t.raw ~src ~dst (Reset { gen });
    Engine.every t.engine ~period:timeout (fun () ->
        match t.pending_reset with
        | Some (g, _) when g = gen ->
            if !tries >= attempts then begin
              t.pending_reset <- None;
              Counter.Group.incr t.stats "resets_failed";
              note t (Printf.sprintf "reset #%d failed after %d attempt(s)" gen !tries);
              on_dead ();
              false
            end
            else begin
              incr tries;
              Counter.Group.incr t.stats "reset_retries";
              note t (Printf.sprintf "reset #%d retry %d" gen !tries);
              Raw.send t.raw ~src ~dst (Reset { gen });
              true
            end
        | _ -> false)

  let set_reset_handler t f = t.on_reset <- f

  let channel_state t ~src ~dst =
    let ch = channel t ~src ~dst in
    (ch.next_seq, ch.rx_next, Queue.length ch.outstanding)

  let register t node handler =
    let handler ~src msg =
      if t.crossing && Spans.on () then span_deliver msg ~now:(t.part_now node);
      if t.mlabel <> "" && Metrics.on () then metrics_deliver t msg ~now:(t.part_now node);
      handler ~src msg
    in
    Raw.register t.raw node (fun ~src wire ->
        match wire with
        | Plain m -> handler ~src m
        | Frame { seq; check; payload } ->
            handle_frame t ~self:node ~src handler ~seq ~check ~payload
        | Reset { gen } -> handle_reset t ~self:node ~src ~gen
        | Reset_ack { gen } -> handle_reset_ack t ~gen
        | Ack _ | Nack _ -> handle_control t ~self:node ~src wire)

  let send t ~src ~dst ?(size = Network.control_size) msg =
    (match t.monitor with Some f -> f ~src ~dst msg | None -> ());
    if t.crossing && Spans.on () then span_send msg ~now:(t.part_now src);
    if t.mlabel <> "" && Metrics.on () then metrics_send t msg ~now:(t.part_now src);
    if not t.reliable then Raw.send t.raw ~src ~dst ~size (Plain msg)
    else begin
      let ch = channel t ~src ~dst in
      if t.killed || ch.dead then begin
        visit t ch lv_send_dead;
        Counter.Group.incr t.stats "sends_on_dead_link"
      end
      else begin
        let seq = ch.next_seq in
        ch.next_seq <- seq + 1;
        if Queue.is_empty ch.outstanding then ch.last_attempt <- Engine.now t.engine;
        Queue.add (seq, msg, size) ch.outstanding;
        visit t ch lv_send;
        Counter.Group.incr_id t.stats t.s_frames_sent;
        send_frame t ch (seq, msg, size);
        arm_watchdog t ch
      end
    end

  (* ---- reliability control ---- *)

  let enable_reliability t ?(retry_timeout = 32) ?(max_retries = 6) () =
    t.reliable <- true;
    t.retry_timeout <- max 1 retry_timeout;
    t.max_retries <- max 0 max_retries

  let reliable t = t.reliable

  let set_fault_handler t ~on_fault ~on_recover =
    t.on_fault <- on_fault;
    t.on_recover <- on_recover

  let kill t =
    if not t.killed then begin
      t.killed <- true;
      Counter.Group.incr t.stats "killed";
      Hashtbl.iter
        (fun _ ch ->
          ch.dead <- true;
          Queue.clear ch.outstanding)
        t.channels;
      Counter.Group.incr t.cov "Dead.Kill";
      note t "link killed";
      Raw.cut_wire t.raw
    end

  let killed t = t.killed

  (* ---- sharded-engine partition ---- *)

  let set_partition t ~dom_of ~engines =
    if t.reliable then
      invalid_arg
        (Printf.sprintf
           "Link.set_partition(%s): reliability timers are engine-local" t.lname);
    Raw.set_partition t.raw ~dom_of ~engines;
    t.part_now <-
      (fun node -> Engine.now engines.(dom_of.(Node.id node)))

  (* ---- passthrough ---- *)

  let messages_sent t = Raw.messages_sent t.raw
  let bytes_sent t = Raw.bytes_sent t.raw
  let bytes_from t node = Raw.bytes_from t.raw node

  let in_flight t =
    Hashtbl.fold (fun _ ch acc -> acc + Queue.length ch.outstanding) t.channels 0
  let set_monitor t f = t.monitor <- Some f

  let set_tracer t describe =
    t.ptracer <- Some describe;
    Raw.set_tracer t.raw (function
        | Plain m -> describe m
        | Frame { seq; payload; _ } ->
            let addr, text = describe payload in
            (addr, Printf.sprintf "#%d %s" seq text)
        | Ack { next } -> (Trace.no_addr, Printf.sprintf "LinkAck(%d)" next)
        | Nack { expect } -> (Trace.no_addr, Printf.sprintf "LinkNack(%d)" expect)
        | Reset { gen } -> (Trace.no_addr, Printf.sprintf "LinkReset(%d)" gen)
        | Reset_ack { gen } -> (Trace.no_addr, Printf.sprintf "LinkResetAck(%d)" gen))

  let enable_check_mode t ?ctrl_of () =
    Raw.enable_check_mode t.raw ?ctrl_of
      ~addr_of:(function
        | Plain m | Frame { payload = m; _ } -> Addr.to_int (msg_addr m)
        | Ack _ | Nack _ | Reset _ | Reset_ack _ -> -1)
      ()

  let check_fingerprint t buf = Raw.check_fingerprint t.raw buf
  let set_delay_chooser t f = Raw.set_delay_chooser t.raw f

  let set_faults t ~rng config = Raw.set_faults t.raw ~rng config
  let add_fault_script t s = Raw.add_fault_script t.raw s
  let cut_wire t = Raw.cut_wire t.raw
  let faults_active t = Raw.faults_active t.raw
  let fault_counts t = Raw.fault_counts t.raw
  let link_stats t = t.stats
  let coverage t = t.cov
end
