(** The Crossing Guard engine (paper §2–§3).

    One instance sits between one accelerator (over the ordered XG link) and
    one host protocol (through a protocol-specific {!host_port}, implemented
    by [Xguard_host_hammer.Xg_port] and [Xguard_host_mesi.Xg_port]).  The
    engine enforces the guarantees of Figure 1 on the accelerator's behalf —
    the host side is trusted and never checked:

    - G0a/G0b: page permissions, via {!Perm_table};
    - G1a: requests consistent with the block's stable state at the
      accelerator (checked only in [Full_state] mode; [Transactional] relies
      on the host tolerating any transient-consistent request, which is what
      the [Xg_ready] host variants provide);
    - G1b: at most one open accelerator request per block;
    - G2a: response types consistent with block state ([Full_state] corrects
      a wrong response, e.g. substitutes a zeroed dirty writeback when an
      owner answers InvAck);
    - G2b: no unsolicited responses;
    - G2c: a response deadline — on timeout the engine answers the host on
      the accelerator's behalf and reports the error.

    Violations are reported to the {!Os_model}; its policy may disable the
    accelerator, after which the engine drops accelerator traffic but keeps
    answering the host, preserving host liveness.

    Mode differences (paper §2.3): [Full_state] tracks the stable state of
    every block resident at the accelerator (an inclusive trusted directory)
    and works with unmodified hosts — including hosts without a non-upgradable
    GetS, for which it keeps a trusted copy of read-only-page blocks granted
    exclusively.  [Transactional] tracks only open transactions and requires
    the host's [Get_s_only] request plus the [Xg_ready] relaxations. *)

type mode = Full_state | Transactional

(** What the host-side port asks the engine when the host protocol needs the
    block back from the accelerator. *)
type host_need =
  | Fwd_s  (** another cache wants a shared copy; owners must supply data *)
  | Fwd_m  (** another cache wants exclusive ownership; all copies must go *)
  | Recall  (** the host wants the block returned (e.g. inclusive-L2 victim) *)

(** The engine's reply to a {!host_need}; the port translates it into host
    protocol messages. *)
type host_reply =
  | Reply_ack of { shared : bool }
      (** the accelerator holds no owned copy; [shared] reports whether it
          (possibly) retains a shared one *)
  | Reply_clean of Data.t
  | Reply_dirty of Data.t

(** Operations the engine needs from the host-side port. *)
type host_port = {
  get : Addr.t -> [ `S | `S_only | `M ] -> unit;
  put : Addr.t -> [ `S | `E of Data.t | `M of Data.t ] -> unit;
  puts_needed : bool;
      (** [false]: the host silently evicts shared blocks, so the engine
          suppresses accelerator PutS messages (paper §2.1) *)
  has_get_s_only : bool;
      (** whether the host implements the non-upgradable read; required by
          [Transactional] mode when read-only pages are in play *)
}

(** Recovery lifecycle policy (PR 8).  Installed via [create ?recovery], it
    turns the terminal quarantine into quarantine → link reset → probation →
    healthy: after [reset_delay] cycles the guard runs the
    {!Xg_iface.Link.reset} handshake ([reset_timeout] per attempt,
    [reset_attempts] attempts, a failed handshake burns a life), re-admits
    the accelerator on probation (requests throttled by a
    [probation_rate]/[probation_burst] token bucket, escalation threshold
    tightened to [probation_quarantine_after]), and promotes it after a
    fault-free [probation_window].  After [permakill_after] quarantines the
    guard kills the link permanently. *)
type recovery = {
  reset_delay : int;
  reset_timeout : int;
  reset_attempts : int;
  probation_window : int;
  probation_rate : float;
  probation_burst : int;
  probation_quarantine_after : int;
  permakill_after : int;
}

val make_recovery :
  ?reset_delay:int ->
  ?reset_timeout:int ->
  ?reset_attempts:int ->
  ?probation_window:int ->
  ?probation_rate:float ->
  ?probation_burst:int ->
  ?probation_quarantine_after:int ->
  ?permakill_after:int ->
  unit ->
  recovery
(** Defaults: reset after 200 cycles, 64-cycle handshake timeout × 4
    attempts, 2000-cycle probation window, 0.05 requests/cycle with burst 4
    on probation, quarantine after 2 faults on probation, permanent kill
    after 4 quarantines. *)

(** Per-phase hang budgets (PR 8): cycle ceilings for the req→decide (link
    delivery to guard decision, i.e. rate-limiter wait), inv→ack
    (invalidate sent to accelerator ack) and fetch→data (host fetch issue to
    grant) phases.  A tripped budget reports {!Os_model.Budget_exceeded} and
    feeds the same escalation ladder as a link fault — strictly before the
    coarse G2c timeout.  All-[None] (the {!no_budgets} default) schedules
    nothing: byte-identical to pre-budget runs. *)
type budgets = { req_decide : int option; inv_ack : int option; fetch_data : int option }

val no_budgets : budgets

type t

val create :
  engine:Xguard_sim.Engine.t ->
  name:string ->
  mode:mode ->
  link:Xg_iface.Link.t ->
  self:Node.t ->
  accel:Node.t ->
  host:host_port ->
  perms:Perm_table.t ->
  os:Os_model.t ->
  ?timeout:int ->
  ?processing_latency:int ->
  ?rate_limiter:Rate_limiter.t ->
  ?suppress_put_s_register:bool ->
  ?quarantine_after:int ->
  ?recovery:recovery ->
  ?budgets:budgets ->
  unit ->
  t
(** Registers [self] on [link].  [timeout] is the G2c deadline in cycles for
    accelerator responses.  [processing_latency] models the guard's pipeline
    (state lookup + translation) and is charged once per accelerator-link
    message processed (default 4 cycles).  [suppress_put_s_register] models the optimization
    register of §2.1: when set and the host does not need PutS, unnecessary
    PutS messages are consumed at the Crossing Guard.  [quarantine_after]
    (default 3) is how many consecutive unrecoverable link faults the engine
    tolerates before quarantining the accelerator. *)

val mode : t -> mode
(** Which §2.3 tracking discipline this instance runs. *)

(* ---- called by the host-side port ---- *)

val granted : t -> Addr.t -> [ `S of Data.t | `E of Data.t | `M of Data.t ] -> unit
(** The host satisfied the engine's outstanding get for this block. *)

val put_complete : t -> Addr.t -> unit
(** The host acknowledged the engine's writeback. *)

val host_request : t -> Addr.t -> need:host_need -> reply:(host_reply -> unit) -> unit
(** The host needs the block back; [reply] fires exactly once — immediately
    when the engine can answer from its own state, after an accelerator
    round-trip otherwise, and on behalf of the accelerator after a timeout or
    a corrected bad response. *)

val accel_may_be_sharer : t -> Addr.t -> bool
(** Conservative sharing test used by ports for protocol-specific fast paths. *)

(* ---- lossy-link degradation ---- *)

val link_fault : t -> unit
(** The reliability layer lost a full retransmission round on the
    accelerator link.  Reports {!Os_model.Link_fault}; after
    [quarantine_after] consecutive faults without {!link_recovered}, the
    engine calls {!quarantine}.  Wired to [Link.set_fault_handler]. *)

val link_recovered : t -> unit
(** Acknowledgement progress resumed after one or more faults: the
    consecutive-fault counter resets. *)

val quarantine : t -> unit
(** Give up on the accelerator (idempotent): answer every outstanding host
    invalidation from trusted state (the G2c substitution), hand tracked
    blocks back to the host (zeroed writebacks for untrusted dirty data),
    revoke the accelerator's pages in the permission table, mark the OS
    model quarantined and fire the [on_quarantine] hook (the harness kills
    the link there).  The host side stays fully live; all later accelerator
    traffic is dropped and all later host needs are answered locally. *)

val quarantined : t -> bool

val set_on_quarantine : t -> (unit -> unit) -> unit
(** Ran once per quarantine, after the drain and revocation (the harness
    kills the link there); with a recovery policy the reset handshake is
    scheduled after it runs. *)

(* ---- recovery lifecycle (PR 8) ---- *)

val in_probation : t -> bool
val permakilled : t -> bool

val quarantine_count : t -> int
(** Quarantines entered so far, including failed reset handshakes (each
    burns a life toward [permakill_after]). *)

val rejoins : t -> int
(** Completed reset handshakes: times the accelerator came back. *)

val budget_trips : t -> int
(** Per-phase hang-budget violations (sum over all three phases). *)

val down_cycles : t -> now:int -> int
(** Total cycles spent quarantined, counting a still-open quarantine up to
    [now] — the numerator of the E10 availability/MTTR metrics. *)

(* ---- introspection ---- *)

val accel_state : t -> Addr.t -> [ `I | `S | `E | `M | `Unknown ]
(** [Full_state] tracking; [`Unknown] in transactional mode for untracked
    blocks. *)

val open_transactions : t -> int
(** Accelerator transactions currently awaiting a host grant or writeback
    completion — the only state [Transactional] mode keeps. *)

val tracked_blocks : t -> int
(** Blocks in the full-state table (0 in transactional mode). *)

val peak_storage_bits : t -> int
(** High-water mark of {!storage_bits} over the run. *)

val storage_bits : t -> int
(** Current storage footprint of the tracking structures, in bits — the
    quantity Experiment E5 compares between the two modes (tags + state for
    Full_state, open-transaction entries for both, stored read-only data
    blocks if any). *)

val stats : t -> Xguard_stats.Counter.Group.t
(** Operational counters (grants, writebacks, suppressed PutS, timeouts,
    corrected responses, …) — the raw material of Experiments E2/E4/A2. *)

val coverage : t -> Xguard_stats.Counter.Group.t
(** Per-engine (state × event) visit counters, keyed ["STATE.Event"], scored
    against {!coverage_space}. *)

val coverage_space : Xguard_trace.Coverage.space
(** The guard's transition vocabulary.  States: the trusted stable states
    ([I]/[S]/[S_RO]/[E]/[M], full-state mode), permission classes
    ([T_NA]/[T_RO]/[T_RW], transactional mode) and the busy states
    ([B_get]/[B_put]/[B_inv]) while a transaction is open.  Events:
    accelerator requests and responses, host needs, host completions and the
    G2c timeout.  A single space spans both modes; merge coverage groups from
    runs of each mode to fill it.  The quarantined terminal adds state [Q]
    (only host-side events and the [Quarantine] drain are possible there). *)

val fault_coverage : t -> Xguard_stats.Counter.Group.t
(** Degradation-machine visits, scored against {!fault_coverage_space}. *)

val fault_coverage_space : Xguard_trace.Coverage.space
(** Space ["xg.fault"]: armed / degraded / quarantined / probation /
    permakilled × link-fault, recovery, quarantine, reset, rejoin,
    promotion, permanent-kill and budget-trip events. *)

(* ---- model-checker support (lib/check) ---- *)

val set_check_ctrl : t -> int -> unit
(** Controller id used to tag the engine's scheduled events for partial-order
    reduction.  The harness sets it to the host-side port's network node id so
    the guard, its port and link deliveries to the guard form one conflict
    cluster (they synchronously mutate each other's state). *)

val check_pending_slots : t -> int
(** Number of per-block pending records currently allocated, including inert
    ones — unit tests assert fully-drained slots are pruned so fingerprints
    stay path-independent. *)

val check_tracked : t -> (Addr.t * [ `S | `E | `M ] * Data.t option) list
(** Full-state tracking table, sorted by block (empty in transactional
    mode): trusted stable state and the guard's trusted copy, if any. *)

val check_violation : t -> string option
(** G1b structural check: [Some msg] if any block has both a get and a put
    transaction open at once. *)

val check_fingerprint : t -> Buffer.t -> unit
(** Append the tracking table, every pending slot (open get/put, outstanding
    invalidation, absorb count, stalled requests) and the degradation state to
    a canonical fingerprint (stats, coverage, trace and span state excluded). *)
