(** The Crossing Guard coherence interface (paper, section 2.1).

    This is the standardized message vocabulary between an accelerator cache
    hierarchy and the Crossing Guard hardware.  The accelerator can make five
    requests and receive one of four responses; the host (through Crossing
    Guard) can make one request and receive one of three responses.  Every
    request always results in exactly one response.

    Design-space notes carried over from the paper:
    - [Get_s] asks for a shared, read-only copy; [Get_m] for an exclusive,
      writable one.  Either may be answered with an exclusive grant ([Data_e] /
      [Data_m]) as an optimization; [Get_m] is never answered with [Data_s].
    - [Put_m] and [Put_e] carry data to avoid a multi-phase commit; every Put
      is answered with [Wb_ack].
    - On [Invalidate], an accelerator holding the block in M must answer
      [Dirty_wb], in E [Clean_wb], otherwise [Inv_ack].
    - The link carrying these messages must be ordered (see {!Link}); the only
      remaining race is an accelerator Put crossing a host Invalidate. *)

type accel_request =
  | Get_s  (** request a shared, read-only copy *)
  | Get_m  (** request an exclusive, writable copy *)
  | Put_s  (** evict a shared copy (no data) *)
  | Put_e of Data.t  (** evict a clean exclusive copy, data attached *)
  | Put_m of Data.t  (** evict a dirty copy, data attached *)

type xg_response =
  | Data_s of Data.t  (** shared + clean *)
  | Data_e of Data.t  (** exclusive + clean *)
  | Data_m of Data.t  (** exclusive + modified *)
  | Wb_ack  (** acknowledges any Put *)

type xg_request = Invalidate  (** the host needs the block back *)

type accel_response =
  | Clean_wb of Data.t  (** block was held in E *)
  | Dirty_wb of Data.t  (** block was held in M *)
  | Inv_ack  (** block not held in an owned state *)

(** Everything that can travel on the XG-accelerator link, in either
    direction.  Both directions share one message type so a single ordered
    network instance carries the link, and so the fuzzer can inject any
    syntactically valid message. *)
type msg =
  | To_xg_req of { addr : Addr.t; req : accel_request }
  | To_xg_resp of { addr : Addr.t; resp : accel_response }
  | To_accel_resp of { addr : Addr.t; resp : xg_response }
  | To_accel_req of { addr : Addr.t; req : xg_request }

val request_carries_data : accel_request -> bool
(** True for [Put_e] and [Put_m] — the single-phase writebacks of §2.1 that
    attach data to the eviction request itself. *)

val response_carries_data : accel_response -> bool
(** True for [Clean_wb] and [Dirty_wb]; an [Inv_ack] is control-only. *)

val is_put : accel_request -> bool
(** True for every eviction request ([Put_s]/[Put_e]/[Put_m]); these are the
    messages a [puts_needed = false] host lets the guard suppress. *)

val exclusive_grant : xg_response -> bool
(** True for [Data_e] and [Data_m]. *)

val msg_size : msg -> int
(** Bytes on the wire: {!Xguard_network.Network.data_size} when data is
    attached, [control_size] otherwise. *)

val msg_addr : msg -> Addr.t
(** The block address a message concerns (every link message names one). *)

(** Printers in the paper's message names ([GetS], [DataE], [DirtyWB], …);
    used by the trace layer and the fuzzer's failure reports. *)

val pp_accel_request : Format.formatter -> accel_request -> unit
val pp_xg_response : Format.formatter -> xg_response -> unit
val pp_accel_response : Format.formatter -> accel_response -> unit
val pp_msg : Format.formatter -> msg -> unit

val corrupt_msg : msg -> msg
(** What one injected bit-flip does to a message: the nearest plausible
    wrong message (request/response flavor flipped, data token damaged).
    Installed as the link's payload corruptor; exposed for tests. *)

val span_txn_of_request : accel_request -> Xguard_obs.Spans.txn
(** The span-layer transaction type of an accelerator request ([Get_s] ->
    [Spans.Get_s], …); shared by the link hooks and {!Xg_core}. *)

(** The ordered link between one Crossing Guard instance and its accelerator:
    a network specialised to {!msg}.  The paper requires this network to be
    ordered; ablation A1 measures what breaks when it is not.

    Beyond the plain network the link optionally runs a reliability layer
    ({!Link.enable_reliability}): every payload then travels in a frame with a
    per-directed-channel sequence number and checksum; the receiver delivers
    in order exactly once, suppresses duplicates, and Nacks gaps and
    corruption; the sender retransmits go-back-N style with capped exponential
    backoff, and escalates through [on_fault] after [max_retries] silent
    rounds so the guard can quarantine a dead link.  With reliability off the
    wire format and behavior are byte-for-byte the historical link. *)
module Link : sig
  type t

  val create :
    engine:Xguard_sim.Engine.t ->
    rng:Xguard_sim.Rng.t ->
    name:string ->
    ordering:Xguard_network.Network.ordering ->
    unit ->
    t

  val name : t -> string

  val mark_crossing : t -> unit
  (** Declare this link a host-accelerator crossing (the guard link).  Only
      crossing links feed the span layer: sends open/stamp crossing entries
      and deliveries close the transit segments ([link.req], [link.resp],
      [inv.roundtrip]) — all behind [Spans.on], so unarmed runs are
      untouched.  Accel-internal links are never marked. *)

  val set_metrics_label : t -> string -> unit
  (** Attribute this guard link's metrics series ("xg" legacy, "xg.a0" in a
      topology).  Set by [System.build] only when a metrics recorder is
      armed; the empty default keeps the metrics hooks silent. *)

  val register : t -> Node.t -> (src:Node.t -> msg -> unit) -> unit
  (** Attach a handler for payload messages addressed to this node; the
      reliability layer's frames and acks are consumed internally.
      @raise Invalid_argument on double registration. *)

  val send : t -> src:Node.t -> dst:Node.t -> ?size:int -> msg -> unit
  (** Deliver [msg] to [dst]'s handler after the link latency.  In reliable
      mode the payload is framed (+8 bytes of header) and retransmitted until
      acknowledged; on a dead or killed channel the send is counted and
      dropped. *)

  val messages_sent : t -> int
  (** Wire messages, including frames, retransmissions, acks and nacks. *)

  val bytes_sent : t -> int
  val bytes_from : t -> Node.t -> int

  val set_monitor : t -> (src:Node.t -> dst:Node.t -> msg -> unit) -> unit
  (** Observe every payload once at send time (never retransmissions). *)

  val set_partition :
    t -> dom_of:int array -> engines:Xguard_sim.Engine.t array -> unit
  (** Split the link across domain engines for the parallel simulator (see
      {!Xguard_network.Network.Make.set_partition}): the underlying wire is
      partitioned, and the span hooks switch to per-endpoint clocks — sends
      stamp with the source node's engine, deliveries with the destination's.
      @raise Invalid_argument in reliable mode (retransmission timers are
      engine-local) or when the wire refuses (unordered / faults / check
      mode). *)

  val set_tracer : t -> (msg -> int * string) -> unit
  (** Payload description for the trace buffer; frames render as
      ["#seq <payload>"], acks and nacks as [LinkAck]/[LinkNack]. *)

  (* ---- reliability ---- *)

  val enable_reliability : t -> ?retry_timeout:int -> ?max_retries:int -> unit -> unit
  (** Switch the link to framed, exactly-once delivery.  [retry_timeout]
      (default 32 cycles) is the initial retransmission timeout, doubled per
      silent round up to 16×; after [max_retries] (default 6) silent rounds
      every further round calls [on_fault]. *)

  val reliable : t -> bool

  val set_fault_handler : t -> on_fault:(unit -> unit) -> on_recover:(unit -> unit) -> unit
  (** [on_fault] fires once per unrecoverable retransmission round;
      [on_recover] when acknowledgement progress resumes afterwards. *)

  val kill : t -> unit
  (** The recovery endpoint: marks every channel dead, clears retransmission
      queues (so the simulation drains) and cuts the underlying wire.
      Idempotent. *)

  val killed : t -> bool

  (* ---- reset handshake (recovery lifecycle) ---- *)

  val reset :
    t ->
    src:Node.t ->
    dst:Node.t ->
    ?timeout:int ->
    ?attempts:int ->
    on_ready:(unit -> unit) ->
    on_dead:(unit -> unit) ->
    unit ->
    unit
  (** Start the link-reset handshake that undoes {!kill}: splice the wire,
      revive every channel with all go-back-N state rewound (sequence numbers
      to 0, retransmission queues cleared, backoff reset), then send a
      [Reset] frame from [src] to [dst] and wait for the matching
      [Reset_ack].  The responder flushes the accelerator-side model via
      {!set_reset_handler} on the first [Reset] of a generation and re-acks
      duplicates, so the handshake survives the same lossy wire it repairs;
      the initiator retries every [timeout] cycles (default 64) up to
      [attempts] times (default 4), then gives up and calls [on_dead].
      [on_ready] fires when the ack lands.  Generation numbers keep stale
      acks from completing a newer handshake. *)

  val set_reset_handler : t -> (unit -> unit) -> unit
  (** Hook fired at the responder on the first [Reset] of each generation —
      the harness wires the accelerator-side cache flush here. *)

  val channel_state : t -> src:Node.t -> dst:Node.t -> int * int * int
  (** [(next_seq, rx_next, outstanding)] of the directed channel [src]→[dst]
      — test observability for the sequence-number rewind. *)

  (* ---- fault injection (see {!Xguard_network.Network.Fault}) ---- *)

  val set_faults : t -> rng:Xguard_sim.Rng.t -> Xguard_network.Network.Fault.config -> unit
  val add_fault_script : t -> Xguard_network.Network.Fault.script -> unit

  val cut_wire : t -> unit
  (** Lossy-link injection: every message in both directions is silently
      dropped from now on.  Unlike {!kill}, the protocol machinery keeps
      trying — this is the directed "link went dark" fault. *)

  val faults_active : t -> bool
  val fault_counts : t -> Xguard_network.Network.Fault.counts

  (* ---- introspection ---- *)

  val in_flight : t -> int
  (** Frames sent but not yet cumulatively acknowledged, summed over all
      directed channels — the link's in-flight window.  Always [0] with
      reliability off (plain messages are not tracked).  Sampled as a
      span-layer gauge. *)

  val enable_check_mode : t -> ?ctrl_of:(int -> int) -> unit -> unit
  (** Arm the underlying network for the model checker: delivery events get
      (destination, block-address) choice tags and in-flight payloads are
      tracked for {!check_fingerprint}.  [ctrl_of] maps a destination node id
      to its POR controller id (see {!Xguard_network.Network.S.enable_check_mode}).
      Requires a tracer ({!set_tracer}) for payload renderings in the
      fingerprint. *)

  val check_fingerprint : t -> Buffer.t -> unit
  (** Append the link's in-flight message multiset and future FIFO release
      times to a canonical state fingerprint. *)

  val set_delay_chooser : t -> (lo:int -> hi:int -> int) -> unit
  (** Route the underlying network's [Unordered] latency draw through the
      checker's choice enumerator (no effect on ordered links). *)

  val link_stats : t -> Xguard_stats.Counter.Group.t
  (** Reliability-layer counters: frames sent/delivered, retransmission
      rounds, duplicates suppressed, corruption and gaps detected, faults
      escalated, recoveries. *)

  val coverage : t -> Xguard_stats.Counter.Group.t
  (** (channel condition × link event) visit counters scored against
      {!coverage_space}. *)

  val coverage_space : Xguard_trace.Coverage.space
  (** Space ["xg.link"]: states [Idle]/[Await]/[Retry]/[Failing]/[Dead] ×
      events [Send]/[Deliver]/[Dup]/[Gap]/[Corrupt]/[Ack]/[Nack]/[Retry]/
      [Fault]/[Recover]/[Kill]/…. *)
end
