(** The Crossing Guard coherence interface (paper, section 2.1).

    This is the standardized message vocabulary between an accelerator cache
    hierarchy and the Crossing Guard hardware.  The accelerator can make five
    requests and receive one of four responses; the host (through Crossing
    Guard) can make one request and receive one of three responses.  Every
    request always results in exactly one response.

    Design-space notes carried over from the paper:
    - [Get_s] asks for a shared, read-only copy; [Get_m] for an exclusive,
      writable one.  Either may be answered with an exclusive grant ([Data_e] /
      [Data_m]) as an optimization; [Get_m] is never answered with [Data_s].
    - [Put_m] and [Put_e] carry data to avoid a multi-phase commit; every Put
      is answered with [Wb_ack].
    - On [Invalidate], an accelerator holding the block in M must answer
      [Dirty_wb], in E [Clean_wb], otherwise [Inv_ack].
    - The link carrying these messages must be ordered (see {!Link}); the only
      remaining race is an accelerator Put crossing a host Invalidate. *)

type accel_request =
  | Get_s  (** request a shared, read-only copy *)
  | Get_m  (** request an exclusive, writable copy *)
  | Put_s  (** evict a shared copy (no data) *)
  | Put_e of Data.t  (** evict a clean exclusive copy, data attached *)
  | Put_m of Data.t  (** evict a dirty copy, data attached *)

type xg_response =
  | Data_s of Data.t  (** shared + clean *)
  | Data_e of Data.t  (** exclusive + clean *)
  | Data_m of Data.t  (** exclusive + modified *)
  | Wb_ack  (** acknowledges any Put *)

type xg_request = Invalidate  (** the host needs the block back *)

type accel_response =
  | Clean_wb of Data.t  (** block was held in E *)
  | Dirty_wb of Data.t  (** block was held in M *)
  | Inv_ack  (** block not held in an owned state *)

(** Everything that can travel on the XG-accelerator link, in either
    direction.  Both directions share one message type so a single ordered
    network instance carries the link, and so the fuzzer can inject any
    syntactically valid message. *)
type msg =
  | To_xg_req of { addr : Addr.t; req : accel_request }
  | To_xg_resp of { addr : Addr.t; resp : accel_response }
  | To_accel_resp of { addr : Addr.t; resp : xg_response }
  | To_accel_req of { addr : Addr.t; req : xg_request }

val request_carries_data : accel_request -> bool
(** True for [Put_e] and [Put_m] — the single-phase writebacks of §2.1 that
    attach data to the eviction request itself. *)

val response_carries_data : accel_response -> bool
(** True for [Clean_wb] and [Dirty_wb]; an [Inv_ack] is control-only. *)

val is_put : accel_request -> bool
(** True for every eviction request ([Put_s]/[Put_e]/[Put_m]); these are the
    messages a [puts_needed = false] host lets the guard suppress. *)

val exclusive_grant : xg_response -> bool
(** True for [Data_e] and [Data_m]. *)

val msg_size : msg -> int
(** Bytes on the wire: {!Xguard_network.Network.data_size} when data is
    attached, [control_size] otherwise. *)

val msg_addr : msg -> Addr.t
(** The block address a message concerns (every link message names one). *)

(** Printers in the paper's message names ([GetS], [DataE], [DirtyWB], …);
    used by the trace layer and the fuzzer's failure reports. *)

val pp_accel_request : Format.formatter -> accel_request -> unit
val pp_xg_response : Format.formatter -> xg_response -> unit
val pp_accel_response : Format.formatter -> accel_response -> unit
val pp_msg : Format.formatter -> msg -> unit

(** The ordered link between one Crossing Guard instance and its accelerator:
    a network specialised to {!msg}.  The paper requires this network to be
    ordered; ablation A1 measures what breaks when it is not. *)
module Link : sig
  include module type of Xguard_network.Network.Make (struct
    type t = msg
  end)
end
