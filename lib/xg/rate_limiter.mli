(** Token-bucket rate limiter for accelerator requests (paper §2.5).

    Protects the host from denial-of-service by a flood of legitimate
    messages: requests above the configured rate are delayed (responses are
    never limited).  The rate is set by OS-controlled registers; the
    experiment E7 sweeps it. *)

type t

val create :
  engine:Xguard_sim.Engine.t ->
  tokens_per_cycle:float ->
  burst:int ->
  unit ->
  t
(** [tokens_per_cycle] is the sustained request rate; [burst] the bucket
    capacity.
    @raise Invalid_argument if the rate or the burst is not positive — a
    zero-capacity bucket could never accumulate a whole token, so every
    request would be requeued forever. *)

val unlimited : engine:Xguard_sim.Engine.t -> unit -> t

val admit : t -> (unit -> unit) -> unit
(** Run the action when a token is available: immediately if the bucket is
    non-empty, otherwise after the earliest cycle with a token, preserving
    FIFO order among delayed actions. *)

val delayed : t -> int
(** Number of requests that were delayed so far. *)
