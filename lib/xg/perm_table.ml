type t = { mutable default : Perm.t; pages : (int, Perm.t) Hashtbl.t }

let create ?(default = Perm.Read_write) () = { default; pages = Hashtbl.create 64 }

let set_page t ~page perm = Hashtbl.replace t.pages page perm
let set_block t addr perm = set_page t ~page:(Addr.page_of addr) perm

let perm t addr =
  match Hashtbl.find_opt t.pages (Addr.page_of addr) with
  | Some p -> p
  | None -> t.default

let entries t = Hashtbl.length t.pages

let allows_read t addr = Perm.allows_read (perm t addr)
let allows_write t addr = Perm.allows_write (perm t addr)

let revoke_all t =
  Hashtbl.reset t.pages;
  t.default <- Perm.No_access

type snapshot = { s_default : Perm.t; s_pages : (int * Perm.t) list }

let snapshot t =
  { s_default = t.default; s_pages = Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.pages [] }

let restore t { s_default; s_pages } =
  Hashtbl.reset t.pages;
  t.default <- s_default;
  List.iter (fun (page, p) -> Hashtbl.replace t.pages page p) s_pages

let check_fingerprint t buf =
  let pc = function Perm.No_access -> 'n' | Perm.Read_only -> 'r' | Perm.Read_write -> 'w' in
  Buffer.add_string buf "perm[";
  Buffer.add_char buf (pc t.default);
  Hashtbl.fold (fun page p acc -> (page, p) :: acc) t.pages []
  |> List.sort compare
  |> List.iter (fun (page, p) ->
         (* explicit entries equal to the default are architectural no-ops *)
         if p <> t.default then Buffer.add_string buf (Printf.sprintf ";%d:%c" page (pc p)));
  Buffer.add_char buf ']'
