type t = { mutable default : Perm.t; pages : (int, Perm.t) Hashtbl.t }

let create ?(default = Perm.Read_write) () = { default; pages = Hashtbl.create 64 }

let set_page t ~page perm = Hashtbl.replace t.pages page perm
let set_block t addr perm = set_page t ~page:(Addr.page_of addr) perm

let perm t addr =
  match Hashtbl.find_opt t.pages (Addr.page_of addr) with
  | Some p -> p
  | None -> t.default

let entries t = Hashtbl.length t.pages

let allows_read t addr = Perm.allows_read (perm t addr)
let allows_write t addr = Perm.allows_write (perm t addr)

let revoke_all t =
  Hashtbl.reset t.pages;
  t.default <- Perm.No_access
