(** Page permission table (Border-Control-style, paper §3.1 / Guarantee 0).

    Crossing Guard consults this trusted, host-side table on every new
    transaction and stores the permission with the transaction state.  Pages
    default to [Read_write] so tests and examples opt in to restrictions. *)

type t

val create : ?default:Perm.t -> unit -> t
(** [default] (default [Perm.Read_write]) is the permission of every page
    without an explicit entry. *)

val set_page : t -> page:int -> Perm.t -> unit
(** Grants or restricts one page.  In the paper this is the OS updating the
    trusted table at map/unmap time; the guard itself never writes it. *)

val set_block : t -> Addr.t -> Perm.t -> unit
(** Sets the whole page containing the block. *)

val perm : t -> Addr.t -> Perm.t
(** The permission the guard stores with a new transaction (Guarantee 0:
    checked once per transaction, not per message). *)

val entries : t -> int
(** Pages with an explicit entry — the table's occupancy, sampled as a
    span-layer gauge. *)

val allows_read : t -> Addr.t -> bool
(** [No_access] pages fail this check: a GetS to one is a G0a violation. *)

val allows_write : t -> Addr.t -> bool
(** Only [Read_write] pages pass: a GetM to a read-only page is the G0b
    violation the guard answers without ever granting M. *)

val revoke_all : t -> unit
(** Drops every page grant and makes [No_access] the default — the OS pulling
    all of a quarantined accelerator's mappings at once.  Later [set_page]
    calls can re-grant. *)

type snapshot

val snapshot : t -> snapshot
(** The current default and every explicit page entry, captured before
    {!revoke_all} so a recovering accelerator's mappings can be re-granted. *)

val restore : t -> snapshot -> unit
(** Replaces the table's contents with [snapshot] — the OS re-mapping the
    device's pages when the guard re-admits it. *)

val check_fingerprint : t -> Buffer.t -> unit
(** Append the default permission and every explicit page entry that differs
    from it (sorted) to a canonical model-checker fingerprint. *)
