module Engine = Xguard_sim.Engine

type t = {
  engine : Engine.t;
  tokens_per_cycle : float;
  burst : float;
  mutable tokens : float;
  mutable last_refill : Engine.time;
  mutable delayed : int;
  queue : (unit -> unit) Queue.t;
  mutable draining : bool;
}

let create ~engine ~tokens_per_cycle ~burst () =
  if tokens_per_cycle <= 0.0 then invalid_arg "Rate_limiter.create: rate must be positive";
  (* A zero-capacity bucket can never hold a whole token: [refill] caps at
     [burst], so every admit would requeue forever — reject it up front. *)
  if burst <= 0 then invalid_arg "Rate_limiter.create: burst must be positive";
  {
    engine;
    tokens_per_cycle;
    burst = float_of_int burst;
    tokens = float_of_int burst;
    last_refill = 0;
    delayed = 0;
    queue = Queue.create ();
    draining = false;
  }

let unlimited ~engine () =
  create ~engine ~tokens_per_cycle:1_000_000.0 ~burst:1_000_000 ()

let refill t =
  let now = Engine.now t.engine in
  let elapsed = now - t.last_refill in
  if elapsed > 0 then begin
    t.tokens <- Float.min t.burst (t.tokens +. (float_of_int elapsed *. t.tokens_per_cycle));
    t.last_refill <- now
  end

let delayed t = t.delayed

let cycles_until_token t =
  if t.tokens >= 1.0 then 0
  else int_of_float (ceil ((1.0 -. t.tokens) /. t.tokens_per_cycle))

let rec drain t =
  refill t;
  if Queue.is_empty t.queue then t.draining <- false
  else if t.tokens >= 1.0 then begin
    t.tokens <- t.tokens -. 1.0;
    let action = Queue.pop t.queue in
    action ();
    drain t
  end
  else Engine.schedule t.engine ~delay:(max 1 (cycles_until_token t)) (fun () -> drain t)

let admit t action =
  refill t;
  if (not t.draining) && Queue.is_empty t.queue && t.tokens >= 1.0 then begin
    t.tokens <- t.tokens -. 1.0;
    action ()
  end
  else begin
    t.delayed <- t.delayed + 1;
    Queue.push action t.queue;
    if not t.draining then begin
      t.draining <- true;
      Engine.schedule t.engine ~delay:(max 1 (cycles_until_token t)) (fun () -> drain t)
    end
  end
