module Engine = Xguard_sim.Engine
module Group = Xguard_stats.Counter.Group
module Trace = Xguard_trace.Trace
module Coverage = Xguard_trace.Coverage
module Spans = Xguard_obs.Spans

type mode = Full_state | Transactional

type host_need = Fwd_s | Fwd_m | Recall

type host_reply =
  | Reply_ack of { shared : bool }
  | Reply_clean of Data.t
  | Reply_dirty of Data.t

type host_port = {
  get : Addr.t -> [ `S | `S_only | `M ] -> unit;
  put : Addr.t -> [ `S | `E of Data.t | `M of Data.t ] -> unit;
  puts_needed : bool;
  has_get_s_only : bool;
}

(* Full-state tracking: the stable state of the block at the accelerator.
   A block absent from the table is I.  [xg_copy] is the trusted data copy
   kept when the host granted exclusivity on a read-only page (paper
   §2.3.1). *)
type track = { mutable st : [ `S | `E | `M ]; mutable xg_copy : Data.t option }

type inv_pend = {
  need : host_need;
  reply : host_reply -> unit;
  expect_owner : bool;
  mutable replied : bool;
}

type get_pend = { want : [ `S | `M ]; ro : bool }

type per_addr = {
  mutable p_get : get_pend option;
  mutable p_put : [ `S | `E | `M ] option;
  mutable p_inv : inv_pend option;
  mutable absorb : int;  (* late accelerator responses to swallow silently *)
  stalled_gets : Xg_iface.accel_request Queue.t;
  (* Park timestamps mirroring [stalled_gets], maintained only while the span
     layer records (pushed/popped strictly in step with it). *)
  stall_stamps : int Queue.t;
}

(* Interned handles for the per-event stat counters (PR 4): one dense-id
   lookup per bump instead of a string-Hashtbl probe. *)
type stat_ids = {
  s_accel_request : Group.id;
  s_accel_response : Group.id;
  s_grant_to_accel : Group.id;
  s_put_complete : Group.id;
  s_snoop_fast_path : Group.id;
  s_side_channel_filtered : Group.id;
  s_get_s_forwarded : Group.id;
  s_get_m_forwarded : Group.id;
  s_put_s_forwarded : Group.id;
  s_put_e_forwarded : Group.id;
  s_put_m_forwarded : Group.id;
  s_put_s_suppressed : Group.id;
  s_put_s_unnecessary : Group.id;
  s_invalidate_to_accel : Group.id;
  s_request_blocked : Group.id;
  s_get_stalled_behind_put : Group.id;
}

(* Recovery lifecycle policy (PR 8).  [None] keeps the PR 3 behaviour:
   quarantine is terminal.  With a policy installed the guard walks
   quarantine -> link reset -> probation -> healthy, or gives up with a
   permanent kill after [permakill_after] quarantines. *)
type recovery = {
  reset_delay : int;  (** cycles after quarantine before the reset handshake starts *)
  reset_timeout : int;  (** per-attempt handshake timeout (Link.reset) *)
  reset_attempts : int;
  probation_window : int;  (** clean cycles on probation before promotion *)
  probation_rate : float;  (** probation token-bucket refill (requests/cycle) *)
  probation_burst : int;
  probation_quarantine_after : int;  (** stricter escalation threshold on probation *)
  permakill_after : int;  (** quarantines (incl. failed resets) before permanent kill *)
}

let make_recovery ?(reset_delay = 200) ?(reset_timeout = 64) ?(reset_attempts = 4)
    ?(probation_window = 2000) ?(probation_rate = 0.05) ?(probation_burst = 4)
    ?(probation_quarantine_after = 2) ?(permakill_after = 4) () =
  {
    reset_delay = max 1 reset_delay;
    reset_timeout = max 1 reset_timeout;
    reset_attempts = max 1 reset_attempts;
    probation_window = max 1 probation_window;
    probation_rate;
    probation_burst;
    probation_quarantine_after = max 1 probation_quarantine_after;
    permakill_after = max 1 permakill_after;
  }

(* Per-phase hang budgets (PR 8): cycle ceilings on the three attributable
   phases of a crossing.  A phase exceeding its budget trips a violation stat
   and feeds the quarantine escalation ladder — strictly before the coarse
   G2c timeout would fire for a wedged invalidation.  All [None] (the
   default) schedules no checks at all: byte-identical to pre-budget runs. *)
type budgets = { req_decide : int option; inv_ack : int option; fetch_data : int option }

let no_budgets = { req_decide = None; inv_ack = None; fetch_data = None }

type budget_phase = Req_decide | Inv_ack | Fetch_data

let budget_phase_name = function
  | Req_decide -> "req_decide"
  | Inv_ack -> "inv_ack"
  | Fetch_data -> "fetch_data"

type t = {
  engine : Engine.t;
  name : string;
  mode : mode;
  link : Xg_iface.Link.t;
  self : Node.t;
  accel : Node.t;
  host : host_port;
  perms : Perm_table.t;
  os : Os_model.t;
  timeout : int;
  rate_limiter : Rate_limiter.t option;
  suppress_put_s : bool;
  tracks : (Addr.t, track) Hashtbl.t;
  pending : (Addr.t, per_addr) Hashtbl.t;
  stats : Group.t;
  sid : stat_ids;
  coverage : Group.t;
  cov : Coverage.matrix;
  mutable peak_bits : int;
  (* Lossy-link degradation (PR 3): consecutive unrecoverable link faults,
     and whether the accelerator has been quarantined. *)
  quarantine_after : int;
  mutable link_faults : int;
  mutable quarantined : bool;
  fault_cov : Group.t;
  fcov : Coverage.matrix;
  mutable on_quarantine : unit -> unit;
  (* Recovery lifecycle (PR 8).  All quiescent unless [recovery] is set. *)
  recovery : recovery option;
  budgets : budgets;
  probation_rl : Rate_limiter.t option;
  mutable probation : bool;
  mutable probation_gen : int;  (* invalidates stale promotion checks *)
  mutable quarantine_count : int;
  mutable rejoins : int;
  mutable permakilled : bool;
  mutable down_since : int;  (* quarantine entry time; -1 while in service *)
  mutable down_cycles : int;
  mutable budget_trips : int;
  mutable perm_snapshot : Perm_table.snapshot option;
  (* Controller id used in model-checker choice tags.  Defaults to the link
     endpoint's node; the harness overrides it with the host-side port's node
     so every event touching the {core, port} cluster shares one id. *)
  mutable check_ctrl : int;
}

let mode t = t.mode
let stats t = t.stats
let coverage t = t.coverage
let fault_coverage t = t.fault_cov
let quarantined t = t.quarantined
let set_on_quarantine t f = t.on_quarantine <- f

(* ---- recovery observability (PR 8) ---- *)

let in_probation t = t.probation
let permakilled t = t.permakilled
let quarantine_count t = t.quarantine_count
let rejoins t = t.rejoins
let budget_trips t = t.budget_trips

let down_cycles t ~now =
  t.down_cycles + if t.down_since >= 0 then max 0 (now - t.down_since) else 0

(* ---- bookkeeping ---- *)

let tag_bits = 34
let state_bits = 2
let txn_bits = tag_bits + 8
let data_bits = 512

let storage_bits t =
  let track_bits =
    Hashtbl.fold
      (fun _ tr acc ->
        acc + tag_bits + state_bits + match tr.xg_copy with Some _ -> data_bits | None -> 0)
      t.tracks 0
  in
  let pend_bits =
    Hashtbl.fold
      (fun _ p acc ->
        let slot = function None -> 0 | Some _ -> txn_bits in
        acc + slot p.p_get + slot p.p_inv
        + (match p.p_put with None -> 0 | Some (`E | `M) -> txn_bits + data_bits | Some `S -> txn_bits))
      t.pending 0
  in
  track_bits + pend_bits

let note_storage t =
  let bits = storage_bits t in
  if bits > t.peak_bits then t.peak_bits <- bits

let tracked_blocks t = Hashtbl.length t.tracks
let peak_storage_bits t = max t.peak_bits (storage_bits t)

let open_transactions t =
  Hashtbl.fold
    (fun _ p acc ->
      let one = function None -> 0 | Some _ -> 1 in
      acc + one p.p_get + one p.p_inv + match p.p_put with None -> 0 | Some _ -> 1)
    t.pending 0

let accel_state t addr =
  match (t.mode, Hashtbl.find_opt t.tracks addr) with
  | Full_state, None -> `I
  | Full_state, Some { st = `S; _ } -> `S
  | Full_state, Some { st = `E; _ } -> `E
  | Full_state, Some { st = `M; _ } -> `M
  | Transactional, _ -> `Unknown

let slot t addr =
  match Hashtbl.find_opt t.pending addr with
  | Some p -> p
  | None ->
      let p =
        {
          p_get = None;
          p_put = None;
          p_inv = None;
          absorb = 0;
          stalled_gets = Queue.create ();
          stall_stamps = Queue.create ();
        }
      in
      Hashtbl.add t.pending addr p;
      p

let prune t addr (p : per_addr) =
  if
    p.p_get = None && p.p_put = None && p.p_inv = None && p.absorb = 0
    && Queue.is_empty p.stalled_gets
  then Hashtbl.remove t.pending addr

let set_track t addr st =
  (match Hashtbl.find_opt t.tracks addr with
  | Some tr -> tr.st <- st
  | None -> Hashtbl.add t.tracks addr { st; xg_copy = None });
  note_storage t

let clear_track t addr = Hashtbl.remove t.tracks addr

let report t kind addr =
  Group.incr t.stats ("violation." ^ Os_model.error_kind_to_string kind);
  if Trace.on () then
    Trace.note ~cycle:(Engine.now t.engine) ~controller:t.name ~addr:(Addr.to_int addr)
      ~text:("violation: " ^ Os_model.error_kind_to_string kind)
      ();
  Os_model.report t.os kind addr

let send_accel t msg =
  Xg_iface.Link.send t.link ~src:t.self ~dst:t.accel ~size:(Xg_iface.msg_size msg) msg

let respond_accel t addr resp = send_accel t (Xg_iface.To_accel_resp { addr; resp })

let accel_may_be_sharer t addr =
  match t.mode with
  | Full_state -> Hashtbl.mem t.tracks addr
  | Transactional -> Perm_table.allows_read t.perms addr

(* ---- transition coverage & tracing ----

   The guard has no spelled-out state machine; its per-block "state" is the
   combination of pending transaction slots, the trusted full-state table and
   (transactionally) the page permission.  [state_key] collapses that into a
   small vocabulary so (state x event) coverage is meaningful:
   B_inv/B_get/B_put while a transaction is open, I/S/S_RO/E/M from the
   full-state table, T_NA/T_RO/T_RW from permissions in transactional mode. *)

(* States and events are indexed into [coverage_space]'s lists so the hot
   [visit] path records transitions via a dense-id matrix (PR 4) — no string
   building per event.  Names are only materialized when tracing. *)

let state_names =
  [| "I"; "S"; "S_RO"; "E"; "M"; "B_get"; "B_put"; "B_inv"; "T_NA"; "T_RO"; "T_RW"; "Q" |]

let state_idx t addr =
  if t.quarantined then 11 (* Q *)
  else
    match Hashtbl.find_opt t.pending addr with
    | Some { p_inv = Some _; _ } -> 7 (* B_inv *)
    | Some { p_get = Some _; _ } -> 5 (* B_get *)
    | Some { p_put = Some _; _ } -> 6 (* B_put *)
    | _ -> (
        match t.mode with
        | Transactional -> (
            match Perm_table.perm t.perms addr with
            | Perm.No_access -> 8 (* T_NA *)
            | Perm.Read_only -> 9 (* T_RO *)
            | Perm.Read_write -> 10 (* T_RW *))
        | Full_state -> (
            match Hashtbl.find_opt t.tracks addr with
            | None -> 0 (* I *)
            | Some { st = `S; xg_copy = Some _ } -> 2 (* S_RO *)
            | Some { st = `S; xg_copy = None } -> 1 (* S *)
            | Some { st = `E; _ } -> 3 (* E *)
            | Some { st = `M; _ } -> 4 (* M *)))

let state_key t addr = state_names.(state_idx t addr)

let event_names =
  [|
    "GetS"; "GetM"; "PutS"; "PutE"; "PutM"; "CleanWB"; "DirtyWB"; "InvAck";
    "Fwd_S"; "Fwd_M"; "Recall"; "Grant"; "PutDone"; "Timeout"; "Quarantine";
  |]

let ev_clean_wb = 5
let ev_dirty_wb = 6
let ev_inv_ack = 7
let ev_grant = 11
let ev_put_done = 12
let ev_timeout = 13
let ev_quarantine = 14

let visit t addr event f =
  let before = state_idx t addr in
  Coverage.hit t.cov ~state:before ~event;
  if Trace.on () then begin
    f ();
    Trace.transition ~cycle:(Engine.now t.engine) ~controller:t.name
      ~addr:(Addr.to_int addr) ~state:state_names.(before)
      ~event:event_names.(event) ~next:(state_key t addr) ()
  end
  else f ()

let event_of_accel_request = function
  | Xg_iface.Get_s -> 0
  | Xg_iface.Get_m -> 1
  | Xg_iface.Put_s -> 2
  | Xg_iface.Put_e _ -> 3
  | Xg_iface.Put_m _ -> 4

let event_of_accel_response = function
  | Xg_iface.Clean_wb _ -> ev_clean_wb
  | Xg_iface.Dirty_wb _ -> ev_dirty_wb
  | Xg_iface.Inv_ack -> ev_inv_ack

let event_of_host_need = function Fwd_s -> 8 | Fwd_m -> 9 | Recall -> 10

let coverage_space =
  let requests = [ "GetS"; "GetM"; "PutS"; "PutE"; "PutM" ] in
  let responses = [ "CleanWB"; "DirtyWB"; "InvAck" ] in
  let host_needs = [ "Fwd_S"; "Fwd_M"; "Recall" ] in
  let states =
    [ "I"; "S"; "S_RO"; "E"; "M"; "B_get"; "B_put"; "B_inv"; "T_NA"; "T_RO"; "T_RW"; "Q" ]
  in
  let possible state event =
    (* [Q] is the quarantined terminal: accelerator traffic is dropped before
       it is visited, so only host-side events (and the quarantine drain
       itself) can be observed there. *)
    if event = "Quarantine" then state = "Q"
    else if state = "Q" then
      List.mem event host_needs || event = "Grant" || event = "PutDone"
    else if List.mem event requests || List.mem event responses then true
    else if List.mem event host_needs then
      (* [host_request] asserts no invalidation is already pending. *)
      state <> "B_inv"
    else
      (* A pending invalidation masks the busy-get/busy-put facets in
         [state_key] (it is checked first), so a host grant or put
         completion can also arrive while the guard reads as B_inv. *)
      match event with
      | "Grant" -> state = "B_get" || state = "B_inv"
      | "PutDone" -> state = "B_put" || state = "B_inv"
      | "Timeout" -> state = "B_inv"
      | _ -> false
  in
  Xguard_trace.Coverage.space ~name:"xg" ~states
    ~events:(requests @ responses @ host_needs @ [ "Grant"; "PutDone"; "Timeout"; "Quarantine" ])
    ~possible ()

(* ---- link-fault degradation coverage ----

   A much smaller machine tracks the guard's overall health: armed (no
   outstanding fault), degraded (the link reported unrecoverable faults but
   the quarantine threshold has not been reached) and quarantined. *)

let fault_state_idx t =
  if t.permakilled then 4 (* F_permakilled *)
  else if t.quarantined then 2 (* F_quarantined *)
  else if t.probation then 3 (* F_probation *)
  else if t.link_faults > 0 then 1 (* F_degraded *)
  else 0 (* F_armed *)

let fev_link_fault = 0
let fev_recover = 1
let fev_quarantine = 2
let fev_host_answered = 3
let fev_accel_dropped = 4
let fev_reset = 5
let fev_rejoin = 6
let fev_promote = 7
let fev_permakill = 8
let fev_budget_trip = 9

let fvisit t event = Coverage.hit t.fcov ~state:(fault_state_idx t) ~event

let fault_coverage_space =
  Xguard_trace.Coverage.space ~name:"xg.fault"
    ~states:[ "F_armed"; "F_degraded"; "F_quarantined"; "F_probation"; "F_permakilled" ]
    ~events:
      [
        "LinkFault"; "Recover"; "Quarantine"; "HostAnswered"; "AccelDropped"; "Reset";
        "Rejoin"; "Promote"; "Permakill"; "BudgetTrip";
      ]
    ~possible:(fun state event ->
      (* Events are visited in the pre-transition state.  [F_probation] sees
         the same fault/escalation events as the healthy states; everything
         addressed to a gone device ([HostAnswered]/[AccelDropped]) can fire
         both while quarantined and after the permanent kill. *)
      match event with
      | "LinkFault" | "BudgetTrip" ->
          state = "F_armed" || state = "F_degraded" || state = "F_probation"
      | "Recover" | "Quarantine" -> state = "F_degraded" || state = "F_probation"
      | "HostAnswered" | "AccelDropped" ->
          state = "F_quarantined" || state = "F_permakilled"
      | "Reset" | "Rejoin" | "Permakill" -> state = "F_quarantined"
      | "Promote" -> state = "F_probation"
      | _ -> false)
    ()

(* ---- host-initiated invalidations ---- *)

let reply_once t (p : per_addr) (inv : inv_pend) reply =
  if not inv.replied then begin
    inv.replied <- true;
    ignore p;
    ignore t;
    inv.reply reply
  end

let finish_inv t addr (p : per_addr) =
  p.p_inv <- None;
  prune t addr p

(* Default answer when the accelerator cannot be trusted to respond. *)
let default_reply t inv =
  match (t.mode, inv.expect_owner) with
  | Full_state, true -> Reply_dirty Data.zero
  | _, _ -> Reply_ack { shared = false }

(* ---- lossy-link degradation (PR 3) and recovery lifecycle (PR 8) ---- *)

let sorted_bindings tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> Addr.compare a b)

(* The accelerator's link is gone: answer everything outstanding from trusted
   state (the same answer-on-behalf machinery as G2c), hand tracked blocks
   back to the host, revoke the accelerator's pages and tell the OS.  The
   host side keeps running.  Without a recovery policy that is terminal (the
   PR 3 behaviour); with one, the guard snapshots the page grants first and
   schedules a link-reset handshake — or gives up for good once
   [permakill_after] lives are burned. *)
let rec quarantine t =
  if not t.quarantined then begin
    fvisit t fev_quarantine;
    t.quarantined <- true;
    Group.incr t.stats "quarantined";
    if Trace.on () then
      Trace.note ~cycle:(Engine.now t.engine) ~controller:t.name
        ~text:"quarantine: draining outstanding transactions" ();
    (* Open host invalidations first: reply from trusted state, exactly the
       G2c substitution.  Deterministic address order keeps runs stable. *)
    List.iter
      (fun (addr, p) ->
        visit t addr ev_quarantine (fun () ->
            (match p.p_inv with
            | Some inv ->
                (match Hashtbl.find_opt t.tracks addr with
                | Some { xg_copy = Some copy; _ } -> reply_once t p inv (Reply_clean copy)
                | Some { st = `E | `M; _ } ->
                    Group.incr t.stats "quarantine_zeroed_wb";
                    reply_once t p inv (Reply_dirty Data.zero)
                | Some { st = `S; _ } | None -> reply_once t p inv (default_reply t inv));
                clear_track t addr;
                finish_inv t addr p
            | None -> ());
            Queue.clear p.stalled_gets;
            Queue.clear p.stall_stamps;
            prune t addr p))
      (sorted_bindings t.pending);
    (* Tracked blocks with no transaction in flight: relinquish them so the
       host directory never records the dead accelerator as a sharer/owner.
       Blocks with an open get settle when [granted] fires; open puts when
       [put_complete] does. *)
    List.iter
      (fun (addr, tr) ->
        let p = slot t addr in
        if p.p_get = None && p.p_put = None then
          visit t addr ev_quarantine (fun () ->
              (match (tr.st, tr.xg_copy) with
              | _, Some copy ->
                  p.p_put <- Some `E;
                  Group.incr t.stats "ro_copy_relinquished";
                  t.host.put addr (`E copy)
              | (`E | `M), None ->
                  p.p_put <- Some `M;
                  Group.incr t.stats "quarantine_zeroed_wb";
                  t.host.put addr (`M Data.zero)
              | `S, None ->
                  if t.host.puts_needed then begin
                    p.p_put <- Some `S;
                    t.host.put addr `S
                  end);
              clear_track t addr;
              prune t addr p)
        else clear_track t addr)
      (sorted_bindings t.tracks);
    (match t.recovery with
    | Some _ when t.perm_snapshot = None ->
        (* Captured before the revocation so rejoin can re-grant the same
           mappings. *)
        t.perm_snapshot <- Some (Perm_table.snapshot t.perms)
    | _ -> ());
    Perm_table.revoke_all t.perms;
    Os_model.quarantine t.os;
    t.quarantine_count <- t.quarantine_count + 1;
    t.down_since <- Engine.now t.engine;
    t.probation <- false;
    t.on_quarantine ();
    match t.recovery with
    | None -> ()
    | Some r ->
        if t.quarantine_count >= r.permakill_after then permakill t
        else Engine.schedule t.engine ~delay:r.reset_delay (fun () -> start_reset t r)
  end

and permakill t =
  if not t.permakilled then begin
    fvisit t fev_permakill;
    t.permakilled <- true;
    t.probation <- false;
    Group.incr t.stats "permakilled";
    if Trace.on () then
      Trace.note ~cycle:(Engine.now t.engine) ~controller:t.name
        ~text:"permanent kill: recovery abandoned" ();
    Os_model.permakill t.os;
    Xg_iface.Link.kill t.link
  end

and start_reset t r =
  if t.quarantined && not t.permakilled then begin
    fvisit t fev_reset;
    Group.incr t.stats "link_resets";
    Os_model.link_reset t.os;
    if Trace.on () then
      Trace.note ~cycle:(Engine.now t.engine) ~controller:t.name
        ~text:"link reset: handshake started" ();
    Xg_iface.Link.reset t.link ~src:t.self ~dst:t.accel ~timeout:r.reset_timeout
      ~attempts:r.reset_attempts
      ~on_ready:(fun () -> rejoin t r)
      ~on_dead:(fun () ->
        (* The handshake itself died on the wire: burn another life. *)
        Group.incr t.stats "reset_failures";
        Xg_iface.Link.kill t.link;
        t.quarantine_count <- t.quarantine_count + 1;
        if t.quarantine_count >= r.permakill_after then permakill t
        else Engine.schedule t.engine ~delay:r.reset_delay (fun () -> start_reset t r))
      ()
  end

and rejoin t r =
  if t.quarantined && not t.permakilled then begin
    fvisit t fev_rejoin;
    t.quarantined <- false;
    t.probation <- true;
    t.link_faults <- 0;
    t.rejoins <- t.rejoins + 1;
    if t.down_since >= 0 then begin
      t.down_cycles <- t.down_cycles + (Engine.now t.engine - t.down_since);
      t.down_since <- -1
    end;
    (match t.perm_snapshot with
    | Some snap ->
        (* The OS re-maps the device's pages as part of re-admission. *)
        Perm_table.restore t.perms snap;
        t.perm_snapshot <- None
    | None -> ());
    Group.incr t.stats "rejoins";
    Os_model.rejoin t.os;
    if Trace.on () then
      Trace.note ~cycle:(Engine.now t.engine) ~controller:t.name
        ~text:"rejoin: accelerator re-admitted on probation" ();
    schedule_promotion t r
  end

and promote t =
  if t.probation && (not t.quarantined) && not t.permakilled then begin
    fvisit t fev_promote;
    t.probation <- false;
    Group.incr t.stats "promotions";
    Os_model.promote t.os;
    if Trace.on () then
      Trace.note ~cycle:(Engine.now t.engine) ~controller:t.name
        ~text:"promotion: clean probation window, healthy again" ()
  end

(* A clean [probation_window] promotes; any fault during probation restarts
   the clock (the generation counter retires stale checks). *)
and schedule_promotion t r =
  t.probation_gen <- t.probation_gen + 1;
  let gen = t.probation_gen in
  Engine.schedule t.engine ~delay:r.probation_window (fun () ->
      if t.probation && t.probation_gen = gen then promote t)

let effective_quarantine_after t =
  match t.recovery with
  | Some r when t.probation -> r.probation_quarantine_after
  | _ -> t.quarantine_after

let link_fault t =
  if not (t.quarantined || t.permakilled) then begin
    fvisit t fev_link_fault;
    t.link_faults <- t.link_faults + 1;
    Group.incr t.stats "link_faults";
    report t Os_model.Link_fault (Addr.block 0);
    if t.link_faults >= effective_quarantine_after t then quarantine t
    else
      match t.recovery with
      | Some r when t.probation -> schedule_promotion t r
      | _ -> ()
  end

let link_recovered t =
  if (not t.quarantined) && t.link_faults > 0 then begin
    fvisit t fev_recover;
    t.link_faults <- 0;
    Group.incr t.stats "link_recoveries"
  end

(* A per-phase hang budget tripped: count it, tell the OS, and feed the same
   escalation ladder as a link fault — so a slow-but-not-dead accelerator is
   quarantined (and, with recovery on, put on probation) long before the
   coarse G2c timeout would have wedged a transaction slot. *)
let budget_trip t phase addr =
  if not (t.quarantined || t.permakilled) then begin
    fvisit t fev_budget_trip;
    t.budget_trips <- t.budget_trips + 1;
    Group.incr t.stats "budget_trips";
    Group.incr t.stats ("budget_trip." ^ budget_phase_name phase);
    report t Os_model.Budget_exceeded addr;
    t.link_faults <- t.link_faults + 1;
    if t.link_faults >= effective_quarantine_after t then quarantine t
    else
      match t.recovery with
      | Some r when t.probation -> schedule_promotion t r
      | _ -> ()
  end

let start_accel_invalidation t addr (p : per_addr) inv =
  p.p_inv <- Some inv;
  note_storage t;
  Group.incr_id t.stats t.sid.s_invalidate_to_accel;
  send_accel t (Xg_iface.To_accel_req { addr; req = Xg_iface.Invalidate });
  (* inv->ack hang budget: fires strictly before the G2c timeout and only
     escalates — the G2c substitution below still produces the answer. *)
  (match t.budgets.inv_ack with
  | Some b when b < t.timeout ->
      Engine.schedule t.engine ~delay:b
        ~tag:(Engine.pack_tag ~ctrl:t.check_ctrl ~addr:(Addr.to_int addr))
        (fun () ->
          match p.p_inv with
          | Some i when i == inv && not i.replied -> budget_trip t Inv_ack addr
          | _ -> ())
  | _ -> ());
  Engine.schedule t.engine ~delay:t.timeout
    ~tag:(Engine.pack_tag ~ctrl:t.check_ctrl ~addr:(Addr.to_int addr))
    (fun () ->
      match p.p_inv with
      | Some i when i == inv && not i.replied ->
          visit t addr ev_timeout (fun () ->
              if Spans.on () then
                Spans.inv_timeout ~addr:(Addr.to_int addr) ~now:(Engine.now t.engine);
              report t Os_model.Response_timeout addr;
              Group.incr t.stats "timeout_reply_for_accel";
              clear_track t addr;
              reply_once t p i (default_reply t i);
              (* The late response, if any, must be swallowed. *)
              p.absorb <- p.absorb + 1;
              finish_inv t addr p)
      | _ -> ())

let host_request t addr ~need ~reply =
  if t.quarantined then fvisit t fev_host_answered;
  visit t addr (event_of_host_need need) @@ fun () ->
  let p = slot t addr in
  assert (p.p_inv = None);
  (* A pending put here can only be a non-owner PutS still settling with the
     host (owner writebacks are answered by the port itself); the accelerator
     already relinquished the block, so the normal paths below answer
     correctly. *)
  match t.mode with
  | Full_state -> (
      match Hashtbl.find_opt t.tracks addr with
      | None ->
          Group.incr_id t.stats t.sid.s_snoop_fast_path;
          reply (Reply_ack { shared = false });
          (* [slot] above may have created an empty record for this fast
             path; drop it (snapshot symmetry: empty slots must not leak). *)
          prune t addr p
      | Some { st = `S; xg_copy = None } when need = Fwd_s ->
          Group.incr_id t.stats t.sid.s_snoop_fast_path;
          reply (Reply_ack { shared = true });
          prune t addr p
      | Some ({ st = `S; xg_copy = Some copy } as tr) ->
          if need = Fwd_s then begin
            (* XG owns the trusted copy of this read-only block; serve data
               without disturbing the accelerator. *)
            Group.incr_id t.stats t.sid.s_snoop_fast_path;
            reply (Reply_clean copy);
            prune t addr p
          end
          else begin
            ignore tr;
            start_accel_invalidation t addr p
              { need; reply; expect_owner = false; replied = false }
          end
      | Some { st = `S; xg_copy = None } ->
          start_accel_invalidation t addr p
            { need; reply; expect_owner = false; replied = false }
      | Some { st = `E | `M; _ } ->
          start_accel_invalidation t addr p
            { need; reply; expect_owner = true; replied = false })
  | Transactional -> (
      let perm = Perm_table.perm t.perms addr in
      match perm with
      | Perm.No_access ->
          (* The accelerator cannot hold this block; answering locally also
             hides host coherence traffic from a potentially malicious
             accelerator (side-channel filtering, §3.2). *)
          Group.incr_id t.stats t.sid.s_side_channel_filtered;
          reply (Reply_ack { shared = false });
          prune t addr p
      | Perm.Read_only when need = Fwd_s ->
          (* The accelerator cannot own the block (G0b), so no data is
             needed; conservatively report it shared. *)
          Group.incr_id t.stats t.sid.s_snoop_fast_path;
          reply (Reply_ack { shared = true });
          prune t addr p
      | Perm.Read_only | Perm.Read_write -> (
          (* Deduce what we can from open transactions: a pending GetS means
             the accelerator holds nothing yet. *)
          match p.p_get with
          | Some { want = `S; _ } when need <> Fwd_s ->
              Group.incr_id t.stats t.sid.s_snoop_fast_path;
              reply (Reply_ack { shared = false });
              prune t addr p
          | _ ->
              start_accel_invalidation t addr p
                { need; reply; expect_owner = false; replied = false }))

(* ---- accelerator responses ---- *)

let accel_response t addr (resp : Xg_iface.accel_response) =
  visit t addr (event_of_accel_response resp) @@ fun () ->
  let p = slot t addr in
  match p.p_inv with
  | Some inv -> (
      let keep_shared = inv.need = Fwd_s in
      (match t.mode with
      | Full_state -> (
          let tr = Hashtbl.find_opt t.tracks addr in
          let expected_ok =
            match (resp, tr) with
            | Xg_iface.Dirty_wb _, Some { st = `M | `E; xg_copy = None } -> true
            | Xg_iface.Clean_wb _, Some { st = `E; xg_copy = None } -> true
            | Xg_iface.Inv_ack, Some { st = `S; _ } -> true
            | Xg_iface.Inv_ack, None -> true
            | _ -> false
          in
          if expected_ok then
            match resp with
            | Xg_iface.Dirty_wb data -> reply_once t p inv (Reply_dirty data)
            | Xg_iface.Clean_wb data -> reply_once t p inv (Reply_clean data)
            | Xg_iface.Inv_ack -> (
                match tr with
                | Some { xg_copy = Some copy; _ } ->
                    (* Serve the trusted read-only copy on the block's
                       behalf. *)
                    reply_once t p inv (Reply_clean copy)
                | Some _ | None ->
                    reply_once t p inv
                      (Reply_ack { shared = keep_shared && tr <> None }))
          else begin
            (* G2a: correct the response type from trusted state. *)
            report t Os_model.Bad_response_type addr;
            Group.incr t.stats "response_corrected";
            match tr with
            | Some { xg_copy = Some copy; _ } -> reply_once t p inv (Reply_clean copy)
            | Some { st = `M | `E; _ } -> (
                (* An owner that did not produce a dirty writeback: if it sent
                   data of the wrong type, use it; if it acked, substitute a
                   zeroed block (paper §2.2). *)
                match resp with
                | Xg_iface.Clean_wb d | Xg_iface.Dirty_wb d -> reply_once t p inv (Reply_dirty d)
                | Xg_iface.Inv_ack -> reply_once t p inv (Reply_dirty Data.zero))
            | Some { st = `S; _ } | None -> reply_once t p inv (Reply_ack { shared = false })
          end)
      | Transactional -> (
          match resp with
          | Xg_iface.Dirty_wb data | Xg_iface.Clean_wb data ->
              if not (Perm_table.allows_write t.perms addr) then begin
                (* G0b: data from a read-only block is not accepted. *)
                report t Os_model.Perm_write_violation addr;
                reply_once t p inv (Reply_ack { shared = false })
              end
              else
                reply_once t p inv
                  (match resp with
                  | Xg_iface.Dirty_wb _ -> Reply_dirty data
                  | _ -> Reply_clean data)
          | Xg_iface.Inv_ack -> reply_once t p inv (Reply_ack { shared = false })));
      (match (t.mode, inv.need) with
      | Full_state, Fwd_s -> (
          (* After a read forward the accelerator keeps nothing unless it was
             a plain sharer answered on the fast path (not this code path) —
             an owner was invalidated. *)
          match Hashtbl.find_opt t.tracks addr with Some _ -> clear_track t addr | None -> ())
      | Full_state, (Fwd_m | Recall) -> clear_track t addr
      | Transactional, _ -> ());
      finish_inv t addr p)
  | None ->
      if p.absorb > 0 then begin
        p.absorb <- p.absorb - 1;
        Group.incr t.stats "late_response_absorbed";
        prune t addr p
      end
      else begin
        (* G2b: response with no outstanding request. *)
        report t Os_model.Unsolicited_response addr;
        Group.incr t.stats "response_dropped";
        prune t addr p
      end

(* ---- accelerator requests ---- *)

let rec process_get t addr (p : per_addr) (req : Xg_iface.accel_request) =
  let want = match req with Xg_iface.Get_m -> `M | _ -> `S in
  let perm = Perm_table.perm t.perms addr in
  let ro = perm = Perm.Read_only in
  let g = { want; ro } in
  p.p_get <- Some g;
  (* fetch->data hang budget: the host-side fetch phase of this get. *)
  (match t.budgets.fetch_data with
  | Some b ->
      Engine.schedule t.engine ~delay:b
        ~tag:(Engine.pack_tag ~ctrl:t.check_ctrl ~addr:(Addr.to_int addr))
        (fun () ->
          match p.p_get with
          | Some g' when g' == g -> budget_trip t Fetch_data addr
          | _ -> ())
  | None -> ());
  note_storage t;
  if Spans.on () then Spans.xg_decided ~addr:(Addr.to_int addr) ~now:(Engine.now t.engine);
  Group.incr_id t.stats
    (match want with `M -> t.sid.s_get_m_forwarded | `S -> t.sid.s_get_s_forwarded);
  match want with
  | `M -> t.host.get addr `M
  | `S ->
      if ro && t.host.has_get_s_only then t.host.get addr `S_only
      else t.host.get addr `S

and accept_put t addr (p : per_addr) (req : Xg_iface.accel_request) =
  (* Ack the accelerator immediately (§3.2), then settle with the host. *)
  if Spans.on () then Spans.xg_decided ~addr:(Addr.to_int addr) ~now:(Engine.now t.engine);
  respond_accel t addr Xg_iface.Wb_ack;
  let ro_copy =
    match Hashtbl.find_opt t.tracks addr with
    | Some { xg_copy = Some copy; _ } -> Some copy
    | _ -> None
  in
  clear_track t addr;
  (* Host-forwarded writebacks keep the crossing's span open until the host
     side settles, so the port can attribute [host.writeback]. *)
  let host_put v =
    if Spans.on () then
      Spans.host_put_issued ~addr:(Addr.to_int addr) ~now:(Engine.now t.engine);
    t.host.put addr v
  in
  match req with
  | Xg_iface.Put_s when ro_copy <> None ->
      (* The guard itself owns this read-only block at the host (§2.3.1);
         relinquish that ownership with the trusted copy. *)
      let copy = Option.get ro_copy in
      p.p_put <- Some `E;
      note_storage t;
      Group.incr t.stats "ro_copy_relinquished";
      host_put (`E copy)
  | Xg_iface.Put_s ->
      if t.host.puts_needed then begin
        p.p_put <- Some `S;
        note_storage t;
        Group.incr_id t.stats t.sid.s_put_s_forwarded;
        host_put `S
      end
      else if t.suppress_put_s then begin
        Group.incr_id t.stats t.sid.s_put_s_suppressed;
        pump_stalled t addr p
      end
      else begin
        (* Unnecessary PutS traffic the paper measures at 1-4% of
           XG-to-host bandwidth when the optimization register is off. *)
        p.p_put <- Some `S;
        note_storage t;
        Group.incr_id t.stats t.sid.s_put_s_unnecessary;
        host_put `S
      end
  | Xg_iface.Put_e data ->
      p.p_put <- Some `E;
      note_storage t;
      Group.incr_id t.stats t.sid.s_put_e_forwarded;
      host_put (`E data)
  | Xg_iface.Put_m data ->
      p.p_put <- Some `M;
      note_storage t;
      Group.incr_id t.stats t.sid.s_put_m_forwarded;
      host_put (`M data)
  | Xg_iface.Get_s | Xg_iface.Get_m -> assert false

and pump_stalled t addr (p : per_addr) =
  if p.p_put = None && p.p_get = None && not (Queue.is_empty p.stalled_gets) then begin
    let req = Queue.pop p.stalled_gets in
    if Spans.on () then begin
      match Queue.take_opt p.stall_stamps with
      | Some parked ->
          let now = Engine.now t.engine in
          let a = Addr.to_int addr in
          (* The lookup must read barrier-ordered recorder state under the
             sharded engine, so the whole read-then-record block defers. *)
          Spans.deferred ~now (fun () ->
              let span =
                match Spans.lookup ~addr:a with Some (s, _) -> s | None -> 0
              in
              Spans.record Spans.Xg_stall
                (Xg_iface.span_txn_of_request req)
                ~span ~addr:a ~ts:parked ~dur:(now - parked))
      | None -> ()
    end;
    process_get t addr p req
  end
  else prune t addr p

and accel_request t addr (req : Xg_iface.accel_request) =
  let p = slot t addr in
  let perm = Perm_table.perm t.perms addr in
  (* Guarantee 0: page permissions. *)
  if not (Perm.allows_read perm) then begin
    report t Os_model.Perm_read_violation addr;
    Group.incr_id t.stats t.sid.s_request_blocked;
    prune t addr p
  end
  else if
    (not (Perm.allows_write perm))
    && (match req with
       | Xg_iface.Get_m | Xg_iface.Put_e _ | Xg_iface.Put_m _ -> true
       | Xg_iface.Get_s | Xg_iface.Put_s -> false)
  then begin
    report t Os_model.Perm_write_violation addr;
    Group.incr_id t.stats t.sid.s_request_blocked;
    prune t addr p
  end
  else if p.p_get <> None then begin
    (* Guarantee 1b: one open request per block. *)
    report t Os_model.Request_while_pending addr;
    Group.incr_id t.stats t.sid.s_request_blocked
  end
  else if p.p_put <> None || not (Queue.is_empty p.stalled_gets) then begin
    match req with
    | Xg_iface.Get_s | Xg_iface.Get_m ->
        (* The accelerator's Put was already acknowledged; its re-fetch is
           legitimate and waits for the internal writeback to settle. *)
        Queue.push req p.stalled_gets;
        if Spans.on () then Queue.push (Engine.now t.engine) p.stall_stamps;
        Group.incr_id t.stats t.sid.s_get_stalled_behind_put
    | Xg_iface.Put_s | Xg_iface.Put_e _ | Xg_iface.Put_m _ ->
        report t Os_model.Request_while_pending addr;
        Group.incr_id t.stats t.sid.s_request_blocked
  end
  else if p.p_inv <> None && Xg_iface.is_put req then begin
    (* The one race the ordered link allows: the accelerator's Put crossed
       our Invalidate.  Use the writeback as the reply to the host and
       absorb the InvAck that must follow (Table 1: B + Invalidate). *)
    match p.p_inv with
    | Some inv ->
        Group.incr t.stats "put_invalidate_race";
        if Spans.on () then begin
          let a = Addr.to_int addr and now = Engine.now t.engine in
          Spans.inv_race ~addr:a ~now;
          Spans.xg_decided ~addr:a ~now
        end;
        respond_accel t addr Xg_iface.Wb_ack;
        clear_track t addr;
        (match req with
        | Xg_iface.Put_m data ->
            if Perm_table.allows_write t.perms addr then reply_once t p inv (Reply_dirty data)
            else reply_once t p inv (Reply_ack { shared = false })
        | Xg_iface.Put_e data ->
            if Perm_table.allows_write t.perms addr then reply_once t p inv (Reply_clean data)
            else reply_once t p inv (Reply_ack { shared = false })
        | Xg_iface.Put_s -> reply_once t p inv (Reply_ack { shared = false })
        | Xg_iface.Get_s | Xg_iface.Get_m -> assert false);
        p.absorb <- p.absorb + 1;
        finish_inv t addr p
    | None -> assert false
  end
  else begin
    (* Guarantee 1a: consistency with the stable state (Full_state only;
       Transactional relies on the host tolerating the request, §2.3.2). *)
    let stable_ok =
      match t.mode with
      | Transactional -> true
      | Full_state -> (
          let st = Hashtbl.find_opt t.tracks addr in
          match (req, st) with
          | Xg_iface.Get_s, None -> true
          | Xg_iface.Get_m, (None | Some { st = `S; xg_copy = None }) -> true
          | Xg_iface.Put_s, Some { st = `S; _ } -> true
          | Xg_iface.Put_e _, Some { st = `E; xg_copy = None } -> true
          | Xg_iface.Put_m _, Some { st = `M | `E; xg_copy = None } -> true
          | _ -> false)
    in
    if not stable_ok then begin
      report t Os_model.Bad_request_stable addr;
      Group.incr_id t.stats t.sid.s_request_blocked;
      prune t addr p
    end
    else
      match req with
      | Xg_iface.Get_s | Xg_iface.Get_m -> process_get t addr p req
      | Xg_iface.Put_s | Xg_iface.Put_e _ | Xg_iface.Put_m _ -> accept_put t addr p req
  end

(* ---- host-side completions ---- *)

let granted t addr grant =
  visit t addr ev_grant @@ fun () ->
  let p = slot t addr in
  match p.p_get with
  | None -> failwith (t.name ^ ": host grant without an open get")
  | Some _ when t.quarantined ->
      (* The get was open when the link died; the accelerator will never see
         this grant.  Hand the block straight back so the host's directory
         does not record a dead owner. *)
      p.p_get <- None;
      Group.incr t.stats "quarantine_grant_returned";
      (match grant with
      | `S _ ->
          if t.host.puts_needed then begin
            p.p_put <- Some `S;
            t.host.put addr `S
          end
          else prune t addr p
      | `E data ->
          p.p_put <- Some `E;
          t.host.put addr (`E data)
      | `M data ->
          p.p_put <- Some `M;
          t.host.put addr (`M data))
  | Some { want; ro } ->
      p.p_get <- None;
      let resp =
        match (grant, want, ro) with
        | `S data, _, _ ->
            if t.mode = Full_state then set_track t addr `S;
            Xg_iface.Data_s data
        | `E data, `S, true when not t.host.has_get_s_only ->
            (* Exclusive grant on a read-only page: keep the trusted copy and
               give the accelerator only a shared view (G0b, §2.3.1). *)
            assert (t.mode = Full_state);
            set_track t addr `S;
            (match Hashtbl.find_opt t.tracks addr with
            | Some tr -> tr.xg_copy <- Some data
            | None -> assert false);
            note_storage t;
            Group.incr t.stats "ro_exclusive_demoted";
            Xg_iface.Data_s data
        | `M data, `S, true when not t.host.has_get_s_only ->
            assert (t.mode = Full_state);
            set_track t addr `S;
            (match Hashtbl.find_opt t.tracks addr with
            | Some tr -> tr.xg_copy <- Some data
            | None -> assert false);
            note_storage t;
            Group.incr t.stats "ro_exclusive_demoted";
            Xg_iface.Data_s data
        | `E data, _, _ ->
            if t.mode = Full_state then set_track t addr `E;
            Xg_iface.Data_e data
        | `M data, _, _ ->
            if t.mode = Full_state then set_track t addr `M;
            Xg_iface.Data_m data
      in
      Group.incr_id t.stats t.sid.s_grant_to_accel;
      respond_accel t addr resp;
      prune t addr p

let put_complete t addr =
  visit t addr ev_put_done @@ fun () ->
  let p = slot t addr in
  match p.p_put with
  | None -> failwith (t.name ^ ": put completion without an open put")
  | Some _ ->
      p.p_put <- None;
      Group.incr_id t.stats t.sid.s_put_complete;
      pump_stalled t addr p

(* ---- model-checker support ---- *)

let set_check_ctrl t ctrl = t.check_ctrl <- ctrl

let check_pending_slots t = Hashtbl.length t.pending

let check_tracked t =
  sorted_bindings t.tracks
  |> List.map (fun (addr, (tr : track)) -> (addr, tr.st, tr.xg_copy))

let check_violation t =
  (* Guarantee 1b: at most one open transaction per block.  The guard's
     per-block slot makes this structural — a get and a put open at once is
     the broken state the invariant engine looks for. *)
  List.fold_left
    (fun acc (addr, (p : per_addr)) ->
      match acc with
      | Some _ -> acc
      | None ->
          if p.p_get <> None && p.p_put <> None then
            Some
              (Printf.sprintf "%s: G1b violated at block %d (get and put both open)"
                 t.name (Addr.to_int addr))
          else None)
    None (sorted_bindings t.pending)

let check_fingerprint t buf =
  Buffer.add_string buf "xg[";
  Buffer.add_string buf t.name;
  Buffer.add_char buf ']';
  List.iter
    (fun (addr, (tr : track)) ->
      Buffer.add_string buf
        (Printf.sprintf "k%d:%s:%d;" (Addr.to_int addr)
           (match tr.st with `S -> "S" | `E -> "E" | `M -> "M")
           (match tr.xg_copy with None -> -1 | Some d -> (d : Data.t))))
    (sorted_bindings t.tracks);
  List.iter
    (fun (addr, (p : per_addr)) ->
      Buffer.add_string buf (Printf.sprintf "p%d:" (Addr.to_int addr));
      (match p.p_get with
      | None -> Buffer.add_char buf '-'
      | Some { want; ro } ->
          Buffer.add_string buf (match want with `S -> "gS" | `M -> "gM");
          if ro then Buffer.add_char buf 'r');
      (match p.p_put with
      | None -> Buffer.add_char buf '-'
      | Some `S -> Buffer.add_string buf "pS"
      | Some `E -> Buffer.add_string buf "pE"
      | Some `M -> Buffer.add_string buf "pM");
      (match p.p_inv with
      | None -> Buffer.add_char buf '-'
      | Some inv ->
          Buffer.add_string buf
            (Printf.sprintf "i%s%b%b"
               (match inv.need with Fwd_s -> "S" | Fwd_m -> "M" | Recall -> "R")
               inv.expect_owner inv.replied));
      Buffer.add_string buf (Printf.sprintf "a%d:" p.absorb);
      Queue.iter
        (fun req ->
          Buffer.add_string buf (Format.asprintf "%a," Xg_iface.pp_accel_request req))
        p.stalled_gets;
      Buffer.add_char buf ';')
    (sorted_bindings t.pending);
  if t.quarantined then Buffer.add_char buf 'Q';
  if t.link_faults > 0 then Buffer.add_string buf (Printf.sprintf "F%d" t.link_faults);
  (* Recovery state appears only when a recovery policy has driven it, so
     legacy fingerprints (MODEL_BASELINE.json) never change. *)
  if t.probation then Buffer.add_char buf 'P';
  if t.permakilled then Buffer.add_char buf 'X';
  if t.quarantine_count > 0 && t.recovery <> None then
    Buffer.add_string buf (Printf.sprintf "R%d" t.quarantine_count)

(* ---- wiring ---- *)

let create ~engine ~name ~mode ~link ~self ~accel ~host ~perms ~os ?(timeout = 2000)
    ?(processing_latency = 4) ?rate_limiter ?(suppress_put_s_register = false)
    ?(quarantine_after = 3) ?recovery ?(budgets = no_budgets) () =
  let stats = Group.create (name ^ ".stats") in
  let coverage = Group.create (name ^ ".coverage") in
  let fault_cov = Group.create (name ^ ".fault_cov") in
  let sid =
    {
      s_accel_request = Group.intern stats "accel_request";
      s_accel_response = Group.intern stats "accel_response";
      s_grant_to_accel = Group.intern stats "grant_to_accel";
      s_put_complete = Group.intern stats "put_complete";
      s_snoop_fast_path = Group.intern stats "snoop_fast_path";
      s_side_channel_filtered = Group.intern stats "side_channel_filtered";
      s_get_s_forwarded = Group.intern stats "get_s_forwarded";
      s_get_m_forwarded = Group.intern stats "get_m_forwarded";
      s_put_s_forwarded = Group.intern stats "put_s_forwarded";
      s_put_e_forwarded = Group.intern stats "put_e_forwarded";
      s_put_m_forwarded = Group.intern stats "put_m_forwarded";
      s_put_s_suppressed = Group.intern stats "put_s_suppressed";
      s_put_s_unnecessary = Group.intern stats "put_s_unnecessary";
      s_invalidate_to_accel = Group.intern stats "invalidate_to_accel";
      s_request_blocked = Group.intern stats "request_blocked";
      s_get_stalled_behind_put = Group.intern stats "get_stalled_behind_put";
    }
  in
  let t =
    {
      engine;
      name;
      mode;
      link;
      self;
      accel;
      host;
      perms;
      os;
      timeout;
      rate_limiter;
      suppress_put_s = suppress_put_s_register;
      tracks = Hashtbl.create 256;
      pending = Hashtbl.create 64;
      stats;
      sid;
      coverage;
      cov = Coverage.intern_matrix coverage_space coverage;
      peak_bits = 0;
      quarantine_after = max 1 quarantine_after;
      link_faults = 0;
      quarantined = false;
      fault_cov;
      fcov = Coverage.intern_matrix fault_coverage_space fault_cov;
      on_quarantine = (fun () -> ());
      recovery;
      budgets;
      probation_rl =
        (match recovery with
        | Some r ->
            Some
              (Rate_limiter.create ~engine ~tokens_per_cycle:r.probation_rate
                 ~burst:r.probation_burst ())
        | None -> None);
      probation = false;
      probation_gen = 0;
      quarantine_count = 0;
      rejoins = 0;
      permakilled = false;
      down_since = -1;
      down_cycles = 0;
      budget_trips = 0;
      perm_snapshot = None;
      check_ctrl = Node.id self;
    }
  in
  Xg_iface.Link.register link self (fun ~src:_ msg ->
      (* Charge the guard's pipeline latency once per message. *)
      Engine.schedule t.engine ~delay:processing_latency
        ~tag:(Engine.pack_tag ~ctrl:t.check_ctrl
                ~addr:(Addr.to_int (Xg_iface.msg_addr msg)))
        (fun () ->
          if t.quarantined then begin
            (* The device is quarantined: whatever still trickles out of the
               link (or was already in the pipeline) is dead traffic. *)
            fvisit t fev_accel_dropped;
            Group.incr t.stats "dropped_quarantined"
          end
          else
            match msg with
          | Xg_iface.To_xg_req { addr; req } ->
              if Os_model.accel_disabled t.os then Group.incr t.stats "request_dropped_disabled"
              else begin
                Group.incr_id t.stats t.sid.s_accel_request;
                let visited () =
                  if t.quarantined then begin
                    (* Quarantined while parked in a limiter queue: the
                       admitted request is dead traffic now. *)
                    fvisit t fev_accel_dropped;
                    Group.incr t.stats "dropped_quarantined"
                  end
                  else
                    visit t addr (event_of_accel_request req) (fun () ->
                        accel_request t addr req)
                in
                (* On probation the stricter probation bucket replaces the
                   configured limiter; [probation] is only ever true with a
                   recovery policy, which always builds [probation_rl]. *)
                let limiter = if t.probation then t.probation_rl else t.rate_limiter in
                let run =
                  match t.budgets.req_decide with
                  | None -> visited
                  | Some b ->
                      let arrived = Engine.now t.engine in
                      fun () ->
                        if Engine.now t.engine - arrived > b then
                          budget_trip t Req_decide addr;
                        visited ()
                in
                match limiter with
                | Some rl -> Rate_limiter.admit rl run
                | None -> run ()
              end
          | Xg_iface.To_xg_resp { addr; resp } ->
              (* Responses are never rate limited (§2.5). *)
              Group.incr_id t.stats t.sid.s_accel_response;
              accel_response t addr resp
          | Xg_iface.To_accel_resp _ | Xg_iface.To_accel_req _ ->
              invalid_arg (name ^ ": received a guard-to-accelerator message")));
  t
