(** Operating-system error model (paper §2.2).

    Crossing Guard reports every guarantee violation here.  The OS applies a
    policy: log only, disable the accelerator (Crossing Guard then drops all
    further accelerator requests while continuing to answer the host on its
    behalf), or additionally mark the offending process killed.  The error
    log is the observable the safety experiments check. *)

type error_kind =
  | Perm_read_violation  (** G0a: request to a page with no access *)
  | Perm_write_violation  (** G0b: write request / data response without write permission *)
  | Bad_request_stable  (** G1a: request inconsistent with the block's stable state *)
  | Request_while_pending  (** G1b: second request while one is open for the address *)
  | Bad_response_type  (** G2a: response type inconsistent with the block's state *)
  | Unsolicited_response  (** G2b: response with no outstanding host request *)
  | Response_timeout  (** G2c: the accelerator never answered; XG answered for it *)
  | Rate_limit_exceeded  (** §2.5: request rate above the configured limit *)
  | Link_fault  (** the XG-accelerator link lost a retransmission round *)
  | Budget_exceeded  (** a per-phase hang budget tripped before the G2c timeout *)

type policy = Log_only | Disable_accelerator | Kill_process

type t

val create : ?policy:policy -> unit -> t
val policy : t -> policy
val report : t -> error_kind -> Addr.t -> unit
val error_count : t -> int
val count_of : t -> error_kind -> int
val log : t -> (error_kind * Addr.t) list
(** Oldest first. *)

val accel_disabled : t -> bool
val process_killed : t -> bool

val quarantine : t -> unit
(** The guard gave up on the accelerator's link: record the quarantine (the
    host keeps running; there is simply no device behind the guard any
    more).  Does {e not} set [accel_disabled]: the quarantining guard fences
    its own traffic, and one OS model may serve several guards in a
    topology, so a global disable would punish the victim's neighbors. *)

val quarantined : t -> bool

(** {2 Recovery lifecycle (PR 8)}

    A recovery-enabled guard walks the OS model through
    quarantine → {!link_reset} → {!rejoin} (probation) → {!promote}, or gives
    up with {!permakill}.  All counters stay zero and all flags false unless
    the guard drives them, so legacy runs are byte-identical. *)

val link_reset : t -> unit
(** The guard started a link-reset handshake toward the quarantined device. *)

val rejoin : t -> unit
(** The handshake completed: the device is back in service, on probation.
    Clears [quarantined]. *)

val promote : t -> unit
(** A clean probation window elapsed: the device is healthy again. *)

val permakill : t -> unit
(** The guard gave up on re-admission (too many quarantines, or the reset
    handshake died).  Terminal: the device stays quarantined. *)

val quarantine_count : t -> int
val reset_count : t -> int
val rejoin_count : t -> int
val promote_count : t -> int
val in_probation : t -> bool
val permakilled : t -> bool

val anomaly : t -> string -> unit
(** Note a watchdog anomaly (rule name).  Pure observation: never feeds
    {!error_count}, the policy, or {!check_fingerprint} — the OS merely keeps
    a ledger the operator can read. *)

val anomalies : t -> (string * int) list
(** [(rule, count)] in first-noted order. *)

val anomaly_count : t -> int

val error_kind_to_string : error_kind -> string
val all_error_kinds : error_kind list

val check_fingerprint : t -> Buffer.t -> unit
(** Append the behaviour-changing flags (disabled/killed/quarantined) to a
    canonical model-checker fingerprint; the error log is observational and
    excluded. *)
