type error_kind =
  | Perm_read_violation
  | Perm_write_violation
  | Bad_request_stable
  | Request_while_pending
  | Bad_response_type
  | Unsolicited_response
  | Response_timeout
  | Rate_limit_exceeded
  | Link_fault
  | Budget_exceeded

type policy = Log_only | Disable_accelerator | Kill_process

type t = {
  policy : policy;
  mutable log : (error_kind * Addr.t) list;  (* newest first *)
  mutable count : int;
  counts : (error_kind, int) Hashtbl.t;
  mutable disabled : bool;
  mutable killed : bool;
  mutable quarantined : bool;
  (* Recovery lifecycle bookkeeping (PR 8).  All zero / false unless a guard
     with recovery enabled drives the transitions, so legacy runs are
     untouched. *)
  mutable quarantines : int;
  mutable resets : int;
  mutable rejoins : int;
  mutable promotes : int;
  mutable probation : bool;
  mutable permakilled : bool;
  (* Watchdog anomaly notes (PR 10): pure observations from the metrics
     layer's anomaly watchdog.  Strictly advisory — they never feed [count],
     the policy, or the model-checker fingerprint. *)
  mutable anomaly_log : (string * int) list;  (* (rule, count), first-noted order, reversed *)
}

let create ?(policy = Log_only) () =
  {
    policy;
    log = [];
    count = 0;
    counts = Hashtbl.create 8;
    disabled = false;
    killed = false;
    quarantined = false;
    quarantines = 0;
    resets = 0;
    rejoins = 0;
    promotes = 0;
    probation = false;
    permakilled = false;
    anomaly_log = [];
  }

let policy t = t.policy

let report t kind addr =
  t.log <- (kind, addr) :: t.log;
  t.count <- t.count + 1;
  let prev = match Hashtbl.find_opt t.counts kind with Some n -> n | None -> 0 in
  Hashtbl.replace t.counts kind (prev + 1);
  match t.policy with
  | Log_only -> ()
  | Disable_accelerator -> t.disabled <- true
  | Kill_process ->
      t.disabled <- true;
      t.killed <- true

let error_count t = t.count
let count_of t kind = match Hashtbl.find_opt t.counts kind with Some n -> n | None -> 0
let log t = List.rev t.log
let accel_disabled t = t.disabled
let process_killed t = t.killed

let quarantine t =
  (* Record the quarantine but leave [disabled] alone: the quarantining
     guard already drops its accelerator's traffic itself, and the OS model
     may be shared by several guards in a topology — flipping the global
     disable here would take innocent neighbors offline with the victim. *)
  t.quarantined <- true;
  t.quarantines <- t.quarantines + 1;
  t.probation <- false

let quarantined t = t.quarantined

(* ---- recovery lifecycle (PR 8) ---- *)

let link_reset t = t.resets <- t.resets + 1

let rejoin t =
  (* The guard re-admitted the device: the OS sees it back in service, but
     on probation until a clean window elapses. *)
  t.quarantined <- false;
  t.probation <- true;
  t.rejoins <- t.rejoins + 1

let promote t =
  t.probation <- false;
  t.promotes <- t.promotes + 1

let permakill t =
  (* Terminal: the guard gave up on re-admission.  The device stays
     quarantined for the rest of the run. *)
  t.quarantined <- true;
  t.probation <- false;
  t.permakilled <- true

let quarantine_count t = t.quarantines
let reset_count t = t.resets
let rejoin_count t = t.rejoins
let promote_count t = t.promotes
let in_probation t = t.probation
let permakilled t = t.permakilled

(* ---- watchdog anomaly notes (PR 10, pure observer) ---- *)

let anomaly t rule =
  let rec bump = function
    | [] -> [ (rule, 1) ]
    | (r, n) :: rest -> if r = rule then (r, n + 1) :: rest else (r, n) :: bump rest
  in
  t.anomaly_log <- bump t.anomaly_log

let anomalies t = t.anomaly_log
let anomaly_count t = List.fold_left (fun a (_, n) -> a + n) 0 t.anomaly_log

let check_fingerprint t buf =
  (* Only the flags that change guard behaviour; the log and counters are
     observational. *)
  Buffer.add_string buf "os[";
  if t.disabled then Buffer.add_char buf 'd';
  if t.killed then Buffer.add_char buf 'k';
  if t.quarantined then Buffer.add_char buf 'q';
  (* Recovery flags appear only when a recovery-enabled guard has driven
     them, so legacy fingerprints (MODEL_BASELINE.json) are unchanged. *)
  if t.probation then Buffer.add_char buf 'p';
  if t.permakilled then Buffer.add_char buf 'x';
  Buffer.add_char buf ']'

let error_kind_to_string = function
  | Perm_read_violation -> "perm_read_violation (G0a)"
  | Perm_write_violation -> "perm_write_violation (G0b)"
  | Bad_request_stable -> "bad_request_stable (G1a)"
  | Request_while_pending -> "request_while_pending (G1b)"
  | Bad_response_type -> "bad_response_type (G2a)"
  | Unsolicited_response -> "unsolicited_response (G2b)"
  | Response_timeout -> "response_timeout (G2c)"
  | Rate_limit_exceeded -> "rate_limit_exceeded"
  | Link_fault -> "link_fault (lossy link)"
  | Budget_exceeded -> "budget_exceeded (hang budget)"

let all_error_kinds =
  [
    Perm_read_violation;
    Perm_write_violation;
    Bad_request_stable;
    Request_while_pending;
    Bad_response_type;
    Unsolicited_response;
    Response_timeout;
    Rate_limit_exceeded;
    Link_fault;
    Budget_exceeded;
  ]
