module Engine = Xguard_sim.Engine
module Group = Xguard_stats.Counter.Group
module Xg_core = Xguard_xg.Xg_core
module Spans = Xguard_obs.Spans

type get_tbe = {
  kind : Msg.get_kind;
  mutable peers_left : int;
  mutable mem_data : Data.t option;
  mutable peer_data : Data.t option;
  mutable shared_seen : bool;
  mutable born : Engine.time;  (* issue (or deferral-promotion) time, for spans *)
}

(* A writeback in flight to the directory.  [notify_core] distinguishes
   accelerator-initiated puts (the core is waiting for completion) from the
   port's own ownership relinquishments after a forwarded GetS. *)
type put_rec = {
  mutable data : Data.t;
  mutable dirty : bool;
  mutable lost_ownership : bool;
  notify_core : bool;
  is_owner : bool;  (* false for an unnecessary PutS: we hold no data *)
  born : Engine.time;  (* issue (or deferral) time, for spans *)
}

(* Fallback span transaction type when no crossing is open on the block. *)
let span_txn_of_kind = function
  | Msg.Get_m -> Spans.Get_m
  | Msg.Get_s | Msg.Get_s_only -> Spans.Get_s

type t = {
  engine : Engine.t;
  net : Net.t;
  name : string;
  node : Node.t;
  directory : Addr.t -> Node.t;
  use_get_s_only : bool;
  mutable core : Xg_core.t option;
  mutable peer_count : int;
  tbes : get_tbe Tbe_table.t;
  puts : (Addr.t, put_rec) Hashtbl.t;
  deferred_puts : (Addr.t, put_rec) Hashtbl.t;
  deferred_gets : (Addr.t, Msg.get_kind) Hashtbl.t;
  stats : Group.t;
  sid : Group.id array; (* interned hot stat counters, indexed like [hot_stats] *)
}

(* Hot per-event stat counters, interned once at creation (PR 4). *)
let hot_stats = [| "get_complete"; "fwd.GetS"; "fwd.GetS_only"; "fwd.GetM"; "writeback_complete" |]

let node t = t.node
let stats t = t.stats
let set_peer_count t n = t.peer_count <- n
let attach_core t core = t.core <- Some core
let outstanding t = Tbe_table.count t.tbes + Hashtbl.length t.puts

let core t =
  match t.core with
  | Some c -> c
  | None -> failwith (t.name ^ ": no Xg_core attached")

let send t ~dst body addr =
  let msg = { Msg.addr; body } in
  Net.send t.net ~src:t.node ~dst ~size:(Msg.size msg) msg

(* ---- host_port operations called by the core ---- *)

let issue_get t addr kind =
  let msg_kind =
    match kind with
    | `M -> Msg.Get_m
    | `S -> Msg.Get_s
    | `S_only -> if t.use_get_s_only then Msg.Get_s_only else Msg.Get_s
  in
  let tbe =
    {
      kind = msg_kind;
      peers_left = t.peer_count;
      mem_data = None;
      peer_data = None;
      shared_seen = false;
      born = Engine.now t.engine;
    }
  in
  (match Tbe_table.alloc t.tbes addr tbe with
  | `Ok -> ()
  | `Busy | `Full -> failwith (t.name ^ ": get while transaction open"));
  if Hashtbl.mem t.puts addr then begin
    (* A writeback of this block (possibly our own ownership relinquishment,
       which the guard core does not see) is still in flight.  Re-requesting
       now could let the stale Put clear our fresh ownership at the directory
       later; wait for the writeback to settle, like any host cache would. *)
    Group.incr t.stats "get_deferred_behind_put";
    Hashtbl.replace t.deferred_gets addr msg_kind
  end
  else send t ~dst:(t.directory addr) (Msg.Get { kind = msg_kind }) addr

let start_put t addr ~data ~dirty ~notify_core ~is_owner =
  let p =
    { data; dirty; lost_ownership = false; notify_core; is_owner; born = Engine.now t.engine }
  in
  if Hashtbl.mem t.puts addr then begin
    (* A Put handshake for this block is already open.  This happens when a
       core-initiated put and an ownership relinquishment (handle_fwd) race
       on one address.  Issuing a second Put would send two handshakes but
       leave only one record: the first directory response consumes the
       overwritten record — losing its [notify_core] bit, wedging the guard
       core in B_put — and the second response finds no record at all.
       Defer instead, like [issue_get] defers gets behind puts, and promote
       in [finish_put]. *)
    Group.incr t.stats "put_deferred_behind_put";
    Hashtbl.replace t.deferred_puts addr p
  end
  else begin
    Hashtbl.replace t.puts addr p;
    send t ~dst:(t.directory addr) Msg.Put addr
  end

let issue_put t addr kind =
  match kind with
  | `S ->
      (* The Hammer host evicts shared blocks silently; an explicit Put from
         the guard is the "unnecessary PutS" the paper quantifies.  The
         directory Nacks it (we are not the owner) and we complete. *)
      start_put t addr ~data:Data.zero ~dirty:false ~notify_core:true ~is_owner:false
  | `E data -> start_put t addr ~data ~dirty:false ~notify_core:true ~is_owner:true
  | `M data -> start_put t addr ~data ~dirty:true ~notify_core:true ~is_owner:true

let host_port t =
  {
    Xg_core.get = (fun addr kind -> issue_get t addr kind);
    Xg_core.put = (fun addr kind -> issue_put t addr kind);
    Xg_core.puts_needed = false;
    Xg_core.has_get_s_only = t.use_get_s_only;
  }

(* ---- get completion ---- *)

let try_complete t addr (tbe : get_tbe) =
  if tbe.peers_left = 0 && tbe.mem_data <> None then begin
    let received =
      match tbe.peer_data with
      | Some d -> d
      | None -> ( match tbe.mem_data with Some d -> d | None -> assert false)
    in
    let grant, exclusive =
      match tbe.kind with
      | Msg.Get_m -> (`M received, true)
      | Msg.Get_s ->
          if tbe.peer_data <> None || tbe.shared_seen then (`S received, false)
          else (`E received, true)
      | Msg.Get_s_only -> (`S received, false)
    in
    Tbe_table.dealloc t.tbes addr;
    send t ~dst:(t.directory addr) (Msg.Unblock { exclusive }) addr;
    Group.incr_id t.stats t.sid.(0) (* get_complete *);
    if Spans.on () then begin
      let a = Addr.to_int addr and now = Engine.now t.engine in
      let born = tbe.born and kind = tbe.kind in
      Spans.deferred ~now (fun () ->
          let span, txn =
            match Spans.lookup ~addr:a with
            | Some (span, txn) -> (span, txn)
            | None -> (0, span_txn_of_kind kind)
          in
          Spans.record Spans.Host_fetch txn ~span ~addr:a ~ts:born ~dur:(now - born))
    end;
    Xg_core.granted (core t) addr grant
  end

let handle_response t addr (body : Msg.body) =
  match Tbe_table.find t.tbes addr with
  | None -> Group.incr t.stats "error.response_without_txn"
  | Some tbe ->
      (match body with
      | Msg.Mem_data { data } -> tbe.mem_data <- Some data
      | Msg.Peer_ack { shared } ->
          tbe.peers_left <- tbe.peers_left - 1;
          if shared then tbe.shared_seen <- true
      | Msg.Peer_data { data; dirty = _ } ->
          (* Response counting (paper modification): a data message counts as
             a response whether or not one was expected. *)
          tbe.peers_left <- tbe.peers_left - 1;
          if tbe.peer_data = None then tbe.peer_data <- Some data
      | _ -> assert false);
      try_complete t addr tbe

(* ---- forwarded requests ---- *)

let respond_from_put t addr (p : put_rec) (kind : Msg.get_kind) ~requestor =
  if p.lost_ownership then
    (* II: ownership already forwarded away; our copy is stale. *)
    send t ~dst:requestor (Msg.Peer_ack { shared = false }) addr
  else begin
    send t ~dst:requestor (Msg.Peer_data { data = p.data; dirty = p.dirty }) addr;
    if kind = Msg.Get_m then p.lost_ownership <- true
  end

let handle_fwd t addr (kind : Msg.get_kind) ~requestor =
  Group.incr_id t.stats
    t.sid.(match kind with Msg.Get_s -> 1 | Msg.Get_s_only -> 2 | Msg.Get_m -> 3);
  match Hashtbl.find_opt t.puts addr with
  | Some p when p.is_owner -> respond_from_put t addr p kind ~requestor
  | Some _ | None -> (
      match kind with
      | Msg.Get_m ->
          Xg_core.host_request (core t) addr ~need:Xg_core.Fwd_m ~reply:(fun reply ->
              match reply with
              | Xg_core.Reply_ack { shared } ->
                  send t ~dst:requestor (Msg.Peer_ack { shared }) addr
              | Xg_core.Reply_clean data ->
                  send t ~dst:requestor (Msg.Peer_data { data; dirty = false }) addr
              | Xg_core.Reply_dirty data ->
                  send t ~dst:requestor (Msg.Peer_data { data; dirty = true }) addr)
      | Msg.Get_s | Msg.Get_s_only ->
          Xg_core.host_request (core t) addr ~need:Xg_core.Fwd_s ~reply:(fun reply ->
              match reply with
              | Xg_core.Reply_ack { shared } ->
                  send t ~dst:requestor (Msg.Peer_ack { shared }) addr
              | Xg_core.Reply_clean data | Xg_core.Reply_dirty data ->
                  let dirty = match reply with Xg_core.Reply_dirty _ -> true | _ -> false in
                  (* The interface has no owned-shared state: forward the
                     data, then relinquish ownership to the directory
                     (paper §3.2.1). *)
                  send t ~dst:requestor (Msg.Peer_data { data; dirty }) addr;
                  Group.incr t.stats "ownership_relinquished";
                  start_put t addr ~data ~dirty ~notify_core:false ~is_owner:true))

(* ---- writeback responses ---- *)

let span_put_done t addr (p : put_rec) =
  if Spans.on () then begin
    let a = Addr.to_int addr and now = Engine.now t.engine in
    let born = p.born and notify_core = p.notify_core in
    Spans.deferred ~now (fun () ->
        (match Spans.lookup_put ~addr:a with
        | Some (span, txn) ->
            Spans.record Spans.Host_writeback txn ~span ~addr:a ~ts:born
              ~dur:(now - born)
        | None ->
            (* Port-initiated relinquishment (or a quarantine hand-back): no
               crossing to attach to, so it gets its own span. *)
            Spans.record Spans.Host_relinquish Spans.Inv ~span:(Spans.fresh_id ())
              ~addr:a ~ts:born ~dur:(now - born));
        if notify_core then Spans.put_settled ~addr:a ~now)
  end

let finish_put t addr (p : put_rec) =
  Hashtbl.remove t.puts addr;
  span_put_done t addr p;
  (* A deferred put takes the slot first; a deferred get stays parked behind
     it (and is re-checked when that put in turn finishes). *)
  (match Hashtbl.find_opt t.deferred_puts addr with
  | Some d ->
      Hashtbl.remove t.deferred_puts addr;
      if Spans.on () then begin
        let a = Addr.to_int addr and now = Engine.now t.engine in
        let born = d.born and is_owner = d.is_owner in
        Spans.deferred ~now (fun () ->
            let span, txn =
              match Spans.lookup_put ~addr:a with
              | Some (span, txn) -> (span, txn)
              | None -> (0, if is_owner then Spans.Put_m else Spans.Put_s)
            in
            Spans.record Spans.Host_defer txn ~span ~addr:a ~ts:born ~dur:(now - born))
      end;
      start_put t addr ~data:d.data ~dirty:d.dirty ~notify_core:d.notify_core
        ~is_owner:d.is_owner
  | None -> (
      match Hashtbl.find_opt t.deferred_gets addr with
      | Some kind ->
          Hashtbl.remove t.deferred_gets addr;
          if Spans.on () then begin
            match Tbe_table.find t.tbes addr with
            | Some tbe ->
                let a = Addr.to_int addr and now = Engine.now t.engine in
                let born = tbe.born in
                (* Re-stamp so [host.fetch] measures only the directory
                   transaction itself, not the wait behind the put. *)
                tbe.born <- now;
                Spans.deferred ~now (fun () ->
                    let span, txn =
                      match Spans.lookup ~addr:a with
                      | Some (span, txn) -> (span, txn)
                      | None -> (0, span_txn_of_kind kind)
                    in
                    Spans.record Spans.Host_defer txn ~span ~addr:a ~ts:born
                      ~dur:(now - born))
            | None -> ()
          end;
          send t ~dst:(t.directory addr) (Msg.Get { kind }) addr
      | None -> ()));
  if p.notify_core then Xg_core.put_complete (core t) addr

let handle_wb_ack t addr =
  match Hashtbl.find_opt t.puts addr with
  | Some p ->
      send t ~dst:(t.directory addr) (Msg.Wb_data { data = p.data; dirty = p.dirty }) addr;
      Group.incr_id t.stats t.sid.(4) (* writeback_complete *);
      finish_put t addr p
  | None -> Group.incr t.stats "error.wb_ack_without_put"

let handle_wb_nack t addr =
  match Hashtbl.find_opt t.puts addr with
  | Some p ->
      (* Expected when ownership raced away (or for an unnecessary PutS the
         directory rejects); the block is simply gone. *)
      Group.incr t.stats "writeback_nacked";
      finish_put t addr p
  | None -> Group.incr t.stats "error.wb_nack_without_put"

let deliver t (msg : Msg.t) =
  let addr = msg.Msg.addr in
  match msg.Msg.body with
  | Msg.Fwd { kind; requestor } -> handle_fwd t addr kind ~requestor
  | Msg.Mem_data _ | Msg.Peer_ack _ | Msg.Peer_data _ -> handle_response t addr msg.Msg.body
  | Msg.Wb_ack -> handle_wb_ack t addr
  | Msg.Wb_nack -> handle_wb_nack t addr
  | Msg.Get _ | Msg.Put | Msg.Wb_data _ | Msg.Unblock _ ->
      Group.incr t.stats "error.directory_bound_message"

(* ---- model-checker support ---- *)

let check_fingerprint t buf =
  Buffer.add_string buf "xport[";
  Buffer.add_string buf t.name;
  Buffer.add_char buf ']';
  Tbe_table.to_list t.tbes
  |> List.sort (fun (a, _) (b, _) -> Addr.compare a b)
  |> List.iter (fun (addr, (g : get_tbe)) ->
         Buffer.add_string buf
           (Printf.sprintf "t%d:%s:%d:%d:%d:%b;" (Addr.to_int addr)
              (Msg.get_kind_to_string g.kind) g.peers_left
              (match g.mem_data with None -> -1 | Some d -> (d : Data.t))
              (match g.peer_data with None -> -1 | Some d -> (d : Data.t))
              g.shared_seen));
  let dump_puts label table =
    Hashtbl.fold (fun addr p acc -> (addr, p) :: acc) table []
    |> List.sort (fun (a, _) (b, _) -> Addr.compare a b)
    |> List.iter (fun (addr, (p : put_rec)) ->
           Buffer.add_string buf
             (Printf.sprintf "%s%d:%d:%b:%b:%b:%b;" label (Addr.to_int addr)
                (p.data : Data.t) p.dirty p.lost_ownership p.notify_core p.is_owner))
  in
  dump_puts "p" t.puts;
  dump_puts "d" t.deferred_puts;
  Hashtbl.fold (fun addr k acc -> (addr, k) :: acc) t.deferred_gets []
  |> List.sort (fun (a, _) (b, _) -> Addr.compare a b)
  |> List.iter (fun (addr, kind) ->
         Buffer.add_string buf
           (Printf.sprintf "g%d:%s;" (Addr.to_int addr) (Msg.get_kind_to_string kind)))

let check_owner_puts t =
  let harvest table acc =
    Hashtbl.fold
      (fun addr (p : put_rec) acc ->
        if p.is_owner && not p.lost_ownership then (addr, p.data) :: acc else acc)
      table acc
  in
  harvest t.puts (harvest t.deferred_puts [])
  |> List.sort (fun (a, _) (b, _) -> Addr.compare a b)

let create ~engine ~net ~name ~node ~directory ?(use_get_s_only = true) () =
  let stats = Group.create (name ^ ".stats") in
  let t =
    {
      engine;
      net;
      name;
      node;
      directory;
      use_get_s_only;
      core = None;
      peer_count = 0;
      tbes = Tbe_table.create ~capacity:128 ();
      puts = Hashtbl.create 16;
      deferred_puts = Hashtbl.create 8;
      deferred_gets = Hashtbl.create 8;
      stats;
      sid = Array.map (Group.intern stats) hot_stats;
    }
  in
  Net.register net node (fun ~src:_ msg -> deliver t msg);
  if Spans.on () then
    Spans.add_gauge ~name:(name ^ ".outstanding") (fun () -> outstanding t);
  t
