module Engine = Xguard_sim.Engine
module Group = Xguard_stats.Counter.Group
module Trace = Xguard_trace.Trace
module Coverage = Xguard_trace.Coverage

type variant = Baseline | Xg_ready

exception Protocol_error of string

type stable = St_s | St_e | St_o | St_m

(* Base of an open Get transaction: what the cache still holds while the
   request is in flight.  Forwarded requests race with the transaction and
   downgrade the base. *)
type base = Base_none | Base_sharer | Base_owner

type get_tbe = {
  kind : Msg.get_kind;
  mutable base : base;
  mutable peers_left : int;
  mutable mem_data : Data.t option;
  mutable peer_data : Data.t option;
  mutable peer_data_count : int;
  mutable shared_seen : bool;
  access : Access.t;
  on_done : Data.t -> unit;
}

type lstate =
  | Stable of stable
  | Get_pending  (* details live in the TBE *)
  | Put_pending of { mutable lost_ownership : bool }

type line = { mutable st : lstate; mutable data : Data.t; mutable dirty : bool }

type t = {
  engine : Engine.t;
  net : Net.t;
  name : string;
  node : Node.t;
  directory : Addr.t -> Node.t;
  variant : variant;
  hit_latency : int;
  array : line Cache_array.t;
  tbes : get_tbe Tbe_table.t;
  mutable peer_count : int;
  mutable pending_puts : int;
  stats : Group.t;
  sid : Group.id array; (* interned hot stat counters, indexed like [hot_stats] *)
  coverage : Group.t;
  covm : Coverage.matrix;
}

(* Hot per-event stat counters, interned once at creation (PR 4). *)
let hot_stats =
  [| "load_hit"; "store_hit"; "miss"; "get_complete"; "writeback_complete"; "silent_s_eviction" |]

let name t = t.name
let node t = t.node
let stats t = t.stats
let coverage t = t.coverage
let outstanding t = Tbe_table.count t.tbes + t.pending_puts
let set_peer_count t n = t.peer_count <- n

(* State/event indices into [coverage_space]'s lists (PR 4). *)
let state_names = [| "I"; "IS"; "IM"; "SM"; "OM"; "S"; "E"; "O"; "M"; "MI"; "II" |]

let state_idx line tbe =
  match (line, tbe) with
  | _, Some g -> (
      match (g.kind, g.base) with
      | Msg.Get_m, Base_owner -> 4 (* OM *)
      | Msg.Get_m, Base_sharer -> 3 (* SM *)
      | Msg.Get_m, Base_none -> 2 (* IM *)
      | (Msg.Get_s | Msg.Get_s_only), _ -> 1 (* IS *))
  | Some { st = Stable s; _ }, None -> (
      match s with St_s -> 5 | St_e -> 6 | St_o -> 7 | St_m -> 8)
  | Some { st = Put_pending { lost_ownership = false }; _ }, None -> 9 (* MI *)
  | Some { st = Put_pending { lost_ownership = true }; _ }, None -> 10 (* II *)
  | Some { st = Get_pending; _ }, None -> 1 (* IS; unreachable: TBE exists *)
  | None, None -> 0 (* I *)

let event_names =
  [|
    "Load"; "Store"; "Replacement_S"; "Replacement_owned"; "Fwd_GetS"; "Fwd_GetS_only";
    "Fwd_GetM"; "MemData"; "PeerAck"; "PeerData"; "WbAck"; "WbNack";
  |]

let e_load = 0
let e_store = 1
let e_repl_s = 2
let e_repl_owned = 3
let e_mem_data = 7
let e_peer_ack = 8
let e_peer_data = 9
let e_wb_ack = 10
let e_wb_nack = 11
let event_of_fwd = function Msg.Get_s -> 4 | Msg.Get_s_only -> 5 | Msg.Get_m -> 6

let visit t addr event =
  let line = Cache_array.find t.array addr in
  let tbe = Tbe_table.find t.tbes addr in
  let state = state_idx line tbe in
  Coverage.hit t.covm ~state ~event;
  if Trace.on () then
    Trace.transition ~cycle:(Engine.now t.engine) ~controller:t.name
      ~addr:(Addr.to_int addr) ~state:state_names.(state) ~event:event_names.(event) ()

let coverage_space =
  let states = [ "I"; "IS"; "IM"; "SM"; "OM"; "S"; "E"; "O"; "M"; "MI"; "II" ] in
  let transient = [ "IS"; "IM"; "SM"; "OM" ] in
  let possible state event =
    match event with
    | "Load" | "Store" -> List.mem state [ "I"; "S"; "E"; "O"; "M" ]
    | "Replacement_S" -> state = "S"
    | "Replacement_owned" -> List.mem state [ "E"; "O"; "M" ]
    | "Fwd_GetS" | "Fwd_GetS_only" | "Fwd_GetM" -> true
    | "MemData" | "PeerAck" | "PeerData" -> List.mem state transient
    | "WbAck" -> state = "MI"
    | "WbNack" -> state = "II"
    | _ -> false
  in
  Xguard_trace.Coverage.space ~name:"hammer.l1l2" ~states
    ~events:
      [ "Load"; "Store"; "Replacement_S"; "Replacement_owned"; "Fwd_GetS"; "Fwd_GetS_only";
        "Fwd_GetM"; "MemData"; "PeerAck"; "PeerData"; "WbAck"; "WbNack" ]
    ~possible ()

let send t ~dst body addr =
  let msg = { Msg.addr; body } in
  Net.send t.net ~src:t.node ~dst ~size:(Msg.size msg) msg

let error t what =
  Group.incr t.stats ("error." ^ what);
  match t.variant with
  | Baseline -> raise (Protocol_error (t.name ^ ": " ^ what))
  | Xg_ready -> ()

let complete t ~on_done value =
  Engine.schedule t.engine ~delay:t.hit_latency
    ~tag:(Engine.pack_tag ~ctrl:(Node.id t.node) ~addr:(-1))
    (fun () -> on_done value)

(* ------- CPU side ------- *)

let start_eviction t addr (line : line) stable =
  match stable with
  | St_s ->
      (* Silent eviction of shared blocks (the paper relies on this: XG does
         not pass PutS to this host). *)
      Group.incr_id t.stats t.sid.(5) (* silent_s_eviction *);
      visit t addr e_repl_s;
      Cache_array.remove t.array addr
  | St_e | St_o | St_m ->
      visit t addr e_repl_owned;
      line.st <- Put_pending { lost_ownership = false };
      t.pending_puts <- t.pending_puts + 1;
      send t ~dst:(t.directory addr) Msg.Put addr

let alloc_get t addr kind ~base (access : Access.t) ~on_done =
  let tbe =
    {
      kind;
      base;
      peers_left = t.peer_count;
      mem_data = None;
      peer_data = None;
      peer_data_count = 0;
      shared_seen = false;
      access;
      on_done;
    }
  in
  match Tbe_table.alloc t.tbes addr tbe with
  | `Ok ->
      if Trace.on () then
        Trace.tbe_alloc ~cycle:(Engine.now t.engine) ~controller:t.name
          ~addr:(Addr.to_int addr);
      send t ~dst:(t.directory addr) (Msg.Get { kind }) addr;
      true
  | `Full | `Busy -> false

let issue t (access : Access.t) ~on_done =
  let addr = access.Access.addr in
  match Cache_array.find t.array addr with
  | Some line -> (
      Cache_array.touch t.array addr;
      match (line.st, access.Access.op) with
      | Stable (St_m | St_e | St_o | St_s), Access.Load ->
          Group.incr_id t.stats t.sid.(0) (* load_hit *);
          visit t addr e_load;
          complete t ~on_done line.data;
          true
      | Stable St_m, Access.Store d ->
          Group.incr_id t.stats t.sid.(1) (* store_hit *);
          visit t addr e_store;
          line.data <- d;
          complete t ~on_done d;
          true
      | Stable St_e, Access.Store d ->
          (* Silent E -> M upgrade. *)
          Group.incr_id t.stats t.sid.(1) (* store_hit *);
          visit t addr e_store;
          line.st <- Stable St_m;
          line.dirty <- true;
          line.data <- d;
          complete t ~on_done d;
          true
      | Stable St_o, Access.Store _ ->
          visit t addr e_store;
          if alloc_get t addr Msg.Get_m ~base:Base_owner access ~on_done then begin
            line.st <- Get_pending;
            true
          end
          else false
      | Stable St_s, Access.Store _ ->
          visit t addr e_store;
          if alloc_get t addr Msg.Get_m ~base:Base_sharer access ~on_done then begin
            line.st <- Get_pending;
            true
          end
          else false
      | (Get_pending | Put_pending _), _ -> false)
  | None ->
      if not (Cache_array.has_room t.array addr) then begin
        (match Cache_array.victim t.array addr with
        | Some (victim_addr, victim_line) -> (
            match victim_line.st with
            | Stable s -> start_eviction t victim_addr victim_line s
            | Get_pending | Put_pending _ -> ())
        | None -> ());
        false
      end
      else begin
        let kind =
          match access.Access.op with Access.Load -> Msg.Get_s | Access.Store _ -> Msg.Get_m
        in
        visit t addr (match kind with Msg.Get_s -> e_load | _ -> e_store);
        Group.incr_id t.stats t.sid.(2) (* miss *);
        if alloc_get t addr kind ~base:Base_none access ~on_done then begin
          Cache_array.insert t.array addr { st = Get_pending; data = Data.zero; dirty = false };
          true
        end
        else false
      end

let cpu_port t = { Access.issue = (fun access ~on_done -> issue t access ~on_done) }

(* ------- Forwarded requests ------- *)

let respond_data t ~requestor addr (line : line) =
  send t ~dst:requestor (Msg.Peer_data { data = line.data; dirty = line.dirty }) addr

let handle_fwd t addr (kind : Msg.get_kind) ~requestor =
  visit t addr (event_of_fwd kind);
  match Tbe_table.find t.tbes addr with
  | Some tbe -> (
      let line = Cache_array.find t.array addr in
      match (tbe.base, kind) with
      | Base_owner, Msg.Get_m ->
          (match line with
          | Some l -> respond_data t ~requestor addr l
          | None -> error t "owner base without a line");
          tbe.base <- Base_none
      | Base_owner, (Msg.Get_s | Msg.Get_s_only) -> (
          match line with
          | Some l -> respond_data t ~requestor addr l
          | None -> error t "owner base without a line")
      | Base_sharer, Msg.Get_m ->
          send t ~dst:requestor (Msg.Peer_ack { shared = false }) addr;
          tbe.base <- Base_none
      | Base_sharer, (Msg.Get_s | Msg.Get_s_only) ->
          send t ~dst:requestor (Msg.Peer_ack { shared = true }) addr
      | Base_none, _ -> send t ~dst:requestor (Msg.Peer_ack { shared = false }) addr)
  | None -> (
      match Cache_array.find t.array addr with
      | None -> send t ~dst:requestor (Msg.Peer_ack { shared = false }) addr
      | Some line -> (
          match (line.st, kind) with
          | Stable (St_m | St_e | St_o), Msg.Get_m ->
              respond_data t ~requestor addr line;
              Cache_array.remove t.array addr
          | Stable St_m, (Msg.Get_s | Msg.Get_s_only) ->
              respond_data t ~requestor addr line;
              line.st <- Stable St_o
          | Stable St_e, (Msg.Get_s | Msg.Get_s_only) ->
              respond_data t ~requestor addr line;
              line.st <- Stable St_o
          | Stable St_o, (Msg.Get_s | Msg.Get_s_only) -> respond_data t ~requestor addr line
          | Stable St_s, Msg.Get_m ->
              send t ~dst:requestor (Msg.Peer_ack { shared = false }) addr;
              Cache_array.remove t.array addr
          | Stable St_s, (Msg.Get_s | Msg.Get_s_only) ->
              send t ~dst:requestor (Msg.Peer_ack { shared = true }) addr
          | Put_pending { lost_ownership = true }, _ ->
              (* II: ownership already forwarded away; our copy is stale. *)
              send t ~dst:requestor (Msg.Peer_ack { shared = false }) addr
          | Put_pending p, Msg.Get_m ->
              respond_data t ~requestor addr line;
              p.lost_ownership <- true
          | Put_pending _, (Msg.Get_s | Msg.Get_s_only) -> respond_data t ~requestor addr line
          | Get_pending, _ ->
              (* A Get_pending line always has a TBE; reaching here means state
                 tracking broke. *)
              error t "Get_pending line without TBE";
              send t ~dst:requestor (Msg.Peer_ack { shared = false }) addr))

(* ------- Response collection ------- *)

let try_complete t addr (tbe : get_tbe) =
  if tbe.peers_left = 0 && tbe.mem_data <> None then begin
    let line =
      match Cache_array.find t.array addr with
      | Some l -> l
      | None -> raise (Protocol_error (t.name ^ ": completing a get with no line"))
    in
    (match t.variant with
    | Baseline ->
        if tbe.peer_data_count > 1 then
          raise (Protocol_error (t.name ^ ": multiple data responses in baseline mode"))
    | Xg_ready -> if tbe.peer_data_count > 1 then Group.incr t.stats "error.multiple_data");
    let received =
      match tbe.peer_data with
      | Some d -> d
      | None -> ( match tbe.mem_data with Some d -> d | None -> assert false)
    in
    let final_value, final_state, exclusive =
      match tbe.kind with
      | Msg.Get_m ->
          let stored =
            match tbe.access.Access.op with
            | Access.Store d -> d
            | Access.Load ->
                (* A Get_m for a load only happens for the XG port; the CPU
                   controller upgrades only on stores. *)
                if tbe.base = Base_owner then line.data else received
          in
          (stored, St_m, true)
      | Msg.Get_s ->
          if tbe.peer_data <> None || tbe.shared_seen then (received, St_s, false)
          else (received, St_e, true)
      | Msg.Get_s_only -> (received, St_s, false)
    in
    line.data <- final_value;
    line.dirty <- (final_state = St_m);
    line.st <- Stable final_state;
    Tbe_table.dealloc t.tbes addr;
    if Trace.on () then
      Trace.tbe_free ~cycle:(Engine.now t.engine) ~controller:t.name
        ~addr:(Addr.to_int addr);
    send t ~dst:(t.directory addr) (Msg.Unblock { exclusive }) addr;
    Group.incr_id t.stats t.sid.(3) (* get_complete *);
    complete t ~on_done:tbe.on_done final_value
  end

let handle_response t addr (body : Msg.body) =
  match Tbe_table.find t.tbes addr with
  | None -> error t "response without open transaction"
  | Some tbe -> (
      (match body with
      | Msg.Mem_data { data } ->
          visit t addr e_mem_data;
          if tbe.mem_data <> None then error t "duplicate memory data"
          else tbe.mem_data <- Some data
      | Msg.Peer_ack { shared } ->
          visit t addr e_peer_ack;
          tbe.peers_left <- tbe.peers_left - 1;
          if shared then tbe.shared_seen <- true
      | Msg.Peer_data { data; dirty = _ } ->
          visit t addr e_peer_data;
          tbe.peers_left <- tbe.peers_left - 1;
          tbe.peer_data_count <- tbe.peer_data_count + 1;
          if tbe.peer_data = None then tbe.peer_data <- Some data
      | _ -> assert false);
      if tbe.peers_left < 0 then error t "more peer responses than peers"
      else try_complete t addr tbe)

(* ------- Writeback responses ------- *)

let handle_wb_ack t addr =
  match Cache_array.find t.array addr with
  | Some ({ st = Put_pending { lost_ownership = false }; _ } as line) ->
      visit t addr e_wb_ack;
      send t ~dst:(t.directory addr) (Msg.Wb_data { data = line.data; dirty = line.dirty }) addr;
      Cache_array.remove t.array addr;
      t.pending_puts <- t.pending_puts - 1;
      Group.incr_id t.stats t.sid.(4) (* writeback_complete *)
  | Some { st = Put_pending { lost_ownership = true }; _ } ->
      (* The directory believed us owner after all; it is waiting for data.
         Our data is stale (the new owner has fresher data), but the memory
         value will be overridden by the true owner's eventual writeback.
         This cannot happen with a correct directory: ownership moved, so the
         directory Nacks.  Treat as a protocol error. *)
      error t "WbAck after ownership was forwarded away"
  | Some _ | None -> error t "WbAck with no pending writeback"

let handle_wb_nack t addr =
  match Cache_array.find t.array addr with
  | Some { st = Put_pending { lost_ownership = true }; _ } ->
      visit t addr e_wb_nack;
      Cache_array.remove t.array addr;
      t.pending_puts <- t.pending_puts - 1;
      Group.incr t.stats "writeback_nacked"
  | Some ({ st = Put_pending { lost_ownership = false }; _ } as _line) ->
      (* Paper modification: sink unexpected Nacks and report an error rather
         than wedging.  Free the line to preserve liveness. *)
      error t "unexpected WbNack while still owner";
      Group.incr t.stats "unexpected_nack_sunk";
      Cache_array.remove t.array addr;
      t.pending_puts <- t.pending_puts - 1
  | Some _ | None ->
      error t "WbNack with no pending writeback";
      Group.incr t.stats "unexpected_nack_sunk"

let deliver t (msg : Msg.t) =
  let addr = msg.Msg.addr in
  match msg.Msg.body with
  | Msg.Fwd { kind; requestor } -> handle_fwd t addr kind ~requestor
  | Msg.Mem_data _ | Msg.Peer_ack _ | Msg.Peer_data _ -> handle_response t addr msg.Msg.body
  | Msg.Wb_ack -> handle_wb_ack t addr
  | Msg.Wb_nack -> handle_wb_nack t addr
  | Msg.Get _ | Msg.Put | Msg.Wb_data _ | Msg.Unblock _ ->
      error t "directory-bound message delivered to a cache"

let probe t addr =
  match (Cache_array.find t.array addr, Tbe_table.find t.tbes addr) with
  | None, None -> `I
  | _, Some _ -> `Transient
  | Some { st = Stable St_s; _ }, None -> `S
  | Some { st = Stable St_e; _ }, None -> `E
  | Some { st = Stable St_o; _ }, None -> `O
  | Some { st = Stable St_m; _ }, None -> `M
  | Some { st = Get_pending | Put_pending _; _ }, None -> `Transient

(* ---- model-checker support ---- *)

let check_lines t =
  Cache_array.to_list t.array
  |> List.map (fun (addr, line) ->
         let cls =
           match (line.st, Tbe_table.find t.tbes addr) with
           | Stable s, None ->
               (match s with St_s -> `S | St_e -> `E | St_o -> `O | St_m -> `M)
           | _ -> `T
         in
         (addr, cls, line.data))
  |> List.sort (fun (a, _, _) (b, _, _) -> Addr.compare a b)

let stable_name = function St_s -> 'S' | St_e -> 'E' | St_o -> 'O' | St_m -> 'M'

let check_fingerprint t buf =
  Buffer.add_string buf "l1l2[";
  Buffer.add_string buf t.name;
  Buffer.add_char buf ']';
  Cache_array.to_list t.array
  |> List.sort (fun (a, _) (b, _) -> Addr.compare a b)
  |> List.iter (fun (addr, line) ->
         Buffer.add_string buf (Printf.sprintf "a%d:" (Addr.to_int addr));
         (match line.st with
         | Stable s -> Buffer.add_char buf (stable_name s)
         | Get_pending -> Buffer.add_char buf 'g'
         | Put_pending { lost_ownership } ->
             Buffer.add_char buf (if lost_ownership then 'i' else 'p'));
         Buffer.add_string buf (Printf.sprintf ":%d:%b;" (line.data : Data.t) line.dirty));
  Tbe_table.to_list t.tbes
  |> List.sort (fun (a, _) (b, _) -> Addr.compare a b)
  |> List.iter (fun (addr, g) ->
         Buffer.add_string buf
           (Printf.sprintf "t%d:%s:%d:%d:%d:%d:%b:%s;" (Addr.to_int addr)
              (Msg.get_kind_to_string g.kind)
              (match g.base with Base_none -> 0 | Base_sharer -> 1 | Base_owner -> 2)
              g.peers_left
              (match g.mem_data with None -> -1 | Some d -> (d : Data.t))
              (match g.peer_data with None -> -1 | Some d -> (d : Data.t))
              g.shared_seen
              (Format.asprintf "%a" Access.pp g.access)))

let create ~engine ~net ~name ~node ~directory ~variant ~sets ~ways ?(hit_latency = 2)
    ?(tbe_capacity = 16) () =
  let stats = Group.create (name ^ ".stats") in
  let coverage = Group.create (name ^ ".coverage") in
  let t =
    {
      engine;
      net;
      name;
      node;
      directory;
      variant;
      hit_latency;
      array = Cache_array.create ~sets ~ways ();
      tbes = Tbe_table.create ~capacity:tbe_capacity ();
      peer_count = 0;
      pending_puts = 0;
      stats;
      sid = Array.map (Group.intern stats) hot_stats;
      coverage;
      covm = Coverage.intern_matrix coverage_space coverage;
    }
  in
  Net.register net node (fun ~src:_ msg -> deliver t msg);
  t
