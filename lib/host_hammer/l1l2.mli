(** Combined private L1/L2 cache controller of the Hammer-like host protocol.

    As in gem5's MOESI_hammer, the private L1I/L1D/L2 are one controller with
    stable states M, O, E, S, I.  Requests go to the directory; the directory
    broadcasts a Fwd to every other cache and each cache responds to the
    requestor (data if owner, ack otherwise), so the requestor counts
    responses.  Writebacks of owned blocks are two-phase and can be Nacked
    when they race with an ownership transfer.

    Two of the paper's host-protocol modifications for Transactional Crossing
    Guard live here and are controlled by {!variant}:
    - [Xg_ready] counts *responses* rather than acks/data separately, so zero
      or multiple data copies do not derail a transaction (Guarantee 2a), and
      sinks unexpected WbNacks with an error report instead of failing
      (Guarantee 1a).
    - [Baseline] enforces the unmodified protocol's expectations strictly
      (exactly one data source, no unexpected Nacks) and raises
      {!Protocol_error} on violation — used to check that correct
      configurations never rely on the relaxations. *)

type variant = Baseline | Xg_ready

exception Protocol_error of string

type t

val create :
  engine:Xguard_sim.Engine.t ->
  net:Net.t ->
  name:string ->
  node:Node.t ->
  directory:(Addr.t -> Node.t) ->
  variant:variant ->
  sets:int ->
  ways:int ->
  ?hit_latency:int ->
  ?tbe_capacity:int ->
  unit ->
  t
(** Registers [node] on [net].  [directory] routes a block to the directory
    shard that serves it — with a single directory it is a constant function;
    with an interleaved directory it is [shard (block mod num_shards)].  Call
    {!set_peer_count} before running. *)

val set_peer_count : t -> int -> unit
(** Number of other caches on the network (every one of them responds to each
    forwarded request). *)

val node : t -> Node.t
val name : t -> string
val cpu_port : t -> Access.port
val probe : t -> Addr.t -> [ `I | `S | `E | `O | `M | `Transient ]
val stats : t -> Xguard_stats.Counter.Group.t
val coverage : t -> Xguard_stats.Counter.Group.t

val coverage_space : Xguard_trace.Coverage.space
(** The (state × event) vocabulary {!coverage} counters live in: stable MOESI
    states plus the get transients (IS/IM/SM/OM keyed by TBE kind and base)
    and writeback transients (MI, and II after ownership was forwarded
    away). *)

val outstanding : t -> int
(** Open transactions (get TBEs plus pending writebacks). *)

(* ---- model-checker support (lib/check) ---- *)

val check_lines : t -> (Addr.t * [ `S | `E | `O | `M | `T ] * Data.t) list
(** Every resident line, sorted by block: its stability class ([`T] for any
    transient, including lines with an open TBE) and current data.  The
    checker's SWMR and data-value invariants consume this. *)

val check_fingerprint : t -> Buffer.t -> unit
(** Append all lines and open-TBE fields to a canonical state fingerprint
    (stats, coverage and trace state excluded). *)
