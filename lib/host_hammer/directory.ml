module Engine = Xguard_sim.Engine
module Group = Xguard_stats.Counter.Group

type txn =
  | Get_txn of { requestor : Node.t }
  | Put_txn of { putter : Node.t; mutable awaiting_data : bool }

type queued = { src : Node.t; body : Msg.body }

type t = {
  engine : Engine.t;
  net : Net.t;
  name : string;
  node : Node.t;
  memory : Memory_model.t;
  dir_latency : int;
  mem_latency : int;
  occupancy : int;
  mutable server_free_at : Engine.time;
  mutable caches : Node.t list;
  owner_table : (Addr.t, Node.t) Hashtbl.t;
  busy_table : (Addr.t, txn) Hashtbl.t;
  waiting : (Addr.t, queued Queue.t) Hashtbl.t;
  stats : Group.t;
  sid : Group.id array; (* interned hot stat counters, indexed like [hot_stats] *)
}

let node t = t.node
let stats t = t.stats
let set_caches t caches = t.caches <- caches
(* Hot per-message stat counters, interned once at creation (PR 4). *)
let hot_stats =
  [|
    "stalled_at_directory"; "get.GetS"; "get.GetS_only"; "get.GetM"; "put"; "unblock";
    "writeback"; "server_busy_cycles";
  |]

let owner t addr = Hashtbl.find_opt t.owner_table addr
let busy t addr = Hashtbl.mem t.busy_table addr
let open_transactions t = Hashtbl.length t.busy_table

let send t ~dst body addr =
  let msg = { Msg.addr; body } in
  Net.send t.net ~src:t.node ~dst ~size:(Msg.size msg) msg

let set_owner t addr = function
  | None -> Hashtbl.remove t.owner_table addr
  | Some n -> Hashtbl.replace t.owner_table addr n

let enqueue t addr q =
  let queue =
    match Hashtbl.find_opt t.waiting addr with
    | Some queue -> queue
    | None ->
        let queue = Queue.create () in
        Hashtbl.add t.waiting addr queue;
        queue
  in
  Group.incr_id t.stats t.sid.(0) (* stalled_at_directory *);
  Queue.push q queue

let rec start t addr { src; body } =
  match body with
  | Msg.Get { kind } ->
      Group.incr_id t.stats
        t.sid.(match kind with Msg.Get_s -> 1 | Msg.Get_s_only -> 2 | Msg.Get_m -> 3);
      Hashtbl.replace t.busy_table addr (Get_txn { requestor = src });
      List.iter
        (fun cache ->
          if not (Node.equal cache src) then send t ~dst:cache (Msg.Fwd { kind; requestor = src }) addr)
        t.caches;
      Engine.schedule t.engine ~delay:t.mem_latency
        ~tag:(Engine.pack_tag ~ctrl:(Node.id t.node) ~addr:(Addr.to_int addr))
        (fun () ->
          send t ~dst:src (Msg.Mem_data { data = Memory_model.read t.memory addr }) addr)
  | Msg.Put ->
      Group.incr_id t.stats t.sid.(4) (* put *);
      if owner t addr = Some src then begin
        Hashtbl.replace t.busy_table addr (Put_txn { putter = src; awaiting_data = true });
        send t ~dst:src Msg.Wb_ack addr
      end
      else begin
        (* Put from a non-owner: a legitimate race, or an erroneous Put the
           paper's Guarantee 1a discussion covers.  Nack and move on — and
           keep draining whatever queued behind this message. *)
        Group.incr t.stats "put_nacked";
        send t ~dst:src Msg.Wb_nack addr;
        finish t addr
      end
  | _ -> assert false

and finish t addr =
  Hashtbl.remove t.busy_table addr;
  match Hashtbl.find_opt t.waiting addr with
  | Some queue when Queue.is_empty queue ->
      (* Drained queues would otherwise stay registered forever — inert, but
         an asymmetry that leaks into state fingerprints. *)
      Hashtbl.remove t.waiting addr
  | Some queue ->
      let next = Queue.pop queue in
      if Queue.is_empty queue then Hashtbl.remove t.waiting addr;
      Engine.schedule t.engine ~delay:t.dir_latency
        ~tag:(Engine.pack_tag ~ctrl:(Node.id t.node) ~addr:(Addr.to_int addr))
        (fun () ->
          (* A newly arriving message can slip in between this pop and the
             scheduled start; re-check and requeue rather than clobber the
             transaction it opened. *)
          if busy t addr then enqueue t addr next else start t addr next)
  | _ -> ()

let deliver t ~src (msg : Msg.t) =
  let addr = msg.Msg.addr in
  match msg.Msg.body with
  | Msg.Get _ | Msg.Put ->
      if busy t addr then enqueue t addr { src; body = msg.Msg.body }
      else
        Engine.schedule t.engine ~delay:t.dir_latency
          ~tag:(Engine.pack_tag ~ctrl:(Node.id t.node) ~addr:(Addr.to_int addr))
          (fun () ->
            if busy t addr then enqueue t addr { src; body = msg.Msg.body }
            else start t addr { src; body = msg.Msg.body })
  | Msg.Unblock { exclusive } -> (
      match Hashtbl.find_opt t.busy_table addr with
      | Some (Get_txn { requestor }) when Node.equal requestor src ->
          if exclusive then set_owner t addr (Some src);
          Group.incr_id t.stats t.sid.(5) (* unblock *);
          finish t addr
      | Some _ | None ->
          (* Robustness: drop and count.  A correct system never reaches it. *)
          Group.incr t.stats "error.unexpected_unblock")
  | Msg.Wb_data { data; dirty } -> (
      match Hashtbl.find_opt t.busy_table addr with
      | Some (Put_txn p) when Node.equal p.putter src && p.awaiting_data ->
          p.awaiting_data <- false;
          if dirty then Memory_model.write t.memory addr data;
          set_owner t addr None;
          Group.incr_id t.stats t.sid.(6) (* writeback *);
          finish t addr
      | Some _ | None -> Group.incr t.stats "error.unexpected_wb_data")
  | Msg.Fwd _ | Msg.Wb_ack | Msg.Wb_nack | Msg.Mem_data _ | Msg.Peer_ack _ | Msg.Peer_data _
    ->
      Group.incr t.stats "error.cache_bound_message"

(* ---- model-checker support ---- *)

let owner_entries t =
  Hashtbl.fold (fun addr n acc -> (addr, n) :: acc) t.owner_table []
  |> List.sort (fun (a, _) (b, _) -> Addr.compare a b)

let check_waiting_tables t = Hashtbl.length t.waiting

let check_fingerprint t buf =
  Buffer.add_string buf "dir[";
  Buffer.add_string buf t.name;
  Buffer.add_char buf ']';
  List.iter
    (fun (addr, n) ->
      Buffer.add_string buf (Printf.sprintf "o%d:%d;" (Addr.to_int addr) (Node.id n)))
    (owner_entries t);
  Hashtbl.fold (fun addr txn acc -> (addr, txn) :: acc) t.busy_table []
  |> List.sort (fun (a, _) (b, _) -> Addr.compare a b)
  |> List.iter (fun (addr, txn) ->
         match txn with
         | Get_txn { requestor } ->
             Buffer.add_string buf
               (Printf.sprintf "bG%d:%d;" (Addr.to_int addr) (Node.id requestor))
         | Put_txn { putter; awaiting_data } ->
             Buffer.add_string buf
               (Printf.sprintf "bP%d:%d:%b;" (Addr.to_int addr) (Node.id putter)
                  awaiting_data));
  Hashtbl.fold (fun addr q acc -> (addr, q) :: acc) t.waiting []
  |> List.sort (fun (a, _) (b, _) -> Addr.compare a b)
  |> List.iter (fun (addr, q) ->
         Buffer.add_string buf (Printf.sprintf "w%d:" (Addr.to_int addr));
         Queue.iter
           (fun { src; body } ->
             Buffer.add_string buf
               (Format.asprintf "%d>%a," (Node.id src) Msg.pp { Msg.addr; body }))
           q;
         Buffer.add_char buf ';');
  if t.occupancy > 0 && t.server_free_at > Engine.now t.engine then
    Buffer.add_string buf (Printf.sprintf "s%d;" (t.server_free_at - Engine.now t.engine))

let create ~engine ~net ~name ~node ~memory ?(dir_latency = 6) ?(mem_latency = 60)
    ?(occupancy = 0) () =
  let stats = Group.create (name ^ ".stats") in
  let t =
    {
      engine;
      net;
      name;
      node;
      memory;
      dir_latency;
      mem_latency;
      occupancy;
      server_free_at = 0;
      caches = [];
      owner_table = Hashtbl.create 256;
      busy_table = Hashtbl.create 64;
      waiting = Hashtbl.create 64;
      stats;
      sid = Array.map (Group.intern stats) hot_stats;
    }
  in
  Net.register net node (fun ~src msg ->
      if t.occupancy = 0 then deliver t ~src msg
      else begin
        (* Finite pipeline: messages serialize through one server. *)
        let now = Engine.now t.engine in
        let start = max now t.server_free_at in
        t.server_free_at <- start + t.occupancy;
        Group.add_id t.stats t.sid.(7) t.occupancy (* server_busy_cycles *);
        Engine.schedule_at t.engine start
          ~tag:(Engine.pack_tag ~ctrl:(Node.id t.node) ~addr:(Addr.to_int msg.Msg.addr))
          (fun () -> deliver t ~src msg)
      end);
  t
