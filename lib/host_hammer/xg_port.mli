(** Crossing Guard's host-side port for the Hammer-like protocol.

    Appears to the host as an ordinary private L1/L2 peer (paper §3.2.1): it
    answers every forwarded request, counts responses on its own gets, and
    performs two-phase writebacks.  The accelerator-facing logic lives in
    {!Xguard_xg.Xg_core}; this port translates between the core's abstract
    host operations/replies and Hammer messages.

    Protocol-specific behaviour from the paper:
    - a forwarded GetS that hits an accelerator-owned block invalidates the
      accelerator, forwards the writeback data to the requestor, and
      relinquishes ownership to the directory with a Put (no O state crosses
      the interface);
    - [use_get_s_only:false] models the unmodified host without the
      non-upgradable read: the Full-State guard then keeps trusted copies of
      read-only blocks granted exclusively. *)

type t

val create :
  engine:Xguard_sim.Engine.t ->
  net:Net.t ->
  name:string ->
  node:Node.t ->
  directory:(Addr.t -> Node.t) ->
  ?use_get_s_only:bool ->
  unit ->
  t
(** [directory] routes a block to the directory shard that serves it (constant
    for a single directory, address-interleaved for a sharded one). *)

val host_port : t -> Xguard_xg.Xg_core.host_port
(** Pass to {!Xguard_xg.Xg_core.create}, then {!attach_core}. *)

val attach_core : t -> Xguard_xg.Xg_core.t -> unit
val set_peer_count : t -> int -> unit
val node : t -> Node.t
val outstanding : t -> int
val stats : t -> Xguard_stats.Counter.Group.t

val check_fingerprint : t -> Buffer.t -> unit
(** Append open get TBEs, in-flight and deferred writebacks, and parked gets
    to a canonical model-checker state fingerprint (span timestamps and stats
    excluded). *)

val check_owner_puts : t -> (Addr.t * Data.t) list
(** Blocks whose architectural owner copy currently rides an in-flight (or
    deferred) ownership-relinquishing writeback at this port — the §3.2.1
    window between answering a dirty [Fwd_s] and the directory absorbing the
    Put.  Sorted by address; the model checker counts these as owned
    entries. *)
