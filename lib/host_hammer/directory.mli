(** Blocking directory + memory controller of the Hammer-like protocol.

    Keeps no sharer list — requests are broadcast to every other cache — but
    tracks the current owner so that racing writebacks can be Nacked, as the
    gem5 baseline does (the paper relies on this to detect erroneous Puts).
    Transactions are serialized per block: a transaction opens when a Get or
    Put is popped and closes on the requestor's Unblock (Get) or the writeback
    data (Put); other messages for the block queue behind it. *)

type t

val create :
  engine:Xguard_sim.Engine.t ->
  net:Net.t ->
  name:string ->
  node:Node.t ->
  memory:Memory_model.t ->
  ?dir_latency:int ->
  ?mem_latency:int ->
  ?occupancy:int ->
  unit ->
  t
(** [occupancy] models the directory pipeline's finite throughput: every
    incoming message holds the controller for that many cycles, so a flood of
    requests queues behind a single server (the denial-of-service resource of
    paper §2.5).  [0] (default) gives an infinitely wide pipeline. *)

val set_caches : t -> Node.t list -> unit
(** All cache nodes on the network (CPU caches and the XG port).  Forwards go
    to every cache except the requestor. *)

val node : t -> Node.t
val owner : t -> Addr.t -> Node.t option
(** The directory's owner record ([None] = memory owns the block). *)

val busy : t -> Addr.t -> bool
val open_transactions : t -> int
val stats : t -> Xguard_stats.Counter.Group.t

(* ---- model-checker support (lib/check) ---- *)

val owner_entries : t -> (Addr.t * Node.t) list
(** Every (block, owner) record, sorted by block — the checker compares this
    against the union of cache-side owned states for directory/cache
    agreement on quiescent blocks. *)

val check_waiting_tables : t -> int
(** Number of per-block waiting queues currently registered.  Drained queues
    are removed in [finish], so on a quiescent directory this is [0]; exposed
    for the regression test of that symmetry fix. *)

val check_fingerprint : t -> Buffer.t -> unit
(** Append owner records, open transactions, queued messages and any future
    server-busy horizon to a canonical state fingerprint (stats excluded). *)
