(** Single-level accelerator cache (paper, Table 1).

    A private cache that speaks the Crossing Guard interface downward.  The
    MESI flavor is exactly the published transition matrix: stable states
    M/E/S/I plus the single transient state B (Busy).  Two degenerate flavors
    demonstrate the interface-simplification freedoms of section 2.1:

    - [Msi]: treats [Data_e] as [Data_m] and never sends [Put_e] or
      [Clean_wb] (only dirty writebacks) — an MSI design.
    - [Vi]: sends only [Get_m] requests and holds every block in V (= M) — a
      VI design.

    Loads and stores stall (are rejected to the sequencer) when the block is
    in B, when the set needs an eviction (the cache starts the eviction and
    the sequencer retries), or when [mshr_limit] misses are already
    outstanding. *)

type flavor = Mesi | Msi | Vi

type t

val create :
  engine:Xguard_sim.Engine.t ->
  name:string ->
  flavor:flavor ->
  sets:int ->
  ways:int ->
  ?hit_latency:int ->
  ?mshr_limit:int ->
  lower:Lower_port.t ->
  unit ->
  t

val name : t -> string
val flavor : t -> flavor

val cpu_port : t -> Access.port
(** Upward port for the accelerator core's sequencer. *)

val deliver : t -> Xguard_xg.Xg_iface.msg -> unit
(** Feed a message arriving from below ([To_accel_resp] or [To_accel_req]).
    @raise Invalid_argument on a [To_xg_*] message (wrong direction). *)

val resident : t -> int
(** Lines currently in the array (any state including B). *)

val coverage : t -> Xguard_stats.Counter.Group.t
(** Visited (state, event) pairs, keys like ["S.Store"] — the stress test's
    coverage metric (paper, section 4.1). *)

val pending_evictions : t -> int

val flush : t -> unit
(** Device-level reset (PR 8): drop every line — stable or busy — without
    writebacks, and zero the pending counters.  Wired to the guard link's
    reset handler; the quarantine drain already settled everything this
    cache owed the host.  In-flight completions are lost (their [on_done]
    never fires), and responses already on the wire for dropped lines are
    silently discarded rather than treated as protocol violations. *)

val probe : t -> Addr.t -> [ `I | `S | `E | `M | `B ]
(** Current state of a block, for tests and traces. *)

(** The published Table 1, as data: used to print the table (bench T1) and to
    check the implementation against it transition by transition. *)
module Spec : sig
  type state = M | E | S | I | B

  type event =
    | Load
    | Store
    | Replacement
    | Invalidate
    | Data_m_arrival
    | Data_e_arrival
    | Data_s_arrival
    | Wb_ack_arrival

  type outcome =
    | Impossible
    | Entry of { action : string; next : state }
        (** [action] in the table's own vocabulary: "hit", "issue GetM",
            "send Dirty WB", "stall", "-". *)

  val mesi : state -> event -> outcome
  val all_states : state list
  val all_events : event list
  val state_to_string : state -> string
  val event_to_string : event -> string
end

val coverage_space : Xguard_trace.Coverage.space
(** {!Spec.mesi} as a coverage space: possible pairs are exactly the non-
    [Impossible] Table 1 entries ([WB Ack] spelled ["WbAck"] to match the
    {!coverage} keys). *)

(* ---- model-checker support (lib/check) ---- *)

val set_check_ctrl : t -> int -> unit
(** Tag hit-latency completion events with this cache's controller id (its
    link node) so the model checker treats them as conflicting with the
    cache's message deliveries. *)

val check_lines : t -> (Addr.t * [ `S | `E | `M | `T ] * Data.t) list
(** Every resident line, sorted by block: stability class ([`T] for Busy)
    and current data. *)

val check_fingerprint : t -> Buffer.t -> unit
(** Append all lines (including Busy pend details) to a canonical
    model-checker state fingerprint (coverage excluded). *)
