module Engine = Xguard_sim.Engine
module Group = Xguard_stats.Counter.Group
module Xg_iface = Xguard_xg.Xg_iface
module Trace = Xguard_trace.Trace
module Coverage = Xguard_trace.Coverage

type flavor = Mesi | Msi | Vi

type stable = St_m | St_e | St_s

type pend =
  | Get of { access : Access.t; on_done : Data.t -> unit }
  | Put  (** eviction in flight, waiting for WbAck *)

type line_state = Stable of stable | Busy of pend

type line = { mutable st : line_state; mutable data : Data.t }

type t = {
  engine : Engine.t;
  name : string;
  flavor : flavor;
  hit_latency : int;
  array : line Cache_array.t;
  lower : Lower_port.t;
  coverage : Group.t;
  covm : Coverage.matrix;
  mshr_limit : int;
  mutable pending_gets : int;
  mutable pending_evictions : int;
  mutable flushed : bool;  (* a device reset happened at least once (PR 8) *)
  (* Choice tag for hit-latency completion events (model checker);
     [Engine.no_tag] outside check mode. *)
  mutable check_tag : int;
}

module Spec = struct
  type state = M | E | S | I | B

  type event =
    | Load
    | Store
    | Replacement
    | Invalidate
    | Data_m_arrival
    | Data_e_arrival
    | Data_s_arrival
    | Wb_ack_arrival

  type outcome = Impossible | Entry of { action : string; next : state }

  (* Table 1 of the paper, verbatim. *)
  let mesi state event =
    match (state, event) with
    | M, Load -> Entry { action = "hit"; next = M }
    | M, Store -> Entry { action = "hit"; next = M }
    | M, Replacement -> Entry { action = "issue PutM"; next = B }
    | M, Invalidate -> Entry { action = "send Dirty WB"; next = I }
    | E, Load -> Entry { action = "hit"; next = E }
    | E, Store -> Entry { action = "hit"; next = M }
    | E, Replacement -> Entry { action = "issue PutE"; next = B }
    | E, Invalidate -> Entry { action = "send Clean WB"; next = I }
    | S, Load -> Entry { action = "hit"; next = S }
    | S, Store -> Entry { action = "issue GetM"; next = B }
    | S, Replacement -> Entry { action = "issue PutS"; next = B }
    | S, Invalidate -> Entry { action = "send InvAck"; next = I }
    | I, Load -> Entry { action = "issue GetS"; next = B }
    | I, Store -> Entry { action = "issue GetM"; next = B }
    | I, Replacement -> Impossible
    | I, Invalidate -> Entry { action = "send InvAck"; next = I }
    | B, Load -> Entry { action = "stall"; next = B }
    | B, Store -> Entry { action = "stall"; next = B }
    | B, Replacement -> Entry { action = "stall"; next = B }
    | B, Invalidate -> Entry { action = "send InvAck"; next = B }
    | B, Data_m_arrival -> Entry { action = "-"; next = M }
    | B, Data_e_arrival -> Entry { action = "-"; next = E }
    | B, Data_s_arrival -> Entry { action = "-"; next = S }
    | B, Wb_ack_arrival -> Entry { action = "-"; next = I }
    | (M | E | S | I), (Data_m_arrival | Data_e_arrival | Data_s_arrival | Wb_ack_arrival) ->
        Impossible

  let all_states = [ M; E; S; I; B ]

  let all_events =
    [
      Load;
      Store;
      Replacement;
      Invalidate;
      Data_m_arrival;
      Data_e_arrival;
      Data_s_arrival;
      Wb_ack_arrival;
    ]

  let state_to_string = function M -> "M" | E -> "E" | S -> "S" | I -> "I" | B -> "B"

  let event_to_string = function
    | Load -> "Load"
    | Store -> "Store"
    | Replacement -> "Replacement"
    | Invalidate -> "Invalidate"
    | Data_m_arrival -> "DataM"
    | Data_e_arrival -> "DataE"
    | Data_s_arrival -> "DataS"
    | Wb_ack_arrival -> "WB Ack"
end

let coverage_space =
  (* The {!visit} vocabulary differs from the table rendering in one place:
     WB Ack is counted as "WbAck" (keys may not contain spaces portably). *)
  let coverage_event = function
    | Spec.Wb_ack_arrival -> "WbAck"
    | e -> Spec.event_to_string e
  in
  let possible_pairs =
    List.concat_map
      (fun s ->
        List.filter_map
          (fun e ->
            match Spec.mesi s e with
            | Spec.Impossible -> None
            | Spec.Entry _ -> Some (Spec.state_to_string s, coverage_event e))
          Spec.all_events)
      Spec.all_states
  in
  Xguard_trace.Coverage.space ~name:"accel.l1"
    ~states:(List.map Spec.state_to_string Spec.all_states)
    ~events:(List.map coverage_event Spec.all_events)
    ~possible:(fun s e -> List.mem (s, e) possible_pairs)
    ()

let create ~engine ~name ~flavor ~sets ~ways ?(hit_latency = 1) ?(mshr_limit = 16) ~lower () =
  let coverage = Group.create (name ^ ".coverage") in
  {
    engine;
    name;
    flavor;
    hit_latency;
    array = Cache_array.create ~sets ~ways ();
    lower;
    coverage;
    covm = Coverage.intern_matrix coverage_space coverage;
    mshr_limit;
    pending_gets = 0;
    pending_evictions = 0;
    flushed = false;
    check_tag = Engine.no_tag;
  }

let name t = t.name
let flavor t = t.flavor
let coverage t = t.coverage
let resident t = Cache_array.count t.array
let pending_evictions t = t.pending_evictions

(* State/event indices into [coverage_space]'s lists (PR 4). *)
let state_names = [| "M"; "E"; "S"; "I"; "B" |]
let s_m = 0
let s_e = 1
let s_s = 2
let s_i = 3
let s_b = 4

let event_names =
  [| "Load"; "Store"; "Replacement"; "Invalidate"; "DataM"; "DataE"; "DataS"; "WbAck" |]

let e_load = 0
let e_store = 1
let e_repl = 2
let e_inval = 3
let e_data_m = 4
let e_data_e = 5
let e_data_s = 6
let e_wb_ack = 7

let visit t addr state event =
  Coverage.hit t.covm ~state ~event;
  if Trace.on () then
    Trace.transition ~cycle:(Engine.now t.engine) ~controller:t.name
      ~addr:(Addr.to_int addr) ~state:state_names.(state) ~event:event_names.(event) ()

let probe t addr =
  match Cache_array.find t.array addr with
  | None -> `I
  | Some { st = Stable St_m; _ } -> `M
  | Some { st = Stable St_e; _ } -> `E
  | Some { st = Stable St_s; _ } -> `S
  | Some { st = Busy _; _ } -> `B

let state_key = function
  | Stable St_m -> "M"
  | Stable St_e -> "E"
  | Stable St_s -> "S"
  | Busy _ -> "B"

let complete t ~on_done value =
  Engine.schedule t.engine ~delay:t.hit_latency ~tag:t.check_tag (fun () -> on_done value)

(* Start evicting a stable line; the line enters B (Busy Put) until WbAck. *)
let start_eviction t addr line stable =
  let req =
    match (t.flavor, stable) with
    | _, St_m -> Xg_iface.Put_m line.data
    | Mesi, St_e -> Xg_iface.Put_e line.data
    | Msi, St_e | Vi, St_e ->
        (* MSI/VI never track E; treat as modified. *)
        Xg_iface.Put_m line.data
    | _, St_s -> Xg_iface.Put_s
  in
  visit t addr (match stable with St_m -> s_m | St_e -> s_e | St_s -> s_s) e_repl;
  line.st <- Busy Put;
  t.pending_evictions <- t.pending_evictions + 1;
  t.lower.Lower_port.send_req addr req

(* The request flavor for a miss. *)
let miss_request t (access : Access.t) =
  match (t.flavor, access.Access.op) with
  | Vi, _ -> Xg_iface.Get_m
  | _, Access.Load -> Xg_iface.Get_s
  | _, Access.Store _ -> Xg_iface.Get_m

let issue t (access : Access.t) ~on_done =
  let addr = access.Access.addr in
  match Cache_array.find t.array addr with
  | Some line -> (
      Cache_array.touch t.array addr;
      match (line.st, access.Access.op) with
      | Stable St_m, Access.Load ->
          visit t addr s_m e_load;
          complete t ~on_done line.data;
          true
      | Stable St_m, Access.Store d ->
          visit t addr s_m e_store;
          line.data <- d;
          complete t ~on_done d;
          true
      | Stable St_e, Access.Load ->
          visit t addr s_e e_load;
          complete t ~on_done line.data;
          true
      | Stable St_e, Access.Store d ->
          (* Table 1: E + store = hit, silently upgrade to M. *)
          visit t addr s_e e_store;
          line.st <- Stable St_m;
          line.data <- d;
          complete t ~on_done d;
          true
      | Stable St_s, Access.Load ->
          visit t addr s_s e_load;
          complete t ~on_done line.data;
          true
      | Stable St_s, Access.Store _ ->
          if t.pending_gets >= t.mshr_limit then false
          else begin
            (* Upgrade miss: keep the line, go Busy, ask for M. *)
            visit t addr s_s e_store;
            line.st <- Busy (Get { access; on_done });
            t.pending_gets <- t.pending_gets + 1;
            t.lower.Lower_port.send_req addr Xg_iface.Get_m;
            true
          end
      | Busy _, Access.Load ->
          visit t addr s_b e_load;
          false
      | Busy _, Access.Store _ ->
          visit t addr s_b e_store;
          false)
  | None ->
      if t.pending_gets >= t.mshr_limit then false
      else if Cache_array.has_room t.array addr then begin
        visit t addr s_i (match access.Access.op with Access.Load -> e_load | Access.Store _ -> e_store);
        let line = { st = Busy (Get { access; on_done }); data = Data.zero } in
        Cache_array.insert t.array addr line;
        t.pending_gets <- t.pending_gets + 1;
        t.lower.Lower_port.send_req addr (miss_request t access);
        true
      end
      else begin
        (match Cache_array.victim t.array addr with
        | Some (victim_addr, victim_line) -> (
            match victim_line.st with
            | Stable stable -> start_eviction t victim_addr victim_line stable
            | Busy _ ->
                (* Eviction already in flight for the LRU way; just wait. *)
                visit t victim_addr s_b e_repl)
        | None -> assert false (* has_room was false, so the set is full *));
        false
      end

let cpu_port t = { Access.issue = (fun access ~on_done -> issue t access ~on_done) }

(* Grant arriving from below while a Get is pending. *)
let apply_grant t line (access : Access.t) ~on_done granted ~data =
  let final_state, value =
    match (access.Access.op, granted) with
    | Access.Load, `S -> (Stable St_s, data)
    | Access.Load, `E -> (Stable St_e, data)
    | Access.Load, `M -> (Stable St_m, data)
    | Access.Store d, `M -> (Stable St_m, d)
    | Access.Store d, `E ->
        (* Store applied to an exclusive-clean grant: silent upgrade. *)
        (Stable St_m, d)
    | Access.Store _, `S ->
        failwith (t.name ^ ": DataS grant for a pending store (interface violation)")
  in
  line.st <- final_state;
  line.data <- value;
  complete t ~on_done value

let on_response t addr (resp : Xg_iface.xg_response) =
  match Cache_array.find t.array addr with
  | None ->
      (* After a device reset the line a response was headed for may be gone;
         before the first reset this is a hard protocol violation. *)
      if not t.flushed then
        failwith
          (Format.asprintf "%s: response %a for non-resident block %a" t.name
             Xg_iface.pp_xg_response resp Addr.pp addr)
  | Some line -> (
      match (line.st, resp) with
      | Busy (Get { access; on_done }), Xg_iface.Data_m data ->
          visit t addr s_b e_data_m;
          t.pending_gets <- t.pending_gets - 1;
          apply_grant t line access ~on_done `M ~data
      | Busy (Get { access; on_done }), Xg_iface.Data_e data ->
          visit t addr s_b e_data_e;
          t.pending_gets <- t.pending_gets - 1;
          let granted = match t.flavor with Mesi -> `E | Msi | Vi -> `M in
          apply_grant t line access ~on_done granted ~data
      | Busy (Get { access; on_done }), Xg_iface.Data_s data ->
          visit t addr s_b e_data_s;
          t.pending_gets <- t.pending_gets - 1;
          apply_grant t line access ~on_done `S ~data
      | Busy Put, Xg_iface.Wb_ack ->
          visit t addr s_b e_wb_ack;
          t.pending_evictions <- t.pending_evictions - 1;
          Cache_array.remove t.array addr
      | (Stable _ | Busy _), _ ->
          failwith
            (Format.asprintf "%s: unexpected response %a in state %s for %a" t.name
               Xg_iface.pp_xg_response resp (state_key line.st) Addr.pp addr))

let on_invalidate t addr =
  match Cache_array.find t.array addr with
  | None ->
      visit t addr s_i e_inval;
      t.lower.Lower_port.send_resp addr Xg_iface.Inv_ack
  | Some line -> (
      match line.st with
      | Stable St_m ->
          visit t addr s_m e_inval;
          t.lower.Lower_port.send_resp addr (Xg_iface.Dirty_wb line.data);
          Cache_array.remove t.array addr
      | Stable St_e ->
          visit t addr s_e e_inval;
          let resp =
            match t.flavor with
            | Mesi -> Xg_iface.Clean_wb line.data
            | Msi | Vi -> Xg_iface.Dirty_wb line.data
          in
          t.lower.Lower_port.send_resp addr resp;
          Cache_array.remove t.array addr
      | Stable St_s ->
          visit t addr s_s e_inval;
          t.lower.Lower_port.send_resp addr Xg_iface.Inv_ack;
          Cache_array.remove t.array addr
      | Busy _ ->
          (* Table 1: not in a stable state -> always InvAck, no further action. *)
          visit t addr s_b e_inval;
          t.lower.Lower_port.send_resp addr Xg_iface.Inv_ack)

(* Device-level reset (the guard's Reset frame landed): drop every line,
   stable or busy, without writebacks — the guard already substituted
   trusted answers for everything outstanding when it quarantined, so
   nothing here is owed to the host.  In-flight accesses are lost the way a
   real hot-reset loses outstanding DMA: their completions never fire. *)
let flush t =
  Cache_array.to_list t.array
  |> List.iter (fun (addr, _) -> Cache_array.remove t.array addr);
  t.pending_gets <- 0;
  t.pending_evictions <- 0;
  t.flushed <- true

let deliver t = function
  | Xg_iface.To_accel_resp { addr; resp } -> on_response t addr resp
  | Xg_iface.To_accel_req { addr; req = Xg_iface.Invalidate } -> on_invalidate t addr
  | Xg_iface.To_xg_req _ | Xg_iface.To_xg_resp _ ->
      invalid_arg (t.name ^ ": received an accelerator-to-XG message")

(* ---- model-checker support ---- *)

let set_check_ctrl t ctrl = t.check_tag <- Engine.pack_tag ~ctrl ~addr:(-1)

let check_lines t =
  Cache_array.to_list t.array
  |> List.map (fun (addr, line) ->
         let cls =
           match line.st with
           | Stable St_m -> `M
           | Stable St_e -> `E
           | Stable St_s -> `S
           | Busy _ -> `T
         in
         (addr, cls, line.data))
  |> List.sort (fun (a, _, _) (b, _, _) -> Addr.compare a b)

let check_fingerprint t buf =
  Buffer.add_string buf "al1[";
  Buffer.add_string buf t.name;
  Buffer.add_char buf ']';
  Cache_array.to_list t.array
  |> List.sort (fun (a, _) (b, _) -> Addr.compare a b)
  |> List.iter (fun (addr, line) ->
         Buffer.add_string buf (Printf.sprintf "a%d:" (Addr.to_int addr));
         (match line.st with
         | Stable St_m -> Buffer.add_char buf 'M'
         | Stable St_e -> Buffer.add_char buf 'E'
         | Stable St_s -> Buffer.add_char buf 'S'
         | Busy (Get { access; _ }) ->
             Buffer.add_string buf
               (Format.asprintf "g%a" Access.pp access)
         | Busy Put -> Buffer.add_char buf 'p');
         Buffer.add_string buf (Printf.sprintf ":%d;" (line.data : Data.t)))
