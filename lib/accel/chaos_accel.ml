module Engine = Xguard_sim.Engine
module Rng = Xguard_sim.Rng
module Xg_iface = Xguard_xg.Xg_iface

type t = {
  engine : Engine.t;
  rng : Rng.t;
  link : Xg_iface.Link.t;
  self : Node.t;
  xg : Node.t;
  addresses : Addr.t array;
  respond_probability : float;
  requests_only : bool;
  tarpit : int option;  (* answer Invalidates correctly but this late (PR 8) *)
  mutable sent : int;
  mutable invs_seen : int;
  mutable invs_ignored : int;
}

let messages_sent t = t.sent
let invalidations_seen t = t.invs_seen
let invalidations_ignored t = t.invs_ignored

let send t msg =
  t.sent <- t.sent + 1;
  Xg_iface.Link.send t.link ~src:t.self ~dst:t.xg ~size:(Xg_iface.msg_size msg) msg

let random_token t = Data.token (Rng.int t.rng 1_000_000)

let random_request t =
  match Rng.int t.rng 5 with
  | 0 -> Xg_iface.Get_s
  | 1 -> Xg_iface.Get_m
  | 2 -> Xg_iface.Put_s
  | 3 -> Xg_iface.Put_e (random_token t)
  | _ -> Xg_iface.Put_m (random_token t)

let random_response t =
  match Rng.int t.rng 3 with
  | 0 -> Xg_iface.Clean_wb (random_token t)
  | 1 -> Xg_iface.Dirty_wb (random_token t)
  | _ -> Xg_iface.Inv_ack

let fire t =
  let addr = Rng.pick t.rng t.addresses in
  if t.requests_only || Rng.bool t.rng then
    send t (Xg_iface.To_xg_req { addr; req = random_request t })
  else send t (Xg_iface.To_xg_resp { addr; resp = random_response t })

let on_invalidate t addr =
  t.invs_seen <- t.invs_seen + 1;
  match t.tarpit with
  | Some lag ->
      (* Tarpit mode: always answer, always the right type, always this
         late — a slow-but-honest accelerator that trips hang budgets
         without ever reaching the coarse G2c timeout. *)
      Engine.schedule t.engine ~delay:lag (fun () ->
          send t (Xg_iface.To_xg_resp { addr; resp = Xg_iface.Inv_ack }))
  | None ->
      if Rng.chance t.rng t.respond_probability then
        (* Possibly the wrong type, possibly the right one; possibly delayed. *)
        Engine.schedule t.engine ~delay:(Rng.int t.rng 50) (fun () ->
            send t (Xg_iface.To_xg_resp { addr; resp = random_response t }))
      else t.invs_ignored <- t.invs_ignored + 1

let create ~engine ~rng ~link ~self ~xg ~addresses ?(period = 5)
    ?(respond_probability = 0.7) ?(requests_only = false) ?tarpit ?(duration = 50_000) () =
  let t =
    {
      engine;
      rng;
      link;
      self;
      xg;
      addresses;
      respond_probability;
      requests_only;
      tarpit;
      sent = 0;
      invs_seen = 0;
      invs_ignored = 0;
    }
  in
  Xg_iface.Link.register link self (fun ~src:_ msg ->
      match msg with
      | Xg_iface.To_accel_req { addr; req = Xg_iface.Invalidate } -> on_invalidate t addr
      | Xg_iface.To_accel_resp _ -> () (* grants and acks for garbage requests: ignore *)
      | Xg_iface.To_xg_req _ | Xg_iface.To_xg_resp _ -> ());
  let deadline = Engine.now engine + duration in
  Engine.every engine ~period ~phase:1 (fun () ->
      fire t;
      Engine.now engine < deadline);
  t
