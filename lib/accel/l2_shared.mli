(** Shared accelerator L2 for the two-level hierarchy (paper §2.1, Figure 2d).

    Sits between per-core accelerator L1s and the Crossing Guard.  Both of its
    interfaces have the *same shape* — the Crossing Guard interface — which is
    the point the paper makes about the interface's composability: the L1s
    from the single-level design plug in unchanged, with their lower port bound
    to this L2 instead of the XG link.

    The L2 is inclusive and tracks which L1s hold each block, so blocks move
    between accelerator cores without crossing the Crossing Guard or touching
    the host directory.  The hierarchy below-state (what the whole accelerator
    holds with respect to the host) is S, E or M; upward it grants at most
    that much privilege.

    The internal network must be an ordered {!Xguard_xg.Xg_iface.Link}, like
    the external one; the only internal race is again an L1 Put crossing an
    L2 Invalidate. *)

type t

val create :
  engine:Xguard_sim.Engine.t ->
  name:string ->
  internal:Xguard_xg.Xg_iface.Link.t ->
  node:Node.t ->
  lower:Lower_port.t ->
  sets:int ->
  ways:int ->
  ?l2_latency:int ->
  unit ->
  t
(** Registers [node] on [internal]; L1s send their requests there.  [lower]
    carries the L2's own requests toward the Crossing Guard. *)

val deliver_from_below : t -> Xguard_xg.Xg_iface.msg -> unit
(** Feed messages arriving on the external XG link ([To_accel_*]). *)

val probe : t -> Addr.t -> [ `I | `S | `E | `M | `Busy ]
(** The hierarchy's below-state for a block. *)

val upward_holders : t -> Addr.t -> [ `None | `Sharers of int | `Owner ]
val resident : t -> int
val stats : t -> Xguard_stats.Counter.Group.t

val flush : t -> unit
(** Device-level reset (PR 8): drop every line, open transaction and stalled
    request without writebacks.  Wired to the guard link's reset handler
    together with the L1s' {!L1_simple.flush}; late grants from below for
    dropped transactions are discarded rather than treated as violations. *)
