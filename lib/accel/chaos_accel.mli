(** Pathologically misbehaving accelerator for fuzz testing (paper §4).

    "We then bombard the Crossing Guard with a stream of random coherence
    messages to random addresses, and find that Crossing Guard provides
    safety even when the accelerator is behaving badly: this fuzz testing
    never leads to a crash or deadlock."

    The chaos accelerator sits on the accelerator side of the XG link and
    emits syntactically well-formed but semantically arbitrary messages:
    requests and responses of every kind, to random addresses, at a
    configurable rate.  It answers host Invalidations randomly — with the
    right type, the wrong type, or not at all (exercising the G2c timeout). *)

type t

val create :
  engine:Xguard_sim.Engine.t ->
  rng:Xguard_sim.Rng.t ->
  link:Xguard_xg.Xg_iface.Link.t ->
  self:Node.t ->
  xg:Node.t ->
  addresses:Addr.t array ->
  ?period:int ->
  ?respond_probability:float ->
  ?requests_only:bool ->
  ?tarpit:int ->
  ?duration:int ->
  unit ->
  t
(** Registers [self] on [link] and starts firing every [period] cycles for
    [duration] cycles (default 50_000).  [respond_probability] is the chance
    an Invalidate gets any reply at all.  [requests_only] suppresses random
    spontaneous responses, so unanswered Invalidates stay unanswered (the
    G2c timeout scenario).  [tarpit] (PR 8) overrides the Invalidate policy:
    every Invalidate is answered with a correct [Inv_ack], but exactly that
    many cycles late — pick a lag between the guard's inv→ack hang budget
    and its G2c timeout to show budgets trip strictly first. *)

val messages_sent : t -> int
val invalidations_seen : t -> int
val invalidations_ignored : t -> int
