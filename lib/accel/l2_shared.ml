module Engine = Xguard_sim.Engine
module Group = Xguard_stats.Counter.Group
module Xg_iface = Xguard_xg.Xg_iface

type below = B_s | B_e | B_m

type up = U_none | U_sharers of Node.t list | U_owner of Node.t

type line = {
  mutable below : below;
  mutable up : up;
  mutable data : Data.t;
  mutable dirty : bool;
  mutable below_gone : bool;
      (* an external Invalidate consumed our shared copy mid-transaction *)
}

type gather = {
  mutable pending : int;
  mutable on_done : unit -> unit;
  mutable below_inv : bool;
  original : (Node.t * Xg_iface.accel_request) option;
      (* internal request to replay if an external invalidation preempts *)
}

type txn = Fetch_below of { requestor : Node.t; want : [ `S | `M ] } | Gather of gather | Put_below

type queued = { src : Node.t; req : Xg_iface.accel_request }

(* Hot per-event stat counters, interned once at creation (PR 4). *)
let hot_stats =
  [|
    "stalled_busy"; "stalled_for_space"; "miss_below"; "internal_transfer"; "share_hit";
    "exclusive_passthrough"; "upgrade_below"; "put_sunk"; "put_s_up"; "put_owner_up";
    "put_during_gather"; "l2_eviction"; "eviction_complete"; "invalidate_from_below";
  |]

type t = {
  engine : Engine.t;
  name : string;
  internal : Xg_iface.Link.t;
  node : Node.t;
  lower : Lower_port.t;
  sets : int;
  array : line Cache_array.t;
  busy_table : (Addr.t, txn) Hashtbl.t;
  waiting : (Addr.t, queued Queue.t) Hashtbl.t;
  space_waiters : (int, (Addr.t * queued) Queue.t) Hashtbl.t;
  l2_latency : int;
  mutable flushed : bool;  (* a device reset happened at least once (PR 8) *)
  stats : Group.t;
  sid : Group.id array; (* interned hot stat counters, indexed like [hot_stats] *)
}

let stats t = t.stats
let resident t = Cache_array.count t.array
let busy t addr = Hashtbl.mem t.busy_table addr
let set_index t addr = addr land (t.sets - 1)

let probe t addr =
  if busy t addr then `Busy
  else
    match Cache_array.find t.array addr with
    | None -> `I
    | Some { below = B_s; _ } -> `S
    | Some { below = B_e; _ } -> `E
    | Some { below = B_m; _ } -> `M

let upward_holders t addr =
  match Cache_array.find t.array addr with
  | None | Some { up = U_none; _ } -> `None
  | Some { up = U_sharers sh; _ } -> `Sharers (List.length sh)
  | Some { up = U_owner _; _ } -> `Owner

let send_up t ~dst msg = Xg_iface.Link.send t.internal ~src:t.node ~dst ~size:(Xg_iface.msg_size msg) msg

let grant_up_resp t ~dst addr resp =
  send_up t ~dst (Xg_iface.To_accel_resp { addr; resp })

let invalidate_up t ~dst addr =
  send_up t ~dst (Xg_iface.To_accel_req { addr; req = Xg_iface.Invalidate })

(* ---- below-facing responses ---- *)

let relinquish_response (line : line) =
  match line.below with
  | B_m -> Xg_iface.Dirty_wb line.data
  | B_e -> if line.dirty then Xg_iface.Dirty_wb line.data else Xg_iface.Clean_wb line.data
  | B_s -> Xg_iface.Inv_ack

let eviction_request (line : line) =
  match line.below with
  | B_m -> Xg_iface.Put_m line.data
  | B_e -> if line.dirty then Xg_iface.Put_m line.data else Xg_iface.Put_e line.data
  | B_s -> Xg_iface.Put_s

(* ---- queue machinery (same discipline as the host L2) ---- *)

let enqueue_addr t addr q =
  let queue =
    match Hashtbl.find_opt t.waiting addr with
    | Some queue -> queue
    | None ->
        let queue = Queue.create () in
        Hashtbl.add t.waiting addr queue;
        queue
  in
  Group.incr_id t.stats t.sid.(0) (* stalled_busy *);
  Queue.push q queue

let enqueue_space t addr q =
  let idx = set_index t addr in
  let queue =
    match Hashtbl.find_opt t.space_waiters idx with
    | Some queue -> queue
    | None ->
        let queue = Queue.create () in
        Hashtbl.replace t.space_waiters idx queue;
        queue
  in
  Group.incr_id t.stats t.sid.(1) (* stalled_for_space *);
  Queue.push (addr, q) queue

let rec process t addr ({ src; req } : queued) =
  match req with
  | Xg_iface.Get_s | Xg_iface.Get_m -> process_get t addr ~src req
  | Xg_iface.Put_s | Xg_iface.Put_e _ | Xg_iface.Put_m _ ->
      process_put t addr ~src req;
      (* Puts open no transaction; drain whatever queued behind this one.
         (The gather-race path calls [process_put] directly, not [process],
         so an open gather is never clobbered here.) *)
      close t addr

and close t addr =
  Hashtbl.remove t.busy_table addr;
  (match Hashtbl.find_opt t.waiting addr with
  | Some queue when not (Queue.is_empty queue) ->
      let next = Queue.pop queue in
      Engine.schedule t.engine ~delay:t.l2_latency (fun () ->
          if busy t addr then enqueue_addr t addr next else process t addr next)
  | _ -> ());
  let idx = set_index t addr in
  match Hashtbl.find_opt t.space_waiters idx with
  | Some queue when not (Queue.is_empty queue) ->
      let qaddr, q = Queue.pop queue in
      Engine.schedule t.engine ~delay:t.l2_latency (fun () ->
          if busy t qaddr then enqueue_addr t qaddr q else process t qaddr q)
  | _ -> ()

(* Invalidate the given upward holders; [on_done] runs when all responded.
   Writeback data is absorbed into the line as it arrives. *)
and gather_up t addr targets ~original ~on_done =
  match targets with
  | [] -> on_done ()
  | _ ->
      let g =
        { pending = List.length targets; on_done; below_inv = false; original }
      in
      Hashtbl.replace t.busy_table addr (Gather g);
      List.iter (fun l1 -> invalidate_up t ~dst:l1 addr) targets

and process_get t addr ~src (req : Xg_iface.accel_request) =
  let want = match req with Xg_iface.Get_m -> `M | _ -> `S in
  match Cache_array.find t.array addr with
  | None ->
      if Cache_array.has_room t.array addr then begin
        Group.incr_id t.stats t.sid.(2) (* miss_below *);
        Cache_array.insert t.array addr
          { below = B_s; up = U_none; data = Data.zero; dirty = false; below_gone = false };
        Hashtbl.replace t.busy_table addr (Fetch_below { requestor = src; want });
        t.lower.Lower_port.send_req addr (match want with `M -> Xg_iface.Get_m | `S -> Xg_iface.Get_s)
      end
      else begin
        enqueue_space t addr { src; req };
        match Cache_array.victim t.array addr with
        | Some (victim_addr, victim_line) ->
            if not (busy t victim_addr) then start_eviction t victim_addr victim_line
        | None -> ()
      end
  | Some line -> (
      Cache_array.touch t.array addr;
      match want with
      | `S -> (
          match line.up with
          | U_owner o when not (Node.equal o src) ->
              (* Pull the block back from the owning L1, then share it:
                 L1-to-L1 transfer without crossing the guard. *)
              Group.incr_id t.stats t.sid.(3) (* internal_transfer *);
              line.up <- U_none;
              gather_up t addr [ o ] ~original:(Some (src, req)) ~on_done:(fun () ->
                  line.up <- U_sharers [ src ];
                  grant_up_resp t ~dst:src addr (Xg_iface.Data_s line.data);
                  close t addr)
          | U_owner _ -> failwith (t.name ^ ": GetS from the L1 that owns the block")
          | U_sharers sh ->
              Group.incr_id t.stats t.sid.(4) (* share_hit *);
              if not (List.exists (Node.equal src) sh) then line.up <- U_sharers (src :: sh);
              grant_up_resp t ~dst:src addr (Xg_iface.Data_s line.data);
              Hashtbl.remove t.busy_table addr;
              close t addr
          | U_none ->
              (* Sole requestor: pass through the full privilege we hold. *)
              Group.incr_id t.stats t.sid.(5) (* exclusive_passthrough *);
              let resp =
                match line.below with
                | B_s -> Xg_iface.Data_s line.data
                | B_e -> Xg_iface.Data_e line.data
                | B_m -> Xg_iface.Data_m line.data
              in
              (match line.below with
              | B_s -> line.up <- U_sharers [ src ]
              | B_e | B_m -> line.up <- U_owner src);
              grant_up_resp t ~dst:src addr resp;
              close t addr)
      | `M -> (
          let finish_grant () =
            let resp =
              if line.dirty || line.below = B_m then Xg_iface.Data_m line.data
              else Xg_iface.Data_e line.data
            in
            line.up <- U_owner src;
            grant_up_resp t ~dst:src addr resp;
            close t addr
          in
          let holders_except_src =
            match line.up with
            | U_none -> []
            | U_owner o -> if Node.equal o src then [] else [ o ]
            | U_sharers sh -> List.filter (fun n -> not (Node.equal n src)) sh
          in
          match line.below with
          | B_e | B_m ->
              line.up <- U_none;
              gather_up t addr holders_except_src ~original:(Some (src, req))
                ~on_done:finish_grant
          | B_s ->
              (* Upgrade below after clearing the other sharers above. *)
              line.up <- U_none;
              gather_up t addr holders_except_src ~original:(Some (src, req))
                ~on_done:(fun () ->
                  Group.incr_id t.stats t.sid.(6) (* upgrade_below *);
                  Hashtbl.replace t.busy_table addr (Fetch_below { requestor = src; want = `M });
                  t.lower.Lower_port.send_req addr Xg_iface.Get_m)))

and process_put t addr ~src (req : Xg_iface.accel_request) =
  (match Cache_array.find t.array addr with
  | None -> Group.incr_id t.stats t.sid.(7) (* put_sunk *)
  | Some line -> (
      match req with
      | Xg_iface.Put_s -> (
          match line.up with
          | U_sharers sh when List.exists (Node.equal src) sh ->
              let rest = List.filter (fun n -> not (Node.equal n src)) sh in
              line.up <- (if rest = [] then U_none else U_sharers rest);
              Group.incr_id t.stats t.sid.(8) (* put_s_up *)
          | _ -> Group.incr_id t.stats t.sid.(7) (* put_sunk *))
      | Xg_iface.Put_e data | Xg_iface.Put_m data -> (
          let dirty = match req with Xg_iface.Put_m _ -> true | _ -> false in
          match line.up with
          | U_owner o when Node.equal o src ->
              line.data <- data;
              line.dirty <- line.dirty || dirty;
              line.up <- U_none;
              Group.incr_id t.stats t.sid.(9) (* put_owner_up *)
          | _ ->
              (* Raced with a gather for this block: the data is absorbed and
                 the InvAck that follows settles the gather. *)
              line.data <- data;
              line.dirty <- line.dirty || dirty;
              Group.incr_id t.stats t.sid.(10) (* put_during_gather *))
      | Xg_iface.Get_s | Xg_iface.Get_m -> assert false));
  grant_up_resp t ~dst:src addr Xg_iface.Wb_ack

and start_eviction t victim_addr (line : line) =
  Group.incr_id t.stats t.sid.(11) (* l2_eviction *);
  line.up <-
    (match line.up with
    | U_none -> U_none
    | up -> up);
  let holders =
    match line.up with U_none -> [] | U_owner o -> [ o ] | U_sharers sh -> sh
  in
  line.up <- U_none;
  gather_up t victim_addr holders ~original:None ~on_done:(fun () ->
      if line.below_gone then begin
        (* Our copy was invalidated away mid-gather; nothing to put back. *)
        Cache_array.remove t.array victim_addr;
        close t victim_addr
      end
      else begin
        Hashtbl.replace t.busy_table victim_addr Put_below;
        t.lower.Lower_port.send_req victim_addr (eviction_request line)
      end)

(* ---- internal link input (from L1s) ---- *)

(* Dispatch an L1 request, possibly after the L2's processing delay.  A Put
   that lands in an open gather is the internal Put/Invalidate race: its data
   must be absorbed immediately (the InvAck follows on the ordered link) —
   deferring it would let the gather complete with stale data. *)
let rec dispatch_req t addr ~src (req : Xg_iface.accel_request) ~delayed =
  match (Hashtbl.find_opt t.busy_table addr, req) with
  | Some (Gather _), (Xg_iface.Put_s | Xg_iface.Put_e _ | Xg_iface.Put_m _) ->
      process_put t addr ~src req
  | Some _, _ -> enqueue_addr t addr { src; req }
  | None, _ ->
      if delayed then process t addr { src; req }
      else
        Engine.schedule t.engine ~delay:t.l2_latency (fun () ->
            dispatch_req t addr ~src req ~delayed:true)

let on_internal t ~src (msg : Xg_iface.msg) =
  match msg with
  | Xg_iface.To_xg_req { addr; req } -> dispatch_req t addr ~src req ~delayed:false
  | Xg_iface.To_xg_resp { addr; resp } -> (
      match Hashtbl.find_opt t.busy_table addr with
      | Some (Gather g) -> (
          (match (resp, Cache_array.find t.array addr) with
          | (Xg_iface.Dirty_wb data | Xg_iface.Clean_wb data), Some line ->
              line.data <- data;
              if (match resp with Xg_iface.Dirty_wb _ -> true | _ -> false) then
                line.dirty <- true
          | _, _ -> ());
          g.pending <- g.pending - 1;
          if g.pending = 0 then
            if g.below_inv then begin
              (* An external invalidation preempted this transaction:
                 relinquish the block below and replay the internal request. *)
              match Cache_array.find t.array addr with
              | Some line ->
                  t.lower.Lower_port.send_resp addr (relinquish_response line);
                  Cache_array.remove t.array addr;
                  (match g.original with
                  | Some (osrc, oreq) -> enqueue_addr t addr { src = osrc; req = oreq }
                  | None -> ());
                  close t addr
              | None -> close t addr
            end
            else g.on_done ())
      | Some _ | None -> Group.incr t.stats "error.unexpected_l1_response")
  | Xg_iface.To_accel_resp _ | Xg_iface.To_accel_req _ ->
      invalid_arg (t.name ^ ": guard-to-accelerator message on the internal link")

(* ---- external link input (from the Crossing Guard) ---- *)

let deliver_from_below t (msg : Xg_iface.msg) =
  match msg with
  | Xg_iface.To_accel_resp { addr; resp } -> (
      match (Hashtbl.find_opt t.busy_table addr, resp) with
      | Some (Fetch_below { requestor; want }), (Xg_iface.Data_s _ | Xg_iface.Data_e _ | Xg_iface.Data_m _)
        -> (
          let line =
            match Cache_array.find t.array addr with
            | Some l -> l
            | None -> failwith (t.name ^ ": grant for absent line")
          in
          (match resp with
          | Xg_iface.Data_s d ->
              line.below <- B_s;
              line.data <- d
          | Xg_iface.Data_e d ->
              line.below <- B_e;
              line.data <- d
          | Xg_iface.Data_m d ->
              line.below <- B_m;
              line.data <- d
          | Xg_iface.Wb_ack -> assert false);
          line.dirty <- false;
          line.below_gone <- false;
          match want with
          | `S ->
              let up_resp =
                match line.below with
                | B_s -> Xg_iface.Data_s line.data
                | B_e -> Xg_iface.Data_e line.data
                | B_m -> Xg_iface.Data_m line.data
              in
              (match line.below with
              | B_s -> line.up <- U_sharers [ requestor ]
              | B_e | B_m -> line.up <- U_owner requestor);
              grant_up_resp t ~dst:requestor addr up_resp;
              close t addr
          | `M ->
              let up_resp =
                match line.below with
                | B_m -> Xg_iface.Data_m line.data
                | B_e -> Xg_iface.Data_e line.data
                | B_s -> failwith (t.name ^ ": shared grant for an exclusive fetch")
              in
              line.up <- U_owner requestor;
              grant_up_resp t ~dst:requestor addr up_resp;
              close t addr)
      | Some Put_below, Xg_iface.Wb_ack ->
          Cache_array.remove t.array addr;
          Group.incr_id t.stats t.sid.(12) (* eviction_complete *);
          close t addr
      | Some _, _ | None, _ ->
          (* After a device reset the transaction a grant was headed for may
             be gone; before the first reset this is a hard violation. *)
          if not t.flushed then
            failwith
              (Format.asprintf "%s: unexpected response from below: %a" t.name
                 Xg_iface.pp_xg_response resp))
  | Xg_iface.To_accel_req { addr; req = Xg_iface.Invalidate } -> (
      Group.incr_id t.stats t.sid.(13) (* invalidate_from_below *);
      match Hashtbl.find_opt t.busy_table addr with
      | Some (Gather g) -> (
          match Cache_array.find t.array addr with
          | Some { below = B_e | B_m; _ } ->
              (* Data must come back: defer the reply until the gather
                 finishes and the owner's writeback is absorbed. *)
              g.below_inv <- true
          | Some { below = B_s; _ } | None ->
              t.lower.Lower_port.send_resp addr Xg_iface.Inv_ack;
              (match Cache_array.find t.array addr with
              | Some line ->
                  (* The shared copy is gone; a pending upgrade refetches and
                     an eviction must not put the block back. *)
                  line.below_gone <- true;
                  line.dirty <- false
              | None -> ()))
      | Some (Fetch_below _) | Some Put_below ->
          (* Busy toward the guard: Table 1's B + Invalidate rule. *)
          t.lower.Lower_port.send_resp addr Xg_iface.Inv_ack
      | None -> (
          match Cache_array.find t.array addr with
          | None -> t.lower.Lower_port.send_resp addr Xg_iface.Inv_ack
          | Some line -> (
              match line.up with
              | U_none ->
                  t.lower.Lower_port.send_resp addr (relinquish_response line);
                  Cache_array.remove t.array addr
              | U_owner o ->
                  line.up <- U_none;
                  gather_up t addr [ o ] ~original:None ~on_done:(fun () ->
                      t.lower.Lower_port.send_resp addr (relinquish_response line);
                      Cache_array.remove t.array addr;
                      close t addr)
              | U_sharers sh ->
                  line.up <- U_none;
                  gather_up t addr sh ~original:None ~on_done:(fun () ->
                      t.lower.Lower_port.send_resp addr (relinquish_response line);
                      Cache_array.remove t.array addr;
                      close t addr))))
  | Xg_iface.To_xg_req _ | Xg_iface.To_xg_resp _ ->
      invalid_arg (t.name ^ ": accelerator-to-guard message from below")

(* Device-level reset (PR 8): drop every line and every open transaction
   without writebacks — the quarantine drain already settled the host side.
   In-flight internal requests re-enter as fresh misses afterwards. *)
let flush t =
  Cache_array.to_list t.array
  |> List.iter (fun (addr, _) -> Cache_array.remove t.array addr);
  Hashtbl.reset t.busy_table;
  Hashtbl.reset t.waiting;
  Hashtbl.reset t.space_waiters;
  t.flushed <- true

let create ~engine ~name ~internal ~node ~lower ~sets ~ways ?(l2_latency = 2) () =
  let stats = Group.create (name ^ ".stats") in
  let t =
    {
      engine;
      name;
      internal;
      node;
      lower;
      sets;
      array = Cache_array.create ~sets ~ways ();
      busy_table = Hashtbl.create 64;
      waiting = Hashtbl.create 64;
      space_waiters = Hashtbl.create 16;
      l2_latency;
      flushed = false;
      stats;
      sid = Array.map (Group.intern stats) hot_stats;
    }
  in
  Xg_iface.Link.register internal node (fun ~src msg -> on_internal t ~src msg);
  t
