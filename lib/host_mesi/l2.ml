module Engine = Xguard_sim.Engine
module Group = Xguard_stats.Counter.Group
module Trace = Xguard_trace.Trace
module Coverage = Xguard_trace.Coverage

type variant = Baseline | Xg_ready

exception Protocol_error of string

type holders = No_l1 | Sharers of Node.t list | Owned of Node.t

type line = { mutable data : Data.t; mutable dirty : bool; mutable holders : holders }

type txn =
  | Fetching of { kind : Msg.get_kind; requestor : Node.t }
  | Direct of { requestor : Node.t }
  | Via_owner of {
      requestor : Node.t;
      kind : Msg.get_kind;
      mutable got_unblock : bool;
      mutable need_copyback : bool;
    }
  | Evicting of { mutable acks_left : int }
  | Wb_mem

type queued = { src : Node.t; body : Msg.body }

type t = {
  engine : Engine.t;
  net : Net.t;
  name : string;
  node : Node.t;
  memctrl : Node.t;
  variant : variant;
  l2_latency : int;
  sets : int;
  array : line Cache_array.t;
  busy_table : (Addr.t, txn) Hashtbl.t;
  waiting : (Addr.t, queued Queue.t) Hashtbl.t;
  space_waiters : (int, queued Queue.t) Hashtbl.t;  (* keyed by set index *)
  space_addr : (int, Addr.t Queue.t) Hashtbl.t;  (* parallel queue of addresses *)
  stats : Group.t;
  sid : Group.id array; (* interned hot stat counters, indexed like [hot_stats] *)
  coverage : Group.t;
  covm : Coverage.matrix;
}

let node t = t.node
let stats t = t.stats
let coverage t = t.coverage
let busy t addr = Hashtbl.mem t.busy_table addr
let open_transactions t = Hashtbl.length t.busy_table
let resident t = Cache_array.count t.array

let probe t addr =
  match Cache_array.find t.array addr with
  | None -> `Absent
  | Some { holders = No_l1; _ } -> `No_l1
  | Some { holders = Sharers sh; _ } -> `Sharers (List.length sh)
  | Some { holders = Owned o; _ } -> `Owned o

let set_index t addr = addr land (t.sets - 1)

let send t ~dst body addr =
  let msg = { Msg.addr; body } in
  Net.send t.net ~src:t.node ~dst ~size:(Msg.size msg) msg

(* Hot per-event stat counters, interned once at creation (PR 4). *)
let hot_stats =
  [| "stalled_busy"; "stalled_for_space"; "l2_miss"; "l2_eviction"; "put_s"; "put_m"; "put_sunk" |]

(* State/event indices into [coverage_space]'s lists (PR 4). *)
let state_names =
  [| "NP"; "NoL1"; "SS"; "MT"; "Fetching"; "Direct"; "ViaOwner"; "Evicting"; "WbMem" |]

let state_idx t addr =
  match Hashtbl.find_opt t.busy_table addr with
  | Some txn -> (
      match txn with
      | Fetching _ -> 4
      | Direct _ -> 5
      | Via_owner _ -> 6
      | Evicting _ -> 7
      | Wb_mem -> 8)
  | None -> (
      match Cache_array.find t.array addr with
      | None -> 0 (* NP *)
      | Some line -> (
          match line.holders with No_l1 -> 1 | Sharers _ -> 2 | Owned _ -> 3))

let event_names =
  [|
    "grant.GetS"; "grant.GetS_only"; "grant.GetM"; "Replacement"; "PutS"; "PutM";
    "Unblock"; "Copyback"; "MemData";
  |]

let e_repl = 3
let e_put_s = 4
let e_put_m = 5
let e_unblock = 6
let e_copyback = 7
let e_mem_data = 8
let event_of_grant = function Msg.Get_s -> 0 | Msg.Get_s_only -> 1 | Msg.Get_m -> 2

let visit t addr event =
  let state = state_idx t addr in
  Coverage.hit t.covm ~state ~event;
  if Trace.on () then
    Trace.transition ~cycle:(Engine.now t.engine) ~controller:t.name
      ~addr:(Addr.to_int addr) ~state:state_names.(state) ~event:event_names.(event) ()

let coverage_space =
  let resident = [ "NoL1"; "SS"; "MT" ] in
  let possible state event =
    match event with
    | "grant.GetS" | "grant.GetS_only" | "grant.GetM" | "Replacement" ->
        List.mem state resident
    | "PutS" | "PutM" -> state = "NP" || List.mem state resident
    | "Unblock" -> state = "Direct" || state = "ViaOwner"
    | "Copyback" -> state = "ViaOwner"
    | "MemData" -> state = "Fetching"
    | _ -> false
  in
  Xguard_trace.Coverage.space ~name:"mesi.l2"
    ~states:[ "NP"; "NoL1"; "SS"; "MT"; "Fetching"; "Direct"; "ViaOwner"; "Evicting"; "WbMem" ]
    ~events:
      [ "grant.GetS"; "grant.GetS_only"; "grant.GetM"; "Replacement"; "PutS"; "PutM";
        "Unblock"; "Copyback"; "MemData" ]
    ~possible ()

let error t what =
  Group.incr t.stats ("error." ^ what);
  match t.variant with
  | Baseline -> raise (Protocol_error (t.name ^ ": " ^ what))
  | Xg_ready -> ()

(* ------- queues ------- *)

let enqueue_addr t addr q =
  let queue =
    match Hashtbl.find_opt t.waiting addr with
    | Some queue -> queue
    | None ->
        let queue = Queue.create () in
        Hashtbl.add t.waiting addr queue;
        queue
  in
  Group.incr_id t.stats t.sid.(0) (* stalled_busy *);
  Queue.push q queue

let enqueue_space t addr q =
  let idx = set_index t addr in
  let queue, addr_queue =
    match (Hashtbl.find_opt t.space_waiters idx, Hashtbl.find_opt t.space_addr idx) with
    | Some queue, Some addr_queue -> (queue, addr_queue)
    | _ ->
        let queue = Queue.create () and addr_queue = Queue.create () in
        Hashtbl.replace t.space_waiters idx queue;
        Hashtbl.replace t.space_addr idx addr_queue;
        (queue, addr_queue)
  in
  Group.incr_id t.stats t.sid.(1) (* stalled_for_space *);
  Queue.push q queue;
  Queue.push addr addr_queue

(* ------- transaction machinery ------- *)

let rec process t addr ({ src; body } as q) =
  match body with
  | Msg.Get { kind } -> process_get t addr q kind ~requestor:src
  | Msg.Put_s -> process_put_s t addr ~src
  | Msg.Put_m { data; dirty } -> process_put_m t addr ~src ~data ~dirty
  | _ -> assert false

and grant t addr (line : line) (kind : Msg.get_kind) ~requestor =
  visit t addr (event_of_grant kind);
  match line.holders with
  | Owned owner when not (Node.equal owner requestor) ->
      send t ~dst:owner (Msg.Fwd { kind; requestor }) addr;
      let need_copyback = kind <> Msg.Get_m in
      (match kind with
      | Msg.Get_m -> line.holders <- Owned requestor
      | Msg.Get_s | Msg.Get_s_only -> line.holders <- Sharers [ owner; requestor ]);
      Hashtbl.replace t.busy_table addr
        (Via_owner { requestor; kind; got_unblock = false; need_copyback })
  | Owned _ ->
      (* Requestor believes it misses while we record it owner: only a buggy
         party behind the XG port gets here.  Re-grant to keep the host live. *)
      error t "get_from_recorded_owner";
      let g = match kind with Msg.Get_m -> Msg.Grant_m | _ -> Msg.Grant_s in
      send t ~dst:requestor (Msg.L2_data { data = line.data; grant = g; acks = 0 }) addr;
      Hashtbl.replace t.busy_table addr (Direct { requestor })
  | Sharers sh -> (
      match kind with
      | Msg.Get_m ->
          let others = List.filter (fun n -> not (Node.equal n requestor)) sh in
          List.iter (fun n -> send t ~dst:n (Msg.Inv { reply_to = requestor }) addr) others;
          send t ~dst:requestor
            (Msg.L2_data { data = line.data; grant = Msg.Grant_m; acks = List.length others })
            addr;
          line.holders <- Owned requestor;
          Hashtbl.replace t.busy_table addr (Direct { requestor })
      | Msg.Get_s | Msg.Get_s_only ->
          send t ~dst:requestor
            (Msg.L2_data { data = line.data; grant = Msg.Grant_s; acks = 0 })
            addr;
          if not (List.exists (Node.equal requestor) sh) then
            line.holders <- Sharers (requestor :: sh);
          Hashtbl.replace t.busy_table addr (Direct { requestor }))
  | No_l1 ->
      let g, holders =
        match kind with
        | Msg.Get_m -> (Msg.Grant_m, Owned requestor)
        | Msg.Get_s -> (Msg.Grant_e, Owned requestor)
        | Msg.Get_s_only -> (Msg.Grant_s, Sharers [ requestor ])
      in
      send t ~dst:requestor (Msg.L2_data { data = line.data; grant = g; acks = 0 }) addr;
      line.holders <- holders;
      Hashtbl.replace t.busy_table addr (Direct { requestor })

and process_get t addr q kind ~requestor =
  match Cache_array.find t.array addr with
  | Some line ->
      Cache_array.touch t.array addr;
      grant t addr line kind ~requestor
  | None ->
      if Cache_array.has_room t.array addr then begin
        Group.incr_id t.stats t.sid.(2) (* l2_miss *);
        Cache_array.insert t.array addr { data = Data.zero; dirty = false; holders = No_l1 };
        Hashtbl.replace t.busy_table addr (Fetching { kind; requestor });
        send t ~dst:t.memctrl Msg.Fetch addr
      end
      else begin
        (* Park the request before touching the victim: a clean, unshared
           victim evicts synchronously and its close must find this request. *)
        enqueue_space t addr q;
        match Cache_array.victim t.array addr with
        | Some (victim_addr, victim_line) ->
            if not (busy t victim_addr) then start_eviction t victim_addr victim_line
        | None -> ()
      end

and start_eviction t victim_addr (line : line) =
  Group.incr_id t.stats t.sid.(3) (* l2_eviction *);
  visit t victim_addr e_repl;
  match line.holders with
  | Owned owner ->
      send t ~dst:owner Msg.Recall victim_addr;
      Hashtbl.replace t.busy_table victim_addr (Evicting { acks_left = 1 })
  | Sharers sh ->
      List.iter (fun n -> send t ~dst:n (Msg.Inv { reply_to = t.node }) victim_addr) sh;
      line.holders <- No_l1;
      if sh = [] then finish_eviction t victim_addr line
      else Hashtbl.replace t.busy_table victim_addr (Evicting { acks_left = List.length sh })
  | No_l1 -> finish_eviction t victim_addr line

and finish_eviction t victim_addr (line : line) =
  if line.dirty then begin
    Hashtbl.replace t.busy_table victim_addr Wb_mem;
    send t ~dst:t.memctrl (Msg.Mem_wb { data = line.data }) victim_addr
  end
  else begin
    Cache_array.remove t.array victim_addr;
    close t victim_addr
  end

and process_put_s t addr ~src =
  visit t addr e_put_s;
  (match Cache_array.find t.array addr with
  | Some ({ holders = Sharers sh; _ } as line) when List.exists (Node.equal src) sh ->
      let rest = List.filter (fun n -> not (Node.equal n src)) sh in
      line.holders <- (if rest = [] then No_l1 else Sharers rest);
      Group.incr_id t.stats t.sid.(4) (* put_s *)
  | Some _ | None -> Group.incr_id t.stats t.sid.(6) (* put_sunk *));
  send t ~dst:src Msg.Wb_ack addr;
  (* Puts open no transaction; drain whatever queued behind this message. *)
  close t addr

and process_put_m t addr ~src ~data ~dirty =
  visit t addr e_put_m;
  (match Cache_array.find t.array addr with
  | Some ({ holders = Owned owner; _ } as line) when Node.equal owner src ->
      line.data <- data;
      line.dirty <- line.dirty || dirty;
      line.holders <- No_l1;
      Group.incr_id t.stats t.sid.(5) (* put_m *)
  | Some ({ holders = Sharers sh; _ } as line) when List.exists (Node.equal src) sh ->
      (* A Put from a cache we demoted to sharer during a racing read fwd;
         its data is already stale.  Drop the data, drop the sharer. *)
      let rest = List.filter (fun n -> not (Node.equal n src)) sh in
      line.holders <- (if rest = [] then No_l1 else Sharers rest);
      Group.incr_id t.stats t.sid.(6) (* put_sunk *)
  | Some _ | None -> Group.incr_id t.stats t.sid.(6) (* put_sunk *));
  send t ~dst:src Msg.Wb_ack addr;
  close t addr

and close t addr =
  Hashtbl.remove t.busy_table addr;
  (* First serve requests queued on this address...  Drained queues are
     removed from their tables (not merely left empty): inert either way, but
     lingering empties would make fingerprints path-dependent. *)
  (match Hashtbl.find_opt t.waiting addr with
  | Some queue when Queue.is_empty queue -> Hashtbl.remove t.waiting addr
  | Some queue ->
      let next = Queue.pop queue in
      if Queue.is_empty queue then Hashtbl.remove t.waiting addr;
      Engine.schedule t.engine ~delay:t.l2_latency
        ~tag:(Engine.pack_tag ~ctrl:(Node.id t.node) ~addr:(Addr.to_int addr))
        (fun () ->
          if busy t addr then enqueue_addr t addr next else process t addr next)
  | None -> ());
  (* ...then retry requests that were stalled for space in this set. *)
  let idx = set_index t addr in
  match (Hashtbl.find_opt t.space_waiters idx, Hashtbl.find_opt t.space_addr idx) with
  | Some queue, Some addr_queue when Queue.is_empty queue ->
      Hashtbl.remove t.space_waiters idx;
      ignore addr_queue;
      Hashtbl.remove t.space_addr idx
  | Some queue, Some addr_queue ->
      let q = Queue.pop queue in
      let qaddr = Queue.pop addr_queue in
      if Queue.is_empty queue then begin
        Hashtbl.remove t.space_waiters idx;
        Hashtbl.remove t.space_addr idx
      end;
      Engine.schedule t.engine ~delay:t.l2_latency
        ~tag:(Engine.pack_tag ~ctrl:(Node.id t.node) ~addr:(Addr.to_int qaddr))
        (fun () ->
          if busy t qaddr then enqueue_addr t qaddr q else process t qaddr q)
  | _ -> ()

(* ------- message handling ------- *)

let handle_unblock t addr ~src =
  match Hashtbl.find_opt t.busy_table addr with
  | Some (Direct { requestor }) when Node.equal requestor src ->
      visit t addr e_unblock;
      close t addr
  | Some (Via_owner v) when Node.equal v.requestor src ->
      visit t addr e_unblock;
      v.got_unblock <- true;
      if not v.need_copyback then close t addr
  | Some _ | None -> error t "unexpected_unblock"

let handle_copyback t addr ~src ~data ~dirty =
  ignore src;
  match Hashtbl.find_opt t.busy_table addr with
  | Some (Via_owner v) when v.need_copyback -> (
      visit t addr e_copyback;
      (match Cache_array.find t.array addr with
      | Some line ->
          line.data <- data;
          line.dirty <- line.dirty || dirty
      | None -> error t "copyback_for_absent_line");
      v.need_copyback <- false;
      if v.got_unblock then close t addr)
  | Some (Direct { requestor }) ->
      (* Paper, section 3.2.2: a buggy holder answered an Inv with a
         writeback; the (modified) L2 acks the requestor on its behalf. *)
      error t "copyback_during_direct_txn";
      Group.incr t.stats "ack_on_behalf";
      send t ~dst:requestor Msg.Inv_ack addr
  | Some _ | None -> error t "unexpected_copyback"

let handle_eviction_response t addr ~(is_data : (Data.t * bool) option) =
  match Hashtbl.find_opt t.busy_table addr with
  | Some (Evicting e) -> (
      (match is_data with
      | Some (data, dirty) -> (
          match Cache_array.find t.array addr with
          | Some line ->
              line.data <- data;
              line.dirty <- line.dirty || dirty;
              line.holders <- No_l1
          | None -> error t "recall_data_for_absent_line")
      | None -> ());
      e.acks_left <- e.acks_left - 1;
      if e.acks_left <= 0 then
        match Cache_array.find t.array addr with
        | Some line -> finish_eviction t addr line
        | None -> error t "eviction_finished_without_line")
  | Some _ | None -> error t "unexpected_eviction_response"

let deliver t ~src (msg : Msg.t) =
  let addr = msg.Msg.addr in
  match msg.Msg.body with
  | Msg.Get _ | Msg.Put_s | Msg.Put_m _ ->
      let q = { src; body = msg.Msg.body } in
      if busy t addr then enqueue_addr t addr q
      else
        Engine.schedule t.engine ~delay:t.l2_latency
          ~tag:(Engine.pack_tag ~ctrl:(Node.id t.node) ~addr:(Addr.to_int addr))
          (fun () ->
            if busy t addr then enqueue_addr t addr q else process t addr q)
  | Msg.Unblock -> handle_unblock t addr ~src
  | Msg.Copyback { data; dirty } -> handle_copyback t addr ~src ~data ~dirty
  | Msg.Recall_data { data; dirty } -> handle_eviction_response t addr ~is_data:(Some (data, dirty))
  | Msg.Recall_ack ->
      (* Ack/data equivalence (the paper's MESI modification). *)
      if t.variant = Baseline then error t "recall_ack_instead_of_data";
      handle_eviction_response t addr ~is_data:None
  | Msg.Inv_ack -> handle_eviction_response t addr ~is_data:None
  | Msg.Mem_data { data } -> (
      match Hashtbl.find_opt t.busy_table addr with
      | Some (Fetching { kind; requestor }) -> (
          visit t addr e_mem_data;
          match Cache_array.find t.array addr with
          | Some line ->
              line.data <- data;
              Hashtbl.remove t.busy_table addr;
              grant t addr line kind ~requestor
          | None -> error t "mem_data_for_absent_line")
      | Some _ | None -> error t "unexpected_mem_data")
  | Msg.Mem_wb_ack -> (
      match Hashtbl.find_opt t.busy_table addr with
      | Some Wb_mem ->
          Cache_array.remove t.array addr;
          close t addr
      | Some _ | None -> error t "unexpected_mem_wb_ack")
  | Msg.L2_data _ | Msg.Wb_ack | Msg.Inv _ | Msg.Recall | Msg.Fwd _ | Msg.Owner_data _
  | Msg.Fetch | Msg.Mem_wb _ ->
      error t "message_not_for_l2"

let create ~engine ~net ~name ~node ~memctrl ~variant ~sets ~ways ?(l2_latency = 8) () =
  let stats = Group.create (name ^ ".stats") in
  let coverage = Group.create (name ^ ".coverage") in
  let t =
    {
      engine;
      net;
      name;
      node;
      memctrl;
      variant;
      l2_latency;
      sets;
      array = Cache_array.create ~sets ~ways ();
      busy_table = Hashtbl.create 64;
      waiting = Hashtbl.create 64;
      space_waiters = Hashtbl.create 16;
      space_addr = Hashtbl.create 16;
      stats;
      sid = Array.map (Group.intern stats) hot_stats;
      coverage;
      covm = Coverage.intern_matrix coverage_space coverage;
    }
  in
  Net.register net node (fun ~src msg -> deliver t ~src msg);
  t

let queued_requests t =
  Hashtbl.fold (fun _ q acc -> acc + Queue.length q) t.waiting 0

let space_stalled t =
  Hashtbl.fold (fun _ q acc -> acc + Queue.length q) t.space_waiters 0

(* ---- model-checker support ---- *)

let check_queue_tables t =
  Hashtbl.length t.waiting + Hashtbl.length t.space_waiters + Hashtbl.length t.space_addr

let check_lines t =
  Cache_array.to_list t.array
  |> List.map (fun (addr, (line : line)) ->
         let h =
           match line.holders with
           | No_l1 -> `No_l1
           | Sharers sh -> `Sharers sh
           | Owned o -> `Owned o
         in
         (addr, h, line.data, line.dirty))
  |> List.sort (fun (a, _, _, _) (b, _, _, _) -> Addr.compare a b)

let check_fingerprint t buf =
  Buffer.add_string buf "l2[";
  Buffer.add_string buf t.name;
  Buffer.add_char buf ']';
  Cache_array.to_list t.array
  |> List.sort (fun (a, _) (b, _) -> Addr.compare a b)
  |> List.iter (fun (addr, (line : line)) ->
         Buffer.add_string buf (Printf.sprintf "a%d:%d:%b:" (Addr.to_int addr)
              (line.data : Data.t) line.dirty);
         (match line.holders with
         | No_l1 -> Buffer.add_char buf 'n'
         | Sharers sh ->
             Buffer.add_char buf 's';
             List.map Node.id sh |> List.sort compare
             |> List.iter (fun n -> Buffer.add_string buf (Printf.sprintf ",%d" n))
         | Owned o -> Buffer.add_string buf (Printf.sprintf "o%d" (Node.id o)));
         Buffer.add_char buf ';');
  Hashtbl.fold (fun addr txn acc -> (addr, txn) :: acc) t.busy_table []
  |> List.sort (fun (a, _) (b, _) -> Addr.compare a b)
  |> List.iter (fun (addr, txn) ->
         Buffer.add_string buf (Printf.sprintf "b%d:" (Addr.to_int addr));
         (match txn with
         | Fetching { kind; requestor } ->
             Buffer.add_string buf
               (Printf.sprintf "F%s:%d" (Msg.get_kind_to_string kind) (Node.id requestor))
         | Direct { requestor } -> Buffer.add_string buf (Printf.sprintf "D%d" (Node.id requestor))
         | Via_owner { requestor; kind; got_unblock; need_copyback } ->
             Buffer.add_string buf
               (Printf.sprintf "V%s:%d:%b:%b" (Msg.get_kind_to_string kind)
                  (Node.id requestor) got_unblock need_copyback)
         | Evicting { acks_left } -> Buffer.add_string buf (Printf.sprintf "E%d" acks_left)
         | Wb_mem -> Buffer.add_char buf 'W');
         Buffer.add_char buf ';');
  let dump_queue prefix key q render =
    Buffer.add_string buf (Printf.sprintf "%s%d:" prefix key);
    Queue.iter (fun x -> Buffer.add_string buf (render x)) q;
    Buffer.add_char buf ';'
  in
  Hashtbl.fold (fun addr q acc -> (addr, q) :: acc) t.waiting []
  |> List.sort (fun (a, _) (b, _) -> Addr.compare a b)
  |> List.iter (fun (addr, q) ->
         dump_queue "w" (Addr.to_int addr) q (fun { src; body } ->
             Format.asprintf "%d>%a," (Node.id src) Msg.pp { Msg.addr; body }));
  Hashtbl.fold (fun idx q acc -> (idx, q) :: acc) t.space_waiters []
  |> List.sort (fun (a, _) (b, _) -> compare a b)
  |> List.iter (fun (idx, q) ->
         Buffer.add_string buf (Printf.sprintf "z%d:" idx);
         let addr_q =
           match Hashtbl.find_opt t.space_addr idx with
           | Some aq -> Queue.to_seq aq |> List.of_seq
           | None -> []
         in
         let bodies = Queue.to_seq q |> List.of_seq in
         List.iter2
           (fun addr { src; body } ->
             Buffer.add_string buf
               (Format.asprintf "%d>%a," (Node.id src) Msg.pp { Msg.addr; body }))
           addr_q bodies;
         Buffer.add_char buf ';')
