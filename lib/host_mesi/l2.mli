(** Shared inclusive L2 of the MESI two-level host protocol.

    The L2 tracks exact sharers and the exclusive owner of every resident
    block, serializes transactions per block, orders cache-to-cache transfers
    (it tells the GetM requestor how many sharer acks to expect, and tells an
    exclusive owner to forward data directly), back-invalidates L1 copies when
    it replaces a line (inclusivity), and fetches from / writes back to the
    memory controller.

    The one host modification the paper needs for Transactional Crossing
    Guard lives here, switched by {!variant}: in [Xg_ready] mode the L2
    treats data and acks as interchangeable responses to a forwarded
    invalidation — in particular, when a (buggy) holder answers an Inv with a
    writeback instead of an InvAck, the L2 absorbs the data and acks the
    requestor on the holder's behalf.  [Baseline] raises {!Protocol_error}
    instead. *)

type variant = Baseline | Xg_ready

exception Protocol_error of string

type t

val create :
  engine:Xguard_sim.Engine.t ->
  net:Net.t ->
  name:string ->
  node:Node.t ->
  memctrl:Node.t ->
  variant:variant ->
  sets:int ->
  ways:int ->
  ?l2_latency:int ->
  unit ->
  t

val node : t -> Node.t
val probe : t -> Addr.t -> [ `Absent | `No_l1 | `Sharers of int | `Owned of Node.t ]
val busy : t -> Addr.t -> bool
val open_transactions : t -> int
val resident : t -> int
val stats : t -> Xguard_stats.Counter.Group.t
val coverage : t -> Xguard_stats.Counter.Group.t

val coverage_space : Xguard_trace.Coverage.space
(** The (state × event) vocabulary the {!coverage} counters live in. *)

val queued_requests : t -> int
(** Entries sitting in per-address stall queues. *)

val space_stalled : t -> int
(** Entries stalled waiting for set space. *)

(* ---- model-checker support (lib/check) ---- *)

val check_queue_tables : t -> int
(** Number of stall-queue tables currently registered (per-address plus
    per-set space queues).  Drained queues are removed in [close], so this is
    [0] on a quiescent L2; exposed for the regression test of that symmetry
    fix. *)

val check_lines : t -> (Addr.t * [ `No_l1 | `Sharers of Node.t list | `Owned of Node.t ] * Data.t * bool) list
(** Every resident line sorted by block: holder record, data, dirty bit. *)

val check_fingerprint : t -> Buffer.t -> unit
(** Append lines, open transactions and stall queues to a canonical
    model-checker state fingerprint (stats and coverage excluded). *)
