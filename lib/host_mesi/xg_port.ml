module Engine = Xguard_sim.Engine
module Group = Xguard_stats.Counter.Group
module Xg_core = Xguard_xg.Xg_core
module Spans = Xguard_obs.Spans

type get_tbe = {
  want : [ `S | `S_only | `M ];
  mutable data : Data.t option;
  mutable grant : Msg.grant option;
  mutable acks_expected : int option;
  mutable acks_got : int;
  mutable born : Engine.time;  (* issue time, for spans *)
}

type put_rec = {
  data : Data.t;
  dirty : bool;
  notify_core : bool;
  is_owner : bool;
  born : Engine.time;  (* issue time, for spans *)
}

(* Fallback span transaction type when no crossing is open on the block. *)
let span_txn_of_want = function
  | `M -> Spans.Get_m
  | `S | `S_only -> Spans.Get_s

type t = {
  engine : Engine.t;
  net : Net.t;
  name : string;
  node : Node.t;
  l2 : Node.t;
  mutable core : Xg_core.t option;
  tbes : get_tbe Tbe_table.t;
  puts : (Addr.t, put_rec) Hashtbl.t;
  stats : Group.t;
  sid : Group.id array; (* interned hot stat counters, indexed like [hot_stats] *)
}

(* Hot per-event stat counters, interned once at creation (PR 4). *)
let hot_stats = [| "get_complete"; "fwd.GetS"; "fwd.GetS_only"; "fwd.GetM"; "writeback_complete"; "put_issued"; "inv"; "recall" |]

let node t = t.node
let stats t = t.stats
let attach_core t core = t.core <- Some core
let outstanding t = Tbe_table.count t.tbes + Hashtbl.length t.puts

let core t =
  match t.core with
  | Some c -> c
  | None -> failwith (t.name ^ ": no Xg_core attached")

let send t ~dst body addr =
  let msg = { Msg.addr; body } in
  Net.send t.net ~src:t.node ~dst ~size:(Msg.size msg) msg

(* ---- host_port operations ---- *)

let issue_get t addr kind =
  let tbe =
    { want = kind; data = None; grant = None; acks_expected = None; acks_got = 0;
      born = Engine.now t.engine }
  in
  (match Tbe_table.alloc t.tbes addr tbe with
  | `Ok -> ()
  | `Busy | `Full -> failwith (t.name ^ ": get while transaction open"));
  let msg_kind =
    match kind with `M -> Msg.Get_m | `S -> Msg.Get_s | `S_only -> Msg.Get_s_only
  in
  send t ~dst:t.l2 (Msg.Get { kind = msg_kind }) addr

let issue_put t addr kind =
  let born = Engine.now t.engine in
  (match kind with
  | `S ->
      Hashtbl.replace t.puts addr
        { data = Data.zero; dirty = false; notify_core = true; is_owner = false; born };
      send t ~dst:t.l2 Msg.Put_s addr
  | `E data ->
      Hashtbl.replace t.puts addr
        { data; dirty = false; notify_core = true; is_owner = true; born };
      send t ~dst:t.l2 (Msg.Put_m { data; dirty = false }) addr
  | `M data ->
      Hashtbl.replace t.puts addr
        { data; dirty = true; notify_core = true; is_owner = true; born };
      send t ~dst:t.l2 (Msg.Put_m { data; dirty = true }) addr);
  Group.incr_id t.stats t.sid.(5) (* put_issued *)

let host_port t =
  {
    Xg_core.get = (fun addr kind -> issue_get t addr kind);
    Xg_core.put = (fun addr kind -> issue_put t addr kind);
    Xg_core.puts_needed = true;
    Xg_core.has_get_s_only = true;
  }

(* ---- get completion ---- *)

let try_complete t addr (tbe : get_tbe) =
  match (tbe.data, tbe.grant, tbe.acks_expected) with
  | Some data, Some grant, Some expected when tbe.acks_got >= expected ->
      Tbe_table.dealloc t.tbes addr;
      send t ~dst:t.l2 Msg.Unblock addr;
      Group.incr_id t.stats t.sid.(0) (* get_complete *);
      if Spans.on () then begin
        let a = Addr.to_int addr and now = Engine.now t.engine in
        let born = tbe.born and want = tbe.want in
        Spans.deferred ~now (fun () ->
            let span, txn =
              match Spans.lookup ~addr:a with
              | Some (span, txn) -> (span, txn)
              | None -> (0, span_txn_of_want want)
            in
            Spans.record Spans.Host_fetch txn ~span ~addr:a ~ts:born ~dur:(now - born))
      end;
      let g =
        match grant with
        | Msg.Grant_s -> `S data
        | Msg.Grant_e -> `E data
        | Msg.Grant_m -> `M data
      in
      Xg_core.granted (core t) addr g
  | _ -> ()

(* ---- host-initiated requests ---- *)

let zero_data_response t addr ~requestor (kind : Msg.get_kind) =
  (* The host expects data from us and the accelerator produced none the core
     could trust: substitute a zeroed block so the requestor completes
     (paper §2.2, Guarantee 2).  The OS has already been alerted. *)
  Group.incr t.stats "zero_data_substituted";
  match kind with
  | Msg.Get_m ->
      send t ~dst:requestor
        (Msg.Owner_data { data = Data.zero; dirty = false; grant = Msg.Grant_m })
        addr
  | Msg.Get_s | Msg.Get_s_only ->
      send t ~dst:requestor
        (Msg.Owner_data { data = Data.zero; dirty = false; grant = Msg.Grant_s })
        addr;
      send t ~dst:t.l2 (Msg.Copyback { data = Data.zero; dirty = false }) addr

let handle_inv t addr ~reply_to =
  Group.incr_id t.stats t.sid.(6) (* inv *);
  match Hashtbl.find_opt t.puts addr with
  | Some _ ->
      (* Our writeback is in flight; the accelerator already relinquished. *)
      send t ~dst:reply_to Msg.Inv_ack addr
  | None ->
      Xg_core.host_request (core t) addr ~need:Xg_core.Fwd_m ~reply:(fun reply ->
          match reply with
          | Xg_core.Reply_ack _ -> send t ~dst:reply_to Msg.Inv_ack addr
          | Xg_core.Reply_clean data | Xg_core.Reply_dirty data ->
              (* A writeback instead of an InvAck (transactional mode cannot
                 correct it): forward the data to the L2, which acks the
                 requestor on our behalf (paper §3.2.2). *)
              let dirty = match reply with Xg_core.Reply_dirty _ -> true | _ -> false in
              Group.incr t.stats "wb_instead_of_invack";
              send t ~dst:t.l2 (Msg.Copyback { data; dirty }) addr)

let handle_recall t addr =
  Group.incr_id t.stats t.sid.(7) (* recall *);
  match Hashtbl.find_opt t.puts addr with
  | Some p when p.is_owner ->
      send t ~dst:t.l2 (Msg.Recall_data { data = p.data; dirty = p.dirty }) addr
  | Some _ | None ->
      Xg_core.host_request (core t) addr ~need:Xg_core.Recall ~reply:(fun reply ->
          match reply with
          | Xg_core.Reply_ack _ -> send t ~dst:t.l2 Msg.Recall_ack addr
          | Xg_core.Reply_clean data -> send t ~dst:t.l2 (Msg.Recall_data { data; dirty = false }) addr
          | Xg_core.Reply_dirty data -> send t ~dst:t.l2 (Msg.Recall_data { data; dirty = true }) addr)

let handle_fwd t addr (kind : Msg.get_kind) ~requestor =
  Group.incr_id t.stats
    t.sid.(match kind with Msg.Get_s -> 1 | Msg.Get_s_only -> 2 | Msg.Get_m -> 3);
  match Hashtbl.find_opt t.puts addr with
  | Some p when p.is_owner -> (
      match kind with
      | Msg.Get_m ->
          send t ~dst:requestor
            (Msg.Owner_data { data = p.data; dirty = p.dirty; grant = Msg.Grant_m })
            addr
      | Msg.Get_s | Msg.Get_s_only ->
          send t ~dst:requestor
            (Msg.Owner_data { data = p.data; dirty = false; grant = Msg.Grant_s })
            addr;
          send t ~dst:t.l2 (Msg.Copyback { data = p.data; dirty = p.dirty }) addr)
  | Some _ | None -> (
      match kind with
      | Msg.Get_m ->
          Xg_core.host_request (core t) addr ~need:Xg_core.Fwd_m ~reply:(fun reply ->
              match reply with
              | Xg_core.Reply_dirty data | Xg_core.Reply_clean data ->
                  let dirty = match reply with Xg_core.Reply_dirty _ -> true | _ -> false in
                  send t ~dst:requestor
                    (Msg.Owner_data { data; dirty; grant = Msg.Grant_m })
                    addr
              | Xg_core.Reply_ack _ -> zero_data_response t addr ~requestor Msg.Get_m)
      | Msg.Get_s | Msg.Get_s_only ->
          Xg_core.host_request (core t) addr ~need:Xg_core.Fwd_s ~reply:(fun reply ->
              match reply with
              | Xg_core.Reply_dirty data | Xg_core.Reply_clean data ->
                  let dirty = match reply with Xg_core.Reply_dirty _ -> true | _ -> false in
                  send t ~dst:requestor
                    (Msg.Owner_data { data; dirty = false; grant = Msg.Grant_s })
                    addr;
                  send t ~dst:t.l2 (Msg.Copyback { data; dirty }) addr
              | Xg_core.Reply_ack _ -> zero_data_response t addr ~requestor kind))

(* ---- writeback responses ---- *)

let span_put_done t addr (p : put_rec) =
  if Spans.on () then begin
    let a = Addr.to_int addr and now = Engine.now t.engine in
    let born = p.born and notify_core = p.notify_core in
    Spans.deferred ~now (fun () ->
        (match Spans.lookup_put ~addr:a with
        | Some (span, txn) ->
            Spans.record Spans.Host_writeback txn ~span ~addr:a ~ts:born
              ~dur:(now - born)
        | None ->
            (* No crossing to attach to, so the relinquishment gets its own
               span. *)
            Spans.record Spans.Host_relinquish Spans.Inv ~span:(Spans.fresh_id ())
              ~addr:a ~ts:born ~dur:(now - born));
        if notify_core then Spans.put_settled ~addr:a ~now)
  end

let handle_wb_ack t addr =
  match Hashtbl.find_opt t.puts addr with
  | Some p ->
      Hashtbl.remove t.puts addr;
      Group.incr_id t.stats t.sid.(4) (* writeback_complete *);
      span_put_done t addr p;
      if p.notify_core then Xg_core.put_complete (core t) addr
  | None -> Group.incr t.stats "error.wb_ack_without_put"

let deliver t (msg : Msg.t) =
  let addr = msg.Msg.addr in
  match msg.Msg.body with
  | Msg.L2_data { data; grant; acks } -> (
      match Tbe_table.find t.tbes addr with
      | Some tbe ->
          tbe.data <- Some data;
          tbe.grant <- Some grant;
          tbe.acks_expected <- Some acks;
          try_complete t addr tbe
      | None -> Group.incr t.stats "error.grant_without_txn")
  | Msg.Owner_data { data; dirty = _; grant } -> (
      match Tbe_table.find t.tbes addr with
      | Some tbe ->
          tbe.data <- Some data;
          tbe.grant <- Some grant;
          tbe.acks_expected <- Some 0;
          try_complete t addr tbe
      | None -> Group.incr t.stats "error.owner_data_without_txn")
  | Msg.Inv_ack -> (
      match Tbe_table.find t.tbes addr with
      | Some tbe ->
          tbe.acks_got <- tbe.acks_got + 1;
          try_complete t addr tbe
      | None -> Group.incr t.stats "error.inv_ack_without_txn")
  | Msg.Inv { reply_to } -> handle_inv t addr ~reply_to
  | Msg.Recall -> handle_recall t addr
  | Msg.Fwd { kind; requestor } -> handle_fwd t addr kind ~requestor
  | Msg.Wb_ack -> handle_wb_ack t addr
  | Msg.Get _ | Msg.Put_s | Msg.Put_m _ | Msg.Unblock | Msg.Recall_data _ | Msg.Recall_ack
  | Msg.Copyback _ | Msg.Fetch | Msg.Mem_data _ | Msg.Mem_wb _ | Msg.Mem_wb_ack ->
      Group.incr t.stats "error.message_not_for_port"

(* ---- model-checker support ---- *)

let check_fingerprint t buf =
  Buffer.add_string buf "xport[";
  Buffer.add_string buf t.name;
  Buffer.add_char buf ']';
  Tbe_table.to_list t.tbes
  |> List.sort (fun (a, _) (b, _) -> Addr.compare a b)
  |> List.iter (fun (addr, (g : get_tbe)) ->
         Buffer.add_string buf
           (Printf.sprintf "t%d:%s:%d:%s:%d:%d;" (Addr.to_int addr)
              (match g.want with `S -> "S" | `S_only -> "So" | `M -> "M")
              (match g.data with None -> -1 | Some d -> (d : Data.t))
              (match g.grant with
              | None -> "-"
              | Some Msg.Grant_s -> "S"
              | Some Msg.Grant_e -> "E"
              | Some Msg.Grant_m -> "M")
              (match g.acks_expected with None -> -1 | Some n -> n)
              g.acks_got);
         ());
  Hashtbl.fold (fun addr p acc -> (addr, p) :: acc) t.puts []
  |> List.sort (fun (a, _) (b, _) -> Addr.compare a b)
  |> List.iter (fun (addr, (p : put_rec)) ->
         Buffer.add_string buf
           (Printf.sprintf "p%d:%d:%b:%b:%b;" (Addr.to_int addr) (p.data : Data.t)
              p.dirty p.notify_core p.is_owner))

let create ~engine ~net ~name ~node ~l2 () =
  let stats = Group.create (name ^ ".stats") in
  let t =
    {
      engine;
      net;
      name;
      node;
      l2;
      core = None;
      tbes = Tbe_table.create ~capacity:128 ();
      puts = Hashtbl.create 16;
      stats;
      sid = Array.map (Group.intern stats) hot_stats;
    }
  in
  Net.register net node (fun ~src:_ msg -> deliver t msg);
  if Spans.on () then
    Spans.add_gauge ~name:(name ^ ".outstanding") (fun () -> outstanding t);
  t
