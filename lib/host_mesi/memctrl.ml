module Engine = Xguard_sim.Engine
module Group = Xguard_stats.Counter.Group

type t = {
  engine : Engine.t;
  net : Net.t;
  name : string;
  node : Node.t;
  memory : Memory_model.t;
  latency : int;
  stats : Group.t;
}

let node t = t.node
let stats t = t.stats

let send t ~dst body addr =
  let msg = { Msg.addr; body } in
  Net.send t.net ~src:t.node ~dst ~size:(Msg.size msg) msg

let deliver t ~src (msg : Msg.t) =
  let addr = msg.Msg.addr in
  match msg.Msg.body with
  | Msg.Fetch ->
      Group.incr t.stats "fetch";
      Engine.schedule t.engine ~delay:t.latency
        ~tag:(Engine.pack_tag ~ctrl:(Node.id t.node) ~addr:(Addr.to_int addr))
        (fun () ->
          send t ~dst:src (Msg.Mem_data { data = Memory_model.read t.memory addr }) addr)
  | Msg.Mem_wb { data } ->
      Group.incr t.stats "writeback";
      Engine.schedule t.engine ~delay:t.latency
        ~tag:(Engine.pack_tag ~ctrl:(Node.id t.node) ~addr:(Addr.to_int addr))
        (fun () ->
          Memory_model.write t.memory addr data;
          send t ~dst:src Msg.Mem_wb_ack addr)
  | _ -> Group.incr t.stats "error.unexpected_message"

let create ~engine ~net ~name ~node ~memory ?(latency = 60) () =
  let t = { engine; net; name; node; memory; latency; stats = Group.create (name ^ ".stats") } in
  Net.register net node (fun ~src msg -> deliver t ~src msg);
  t
