module Engine = Xguard_sim.Engine
module Group = Xguard_stats.Counter.Group
module Trace = Xguard_trace.Trace
module Coverage = Xguard_trace.Coverage

exception Protocol_error of string

type stable = St_s | St_e | St_m

(* Get transactions in flight.  [base_valid] distinguishes SM (upgrade keeping
   a valid S copy) from IM; IS_I is IS with [invalidated] set. *)
type get_tbe = {
  kind : Msg.get_kind;
  mutable base_valid : bool;
  mutable invalidated : bool;
  mutable data : Data.t option;
  mutable grant : Msg.grant option;
  mutable acks_expected : int option;
  mutable acks_got : int;
  access : Access.t;
  on_done : Data.t -> unit;
}

type lstate =
  | Stable of stable
  | Get_pending
  | M_i of { mutable lost_ownership : bool }  (* PutM sent *)
  | Si_wb  (* PutS sent: SINK_WB_ACK *)

type line = { mutable st : lstate; mutable data : Data.t; mutable dirty : bool }

type t = {
  engine : Engine.t;
  net : Net.t;
  name : string;
  node : Node.t;
  l2 : Node.t;
  hit_latency : int;
  array : line Cache_array.t;
  tbes : get_tbe Tbe_table.t;
  mutable pending_puts : int;
  stats : Group.t;
  sid : Group.id array; (* interned hot stat counters, indexed like [hot_stats] *)
  coverage : Group.t;
  covm : Coverage.matrix;
}

(* Hot per-event stat counters, interned once at creation (PR 4). *)
let hot_stats = [| "load_hit"; "store_hit"; "miss"; "get_complete"; "writeback_complete" |]

let name t = t.name
let node t = t.node
let stats t = t.stats
let coverage t = t.coverage
let outstanding t = Tbe_table.count t.tbes + t.pending_puts

let send t ~dst body addr =
  let msg = { Msg.addr; body } in
  Net.send t.net ~src:t.node ~dst ~size:(Msg.size msg) msg

(* State/event indices into [coverage_space]'s lists (PR 4). *)
let state_names = [| "I"; "IS"; "IS_I"; "IM"; "SM"; "S"; "E"; "M"; "M_I"; "SINK_WB_ACK" |]

let state_idx t addr =
  match (Cache_array.find t.array addr, Tbe_table.find t.tbes addr) with
  | _, Some g -> (
      match (g.kind, g.base_valid, g.invalidated) with
      | Msg.Get_m, true, _ -> 4 (* SM *)
      | Msg.Get_m, false, _ -> 3 (* IM *)
      | _, _, true -> 2 (* IS_I *)
      | _, _, false -> 1 (* IS *))
  | Some { st = Stable St_s; _ }, None -> 5 (* S *)
  | Some { st = Stable St_e; _ }, None -> 6 (* E *)
  | Some { st = Stable St_m; _ }, None -> 7 (* M *)
  | Some { st = M_i _; _ }, None -> 8 (* M_I *)
  | Some { st = Si_wb; _ }, None -> 9 (* SINK_WB_ACK *)
  | Some { st = Get_pending; _ }, None -> 1 (* IS *)
  | None, None -> 0 (* I *)

let event_names =
  [|
    "Load"; "Store"; "Replacement"; "Inv"; "Recall"; "Fwd_GetS"; "Fwd_GetS_only";
    "Fwd_GetM"; "WbAck"; "L2Data"; "OwnerData"; "InvAck";
  |]

let e_load = 0
let e_store = 1
let e_repl = 2
let e_inv = 3
let e_recall = 4
let e_wb_ack = 8
let e_l2_data = 9
let e_owner_data = 10
let e_inv_ack = 11
let event_of_fwd = function Msg.Get_s -> 5 | Msg.Get_s_only -> 6 | Msg.Get_m -> 7

let visit t addr event =
  let state = state_idx t addr in
  Coverage.hit t.covm ~state ~event;
  if Trace.on () then
    Trace.transition ~cycle:(Engine.now t.engine) ~controller:t.name
      ~addr:(Addr.to_int addr) ~state:state_names.(state) ~event:event_names.(event) ()

let coverage_space =
  let states = [ "I"; "IS"; "IS_I"; "IM"; "SM"; "S"; "E"; "M"; "M_I"; "SINK_WB_ACK" ] in
  let transient = [ "IS"; "IS_I"; "IM"; "SM" ] in
  let possible state event =
    match event with
    | "Load" | "Store" -> List.mem state [ "I"; "S"; "E"; "M" ]
    | "Replacement" -> List.mem state [ "S"; "E"; "M" ]
    | "Inv" -> not (List.mem state [ "E"; "M" ]) (* owners are Recalled, never Inv'd *)
    | "Recall" -> true
    | "Fwd_GetS" | "Fwd_GetS_only" | "Fwd_GetM" -> List.mem state [ "E"; "M"; "M_I" ]
    | "WbAck" -> List.mem state [ "M_I"; "SINK_WB_ACK" ]
    | "L2Data" | "OwnerData" | "InvAck" -> List.mem state transient
    | _ -> false
  in
  Xguard_trace.Coverage.space ~name:"mesi.l1" ~states
    ~events:
      [ "Load"; "Store"; "Replacement"; "Inv"; "Recall"; "Fwd_GetS"; "Fwd_GetS_only";
        "Fwd_GetM"; "WbAck"; "L2Data"; "OwnerData"; "InvAck" ]
    ~possible ()

let complete t ~on_done value =
  Engine.schedule t.engine ~delay:t.hit_latency
    ~tag:(Engine.pack_tag ~ctrl:(Node.id t.node) ~addr:(-1))
    (fun () -> on_done value)

(* ------- CPU side ------- *)

let start_eviction t addr (line : line) stable =
  visit t addr e_repl;
  (match stable with
  | St_s ->
      line.st <- Si_wb;
      send t ~dst:t.l2 Msg.Put_s addr
  | St_e | St_m ->
      line.st <- M_i { lost_ownership = false };
      send t ~dst:t.l2 (Msg.Put_m { data = line.data; dirty = line.dirty }) addr);
  t.pending_puts <- t.pending_puts + 1

let alloc_get t addr kind ~base_valid (access : Access.t) ~on_done =
  let tbe =
    {
      kind;
      base_valid;
      invalidated = false;
      data = None;
      grant = None;
      acks_expected = None;
      acks_got = 0;
      access;
      on_done;
    }
  in
  match Tbe_table.alloc t.tbes addr tbe with
  | `Ok ->
      if Trace.on () then
        Trace.tbe_alloc ~cycle:(Engine.now t.engine) ~controller:t.name
          ~addr:(Addr.to_int addr);
      send t ~dst:t.l2 (Msg.Get { kind }) addr;
      true
  | `Full | `Busy -> false

let issue t (access : Access.t) ~on_done =
  let addr = access.Access.addr in
  match Cache_array.find t.array addr with
  | Some line -> (
      Cache_array.touch t.array addr;
      match (line.st, access.Access.op) with
      | Stable _, Access.Load ->
          Group.incr_id t.stats t.sid.(0) (* load_hit *);
          visit t addr e_load;
          complete t ~on_done line.data;
          true
      | Stable St_m, Access.Store d ->
          Group.incr_id t.stats t.sid.(1) (* store_hit *);
          visit t addr e_store;
          line.data <- d;
          complete t ~on_done d;
          true
      | Stable St_e, Access.Store d ->
          Group.incr_id t.stats t.sid.(1) (* store_hit *);
          visit t addr e_store;
          line.st <- Stable St_m;
          line.dirty <- true;
          line.data <- d;
          complete t ~on_done d;
          true
      | Stable St_s, Access.Store _ ->
          visit t addr e_store;
          if alloc_get t addr Msg.Get_m ~base_valid:true access ~on_done then begin
            line.st <- Get_pending;
            true
          end
          else false
      | (Get_pending | M_i _ | Si_wb), _ -> false)
  | None ->
      if not (Cache_array.has_room t.array addr) then begin
        (match Cache_array.victim t.array addr with
        | Some (victim_addr, victim_line) -> (
            match victim_line.st with
            | Stable s -> start_eviction t victim_addr victim_line s
            | Get_pending | M_i _ | Si_wb -> ())
        | None -> ());
        false
      end
      else begin
        let kind =
          match access.Access.op with Access.Load -> Msg.Get_s | Access.Store _ -> Msg.Get_m
        in
        visit t addr (match access.Access.op with Access.Load -> e_load | _ -> e_store);
        Group.incr_id t.stats t.sid.(2) (* miss *);
        if alloc_get t addr kind ~base_valid:false access ~on_done then begin
          Cache_array.insert t.array addr { st = Get_pending; data = Data.zero; dirty = false };
          true
        end
        else false
      end

let cpu_port t = { Access.issue = (fun access ~on_done -> issue t access ~on_done) }

(* ------- Grant collection ------- *)

let try_complete t addr (tbe : get_tbe) =
  match (tbe.data, tbe.grant, tbe.acks_expected) with
  | Some received, Some grant, Some expected when tbe.acks_got >= expected ->
      if tbe.acks_got > expected then
        raise (Protocol_error (t.name ^ ": more invalidation acks than announced"));
      let line =
        match Cache_array.find t.array addr with
        | Some l -> l
        | None -> raise (Protocol_error (t.name ^ ": completing a get with no line"))
      in
      Tbe_table.dealloc t.tbes addr;
      if Trace.on () then
        Trace.tbe_free ~cycle:(Engine.now t.engine) ~controller:t.name
          ~addr:(Addr.to_int addr);
      send t ~dst:t.l2 Msg.Unblock addr;
      Group.incr_id t.stats t.sid.(3) (* get_complete *);
      if tbe.invalidated then begin
        (* IS_I: use the value once, do not cache it. *)
        Group.incr t.stats "is_i_single_use";
        Cache_array.remove t.array addr;
        complete t ~on_done:tbe.on_done received
      end
      else begin
        let final_value, final_state =
          match (tbe.access.Access.op, grant) with
          | Access.Load, Msg.Grant_s -> (received, St_s)
          | Access.Load, Msg.Grant_e -> (received, St_e)
          | Access.Load, Msg.Grant_m -> (received, St_m)
          | Access.Store d, (Msg.Grant_m | Msg.Grant_e) -> (d, St_m)
          | Access.Store _, Msg.Grant_s ->
              raise (Protocol_error (t.name ^ ": shared grant for a store"))
        in
        line.data <- final_value;
        line.dirty <- (final_state = St_m);
        line.st <- Stable final_state;
        complete t ~on_done:tbe.on_done final_value
      end
  | _ -> ()

let record_grant t addr (tbe : get_tbe) ~data ~grant ~acks =
  if tbe.data <> None then raise (Protocol_error (t.name ^ ": duplicate data grant"));
  tbe.data <- Some data;
  tbe.grant <- Some grant;
  tbe.acks_expected <- Some acks;
  try_complete t addr tbe

(* ------- Host-side requests ------- *)

let handle_inv t addr ~reply_to =
  visit t addr e_inv;
  (match Tbe_table.find t.tbes addr with
  | Some tbe ->
      (* Invalidation racing an open request: drop the base copy.  For a
         pending GetS this is the IS -> IS_I transition. *)
      if tbe.base_valid then tbe.base_valid <- false
      else if tbe.kind <> Msg.Get_m then tbe.invalidated <- true
  | None -> (
      match Cache_array.find t.array addr with
      | Some { st = Stable St_s; _ } -> Cache_array.remove t.array addr
      | Some { st = Si_wb; _ } -> () (* the racing PutS will be sunk by the L2 *)
      | Some { st = Stable (St_e | St_m); _ } ->
          (* The L2 Recalls owners; a plain Inv to an owner is a protocol
             break. *)
          raise (Protocol_error (t.name ^ ": Inv received while owner"))
      | Some { st = Get_pending | M_i _; _ } | None -> ()));
  send t ~dst:reply_to Msg.Inv_ack addr

let handle_recall t addr =
  visit t addr e_recall;
  match Cache_array.find t.array addr with
  | Some ({ st = Stable (St_e | St_m); _ } as line) ->
      send t ~dst:t.l2 (Msg.Recall_data { data = line.data; dirty = line.dirty }) addr;
      Cache_array.remove t.array addr
  | Some ({ st = M_i p; _ } as line) ->
      send t ~dst:t.l2 (Msg.Recall_data { data = line.data; dirty = line.dirty }) addr;
      p.lost_ownership <- true
  | Some _ | None ->
      (* Only a confused holder reaches this; answer so the L2 can proceed. *)
      Group.incr t.stats "recall_without_ownership";
      send t ~dst:t.l2 Msg.Recall_ack addr

let handle_fwd t addr (kind : Msg.get_kind) ~requestor =
  visit t addr (event_of_fwd kind);
  let respond (line : line) =
    match kind with
    | Msg.Get_m ->
        send t ~dst:requestor
          (Msg.Owner_data { data = line.data; dirty = line.dirty; grant = Msg.Grant_m })
          addr
    | Msg.Get_s | Msg.Get_s_only ->
        send t ~dst:requestor
          (Msg.Owner_data { data = line.data; dirty = false; grant = Msg.Grant_s })
          addr;
        send t ~dst:t.l2 (Msg.Copyback { data = line.data; dirty = line.dirty }) addr
  in
  match Cache_array.find t.array addr with
  | Some ({ st = Stable (St_e | St_m); _ } as line) -> (
      respond line;
      match kind with
      | Msg.Get_m -> Cache_array.remove t.array addr
      | Msg.Get_s | Msg.Get_s_only ->
          line.st <- Stable St_s;
          line.dirty <- false)
  | Some ({ st = M_i p; _ } as line) ->
      respond line;
      if kind = Msg.Get_m then p.lost_ownership <- true
  | Some _ | None -> raise (Protocol_error (t.name ^ ": forwarded request but not owner"))

let handle_wb_ack t addr =
  match Cache_array.find t.array addr with
  | Some { st = M_i _; _ } | Some { st = Si_wb; _ } ->
      visit t addr e_wb_ack;
      Cache_array.remove t.array addr;
      t.pending_puts <- t.pending_puts - 1;
      Group.incr_id t.stats t.sid.(4) (* writeback_complete *)
  | Some _ | None -> raise (Protocol_error (t.name ^ ": WbAck with no writeback pending"))

let deliver t (msg : Msg.t) =
  let addr = msg.Msg.addr in
  match msg.Msg.body with
  | Msg.L2_data { data; grant; acks } -> (
      visit t addr e_l2_data;
      match Tbe_table.find t.tbes addr with
      | Some tbe -> record_grant t addr tbe ~data ~grant ~acks
      | None -> raise (Protocol_error (t.name ^ ": data grant without transaction")))
  | Msg.Owner_data { data; dirty = _; grant } -> (
      visit t addr e_owner_data;
      match Tbe_table.find t.tbes addr with
      | Some tbe -> record_grant t addr tbe ~data ~grant ~acks:0
      | None -> raise (Protocol_error (t.name ^ ": owner data without transaction")))
  | Msg.Inv_ack -> (
      visit t addr e_inv_ack;
      match Tbe_table.find t.tbes addr with
      | Some tbe ->
          tbe.acks_got <- tbe.acks_got + 1;
          try_complete t addr tbe
      | None -> raise (Protocol_error (t.name ^ ": InvAck without transaction")))
  | Msg.Inv { reply_to } -> handle_inv t addr ~reply_to
  | Msg.Recall -> handle_recall t addr
  | Msg.Fwd { kind; requestor } -> handle_fwd t addr kind ~requestor
  | Msg.Wb_ack -> handle_wb_ack t addr
  | Msg.Get _ | Msg.Put_s | Msg.Put_m _ | Msg.Unblock | Msg.Recall_data _ | Msg.Recall_ack
  | Msg.Copyback _ | Msg.Fetch | Msg.Mem_data _ | Msg.Mem_wb _ | Msg.Mem_wb_ack ->
      raise (Protocol_error (t.name ^ ": message not addressed to an L1"))

let probe t addr =
  match (Cache_array.find t.array addr, Tbe_table.find t.tbes addr) with
  | None, None -> `I
  | _, Some _ -> `Transient
  | Some { st = Stable St_s; _ }, None -> `S
  | Some { st = Stable St_e; _ }, None -> `E
  | Some { st = Stable St_m; _ }, None -> `M
  | Some { st = Get_pending | M_i _ | Si_wb; _ }, None -> `Transient

(* ---- model-checker support ---- *)

let check_lines t =
  Cache_array.to_list t.array
  |> List.map (fun (addr, line) ->
         let cls =
           match (line.st, Tbe_table.find t.tbes addr) with
           | Stable s, None -> (match s with St_s -> `S | St_e -> `E | St_m -> `M)
           | _ -> `T
         in
         (addr, cls, line.data))
  |> List.sort (fun (a, _, _) (b, _, _) -> Addr.compare a b)

let check_fingerprint t buf =
  Buffer.add_string buf "l1[";
  Buffer.add_string buf t.name;
  Buffer.add_char buf ']';
  Cache_array.to_list t.array
  |> List.sort (fun (a, _) (b, _) -> Addr.compare a b)
  |> List.iter (fun (addr, line) ->
         Buffer.add_string buf (Printf.sprintf "a%d:" (Addr.to_int addr));
         (match line.st with
         | Stable St_s -> Buffer.add_char buf 'S'
         | Stable St_e -> Buffer.add_char buf 'E'
         | Stable St_m -> Buffer.add_char buf 'M'
         | Get_pending -> Buffer.add_char buf 'g'
         | M_i { lost_ownership } -> Buffer.add_char buf (if lost_ownership then 'i' else 'm')
         | Si_wb -> Buffer.add_char buf 's');
         Buffer.add_string buf (Printf.sprintf ":%d:%b;" (line.data : Data.t) line.dirty));
  Tbe_table.to_list t.tbes
  |> List.sort (fun (a, _) (b, _) -> Addr.compare a b)
  |> List.iter (fun (addr, g) ->
         Buffer.add_string buf
           (Printf.sprintf "t%d:%s:%b:%b:%d:%s:%d:%d:%s;" (Addr.to_int addr)
              (Msg.get_kind_to_string g.kind)
              g.base_valid g.invalidated
              (match g.data with None -> -1 | Some d -> (d : Data.t))
              (match g.grant with
              | None -> "-"
              | Some Msg.Grant_s -> "S"
              | Some Msg.Grant_e -> "E"
              | Some Msg.Grant_m -> "M")
              (match g.acks_expected with None -> -1 | Some n -> n)
              g.acks_got
              (Format.asprintf "%a" Access.pp g.access)))

let create ~engine ~net ~name ~node ~l2 ~sets ~ways ?(hit_latency = 1) ?(tbe_capacity = 16)
    () =
  let stats = Group.create (name ^ ".stats") in
  let coverage = Group.create (name ^ ".coverage") in
  let t =
    {
      engine;
      net;
      name;
      node;
      l2;
      hit_latency;
      array = Cache_array.create ~sets ~ways ();
      tbes = Tbe_table.create ~capacity:tbe_capacity ();
      pending_puts = 0;
      stats;
      sid = Array.map (Group.intern stats) hot_stats;
      coverage;
      covm = Coverage.intern_matrix coverage_space coverage;
    }
  in
  Net.register net node (fun ~src:_ msg -> deliver t msg);
  t
