(** Private L1 controller of the inclusive MESI host protocol.

    Stable states I, S, E, M; six transient states as in the gem5 baseline the
    paper counts for its complexity comparison: IS, IM, SM, IS_I (invalidated
    while fetching a shared copy — the data is used once and discarded), M_I
    (writeback in flight) and SINK_WB_ACK (shared-copy eviction waiting for
    its ack).  The requestor collects sharer invalidation acks itself, as told
    by the L2 ([L2_data.acks]). *)

exception Protocol_error of string

type t

val create :
  engine:Xguard_sim.Engine.t ->
  net:Net.t ->
  name:string ->
  node:Node.t ->
  l2:Node.t ->
  sets:int ->
  ways:int ->
  ?hit_latency:int ->
  ?tbe_capacity:int ->
  unit ->
  t

val node : t -> Node.t
val name : t -> string
val cpu_port : t -> Access.port
val probe : t -> Addr.t -> [ `I | `S | `E | `M | `Transient ]
val stats : t -> Xguard_stats.Counter.Group.t
val coverage : t -> Xguard_stats.Counter.Group.t

val coverage_space : Xguard_trace.Coverage.space
(** The (state × event) vocabulary the {!coverage} counters live in. *)

val outstanding : t -> int

(* ---- model-checker support (lib/check) ---- *)

val check_lines : t -> (Addr.t * [ `S | `E | `M | `T ] * Data.t) list
(** Every resident line, sorted by block: stability class ([`T] for any
    transient, including lines with an open TBE) and current data. *)

val check_fingerprint : t -> Buffer.t -> unit
(** Append all lines and open-TBE fields to a canonical model-checker state
    fingerprint (stats, coverage and trace state excluded). *)
