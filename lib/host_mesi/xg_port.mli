(** Crossing Guard's host-side port for the inclusive MESI protocol.

    Appears to the host as a private L1 (paper §3.2.2).  Translates between
    {!Xguard_xg.Xg_core}'s abstract operations and MESI messages: gets with
    sharer-ack counting, Put_s / Put_m writebacks, and the three host-initiated
    requests (Inv, Recall, Fwd).

    Per the paper, when the guard cannot produce the data the host protocol
    expects from an owner (the accelerator timed out or answered with the
    wrong type in transactional mode), it substitutes a zeroed block so the
    requestor always completes, and the OS has already been alerted. *)

type t

val create :
  engine:Xguard_sim.Engine.t ->
  net:Net.t ->
  name:string ->
  node:Node.t ->
  l2:Node.t ->
  unit ->
  t

val host_port : t -> Xguard_xg.Xg_core.host_port
val attach_core : t -> Xguard_xg.Xg_core.t -> unit
val node : t -> Node.t
val outstanding : t -> int
val stats : t -> Xguard_stats.Counter.Group.t

val check_fingerprint : t -> Buffer.t -> unit
(** Append open get TBEs and in-flight writebacks to a canonical
    model-checker state fingerprint (span timestamps and stats excluded). *)
