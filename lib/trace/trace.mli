(** Structured protocol tracing (ring buffer).

    Controllers emit typed events — message send/receive, state transitions,
    stalls, TBE alloc/free — into a bounded ring buffer armed for the current
    run.  When no buffer is armed every emission is a no-op and the hot path
    pays one mutable-bool load, so simulation results are identical with
    tracing compiled in; when armed, recording never schedules events, never
    draws random numbers and never grows memory past the ring's capacity, so
    traced runs are cycle-for-cycle identical to untraced ones.

    The intended call-site pattern guards any formatting work:

    {[ if Trace.on () then
         Trace.transition ~cycle ~controller:t.name ~addr ~state ~event ~next ]}

    Arming is global (one recorder per process), matching the one-engine-per-
    run structure of the harness; {!with_armed} nests and restores. *)

type kind =
  | Msg_send  (** a message entered a network/link *)
  | Msg_recv  (** a message was delivered to its handler *)
  | Transition  (** a controller saw [event] in [state] *)
  | Stall  (** progress was deferred (queue, retry, MSHR full) *)
  | Tbe_alloc  (** a transaction buffer entry was allocated *)
  | Tbe_free  (** a transaction buffer entry was released *)
  | Note  (** free-form annotation (testers, checkers) *)

type event = {
  cycle : int;
  kind : kind;
  controller : string;  (** emitting component (controller or network) name *)
  addr : int;  (** block address, or {!no_addr} *)
  a : string;  (** kind-dependent: src / state / reason / text *)
  b : string;  (** kind-dependent: dst / protocol event *)
  c : string;  (** kind-dependent: payload text / next state *)
}

val no_addr : int
(** Address value meaning "not address-specific" (-1). *)

type t

val create : ?capacity:int -> unit -> t
(** A fresh ring buffer (default capacity 1024 events). *)

val capacity : t -> int

val recorded : t -> int
(** Total events ever recorded, including overwritten ones. *)

val length : t -> int
(** Events currently held: [min (recorded t) (capacity t)]. *)

val dropped : t -> int
(** Events overwritten by ring wrap-around and no longer held:
    [max 0 (recorded t - capacity t)].  {!dump} prefixes its output with a
    ["(N events dropped — ring wrapped)"] line whenever this is non-zero, so
    truncated forensics are never mistaken for complete ones. *)

val clear : t -> unit

val to_list : t -> event list
(** Held events, oldest first. *)

val events_for : t -> addr:int -> event list
(** Held events touching [addr] (plus address-less [Note] events), oldest
    first. *)

(** {2 Arming} *)

val arm : t -> unit
val disarm : unit -> unit
val armed : unit -> t option

val on : unit -> bool
(** [true] iff a buffer is armed.  Guard any event-text formatting with this
    so disabled tracing allocates nothing. *)

val with_armed : t -> (unit -> 'a) -> 'a
(** Run with [t] armed, restoring the previously armed buffer (if any) on
    exit, including on exceptions. *)

(** {2 Emission} — all are no-ops when nothing is armed. *)

val send :
  cycle:int -> net:string -> src:string -> dst:string -> addr:int -> text:string -> unit

val recv :
  cycle:int -> net:string -> src:string -> dst:string -> addr:int -> text:string -> unit

val transition :
  cycle:int -> controller:string -> addr:int -> state:string -> event:string ->
  ?next:string -> unit -> unit
(** [next] may be omitted when the resulting state is not cheaply known at the
    emission point; the dump then shows only [state] and [event]. *)

val stall : cycle:int -> controller:string -> addr:int -> why:string -> unit
val tbe_alloc : cycle:int -> controller:string -> addr:int -> unit
val tbe_free : cycle:int -> controller:string -> addr:int -> unit
val note : cycle:int -> controller:string -> ?addr:int -> text:string -> unit -> unit

(** {2 Rendering} *)

val format_event : event -> string
(** One line, no trailing newline, e.g.
    ["@    482 xg.link          0x3   send xg.link_end -> accel.link_end: Invalidate 0x3"]. *)

val pp_event : Format.formatter -> event -> unit

val dump : ?addr:int -> ?last:int -> t -> string
(** Human-readable rendering of the held events, oldest first.  [addr]
    restricts to one block (as {!events_for}); [last] keeps only the final
    [n] matching events.  Empty string when nothing matches. *)
