(** Transition-coverage matrices.

    A controller registers its (state × event) space once; its per-run
    coverage counters (keys of the form ["STATE.Event"], as accumulated by
    every controller's [visit] function into an
    {!Xguard_stats.Counter.Group.t}) are then analyzed against that space:
    which possible transitions were hit how often, which were never reached,
    and whether any visited key falls outside the registered vocabulary.

    This is the honest "we stressed the protocol" metric of the paper's §4.1
    methodology: the tests assert floors on {!fraction} and print
    {!uncovered} entries so blind spots in the suite stay visible. *)

type space = {
  name : string;  (** controller kind, e.g. ["xg"], ["hammer.l1l2"] *)
  states : string list;
  events : string list;
  possible : string -> string -> bool;
      (** [possible state event] — whether the pair is reachable at all.
          Impossible entries are excluded from the coverage denominator and
          rendered as ["."] in the matrix. *)
}

val space :
  name:string ->
  states:string list ->
  events:string list ->
  ?possible:(string -> string -> bool) ->
  unit ->
  space
(** [possible] defaults to every pair being reachable. *)

type matrix = {
  group : Xguard_stats.Counter.Group.t;
  ids : Xguard_stats.Counter.Group.id array;
      (** row-major: [state_index * n_events + event_index] *)
  n_states : int;
  n_events : int;
}
(** A space's full (state × event) vocabulary interned into a group once at
    controller creation, so hot-path [visit] functions record transitions by
    integer indices instead of building ["STATE.Event"] strings per event.
    Interned-but-never-hit pairs do not appear in the group's report, so
    [analyze] output is byte-identical to the string-keyed path. *)

val intern_matrix : space -> Xguard_stats.Counter.Group.t -> matrix
(** Interns every (state, event) pair of [space] — including impossible ones,
    which keeps indexing trivial; untouched ids never surface. State and
    event indices follow the list order of [space.states]/[space.events]. *)

val hit : matrix -> state:int -> event:int -> unit
(** Allocation-free equivalent of
    [Group.incr group (List.nth states state ^ "." ^ List.nth events event)]. *)

type report = {
  about : space;
  count : string -> string -> int;  (** hits for a (state, event) pair *)
  covered : int;  (** possible pairs with at least one hit *)
  total : int;  (** possible pairs *)
  uncovered : (string * string) list;  (** possible pairs never hit *)
  stray : (string * int) list;
      (** visited coverage keys outside the registered space — either an
          impossible pair that actually fired or vocabulary drift between the
          controller and its registration; both deserve a look *)
}

val analyze : space -> Xguard_stats.Counter.Group.t list -> report
(** Sums the ["STATE.Event"] counters of all [groups] (several controllers of
    the same kind, or the same controller across runs) and scores them
    against the space.  Keys are split at the first ['.']. *)

val merge : report -> report -> report
(** [merge a b] scores the summed hit counts of both reports against [a]'s
    space: per-pair counts add, [covered]/[uncovered] are recomputed, stray
    keys are summed by key.  Pure (neither input is changed) and associative,
    so N workers' per-run reports fold into the report a single [analyze]
    over all their groups would produce.  The two reports must describe the
    same space ([Invalid_argument] if names, states or events differ). *)

val fraction : report -> float
(** [covered / total]; [1.0] for an empty space. *)

val to_table : report -> Xguard_stats.Table.t
(** The matrix: one row per state, one column per event.  Cells: hit count,
    ["-"] for a possible-but-unvisited pair, ["."] for an impossible one. *)

val pp : Format.formatter -> report -> unit
(** The matrix followed by a one-line summary and any stray keys. *)

val pp_uncovered : Format.formatter -> report -> unit
(** One ["state.event"] per line; nothing when fully covered. *)

val to_string : report -> string
