type kind = Msg_send | Msg_recv | Transition | Stall | Tbe_alloc | Tbe_free | Note

type event = {
  cycle : int;
  kind : kind;
  controller : string;
  addr : int;
  a : string;
  b : string;
  c : string;
}

let no_addr = -1

let dummy =
  { cycle = 0; kind = Note; controller = ""; addr = no_addr; a = ""; b = ""; c = "" }

type t = { buf : event array; mutable total : int }

let create ?(capacity = 1024) () =
  if capacity <= 0 then invalid_arg "Trace.create: capacity must be positive";
  { buf = Array.make capacity dummy; total = 0 }

let capacity t = Array.length t.buf
let recorded t = t.total
let length t = min t.total (Array.length t.buf)
let dropped t = max 0 (t.total - Array.length t.buf)

let clear t =
  Array.fill t.buf 0 (Array.length t.buf) dummy;
  t.total <- 0

let to_list t =
  let cap = Array.length t.buf in
  let n = length t in
  let first = if t.total <= cap then 0 else t.total mod cap in
  List.init n (fun i -> t.buf.((first + i) mod cap))

let matches ~addr ev = ev.addr = addr || (ev.kind = Note && ev.addr = no_addr)

let events_for t ~addr = List.filter (matches ~addr) (to_list t)

(* ---- arming ---- *)

(* The flag duplicates [current <> None] so the disabled-path check is a
   single load with no option allocation or match. *)
let enabled = ref false
let current : t option ref = ref None

let arm t =
  current := Some t;
  enabled := true

let disarm () =
  current := None;
  enabled := false

let armed () = !current
let on () = !enabled

let with_armed t f =
  let previous = !current in
  arm t;
  Fun.protect
    ~finally:(fun () -> match previous with Some p -> arm p | None -> disarm ())
    f

(* ---- emission ---- *)

let record t ev =
  t.buf.(t.total mod Array.length t.buf) <- ev;
  t.total <- t.total + 1

(* The single funnel every event goes through.  Under the sharded engine a
   domain context is installed while a window executes; the ring write is
   then deferred (stamped with the event's own cycle) and replayed by the
   coordinator in canonical order, so trace artifacts are identical for any
   worker count.  Without a context this is the historical direct write. *)
let emit cycle kind controller addr a b c =
  match !current with
  | None -> ()
  | Some t -> (
      match Xguard_sim.Shard.current () with
      | Some ctx ->
          Xguard_sim.Shard.defer ctx ~ts:cycle (fun () ->
              record t { cycle; kind; controller; addr; a; b; c })
      | None -> record t { cycle; kind; controller; addr; a; b; c })

let send ~cycle ~net ~src ~dst ~addr ~text = emit cycle Msg_send net addr src dst text
let recv ~cycle ~net ~src ~dst ~addr ~text = emit cycle Msg_recv net addr src dst text

let transition ~cycle ~controller ~addr ~state ~event ?(next = "") () =
  emit cycle Transition controller addr state event next

let stall ~cycle ~controller ~addr ~why = emit cycle Stall controller addr why "" ""
let tbe_alloc ~cycle ~controller ~addr = emit cycle Tbe_alloc controller addr "" "" ""
let tbe_free ~cycle ~controller ~addr = emit cycle Tbe_free controller addr "" "" ""
let note ~cycle ~controller ?(addr = no_addr) ~text () =
  emit cycle Note controller addr text "" ""

(* ---- rendering ---- *)

let addr_text addr = if addr = no_addr then "-" else Printf.sprintf "0x%x" addr

let detail ev =
  match ev.kind with
  | Msg_send -> Printf.sprintf "send %s -> %s: %s" ev.a ev.b ev.c
  | Msg_recv -> Printf.sprintf "recv %s -> %s: %s" ev.a ev.b ev.c
  | Transition ->
      if ev.c = "" then Printf.sprintf "[%s] %s" ev.a ev.b
      else Printf.sprintf "[%s] %s -> [%s]" ev.a ev.b ev.c
  | Stall -> Printf.sprintf "stall: %s" ev.a
  | Tbe_alloc -> "tbe alloc"
  | Tbe_free -> "tbe free"
  | Note -> ev.a

let format_event ev =
  Printf.sprintf "@%7d %-16s %-5s %s" ev.cycle ev.controller (addr_text ev.addr) (detail ev)

let pp_event fmt ev = Format.pp_print_string fmt (format_event ev)

let dropped_header t =
  let d = dropped t in
  if d = 0 then []
  else [ Printf.sprintf "(%d event%s dropped — ring wrapped)" d (if d = 1 then "" else "s") ]

let dump ?addr ?last t =
  let events = to_list t in
  let events =
    match addr with None -> events | Some a -> List.filter (matches ~addr:a) events
  in
  let events =
    match last with
    | None -> events
    | Some n ->
        (* Single drop pass: compute the length once, then drop the prefix. *)
        let rec drop k l = if k <= 0 then l else match l with [] -> [] | _ :: tl -> drop (k - 1) tl in
        drop (List.length events - n) events
  in
  String.concat "\n" (dropped_header t @ List.map format_event events)
