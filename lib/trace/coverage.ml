module Group = Xguard_stats.Counter.Group
module Table = Xguard_stats.Table

type space = {
  name : string;
  states : string list;
  events : string list;
  possible : string -> string -> bool;
}

let space ~name ~states ~events ?(possible = fun _ _ -> true) () =
  { name; states; events; possible }

type matrix = {
  group : Group.t;
  ids : Group.id array; (* row-major: state index * n_events + event index *)
  n_states : int;
  n_events : int;
}

let intern_matrix space group =
  let states = Array.of_list space.states in
  let events = Array.of_list space.events in
  let n_states = Array.length states in
  let n_events = Array.length events in
  let ids =
    Array.init (n_states * n_events) (fun k ->
        let state = states.(k / n_events) and event = events.(k mod n_events) in
        Group.intern group (state ^ "." ^ event))
  in
  { group; ids; n_states; n_events }

let hit m ~state ~event = Group.incr_id m.group m.ids.((state * m.n_events) + event)

type report = {
  about : space;
  count : string -> string -> int;
  covered : int;
  total : int;
  uncovered : (string * string) list;
  stray : (string * int) list;
}

let split_key key =
  match String.index_opt key '.' with
  | None -> None
  | Some i -> Some (String.sub key 0 i, String.sub key (i + 1) (String.length key - i - 1))

let analyze space groups =
  let hits : (string * string, int) Hashtbl.t = Hashtbl.create 64 in
  let stray : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let in_space state event =
    List.mem state space.states && List.mem event space.events
    && space.possible state event
  in
  List.iter
    (fun g ->
      List.iter
        (fun (key, n) ->
          if n > 0 then
            match split_key key with
            | Some (state, event) when in_space state event ->
                let prev = Option.value ~default:0 (Hashtbl.find_opt hits (state, event)) in
                Hashtbl.replace hits (state, event) (prev + n)
            | Some _ | None ->
                let prev = Option.value ~default:0 (Hashtbl.find_opt stray key) in
                Hashtbl.replace stray key (prev + n))
        (Group.to_list g))
    groups;
  let count state event =
    Option.value ~default:0 (Hashtbl.find_opt hits (state, event))
  in
  let covered = ref 0 and total = ref 0 and uncovered = ref [] in
  List.iter
    (fun state ->
      List.iter
        (fun event ->
          if space.possible state event then begin
            incr total;
            if count state event > 0 then incr covered
            else uncovered := (state, event) :: !uncovered
          end)
        space.events)
    space.states;
  let stray =
    List.sort compare (Hashtbl.fold (fun k n acc -> (k, n) :: acc) stray [])
  in
  {
    about = space;
    count;
    covered = !covered;
    total = !total;
    uncovered = List.rev !uncovered;
    stray;
  }

let merge a b =
  if
    a.about.name <> b.about.name
    || a.about.states <> b.about.states
    || a.about.events <> b.about.events
  then
    invalid_arg
      (Printf.sprintf "Coverage.merge: reports describe different spaces (%s vs %s)"
         a.about.name b.about.name);
  let space = a.about in
  let count state event = a.count state event + b.count state event in
  let covered = ref 0 and total = ref 0 and uncovered = ref [] in
  List.iter
    (fun state ->
      List.iter
        (fun event ->
          if space.possible state event then begin
            incr total;
            if count state event > 0 then incr covered
            else uncovered := (state, event) :: !uncovered
          end)
        space.events)
    space.states;
  let stray_tbl : (string, int) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (k, n) ->
      let prev = Option.value ~default:0 (Hashtbl.find_opt stray_tbl k) in
      Hashtbl.replace stray_tbl k (prev + n))
    (a.stray @ b.stray);
  let stray =
    List.sort compare (Hashtbl.fold (fun k n acc -> (k, n) :: acc) stray_tbl [])
  in
  {
    about = space;
    count;
    covered = !covered;
    total = !total;
    uncovered = List.rev !uncovered;
    stray;
  }

let fraction r = if r.total = 0 then 1.0 else float_of_int r.covered /. float_of_int r.total

let to_table r =
  let title =
    Printf.sprintf "%s transition coverage: %d/%d possible (state x event) pairs (%s)"
      r.about.name r.covered r.total
      (Table.cell_pct (fraction r))
  in
  let table = Table.create ~title ~columns:("state" :: r.about.events) in
  List.iter
    (fun state ->
      let cells =
        List.map
          (fun event ->
            if not (r.about.possible state event) then "."
            else match r.count state event with 0 -> "-" | n -> string_of_int n)
          r.about.events
      in
      Table.add_row table (state :: cells))
    r.about.states;
  table

let pp_uncovered fmt r =
  List.iter (fun (s, e) -> Format.fprintf fmt "%s.%s@." s e) r.uncovered

let pp fmt r =
  Table.pp fmt (to_table r);
  if r.uncovered <> [] then begin
    Format.fprintf fmt "uncovered:@.";
    pp_uncovered fmt r
  end;
  if r.stray <> [] then begin
    Format.fprintf fmt "stray keys (outside the registered space):@.";
    List.iter (fun (k, n) -> Format.fprintf fmt "  %-40s %d@." k n) r.stray
  end

let to_string r = Format.asprintf "%a" pp r
