type row = Cells of string list | Separator

type t = { title : string; columns : string list; mutable rows : row list }

let create ~title ~columns = { title; columns; rows = [] }

let add_row t cells =
  if List.length cells <> List.length t.columns then
    invalid_arg
      (Printf.sprintf "Table.add_row(%s): %d cells for %d columns" t.title
         (List.length cells) (List.length t.columns));
  t.rows <- Cells cells :: t.rows

let add_separator t = t.rows <- Separator :: t.rows

let title t = t.title
let columns t = t.columns

let rows t =
  List.filter_map (function Cells cells -> Some cells | Separator -> None)
    (List.rev t.rows)

let merge a b =
  if a.title <> b.title || a.columns <> b.columns then
    invalid_arg
      (Printf.sprintf "Table.merge: %S/%S differ in title or columns" a.title b.title);
  (* [rows] is kept reversed, so b-then-a concatenation displays a's first. *)
  { title = a.title; columns = a.columns; rows = b.rows @ a.rows }

let widths t =
  let rows = List.rev t.rows in
  let w = Array.of_list (List.map String.length t.columns) in
  let note_row cells =
    List.iteri (fun i c -> if String.length c > w.(i) then w.(i) <- String.length c) cells
  in
  List.iter (function Cells cells -> note_row cells | Separator -> ()) rows;
  w

let pad s width = s ^ String.make (width - String.length s) ' '

let pp fmt t =
  let w = widths t in
  let line cells =
    let padded = List.mapi (fun i c -> pad c w.(i)) cells in
    String.concat "  " padded
  in
  let rule =
    String.concat "--" (Array.to_list (Array.map (fun n -> String.make n '-') w))
  in
  Format.fprintf fmt "%s@." t.title;
  Format.fprintf fmt "%s@." (line t.columns);
  Format.fprintf fmt "%s@." rule;
  List.iter
    (function
      | Cells cells -> Format.fprintf fmt "%s@." (line cells)
      | Separator -> Format.fprintf fmt "%s@." rule)
    (List.rev t.rows)

let to_string t = Format.asprintf "%a" pp t

let cell_int = string_of_int
let cell_float ?(decimals = 2) x = Printf.sprintf "%.*f" decimals x
let cell_pct ?(decimals = 1) x = Printf.sprintf "%.*f%%" decimals (100.0 *. x)
let cell_ratio ?(decimals = 2) x = Printf.sprintf "%.*fx" decimals x
