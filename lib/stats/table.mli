(** Plain-text result tables.

    The benchmark harness prints one of these per reproduced table/figure, in
    the row/column layout of the paper.  Cells are strings; alignment is
    computed from content width. *)

type t

val create : title:string -> columns:string list -> t

val add_row : t -> string list -> unit
(** Row length must match the column count. *)

val add_separator : t -> unit
(** A horizontal rule between row groups. *)

val title : t -> string
val columns : t -> string list

val rows : t -> string list list
(** Cell rows in display order; separators are omitted.  Used by the bench
    harness's JSON emission. *)

val merge : t -> t -> t
(** [merge a b] is a new table with [a]'s rows followed by [b]'s, neither
    input mutated.  The two tables must have equal titles and columns
    ([Invalid_argument] otherwise).  Merge is associative, so a parallel
    campaign can fold per-worker tables in job order and obtain exactly the
    table a serial run would have accumulated. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** Cell formatting helpers used throughout the bench harness. *)

val cell_int : int -> string
val cell_float : ?decimals:int -> float -> string
val cell_pct : ?decimals:int -> float -> string
(** [cell_pct 0.031] is ["3.1%"]. *)

val cell_ratio : ?decimals:int -> float -> string
(** [cell_ratio 1.73] is ["1.73x"]. *)
