(** Named monotonic counters.

    Counters are the unit of bookkeeping for every simulated component: message
    counts, bytes moved, protocol events, guarantee violations.  They live in a
    {!Group} so a component can dump all of its statistics by name at the end
    of a run. *)

type t

val create : string -> t
(** A free-standing counter (not attached to any group). *)

val name : t -> string
val incr : t -> unit
val add : t -> int -> unit
val get : t -> int
val reset : t -> unit

(** An ordered collection of counters, keyed by name.  Asking for the same name
    twice returns the same counter, so call sites can be written without
    plumbing counter handles around. *)
module Group : sig
  type counter = t
  type t

  type id
  (** A dense handle for a pre-registered counter name.  Hot paths intern
      their whole vocabulary once at component creation and then record via
      {!incr_id}/{!add_id} — no string building, no hashing per event. *)

  val create : string -> t
  val name : t -> string

  val counter : t -> string -> counter
  (** [counter g name] finds or creates the counter [name] in [g]. *)

  val intern : t -> string -> id
  (** [intern g name] pre-registers [name] and returns its dense id.
      Interning alone does not make the counter observable: it only appears
      in {!to_list} once first touched (by any path), in first-touch order —
      so reports stay byte-identical to the string-keyed path even when a
      component interns vocabulary that never fires.  Interning the same
      name twice returns the same id; ids are per-group. *)

  val incr_id : t -> id -> unit
  (** Allocation-free equivalent of [incr g name] for an interned name. *)

  val add_id : t -> id -> int -> unit
  val get_id : t -> id -> int

  val incr : t -> string -> unit
  val add : t -> string -> int -> unit
  val get : t -> string -> int
  (** [get g name] is 0 when the counter was never touched. *)

  val to_list : t -> (string * int) list
  (** Counters in creation order. *)

  val reset_all : t -> unit
  val pp : Format.formatter -> t -> unit
end
