type t = { name : string; mutable value : int }

let create name = { name; value = 0 }
let name t = t.name
let incr t = t.value <- t.value + 1
let add t n = t.value <- t.value + n
let get t = t.value
let reset t = t.value <- 0

let make_counter = create
let incr_counter = incr
let add_counter = add

module Group = struct
  type counter = t
  type id = int

  (* Interned counters live in [slots] from [intern] time but only join
     [table]/[order] on first touch ([enlisted]), so [to_list] stays
     byte-identical to the string-keyed path: same first-touch order, no
     phantom zero entries for vocabulary that never fired. *)
  type t = {
    group_name : string;
    table : (string, counter) Hashtbl.t;
    mutable order : counter list; (* reversed creation order *)
    ids : (string, id) Hashtbl.t;
    mutable slots : counter array;
    mutable enlisted : bool array;
    mutable n_ids : int;
  }

  let create group_name =
    {
      group_name;
      table = Hashtbl.create 16;
      order = [];
      ids = Hashtbl.create 16;
      slots = [||];
      enlisted = [||];
      n_ids = 0;
    }

  let name g = g.group_name

  let enlist g c =
    Hashtbl.add g.table c.name c;
    g.order <- c :: g.order

  let counter g counter_name =
    match Hashtbl.find_opt g.table counter_name with
    | Some c -> c
    | None -> (
        match Hashtbl.find_opt g.ids counter_name with
        | Some id ->
            let c = g.slots.(id) in
            g.enlisted.(id) <- true;
            enlist g c;
            c
        | None ->
            let c = make_counter counter_name in
            enlist g c;
            c)

  let grow g =
    let cap = Array.length g.slots in
    if g.n_ids = cap then begin
      let cap' = max 16 (2 * cap) in
      let slots' = Array.make cap' (make_counter "") in
      let enlisted' = Array.make cap' false in
      Array.blit g.slots 0 slots' 0 cap;
      Array.blit g.enlisted 0 enlisted' 0 cap;
      g.slots <- slots';
      g.enlisted <- enlisted'
    end

  let intern g counter_name =
    match Hashtbl.find_opt g.ids counter_name with
    | Some id -> id
    | None ->
        grow g;
        let id = g.n_ids in
        let already = Hashtbl.find_opt g.table counter_name in
        let c =
          match already with Some c -> c | None -> make_counter counter_name
        in
        g.slots.(id) <- c;
        g.enlisted.(id) <- already <> None;
        g.n_ids <- id + 1;
        Hashtbl.add g.ids counter_name id;
        id

  let incr_id g id =
    let c = g.slots.(id) in
    c.value <- c.value + 1;
    if not g.enlisted.(id) then begin
      g.enlisted.(id) <- true;
      enlist g c
    end

  let add_id g id n =
    let c = g.slots.(id) in
    c.value <- c.value + n;
    if not g.enlisted.(id) then begin
      g.enlisted.(id) <- true;
      enlist g c
    end

  let get_id g id = g.slots.(id).value
  let incr g counter_name = incr_counter (counter g counter_name)
  let add g counter_name n = add_counter (counter g counter_name) n

  let get g counter_name =
    match Hashtbl.find_opt g.table counter_name with
    | Some c -> c.value
    | None -> 0

  let to_list g = List.rev_map (fun c -> (c.name, c.value)) g.order

  let reset_all g =
    List.iter reset g.order;
    for i = 0 to g.n_ids - 1 do
      reset g.slots.(i)
    done

  let pp fmt g =
    Format.fprintf fmt "@[<v2>%s:" g.group_name;
    List.iter (fun (n, v) -> Format.fprintf fmt "@,%-40s %10d" n v) (to_list g);
    Format.fprintf fmt "@]"
end
