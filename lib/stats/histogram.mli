(** Latency/size histograms with power-of-two buckets.

    Exact count, sum, min and max; approximate percentiles from the bucket
    boundaries.  Memory use is constant regardless of sample count, which
    matters for multi-million-event stress runs. *)

type t

val create : string -> t
val name : t -> string

val observe : t -> int -> unit
(** Record a non-negative sample. *)

val count : t -> int
val sum : t -> int
val min_value : t -> int
(** Raises [Invalid_argument] when empty. *)

val max_value : t -> int
(** Raises [Invalid_argument] when empty. *)

val mean : t -> float
(** [0.0] when empty. *)

val percentile : t -> float -> int
(** [percentile t p] with [p] in [0,1]: an upper bound on the [p]-quantile,
    resolved to bucket granularity.  Raises [Invalid_argument] when empty. *)

val quantile : t -> float -> int option
(** Non-raising [percentile] for SLO evaluation: [None] when the histogram is
    empty; [quantile t 1.0] is the exact recorded maximum. *)

val merge : t -> t -> t
(** [merge a b] is a fresh histogram (named after [a]) holding the samples of
    both inputs.  Pure: neither input is mutated.  Bucket counts, totals and
    sums add; min/max combine — so sharded accumulation followed by [merge]
    is indistinguishable from observing the same samples sequentially. *)

val buckets : t -> (int * int * int) list
(** [(lo, hi, count)] for each non-empty bucket, ascending. *)

val of_dump :
  name:string -> sum:int -> min_v:int -> max_v:int -> (int * int) list -> t
(** Rebuild a histogram from [(lo, count)] bucket pairs as produced by
    {!buckets} (the metrics stream serialization).  Each [lo] must be [0] or a
    power of two — the bucket's canonical lower bound — else
    [Invalid_argument].  [sum]/[min_v]/[max_v] are trusted as recorded, so
    [of_dump] of a dump restores the original exactly and restored histograms
    {!merge} like the originals ([xguard report] relies on this). *)

val pp : Format.formatter -> t -> unit
