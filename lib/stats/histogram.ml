let bucket_count = 63

type t = {
  name : string;
  counts : int array; (* counts.(i) holds samples in [2^(i-1), 2^i), bucket 0 = {0} *)
  mutable total : int;
  mutable sum : int;
  mutable min_v : int;
  mutable max_v : int;
}

let create name =
  {
    name;
    counts = Array.make bucket_count 0;
    total = 0;
    sum = 0;
    min_v = max_int;
    max_v = min_int;
  }

let name t = t.name

(* Bucket 0 holds the value 0; bucket i>=1 holds [2^(i-1), 2^i). *)
let bucket_of_value v =
  if v = 0 then 0
  else
    let rec bits acc v = if v = 0 then acc else bits (acc + 1) (v lsr 1) in
    bits 0 v

let bucket_lo i = if i = 0 then 0 else 1 lsl (i - 1)
let bucket_hi i = if i = 0 then 0 else (1 lsl i) - 1

let observe t v =
  if v < 0 then invalid_arg "Histogram.observe: negative sample";
  let b = bucket_of_value v in
  t.counts.(b) <- t.counts.(b) + 1;
  t.total <- t.total + 1;
  t.sum <- t.sum + v;
  if v < t.min_v then t.min_v <- v;
  if v > t.max_v then t.max_v <- v

let count t = t.total
let sum t = t.sum

let require_nonempty t fn =
  if t.total = 0 then invalid_arg (Printf.sprintf "Histogram.%s: empty histogram" fn)

let min_value t =
  require_nonempty t "min_value";
  t.min_v

let max_value t =
  require_nonempty t "max_value";
  t.max_v

let mean t = if t.total = 0 then 0.0 else float_of_int t.sum /. float_of_int t.total

let percentile t p =
  require_nonempty t "percentile";
  let p = if p < 0.0 then 0.0 else if p > 1.0 then 1.0 else p in
  let target = int_of_float (ceil (p *. float_of_int t.total)) in
  let target = if target < 1 then 1 else target in
  let rec scan i seen =
    if i >= bucket_count then t.max_v
    else
      let seen = seen + t.counts.(i) in
      if seen >= target then min (bucket_hi i) t.max_v else scan (i + 1) seen
  in
  scan 0 0

(* Non-raising variant for SLO evaluation: an objective over a metric that
   recorded no samples must render as "no data", not crash the verdict
   table.  q = 1.0 returns the exact recorded maximum (not a bucket upper
   bound), so "p100 <= bound" is an exact check. *)
let quantile t q =
  if t.total = 0 then None
  else if q >= 1.0 then Some t.max_v
  else Some (percentile t q)

let merge a b =
  let t = create a.name in
  for i = 0 to bucket_count - 1 do
    t.counts.(i) <- a.counts.(i) + b.counts.(i)
  done;
  t.total <- a.total + b.total;
  t.sum <- a.sum + b.sum;
  t.min_v <- min a.min_v b.min_v;
  t.max_v <- max a.max_v b.max_v;
  t

(* Restore a histogram from a serialized bucket dump (the metrics JSONL
   stream's "hist" lines).  Each bucket's [lo] uniquely identifies its index,
   so restore . dump is the identity and restored histograms merge exactly
   like the originals. *)
let of_dump ~name ~sum ~min_v ~max_v dump =
  let t = create name in
  List.iter
    (fun (lo, c) ->
      if c < 0 then invalid_arg "Histogram.of_dump: negative count";
      let i = bucket_of_value lo in
      if bucket_lo i <> lo then
        invalid_arg (Printf.sprintf "Histogram.of_dump: %d is not a bucket boundary" lo);
      t.counts.(i) <- t.counts.(i) + c;
      t.total <- t.total + c)
    dump;
  if t.total > 0 then begin
    t.sum <- sum;
    t.min_v <- min_v;
    t.max_v <- max_v
  end;
  t

let buckets t =
  let acc = ref [] in
  for i = bucket_count - 1 downto 0 do
    if t.counts.(i) > 0 then acc := (bucket_lo i, bucket_hi i, t.counts.(i)) :: !acc
  done;
  !acc

let pp fmt t =
  if t.total = 0 then Format.fprintf fmt "%s: (empty)" t.name
  else
    Format.fprintf fmt "%s: n=%d mean=%.1f min=%d max=%d p50=%d p99=%d" t.name t.total
      (mean t) t.min_v t.max_v (percentile t 0.5) (percentile t 0.99)
