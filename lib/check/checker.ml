(** Bounded explicit-state model checker over the deterministic simulation.

    The simulator is already deterministic given (a) which of the events
    sharing the minimal timestamp fires next and (b) which latency each
    unordered-network draw picks.  Both are surfaced as explicit choices
    ({!Xguard_sim.Engine.choices} / the delay-chooser hook), so a whole
    execution is a pure function of its choice string.  The checker runs a
    depth-first search over that choice tree by re-execution: each path
    rebuilds the system from {!Xguard_harness.System.build} and replays its
    recorded prefix — no state copying, no forking.

    States are canonical fingerprints ({!Xguard_harness.System.t.check_fingerprint}
    plus the driver sequencers), hashed at every decision point, at the root
    and at drained terminals; a revisited fingerprint prunes the subtree
    (the fingerprint covers all live state including the pending-event
    horizon, so the future from an equal fingerprint is identical).

    Partial-order reduction: when several events share the timestamp, a
    candidate whose choice tag conflicts with no other candidate commutes
    with all of them and is fired without branching; the checker only
    branches when some candidate pair may fail to commute (same controller,
    same block, or untagged).  See DESIGN.md §10 for the soundness argument.

    Invariants are asserted after every fired event (SWMR, single-owner,
    data-value, guard G1b, guard inclusivity) and, at drained terminals, the
    stronger quiescent agreement checks plus deadlock detection.  A violation
    yields a minimal counterexample trail replayable with {!replay}. *)

module Engine = Xguard_sim.Engine
module Sys = Xguard_harness.System
module Config = Xguard_harness.Config
module Pool = Xguard_parallel.Pool
module Coverage = Xguard_trace.Coverage
module Trace = Xguard_trace.Trace

(* ---- plans ---- *)

type agent = Cpu of int | Accel of int

type plan = {
  config : Config.t;
  ops : (agent * Access.t list) list;  (* each agent issues its list in order *)
  max_depth : int;  (* choice-tree decisions per path *)
  max_states : int;  (* global distinct-fingerprint budget *)
  por : bool;
}

let agent_label = function
  | Cpu i -> Printf.sprintf "cpu%d" i
  | Accel i -> Printf.sprintf "accel%d" i

let pp_agent fmt a = Format.pp_print_string fmt (agent_label a)

let validate plan =
  let cfg = plan.config in
  if cfg.Config.host_net_min < 1 || cfg.Config.link_latency < 1 then
    invalid_arg
      "Checker.validate: all latencies must be >= 1 so a fired event cannot \
       inject new work into the current timestamp pool (POR soundness)";
  if plan.max_depth < 1 || plan.max_states < 1 then
    invalid_arg "Checker.validate: budgets must be positive";
  List.iter
    (fun (agent, accesses) ->
      (match agent with
      | Cpu i when i < 0 || i >= cfg.Config.num_cpus ->
          invalid_arg (Printf.sprintf "Checker.validate: no cpu %d in config" i)
      | _ -> ());
      List.iter
        (fun (a : Access.t) ->
          if Addr.to_int a.Access.addr >= (1 lsl 24) - 1 then
            invalid_arg "Checker.validate: block addresses must fit in 24-bit tags")
        accesses)
    plan.ops

(* ---- summaries ---- *)

type violation = { trail : int list; message : string }

(* Canonical summary: identical for any worker count (see {!explore}).  The
   two digests hash the sorted visited-state and edge sets, so two summaries
   are equal iff the explored graphs are. *)
type summary = {
  states : int;
  transitions : int;
  states_digest : string;
  edges_digest : string;
  violations : violation list;  (* sorted; empty on a healthy model *)
}

(* Traversal-order-dependent counters; excluded from the canonical summary
   because sharded exploration legitimately re-executes pruned segments. *)
type diagnostics = {
  paths : int;
  decisions : int;
  por_collapsed : int;  (* multi-candidate pools fired without branching *)
  deepest : int;
  truncated_depth : int;  (* paths cut by the depth budget *)
  truncated_states : bool;  (* state budget reached *)
}

type result = { summary : summary; diagnostics : diagnostics }

let summary_to_string s =
  let vio =
    String.concat ","
      (List.map
         (fun v ->
           Printf.sprintf "{%s|%s}"
             (String.concat ";" (List.map string_of_int v.trail))
             v.message)
         s.violations)
  in
  Printf.sprintf "states=%d transitions=%d states_md5=%s edges_md5=%s violations=[%s]"
    s.states s.transitions s.states_digest s.edges_digest vio

(* ---- one path ---- *)

type shared = {
  visited : (string, unit) Hashtbl.t;
  edges : (string * string, unit) Hashtbl.t;
  mutable n_paths : int;
  mutable n_decisions : int;
  mutable n_por : int;
  mutable n_deepest : int;
  mutable n_trunc_depth : int;
  mutable trunc_states : bool;
}

let fresh_shared () =
  {
    visited = Hashtbl.create 4096;
    edges = Hashtbl.create 4096;
    n_paths = 0;
    n_decisions = 0;
    n_por = 0;
    n_deepest = 0;
    n_trunc_depth = 0;
    trunc_states = false;
  }

exception Stop_path of [ `Violation of string | `Depth | `Pruned | `States ]

(* A decision recorded along one path: which branch was taken out of how
   many.  Scheduler choices and delay choices share one sequence — execution
   is a pure function of the flattened [chosen] string. *)
type decision = { chosen : int; arity : int }

type path = {
  trail : decision array;  (* in order *)
  ending : [ `Terminal | `Violation of string | `Depth | `Pruned | `States ];
}

(* Execute one path: replay [prefix] choices, then take branch 0 at every new
   decision, recording arities for the caller to backtrack over.  [sh] is
   consulted for pruning only beyond the prefix. *)
let run_path ?extra_invariant ?(collect = fun (_ : Sys.t) -> ()) plan ~(prefix : int array)
    ~(sh : shared) () =
  let sys = Sys.build plan.config in
  sys.Sys.check_enable ();
  let trail = ref [] and n_trail = ref 0 in
  let decide arity =
    if arity < 1 then invalid_arg "Checker: empty decision";
    if !n_trail >= plan.max_depth then raise (Stop_path `Depth);
    let chosen = if !n_trail < Array.length prefix then prefix.(!n_trail) else 0 in
    if chosen >= arity then
      invalid_arg
        (Printf.sprintf "Checker: stale prefix (chose %d of %d at decision %d)" chosen
           arity !n_trail);
    trail := { chosen; arity } :: !trail;
    incr n_trail;
    sh.n_decisions <- sh.n_decisions + 1;
    chosen
  in
  sys.Sys.check_set_delay_chooser (fun ~lo ~hi ->
      if hi <= lo then lo else lo + decide (hi - lo + 1));
  (* Driver: one sequencer per referenced port, each replaying its op list. *)
  let remaining = ref 0 in
  List.iter (fun (_, accesses) -> remaining := !remaining + List.length accesses) plan.ops;
  List.iter
    (fun (agent, accesses) ->
      let port, ctrl =
        match agent with
        | Cpu i -> (sys.Sys.cpu_ports.(i), sys.Sys.check_cpu_ctrls.(i))
        | Accel i -> (sys.Sys.accel_ports.(i), sys.Sys.check_accel_ctrls.(i))
      in
      let seq =
        Sequencer.create ~engine:sys.Sys.engine ~name:("chk." ^ agent_label agent) ~port
          ~max_outstanding:1 ()
      in
      if ctrl >= 0 then Sequencer.set_check_ctrl seq ctrl;
      let rec issue = function
        | [] -> ()
        | access :: rest ->
            Sequencer.request seq access ~on_complete:(fun _value ~latency:_ ->
                decr remaining;
                issue rest)
      in
      issue accesses)
    plan.ops;
  let digest () =
    let buf = Buffer.create 1024 in
    sys.Sys.check_fingerprint buf;
    Digest.to_hex (Digest.string (Buffer.contents buf))
  in
  let check_invariants () =
    (match sys.Sys.check_invariant () with
    | Some msg -> raise (Stop_path (`Violation msg))
    | None -> ());
    match extra_invariant with
    | Some f -> (
        match f sys with Some msg -> raise (Stop_path (`Violation msg)) | None -> ())
    | None -> ()
  in
  let engine = sys.Sys.engine in
  (* Digest of the previous decision point on this path; [None] before the
     first one (the root is only counted once it is itself a decision point
     or terminal, so an immediate branch does not self-prune). *)
  let cur = ref None in
  let visit_state d =
    (match !cur with Some c -> Hashtbl.replace sh.edges (c, d) () | None -> ());
    (if Hashtbl.mem sh.visited d then
       (* Within the prefix a revisit is just the replay passing through its
          own footsteps; beyond it, an equal fingerprint means an identical
          future — prune. *)
       (if !n_trail >= Array.length prefix then raise (Stop_path `Pruned))
     else begin
       if Hashtbl.length sh.visited >= plan.max_states then begin
         sh.trunc_states <- true;
         raise (Stop_path `States)
       end;
       Hashtbl.replace sh.visited d ()
     end);
    cur := Some d
  in
  let ending =
    try
      check_invariants ();
      let rec loop () =
        let cands = Engine.choices engine in
        let n = Array.length cands in
        if n = 0 then begin
          (* Drained terminal: deadlock and quiescent checks run before the
             visited-set lookup — [remaining] is driver progress the
             fingerprint does not cover, so these must fire even on a state
             that would otherwise prune. *)
          if !remaining > 0 then
            raise
              (Stop_path
                 (`Violation
                   (Printf.sprintf "deadlock: drained with %d accesses incomplete"
                      !remaining)));
          (match sys.Sys.check_quiescent_invariant () with
          | Some msg -> raise (Stop_path (`Violation msg))
          | None -> ());
          visit_state (digest ());
          `Terminal
        end
        else begin
          (* POR: a candidate whose tag conflicts with no other candidate
             commutes with every one of them; fire it without branching. *)
          let independent =
            if (not plan.por) || n = 1 then None
            else begin
              let found = ref None in
              let i = ref 0 in
              while !found = None && !i < n do
                let tag_i = fst cands.(!i) in
                if tag_i <> Engine.no_tag then begin
                  let ok = ref true in
                  for j = 0 to n - 1 do
                    if j <> !i && Engine.tags_conflict tag_i (fst cands.(j)) then
                      ok := false
                  done;
                  if !ok then found := Some !i
                end;
                incr i
              done;
              !found
            end
          in
          let idx =
            match independent with
            | Some i ->
                if n > 1 then sh.n_por <- sh.n_por + 1;
                i
            | None ->
                if n = 1 then 0
                else begin
                  visit_state (digest ());
                  decide n
                end
          in
          (* Keys are invalidated by any firing; re-read the pool. *)
          let cands = Engine.choices engine in
          if idx >= Array.length cands then invalid_arg "Checker: choice pool changed";
          Engine.fire_choice engine ~key:(snd cands.(idx));
          check_invariants ();
          loop ()
        end
      in
      loop ()
    with Stop_path e -> (e :> [ `Terminal | `Violation of string | `Depth | `Pruned | `States ])
  in
  (* Even a pruned path may have fired transitions its parent never did
     (between the branch point and the prune), so coverage is harvested from
     every path. *)
  collect sys;
  sh.n_paths <- sh.n_paths + 1;
  if !n_trail > sh.n_deepest then sh.n_deepest <- !n_trail;
  (match ending with `Depth -> sh.n_trunc_depth <- sh.n_trunc_depth + 1 | _ -> ());
  { trail = Array.of_list (List.rev !trail); ending }

(* ---- DFS driver ---- *)

let compare_violation (a : violation) (b : violation) =
  match compare (List.length a.trail) (List.length b.trail) with
  | 0 -> compare (a.trail, a.message) (b.trail, b.message)
  | c -> c

(* Explore every sibling of every decision below [base], depth-first.  Stops
   expanding on the first violation (its trail is the counterexample). *)
let explore_from ?extra_invariant ?collect plan ~sh ~(base : int array) =
  let violations = ref [] in
  let stack = ref [ base ] in
  let budget_hit () = sh.trunc_states in
  while !stack <> [] && !violations = [] && not (budget_hit ()) do
    match !stack with
    | [] -> ()
    | prefix :: rest ->
        stack := rest;
        let p = run_path ?extra_invariant ?collect plan ~prefix ~sh () in
        (match p.ending with
        | `Violation message ->
            violations :=
              [ { trail = Array.to_list (Array.map (fun d -> d.chosen) p.trail); message } ]
        | `Terminal | `Depth | `Pruned | `States -> ());
        (* Push unexplored siblings of every decision taken beyond the popped
           prefix (positions inside it were already enumerated when its
           ancestors ran), deepest first so the traversal stays
           depth-first. *)
        if !violations = [] then
          for i = Array.length p.trail - 1 downto Array.length prefix do
            let d = p.trail.(i) in
            for c = d.arity - 1 downto d.chosen + 1 do
              let sibling = Array.init (i + 1) (fun j -> if j = i then c else p.trail.(j).chosen) in
              stack := sibling :: !stack
            done
          done
  done;
  !violations

let summarize sh violations =
  let sorted tbl render =
    Hashtbl.fold (fun k () acc -> render k :: acc) tbl []
    |> List.sort String.compare |> String.concat "\n"
  in
  {
    states = Hashtbl.length sh.visited;
    transitions = Hashtbl.length sh.edges;
    states_digest = Digest.to_hex (Digest.string (sorted sh.visited Fun.id));
    edges_digest =
      Digest.to_hex (Digest.string (sorted sh.edges (fun (a, b) -> a ^ ">" ^ b)));
    violations = List.sort_uniq compare_violation violations;
  }

let diagnostics_of sh =
  {
    paths = sh.n_paths;
    decisions = sh.n_decisions;
    por_collapsed = sh.n_por;
    deepest = sh.n_deepest;
    truncated_depth = sh.n_trunc_depth;
    truncated_states = sh.trunc_states;
  }

(* Sequential exploration. *)
let explore_seq ?extra_invariant ?collect plan =
  validate plan;
  let sh = fresh_shared () in
  let violations = explore_from ?extra_invariant ?collect plan ~sh ~base:[||] in
  (summarize sh violations, diagnostics_of sh)

(* Frontier sharding: phase 1 explores sequentially but cuts every path at
   [split] decisions, collecting the cut prefixes; phase 2 fans the prefix
   cones out over a pool.  Each shard prunes only within its own cone, so it
   may re-execute states another shard also reaches — the visited/edge SETS
   it contributes are the same ones the sequential search finds (an equal
   fingerprint has an identical future), and the merged summary is
   byte-identical to the sequential one. *)
let explore ?(workers = 1) ?extra_invariant ?collect plan =
  validate plan;
  if workers <= 1 then
    let summary, diagnostics = explore_seq ?extra_invariant ?collect plan in
    { summary; diagnostics }
  else begin
    let split = 6 in
    let sh1 = fresh_shared () in
    let frontier = ref [] in
    let phase1 = { plan with max_depth = min plan.max_depth split } in
    let stack = ref [ [||] ] in
    let violations = ref [] in
    while !stack <> [] && !violations = [] do
      match !stack with
      | [] -> ()
      | prefix :: rest ->
          stack := rest;
          let p = run_path ?extra_invariant ?collect phase1 ~prefix ~sh:sh1 () in
          (match p.ending with
          | `Violation message ->
              violations :=
                [
                  { trail = Array.to_list (Array.map (fun d -> d.chosen) p.trail); message };
                ]
          | `Depth ->
              frontier := Array.map (fun d -> d.chosen) p.trail :: !frontier
          | `Terminal | `Pruned | `States -> ());
          if !violations = [] then
            for i = Array.length p.trail - 1 downto 0 do
              let d = p.trail.(i) in
              for c = d.arity - 1 downto d.chosen + 1 do
                let sibling =
                  Array.init (i + 1) (fun j -> if j = i then c else p.trail.(j).chosen)
                in
                stack := sibling :: !stack
              done
            done
    done;
    let frontier = Array.of_list (List.rev !frontier) in
    let outcomes =
      Pool.map ~workers ~jobs:(Array.length frontier) (fun i ->
          let sh = fresh_shared () in
          let vio = explore_from ?extra_invariant ?collect plan ~sh ~base:frontier.(i) in
          (sh, vio))
    in
    (* Merge: set union; phase-1 structures seed the union. *)
    let merged = sh1 in
    let all_violations = ref !violations in
    Array.iter
      (function
        | Pool.Done (sh, vio) ->
            Hashtbl.iter (fun k () -> Hashtbl.replace merged.visited k ()) sh.visited;
            Hashtbl.iter (fun k () -> Hashtbl.replace merged.edges k ()) sh.edges;
            merged.n_paths <- merged.n_paths + sh.n_paths;
            merged.n_decisions <- merged.n_decisions + sh.n_decisions;
            merged.n_por <- merged.n_por + sh.n_por;
            if sh.n_deepest > merged.n_deepest then merged.n_deepest <- sh.n_deepest;
            merged.n_trunc_depth <- merged.n_trunc_depth + sh.n_trunc_depth;
            if sh.trunc_states then merged.trunc_states <- true;
            all_violations := vio @ !all_violations
        | Pool.Failed msg -> all_violations := { trail = []; message = "shard crashed: " ^ msg } :: !all_violations)
      outcomes;
    { summary = summarize merged !all_violations; diagnostics = diagnostics_of merged }
  end

(* ---- counterexample replay ---- *)

(* Re-execute one trail with the trace buffer armed and return the recorded
   events plus whatever the trail ends in.  Used by [xguard check --replay]
   and the broken-invariant regression test. *)
let replay ?extra_invariant ?(trace_capacity = 4096) plan (trail : int list) =
  validate plan;
  let buf = Trace.create ~capacity:trace_capacity () in
  let sh = fresh_shared () in
  let outcome =
    Trace.with_armed buf (fun () ->
        let p =
          run_path ?extra_invariant plan ~prefix:(Array.of_list trail) ~sh ()
        in
        match p.ending with
        | `Violation m -> `Violation m
        | `Terminal -> `Terminal
        | `Depth | `Pruned | `States -> `Incomplete)
  in
  (outcome, Trace.to_list buf)

(* ---- canned tiny configurations ---- *)

(* The exhaustively-checkable corner of the configuration space: one CPU, one
   accelerator core, direct-mapped-ish caches over 2-3 blocks, every latency
   pinned to its minimum, a jitter-free host network (the scheduler-choice
   layer still explores every same-cycle interleaving).  [jitter] re-opens
   link-delay nondeterminism (host_net 1..2) for a deliberately wider tree. *)
let tiny_config ?(jitter = false) ~host ~variant () =
  {
    Config.default with
    Config.host;
    org = Config.Xg_one_level variant;
    num_cpus = 1;
    num_accel_cores = 1;
    seed = 1;
    cpu_sets = 1;
    cpu_ways = 2;
    accel_sets = 1;
    accel_ways = 1;
    accel_l2_sets = 1;
    accel_l2_ways = 2;
    host_l2_sets = 1;
    host_l2_ways = 2;
    host_net_min = 1;
    host_net_max = (if jitter then 2 else 1);
    link_latency = 1;
    link_ordered = true;
    mem_latency = 1;
    dir_occupancy = 0;
    xg_timeout = 400;
  }

(* Two blocks, crossing access patterns: the CPU and the accelerator both
   touch both blocks, with stores on each side so ownership migrates across
   the guard in both directions. *)
let tiny_ops () =
  let a0 = Addr.block 0 and a1 = Addr.block 1 in
  [
    (Cpu 0, [ Access.store a0 (Data.token 1); Access.load a1 ]);
    (Accel 0, [ Access.store a1 (Data.token 2); Access.load a0 ]);
  ]

let tiny_plan ?(jitter = false) ~host ~variant () =
  {
    config = tiny_config ~jitter ~host ~variant ();
    ops = tiny_ops ();
    max_depth = 2000;
    max_states = 500_000;
    por = true;
  }

(* The named sweep [xguard check] and tools/check_model.sh iterate; the
   baseline file pins one line per entry.  Jittered trees are an order of
   magnitude bigger, so they come last — a wall-clock budget cuts from the
   tail. *)
let tiny_plans () =
  [
    ("hammer/full", tiny_plan ~host:Config.Hammer ~variant:Config.Full_state ());
    ("mesi/full", tiny_plan ~host:Config.Mesi ~variant:Config.Full_state ());
    ("hammer/trans", tiny_plan ~host:Config.Hammer ~variant:Config.Transactional ());
    ("mesi/trans", tiny_plan ~host:Config.Mesi ~variant:Config.Transactional ());
    ("mesi/full+jitter",
     tiny_plan ~jitter:true ~host:Config.Mesi ~variant:Config.Full_state ());
    ("hammer/full+jitter",
     tiny_plan ~jitter:true ~host:Config.Hammer ~variant:Config.Full_state ());
  ]

(* ---- coverage accumulation ---- *)

(* Every ["STATE.Event"] pair hit anywhere in the explored choice tree, per
   coverage space — the checker's reachable-set output, which the coverage
   floors cite when distinguishing "provably unreachable under this config"
   from "the random suite just never got there".  Sequential only (the
   accumulator is shared mutable state). *)
let covered_pairs ?extra_invariant plan =
  let acc : (string, (string, unit) Hashtbl.t) Hashtbl.t = Hashtbl.create 8 in
  let collect (sys : Sys.t) =
    List.iter
      (fun (name, (_ : Coverage.space), groups) ->
        let set =
          match Hashtbl.find_opt acc name with
          | Some s -> s
          | None ->
              let s = Hashtbl.create 64 in
              Hashtbl.add acc name s;
              s
        in
        List.iter
          (fun g ->
            List.iter
              (fun (k, n) -> if n > 0 then Hashtbl.replace set k ())
              (Xguard_stats.Counter.Group.to_list g))
          groups)
      (sys.Sys.coverage_sets ())
  in
  let summary, diagnostics = explore_seq ?extra_invariant ~collect plan in
  let pairs =
    Hashtbl.fold
      (fun name set acc ->
        (name, Hashtbl.fold (fun k () l -> k :: l) set [] |> List.sort String.compare)
        :: acc)
      acc []
    |> List.sort compare
  in
  ({ summary; diagnostics }, pairs)
