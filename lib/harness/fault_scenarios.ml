module Engine = Xguard_sim.Engine
module Xg = Xguard_xg
module Xg_iface = Xguard_xg.Xg_iface
module Network = Xguard_network.Network

type scenario =
  | Read_no_access
  | Write_read_only
  | Put_without_block
  | Double_get
  | Wrong_response_type
  | Unsolicited_response
  | Silent_on_invalidate
  | Link_dead
  | Recovery_rejoin
  | Repeated_quarantine_permakill
  | Tarpit_budget

type outcome = {
  scenario : scenario;
  expected_kind : Xg.Os_model.error_kind;
  detected : bool;
  host_live : bool;
  errors_logged : int;
  quarantined : bool;
  os_quarantined : bool;
  rejoins : int;
  permakilled : bool;
  budget_trips : int;
  g2c_timeouts : int;
  accel_live_after : bool;
      (* recovery scenarios: a fresh accelerator request was granted after
         the rejoin (always false elsewhere) *)
  coverage_sets :
    (string * Xguard_trace.Coverage.space * Xguard_stats.Counter.Group.t list) list;
}

let all_scenarios =
  [
    Read_no_access;
    Write_read_only;
    Put_without_block;
    Double_get;
    Wrong_response_type;
    Unsolicited_response;
    Silent_on_invalidate;
    Link_dead;
    Recovery_rejoin;
    Repeated_quarantine_permakill;
    Tarpit_budget;
  ]

let scenario_name = function
  | Read_no_access -> "G0a: read of a no-access page"
  | Write_read_only -> "G0b: write request to a read-only page"
  | Put_without_block -> "G1a: Put for a block not held"
  | Double_get -> "G1b: second request while one is pending"
  | Wrong_response_type -> "G2a: InvAck while owning the block"
  | Unsolicited_response -> "G2b: unsolicited writeback"
  | Silent_on_invalidate -> "G2c: no response to Invalidate"
  | Link_dead -> "Link: link goes dark mid-transaction"
  | Recovery_rejoin -> "Recovery: quarantine, reset, probation, clean rejoin"
  | Repeated_quarantine_permakill -> "Recovery: repeated quarantines end in permakill"
  | Tarpit_budget -> "Budget: slow-but-honest InvAck trips inv-ack budget before G2c"

let expected_kind = function
  | Read_no_access -> Xg.Os_model.Perm_read_violation
  | Write_read_only -> Xg.Os_model.Perm_write_violation
  | Put_without_block -> Xg.Os_model.Bad_request_stable
  | Double_get -> Xg.Os_model.Request_while_pending
  | Wrong_response_type -> Xg.Os_model.Bad_response_type
  | Unsolicited_response -> Xg.Os_model.Unsolicited_response
  | Silent_on_invalidate -> Xg.Os_model.Response_timeout
  | Link_dead | Recovery_rejoin | Repeated_quarantine_permakill -> Xg.Os_model.Link_fault
  | Tarpit_budget -> Xg.Os_model.Budget_exceeded

(* A scripted accelerator endpoint: records grants, answers invalidations
   according to [inv_policy]. *)
type script = {
  mutable grants : (Addr.t * Xg_iface.xg_response) list;
  mutable inv_policy : Addr.t -> Xg_iface.accel_response option;
  mutable inv_delay : int;  (* cycles before the policy's answer is sent *)
}

let attach_script (sys : System.t) =
  let script = { grants = []; inv_policy = (fun _ -> Some Xg_iface.Inv_ack); inv_delay = 0 } in
  let link = Option.get sys.System.accel_link in
  let self = Option.get sys.System.accel_node_on_link in
  let xg = Option.get sys.System.xg_node_on_link in
  let send msg = Xg_iface.Link.send link ~src:self ~dst:xg ~size:(Xg_iface.msg_size msg) msg in
  Xg_iface.Link.register link self (fun ~src:_ msg ->
      match msg with
      | Xg_iface.To_accel_resp { addr; resp } -> script.grants <- (addr, resp) :: script.grants
      | Xg_iface.To_accel_req { addr; req = Xg_iface.Invalidate } -> (
          match script.inv_policy addr with
          | Some resp ->
              if script.inv_delay = 0 then send (Xg_iface.To_xg_resp { addr; resp })
              else
                Engine.schedule sys.System.engine ~delay:script.inv_delay (fun () ->
                    send (Xg_iface.To_xg_resp { addr; resp }))
          | None -> ())
      | Xg_iface.To_xg_req _ | Xg_iface.To_xg_resp _ -> ());
  (script, send)

let cpu_roundtrip (sys : System.t) cpu addr value =
  (* A store then a load through CPU caches; returns true if both complete. *)
  let stored = ref false and loaded = ref None in
  let port = sys.System.cpu_ports.(cpu) in
  let rec attempt_store tries =
    if tries > 500 then false
    else if
      port.Access.issue (Access.store addr (Data.token value)) ~on_done:(fun _ ->
          stored := true)
    then true
    else begin
      ignore (Engine.run sys.System.engine);
      attempt_store (tries + 1)
    end
  in
  let ok = attempt_store 0 in
  ignore (Engine.run sys.System.engine);
  let rec attempt_load tries =
    if tries > 500 then false
    else if port.Access.issue (Access.load addr) ~on_done:(fun v -> loaded := Some v) then true
    else begin
      ignore (Engine.run sys.System.engine);
      attempt_load (tries + 1)
    end
  in
  let ok = ok && attempt_load 0 in
  ignore (Engine.run sys.System.engine);
  ok && !stored && !loaded = Some (Data.token value)

let a_victim = Addr.block 3
let a_unrelated = Addr.block 200

(* A recovery policy small enough that the whole lifecycle (reset after 100
   cycles, 400-cycle probation) fits in one scenario run. *)
let scenario_recovery ~permakill_after =
  Xg.Xg_core.make_recovery ~reset_delay:100 ~reset_timeout:32 ~reset_attempts:4
    ~probation_window:400 ~probation_rate:0.5 ~probation_burst:2
    ~probation_quarantine_after:2 ~permakill_after ()

let run (cfg : Config.t) scenario =
  assert (Config.uses_xg cfg);
  let lossy_quick base =
    (* Reliability on (no probabilistic injection), with a short backoff
       ladder and a low quarantine threshold so the run stays quick. *)
    {
      base with
      Config.link_faults = Some Network.Fault.zero;
      link_retry_timeout = 16;
      link_max_retries = 2;
      quarantine_after = 2;
    }
  in
  let cfg =
    match scenario with
    | Link_dead -> lossy_quick cfg
    | Recovery_rejoin ->
        { (lossy_quick cfg) with Config.recovery = Some (scenario_recovery ~permakill_after:4) }
    | Repeated_quarantine_permakill ->
        { (lossy_quick cfg) with Config.recovery = Some (scenario_recovery ~permakill_after:2) }
    | Tarpit_budget ->
        (* One tripped budget quarantines; the G2c deadline stays far away. *)
        {
          cfg with
          Config.budgets = { Xg.Xg_core.no_budgets with Xg.Xg_core.inv_ack = Some 100 };
          quarantine_after = 1;
          xg_timeout = 4000;
        }
    | _ -> cfg
  in
  let sys = System.build ~attach_accel:false cfg in
  let script, send = attach_script sys in
  let run_engine () = ignore (Engine.run sys.System.engine) in
  let get addr req = send (Xg_iface.To_xg_req { addr; req }) in
  (match scenario with
  | Read_no_access ->
      Xg.Perm_table.set_block sys.System.perms a_victim Perm.No_access;
      get a_victim Xg_iface.Get_s;
      run_engine ()
  | Write_read_only ->
      Xg.Perm_table.set_block sys.System.perms a_victim Perm.Read_only;
      get a_victim Xg_iface.Get_m;
      run_engine ()
  | Put_without_block ->
      get a_victim (Xg_iface.Put_m (Data.token 666));
      run_engine ()
  | Double_get ->
      get a_victim Xg_iface.Get_s;
      get a_victim Xg_iface.Get_s;
      run_engine ()
  | Wrong_response_type | Silent_on_invalidate ->
      (* Setup: legitimately acquire the block exclusively... *)
      get a_victim Xg_iface.Get_m;
      run_engine ();
      assert (script.grants <> []);
      (* ...then set the misbehaviour policy and have a CPU pull the block. *)
      script.inv_policy <-
        (fun _ ->
          match scenario with
          | Wrong_response_type -> Some Xg_iface.Inv_ack
          | _ -> None);
      ignore (cpu_roundtrip sys 0 a_victim 1234)
  | Unsolicited_response ->
      send (Xg_iface.To_xg_resp { addr = a_victim; resp = Xg_iface.Dirty_wb (Data.token 7) });
      run_engine ()
  | Link_dead ->
      (* Acquire the block exclusively, then the wire goes dark: the guard's
         Invalidate is lost on every retransmission round, faults escalate
         and the accelerator is quarantined; the CPU's store completes from
         the quarantine drain (zeroed-writeback substitution). *)
      get a_victim Xg_iface.Get_m;
      run_engine ();
      assert (script.grants <> []);
      Xg_iface.Link.cut_wire (Option.get sys.System.accel_link);
      ignore (cpu_roundtrip sys 0 a_victim 1234)
  | Recovery_rejoin | Repeated_quarantine_permakill ->
      (* Same dark-wire quarantine as [Link_dead], but the recovery policy
         splices the wire back during the reset handshake and re-admits the
         accelerator; running to quiescence covers the probation window. *)
      get a_victim Xg_iface.Get_m;
      run_engine ();
      assert (script.grants <> []);
      Xg_iface.Link.cut_wire (Option.get sys.System.accel_link);
      ignore (cpu_roundtrip sys 0 a_victim 1234);
      run_engine ();
      if scenario = Repeated_quarantine_permakill then begin
        (* Back in service: re-acquire, then the wire dies a second time —
           that quarantine exhausts the two recovery lives. *)
        get a_victim Xg_iface.Get_m;
        run_engine ();
        Xg_iface.Link.cut_wire (Option.get sys.System.accel_link);
        ignore (cpu_roundtrip sys 0 a_victim 4321)
      end
  | Tarpit_budget ->
      (* Acquire exclusively, then answer the CPU-triggered Invalidate
         correctly but 600 cycles late: over the 100-cycle inv→ack budget,
         far under the 4000-cycle G2c deadline.  The budget trip quarantines
         (threshold 1) and the drain answers the host; the late InvAck lands
         on a quarantined guard and is dropped. *)
      get a_victim Xg_iface.Get_m;
      run_engine ();
      assert (script.grants <> []);
      script.inv_delay <- 600;
      ignore (cpu_roundtrip sys 0 a_victim 1234));
  run_engine ();
  (* Recovery probe: can the accelerator transact again?  Must succeed after
     a rejoin, must keep failing after a permakill or plain quarantine. *)
  let accel_live_after =
    match scenario with
    | Recovery_rejoin | Repeated_quarantine_permakill | Tarpit_budget ->
        let before = List.length script.grants in
        get (Addr.block 7) Xg_iface.Get_s;
        run_engine ();
        List.length script.grants > before
    | _ -> false
  in
  let kind = expected_kind scenario in
  let detected = Xg.Os_model.count_of sys.System.os kind > 0 in
  (* Host liveness: traffic to the affected block and an unrelated block. *)
  let live_affected = cpu_roundtrip sys 0 a_victim 5555 in
  let live_unrelated = cpu_roundtrip sys 1 a_unrelated 6666 in
  let sum_guards f =
    Array.fold_left (fun acc g -> acc + f g.System.g_core) 0 sys.System.guards
  in
  {
    scenario;
    expected_kind = kind;
    detected;
    host_live = live_affected && live_unrelated;
    errors_logged = Xg.Os_model.error_count sys.System.os;
    quarantined = sys.System.quarantined ();
    os_quarantined = Xg.Os_model.quarantined sys.System.os;
    rejoins = sum_guards Xg.Xg_core.rejoins;
    permakilled =
      Array.exists (fun g -> Xg.Xg_core.permakilled g.System.g_core) sys.System.guards;
    budget_trips = sum_guards Xg.Xg_core.budget_trips;
    g2c_timeouts = Xg.Os_model.count_of sys.System.os Xg.Os_model.Response_timeout;
    accel_live_after;
    coverage_sets = sys.System.coverage_sets ();
  }

let run_all cfg = List.map (run cfg) all_scenarios
