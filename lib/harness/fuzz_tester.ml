module Engine = Xguard_sim.Engine
module Rng = Xguard_sim.Rng
module Xg = Xguard_xg
module Trace = Xguard_trace.Trace

type crash_info = { exn_text : string; seed : int; trace_tail : Trace.event list }

type outcome = {
  chaos_messages : int;
  invalidations_ignored : int;
  cpu_ops_completed : int;
  cpu_ops_expected : int;
  cpu_data_errors : int;
  violations : int;
  violations_by_kind : (Xg.Os_model.error_kind * int) list;
  deadlocked : bool;
  crashed : crash_info option;
  seed : int;
  first_error_addr : int option;
  trace_tail : Trace.event list;
  trace_dropped : int;  (* ring-buffer events lost before [trace_tail] was cut *)
  coverage_sets :
    (string * Xguard_trace.Coverage.space * Xguard_stats.Counter.Group.t list) list;
  link_faults : (string * int) list;
  quarantined : bool;
  rejoins : int;
  permakilled : bool;
  budget_trips : int;
}

type pool = Shared_rw | Disjoint | Shared_ro

let merge a b =
  let first_some x y = match x with Some _ -> x | None -> y in
  let violations_by_kind =
    (* Re-derive from the canonical kind order so the merged list is
       deterministic regardless of which runs saw which kinds first. *)
    List.filter_map
      (fun kind ->
        let of_run o = Option.value ~default:0 (List.assoc_opt kind o.violations_by_kind) in
        let n = of_run a + of_run b in
        if n > 0 then Some (kind, n) else None)
      Xg.Os_model.all_error_kinds
  in
  let coverage_sets =
    let groups_of name o =
      List.concat_map (fun (n, _, gs) -> if n = name then gs else []) o.coverage_sets
    in
    List.map
      (fun (name, space, _) -> (name, space, groups_of name a @ groups_of name b))
      a.coverage_sets
    @ List.filter
        (fun (name, _, _) -> not (List.exists (fun (n, _, _) -> n = name) a.coverage_sets))
        b.coverage_sets
  in
  let link_faults =
    (* Keys in [a]'s order, then [b]-only keys, so merged reports are stable
       whichever runs contributed. *)
    List.map
      (fun (k, n) -> (k, n + Option.value ~default:0 (List.assoc_opt k b.link_faults)))
      a.link_faults
    @ List.filter (fun (k, _) -> not (List.mem_assoc k a.link_faults)) b.link_faults
  in
  {
    chaos_messages = a.chaos_messages + b.chaos_messages;
    invalidations_ignored = a.invalidations_ignored + b.invalidations_ignored;
    cpu_ops_completed = a.cpu_ops_completed + b.cpu_ops_completed;
    cpu_ops_expected = a.cpu_ops_expected + b.cpu_ops_expected;
    cpu_data_errors = a.cpu_data_errors + b.cpu_data_errors;
    violations = a.violations + b.violations;
    violations_by_kind;
    deadlocked = a.deadlocked || b.deadlocked;
    crashed = first_some a.crashed b.crashed;
    seed = a.seed;
    first_error_addr = first_some a.first_error_addr b.first_error_addr;
    trace_tail = (if a.trace_tail <> [] then a.trace_tail else b.trace_tail);
    trace_dropped = (if a.trace_tail <> [] then a.trace_dropped else b.trace_dropped);
    coverage_sets;
    link_faults;
    quarantined = a.quarantined || b.quarantined;
    rejoins = a.rejoins + b.rejoins;
    permakilled = a.permakilled || b.permakilled;
    budget_trips = a.budget_trips + b.budget_trips;
  }

let tail_limit = 60

let dropped_of trace = match trace with None -> 0 | Some tr -> Trace.dropped tr

let tail_of trace ~addr_hint =
  match trace with
  | None -> []
  | Some tr ->
      let events =
        match addr_hint with
        | Some a -> Trace.events_for tr ~addr:a
        | None -> Trace.to_list tr
      in
      let n = List.length events in
      if n <= tail_limit then events
      else List.filteri (fun i _ -> i >= n - tail_limit) events

let run (cfg : Config.t) ?(pool = Shared_rw) ?(cpu_ops = 300) ?(chaos_period = 4)
    ?(chaos_duration = 60_000) ?(respond_probability = 0.6) ?(requests_only = false)
    ?tarpit ?(num_addresses = 6) ?trace () =
  assert (Config.uses_xg cfg);
  let sys = System.build ~attach_accel:false cfg in
  let chaos_addresses = Array.init num_addresses Addr.block in
  let cpu_addresses =
    match pool with
    | Shared_rw | Shared_ro -> chaos_addresses
    | Disjoint -> Array.init num_addresses (fun i -> Addr.block (1024 + i))
  in
  (match pool with
  | Shared_ro ->
      Array.iter
        (fun a -> Xg.Perm_table.set_block sys.System.perms a Perm.Read_only)
        chaos_addresses
  | Disjoint ->
      (* CPU-private pages: the accelerator has no permission, so the guard
         answers host snoops for them locally and even a lying accelerator
         cannot inject data (transactional mode admits corruption only for
         pages the accelerator may write — paper §2.3.2). *)
      Array.iter
        (fun a -> Xg.Perm_table.set_block sys.System.perms a Perm.No_access)
        cpu_addresses
  | Shared_rw -> ());
  let addresses = chaos_addresses in
  let chaos =
    Xguard_accel.Chaos_accel.create ~engine:sys.System.engine
      ~rng:(Rng.create ~seed:(cfg.Config.seed * 31 + 7))
      ~link:(Option.get sys.System.accel_link)
      ~self:(Option.get sys.System.accel_node_on_link)
      ~xg:(Option.get sys.System.xg_node_on_link)
      ~addresses ~period:chaos_period ~respond_probability ~requests_only
      ?tarpit ~duration:chaos_duration ()
  in
  let maybe_armed f =
    match trace with None -> f () | Some tr -> Trace.with_armed tr f
  in
  (* Under a topology the chaos accelerator replaces only guard 0's device
     (the [attach_accel:false] build leaves guard 0 bare and attaches the
     rest), so the neighbor guards' ports are live.  Drive them as load-only
     consumers alongside the CPUs: their completion is the isolation claim —
     chaos on one link must not wedge its neighbors — and in [Shared_ro] their
     loads are data-checked too.  [Disjoint] denies the accelerators the CPU
     pool, so neighbors stay idle there. *)
  let neighbor_ports =
    if pool = Disjoint then [||] else sys.System.accel_ports
  in
  let driven_ports, roles =
    if Array.length neighbor_ports = 0 then (sys.System.cpu_ports, None)
    else
      ( Array.append sys.System.cpu_ports neighbor_ports,
        Some
          (Array.append
             (Array.make (Array.length sys.System.cpu_ports) Random_tester.Mixed)
             (Array.make (Array.length neighbor_ports) Random_tester.Consumer)) )
  in
  let crashed = ref None in
  let tester_outcome =
    try
      Some
        (maybe_armed (fun () ->
             Random_tester.run ~engine:sys.System.engine
               ~rng:(Rng.create ~seed:(cfg.Config.seed + 5))
               ~ports:driven_ports ?roles ~addresses:cpu_addresses ~ops_per_core:cpu_ops ()))
    with e ->
      crashed :=
        Some
          {
            exn_text = Printexc.to_string e;
            seed = cfg.Config.seed;
            trace_tail = tail_of trace ~addr_hint:None;
          };
      None
  in
  let violations_by_kind =
    List.filter_map
      (fun kind ->
        let n = Xg.Os_model.count_of sys.System.os kind in
        if n > 0 then Some (kind, n) else None)
      Xg.Os_model.all_error_kinds
  in
  let coverage_sets = sys.System.coverage_sets () in
  let link_faults = sys.System.link_stats () in
  let quarantined = sys.System.quarantined () in
  let sum_guards f =
    Array.fold_left (fun acc g -> acc + f g.System.g_core) 0 sys.System.guards
  in
  let rejoins = sum_guards Xg.Xg_core.rejoins in
  let permakilled =
    Array.exists (fun g -> Xg.Xg_core.permakilled g.System.g_core) sys.System.guards
  in
  let budget_trips = sum_guards Xg.Xg_core.budget_trips in
  match tester_outcome with
  | Some o ->
      let first_error_addr = o.Random_tester.first_error_addr in
      let failed =
        o.Random_tester.data_errors > 0 || o.Random_tester.deadlocked
      in
      {
        chaos_messages = Xguard_accel.Chaos_accel.messages_sent chaos;
        invalidations_ignored = Xguard_accel.Chaos_accel.invalidations_ignored chaos;
        cpu_ops_completed = o.Random_tester.ops_completed;
        cpu_ops_expected = cpu_ops * Array.length driven_ports;
        cpu_data_errors = o.Random_tester.data_errors;
        violations = Xg.Os_model.error_count sys.System.os;
        violations_by_kind;
        deadlocked = o.Random_tester.deadlocked;
        crashed = None;
        seed = cfg.Config.seed;
        first_error_addr;
        trace_tail = (if failed then tail_of trace ~addr_hint:first_error_addr else []);
        trace_dropped = (if failed then dropped_of trace else 0);
        coverage_sets;
        link_faults;
        quarantined;
        rejoins;
        permakilled;
        budget_trips;
      }
  | None ->
      {
        chaos_messages = Xguard_accel.Chaos_accel.messages_sent chaos;
        invalidations_ignored = Xguard_accel.Chaos_accel.invalidations_ignored chaos;
        cpu_ops_completed = 0;
        cpu_ops_expected = cpu_ops * Array.length driven_ports;
        cpu_data_errors = 0;
        violations = Xg.Os_model.error_count sys.System.os;
        violations_by_kind;
        deadlocked = true;
        crashed = !crashed;
        seed = cfg.Config.seed;
        first_error_addr = None;
        trace_tail = tail_of trace ~addr_hint:None;
        trace_dropped = dropped_of trace;
        coverage_sets;
        link_faults;
        quarantined;
        rejoins;
        permakilled;
        budget_trips;
      }
