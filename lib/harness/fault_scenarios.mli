(** Directed guarantee-violation scenarios (paper Figure 1 / section 2.2).

    One scenario per sub-guarantee: a scripted accelerator takes the place of
    a real one on the XG link and commits exactly one violation — reading a
    forbidden page (0a), writing a read-only page (0b), a Put for a block it
    does not hold (1a), a second request while one is pending (1b), the wrong
    response type to an invalidation (2a), an unsolicited response (2b), or
    silence (2c).

    Each run reports whether the Crossing Guard detected the violation and —
    the paper's headline safety claim — whether the host stayed fully live:
    CPU traffic to the affected block and to unrelated blocks still completes
    afterwards. *)

type scenario =
  | Read_no_access  (** G0a *)
  | Write_read_only  (** G0b *)
  | Put_without_block  (** G1a *)
  | Double_get  (** G1b *)
  | Wrong_response_type  (** G2a *)
  | Unsolicited_response  (** G2b *)
  | Silent_on_invalidate  (** G2c *)
  | Link_dead
      (** the XG-accelerator wire goes dark mid-transaction; the guard must
          escalate through retransmission faults to quarantine while the
          host stays live *)
  | Recovery_rejoin
      (** (PR 8) the [Link_dead] quarantine, under a recovery policy: the
          guard resets the link, re-admits the accelerator on probation and
          promotes it; the accelerator must transact again afterwards *)
  | Repeated_quarantine_permakill
      (** (PR 8) the wire dies twice under a two-life recovery policy; the
          second quarantine must become a permanent kill *)
  | Tarpit_budget
      (** (PR 8) a slow-but-honest accelerator answers Invalidates correctly
          but over the inv→ack hang budget; the budget must trip — and
          quarantine — strictly before the coarse G2c timeout would fire *)

type outcome = {
  scenario : scenario;
  expected_kind : Xguard_xg.Os_model.error_kind;
  detected : bool;
  host_live : bool;
  errors_logged : int;
  quarantined : bool;  (** whether the guard quarantined the accelerator *)
  os_quarantined : bool;
      (** whether the OS model received the quarantine report (still true
          after a later rejoin clears the guard-side flag only if no rejoin
          happened — the model's flag is cleared by {!Xguard_xg.Os_model.rejoin}) *)
  rejoins : int;  (** completed reset handshakes, summed over guards *)
  permakilled : bool;  (** some guard exhausted its recovery lives *)
  budget_trips : int;  (** per-phase hang-budget violations *)
  g2c_timeouts : int;
      (** [Response_timeout] reports — [Tarpit_budget] asserts this stays 0
          while [budget_trips] is positive: budgets fire strictly first *)
  accel_live_after : bool;
      (** recovery scenarios only: a fresh accelerator request was granted
          after the run — true iff the accelerator was genuinely re-admitted *)
  coverage_sets :
    (string * Xguard_trace.Coverage.space * Xguard_stats.Counter.Group.t list) list;
      (** the run's transition coverage, so directed scenarios count toward
          the suite's coverage floors and reports can render the matrices *)
}

val all_scenarios : scenario list
val scenario_name : scenario -> string

val run : Config.t -> scenario -> outcome
(** [Config.t] must be an XG organization; its accelerator hierarchy is
    replaced by the scripted offender. *)

val run_all : Config.t -> outcome list
