(** Directed guarantee-violation scenarios (paper Figure 1 / section 2.2).

    One scenario per sub-guarantee: a scripted accelerator takes the place of
    a real one on the XG link and commits exactly one violation — reading a
    forbidden page (0a), writing a read-only page (0b), a Put for a block it
    does not hold (1a), a second request while one is pending (1b), the wrong
    response type to an invalidation (2a), an unsolicited response (2b), or
    silence (2c).

    Each run reports whether the Crossing Guard detected the violation and —
    the paper's headline safety claim — whether the host stayed fully live:
    CPU traffic to the affected block and to unrelated blocks still completes
    afterwards. *)

type scenario =
  | Read_no_access  (** G0a *)
  | Write_read_only  (** G0b *)
  | Put_without_block  (** G1a *)
  | Double_get  (** G1b *)
  | Wrong_response_type  (** G2a *)
  | Unsolicited_response  (** G2b *)
  | Silent_on_invalidate  (** G2c *)
  | Link_dead
      (** the XG-accelerator wire goes dark mid-transaction; the guard must
          escalate through retransmission faults to quarantine while the
          host stays live *)

type outcome = {
  scenario : scenario;
  expected_kind : Xguard_xg.Os_model.error_kind;
  detected : bool;
  host_live : bool;
  errors_logged : int;
  quarantined : bool;  (** whether the guard quarantined the accelerator *)
  coverage_sets :
    (string * Xguard_trace.Coverage.space * Xguard_stats.Counter.Group.t list) list;
      (** the run's transition coverage, so directed scenarios count toward
          the suite's coverage floors and reports can render the matrices *)
}

val all_scenarios : scenario list
val scenario_name : scenario -> string

val run : Config.t -> scenario -> outcome
(** [Config.t] must be an XG organization; its accelerator hierarchy is
    replaced by the scripted offender. *)

val run_all : Config.t -> outcome list
