(** Performance measurement (experiments E3, E4, A2).

    Runs a workload to completion on a configured system and reports the
    cycle count, per-access latency, host/link traffic and the Crossing
    Guard's own counters.  The paper's performance claims are about shape —
    the Crossing Guard organizations should track the unsafe accelerator-side
    cache and beat the host-side cache — so the numbers are compared as
    ratios across configurations with everything else held equal. *)

type result = {
  config_name : string;
  workload_name : string;
  cycles : int;
  accel_accesses : int;
  mean_accel_latency : float;
  p99_accel_latency : int;
  host_bytes : int;
  link_bytes : int;
  xg_to_host_bytes : int;
  put_s_messages : int;  (** PutS the accelerator issued (from XG stats) *)
  put_s_suppressed : int;
  snoop_fast_path : int;
  snoop_roundtrip : int;
  violations : int;
}

val run :
  ?trace:Xguard_trace.Trace.t ->
  ?sim_j:int ->
  Config.t ->
  Xguard_workload.Workload.t ->
  result
(** Builds the system, drives the accelerator stream(s) and any CPU-side
    streams concurrently, and runs to quiescence.  [trace] arms the given
    ring buffer for the duration of the run, so a failure's event trail can
    be dumped by the caller.

    [sim_j] runs the simulation on the sharded parallel engine ({!Pdes})
    with that many workers: the system is built [~pdes:true], accelerator
    sequencers pump on their guard's domain engine, and [cycles] reads the
    run clock across domains.  Results are identical for every [sim_j]
    value >= 1 (and a different event interleaving from the sequential
    engine).  Callers must check {!Pdes.check_config} first.
    @raise Failure on deadlock (incomplete streams with a drained queue). *)
